//go:build race

package vids_test

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation changes allocation counts.
const raceEnabled = true
