GO ?= go

.PHONY: all build test race fmt lint ci golden bench-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

# lint runs every static gate: formatting, go vet, the repo-specific
# source analyzer (cmd/vidslint) and the EFSM specification verifier
# (internal/speclint via cmd/fsmdump).
lint: fmt
	$(GO) vet ./...
	$(GO) run ./cmd/vidslint ./...
	$(GO) run ./cmd/fsmdump

# bench-smoke exercises the concurrent engine benchmark once per
# shard count under the race detector — a cheap CI gate that the
# sharded pipeline still builds, runs and drains cleanly.
bench-smoke:
	$(GO) test -race -run '^$$' -bench 'BenchmarkEngineThroughput' -benchtime=1x .

# ci reproduces .github/workflows/ci.yml locally.
ci: lint build race bench-smoke

# golden regenerates the spec-graph golden files after a reviewed
# specification change.
golden:
	$(GO) test ./internal/ids -run DOTGolden -update
