GO ?= go

.PHONY: all build test race fmt lint ci golden

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

# lint runs every static gate: formatting, go vet, the repo-specific
# source analyzer (cmd/vidslint) and the EFSM specification verifier
# (internal/speclint via cmd/fsmdump).
lint: fmt
	$(GO) vet ./...
	$(GO) run ./cmd/vidslint ./...
	$(GO) run ./cmd/fsmdump

# ci reproduces .github/workflows/ci.yml locally.
ci: lint build race

# golden regenerates the spec-graph golden files after a reviewed
# specification change.
golden:
	$(GO) test ./internal/ids -run DOTGolden -update
