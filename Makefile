GO ?= go

# BENCHTIME paces the hot-path benchmarks (make bench). CI overrides
# it with a fixed iteration count for a fast, deterministic smoke.
BENCHTIME ?= 1s
# CHURNTIME paces BenchmarkCallChurn with a fixed iteration count:
# its allocs/op amortizes one-time warm-up (monitor pool, intern
# table, timer wheel) over the run, so baseline and fresh runs must
# use identical pacing for bench-compare to be meaningful.
CHURNTIME ?= 5000x

# The benchmark suites behind the committed JSON baselines. HOTPATH
# feeds BENCH_hotpath.json; the engine file merges a churn run
# (allocation-gated) with a throughput run (timing only — engine
# fan-out allocs vary with scheduling and are not a useful gate).
HOTPATH_BENCH = BenchmarkSIPParse$$|BenchmarkRTPParse$$|BenchmarkRTCPParse$$|BenchmarkIDSProcessSIP$$|BenchmarkIDSProcessSIPCompiled$$|BenchmarkIDSProcessRTP$$|BenchmarkEFSMStep$$|BenchmarkEFSMStepCompiled$$|BenchmarkFastpathLookup$$
# THROUGHPUT_BENCH pairs the SIP-heavy engine mix with the media-heavy
# one so the fast-path absorption numbers are pinned alongside the
# baseline fan-out numbers in BENCH_engine.json.
THROUGHPUT_BENCH = BenchmarkEngineThroughput$$|BenchmarkEngineThroughputMedia$$

.PHONY: all build test race fmt lint ci golden bench bench-smoke bench-compare fuzz-smoke speccover speccover-update specgen specgen-check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

# lint runs every static gate: formatting, go vet, the repo-specific
# source analyzer (cmd/vidslint) and the EFSM specification verifier
# (internal/speclint via cmd/fsmdump). vidslint's whole-module run
# includes the whole-program passes: the //vids:noalloc escape gate
# over the hot-path call closure, the //vids:nopanic panic-freedom
# gate over the untrusted-input closure, the lock-discipline gate over
# internal/engine, internal/timerwheel and internal/ingress, the
# directive-freshness sweep, and the alloc-ceiling drift check
# against alloc_test.go.
lint: fmt
	$(GO) vet ./...
	$(GO) run ./cmd/vidslint ./...
	$(GO) run ./cmd/fsmdump

# bench runs the packet-path micro-benchmarks with allocation
# reporting and archives the numbers as BENCH_hotpath.json — the
# regression record for the zero-allocation hot path — plus the call
# lifecycle and engine throughput benchmarks as BENCH_engine.json.
# Override the pacing with BENCHTIME (e.g. `make bench BENCHTIME=100x`).
bench:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' \
		-benchmem -benchtime $(BENCHTIME) . | tee BENCH_hotpath.txt
	$(GO) run ./cmd/benchjson < BENCH_hotpath.txt > BENCH_hotpath.json
	@rm -f BENCH_hotpath.txt
	@echo "wrote BENCH_hotpath.json"
	$(GO) test -run '^$$' -bench 'BenchmarkCallChurn$$' \
		-benchmem -benchtime $(CHURNTIME) . | $(GO) run ./cmd/benchjson > BENCH_churn.part.json
	$(GO) test -run '^$$' -bench '$(THROUGHPUT_BENCH)' \
		-benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_throughput.part.json
	$(GO) run ./cmd/benchjson -merge BENCH_churn.part.json BENCH_throughput.part.json > BENCH_engine.json
	@rm -f BENCH_churn.part.json BENCH_throughput.part.json
	@echo "wrote BENCH_engine.json"
	$(GO) run ./cmd/benchjson -scaling BENCH_engine.json \
		'BenchmarkEngineThroughput/shards=4' 'BenchmarkEngineThroughput/shards=1'
	$(GO) run ./cmd/benchjson -scaling BENCH_engine.json \
		'BenchmarkEngineThroughputMedia/fastpath=on/shards=4' 'BenchmarkEngineThroughputMedia/fastpath=on/shards=1'
	$(GO) run ./cmd/benchjson -scaling -scale-ratio 4 -scale-min-cores 1 BENCH_engine.json \
		'BenchmarkEngineThroughputMedia/fastpath=on/shards=1' 'BenchmarkEngineThroughputMedia/fastpath=off/shards=1'

# bench-compare reruns the pinned benchmarks and diffs allocs/op
# against the committed baselines, failing on a >10% regression —
# run it before `make bench` overwrites the baselines.
bench-compare:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' \
		-benchmem -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_hotpath.fresh.json
	$(GO) test -run '^$$' -bench 'BenchmarkCallChurn$$' \
		-benchmem -benchtime $(CHURNTIME) . | $(GO) run ./cmd/benchjson > BENCH_churn.fresh.json
	$(GO) test -run '^$$' -bench '$(THROUGHPUT_BENCH)' \
		-benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_throughput.fresh.json
	$(GO) run ./cmd/benchjson -merge BENCH_churn.fresh.json BENCH_throughput.fresh.json > BENCH_engine.fresh.json
	$(GO) run ./cmd/benchjson -compare BENCH_hotpath.json BENCH_hotpath.fresh.json
	$(GO) run ./cmd/benchjson -compare BENCH_engine.json BENCH_engine.fresh.json
	$(GO) run ./cmd/benchjson -scaling BENCH_engine.fresh.json \
		'BenchmarkEngineThroughput/shards=4' 'BenchmarkEngineThroughput/shards=1'
	$(GO) run ./cmd/benchjson -scaling BENCH_engine.fresh.json \
		'BenchmarkEngineThroughputMedia/fastpath=on/shards=4' 'BenchmarkEngineThroughputMedia/fastpath=on/shards=1'
	$(GO) run ./cmd/benchjson -scaling -scale-ratio 4 -scale-min-cores 1 BENCH_engine.fresh.json \
		'BenchmarkEngineThroughputMedia/fastpath=on/shards=1' 'BenchmarkEngineThroughputMedia/fastpath=off/shards=1'
	@rm -f BENCH_hotpath.fresh.json BENCH_churn.fresh.json BENCH_throughput.fresh.json BENCH_engine.fresh.json
	@echo "allocation budgets hold vs committed baselines; ingestion tier scaling and fast-path absorption floors hold"

# bench-smoke exercises the concurrent engine benchmark once per
# shard count under the race detector — a cheap CI gate that the
# sharded pipeline still builds, runs and drains cleanly.
bench-smoke:
	$(GO) test -race -run '^$$' -bench 'BenchmarkEngineThroughput' -benchtime=1x .

# fuzz-smoke briefly runs the native fuzz targets that hammer the
# //vids:nopanic roots with hostile bytes — the dynamic cross-check of
# the static panic-freedom gate. Each target also replays its
# committed corpus (testdata/fuzz/) as regression cases under plain
# `go test`. FUZZTIME paces the smoke; raise it for a deeper local run
# (e.g. `make fuzz-smoke FUZZTIME=2m`).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/sipmsg -run '^$$' -fuzz 'FuzzSIPParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sipmsg -run '^$$' -fuzz 'FuzzURIParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rtp -run '^$$' -fuzz 'FuzzRTPParseInto$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ingress -run '^$$' -fuzz 'FuzzLiteExtract$$' -fuzztime $(FUZZTIME)

# speccover measures specification transition coverage (scenario
# suite + synthesized witness traces, merged with static product
# reachability) and gates on the committed SPEC_COVERAGE.json
# baseline. Witness traces land in coverage-traces/ for inspection and
# replay via `vids -replay`.
speccover:
	$(GO) run ./cmd/speccover -baseline SPEC_COVERAGE.json -traces coverage-traces

# speccover-update regenerates the coverage baseline after a reviewed
# specification or scenario change.
speccover-update:
	$(GO) run ./cmd/speccover -write SPEC_COVERAGE.json

# specgen regenerates internal/idsgen/tables_gen.go from the
# interpreted EFSM specifications — run it after any spec change, then
# commit the result. specgen-check verifies the committed file is
# byte-identical to what the generator would emit (the CI freshness
# gate: stale compiled tables fail instead of silently diverging from
# the specs).
specgen:
	$(GO) run ./cmd/specgen

specgen-check:
	$(GO) run ./cmd/specgen -check

# ci reproduces .github/workflows/ci.yml locally.
ci: lint specgen-check build race bench-smoke fuzz-smoke speccover

# golden regenerates the spec-graph golden files after a reviewed
# specification change.
golden:
	$(GO) test ./internal/ids -run DOTGolden -update
