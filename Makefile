GO ?= go

# BENCHTIME paces the hot-path benchmarks (make bench). CI overrides
# it with a fixed iteration count for a fast, deterministic smoke.
BENCHTIME ?= 1s

.PHONY: all build test race fmt lint ci golden bench bench-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

# lint runs every static gate: formatting, go vet, the repo-specific
# source analyzer (cmd/vidslint) and the EFSM specification verifier
# (internal/speclint via cmd/fsmdump).
lint: fmt
	$(GO) vet ./...
	$(GO) run ./cmd/vidslint ./...
	$(GO) run ./cmd/fsmdump

# bench runs the packet-path micro-benchmarks with allocation
# reporting and archives the numbers as BENCH_hotpath.json — the
# regression record for the zero-allocation hot path. Override the
# pacing with BENCHTIME (e.g. `make bench BENCHTIME=100x`).
bench:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkSIPParse$$|BenchmarkRTPParse$$|BenchmarkRTCPParse$$|BenchmarkIDSProcessSIP$$|BenchmarkIDSProcessRTP$$|BenchmarkEFSMStep$$' \
		-benchmem -benchtime $(BENCHTIME) . | tee BENCH_hotpath.txt
	$(GO) run ./cmd/benchjson < BENCH_hotpath.txt > BENCH_hotpath.json
	@rm -f BENCH_hotpath.txt
	@echo "wrote BENCH_hotpath.json"

# bench-smoke exercises the concurrent engine benchmark once per
# shard count under the race detector — a cheap CI gate that the
# sharded pipeline still builds, runs and drains cleanly.
bench-smoke:
	$(GO) test -race -run '^$$' -bench 'BenchmarkEngineThroughput' -benchtime=1x .

# ci reproduces .github/workflows/ci.yml locally.
ci: lint build race bench-smoke

# golden regenerates the spec-graph golden files after a reviewed
# specification change.
golden:
	$(GO) test ./internal/ids -run DOTGolden -update
