package vids_test

import (
	"testing"
	"time"

	"vids"
)

// TestPublicAPIEndToEnd exercises the façade the way a downstream
// user would: build the testbed, run calls, inspect the IDS.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := vids.DefaultTestbedConfig()
	cfg.UAs = 2
	cfg.WithMedia = true
	tb, err := vids.NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var alerts []vids.Alert
	tb.IDS.OnAlert = func(a vids.Alert) { alerts = append(alerts, a) }

	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	rec, err := tb.PlaceCall(0, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + time.Minute); err != nil {
		t.Fatal(err)
	}
	if !rec.Established {
		t.Fatal("call failed")
	}
	if len(alerts) != 0 {
		t.Fatalf("clean call alerted: %v", alerts)
	}
	if tb.IDS.Evicted() != 1 {
		t.Fatalf("evicted = %d", tb.IDS.Evicted())
	}
}

// TestPublicAPIStandaloneIDS uses the packet-level API directly.
func TestPublicAPIStandaloneIDS(t *testing.T) {
	s := vids.NewSimulator(1)
	d := vids.New(s, vids.DefaultConfig())
	d.Process(&vids.Packet{
		Proto:   vids.ProtoSIP,
		From:    vids.Addr{Host: "x", Port: 5060},
		To:      vids.Addr{Host: "y", Port: 5060},
		Payload: []byte("garbage that is not SIP"),
	})
	_, _, parseErrs, _ := d.Counters()
	if parseErrs != 1 {
		t.Fatalf("parse errors = %d", parseErrs)
	}
}

// TestExperimentRunnersViaFacade runs one small experiment through
// the public wrappers.
func TestExperimentRunnersViaFacade(t *testing.T) {
	res, err := vids.Fig8(vids.ExperimentOptions{
		Seed: 4, UAs: 3, Duration: 3 * time.Minute,
		MeanCallInterval: 45 * time.Second,
		MeanCallDuration: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed == 0 {
		t.Fatal("no calls")
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}
