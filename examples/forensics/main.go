// Forensics: the offline workflow. Capture the packet stream a live
// vids instance sees during an attack, then replay the trace into a
// *fresh* IDS — the alerts reproduce exactly, which is what makes
// after-the-fact investigation trustworthy.
//
// Run with: go run ./examples/forensics
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"vids"
	"vids/internal/attack"
	"vids/internal/ids"
	"vids/internal/sipmsg"
	"vids/internal/trace"
	"vids/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Live side: testbed + attack, with trace capture ---------------
	cfg := vids.DefaultTestbedConfig()
	cfg.UAs = 2
	cfg.WithMedia = true
	cfg.AnswerDelay = time.Second
	tb, err := vids.NewTestbed(cfg)
	if err != nil {
		return err
	}
	var capture bytes.Buffer
	writer := trace.NewWriter(&capture)
	tb.IDS.OnPacket = writer.Tap // record exactly what vids sees

	if err := tb.Sim.Run(time.Second); err != nil {
		return err
	}
	rec, err := tb.PlaceCall(0, 0, time.Minute)
	if err != nil {
		return err
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 5*time.Second); err != nil {
		return err
	}

	call := rec.Call()
	atk := attack.New(tb.Sim, tb.Net, workload.AttackerHost)
	info := attack.DialogInfo{
		CallID:     call.ID,
		CallerTag:  call.LocalTag,
		CalleeTag:  call.RemoteTag,
		CallerAOR:  sipmsg.URI{User: workload.UAUser("a", 1), Host: workload.DomainA},
		CalleeAOR:  sipmsg.URI{User: workload.UAUser("b", 1), Host: workload.DomainB},
		CallerHost: workload.UAHost("a", 1),
		CalleeHost: call.RemoteContact.Host,
	}
	if err := atk.ByeDoS(info, true); err != nil {
		return err
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 10*time.Second); err != nil {
		return err
	}
	liveAlerts := tb.IDS.Alerts()
	fmt.Printf("live run:   %d packets captured, %d alert(s)\n",
		writer.Entries(), len(liveAlerts))
	for _, a := range liveAlerts {
		fmt.Println("  live  ", a)
	}

	// --- Forensic side: replay the capture into a fresh IDS ------------
	entries, err := trace.Read(&capture)
	if err != nil {
		return err
	}
	s2 := vids.NewSimulator(999) // different seed: replay must not care
	fresh := ids.New(s2, ids.DefaultConfig())
	if err := trace.Replay(s2, entries, fresh); err != nil {
		return err
	}
	if err := s2.RunAll(); err != nil {
		return err
	}
	replayAlerts := fresh.Alerts()
	fmt.Printf("\nreplay run: %d packets analyzed, %d alert(s)\n",
		len(entries), len(replayAlerts))
	for _, a := range replayAlerts {
		fmt.Println("  replay", a)
	}

	if len(replayAlerts) == len(liveAlerts) {
		fmt.Println("\nlive and offline analysis agree — the trace is evidence-grade.")
	}
	return nil
}
