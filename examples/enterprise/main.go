// Enterprise: stand up the paper's full Figure 7 testbed — two
// enterprise networks with SIP phones and proxies, a lossy internet
// cloud between them, vids inline at network B's edge — generate a
// random calling pattern with G.729 media, and report the evaluation
// metrics (setup delay, RTP QoS, proxy and IDS statistics).
//
// Run with: go run ./examples/enterprise
package main

import (
	"fmt"
	"log"
	"time"

	"vids"
	"vids/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := vids.DefaultTestbedConfig()
	cfg.Seed = 7
	cfg.UAs = 10
	cfg.WithMedia = true
	cfg.MeanCallInterval = 2 * time.Minute
	cfg.MeanCallDuration = 45 * time.Second

	tb, err := vids.NewTestbed(cfg)
	if err != nil {
		return err
	}
	tb.IDS.OnAlert = func(a vids.Alert) {
		fmt.Println("ALERT:", a) // none expected on clean traffic
	}

	const horizon = 15 * time.Minute
	fmt.Printf("enterprise testbed: %d phones per network, vids inline, %v of calls...\n\n",
		cfg.UAs, horizon)

	start := time.Now()
	tb.GenerateCalls(horizon)
	if err := tb.Sim.Run(horizon + 2*time.Minute); err != nil {
		return err
	}

	placed, established, failed := tb.CallStats()
	fmt.Printf("calls:   placed %d, established %d, failed %d\n", placed, established, failed)

	setup := tb.SetupDelays(-1)
	fmt.Printf("setup:   mean %s ms (INVITE -> 180), p95 %.2f ms\n",
		metrics.Ms(setup.MeanDuration()), setup.Percentile(95)*1000)

	delay, jitter := tb.MediaQoS("b")
	fmt.Printf("media:   B-side mean one-way delay %.3f ms, mean jitter %s s over %d streams\n",
		delay.Mean()*1000, metrics.F(jitter.Mean()), delay.Count())

	sipN, rtpN, parseErrs, deviations := tb.IDS.Counters()
	fmt.Printf("vids:    %d SIP + %d RTP packets inspected, %d parse errors, %d deviations\n",
		sipN, rtpN, parseErrs, deviations)
	fmt.Printf("         %d alerts, %d calls still monitored, %d monitors evicted\n",
		len(tb.IDS.Alerts()), tb.IDS.ActiveCalls(), tb.IDS.Evicted())
	fmt.Printf("         fact base footprint %d bytes\n", tb.IDS.MemoryFootprint())

	fmt.Printf("\nsimulated %v in %v of host time (%d events)\n",
		horizon, time.Since(start).Round(time.Millisecond), tb.Sim.Executed())
	return nil
}
