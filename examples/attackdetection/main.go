// Attackdetection: run the paper's full threat model (Section 3)
// against vids — every attack scenario from Section 6 plus a benign
// control — and print the detection-accuracy table of Section 7.5.
//
// Run with: go run ./examples/attackdetection
package main

import (
	"fmt"
	"log"
	"time"

	"vids"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("running all attack scenarios against vids (this takes a few seconds)...")
	res, err := vids.Accuracy(vids.ExperimentOptions{
		Seed:             99,
		UAs:              4,
		Duration:         90 * time.Second,
		MeanCallInterval: 30 * time.Second,
		MeanCallDuration: 20 * time.Second,
	})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println(res.Render())
	return nil
}
