// Byedos: a step-by-step walkthrough of the paper's flagship
// detection (Figure 5). An attacker sends a *perfectly* spoofed BYE —
// forged dialog identifiers AND forged transport source — which no
// single-protocol check can distinguish from a genuine hangup. The
// victim phone tears the call down; the unaware partner keeps
// talking. vids catches the attack because its SIP machine sent a
// δ synchronization message to the RTP machines, which armed timer T
// and flag media arriving after the grace period.
//
// The walkthrough then repeats the attack with the cross-protocol
// channel ablated, showing the detection disappear — the paper's
// central design claim.
//
// Run with: go run ./examples/byedos
package main

import (
	"fmt"
	"log"
	"time"

	"vids"
	"vids/internal/attack"
	"vids/internal/sipmsg"
	"vids/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, crossProtocol := range []bool{true, false} {
		detected, err := runAttack(crossProtocol)
		if err != nil {
			return err
		}
		mode := "with cross-protocol sync"
		if !crossProtocol {
			mode = "ABLATED (no δ sync)"
		}
		fmt.Printf("=> %s: attack detected = %v\n\n", mode, detected)
	}
	fmt.Println("conclusion: the interaction between the SIP and RTP state machines is")
	fmt.Println("what catches the spoofed BYE — exactly the paper's thesis.")
	return nil
}

func runAttack(crossProtocol bool) (bool, error) {
	cfg := vids.DefaultTestbedConfig()
	cfg.UAs = 2
	cfg.WithMedia = true
	cfg.AnswerDelay = time.Second
	cfg.IDS.CrossProtocol = crossProtocol

	tb, err := vids.NewTestbed(cfg)
	if err != nil {
		return false, err
	}
	detected := false
	tb.IDS.OnAlert = func(a vids.Alert) {
		fmt.Println("   ALERT:", a)
		if a.Type == vids.AlertByeDoS || a.Type == vids.AlertTollFraud {
			detected = true
		}
	}

	if err := tb.Sim.Run(time.Second); err != nil {
		return false, err
	}
	fmt.Printf("1. alice (network A) calls bob (network B); cross-protocol=%v\n", crossProtocol)
	rec, err := tb.PlaceCall(0, 0, 2*time.Minute)
	if err != nil {
		return false, err
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 8*time.Second); err != nil {
		return false, err
	}
	call := rec.Call()
	fmt.Printf("2. call established (setup %v); G.729 media flowing both ways\n",
		call.EstablishedAt-call.InviteAt)

	atk := attack.New(tb.Sim, tb.Net, workload.AttackerHost)
	info := attack.DialogInfo{
		CallID:     call.ID,
		CallerTag:  call.LocalTag,
		CalleeTag:  call.RemoteTag,
		CallerAOR:  sipmsg.URI{User: workload.UAUser("a", 1), Host: workload.DomainA},
		CalleeAOR:  sipmsg.URI{User: workload.UAUser("b", 1), Host: workload.DomainB},
		CallerHost: workload.UAHost("a", 1),
		CalleeHost: call.RemoteContact.Host,
	}
	fmt.Println("3. attacker sends a BYE to bob with alice's dialog tags AND a spoofed")
	fmt.Println("   source address — indistinguishable from a real hangup at the SIP layer")
	if err := atk.ByeDoS(info, true); err != nil {
		return false, err
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 10*time.Second); err != nil {
		return false, err
	}
	fmt.Println("4. bob hung up (the DoS worked); alice keeps streaming, unaware")
	return detected, nil
}
