// Quickstart: feed a SIP/RTP packet stream straight into vids and
// watch it track the call with communicating protocol state machines.
//
// This example needs no network topology at all — it hand-crafts the
// wire packets a monitoring point would capture for one call, then
// replays a spoofed BYE to show a detection.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"vids"
	"vids/internal/rtp"
	"vids/internal/sdp"
	"vids/internal/sipmsg"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s := vids.NewSimulator(1)
	d := vids.New(s, vids.DefaultConfig())
	d.OnAlert = func(a vids.Alert) {
		fmt.Println("ALERT:", a)
	}

	proxyA := vids.Addr{Host: "proxy.a.example.com", Port: 5060}
	proxyB := vids.Addr{Host: "proxy.b.example.com", Port: 5060}
	caller := vids.Addr{Host: "ua1.a.example.com", Port: 5060}
	callee := vids.Addr{Host: "ua2.b.example.com", Port: 5060}

	// --- Call setup: INVITE / 180 / 200 / ACK ---------------------------
	invite := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{User: "bob", Host: "b.example.com"})
	invite.Via = []sipmsg.Via{{Transport: "UDP", Host: proxyA.Host, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKqs1"}}}
	invite.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: "a.example.com"}}.WithTag("tagA")
	invite.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "b.example.com"}}
	invite.CallID = "quickstart-call@ua1.a.example.com"
	invite.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: caller.Host}}
	invite.Contact = &contact
	invite.ContentType = "application/sdp"
	invite.Body = sdp.New("alice", caller.Host, 20000, sdp.PayloadG729).Marshal()
	feedSIP(d, invite, proxyA, proxyB)

	ringing := sipmsg.NewResponse(invite, sipmsg.StatusRinging)
	ringing.To = ringing.To.WithTag("tagB")
	feedSIP(d, ringing, proxyB, proxyA)

	answer := sipmsg.NewResponse(invite, sipmsg.StatusOK)
	answer.To = answer.To.WithTag("tagB")
	calleeContact := sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: callee.Host}}
	answer.Contact = &calleeContact
	answer.ContentType = "application/sdp"
	answer.Body = sdp.New("bob", callee.Host, 30000, sdp.PayloadG729).Marshal()
	feedSIP(d, answer, proxyB, proxyA)

	mon, _ := d.Monitor(invite.CallID)
	fmt.Printf("after setup: SIP machine in %s, media directions %s / %s\n",
		mon.SIP.State(), mon.RTPCaller.State(), mon.RTPCallee.State())

	// --- Media flows ----------------------------------------------------
	for i := 0; i < 10; i++ {
		feedRTP(d, uint16(100+i), uint32(160*i), 0xC0FFEE,
			vids.Addr{Host: caller.Host, Port: 20000},
			vids.Addr{Host: callee.Host, Port: 30000})
	}
	fmt.Printf("after media: caller stream machine in %s\n", mon.RTPCaller.State())

	// --- The attack: a perfectly spoofed BYE ----------------------------
	// Headers and transport source both match the real caller, so no
	// single-protocol check can flag it. The callee hangs up; the
	// caller, unaware, keeps talking.
	bye := sipmsg.NewRequest(sipmsg.BYE, sipmsg.URI{User: "bob", Host: callee.Host})
	bye.Via = []sipmsg.Via{{Transport: "UDP", Host: caller.Host, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKevil"}}}
	bye.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: "a.example.com"}}.WithTag("tagA")
	bye.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "b.example.com"}}.WithTag("tagB")
	bye.CallID = invite.CallID
	bye.CSeq = sipmsg.CSeq{Seq: 2, Method: sipmsg.BYE}
	feedSIP(d, bye, caller, callee)

	ok := sipmsg.NewResponse(bye, sipmsg.StatusOK)
	feedSIP(d, ok, callee, caller)
	fmt.Printf("after BYE: SIP machine in %s — vids armed timer T for in-flight media\n", mon.SIP.State())

	// The unaware caller keeps streaming past the grace period.
	seq := uint16(110)
	ts := uint32(160 * 10)
	for i := 0; i < 20; i++ {
		i := i
		delay := d.Config().ByeGraceT + time.Duration(i+1)*20*time.Millisecond
		s.Schedule(delay, func() {
			feedRTP(d, seq+uint16(i), ts+uint32(160*i), 0xC0FFEE,
				vids.Addr{Host: caller.Host, Port: 20000},
				vids.Addr{Host: callee.Host, Port: 30000})
		})
	}
	if err := s.RunAll(); err != nil {
		return err
	}

	fmt.Printf("\nvids saw %d SIP and %d RTP packets and raised %d alert(s)\n",
		count(d, 0), count(d, 1), len(d.Alerts()))
	return nil
}

func feedSIP(d *vids.IDS, m *sipmsg.Message, from, to vids.Addr) {
	raw := m.Bytes()
	d.Process(&vids.Packet{From: from, To: to, Proto: vids.ProtoSIP, Size: len(raw), Payload: raw})
}

func feedRTP(d *vids.IDS, seq uint16, ts, ssrc uint32, from, to vids.Addr) {
	p := &rtp.Packet{PayloadType: 18, Sequence: seq, Timestamp: ts, SSRC: ssrc,
		Payload: make([]byte, 20)}
	raw, err := p.Marshal()
	if err != nil {
		return
	}
	d.Process(&vids.Packet{From: from, To: to, Proto: vids.ProtoRTP, Size: len(raw), Payload: raw})
}

func count(d *vids.IDS, which int) uint64 {
	sipN, rtpN, _, _ := d.Counters()
	if which == 0 {
		return sipN
	}
	return rtpN
}
