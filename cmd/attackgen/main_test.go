package main

import "testing"

func TestAllScenariosRender(t *testing.T) {
	for _, sc := range []string{"bye-dos", "cancel-dos", "invite-flood", "media-spam", "hijack"} {
		if err := run([]string{"-scenario", sc}); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
	}
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
