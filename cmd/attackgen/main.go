// Command attackgen prints the wire-format packets each attack
// scenario of the paper's threat model (Section 3) would inject —
// useful for inspecting what the detectors actually see.
//
// Usage:
//
//	attackgen [-scenario bye-dos|cancel-dos|invite-flood|media-spam|hijack]
package main

import (
	"flag"
	"fmt"
	"os"

	"vids/internal/rtp"
	"vids/internal/sdp"
	"vids/internal/sipmsg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attackgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attackgen", flag.ContinueOnError)
	scenario := fs.String("scenario", "bye-dos", "scenario to render")
	if err := fs.Parse(args); err != nil {
		return err
	}

	caller := sipmsg.URI{User: "alice", Host: "a.example.com"}
	callee := sipmsg.URI{User: "bob", Host: "b.example.com"}
	const (
		callID    = "a84b4c76e66710@ua1.a.example.com"
		callerTag = "1928301774"
		calleeTag = "a6c85cf"
	)

	switch *scenario {
	case "bye-dos":
		bye := sipmsg.NewRequest(sipmsg.BYE, sipmsg.URI{User: "bob", Host: "ua2.b.example.com"})
		bye.From = sipmsg.NameAddr{URI: caller}.WithTag(callerTag)
		bye.To = sipmsg.NameAddr{URI: callee}.WithTag(calleeTag)
		bye.CallID = callID
		bye.CSeq = sipmsg.CSeq{Seq: 2, Method: sipmsg.BYE}
		bye.Via = []sipmsg.Via{{Transport: "UDP", Host: "ua1.a.example.com", Port: 5060,
			Params: map[string]string{"branch": "z9hG4bKspoofed1"}}}
		fmt.Println("# Spoofed BYE (Section 3.1): impersonates the caller toward the callee.")
		fmt.Println("# The receiving UA cannot distinguish it from a genuine hangup.")
		os.Stdout.Write(bye.Bytes())
	case "cancel-dos":
		cancel := sipmsg.NewRequest(sipmsg.CANCEL, callee)
		cancel.From = sipmsg.NameAddr{URI: caller}.WithTag(callerTag)
		cancel.To = sipmsg.NameAddr{URI: callee}
		cancel.CallID = callID
		cancel.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.CANCEL}
		cancel.Via = []sipmsg.Via{{Transport: "UDP", Host: "attacker.evil.example.com", Port: 5060,
			Params: map[string]string{"branch": "z9hG4bKforged1"}}}
		fmt.Println("# Forged CANCEL (Section 3.1): kills a pending call attempt.")
		os.Stdout.Write(cancel.Bytes())
	case "invite-flood":
		fmt.Println("# INVITE flood (Section 3.1, Figure 4): N such messages within window T1.")
		inv := sipmsg.NewRequest(sipmsg.INVITE, callee)
		inv.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "bot1", Host: "evil.example.com"}}.WithTag("bot1tag")
		inv.To = sipmsg.NameAddr{URI: callee}
		inv.CallID = "flood-0001@attacker.evil.example.com"
		inv.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
		inv.Via = []sipmsg.Via{{Transport: "UDP", Host: "attacker.evil.example.com", Port: 5060,
			Params: map[string]string{"branch": "z9hG4bKfld0001"}}}
		contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "bot", Host: "attacker.evil.example.com"}}
		inv.Contact = &contact
		inv.ContentType = "application/sdp"
		inv.Body = sdp.New("bot", "attacker.evil.example.com", 40000, sdp.PayloadG729).Marshal()
		os.Stdout.Write(inv.Bytes())
	case "media-spam":
		fmt.Println("# Media spam (Section 3.2, Figure 6): sniffed SSRC, jumped sequence/timestamp.")
		p := &rtp.Packet{
			PayloadType: sdp.PayloadG729,
			Sequence:    0x3039 + 1000,
			Timestamp:   0x12345678 + 160000,
			SSRC:        0xDEADBEEF,
			Payload:     make([]byte, 20),
		}
		raw, err := p.Marshal()
		if err != nil {
			return err
		}
		fmt.Printf("RTP v2 PT=%d seq=%d ts=%d ssrc=%#x payload=%dB\nhex: % x\n",
			p.PayloadType, p.Sequence, p.Timestamp, p.SSRC, len(p.Payload), raw)
	case "hijack":
		re := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{User: "bob", Host: "ua2.b.example.com"})
		re.From = sipmsg.NameAddr{URI: caller}.WithTag(callerTag)
		re.To = sipmsg.NameAddr{URI: callee}.WithTag(calleeTag)
		re.CallID = callID
		re.CSeq = sipmsg.CSeq{Seq: 3, Method: sipmsg.INVITE}
		re.Via = []sipmsg.Via{{Transport: "UDP", Host: "attacker.evil.example.com", Port: 5060,
			Params: map[string]string{"branch": "z9hG4bKhijack1"}}}
		contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "mallory", Host: "attacker.evil.example.com"}}
		re.Contact = &contact
		re.ContentType = "application/sdp"
		re.Body = sdp.New("mallory", "attacker.evil.example.com", 41000, sdp.PayloadG729).Marshal()
		fmt.Println("# Call hijack (Section 3.1): in-dialog re-INVITE redirecting media to the attacker.")
		os.Stdout.Write(re.Bytes())
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	fmt.Println()
	return nil
}
