// Command experiments regenerates the paper's evaluation (Section 7):
// every figure and table, printed as text next to the paper's
// reported values.
//
// Usage:
//
//	experiments [-fast] [-seed N] [-uas N] [-duration D] [fig8|fig9|fig10|cpu|memory|accuracy|sensitivity|ablation|auth|prevention|engine|backends|all]
//
// The default runs everything at paper scale (20 UAs, 120-minute
// workload); -fast shrinks the runs for a quick look.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vids"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fast     = fs.Bool("fast", false, "shrink runs for a quick look")
		seed     = fs.Int64("seed", 2006, "deterministic workload seed")
		uas      = fs.Int("uas", 0, "user agents per network (0 = default)")
		duration = fs.Duration("duration", 0, "workload horizon (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := vids.ExperimentOptions{Seed: *seed, UAs: *uas, Duration: *duration}
	if *fast {
		if opts.UAs == 0 {
			opts.UAs = 4
		}
		if opts.Duration == 0 {
			opts.Duration = 4 * time.Minute
		}
		opts.MeanCallInterval = 45 * time.Second
		opts.MeanCallDuration = 20 * time.Second
	}

	which := "all"
	if fs.NArg() > 0 {
		which = fs.Arg(0)
	}

	type runner struct {
		name string
		fn   func() (interface{ Render() string }, error)
	}
	runners := []runner{
		{"fig8", func() (interface{ Render() string }, error) { return vids.Fig8(opts) }},
		{"fig9", func() (interface{ Render() string }, error) { return vids.Fig9(opts) }},
		{"fig10", func() (interface{ Render() string }, error) { return vids.Fig10(mediaScale(opts, *fast)) }},
		{"cpu", func() (interface{ Render() string }, error) { return vids.CPUOverhead(mediaScale(opts, *fast)) }},
		{"memory", func() (interface{ Render() string }, error) { return vids.Memory(opts) }},
		{"accuracy", func() (interface{ Render() string }, error) { return vids.Accuracy(attackScale(opts)) }},
		{"sensitivity", func() (interface{ Render() string }, error) { return vids.Sensitivity(attackScale(opts)) }},
		{"ablation", func() (interface{ Render() string }, error) { return vids.Ablation(attackScale(opts)) }},
		{"auth", func() (interface{ Render() string }, error) { return vids.Auth(attackScale(opts)) }},
		{"prevention", func() (interface{ Render() string }, error) { return vids.Prevention(attackScale(opts)) }},
		{"engine", func() (interface{ Render() string }, error) { return vids.EngineScaling(opts) }},
		{"backends", func() (interface{ Render() string }, error) { return vids.Backends(opts) }},
	}

	matched := false
	for _, r := range runners {
		if which != "all" && which != r.name {
			continue
		}
		matched = true
		fmt.Printf("==== %s ====\n", r.name)
		start := time.Now()
		res, err := r.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q (want fig8|fig9|fig10|cpu|memory|accuracy|sensitivity|ablation|auth|prevention|engine|backends|all)", which)
	}
	return nil
}

// mediaScale bounds the media-heavy experiments: full two-hour media
// runs simulate millions of RTP packets, so even at paper scale they
// run over a shorter window.
func mediaScale(o vids.ExperimentOptions, fast bool) vids.ExperimentOptions {
	if o.Duration == 0 || o.Duration > 10*time.Minute {
		o.Duration = 10 * time.Minute
	}
	if fast {
		o.Duration = 2 * time.Minute
	}
	o.WithMedia = true
	return o
}

// attackScale bounds the attack scenarios, which need only a few
// minutes of background traffic each.
func attackScale(o vids.ExperimentOptions) vids.ExperimentOptions {
	if o.Duration == 0 || o.Duration > 2*time.Minute {
		o.Duration = 2 * time.Minute
	}
	if o.UAs == 0 || o.UAs > 6 {
		o.UAs = 6
	}
	if o.MeanCallInterval == 0 {
		o.MeanCallInterval = 45 * time.Second
	}
	if o.MeanCallDuration == 0 {
		o.MeanCallDuration = 20 * time.Second
	}
	return o
}
