package main

import "testing"

func TestFastSingleExperiments(t *testing.T) {
	for _, which := range []string{"memory", "ablation", "auth", "engine"} {
		if err := run([]string{"-fast", which}); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
	}
	if err := run([]string{"nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
