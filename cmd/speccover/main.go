// Command speccover measures specification transition coverage: it
// runs the real detection machines (ids.Specs) under the
// core.CoverageObserver hook across the full evaluation scenario
// suite, replays synthesized witness traces for the transitions the
// suite misses, merges the runtime observations with the static
// reachability of speclint's bounded product exploration, and emits a
// deterministic per-transition report.
//
// Usage:
//
//	speccover                       # print the report summary
//	speccover -write SPEC_COVERAGE.json
//	speccover -baseline SPEC_COVERAGE.json   # CI gate
//	speccover -traces DIR           # write gap witness traces (JSONL)
//	speccover -json                 # full report on stdout as JSON
//
// Exit status: 0 clean, 1 coverage gap or baseline mismatch, 2
// operational error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"vids/internal/ids"
	"vids/internal/sim"
	"vids/internal/speclint"
)

func main() {
	fs := flag.NewFlagSet("speccover", flag.ExitOnError)
	var (
		baseline = fs.String("baseline", "", "compare the report against this committed JSON file and fail on any difference")
		write    = fs.String("write", "", "write the report JSON to this file")
		traces   = fs.String("traces", "", "write synthesized gap witness traces (JSONL, replayable with vids -replay) into this directory")
		jsonOut  = fs.Bool("json", false, "print the full report as JSON instead of a summary")
		seed     = fs.Int64("seed", 1, "scenario suite seed")
	)
	_ = fs.Parse(os.Args[1:])
	code, err := run(*baseline, *write, *traces, *jsonOut, *seed, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "speccover:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func newSim() *sim.Simulator { return sim.New(1) }

func run(baseline, write, tracesDir string, jsonOut bool, seed int64, out, diag io.Writer) (int, error) {
	rep, err := computeReport(seed, tracesDir)
	if err != nil {
		return 0, err
	}

	if write != "" {
		if err := writeReport(rep, write); err != nil {
			return 0, err
		}
		fmt.Fprintf(diag, "speccover: report written to %s\n", write)
	}
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 0, err
		}
	} else {
		printSummary(out, rep)
	}

	code := 0
	if rep.Summary.Uncovered > 0 {
		fmt.Fprintf(diag, "speccover: %d reachable transition(s) uncovered\n", rep.Summary.Uncovered)
		code = 1
	}
	if baseline != "" {
		if err := compareBaseline(diag, rep, baseline); err != nil {
			fmt.Fprintf(diag, "speccover: %v\n", err)
			code = 1
		}
	}
	return code, nil
}

// computeReport runs the full measurement: static universe and
// reachability, the scenario suite under the observer, then gap
// synthesis for whatever the suite missed.
func computeReport(seed int64, tracesDir string) (Report, error) {
	cfg := ids.DefaultConfig()
	specs := ids.Specs(cfg)
	universe := speclint.AllTransitions(specs)
	reachable := speclint.ReachableTransitions(specs, len(ids.SystemSpecs(cfg)), speclint.DefaultOptions())

	rec := newRecorder()
	if err := runSuite(seed, rec); err != nil {
		return Report{}, err
	}
	if err := closeGaps(rec, tracesDir); err != nil {
		return Report{}, err
	}
	return buildReport(universe, reachable, rec.fired, waivers()), nil
}

func writeReport(rep Report, path string) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// compareBaseline enforces the committed report: the freshly computed
// one must match byte-for-byte (both are fully deterministic), so any
// spec change, lost coverage or stale waiver fails CI until the
// baseline is regenerated with -write and reviewed.
func compareBaseline(out io.Writer, rep Report, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if diffs := diffReports(base, rep); len(diffs) > 0 {
		for _, d := range diffs {
			fmt.Fprintf(out, "  baseline drift: %s\n", d)
		}
		return fmt.Errorf("report drifted from %s in %d place(s): regenerate with -write %s and review the diff", path, len(diffs), path)
	}
	return nil
}

// diffReports lists human-readable differences between two reports.
func diffReports(base, cur Report) []string {
	var diffs []string
	index := func(rep Report) map[speclint.TransitionKey]Record {
		m := make(map[speclint.TransitionKey]Record, len(rep.Transitions))
		for _, r := range rep.Transitions {
			m[r.TransitionKey] = r
		}
		return m
	}
	bi, ci := index(base), index(cur)
	for _, r := range base.Transitions {
		c, ok := ci[r.TransitionKey]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("transition %s dropped from the spec", fmtKey(r.TransitionKey)))
			continue
		}
		if c.Status != r.Status || c.By != r.By || c.Reason != r.Reason {
			diffs = append(diffs, fmt.Sprintf("%s: %s(%s) -> %s(%s)", fmtKey(r.TransitionKey), r.Status, r.By, c.Status, c.By))
		}
	}
	for _, r := range cur.Transitions {
		if _, ok := bi[r.TransitionKey]; !ok {
			diffs = append(diffs, fmt.Sprintf("new transition %s not in baseline", fmtKey(r.TransitionKey)))
		}
	}
	return diffs
}

func fmtKey(k speclint.TransitionKey) string {
	label := ""
	if k.Label != "" {
		label = " !" + k.Label
	}
	return fmt.Sprintf("%s: %s -%s-> %s%s", k.Machine, k.From, k.Event, k.To, label)
}

func printSummary(out io.Writer, rep Report) {
	s := rep.Summary
	fmt.Fprintf(out, "spec coverage: %d transitions, %d reachable, %d covered (%d via gap traces), %d waived, %d unreachable, %d uncovered\n",
		s.Total, s.Reachable, s.Covered, s.GapTraces, s.Waived, s.Unreachable, s.Uncovered)
	for _, r := range rep.Transitions {
		if r.Status == StatusUncovered {
			fmt.Fprintf(out, "  UNCOVERED %s\n", fmtKey(r.TransitionKey))
		}
	}
}
