package main

import (
	"reflect"
	"testing"

	"vids/internal/engine"
	"vids/internal/ids"
	"vids/internal/trace"
)

// TestBackendWitnessParity replays every synthesized coverage witness
// trace through both EFSM backends and requires the identical alert
// multiset. The gap traces exist precisely because the scenario suite
// does not reach these transitions, so this is the differential test
// that exercises the compiled dispatch tables on the rare corners —
// legitimate CANCELs, reopen/close cycles, spam absorption, stray
// responses — where a miscompiled guard would otherwise hide.
func TestBackendWitnessParity(t *testing.T) {
	for _, gt := range gapTraces() {
		alerts := make(map[ids.Backend][]ids.Alert, 2)
		for _, backend := range []ids.Backend{ids.BackendCompiled, ids.BackendInterpreted} {
			cfg := ids.DefaultConfig()
			cfg.Backend = backend
			s := newSim()
			d := ids.New(s, cfg)
			if err := trace.Replay(s, gt.entries, d); err != nil {
				t.Fatalf("%s/%s: replay: %v", gt.name, backend, err)
			}
			if err := s.RunAll(); err != nil {
				t.Fatalf("%s/%s: run: %v", gt.name, backend, err)
			}
			got := d.Alerts()
			engine.SortAlerts(got)
			alerts[backend] = got
		}
		compiled, interpreted := alerts[ids.BackendCompiled], alerts[ids.BackendInterpreted]
		if !reflect.DeepEqual(compiled, interpreted) {
			t.Errorf("%s: alert sets diverge between backends\ncompiled:    %+v\ninterpreted: %+v",
				gt.name, compiled, interpreted)
		}
	}
}
