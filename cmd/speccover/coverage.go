package main

import (
	"fmt"
	"sort"
	"strings"

	"vids/internal/core"
	"vids/internal/ids"
	"vids/internal/scenario"
	"vids/internal/speclint"
	"vids/internal/trace"
	"vids/internal/workload"
)

// Transition statuses, from best to worst. The CI gate accepts a
// report only when no transition is "uncovered".
const (
	// StatusScenario: fired while the evaluation scenario suite ran.
	StatusScenario = "scenario"
	// StatusGapTrace: not reached by the suite, but a synthesized
	// witness trace (written next to the report) concretely fires it.
	StatusGapTrace = "gap-trace"
	// StatusWaived: statically reachable in the over-approximated
	// product but concretely impossible; carries a justification.
	StatusWaived = "waived"
	// StatusUnreachable: the bounded product exploration never fires
	// it — speclint reports the contradiction separately.
	StatusUnreachable = "unreachable"
	// StatusUncovered: reachable, not waived, and nothing fired it.
	StatusUncovered = "uncovered"
)

// Record is one transition's coverage verdict in the report.
type Record struct {
	speclint.TransitionKey
	Status string `json:"status"`
	// By names what covered the transition: a scenario name, or the
	// witness trace file that closes the gap.
	By string `json:"by,omitempty"`
	// Reason justifies a waiver.
	Reason string `json:"reason,omitempty"`
}

// Report is the committed SPEC_COVERAGE.json: fully deterministic
// (sorted, no timestamps) so it doubles as a golden file.
type Report struct {
	// Suite lists the scenarios that produced the runtime half.
	Suite []string `json:"suite"`
	// Transitions holds one record per declared spec transition,
	// sorted by (machine, from, event, to, label).
	Transitions []Record `json:"transitions"`
	Summary     Summary  `json:"summary"`
}

// Summary aggregates the per-transition verdicts.
type Summary struct {
	Total       int `json:"total"`
	Reachable   int `json:"reachable"`
	Covered     int `json:"covered"` // scenario + gap-trace
	GapTraces   int `json:"gapTraces"`
	Waived      int `json:"waived"`
	Unreachable int `json:"unreachable"`
	Uncovered   int `json:"uncovered"`
}

// recorder implements core.CoverageObserver, remembering the first
// source (scenario or trace name) that fired each transition.
type recorder struct {
	source string
	fired  map[speclint.TransitionKey]string
}

func newRecorder() *recorder {
	return &recorder{fired: make(map[speclint.TransitionKey]string)}
}

func (r *recorder) TransitionFired(machine string, from core.State, event string, to core.State, label string) {
	k := speclint.TransitionKey{Machine: machine, From: from, Event: event, To: to, Label: label}
	if _, ok := r.fired[k]; !ok {
		r.fired[k] = r.source
	}
}

func (r *recorder) DeltaEmitted(machine, target, event string) {}

func (r *recorder) AttackEntered(machine string, state core.State) {}

// runSuite plays every evaluation scenario with the observer
// installed on the testbed IDS before any traffic flows.
func runSuite(seed int64, rec *recorder) error {
	for _, name := range scenario.Names {
		rec.source = "scenario:" + name
		_, err := scenario.Run(name, scenario.Options{
			Seed:    seed,
			Prepare: func(tb *workload.Testbed) { tb.IDS.SetCoverage(rec) },
		})
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
	}
	return nil
}

// replayEntries feeds one synthesized trace into a fresh IDS under
// the observer — the same path `vids -replay` takes — so a gap trace
// only counts if it concretely fires transitions.
func replayEntries(entries []trace.Entry, rec *recorder, source string) error {
	rec.source = source
	s := newSim()
	d := ids.New(s, ids.DefaultConfig())
	d.SetCoverage(rec)
	if err := trace.Replay(s, entries, d); err != nil {
		return err
	}
	return s.RunAll()
}

// buildReport merges the three evidence sources into one verdict per
// declared transition.
func buildReport(universe []speclint.TransitionKey, reachable map[speclint.TransitionKey]bool,
	fired map[speclint.TransitionKey]string, waivers map[speclint.TransitionKey]string) Report {
	rep := Report{Suite: scenario.Names}
	for _, k := range universe {
		r := Record{TransitionKey: k}
		by, covered := fired[k]
		reason, waived := waivers[k]
		switch {
		case covered:
			if strings.HasPrefix(by, "trace:") {
				r.Status = StatusGapTrace
			} else {
				r.Status = StatusScenario
			}
			r.By = by
		case waived:
			r.Status = StatusWaived
			r.Reason = reason
		case !reachable[k]:
			r.Status = StatusUnreachable
		default:
			r.Status = StatusUncovered
		}
		rep.Transitions = append(rep.Transitions, r)
	}
	sort.Slice(rep.Transitions, func(i, j int) bool {
		return rep.Transitions[i].TransitionKey.Less(rep.Transitions[j].TransitionKey)
	})
	for _, r := range rep.Transitions {
		rep.Summary.Total++
		if reachable[r.TransitionKey] {
			rep.Summary.Reachable++
		}
		switch r.Status {
		case StatusScenario:
			rep.Summary.Covered++
		case StatusGapTrace:
			rep.Summary.Covered++
			rep.Summary.GapTraces++
		case StatusWaived:
			rep.Summary.Waived++
		case StatusUnreachable:
			rep.Summary.Unreachable++
		case StatusUncovered:
			rep.Summary.Uncovered++
		}
	}
	return rep
}
