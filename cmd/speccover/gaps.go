package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vids/internal/ids"
	"vids/internal/rtp"
	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/speclint"
	"vids/internal/trace"
)

// waivers returns the transitions that the over-approximated product
// exploration fires but that can never fire concretely, each with its
// justification. The exploration abstracts guards and timer causality
// to "may happen", so it cannot see these contradictions; the baseline
// gate keeps the list honest — a waived transition that ever fires at
// runtime shows up as a report drift and fails CI.
func waivers() map[speclint.TransitionKey]string {
	const timerPending = "timer T is armed only on entering RTP_RCVD_AFTER_BYE; " +
		"with a timer pending the machine can only be in AFTER_BYE, RTP_RCVD " +
		"(after a 401 reopen) or an attack state entered from RTP_RCVD, so the " +
		"expiry can never find it here"
	w := map[speclint.TransitionKey]string{
		{Machine: "invite-flood", From: ids.FloodInit, Event: ids.EvTimerT1, To: ids.FloodInit}: "T1 is armed only by the INIT->PACKET_RCVD transition and every " +
			"return to INIT consumes the pending timer, so T1 can never expire with the machine in INIT",
		{Machine: "response-flood", From: ids.FloodInit, Event: ids.EvTimerT1, To: ids.FloodInit}: "T1 is armed only by the INIT->PACKET_RCVD transition and every " +
			"return to INIT consumes the pending timer, so T1 can never expire with the machine in INIT",
	}
	for _, m := range []string{ids.MachineRTPCaller, ids.MachineRTPCallee} {
		w[speclint.TransitionKey{Machine: m, From: ids.RTPOpen, Event: ids.EvTimerT, To: ids.RTPOpen}] = timerPending
		w[speclint.TransitionKey{Machine: m, From: ids.RTPClose, Event: ids.EvTimerT, To: ids.RTPClose}] = timerPending
		w[speclint.TransitionKey{Machine: m, From: ids.RTPAttackByeDoS, Event: ids.EvTimerT, To: ids.RTPAttackByeDoS}] = "ATTACK_BYE_DOS is entered only from RTP_CLOSE, which is reachable " +
			"only after any pending timer T has already fired, so no expiry can arrive here"
		w[speclint.TransitionKey{Machine: m, From: ids.RTPAttackTollFraud, Event: ids.EvTimerT, To: ids.RTPAttackTollFraud}] = "ATTACK_TOLL_FRAUD is entered only from RTP_CLOSE, which is reachable " +
			"only after any pending timer T has already fired, so no expiry can arrive here"
		w[speclint.TransitionKey{Machine: m, From: ids.RTPAfterBye, Event: ids.EvDeltaReopen, To: ids.RTPOpen}] = "RTP_RCVD_AFTER_BYE is entered only from RTP_RCVD, whose entry actions " +
			"set l.started, so the not-started reopen branch is dead here"
	}
	return w
}

// closeGaps synthesizes witness traces for reachable transitions the
// scenario suite missed and replays each through a fresh IDS under
// the observer, so a gap only counts as closed when the trace
// concretely fires it. With tracesDir set the traces are also written
// as JSONL files replayable by `vids -replay`.
func closeGaps(rec *recorder, tracesDir string) error {
	for _, gt := range gapTraces() {
		file := gt.name + ".jsonl"
		if err := replayEntries(gt.entries, rec, "trace:"+file); err != nil {
			return fmt.Errorf("gap trace %s: %w", gt.name, err)
		}
		if tracesDir == "" {
			continue
		}
		if err := writeTrace(filepath.Join(tracesDir, file), gt.entries); err != nil {
			return err
		}
	}
	return nil
}

func writeTrace(path string, entries []trace.Entry) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := trace.NewWriter(f)
	for _, e := range entries {
		if err := w.Record(e.Packet(), e.At()); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// gapTrace is one named synthesized packet sequence.
type gapTrace struct {
	name    string
	entries []trace.Entry
}

// gapTraces builds every witness trace. Each one is a self-contained
// wire-level packet sequence against a fresh IDS; the builders below
// document which uncovered transitions they exist to fire.
func gapTraces() []gapTrace {
	return []gapTrace{
		{"gap-cancel-legit", buildCancelLegit()},
		{"gap-cancel-ringing", buildCancelRinging()},
		{"gap-cancel-spoofed", buildCancelSpoofed()},
		{"gap-invite-final", buildInviteFinal()},
		{"gap-teardown", buildTeardown()},
		{"gap-post-close", buildPostClose()},
		{"gap-reopen-close", buildReopenClose()},
		{"gap-codec", buildCodec()},
		{"gap-spam-absorb", buildSpamAbsorb()},
		{"gap-flood", buildFlood()},
		{"gap-spoofed-bye", buildSpoofedBye()},
		{"gap-hijack-absorb", buildHijackAbsorb()},
		{"gap-rtp-spam", buildRTPSpam()},
		{"gap-stray-response", buildStrayResponse()},
	}
}

// ---------------------------------------------------------------------------
// Packet crafting
// ---------------------------------------------------------------------------

// Shared topology of the crafted dialogs. The attacker host matches no
// stored dialog contact, so its requests fail every known-party guard.
var (
	gapProxyA   = sim.Addr{Host: "proxy.a.example.com", Port: 5060}
	gapProxyB   = sim.Addr{Host: "proxy.b.example.com", Port: 5060}
	gapAttacker = sim.Addr{Host: "attacker.example.net", Port: 5060}
)

const (
	gapSSRCCaller = 0x11
	gapSSRCCallee = 0x22
)

// tracer accumulates trace entries with explicit virtual timestamps.
type tracer struct {
	entries []trace.Entry
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func (t *tracer) add(at time.Duration, from, to sim.Addr, proto sim.Proto, raw []byte) {
	t.entries = append(t.entries, trace.Entry{
		AtNanos:  int64(at),
		Proto:    proto.String(),
		FromHost: from.Host,
		FromPort: from.Port,
		ToHost:   to.Host,
		ToPort:   to.Port,
		Size:     len(raw),
		Data:     raw,
	})
}

func (t *tracer) sip(at time.Duration, from, to sim.Addr, m *sipmsg.Message) {
	t.add(at, from, to, sim.ProtoSIP, m.Bytes())
}

func (t *tracer) rtp(at time.Duration, from, to sim.Addr, p *rtp.Packet) {
	raw, err := p.Marshal()
	if err != nil {
		panic(err) // crafted packets are always well-formed
	}
	t.add(at, from, to, sim.ProtoRTP, raw)
}

// dialog crafts the messages of one call. The INVITE's SDP advertises
// callerMedia (the destination rtp-callee watches) and the 200 OK's
// SDP advertises calleeMedia (watched by rtp-caller).
type dialog struct {
	id                 string
	callerUA, calleeUA sim.Addr
	callerMedia        sim.Addr
	calleeMedia        sim.Addr
	inv, ok            *sipmsg.Message
	cseq               int
}

func newDialog(n int) *dialog {
	return &dialog{
		id:          fmt.Sprintf("gap-%d@ua1.a.example.com", n),
		callerUA:    sim.Addr{Host: "ua1.a.example.com", Port: 5060},
		calleeUA:    sim.Addr{Host: "ua2.b.example.com", Port: 5060},
		callerMedia: sim.Addr{Host: "ua1.a.example.com", Port: 20000 + 2*n},
		calleeMedia: sim.Addr{Host: "ua2.b.example.com", Port: 30000 + 2*n},
		cseq:        1,
	}
}

func (d *dialog) callerAOR() sipmsg.URI { return sipmsg.URI{User: "alice", Host: "a.example.com"} }
func (d *dialog) calleeAOR() sipmsg.URI {
	return sipmsg.URI{User: "bob" + d.id[4:5], Host: "b.example.com"}
}

// invite builds (and memoizes) the initial INVITE. withSDP controls
// whether the caller offers media — without it rtp-callee stays INIT.
func (d *dialog) invite(withSDP bool) *sipmsg.Message {
	if d.inv != nil {
		return d.inv
	}
	inv := sipmsg.NewRequest(sipmsg.INVITE, d.calleeAOR())
	inv.Via = []sipmsg.Via{{Transport: "UDP", Host: gapProxyA.Host, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bK" + d.id}}}
	inv.From = sipmsg.NameAddr{URI: d.callerAOR()}.WithTag("t1")
	inv.To = sipmsg.NameAddr{URI: d.calleeAOR()}
	inv.CallID = d.id
	inv.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: d.callerUA.Host}}
	inv.Contact = &contact
	if withSDP {
		inv.ContentType = "application/sdp"
		inv.Body = sdp.New("alice", d.callerMedia.Host, d.callerMedia.Port, sdp.PayloadG729).Marshal()
	}
	d.inv = inv
	return inv
}

// okInvite builds (and memoizes) the 200 OK answering the INVITE,
// tagging the callee and optionally answering with media.
func (d *dialog) okInvite(withSDP bool) *sipmsg.Message {
	if d.ok != nil {
		return d.ok
	}
	ok := sipmsg.NewResponse(d.inv, sipmsg.StatusOK)
	ok.To = ok.To.WithTag("t2")
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: d.calleeUA.Host}}
	ok.Contact = &contact
	if withSDP {
		ok.ContentType = "application/sdp"
		ok.Body = sdp.New("bob", d.calleeMedia.Host, d.calleeMedia.Port, sdp.PayloadG729).Marshal()
	}
	d.ok = ok
	return ok
}

// response answers the INVITE with an arbitrary status, tagged when
// the dialog has progressed far enough for the callee to have a tag.
func (d *dialog) response(code int, tagged bool) *sipmsg.Message {
	r := sipmsg.NewResponse(d.inv, code)
	if tagged {
		r.To = r.To.WithTag("t2")
	}
	return r
}

func (d *dialog) ack() *sipmsg.Message {
	a := sipmsg.NewRequest(sipmsg.ACK, d.calleeAOR())
	a.Via = []sipmsg.Via{{Transport: "UDP", Host: d.callerUA.Host, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKack" + d.id}}}
	a.From = d.inv.From
	a.To = d.inv.To
	if d.ok != nil {
		a.To = d.ok.To
	}
	a.CallID = d.id
	a.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.ACK}
	return a
}

// bye builds an in-dialog BYE from the named party ("caller" or
// "callee"). The From tag decides which party the SIP machine records
// as g.byeSender, and the transport source must match that party's
// contact for the known-party guard.
func (d *dialog) bye(party string) *sipmsg.Message {
	d.cseq++
	b := sipmsg.NewRequest(sipmsg.BYE, d.calleeAOR())
	b.CallID = d.id
	b.CSeq = sipmsg.CSeq{Seq: uint32(d.cseq), Method: sipmsg.BYE}
	if party == "callee" {
		b.From = d.ok.To // callee's identity carries tag t2
		b.To = d.inv.From
		b.Via = []sipmsg.Via{{Transport: "UDP", Host: d.calleeUA.Host, Port: 5060,
			Params: map[string]string{"branch": fmt.Sprintf("z9hG4bKbye%d%s", d.cseq, d.id)}}}
		return b
	}
	b.From = d.inv.From
	b.To = d.inv.To
	if d.ok != nil {
		b.To = d.ok.To
	}
	b.Via = []sipmsg.Via{{Transport: "UDP", Host: d.callerUA.Host, Port: 5060,
		Params: map[string]string{"branch": fmt.Sprintf("z9hG4bKbye%d%s", d.cseq, d.id)}}}
	return b
}

// byeSrc is the transport address matching bye(party).
func (d *dialog) byeSrc(party string) sim.Addr {
	if party == "callee" {
		return d.calleeUA
	}
	return d.callerUA
}

// cancel builds a CANCEL for the outstanding INVITE with the given
// From tag (the legitimacy guard also checks the transport source).
func (d *dialog) cancel(from sipmsg.NameAddr) *sipmsg.Message {
	c := sipmsg.NewRequest(sipmsg.CANCEL, d.calleeAOR())
	c.Via = []sipmsg.Via{{Transport: "UDP", Host: gapProxyA.Host, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKcancel" + d.id}}}
	c.From = from
	c.To = d.inv.To
	c.CallID = d.id
	c.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.CANCEL}
	return c
}

// reInvite builds an in-dialog INVITE from the caller (tagged To, so
// it neither looks like an initial INVITE to the flood detector nor
// like a retransmission to the SIP machine).
func (d *dialog) reInvite(from sipmsg.NameAddr) *sipmsg.Message {
	d.cseq++
	inv := sipmsg.NewRequest(sipmsg.INVITE, d.calleeAOR())
	inv.Via = []sipmsg.Via{{Transport: "UDP", Host: d.callerUA.Host, Port: 5060,
		Params: map[string]string{"branch": fmt.Sprintf("z9hG4bKre%d%s", d.cseq, d.id)}}}
	inv.From = from
	inv.To = d.ok.To
	inv.CallID = d.id
	inv.CSeq = sipmsg.CSeq{Seq: uint32(d.cseq), Method: sipmsg.INVITE}
	return inv
}

func (d *dialog) rtpPkt(pt uint8, ssrc uint32, seq uint16, ts uint32) *rtp.Packet {
	return &rtp.Packet{PayloadType: pt, SSRC: ssrc, Sequence: seq, Timestamp: ts,
		Payload: []byte{0}}
}

// callerRTP emits one packet of the caller's stream (watched by
// rtp-caller: destination is the 200 OK's advertised media address).
func (d *dialog) callerRTP(t *tracer, at time.Duration, pt uint8, ssrc uint32, seq uint16, ts uint32) {
	from := sim.Addr{Host: d.callerUA.Host, Port: d.callerMedia.Port}
	t.rtp(at, from, d.calleeMedia, d.rtpPkt(pt, ssrc, seq, ts))
}

// calleeRTP emits one packet of the callee's stream (watched by
// rtp-callee: destination is the INVITE's advertised media address).
func (d *dialog) calleeRTP(t *tracer, at time.Duration, pt uint8, ssrc uint32, seq uint16, ts uint32) {
	from := sim.Addr{Host: d.calleeUA.Host, Port: d.calleeMedia.Port}
	t.rtp(at, from, d.callerMedia, d.rtpPkt(pt, ssrc, seq, ts))
}

// establish plays INVITE/200/ACK at base, base+10ms, base+20ms.
func (d *dialog) establish(t *tracer, base time.Duration, inviteSDP, okSDP bool) {
	t.sip(base, gapProxyA, gapProxyB, d.invite(inviteSDP))
	t.sip(base+ms(10), gapProxyB, gapProxyA, d.okInvite(okSDP))
	t.sip(base+ms(20), d.callerUA, d.calleeUA, d.ack())
}

// ---------------------------------------------------------------------------
// Trace builders. Each comment lists the transitions the trace closes.
// Timer T (after-BYE grace) is 250 ms and the flood window T1 is 1 s
// under ids.DefaultConfig, which replayEntries uses.
// ---------------------------------------------------------------------------

// buildCancelLegit: a caller abandons a pending call.
// sip: INVITE_RCVD provisional/retransmission loops, legitimate
// CANCEL -> CANCEL_WAIT, all CANCEL_WAIT loops, 487 -> CLOSED and the
// CLOSED absorbers. rtp-callee: RTP_OPEN -delta.bye-> RTP_CLOSE.
// rtp-caller: INIT -delta.bye-> RTP_CLOSE (no answer ever carried SDP).
func buildCancelLegit() []trace.Entry {
	t := &tracer{}
	d := newDialog(1)
	t.sip(ms(10), gapProxyA, gapProxyB, d.invite(true))
	t.sip(ms(20), gapProxyB, gapProxyA, d.response(sipmsg.StatusTrying, false))
	t.sip(ms(30), gapProxyA, gapProxyB, d.invite(true)) // retransmission
	cancel := d.cancel(d.inv.From)
	t.sip(ms(40), gapProxyA, gapProxyB, cancel)
	t.sip(ms(50), gapProxyB, gapProxyA, sipmsg.NewResponse(cancel, sipmsg.StatusOK))
	t.sip(ms(60), d.callerUA, d.calleeUA, d.ack())
	t.sip(ms(70), gapProxyA, gapProxyB, cancel) // retransmission
	t.sip(ms(80), gapProxyB, gapProxyA, d.response(sipmsg.StatusRequestTerminated, false))
	t.sip(ms(90), d.callerUA, d.calleeUA, d.ack())
	t.sip(ms(100), gapProxyB, gapProxyA, d.response(sipmsg.StatusRinging, false))
	t.sip(ms(110), d.callerUA, d.calleeUA, d.bye("caller"))
	return t.entries
}

// buildCancelRinging: the same abandonment after alerting started.
// sip: RINGING response/INVITE-retransmission loops and the
// legitimate CANCEL from RINGING -> CANCEL_WAIT.
func buildCancelRinging() []trace.Entry {
	t := &tracer{}
	d := newDialog(2)
	t.sip(ms(10), gapProxyA, gapProxyB, d.invite(true))
	t.sip(ms(20), gapProxyB, gapProxyA, d.response(sipmsg.StatusRinging, true))
	t.sip(ms(30), gapProxyB, gapProxyA, d.response(183, true))
	t.sip(ms(40), gapProxyA, gapProxyB, d.invite(true)) // retransmission
	t.sip(ms(50), gapProxyA, gapProxyB, d.cancel(d.inv.From))
	t.sip(ms(60), gapProxyB, gapProxyA, d.response(sipmsg.StatusRequestTerminated, false))
	return t.entries
}

// buildCancelSpoofed: a third party cancels a call it never placed.
// sip: INVITE_RCVD -cancel-> ATTACK_SPOOFED_CANCEL and the attack
// state's bye/cancel/invite absorbers.
func buildCancelSpoofed() []trace.Entry {
	t := &tracer{}
	d := newDialog(3)
	t.sip(ms(10), gapProxyA, gapProxyB, d.invite(true))
	evil := sipmsg.NameAddr{URI: sipmsg.URI{User: "mallory", Host: gapAttacker.Host}}.WithTag("evil")
	t.sip(ms(20), gapAttacker, gapProxyB, d.cancel(evil))
	t.sip(ms(30), d.callerUA, d.calleeUA, d.bye("caller"))
	t.sip(ms(40), gapAttacker, gapProxyB, d.cancel(evil))
	t.sip(ms(50), gapProxyA, gapProxyB, d.invite(true))
	return t.entries
}

// buildInviteFinal: failed and immediately-answered call attempts.
// sip: INVITE_RCVD -response-> CLOSED (486), RINGING -response->
// CLOSED, and the direct INVITE_RCVD -response-> CALL_ESTABLISHED
// (200 with no 180 first). The first attempt offers no SDP, so its
// teardown fires rtp-callee INIT -delta.bye-> RTP_CLOSE.
func buildInviteFinal() []trace.Entry {
	t := &tracer{}
	d1 := newDialog(4)
	t.sip(ms(10), gapProxyA, gapProxyB, d1.invite(false))
	t.sip(ms(20), gapProxyB, gapProxyA, d1.response(sipmsg.StatusBusyHere, false))

	d2 := newDialog(5)
	t.sip(ms(30), gapProxyA, gapProxyB, d2.invite(true))
	t.sip(ms(40), gapProxyB, gapProxyA, d2.response(sipmsg.StatusRinging, true))
	t.sip(ms(50), gapProxyB, gapProxyA, d2.response(sipmsg.StatusBusyHere, true))

	d3 := newDialog(6)
	t.sip(ms(60), gapProxyA, gapProxyB, d3.invite(true))
	t.sip(ms(70), gapProxyB, gapProxyA, d3.okInvite(true))
	t.sip(ms(80), d3.callerUA, d3.calleeUA, d3.ack())
	bye := d3.bye("caller")
	t.sip(ms(90), d3.callerUA, d3.calleeUA, bye)
	t.sip(ms(100), gapProxyB, gapProxyA, sipmsg.NewResponse(bye, sipmsg.StatusOK))
	return t.entries
}

// buildTeardown: a hangup whose BYE is first challenged with 401.
// sip: CALL_ESTABLISHED re-INVITE loop, CALL_TEARDOWN
// bye/ack/response loops and the 401 -response-> CALL_ESTABLISHED
// reopen. rtp-caller/rtp-callee: RTP_RCVD_AFTER_BYE -delta.reopen->
// RTP_RCVD and the stale RTP_RCVD -timer.T-> RTP_RCVD.
func buildTeardown() []trace.Entry {
	t := &tracer{}
	d := newDialog(7)
	d.establish(t, ms(10), true, true)
	d.callerRTP(t, ms(50), sdp.PayloadG729, gapSSRCCaller, 1, 160)
	d.calleeRTP(t, ms(55), sdp.PayloadG729, gapSSRCCallee, 1, 160)
	t.sip(ms(90), d.callerUA, d.calleeUA, d.reInvite(d.inv.From))
	bye1 := d.bye("caller")
	t.sip(ms(100), d.callerUA, d.calleeUA, bye1)
	t.sip(ms(110), d.callerUA, d.calleeUA, bye1) // retransmission
	t.sip(ms(120), d.callerUA, d.calleeUA, d.ack())
	t.sip(ms(130), gapProxyB, gapProxyA, d.response(sipmsg.StatusRinging, true))
	t.sip(ms(150), gapProxyB, gapProxyA, sipmsg.NewResponse(bye1, sipmsg.StatusUnauthorized))
	// Timer T from the first BYE fires at 350 ms with both RTP
	// machines back in RTP_RCVD.
	bye2 := d.bye("caller")
	t.sip(ms(400), d.callerUA, d.calleeUA, bye2)
	t.sip(ms(450), gapProxyB, gapProxyA, sipmsg.NewResponse(bye2, sipmsg.StatusOK))
	return t.entries
}

// buildPostClose: both parties keep talking after the call closed.
// First dialog: the callee hangs up, so its continuing stream is toll
// fraud and the caller's is BYE DoS — rtp-callee RTP_CLOSE ->
// ATTACK_TOLL_FRAUD, rtp-caller RTP_CLOSE -> ATTACK_BYE_DOS, plus
// those attack states' rtp/delta.reopen/delta.bye absorbers. Second
// dialog mirrors the roles for the remaining two attack states.
func buildPostClose() []trace.Entry {
	t := &tracer{}
	for i, party := range []string{"callee", "caller"} {
		d := newDialog(8 + i)
		base := time.Duration(i) * ms(600)
		d.establish(t, base+ms(10), true, true)
		d.callerRTP(t, base+ms(40), sdp.PayloadG729, gapSSRCCaller, 1, 160)
		d.calleeRTP(t, base+ms(45), sdp.PayloadG729, gapSSRCCallee, 1, 160)
		bye1 := d.bye(party)
		t.sip(base+ms(100), d.byeSrc(party), gapProxyB, bye1)
		// Timer T fires at +350 ms; both machines reach RTP_CLOSE.
		d.calleeRTP(t, base+ms(400), sdp.PayloadG729, gapSSRCCallee, 2, 320)
		d.callerRTP(t, base+ms(405), sdp.PayloadG729, gapSSRCCaller, 2, 320)
		d.calleeRTP(t, base+ms(410), sdp.PayloadG729, gapSSRCCallee, 3, 480)
		d.callerRTP(t, base+ms(415), sdp.PayloadG729, gapSSRCCaller, 3, 480)
		t.sip(base+ms(450), gapProxyB, gapProxyA, sipmsg.NewResponse(bye1, sipmsg.StatusUnauthorized))
		bye2 := d.bye(party)
		t.sip(base+ms(500), d.byeSrc(party), gapProxyB, bye2)
		t.sip(base+ms(550), gapProxyB, gapProxyA, sipmsg.NewResponse(bye2, sipmsg.StatusOK))
	}
	return t.entries
}

// buildReopenClose: a 401-challenged BYE arrives after timer T
// already closed the machines. One direction of each dialog never
// started, so the reopen lands in RTP_CLOSE both started and not:
// RTP_CLOSE -delta.reopen-> RTP_RCVD / RTP_OPEN for both machines,
// plus RTP_OPEN -delta.bye-> RTP_CLOSE for both.
func buildReopenClose() []trace.Entry {
	t := &tracer{}
	for i, calleeTalks := range []bool{true, false} {
		d := newDialog(10 + i)
		base := time.Duration(i) * ms(800)
		d.establish(t, base+ms(10), true, true)
		if calleeTalks {
			d.calleeRTP(t, base+ms(40), sdp.PayloadG729, gapSSRCCallee, 1, 160)
		} else {
			d.callerRTP(t, base+ms(40), sdp.PayloadG729, gapSSRCCaller, 1, 160)
		}
		bye1 := d.bye("caller")
		t.sip(base+ms(100), d.callerUA, d.calleeUA, bye1)
		// Timer T fires at +350 ms: the started machine reaches
		// RTP_CLOSE; the silent one went there straight from RTP_OPEN.
		t.sip(base+ms(450), gapProxyB, gapProxyA, sipmsg.NewResponse(bye1, sipmsg.StatusUnauthorized))
		bye2 := d.bye("caller")
		t.sip(base+ms(500), d.callerUA, d.calleeUA, bye2)
		t.sip(base+ms(550), gapProxyB, gapProxyA, sipmsg.NewResponse(bye2, sipmsg.StatusOK))
	}
	return t.entries
}

// buildCodec: wrong-codec media in every machine state. First dialog:
// violations before any valid packet (RTP_OPEN -rtp-> ATTACK_CODEC_
// VIOLATION both directions) with ATTACK_CODEC rtp/delta.bye/
// delta.reopen absorbers. Second dialog: violations from RTP_RCVD
// while timer T is pending (rtp-callee RTP_RCVD codec entry and the
// ATTACK_CODEC timer.T absorbers).
func buildCodec() []trace.Entry {
	t := &tracer{}
	d1 := newDialog(12)
	d1.establish(t, ms(10), true, true)
	d1.callerRTP(t, ms(40), sdp.PayloadPCMU, gapSSRCCaller, 1, 160)
	d1.calleeRTP(t, ms(45), sdp.PayloadPCMU, gapSSRCCallee, 1, 160)
	d1.calleeRTP(t, ms(50), sdp.PayloadPCMU, gapSSRCCallee, 2, 320)
	bye1 := d1.bye("caller")
	t.sip(ms(100), d1.callerUA, d1.calleeUA, bye1)
	t.sip(ms(150), gapProxyB, gapProxyA, sipmsg.NewResponse(bye1, sipmsg.StatusUnauthorized))
	bye2 := d1.bye("caller")
	t.sip(ms(200), d1.callerUA, d1.calleeUA, bye2)
	t.sip(ms(250), gapProxyB, gapProxyA, sipmsg.NewResponse(bye2, sipmsg.StatusOK))

	d2 := newDialog(13)
	d2.establish(t, ms(310), true, true)
	d2.callerRTP(t, ms(340), sdp.PayloadG729, gapSSRCCaller, 1, 160)
	d2.calleeRTP(t, ms(345), sdp.PayloadG729, gapSSRCCallee, 1, 160)
	bye3 := d2.bye("caller")
	t.sip(ms(350), d2.callerUA, d2.calleeUA, bye3)
	t.sip(ms(360), gapProxyB, gapProxyA, sipmsg.NewResponse(bye3, sipmsg.StatusUnauthorized))
	d2.callerRTP(t, ms(400), sdp.PayloadPCMU, gapSSRCCaller, 2, 320)
	d2.calleeRTP(t, ms(405), sdp.PayloadPCMU, gapSSRCCallee, 2, 320)
	// Timer T from bye3 fires at 600 ms inside ATTACK_CODEC_VIOLATION.
	bye4 := d2.bye("caller")
	t.sip(ms(650), d2.callerUA, d2.calleeUA, bye4)
	t.sip(ms(700), gapProxyB, gapProxyA, sipmsg.NewResponse(bye4, sipmsg.StatusOK))
	return t.entries
}

// buildSpamAbsorb: an SSRC change while timer T is pending, then the
// dialog keeps churning. rtp-caller/rtp-callee ATTACK_MEDIA_SPAM
// timer.T, delta.bye and delta.reopen absorbers.
func buildSpamAbsorb() []trace.Entry {
	t := &tracer{}
	d := newDialog(14)
	d.establish(t, ms(10), true, true)
	d.callerRTP(t, ms(40), sdp.PayloadG729, gapSSRCCaller, 1, 160)
	d.calleeRTP(t, ms(45), sdp.PayloadG729, gapSSRCCallee, 1, 160)
	bye1 := d.bye("caller")
	t.sip(ms(50), d.callerUA, d.calleeUA, bye1)
	t.sip(ms(60), gapProxyB, gapProxyA, sipmsg.NewResponse(bye1, sipmsg.StatusUnauthorized))
	d.callerRTP(t, ms(100), sdp.PayloadG729, 0x99, 2, 320)
	d.calleeRTP(t, ms(105), sdp.PayloadG729, 0x99, 2, 320)
	// Timer T from bye1 fires at 300 ms inside ATTACK_MEDIA_SPAM.
	bye2 := d.bye("caller")
	t.sip(ms(350), d.callerUA, d.calleeUA, bye2)
	t.sip(ms(400), gapProxyB, gapProxyA, sipmsg.NewResponse(bye2, sipmsg.StatusUnauthorized))
	bye3 := d.bye("caller")
	t.sip(ms(450), d.callerUA, d.calleeUA, bye3)
	t.sip(ms(500), gapProxyB, gapProxyA, sipmsg.NewResponse(bye3, sipmsg.StatusOK))
	return t.entries
}

// buildFlood: both streams exceed the rate window while timer T is
// pending. rtp-caller/rtp-callee RTP_RCVD -rtp-> ATTACK_RTP_FLOOD and
// all four ATTACK_RTP_FLOOD absorbers.
func buildFlood() []trace.Entry {
	t := &tracer{}
	d := newDialog(15)
	d.establish(t, ms(10), true, true)
	d.callerRTP(t, ms(40), sdp.PayloadG729, gapSSRCCaller, 1, 160)
	d.calleeRTP(t, ms(41), sdp.PayloadG729, gapSSRCCallee, 1, 160)
	bye1 := d.bye("caller")
	t.sip(ms(50), d.callerUA, d.calleeUA, bye1)
	t.sip(ms(60), gapProxyB, gapProxyA, sipmsg.NewResponse(bye1, sipmsg.StatusUnauthorized))
	// DefaultConfig allows 100 packets per second-long window; the
	// 100th packet after the opener trips the flood guard at ~268 ms,
	// before timer T (from bye1) fires at 300 ms.
	for k := 0; k < 100; k++ {
		at := ms(70 + 2*k)
		seq := uint16(2 + k)
		ts := uint32(320 + 160*k)
		d.callerRTP(t, at, sdp.PayloadG729, gapSSRCCaller, seq, ts)
		d.calleeRTP(t, at+time.Millisecond, sdp.PayloadG729, gapSSRCCallee, seq, ts)
	}
	d.callerRTP(t, ms(310), sdp.PayloadG729, gapSSRCCaller, 102, 16320)
	d.calleeRTP(t, ms(312), sdp.PayloadG729, gapSSRCCallee, 102, 16320)
	bye2 := d.bye("caller")
	t.sip(ms(350), d.callerUA, d.calleeUA, bye2)
	t.sip(ms(400), gapProxyB, gapProxyA, sipmsg.NewResponse(bye2, sipmsg.StatusUnauthorized))
	bye3 := d.bye("caller")
	t.sip(ms(450), d.callerUA, d.calleeUA, bye3)
	t.sip(ms(500), gapProxyB, gapProxyA, sipmsg.NewResponse(bye3, sipmsg.StatusOK))
	return t.entries
}

// buildSpoofedBye: a fully off-path BYE tears the dialog down.
// sip: CALL_ESTABLISHED -bye-> ATTACK_SPOOFED_BYE and all five
// ATTACK_SPOOFED_BYE absorbers.
func buildSpoofedBye() []trace.Entry {
	t := &tracer{}
	d := newDialog(16)
	d.establish(t, ms(10), true, true)
	evil := sipmsg.NameAddr{URI: sipmsg.URI{User: "mallory", Host: gapAttacker.Host}}.WithTag("evil")
	bye := sipmsg.NewRequest(sipmsg.BYE, d.calleeAOR())
	bye.Via = []sipmsg.Via{{Transport: "UDP", Host: gapAttacker.Host, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKevil" + d.id}}}
	bye.From = evil
	bye.To = d.ok.To
	bye.CallID = d.id
	bye.CSeq = sipmsg.CSeq{Seq: 9, Method: sipmsg.BYE}
	t.sip(ms(40), gapAttacker, d.calleeUA, bye)
	t.sip(ms(50), d.callerUA, d.calleeUA, d.ack())
	t.sip(ms(60), d.callerUA, d.calleeUA, d.bye("caller"))
	t.sip(ms(70), gapAttacker, d.calleeUA, d.cancel(evil))
	t.sip(ms(80), d.callerUA, d.calleeUA, d.reInvite(d.inv.From))
	t.sip(ms(90), gapProxyB, gapProxyA, sipmsg.NewResponse(bye, sipmsg.StatusOK))
	return t.entries
}

// buildHijackAbsorb: a hijacking re-INVITE, then more traffic.
// sip: the ATTACK_CALL_HIJACK ack/bye/cancel/invite absorbers.
func buildHijackAbsorb() []trace.Entry {
	t := &tracer{}
	d := newDialog(17)
	d.establish(t, ms(10), true, true)
	evil := sipmsg.NameAddr{URI: sipmsg.URI{User: "mallory", Host: gapAttacker.Host}}.WithTag("evil")
	t.sip(ms(40), gapAttacker, d.calleeUA, d.reInvite(evil))
	t.sip(ms(50), d.callerUA, d.calleeUA, d.ack())
	t.sip(ms(60), d.callerUA, d.calleeUA, d.bye("caller"))
	t.sip(ms(70), gapAttacker, d.calleeUA, d.cancel(evil))
	t.sip(ms(80), gapAttacker, d.calleeUA, d.reInvite(evil))
	return t.entries
}

// buildRTPSpam: a spamming stream no SDP ever negotiated.
// rtp-spam: RTP_RCVD -rtp-> ATTACK_MEDIA_SPAM (sequence jump past the
// threshold) and the attack state's rtp absorber.
func buildRTPSpam() []trace.Entry {
	t := &tracer{}
	from := sim.Addr{Host: gapAttacker.Host, Port: 40000}
	to := sim.Addr{Host: "media-sink.example.com", Port: 40000}
	p := func(seq uint16, ts uint32) *rtp.Packet {
		return &rtp.Packet{PayloadType: sdp.PayloadG729, SSRC: 7, Sequence: seq,
			Timestamp: ts, Payload: []byte{0}}
	}
	t.rtp(ms(10), from, to, p(100, 1000))
	t.rtp(ms(20), from, to, p(300, 40000)) // jump beyond SeqGap/TSGap
	t.rtp(ms(30), from, to, p(301, 40160))
	return t.entries
}

// buildStrayResponse: one reflected response, then silence.
// response-flood: PACKET_RCVD -timer.T1-> INIT (the window expires
// under the DRDoS threshold).
func buildStrayResponse() []trace.Entry {
	t := &tracer{}
	fake := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{User: "victim", Host: "a.example.com"})
	fake.Via = []sipmsg.Via{{Transport: "UDP", Host: gapProxyA.Host, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKstray"}}}
	fake.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "victim", Host: "a.example.com"}}.WithTag("t9")
	fake.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "reflector", Host: "b.example.com"}}
	fake.CallID = "stray-1@nowhere.example.net"
	fake.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
	t.sip(ms(10), gapProxyB, gapProxyA, sipmsg.NewResponse(fake, sipmsg.StatusRinging))
	return t.entries
}
