package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vids/internal/trace"
)

// computeOnce caches the (expensive) full measurement for the tests
// that only inspect the resulting report.
var cachedReport *Report

func testReport(t *testing.T) Report {
	t.Helper()
	if cachedReport == nil {
		rep, err := computeReport(1, "")
		if err != nil {
			t.Fatalf("computeReport: %v", err)
		}
		cachedReport = &rep
	}
	return *cachedReport
}

// TestFullCoverage is the headline property: every statically
// reachable transition is either fired by the scenario suite, fired
// by a synthesized witness trace, or carries a justified waiver.
func TestFullCoverage(t *testing.T) {
	rep := testReport(t)
	if rep.Summary.Uncovered != 0 {
		for _, r := range rep.Transitions {
			if r.Status == StatusUncovered {
				t.Errorf("uncovered: %s", fmtKey(r.TransitionKey))
			}
		}
	}
	if rep.Summary.GapTraces == 0 {
		t.Error("expected some transitions to be covered by gap traces")
	}
	if rep.Summary.Covered == rep.Summary.GapTraces {
		t.Error("expected some transitions to be covered by scenarios")
	}
}

// TestWaiversFresh: a waiver must justify a transition that nothing
// fires. If a waived transition starts firing at runtime, the waiver
// is stale (buildReport then reports it covered, which this test and
// the baseline gate both catch); every waiver also needs a reason.
func TestWaiversFresh(t *testing.T) {
	rep := testReport(t)
	byKey := make(map[string]Record)
	for _, r := range rep.Transitions {
		byKey[fmtKey(r.TransitionKey)] = r
	}
	for k, reason := range waivers() {
		if reason == "" {
			t.Errorf("waiver %s has no justification", fmtKey(k))
		}
		r, ok := byKey[fmtKey(k)]
		if !ok {
			t.Errorf("waiver %s names a transition not in the spec", fmtKey(k))
			continue
		}
		if r.Status != StatusWaived {
			t.Errorf("waiver %s is stale: transition has status %s (by %s)", fmtKey(k), r.Status, r.By)
		}
	}
}

// TestDeterminism: two independent measurements must serialize to
// identical bytes — the property the committed baseline gate relies on.
func TestDeterminism(t *testing.T) {
	a, err := computeReport(1, "")
	if err != nil {
		t.Fatalf("computeReport: %v", err)
	}
	b, err := computeReport(1, "")
	if err != nil {
		t.Fatalf("computeReport: %v", err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Error("two runs produced different reports")
	}
}

// TestJSONRoundTrip: the -json output must parse back into an
// identical Report.
func TestJSONRoundTrip(t *testing.T) {
	var out, diag bytes.Buffer
	code, err := run("", "", "", true, 1, &out, &diag)
	if err != nil {
		t.Fatalf("run: %v (diag: %s)", err, diag.String())
	}
	if code != 0 {
		t.Fatalf("run exit %d, want 0 (diag: %s)", code, diag.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("parse -json output: %v", err)
	}
	want := testReport(t)
	if !reflect.DeepEqual(rep.Summary, want.Summary) {
		t.Errorf("round-tripped summary %+v != computed %+v", rep.Summary, want.Summary)
	}
	if len(rep.Transitions) != len(want.Transitions) {
		t.Errorf("round-tripped %d transitions, want %d", len(rep.Transitions), len(want.Transitions))
	}
}

// TestBaselineGate: an up-to-date baseline passes; a tampered one
// fails with a drift diagnostic.
func TestBaselineGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := writeReport(testReport(t), base); err != nil {
		t.Fatalf("writeReport: %v", err)
	}

	var out, diag bytes.Buffer
	code, err := run(base, "", "", false, 1, &out, &diag)
	if err != nil {
		t.Fatalf("run with clean baseline: %v", err)
	}
	if code != 0 {
		t.Fatalf("clean baseline exit %d, want 0 (diag: %s)", code, diag.String())
	}

	// Tamper: flip one covered transition to uncovered.
	tampered := testReport(t)
	tampered.Transitions = append([]Record(nil), tampered.Transitions...)
	for i, r := range tampered.Transitions {
		if r.Status == StatusScenario {
			r.Status = StatusUncovered
			r.By = ""
			tampered.Transitions[i] = r
			break
		}
	}
	if err := writeReport(tampered, base); err != nil {
		t.Fatalf("writeReport tampered: %v", err)
	}
	diag.Reset()
	code, err = run(base, "", "", false, 1, &out, &diag)
	if err != nil {
		t.Fatalf("run with tampered baseline: %v", err)
	}
	if code != 1 {
		t.Errorf("tampered baseline exit %d, want 1", code)
	}
	if !bytes.Contains(diag.Bytes(), []byte("baseline drift")) {
		t.Errorf("diagnostics missing drift detail: %s", diag.String())
	}
}

// TestCommittedBaselineCurrent: the SPEC_COVERAGE.json at the repo
// root must match a fresh measurement, so spec changes cannot land
// without regenerating (and reviewing) the coverage report.
func TestCommittedBaselineCurrent(t *testing.T) {
	path := filepath.Join("..", "..", "SPEC_COVERAGE.json")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	var out, diag bytes.Buffer
	code, err := run(path, "", "", false, 1, &out, &diag)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("committed SPEC_COVERAGE.json is stale (exit %d):\n%s\nregenerate with: go run ./cmd/speccover -write SPEC_COVERAGE.json", code, diag.String())
	}
}

// TestWrittenTracesReplayable: the -traces artifacts must survive a
// JSONL round trip and, replayed alone into a fresh recorder, fire
// every transition the in-memory gap synthesis attributed to them.
func TestWrittenTracesReplayable(t *testing.T) {
	dir := t.TempDir()
	rep, err := computeReport(1, dir)
	if err != nil {
		t.Fatalf("computeReport: %v", err)
	}
	rec := newRecorder()
	for _, gt := range gapTraces() {
		f, err := os.Open(filepath.Join(dir, gt.name+".jsonl"))
		if err != nil {
			t.Fatalf("trace not written: %v", err)
		}
		entries, err := trace.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("read %s: %v", gt.name, err)
		}
		if len(entries) != len(gt.entries) {
			t.Errorf("%s: wrote %d entries, read %d", gt.name, len(gt.entries), len(entries))
		}
		if err := replayEntries(entries, rec, "trace:"+gt.name+".jsonl"); err != nil {
			t.Fatalf("replay %s: %v", gt.name, err)
		}
	}
	for _, r := range rep.Transitions {
		if r.Status != StatusGapTrace {
			continue
		}
		if _, ok := rec.fired[r.TransitionKey]; !ok {
			t.Errorf("written traces did not fire %s (attributed to %s)", fmtKey(r.TransitionKey), r.By)
		}
	}
}
