package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// newTestAnalyzer builds an analyzer rooted at the repo module
// (cmd/vidslint is two levels below the module root).
func newTestAnalyzer(t *testing.T) *analyzer {
	t.Helper()
	root, module, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "vids" {
		t.Fatalf("module = %q, want vids", module)
	}
	return newAnalyzer(root, module)
}

func countContaining(fs []finding, substr string) int {
	n := 0
	for _, f := range fs {
		if strings.Contains(f.msg, substr) {
			n++
		}
	}
	return n
}

func TestDroppedErrorAndArgsFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	fs, err := a.analyzeDir(filepath.Join("testdata", "src", "badpkg"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	if got := countContaining(fs, "discarded"); got != 4 {
		t.Errorf("dropped-error findings = %d, want 4", got)
	}
	if got := countContaining(fs, "core.Event.Args"); got != 2 {
		t.Errorf("Args-indexing findings = %d, want 2", got)
	}
	if got := countContaining(fs, "Payload copies the body"); got != 2 {
		t.Errorf("payload-string findings = %d, want 2", got)
	}
	if len(fs) != 8 {
		t.Errorf("total findings = %d, want 8", len(fs))
	}
}

func TestSpecRegistryFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	fs, err := a.analyzeDir(filepath.Join("testdata", "src", "internal", "ids"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	if got := countContaining(fs, "neither Final nor Attack"); got != 1 {
		t.Errorf("missing-Final/Attack findings = %d, want 1", got)
	}
	if got := countContaining(fs, "not reachable from the Specs registry"); got != 1 {
		t.Errorf("unregistered-builder findings = %d, want 1", got)
	}
	for _, f := range fs {
		if strings.Contains(f.msg, "helperSpec") || strings.Contains(f.msg, "goodSpec") {
			t.Errorf("well-formed builder flagged: %s", f)
		}
	}
}

// TestRepoIsClean is the CI acceptance property: the real codebase
// carries zero vidslint findings.
func TestRepoIsClean(t *testing.T) {
	a := newTestAnalyzer(t)
	dirs, err := a.expandPatterns([]string{filepath.Join(a.moduleRoot, "...")})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("pattern expansion found only %d package dirs: %v", len(dirs), dirs)
	}
	sawIDS := false
	for _, dir := range dirs {
		fs, err := a.analyzeDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range fs {
			t.Errorf("%s", f)
		}
		if strings.HasSuffix(filepath.ToSlash(dir), "internal/ids") {
			sawIDS = true
		}
	}
	if !sawIDS {
		t.Error("internal/ids was not analyzed")
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	a := newTestAnalyzer(t)
	dirs, err := a.expandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Fatalf("testdata dir not skipped: %s", d)
		}
	}
}
