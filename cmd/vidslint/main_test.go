package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// newTestAnalyzer builds an analyzer rooted at the repo module
// (cmd/vidslint is two levels below the module root).
func newTestAnalyzer(t *testing.T) *analyzer {
	t.Helper()
	root, module, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "vids" {
		t.Fatalf("module = %q, want vids", module)
	}
	return newAnalyzer(root, module)
}

func countContaining(fs []finding, substr string) int {
	n := 0
	for _, f := range fs {
		if strings.Contains(f.msg, substr) {
			n++
		}
	}
	return n
}

func TestDroppedErrorAndArgsFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	fs, err := a.analyzeDir(filepath.Join("testdata", "src", "badpkg"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	if got := countContaining(fs, "discarded"); got != 4 {
		t.Errorf("dropped-error findings = %d, want 4", got)
	}
	if got := countContaining(fs, "core.Event.Args"); got != 2 {
		t.Errorf("Args-indexing findings = %d, want 2", got)
	}
	if got := countContaining(fs, "Payload copies the body"); got != 2 {
		t.Errorf("payload-string findings = %d, want 2", got)
	}
	if len(fs) != 8 {
		t.Errorf("total findings = %d, want 8", len(fs))
	}
}

func TestSpecRegistryFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	fs, err := a.analyzeDir(filepath.Join("testdata", "src", "internal", "ids"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	if got := countContaining(fs, "neither Final nor Attack"); got != 1 {
		t.Errorf("missing-Final/Attack findings = %d, want 1", got)
	}
	if got := countContaining(fs, "not reachable from the Specs registry"); got != 1 {
		t.Errorf("unregistered-builder findings = %d, want 1", got)
	}
	for _, f := range fs {
		if strings.Contains(f.msg, "helperSpec") || strings.Contains(f.msg, "goodSpec") {
			t.Errorf("well-formed builder flagged: %s", f)
		}
	}
}

func TestGuardPurityFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	fs, err := a.analyzeDir(filepath.Join("testdata", "src", "impure"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	if got := countContaining(fs, "impure guard"); got != 3 {
		t.Errorf("guard-purity findings = %d, want 3", got)
	}
	if got := countContaining(fs, "calls (*core.Ctx).Emit"); got != 1 {
		t.Errorf("emit-in-guard findings = %d, want 1", got)
	}
	if got := countContaining(fs, "mutates machine variables"); got != 1 {
		t.Errorf("mutator-in-guard findings = %d, want 1", got)
	}
	if got := countContaining(fs, "assigns into a core.Vars map"); got != 1 {
		t.Errorf("index-assign-in-guard findings = %d, want 1", got)
	}
	if len(fs) != 3 {
		t.Errorf("total findings = %d, want 3 (PureGuard must not be flagged)", len(fs))
	}
}

func TestWallClockFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	fs, err := a.analyzeDir(filepath.Join("testdata", "src", "internal", "engine"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	if got := countContaining(fs, "virtual-clock determinism"); got != 3 {
		t.Errorf("wall-clock findings = %d, want 3 (annotated sites must not be flagged)", got)
	}
	if len(fs) != 3 {
		t.Errorf("total findings = %d, want 3", len(fs))
	}
}

// TestJSONOutput round-trips the -json mode: run over the badpkg
// fixture, decode the {findings, waivers} document, and check it
// matches the plain findings.
func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	n, err := run([]string{filepath.Join("testdata", "src", "badpkg")}, true, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var report jsonReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(report.Findings) != n || n != 8 {
		t.Fatalf("json records = %d, run reported %d, want 8", len(report.Findings), n)
	}
	for _, r := range report.Findings {
		if r.File == "" || r.Line <= 0 || r.Msg == "" || r.Kind == "" {
			t.Errorf("incomplete record: %+v", r)
		}
		if !strings.HasSuffix(r.File, ".go") {
			t.Errorf("file field %q is not a .go path", r.File)
		}
	}
	if report.Waivers == nil {
		t.Error("waiver inventory missing: want [] even when no waivers exist")
	}
}

// TestJSONWaiverInventory checks the suppression surface is exported:
// over the real module, the -json document lists the repo's panic-ok
// and alloc-ok waivers with non-empty justifications, all used.
func TestJSONWaiverInventory(t *testing.T) {
	root := newTestAnalyzer(t).moduleRoot
	var buf bytes.Buffer
	if _, err := run([]string{filepath.Join(root, "...")}, true, &buf); err != nil {
		t.Fatal(err)
	}
	var report jsonReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(report.Findings) != 0 {
		t.Errorf("repo findings = %d, want 0", len(report.Findings))
	}
	sawPanicOK := false
	for _, w := range report.Waivers {
		if w.Directive == "//"+dirPanicOK {
			sawPanicOK = true
		}
		if w.Reason == "" {
			t.Errorf("%s:%d: waiver with empty reason in inventory", w.File, w.Line)
		}
		if !w.Used {
			t.Errorf("%s:%d: unused waiver %s survived the freshness sweep", w.File, w.Line, w.Directive)
		}
		if w.Scope != "line" && w.Scope != "function" {
			t.Errorf("%s:%d: bad scope %q", w.File, w.Line, w.Scope)
		}
	}
	if !sawPanicOK {
		t.Error("inventory lists no //vids:panic-ok waivers; the repo carries several")
	}
}

// TestRepoIsClean is the CI acceptance property: the real codebase
// carries zero vidslint findings.
func TestRepoIsClean(t *testing.T) {
	a := newTestAnalyzer(t)
	dirs, err := a.expandPatterns([]string{filepath.Join(a.moduleRoot, "...")})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("pattern expansion found only %d package dirs: %v", len(dirs), dirs)
	}
	sawIDS := false
	for _, dir := range dirs {
		fs, err := a.analyzeDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range fs {
			t.Errorf("%s", f)
		}
		if strings.HasSuffix(filepath.ToSlash(dir), "internal/ids") {
			sawIDS = true
		}
	}
	if !sawIDS {
		t.Error("internal/ids was not analyzed")
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	a := newTestAnalyzer(t)
	dirs, err := a.expandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Fatalf("testdata dir not skipped: %s", d)
		}
	}
}

// TestEscapeGateFixture drives the whole-program allocation gate over
// the seeded noalloc fixture: one finding per violation class, path
// diagnostics from the root, and the directive-freshness sweep.
func TestEscapeGateFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	perPkg, err := a.analyzeDir(filepath.Join("testdata", "src", "noalloc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(perPkg) != 0 {
		t.Errorf("per-package findings = %d, want 0 (all seeded violations are whole-program)", len(perPkg))
	}
	fs, err := a.programFindings()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	want := map[string]int{
		"make allocates":                          1,
		"map assignment may grow":                 1,
		"conversion string([]byte) copies":        1,
		"go statement allocates":                  1,
		"dynamic call through function value":     1,
		"into an interface boxes it":              1,
		"composite literal escapes":               1,
		"stale //vids:alloc-ok on noalloc.Frozen": 1,
		"stale //vids:coldpath":                   2,
		"both //vids:noalloc and //vids:coldpath": 1,
		"needs a non-empty justification":         1,
		"no hot-path allocation finding":          1,
	}
	for substr, n := range want {
		if got := countContaining(fs, substr); got != n {
			t.Errorf("findings containing %q = %d, want %d", substr, got, n)
		}
	}
	if got := countContaining(fs, "noalloc.Hot → noalloc.escape"); got != 1 {
		t.Errorf("call-graph path diagnostics = %d, want 1 (root-to-site path must name the chain)", got)
	}
	if len(fs) != 13 {
		t.Errorf("total findings = %d, want 13", len(fs))
	}
}

// TestEscapeGateExitsNonzero is the CI contract: run() reports the
// seeded escape violations so `make lint` exits 1.
func TestEscapeGateExitsNonzero(t *testing.T) {
	var buf bytes.Buffer
	n, err := run([]string{filepath.Join("testdata", "src", "noalloc")}, false, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 13 {
		t.Errorf("run reported %d findings, want 13\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "hot path:") {
		t.Errorf("plain output lacks a hot-path diagnostic:\n%s", buf.String())
	}
}

// TestLockDisciplineFixture drives the concurrency gate over the
// seeded fixture: lock-order cycle, if-guarded Wait, blocking send,
// callback and goroutine under the queue lock, malformed directive.
// The disciplined ok() shapes must stay clean.
func TestLockDisciplineFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	fs, err := a.analyzeDir(filepath.Join("testdata", "src", "internal", "timerwheel"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	want := map[string]int{
		"lock-order cycle":                          1,
		"outside a for loop":                        1,
		"channel send while holding queue lock":     1,
		"callback invoked while holding queue lock": 1,
		"goroutine launched while holding":          1,
		"//vids:lockorder needs the form":           1,
	}
	for substr, n := range want {
		if got := countContaining(fs, substr); got != n {
			t.Errorf("findings containing %q = %d, want %d", substr, got, n)
		}
	}
	if len(fs) != 6 {
		t.Errorf("total findings = %d, want 6 (ok() must not be flagged)", len(fs))
	}
}

// TestGuardPurityEdgeCases covers the resolution paths the base
// fixture does not: method-value guards, impurity behind a defer, and
// guard closures delegating the write to a same-package helper.
func TestGuardPurityEdgeCases(t *testing.T) {
	a := newTestAnalyzer(t)
	fs, err := a.analyzeDir(filepath.Join("testdata", "src", "impure2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	if got := countContaining(fs, "mutates machine variables"); got != 2 {
		t.Errorf("mutator findings = %d, want 2 (method value + helper call)", got)
	}
	if got := countContaining(fs, "calls (*core.Ctx).Emit"); got != 1 {
		t.Errorf("deferred-emit findings = %d, want 1", got)
	}
	if len(fs) != 3 {
		t.Errorf("total findings = %d, want 3 (CleanGuards must not be flagged)", len(fs))
	}
}

// TestNopanicGateFixture drives the panic-freedom gate over the
// seeded nopanic fixture: one finding per panic class from the Entry
// root, the positive/negative bounds-dominance table in bounds.go, a
// path diagnostic through helper, and the panic-ok freshness sweep.
// The waived data[9] site and every ok* shape must stay silent.
func TestNopanicGateFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	perPkg, err := a.analyzeDir(filepath.Join("testdata", "src", "nopanic"))
	if err != nil {
		t.Fatal(err)
	}
	if len(perPkg) != 0 {
		t.Errorf("per-package findings = %d, want 0 (all seeded violations are whole-program)", len(perPkg))
	}
	fs, err := a.programFindings()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	want := map[string]int{
		"single-result type assertion":         1,
		"write to nil map":                     1,
		"dereference of nil pointer":           1,
		"integer division/modulo":              2,
		"explicit panic call":                  1,
		"truncating conversion":                1,
		"dynamic call through function value":  1,
		"interface method call":                1,
		"is not on the panic-free allowlist":   1,
		"slice expression":                     1,
		"binary.Uint64 panics on slices":       1,
		"needs a non-empty justification":      1,
		"no nopanic finding on this or the":    1,
		"the function is not reached from any": 1,
		"the function body has no potential":   1,
	}
	for substr, n := range want {
		if got := countContaining(fs, substr); got != n {
			t.Errorf("findings containing %q = %d, want %d", substr, got, n)
		}
	}
	// Unproven bounds sites: data[4] and data[2:] in Entry, b[8] in
	// helper, and the three bad* dominance negatives in bounds.go (the
	// truncating-conversion index reports once, under its own class).
	if got := countContaining(fs, "is not dominated by a bounds check"); got != 6 {
		t.Errorf("bounds findings = %d, want 6 (5 index + 1 slice)", got)
	}
	if got := countContaining(fs, "nopanic.Entry → nopanic.helper"); got != 1 {
		t.Errorf("call-graph path diagnostics = %d, want 1 (root-to-site path must name the chain)", got)
	}
	for _, f := range fs {
		if strings.Contains(f.msg, "data[9]") {
			t.Errorf("waived site flagged despite its //vids:panic-ok: %s", f)
		}
		if strings.Contains(f.msg, "ok") && strings.Contains(f.msg, "bounds.go") {
			t.Errorf("positive dominance case flagged: %s", f)
		}
	}
	if len(fs) != 21 {
		t.Errorf("total findings = %d, want 21", len(fs))
	}
}

// TestRepoProgramClean is the whole-program acceptance property: with
// every module package loaded, the noalloc closure, the lock
// discipline, the directive-freshness sweep and the alloc-ceiling
// drift gate all report zero findings on the real codebase.
func TestRepoProgramClean(t *testing.T) {
	a := newTestAnalyzer(t)
	dirs, err := a.expandPatterns([]string{filepath.Join(a.moduleRoot, "...")})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		if _, err := a.analyzeDir(dir); err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
	}
	fs, err := a.programFindings()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}
