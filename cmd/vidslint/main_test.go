package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// newTestAnalyzer builds an analyzer rooted at the repo module
// (cmd/vidslint is two levels below the module root).
func newTestAnalyzer(t *testing.T) *analyzer {
	t.Helper()
	root, module, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "vids" {
		t.Fatalf("module = %q, want vids", module)
	}
	return newAnalyzer(root, module)
}

func countContaining(fs []finding, substr string) int {
	n := 0
	for _, f := range fs {
		if strings.Contains(f.msg, substr) {
			n++
		}
	}
	return n
}

func TestDroppedErrorAndArgsFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	fs, err := a.analyzeDir(filepath.Join("testdata", "src", "badpkg"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	if got := countContaining(fs, "discarded"); got != 4 {
		t.Errorf("dropped-error findings = %d, want 4", got)
	}
	if got := countContaining(fs, "core.Event.Args"); got != 2 {
		t.Errorf("Args-indexing findings = %d, want 2", got)
	}
	if got := countContaining(fs, "Payload copies the body"); got != 2 {
		t.Errorf("payload-string findings = %d, want 2", got)
	}
	if len(fs) != 8 {
		t.Errorf("total findings = %d, want 8", len(fs))
	}
}

func TestSpecRegistryFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	fs, err := a.analyzeDir(filepath.Join("testdata", "src", "internal", "ids"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	if got := countContaining(fs, "neither Final nor Attack"); got != 1 {
		t.Errorf("missing-Final/Attack findings = %d, want 1", got)
	}
	if got := countContaining(fs, "not reachable from the Specs registry"); got != 1 {
		t.Errorf("unregistered-builder findings = %d, want 1", got)
	}
	for _, f := range fs {
		if strings.Contains(f.msg, "helperSpec") || strings.Contains(f.msg, "goodSpec") {
			t.Errorf("well-formed builder flagged: %s", f)
		}
	}
}

func TestGuardPurityFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	fs, err := a.analyzeDir(filepath.Join("testdata", "src", "impure"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	if got := countContaining(fs, "impure guard"); got != 3 {
		t.Errorf("guard-purity findings = %d, want 3", got)
	}
	if got := countContaining(fs, "calls (*core.Ctx).Emit"); got != 1 {
		t.Errorf("emit-in-guard findings = %d, want 1", got)
	}
	if got := countContaining(fs, "mutates machine variables"); got != 1 {
		t.Errorf("mutator-in-guard findings = %d, want 1", got)
	}
	if got := countContaining(fs, "assigns into a core.Vars map"); got != 1 {
		t.Errorf("index-assign-in-guard findings = %d, want 1", got)
	}
	if len(fs) != 3 {
		t.Errorf("total findings = %d, want 3 (PureGuard must not be flagged)", len(fs))
	}
}

func TestWallClockFixture(t *testing.T) {
	a := newTestAnalyzer(t)
	fs, err := a.analyzeDir(filepath.Join("testdata", "src", "internal", "engine"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Log(f)
	}
	if got := countContaining(fs, "virtual-clock determinism"); got != 3 {
		t.Errorf("wall-clock findings = %d, want 3 (annotated sites must not be flagged)", got)
	}
	if len(fs) != 3 {
		t.Errorf("total findings = %d, want 3", len(fs))
	}
}

// TestJSONOutput round-trips the -json mode: run over the badpkg
// fixture, decode the array, and check it matches the plain findings.
func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	n, err := run([]string{filepath.Join("testdata", "src", "badpkg")}, true, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var recs []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(recs) != n || n != 8 {
		t.Fatalf("json records = %d, run reported %d, want 8", len(recs), n)
	}
	for _, r := range recs {
		if r.File == "" || r.Line <= 0 || r.Msg == "" {
			t.Errorf("incomplete record: %+v", r)
		}
		if !strings.HasSuffix(r.File, ".go") {
			t.Errorf("file field %q is not a .go path", r.File)
		}
	}
}

// TestRepoIsClean is the CI acceptance property: the real codebase
// carries zero vidslint findings.
func TestRepoIsClean(t *testing.T) {
	a := newTestAnalyzer(t)
	dirs, err := a.expandPatterns([]string{filepath.Join(a.moduleRoot, "...")})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("pattern expansion found only %d package dirs: %v", len(dirs), dirs)
	}
	sawIDS := false
	for _, dir := range dirs {
		fs, err := a.analyzeDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range fs {
			t.Errorf("%s", f)
		}
		if strings.HasSuffix(filepath.ToSlash(dir), "internal/ids") {
			sawIDS = true
		}
	}
	if !sawIDS {
		t.Error("internal/ids was not analyzed")
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	a := newTestAnalyzer(t)
	dirs, err := a.expandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Fatalf("testdata dir not skipped: %s", d)
		}
	}
}
