package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The nopanic gate proves the untrusted-input path free of runtime
// panics: over the static call closure of every //vids:nopanic root
// (the SIP/RTP parsers, the ingress lite-extract, the fast-path
// consult and the generated-dispatch step entrypoints — everything
// that touches raw network bytes), it reports each potential panic
// site that the bounds facts engine (bounds.go) cannot discharge:
//
//   - index and slice expressions not dominated by a sufficient
//     len/bounds guard;
//   - fixed-width encoding/binary decoders on slices not proven long
//     enough (they panic on short input);
//   - single-result type assertions (comma-ok and type switches are
//     total);
//   - writes to possibly-nil maps and dereferences of provably-nil
//     pointers;
//   - integer division/modulo by a zero-able operand and shifts by a
//     possibly-negative count;
//   - explicit panic calls, make with a possibly-negative size, and
//     slice-to-array conversions without a length proof;
//   - truncating integer conversions used as indices (a 16-bit
//     counter silently wrapping into a "valid" index is a logic bomb,
//     not a bounds question);
//   - calls the analysis cannot resolve (function values, interface
//     methods) or that leave the module for a package not on the
//     panic-free allowlist: an unprovable callee is an unproven path.
//
// Unlike the escape gate, the traversal descends into //vids:coldpath
// functions — a crash has no cold path. Out of scope (documented
// policy, cross-checked by the native fuzz targets): panics behind
// pointer parameters assumed non-nil per the caller contract, OOM,
// stack exhaustion, deadlock, and send-on-closed-channel — none of
// which an adversarial datagram can steer.

// panicfreePackages are stdlib packages whose exported API cannot
// panic for any argument values the module passes: pure functions
// over slices/strings, arithmetic, formatting (fmt recovers user
// formatter panics), and the sync primitives (misuse panics like
// double-unlock are the lock gate's concern — they are not
// input-dependent).
var panicfreePackages = map[string]bool{
	"bytes":        true,
	"strings":      true,
	"strconv":      true,
	"errors":       true,
	"fmt":          true,
	"math":         true,
	"math/bits":    true,
	"sort":         true,
	"sync":         true,
	"sync/atomic":  true,
	"time":         true,
	"unicode":      true,
	"unicode/utf8": true,
}

// panicfreeFuncs allowlists individual functions from packages that
// also export panicking APIs.
var panicfreeFuncs = map[string]bool{
	"container/heap.Init": true, // pure sibling of Push/Pop; interface calls inside resolve to module methods already scanned
}

// binaryWidths maps the encoding/binary fixed-width codec methods to
// the minimum slice length they require — they panic on less.
var binaryWidths = map[string]int64{
	"Uint16":    2,
	"Uint32":    4,
	"Uint64":    8,
	"PutUint16": 2,
	"PutUint32": 4,
	"PutUint64": 8,
}

// panicPass drives the nopanic closure traversal.
type panicPass struct {
	a        *analyzer
	prog     *program
	findings []finding
}

// checkNopanic runs the panic-freedom gate: BFS over the static call
// graph from the //vids:nopanic roots, a flow-sensitive scan of each
// reached body, then the panic-ok freshness sweep.
func (a *analyzer) checkNopanic(prog *program) []finding {
	pp := &panicPass{a: a, prog: prog}
	var roots []string
	for k, n := range prog.funcs {
		if n.nopanic && a.analyzed[n.pkg.path] {
			roots = append(roots, k)
		}
	}
	sort.Strings(roots)
	queue := make([]string, 0, len(roots))
	for _, r := range roots {
		prog.npRootOf[r] = r
		queue = append(queue, r)
	}
	seen := make(map[string]bool)
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		if seen[key] {
			continue
		}
		seen[key] = true
		node := prog.funcs[key]
		if node == nil {
			continue
		}
		node.npReached = true
		callees := pp.scanFunc(node)
		sort.Strings(callees)
		for _, c := range callees {
			if seen[c] {
				continue
			}
			if _, known := prog.npParent[c]; !known {
				prog.npParent[c] = key
				prog.npRootOf[c] = prog.npRootOf[key]
			}
			queue = append(queue, c)
		}
	}
	pp.findings = append(pp.findings, pp.staleness()...)
	return pp.findings
}

// staleness freshness-checks the panic-ok directives, mirroring the
// alloc-ok sweep: empty reasons, line waivers that suppressed
// nothing, and function-level waivers off every untrusted path or
// with nothing left to justify.
func (pp *panicPass) staleness() []finding {
	out := pp.prog.panicWaivers.lineStaleness(pp.a,
		"//vids:panic-ok needs a non-empty justification (why can this site not panic at runtime?)",
		"stale //vids:panic-ok: no nopanic finding on this or the next line — delete the waiver or move it to the site it justifies")
	for _, node := range sortedFuncs(pp.prog) {
		if !pp.a.analyzed[node.pkg.path] || !node.hasPanicOK {
			continue
		}
		pos := pp.a.fset.Position(node.decl.Pos())
		switch {
		case node.panicOK == "":
			out = append(out, finding{pos: pos, msg: fmt.Sprintf("//vids:panic-ok on %s needs a non-empty justification", node.name()), kind: "directive"})
		case !node.npReached:
			out = append(out, finding{pos: pos, msg: fmt.Sprintf("stale //vids:panic-ok on %s: the function is not reached from any //vids:nopanic root", node.name()), kind: "directive"})
		case node.npSuppressed == 0:
			out = append(out, finding{pos: pos, msg: fmt.Sprintf("stale //vids:panic-ok on %s: the function body has no potential panic site left to justify", node.name()), kind: "directive"})
		}
	}
	return out
}

// site records one potential panic finding, honoring line-level
// panic-ok waivers first and the enclosing function-level waiver
// second.
func (pp *panicPass) site(node *funcNode, pos token.Pos, what string) {
	p := pp.a.fset.Position(pos)
	if w := pp.prog.panicWaivers.lookup(p); w != nil {
		return
	}
	if node.hasPanicOK {
		node.npSuppressed++
		return
	}
	pp.findings = append(pp.findings, finding{
		pos:  p,
		msg:  fmt.Sprintf("nopanic: %s [untrusted path: %s]; add a dominating guard or justify with //vids:panic-ok <reason>", what, pp.prog.npPathTo(node.key)),
		kind: "nopanic",
	})
}

// panicScan is the per-function flow-sensitive walk.
type panicScan struct {
	pp          *panicPass
	node        *funcNode
	info        *types.Info
	callees     map[string]bool
	skipAsserts map[*ast.TypeAssertExpr]bool
}

func (pp *panicPass) scanFunc(node *funcNode) []string {
	sc := &panicScan{
		pp:          pp,
		node:        node,
		info:        node.pkg.info,
		callees:     make(map[string]bool),
		skipAsserts: make(map[*ast.TypeAssertExpr]bool),
	}
	env := newFacts(sc.info)
	sc.block(node.decl.Body.List, env)
	out := make([]string, 0, len(sc.callees))
	for k := range sc.callees {
		out = append(out, k)
	}
	return out
}

func (sc *panicScan) site(pos token.Pos, what string) {
	sc.pp.site(sc.node, pos, what)
}

// block walks a statement list, threading the facts environment and
// stopping at the first terminating statement.
func (sc *panicScan) block(stmts []ast.Stmt, env *facts) (*facts, bool) {
	for _, s := range stmts {
		var term bool
		env, term = sc.stmt(s, env)
		if term {
			return env, true
		}
	}
	return env, false
}

// stmt processes one statement: scan its expressions for panic sites
// under the current facts, then update the facts. Returns the
// outgoing environment and whether the statement terminates the
// enclosing path (return, panic, break/continue/goto).
func (sc *panicScan) stmt(s ast.Stmt, env *facts) (*facts, bool) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		inner, term := sc.block(st.List, env.clone())
		if term {
			return inner, true
		}
		return inner, false

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && sc.isPanicCall(call) {
			for _, a := range call.Args {
				sc.expr(a, env)
			}
			sc.site(call.Pos(), "explicit panic call")
			return env, true
		}
		sc.expr(st.X, env)
		sc.invalidateSideEffects(st.X, env)
		return env, false

	case *ast.AssignStmt:
		return sc.assign(st, env), false

	case *ast.IncDecStmt:
		sc.expr(st.X, env)
		key := exprKey(st.X)
		old, had := env.ints[key]
		env.invalidate(baseIdent(st.X))
		if had {
			d := int64(1)
			if st.Tok == token.DEC {
				d = -1
			}
			shifted := old
			if shifted.hasLo {
				shifted.lo += d
			}
			if shifted.hasHi {
				shifted.hi += d
			}
			if shifted.hasLenRef {
				shifted.lenDelta += d
			}
			shifted.nonzero = false
			env.mergeInt(key, shifted)
		}
		return env, false

	case *ast.DeclStmt:
		sc.decl(st, env)
		return env, false

	case *ast.ReturnStmt:
		for _, r := range st.Results {
			sc.expr(r, env)
		}
		return env, true

	case *ast.BranchStmt:
		// break/continue/goto leave this block; fallthrough is handled
		// by the switch walker's conservative merge.
		return env, st.Tok != token.FALLTHROUGH

	case *ast.IfStmt:
		return sc.ifStmt(st, env)

	case *ast.ForStmt:
		return sc.forStmt(st, env), false

	case *ast.RangeStmt:
		return sc.rangeStmt(st, env), false

	case *ast.SwitchStmt:
		return sc.switchStmt(st, env), false

	case *ast.TypeSwitchStmt:
		return sc.typeSwitchStmt(st, env), false

	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			inner := env.clone()
			if cc.Comm != nil {
				inner, _ = sc.stmt(cc.Comm, inner)
			}
			sc.block(cc.Body, inner)
		}
		sc.dropWrites(st.Body, env)
		return env, false

	case *ast.DeferStmt:
		sc.expr(st.Call, env)
		sc.invalidateSideEffects(st.Call, env)
		return env, false

	case *ast.GoStmt:
		sc.expr(st.Call, env)
		sc.invalidateSideEffects(st.Call, env)
		return env, false

	case *ast.SendStmt:
		sc.expr(st.Chan, env)
		sc.expr(st.Value, env)
		return env, false

	case *ast.LabeledStmt:
		return sc.stmt(st.Stmt, env)

	case *ast.EmptyStmt:
		return env, false
	}
	return env, false
}

// assign handles the richest statement: comma-ok recognition, LHS
// panic checks (slice index writes, nil-map writes), invalidation and
// fact learning.
func (sc *panicScan) assign(st *ast.AssignStmt, env *facts) *facts {
	// v, ok := x.(T) — the comma-ok form is total; mark before scanning.
	if len(st.Lhs) == 2 && len(st.Rhs) == 1 {
		if ta, ok := ast.Unparen(st.Rhs[0]).(*ast.TypeAssertExpr); ok {
			sc.skipAsserts[ta] = true
		}
	}
	for _, r := range st.Rhs {
		sc.expr(r, env)
	}
	for _, l := range st.Lhs {
		sc.lhsExpr(l, env)
	}
	for _, r := range st.Rhs {
		sc.invalidateSideEffects(r, env)
	}
	for _, l := range st.Lhs {
		if _, isIdent := ast.Unparen(l).(*ast.Ident); isIdent {
			env.invalidate(baseIdent(l))
		} else {
			env.invalidateContents(baseIdent(l))
		}
	}
	if len(st.Lhs) == len(st.Rhs) && (st.Tok == token.ASSIGN || st.Tok == token.DEFINE) {
		for i := range st.Lhs {
			env.learnAssign(st.Lhs[i], st.Rhs[i])
		}
	}
	// Compound assignment `x op= y`: x's facts are gone (invalidated);
	// nothing further to learn soundly. Division still needs checking.
	switch st.Tok {
	case token.QUO_ASSIGN, token.REM_ASSIGN:
		if len(st.Rhs) == 1 && isIntExpr(sc.info, st.Lhs[0]) {
			sc.checkDivisor(st.Rhs[0], env, st.Rhs[0].Pos())
		}
	case token.SHL_ASSIGN, token.SHR_ASSIGN:
		if len(st.Rhs) == 1 {
			sc.checkShift(st.Rhs[0], env)
		}
	}
	return env
}

// lhsExpr checks assignment targets: slice-index writes need the same
// bounds proof as reads, and map writes need a non-nil map.
func (sc *panicScan) lhsExpr(l ast.Expr, env *facts) {
	l = ast.Unparen(l)
	if id, ok := l.(*ast.Ident); ok {
		_ = id
		return
	}
	if idx, ok := l.(*ast.IndexExpr); ok {
		t := sc.info.TypeOf(idx.X)
		if t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				sc.expr(idx.X, env)
				sc.expr(idx.Index, env)
				key := exprKey(idx.X)
				switch {
				case env.defNil[key]:
					sc.site(idx.Pos(), fmt.Sprintf("write to nil map %s", key))
				case !env.nonNil[key]:
					sc.site(idx.Pos(), fmt.Sprintf("write to map %s not proven non-nil (guard with `if %s == nil` or prove the make)", key, key))
				}
				return
			}
		}
	}
	sc.expr(l, env)
}

func (sc *panicScan) decl(st *ast.DeclStmt, env *facts) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			sc.expr(v, env)
		}
		for i, name := range vs.Names {
			env.invalidate(name.Name)
			if i < len(vs.Values) {
				env.learnAssign(name, vs.Values[i])
				continue
			}
			// Zero value: ints are 0, reference types are nil.
			t := sc.info.TypeOf(name)
			if t == nil {
				continue
			}
			switch t.Underlying().(type) {
			case *types.Map, *types.Pointer, *types.Slice, *types.Chan, *types.Signature, *types.Interface:
				env.defNil[name.Name] = true
			case *types.Basic:
				if isIntExpr(sc.info, name) {
					env.mergeInt(name.Name, intFact{hasLo: true, lo: 0, hasHi: true, hi: 0})
				}
			}
		}
	}
}

func (sc *panicScan) ifStmt(st *ast.IfStmt, env *facts) (*facts, bool) {
	if st.Init != nil {
		env, _ = sc.stmt(st.Init, env)
	}
	sc.expr(st.Cond, env)
	thenEnv := env.clone()
	thenEnv.applyCond(st.Cond, false)
	thenOut, thenTerm := sc.block(st.Body.List, thenEnv)
	elseEnv := env.clone()
	elseEnv.applyCond(st.Cond, true)
	var out *facts
	var term bool
	if st.Else != nil {
		elseOut, elseTerm := sc.stmt(st.Else, elseEnv)
		switch {
		case thenTerm && elseTerm:
			out, term = env, true
		case thenTerm:
			out = elseOut
		case elseTerm:
			out = thenOut
		default:
			out = thenOut.join(elseOut)
		}
	} else {
		if thenTerm {
			// The bail idiom: past this point the condition is false.
			out = elseEnv
		} else {
			out = thenOut.join(elseEnv)
		}
	}
	// Identifiers introduced in the init statement are scoped to the
	// if; drop their facts so a shadowed outer name is not polluted.
	if st.Init != nil {
		for name := range declaredNames(st.Init) {
			out.invalidate(name)
		}
	}
	return out, term
}

func (sc *panicScan) forStmt(st *ast.ForStmt, env *facts) *facts {
	loopEnv := env.clone()
	if st.Init != nil {
		loopEnv, _ = sc.stmt(st.Init, loopEnv)
	}
	binds, conts := sc.writeSets(st.Body)
	if st.Post != nil {
		pb, pc := sc.writeSets(st.Post)
		for n := range pb {
			binds[n] = true
		}
		for n := range pc {
			conts[n] = true
		}
	}
	for n := range binds {
		// A variable the loop only ever increments keeps its lower
		// bound — increments never lower it. Everything else about it
		// (upper bounds, symbolic caps) is loop-variant and dies here.
		if sc.loopIncrementOnly(st, n) {
			if f, ok := loopEnv.ints[n]; ok && f.hasLo {
				lo := f.lo
				loopEnv.invalidate(n)
				loopEnv.mergeInt(n, intFact{hasLo: true, lo: lo})
				continue
			}
		}
		loopEnv.invalidate(n)
	}
	for n := range conts {
		loopEnv.invalidateContents(n)
	}
	if st.Cond != nil {
		sc.expr(st.Cond, loopEnv)
		loopEnv.applyCond(st.Cond, false)
	}
	bodyOut, _ := sc.block(st.Body.List, loopEnv)
	if st.Post != nil {
		sc.stmt(st.Post, bodyOut)
	}
	// After the loop: anything it assigned is unknown; init-scoped
	// names die with the loop. Increment-only vars keep their lower
	// bound here too — zero or more i++ never drop below the entry lo.
	out := env
	for n := range binds {
		if sc.loopIncrementOnly(st, n) {
			if f, ok := out.ints[n]; ok && f.hasLo {
				lo := f.lo
				out.invalidate(n)
				out.mergeInt(n, intFact{hasLo: true, lo: lo})
				continue
			}
		}
		out.invalidate(n)
	}
	for n := range conts {
		out.invalidateContents(n)
	}
	if st.Init != nil {
		for n := range declaredNames(st.Init) {
			out.invalidate(n)
		}
	}
	return out
}

// loopIncrementOnly reports whether every write to name inside the
// loop body and post statement is an i++ on the bare identifier.
func (sc *panicScan) loopIncrementOnly(st *ast.ForStmt, name string) bool {
	if !incrementOnly(st.Body, name) {
		return false
	}
	return st.Post == nil || incrementOnly(st.Post, name)
}

func (sc *panicScan) rangeStmt(st *ast.RangeStmt, env *facts) *facts {
	sc.expr(st.X, env)
	binds, conts := sc.writeSets(st.Body)
	loopEnv := env.clone()
	for n := range binds {
		loopEnv.invalidate(n)
	}
	for n := range conts {
		loopEnv.invalidateContents(n)
	}
	var keyName string
	if st.Key != nil {
		if id, ok := ast.Unparen(st.Key).(*ast.Ident); ok {
			keyName = id.Name
		}
	}
	var valName string
	if st.Value != nil {
		if id, ok := ast.Unparen(st.Value).(*ast.Ident); ok {
			valName = id.Name
		}
	}
	loopEnv.invalidate(keyName)
	loopEnv.invalidate(valName)
	// Ranging a slice/string/array binds the key to a valid index.
	if keyName != "" && keyName != "_" && !binds[keyName] && !conts[keyName] {
		if t := sc.info.TypeOf(st.X); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer:
				loopEnv.mergeInt(keyName, intFact{hasLo: true, lo: 0, hasLenRef: true, lenRef: exprKey(st.X), lenDelta: -1})
			case *types.Basic:
				if isStringType(t) {
					loopEnv.mergeInt(keyName, intFact{hasLo: true, lo: 0, hasLenRef: true, lenRef: exprKey(st.X), lenDelta: -1})
				}
			}
		}
	}
	sc.block(st.Body.List, loopEnv)
	out := env
	for n := range binds {
		out.invalidate(n)
	}
	for n := range conts {
		out.invalidateContents(n)
	}
	out.invalidate(keyName)
	out.invalidate(valName)
	return out
}

func (sc *panicScan) switchStmt(st *ast.SwitchStmt, env *facts) *facts {
	if st.Init != nil {
		env, _ = sc.stmt(st.Init, env)
	}
	if st.Tag != nil {
		sc.expr(st.Tag, env)
	}
	hasFallthrough := switchHasFallthrough(st.Body)
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		inner := env.clone()
		if hasFallthrough {
			// A case body may run after an earlier case's assignments;
			// only entry facts minus all case assignments are safe.
			sc.dropWrites(st.Body, inner)
		} else if len(cc.List) == 1 {
			if st.Tag != nil {
				inner.applyCompare(st.Tag, token.EQL, cc.List[0])
			} else {
				inner.applyCond(cc.List[0], false)
			}
		}
		for _, e := range cc.List {
			sc.expr(e, env)
		}
		sc.block(cc.Body, inner)
	}
	sc.dropWrites(st.Body, env)
	if st.Init != nil {
		for n := range declaredNames(st.Init) {
			env.invalidate(n)
		}
	}
	return env
}

// dropWrites invalidates everything a statement tree may write,
// distinguishing binding writes from content writes.
func (sc *panicScan) dropWrites(n ast.Node, env *facts) {
	binds, conts := sc.writeSets(n)
	for name := range binds {
		env.invalidate(name)
	}
	for name := range conts {
		env.invalidateContents(name)
	}
}

func (sc *panicScan) typeSwitchStmt(st *ast.TypeSwitchStmt, env *facts) *facts {
	if st.Init != nil {
		env, _ = sc.stmt(st.Init, env)
	}
	// The `x.(type)` assertion is total; mark it before scanning.
	ast.Inspect(st.Assign, func(n ast.Node) bool {
		if ta, ok := n.(*ast.TypeAssertExpr); ok {
			sc.skipAsserts[ta] = true
		}
		return true
	})
	switch a := st.Assign.(type) {
	case *ast.ExprStmt:
		sc.expr(a.X, env)
	case *ast.AssignStmt:
		for _, r := range a.Rhs {
			sc.expr(r, env)
		}
	}
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		sc.block(cc.Body, env.clone())
	}
	sc.dropWrites(st.Body, env)
	return env
}

// expr scans one expression tree for panic sites under env,
// short-circuit-aware for && and ||.
func (sc *panicScan) expr(e ast.Expr, env *facts) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.Ident, *ast.BasicLit, *ast.Ellipsis,
		*ast.ArrayType, *ast.StructType, *ast.FuncType, *ast.InterfaceType, *ast.MapType, *ast.ChanType:
		return

	case *ast.ParenExpr:
		sc.expr(x.X, env)

	case *ast.FuncLit:
		// A closure runs with unknown outer state: scan its body under
		// an empty environment so its own guards still count.
		sc.block(x.Body.List, newFacts(sc.info))

	case *ast.CompositeLit:
		for _, el := range x.Elts {
			sc.expr(el, env)
		}

	case *ast.KeyValueExpr:
		sc.expr(x.Key, env)
		sc.expr(x.Value, env)

	case *ast.SelectorExpr:
		sc.expr(x.X, env)
		sc.checkNilDeref(x.X, env, x.Pos())

	case *ast.StarExpr:
		sc.expr(x.X, env)
		sc.checkNilDeref(x.X, env, x.Pos())

	case *ast.UnaryExpr:
		sc.expr(x.X, env)

	case *ast.BinaryExpr:
		sc.binary(x, env)

	case *ast.IndexExpr:
		sc.index(x, env)

	case *ast.IndexListExpr:
		sc.expr(x.X, env) // generic instantiation; indices are types

	case *ast.SliceExpr:
		sc.slice(x, env)

	case *ast.TypeAssertExpr:
		sc.expr(x.X, env)
		if x.Type != nil && !sc.skipAsserts[x] {
			sc.site(x.Pos(), fmt.Sprintf("single-result type assertion %s panics on mismatch (use the comma-ok form)", types.ExprString(x)))
		}

	case *ast.CallExpr:
		sc.call(x, env)
	}
}

func (sc *panicScan) binary(x *ast.BinaryExpr, env *facts) {
	switch x.Op {
	case token.LAND:
		sc.expr(x.X, env)
		rhsEnv := env.clone()
		rhsEnv.applyCond(x.X, false)
		sc.expr(x.Y, rhsEnv)
		return
	case token.LOR:
		sc.expr(x.X, env)
		rhsEnv := env.clone()
		rhsEnv.applyCond(x.X, true)
		sc.expr(x.Y, rhsEnv)
		return
	}
	sc.expr(x.X, env)
	sc.expr(x.Y, env)
	switch x.Op {
	case token.QUO, token.REM:
		if isIntExpr(sc.info, x.X) {
			sc.checkDivisor(x.Y, env, x.Y.Pos())
		}
	case token.SHL, token.SHR:
		sc.checkShift(x.Y, env)
	}
}

func (sc *panicScan) checkDivisor(y ast.Expr, env *facts, pos token.Pos) {
	if _, ok := env.constVal(y); ok {
		return // constant zero would not compile
	}
	r := env.rangeOf(y)
	if r.nonzero || (r.hasLo && r.lo >= 1) || (r.hasHi && r.hi <= -1) {
		return
	}
	sc.site(pos, fmt.Sprintf("integer division/modulo by %s, not proven nonzero", exprKey(y)))
}

func (sc *panicScan) checkShift(y ast.Expr, env *facts) {
	if _, ok := env.constVal(y); ok {
		return // negative constant shifts do not compile
	}
	r := env.rangeOf(y)
	if r.hasLo && r.lo >= 0 {
		return
	}
	sc.site(y.Pos(), fmt.Sprintf("shift by %s, not proven non-negative", exprKey(y)))
}

// checkNilDeref flags dereferences of pointers the environment proves
// nil. Pointer parameters and fields are assumed non-nil (the caller
// contract; the fuzz targets cross-check), so only locally-provable
// nils fire.
func (sc *panicScan) checkNilDeref(x ast.Expr, env *facts, pos token.Pos) {
	t := sc.info.TypeOf(x)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return
	}
	if env.defNil[exprKey(x)] {
		sc.site(pos, fmt.Sprintf("dereference of nil pointer %s", exprKey(x)))
	}
}

func (sc *panicScan) index(x *ast.IndexExpr, env *facts) {
	sc.expr(x.X, env)
	// Generic instantiation (F[T]) indexes with a type, not a value.
	if tv, ok := sc.info.Types[x.Index]; ok && tv.IsType() {
		return
	}
	sc.expr(x.Index, env)
	t := sc.info.TypeOf(x.X)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Map:
		return // map reads are total
	case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
		if b, isBasic := u.(*types.Basic); isBasic && b.Info()&types.IsString == 0 {
			return
		}
		if p, isPtr := u.(*types.Pointer); isPtr {
			if _, ok := arrayLen(p); !ok {
				return
			}
		}
		if conv, src, ok := sc.truncatingConversion(x.Index); ok {
			sc.site(x.Pos(), fmt.Sprintf("truncating conversion %s of %s used as an index can silently wrap into bounds", types.ExprString(conv), src))
			return
		}
		if !env.indexOK(x.X, x.Index) {
			sc.site(x.Pos(), fmt.Sprintf("index %s is not dominated by a bounds check", types.ExprString(x)))
		}
	}
}

// truncatingConversion matches a non-constant integer conversion that
// narrows its operand's storage width.
func (sc *panicScan) truncatingConversion(idx ast.Expr) (*ast.CallExpr, string, bool) {
	call, ok := ast.Unparen(idx).(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	if _, isConst := sc.info.Types[call]; isConst && sc.info.Types[call].Value != nil {
		return nil, "", false
	}
	tv, ok := sc.info.Types[ast.Unparen(call.Fun)]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return nil, "", false
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || dst.Info()&types.IsInteger == 0 {
		return nil, "", false
	}
	st := sc.info.TypeOf(call.Args[0])
	if st == nil {
		return nil, "", false
	}
	src, ok := st.Underlying().(*types.Basic)
	if !ok || src.Info()&types.IsInteger == 0 {
		return nil, "", false
	}
	db, sb := intKindBits(dst.Kind()), intKindBits(src.Kind())
	if db == 0 || sb == 0 || db >= sb {
		return nil, "", false
	}
	return call, src.String(), true
}

func (sc *panicScan) slice(x *ast.SliceExpr, env *facts) {
	sc.expr(x.X, env)
	sc.expr(x.Low, env)
	sc.expr(x.High, env)
	sc.expr(x.Max, env)
	t := sc.info.TypeOf(x.X)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
	case *types.Pointer:
		if _, ok := arrayLen(u); !ok {
			return
		}
	case *types.Basic:
		if u.Info()&types.IsString == 0 {
			return
		}
	default:
		return
	}
	if !env.sliceExprOK(x) {
		sc.site(x.Pos(), fmt.Sprintf("slice expression %s is not dominated by a bounds check", types.ExprString(x)))
	}
}

func (sc *panicScan) isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := sc.info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// call classifies one call expression: conversions, builtins, static
// module/stdlib calls, and the dynamic calls the analysis cannot
// follow.
func (sc *panicScan) call(call *ast.CallExpr, env *facts) {
	funExpr := ast.Unparen(call.Fun)
	for _, a := range call.Args {
		sc.expr(a, env)
	}
	if tv, ok := sc.info.Types[funExpr]; ok && tv.IsType() {
		sc.checkConversionPanic(call, tv.Type, env)
		return
	}
	if lit, ok := funExpr.(*ast.FuncLit); ok {
		sc.block(lit.Body.List, newFacts(sc.info))
		return
	}
	switch fx := funExpr.(type) {
	case *ast.Ident:
		switch obj := sc.info.Uses[fx].(type) {
		case *types.Builtin:
			sc.builtin(obj.Name(), call, env)
			return
		case *types.Func:
			sc.staticCallee(call, obj, env)
			return
		case *types.Var:
			sc.site(call.Pos(), fmt.Sprintf("dynamic call through function value %s cannot be statically proven panic-free", fx.Name))
			return
		}
	case *ast.SelectorExpr:
		sc.expr(fx.X, env)
		if sel := sc.info.Selections[fx]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal:
				if types.IsInterface(sel.Recv()) {
					sc.site(call.Pos(), fmt.Sprintf("interface method call %s cannot be statically resolved to a panic-free body", fx.Sel.Name))
					return
				}
				if fn, ok := sel.Obj().(*types.Func); ok {
					sc.staticCallee(call, fn, env)
					return
				}
			case types.FieldVal:
				sc.site(call.Pos(), fmt.Sprintf("dynamic call through function field %s cannot be statically proven panic-free", fx.Sel.Name))
				return
			case types.MethodExpr:
				if fn, ok := sel.Obj().(*types.Func); ok {
					sc.staticCallee(call, fn, env)
					return
				}
			}
		}
		if fn, ok := sc.info.Uses[fx.Sel].(*types.Func); ok {
			sc.staticCallee(call, fn, env)
			return
		}
		if _, ok := sc.info.Uses[fx.Sel].(*types.Var); ok {
			sc.site(call.Pos(), fmt.Sprintf("dynamic call through function variable %s cannot be statically proven panic-free", fx.Sel.Name))
			return
		}
	}
	sc.site(call.Pos(), "dynamic call through a computed function value cannot be statically proven panic-free")
}

func (sc *panicScan) builtin(name string, call *ast.CallExpr, env *facts) {
	switch name {
	case "panic":
		// Expression-position panic (e.g. inside a deferred thunk).
		sc.site(call.Pos(), "explicit panic call")
	case "make":
		// make panics when a size is negative or len > cap.
		for _, a := range call.Args[1:] {
			r := env.rangeOf(a)
			if !(r.hasLo && r.lo >= 0) {
				sc.site(a.Pos(), fmt.Sprintf("make size %s is not proven non-negative", exprKey(a)))
			}
		}
	}
}

// staticCallee handles a statically resolved callee: module functions
// join the traversal, encoding/binary codecs get a length proof,
// other externals must be allowlisted.
func (sc *panicScan) staticCallee(call *ast.CallExpr, fn *types.Func, env *facts) {
	pkg := fn.Pkg()
	if pkg == nil {
		return // error.Error and friends from the universe scope
	}
	path := pkg.Path()
	if path == sc.pp.a.modulePath || strings.HasPrefix(path, sc.pp.a.modulePath+"/") {
		key := funcKey(fn)
		if sc.pp.prog.funcs[key] == nil {
			sc.site(call.Pos(), fmt.Sprintf("call to %s has no body in the module index (generated or assembly?)", fn.FullName()))
			return
		}
		sc.callees[key] = true
		return
	}
	if path == "encoding/binary" {
		if width, ok := binaryWidths[fn.Name()]; ok {
			if len(call.Args) >= 1 && !env.argLenAtLeast(call.Args[0], width) {
				sc.site(call.Pos(), fmt.Sprintf("binary.%s panics on slices shorter than %d bytes and %s is not proven that long", fn.Name(), width, exprKey(call.Args[0])))
			}
			return
		}
	}
	if panicfreePackages[path] || panicfreeFuncs[path+"."+fn.Name()] {
		return
	}
	sc.site(call.Pos(), fmt.Sprintf("call into %s.%s is not on the panic-free allowlist", path, fn.Name()))
}

// checkConversionPanic flags the conversions that can panic at
// runtime: slice-to-array (and slice-to-array-pointer) without a
// length proof.
func (sc *panicScan) checkConversionPanic(call *ast.CallExpr, target types.Type, env *facts) {
	if len(call.Args) != 1 {
		return
	}
	src := sc.info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if _, isSlice := src.Underlying().(*types.Slice); !isSlice {
		return
	}
	n, ok := arrayLen(target)
	if !ok {
		return
	}
	if !env.argLenAtLeast(call.Args[0], n) {
		sc.site(call.Pos(), fmt.Sprintf("conversion to %s panics when len(%s) < %d and no guard proves it", target, exprKey(call.Args[0]), n))
	}
}

// invalidateSideEffects drops facts about variables a statement may
// have mutated through a pointer: address-taken operands (full
// invalidation — the callee can reassign through the pointer) and
// pointer-receiver method call receivers (content invalidation — the
// method gets a copy of the pointer, the binding survives).
func (sc *panicScan) invalidateSideEffects(e ast.Expr, env *facts) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				env.invalidate(baseIdent(x.X))
			}
		case *ast.CallExpr:
			if fx, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if sel := sc.info.Selections[fx]; sel != nil && sel.Kind() == types.MethodVal {
					if sig, ok := sel.Obj().Type().(*types.Signature); ok && sig.Recv() != nil {
						if _, ptr := sig.Recv().Type().(*types.Pointer); ptr {
							env.invalidateContents(baseIdent(fx.X))
						}
					}
				}
			}
		}
		return true
	})
}

// writeSets gathers every identifier a statement tree may write,
// split into binding writes (the variable itself is reassigned:
// ident assignment, inc/dec, range vars, var decls, address taken)
// and content writes (something reachable through it is mutated:
// index/field/pointer stores, pointer-receiver method calls).
func (sc *panicScan) writeSets(n ast.Node) (binds, conts map[string]bool) {
	binds, conts = make(map[string]bool), make(map[string]bool)
	if n == nil {
		return binds, conts
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					binds[id.Name] = true
				} else if b := baseIdent(l); b != "" {
					conts[b] = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				binds[id.Name] = true
			} else if b := baseIdent(x.X); b != "" {
				conts[b] = true
			}
		case *ast.RangeStmt:
			if b := baseIdent(x.Key); b != "" {
				binds[b] = true
			}
			if x.Value != nil {
				if b := baseIdent(x.Value); b != "" {
					binds[b] = true
				}
			}
		case *ast.ValueSpec:
			for _, name := range x.Names {
				binds[name.Name] = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if b := baseIdent(x.X); b != "" {
					binds[b] = true
				}
			}
		case *ast.CallExpr:
			if fx, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if sel := sc.info.Selections[fx]; sel != nil && sel.Kind() == types.MethodVal {
					if sig, ok := sel.Obj().Type().(*types.Signature); ok && sig.Recv() != nil {
						if _, ptr := sig.Recv().Type().(*types.Pointer); ptr {
							if b := baseIdent(fx.X); b != "" {
								conts[b] = true
							}
						}
					}
				}
			}
		}
		return true
	})
	return binds, conts
}

// incrementOnly reports whether every write to name under n is an
// `name++` on the bare identifier — the shape whose lower bound
// survives a loop.
func incrementOnly(n ast.Node, name string) bool {
	ok := true
	ast.Inspect(n, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				if id, isID := ast.Unparen(l).(*ast.Ident); isID && id.Name == name {
					ok = false
				}
			}
		case *ast.IncDecStmt:
			if id, isID := ast.Unparen(x.X).(*ast.Ident); isID && id.Name == name && x.Tok == token.DEC {
				ok = false
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if id, isID := ast.Unparen(x.X).(*ast.Ident); isID && id.Name == name {
					ok = false
				}
			}
		case *ast.RangeStmt:
			if baseIdent(x.Key) == name {
				ok = false
			}
			if x.Value != nil && baseIdent(x.Value) == name {
				ok = false
			}
		case *ast.ValueSpec:
			for _, nm := range x.Names {
				if nm.Name == name {
					ok = false
				}
			}
		}
		return ok
	})
	return ok
}

// declaredNames returns identifiers introduced by a simple statement
// (`i := ...` in an if/for/switch init).
func declaredNames(s ast.Stmt) map[string]bool {
	out := make(map[string]bool)
	if as, ok := s.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
		for _, l := range as.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
	}
	return out
}

// switchHasFallthrough reports whether any case ends in fallthrough.
func switchHasFallthrough(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.FALLTHROUGH {
			found = true
		}
		return !found
	})
	return found
}
