package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkDroppedErrors flags calls to (*core.Machine).Step,
// (*core.System).Deliver and (*core.System).DeliverSync whose results
// are discarded outright (expression statements, go/defer calls).
// ErrNoTransition from these calls *is* the specification-deviation
// signal of the paper — dropping it silently turns a detection into a
// no-op. An explicit `_, _ =` assignment is accepted as a deliberate,
// reviewable discard.
func (a *analyzer) checkDroppedErrors(files []*ast.File, info *types.Info) []finding {
	droppable := map[string]string{
		"(*" + a.corePath + ".Machine).Step":       "(*core.Machine).Step",
		"(*" + a.corePath + ".System).Deliver":     "(*core.System).Deliver",
		"(*" + a.corePath + ".System).DeliverSync": "(*core.System).DeliverSync",
	}
	var out []finding
	flag := func(call *ast.CallExpr) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return
		}
		short, ok := droppable[fn.FullName()]
		if !ok {
			return
		}
		out = append(out, finding{
			pos: a.fset.Position(call.Pos()),
			msg: fmt.Sprintf("result of %s discarded: its error is the specification-deviation signal — handle it or assign it explicitly", short),
		})
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					flag(call)
				}
			case *ast.GoStmt:
				flag(n.Call)
			case *ast.DeferStmt:
				flag(n.Call)
			}
			return true
		})
	}
	return out
}

// checkArgsIndexing flags direct indexing of core.Event.Args outside
// internal/core. The typed accessors (StringArg, IntArg, Uint32Arg,
// DurationArg) centralize the nil-map and type-assertion handling;
// raw map indexing reintroduces per-call-site assumptions about the
// wire types.
func (a *analyzer) checkArgsIndexing(importPath string, files []*ast.File, info *types.Info) []finding {
	if importPath == a.corePath {
		return nil
	}
	var out []finding
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			idx, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Args" {
				return true
			}
			if !a.isCoreEvent(info.Types[sel.X].Type) {
				return true
			}
			out = append(out, finding{
				pos: a.fset.Position(idx.Pos()),
				msg: "direct index into core.Event.Args: use the typed accessors (Arg, StringArg, IntArg, Uint32Arg, DurationArg) instead",
			})
			return true
		})
	}
	return out
}

// checkPayloadStringConv flags string(...) conversions whose operand
// is a byte slice derived from a packet Payload field. Materializing
// the whole packet body as a string copies it once per packet — the
// exact allocation the single-pass parser removed from the hot path.
// Only internal/sipmsg (where the parser lives) may do it; the
// analyzer skips that package in analyzeDir.
func (a *analyzer) checkPayloadStringConv(files []*ast.File, info *types.Info) []finding {
	var out []finding
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Kind() != types.String {
				return true
			}
			arg := call.Args[0]
			if !isByteSlice(info.Types[arg].Type) || !mentionsPayload(arg) {
				return true
			}
			out = append(out, finding{
				pos: a.fset.Position(call.Pos()),
				msg: "string conversion of a packet Payload copies the body per packet: parse the bytes in place (only internal/sipmsg materializes payload strings)",
			})
			return true
		})
	}
	return out
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func mentionsPayload(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Payload" {
			found = true
		}
		return !found
	})
	return found
}

func (a *analyzer) isCoreEvent(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Path() == a.corePath
}

// checkSpecRegistry enforces the package contract of internal/ids:
// every function that constructs a core.Spec must (a) mark at least
// one Final or Attack state — a spec with neither can never evict a
// call nor raise an alert — and (b) be reachable from the Specs
// registry, so cmd/fsmdump and speclint actually verify it.
func (a *analyzer) checkSpecRegistry(importPath string, files []*ast.File, info *types.Info) []finding {
	newSpecName := a.corePath + ".NewSpec"
	finalName := "(*" + a.corePath + ".Spec).Final"
	attackName := "(*" + a.corePath + ".Spec).Attack"

	type builderInfo struct {
		decl          *ast.FuncDecl
		declaresState bool
	}
	builders := make(map[string]*builderInfo)
	calls := make(map[string][]string) // function -> called package-level functions
	var specsDecl *ast.FuncDecl

	for _, f := range files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv != nil {
				continue
			}
			if fn.Name.Name == "Specs" {
				specsDecl = fn
			}
			b := &builderInfo{decl: fn}
			isBuilder := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.SelectorExpr:
					if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
						switch obj.FullName() {
						case newSpecName:
							isBuilder = true
						case finalName, attackName:
							b.declaresState = true
						}
					}
				case *ast.Ident:
					if obj, ok := info.Uses[fun].(*types.Func); ok &&
						obj.Pkg() != nil && obj.Pkg().Path() == importPath && obj.Parent() == obj.Pkg().Scope() {
						calls[fn.Name.Name] = append(calls[fn.Name.Name], fun.Name)
					}
				}
				return true
			})
			if isBuilder {
				builders[fn.Name.Name] = b
			}
		}
	}

	var out []finding
	if len(builders) == 0 {
		return nil
	}
	if specsDecl == nil {
		out = append(out, finding{
			pos: a.fset.Position(files[0].Pos()),
			msg: "package constructs core.Spec values but declares no Specs registry function",
		})
	}

	// Reachability from Specs over the intra-package call graph.
	reachable := make(map[string]bool)
	if specsDecl != nil {
		frontier := []string{"Specs"}
		reachable["Specs"] = true
		for len(frontier) > 0 {
			cur := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, callee := range calls[cur] {
				if !reachable[callee] {
					reachable[callee] = true
					frontier = append(frontier, callee)
				}
			}
		}
	}

	for name, b := range builders {
		if !b.declaresState {
			out = append(out, finding{
				pos: a.fset.Position(b.decl.Pos()),
				msg: fmt.Sprintf("spec builder %s declares neither Final nor Attack states: the machine can never be evicted or raise an alert", name),
			})
		}
		if specsDecl != nil && !reachable[name] {
			out = append(out, finding{
				pos: a.fset.Position(b.decl.Pos()),
				msg: fmt.Sprintf("spec builder %s is not reachable from the Specs registry: fsmdump and speclint never verify it", name),
			})
		}
	}
	return out
}
