package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The alloc-ceiling drift gate ties the two halves of the hot-path
// contract together: every module function measured by a
// testing.AllocsPerRun ceiling in the root alloc tests must be inside
// (or itself be) a //vids:noalloc closure, so the static escape gate
// and the runtime budget always police the same code. When someone
// adds a new ceiling without annotating the code path — or removes an
// annotation the ceilings still depend on — `make lint` fails.

// checkAllocDrift parses the module root's *_test.go files, finds
// every testing.AllocsPerRun call, resolves the module functions its
// closure invokes (following test-local helper closures), and reports
// any that the noalloc traversal never reached.
func (a *analyzer) checkAllocDrift(prog *program) ([]finding, error) {
	groups, err := a.parseRootTests()
	if err != nil {
		return nil, err
	}
	var out []finding
	reported := make(map[string]bool)
	paths := make([]string, 0, len(groups))
	for p := range groups {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, pkgName := range paths {
		g := groups[pkgName]
		info := newTypesInfo()
		conf := types.Config{Importer: a}
		if _, err := conf.Check(pkgName, a.fset, g, info); err != nil {
			return nil, fmt.Errorf("typecheck root test package %s: %w", pkgName, err)
		}
		d := &driftScan{a: a, prog: prog, info: info, reported: reported}
		d.indexHelpers(g)
		for _, f := range g {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 2 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "AllocsPerRun" {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "testing" {
					return true
				}
				d.scanMeasured(call.Args[1], make(map[ast.Node]bool))
				return true
			})
		}
		out = append(out, d.findings...)
	}
	return out, nil
}

// parseRootTests parses the module root's test files, grouped by
// package clause. Files carrying a `//go:build race` constraint are
// skipped: the analyzer does not evaluate build tags and the race
// variants exist only to toggle one boolean.
func (a *analyzer) parseRootTests() (map[string][]*ast.File, error) {
	entries, err := os.ReadDir(a.moduleRoot)
	if err != nil {
		return nil, err
	}
	groups := make(map[string][]*ast.File)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(a.fset, filepath.Join(a.moduleRoot, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if hasBuildTag(f, "race") {
			continue
		}
		groups[f.Name.Name] = append(groups[f.Name.Name], f)
	}
	return groups, nil
}

// hasBuildTag reports whether the file carries `//go:build <tag>`
// (the bare tag, not a negation or larger expression).
func hasBuildTag(f *ast.File, tag string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, "//go:build"); ok {
				if strings.TrimSpace(rest) == tag {
					return true
				}
			}
		}
	}
	return false
}

// driftScan resolves the functions a measured closure calls.
type driftScan struct {
	a        *analyzer
	prog     *program
	info     *types.Info
	reported map[string]bool
	findings []finding

	helperDecls map[string]*ast.FuncDecl // test-package funcKey → decl
	closureVars map[types.Object]*ast.FuncLit
}

// indexHelpers records the test package's own declarations and every
// `name := func() {...}` closure binding, so AllocsPerRun(n, run)
// resolves through the local variable to the measured body.
func (d *driftScan) indexHelpers(files []*ast.File) {
	d.helperDecls = make(map[string]*ast.FuncDecl)
	d.closureVars = make(map[types.Object]*ast.FuncLit)
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := d.info.Defs[fd.Name].(*types.Func); ok {
					d.helperDecls[funcKey(fn)] = fd
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lit, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit)
				if !ok {
					continue
				}
				if obj := d.info.Defs[id]; obj != nil {
					d.closureVars[obj] = lit
				} else if obj := d.info.Uses[id]; obj != nil {
					d.closureVars[obj] = lit
				}
			}
			return true
		})
	}
}

// scanMeasured walks the expression handed to AllocsPerRun: a function
// literal is scanned directly; an identifier resolves through a local
// closure binding or a declared helper.
func (d *driftScan) scanMeasured(expr ast.Expr, visited map[ast.Node]bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		d.scanBody(e.Body, visited)
	case *ast.Ident:
		if obj := d.info.Uses[e]; obj != nil {
			if lit, ok := d.closureVars[obj]; ok && !visited[lit] {
				visited[lit] = true
				d.scanBody(lit.Body, visited)
				return
			}
			if fn, ok := obj.(*types.Func); ok {
				if decl, ok := d.helperDecls[funcKey(fn)]; ok && !visited[decl] {
					visited[decl] = true
					d.scanBody(decl.Body, visited)
				}
			}
		}
	}
}

// scanBody collects the module functions a measured body calls,
// recursing through test-package helpers, and reports any that are
// outside every //vids:noalloc closure.
func (d *driftScan) scanBody(body *ast.BlockStmt, visited map[ast.Node]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var fn *types.Func
		switch fx := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			fn, _ = d.info.Uses[fx].(*types.Func)
			if fn == nil {
				if obj := d.info.Uses[fx]; obj != nil {
					if lit, ok := d.closureVars[obj]; ok && !visited[lit] {
						visited[lit] = true
						d.scanBody(lit.Body, visited)
					}
				}
				return true
			}
		case *ast.SelectorExpr:
			if sel := d.info.Selections[fx]; sel != nil && sel.Kind() == types.MethodVal {
				fn, _ = sel.Obj().(*types.Func)
			} else {
				fn, _ = d.info.Uses[fx.Sel].(*types.Func)
			}
		}
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		key := funcKey(fn)
		if decl, ok := d.helperDecls[key]; ok {
			if !visited[decl] {
				visited[decl] = true
				d.scanBody(decl.Body, visited)
			}
			return true
		}
		path := fn.Pkg().Path()
		if path != d.a.modulePath && !strings.HasPrefix(path, d.a.modulePath+"/") {
			return true
		}
		node := d.prog.funcs[key]
		if node == nil {
			return true // no body in the index (interface method decl, etc.)
		}
		if !node.noalloc && !node.reached && !d.reported[key] {
			d.reported[key] = true
			d.findings = append(d.findings, finding{
				pos: d.a.fset.Position(call.Pos()),
				msg: fmt.Sprintf("alloc-ceiling drift: %s is measured by testing.AllocsPerRun here but is not covered by any //vids:noalloc root — annotate it (or a caller) so the escape gate polices what the budget measures", node.name()),
			})
		}
		return true
	})
}
