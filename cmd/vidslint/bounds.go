package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// bounds.go is the nopanic gate's facts engine: a flow-sensitive,
// intraprocedural dataflow over the statement structure of one
// function body. It tracks three kinds of facts, keyed by the
// canonical source text of the expression they describe
// (types.ExprString, so `m.Other` and `buf` are both valid keys):
//
//   - length facts: len(X) >= c for a proven constant minimum c,
//     established by guards like `if len(b) < 4 { return }` and by
//     re-slicing (`h := b[2:6]` gives len(h) >= 4 when the bounds
//     prove it);
//   - integer facts: a constant interval [lo, hi] plus an optional
//     symbolic upper bound  i <= len(X)+delta, established by
//     comparisons, `bytes.IndexByte` results, range loops and the
//     classic counted-for idiom; `nonzero` feeds the division rule;
//   - nil facts: expressions proven non-nil (make/literal/&T{}
//     assignments, `!= nil` guards) or definitely nil (declared
//     without initialization, assigned a nil literal).
//
// The lattice is deliberately small: joins intersect fact maps
// (keeping the weaker bound), assignments invalidate every fact whose
// key mentions the assigned name (so guards killed by mutation stop
// proving anything — soundness over precision), and anything the
// engine cannot prove is a finding for the human to either guard or
// waive with a concrete impossibility argument.

// intFact bounds one integer-valued expression.
type intFact struct {
	lo, hi       int64
	hasLo, hasHi bool
	lenRef       string // value <= len(lenRef)+lenDelta when hasLenRef
	lenDelta     int64
	hasLenRef    bool
	nonzero      bool
}

// facts is the environment at one program point.
type facts struct {
	info   *types.Info
	lens   map[string]int64 // key -> proven minimum length
	ints   map[string]intFact
	nonNil map[string]bool
	defNil map[string]bool

	// rels holds pairwise orderings "a\x00b" -> d meaning a <= b+d,
	// from guards comparing two non-constant expressions (`if j <= i
	// { return }` proves i+1 <= j afterwards).
	rels map[string]int64
	// eqLen maps expressions proven to have equal lengths (`if len(b)
	// != len(s) { return false }`), so a bound proven against one
	// transfers to the other.
	eqLen map[string]string
}

func newFacts(info *types.Info) *facts {
	return &facts{
		info:   info,
		lens:   make(map[string]int64),
		ints:   make(map[string]intFact),
		nonNil: make(map[string]bool),
		defNil: make(map[string]bool),
		rels:   make(map[string]int64),
		eqLen:  make(map[string]string),
	}
}

func relKey(a, b string) string { return a + "\x00" + b }

// setRel records a <= b+d, keeping the stronger (smaller) d.
func (e *facts) setRel(a, b string, d int64) {
	k := relKey(a, b)
	if cur, ok := e.rels[k]; !ok || d < cur {
		e.rels[k] = d
	}
}

// relLEQ reports whether a <= b+d is recorded at least that strongly.
func (e *facts) relLEQ(a, b string, d int64) bool {
	cur, ok := e.rels[relKey(a, b)]
	return ok && cur <= d
}

// lenEquiv reports whether a and b are the same expression or proven
// equal-length.
func (e *facts) lenEquiv(a, b string) bool {
	return a == b || e.eqLen[a] == b || e.eqLen[b] == a
}

func (e *facts) clone() *facts {
	c := newFacts(e.info)
	for k, v := range e.lens {
		c.lens[k] = v
	}
	for k, v := range e.ints {
		c.ints[k] = v
	}
	for k := range e.nonNil {
		c.nonNil[k] = true
	}
	for k := range e.defNil {
		c.defNil[k] = true
	}
	for k, v := range e.rels {
		c.rels[k] = v
	}
	for k, v := range e.eqLen {
		c.eqLen[k] = v
	}
	return c
}

// join intersects two environments: only facts that hold on both
// paths survive, at their weaker bound.
func (e *facts) join(o *facts) *facts {
	j := newFacts(e.info)
	for k, v := range e.lens {
		if ov, ok := o.lens[k]; ok {
			j.lens[k] = min64(v, ov)
		}
	}
	for k, v := range e.ints {
		ov, ok := o.ints[k]
		if !ok {
			continue
		}
		var m intFact
		if v.hasLo && ov.hasLo {
			m.hasLo, m.lo = true, min64(v.lo, ov.lo)
		}
		if v.hasHi && ov.hasHi {
			m.hasHi, m.hi = true, max64(v.hi, ov.hi)
		}
		if v.hasLenRef && ov.hasLenRef && v.lenRef == ov.lenRef {
			m.hasLenRef, m.lenRef, m.lenDelta = true, v.lenRef, max64(v.lenDelta, ov.lenDelta)
		}
		m.nonzero = v.nonzero && ov.nonzero
		if m.hasLo || m.hasHi || m.hasLenRef || m.nonzero {
			j.ints[k] = m
		}
	}
	for k := range e.nonNil {
		if o.nonNil[k] {
			j.nonNil[k] = true
		}
	}
	for k := range e.defNil {
		if o.defNil[k] {
			j.defNil[k] = true
		}
	}
	for k, v := range e.rels {
		if ov, ok := o.rels[k]; ok {
			j.rels[k] = max64(v, ov)
		}
	}
	for k, v := range e.eqLen {
		if o.eqLen[k] == v {
			j.eqLen[k] = v
		}
	}
	return j
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// exprKey canonicalizes an expression into its fact-map key.
func exprKey(e ast.Expr) string {
	return types.ExprString(ast.Unparen(e))
}

// mentions reports whether the fact key refers to identifier name
// (whole-word match, so invalidating `i` leaves `size` alone).
func mentions(key, name string) bool {
	for i := 0; i+len(name) <= len(key); i++ {
		j := strings.Index(key[i:], name)
		if j < 0 {
			return false
		}
		j += i
		before := j == 0 || !isIdentChar(key[j-1])
		afterIdx := j + len(name)
		after := afterIdx == len(key) || !isIdentChar(key[afterIdx])
		if before && after {
			return true
		}
		i = j
	}
	return false
}

func isIdentChar(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// invalidate drops every fact whose key mentions name — a mutated
// variable takes all guards that referenced it down with it.
func (e *facts) invalidate(name string) {
	if name == "" || name == "_" {
		return
	}
	for k := range e.lens {
		if mentions(k, name) {
			delete(e.lens, k)
		}
	}
	for k := range e.ints {
		if mentions(k, name) {
			delete(e.ints, k)
		}
	}
	for k := range e.nonNil {
		if mentions(k, name) {
			delete(e.nonNil, k)
		}
	}
	for k := range e.defNil {
		if mentions(k, name) {
			delete(e.defNil, k)
		}
	}
	for k := range e.rels {
		if mentions(k, name) {
			delete(e.rels, k)
		}
	}
	for k, v := range e.eqLen {
		if mentions(k, name) || mentions(v, name) {
			delete(e.eqLen, k)
		}
	}
}

// invalidateContents handles writes through a variable's contents
// (m[k] = v, p.f = v, *p = v): every derived fact about expressions
// involving the base dies, but the base binding itself cannot have
// been made nil by a content write, so its own nil-ness survives —
// this is what keeps `params := make(map[...]...)` provably non-nil
// across the map fills inside a loop.
func (e *facts) invalidateContents(name string) {
	if name == "" || name == "_" {
		return
	}
	wasNonNil, wasDefNil := e.nonNil[name], e.defNil[name]
	e.invalidate(name)
	if wasNonNil {
		e.nonNil[name] = true
	}
	if wasDefNil {
		e.defNil[name] = true
	}
}

// baseIdent returns the left-most identifier of an lvalue-ish
// expression (`m.Other[k]` -> "m"), the invalidation granularity.
func baseIdent(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return baseIdent(x.X)
	case *ast.IndexExpr:
		return baseIdent(x.X)
	case *ast.SliceExpr:
		return baseIdent(x.X)
	case *ast.StarExpr:
		return baseIdent(x.X)
	}
	return ""
}

// setMinLen records len(key) >= n, keeping the stronger bound.
func (e *facts) setMinLen(key string, n int64) {
	if n < 0 {
		n = 0
	}
	if cur, ok := e.lens[key]; !ok || n > cur {
		e.lens[key] = n
	}
}

// mergeInt strengthens the recorded fact for key with f.
func (e *facts) mergeInt(key string, f intFact) {
	cur := e.ints[key]
	if f.hasLo && (!cur.hasLo || f.lo > cur.lo) {
		cur.hasLo, cur.lo = true, f.lo
	}
	if f.hasHi && (!cur.hasHi || f.hi < cur.hi) {
		cur.hasHi, cur.hi = true, f.hi
	}
	// A fresh symbolic bound replaces a different-slice bound: the
	// most recent guard is the one the code below it relies on.
	if f.hasLenRef && (!cur.hasLenRef || cur.lenRef != f.lenRef || f.lenDelta < cur.lenDelta) {
		cur.hasLenRef, cur.lenRef, cur.lenDelta = true, f.lenRef, f.lenDelta
	}
	if f.nonzero {
		cur.nonzero = true
	}
	e.ints[key] = cur
}

// constVal extracts a compile-time integer constant, folding
// len("lit") and named constants through the type checker.
func (e *facts) constVal(x ast.Expr) (int64, bool) {
	if tv, ok := e.info.Types[x]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return v, true
		}
	}
	return 0, false
}

// minLen returns the proven minimum length of a slice/string/array
// expression: fixed array sizes, constant strings, or a length fact.
func (e *facts) minLen(x ast.Expr) (int64, bool) {
	x = ast.Unparen(x)
	if t := e.info.TypeOf(x); t != nil {
		if n, ok := arrayLen(t); ok {
			return n, true
		}
	}
	if tv, ok := e.info.Types[x]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return int64(len(constant.StringVal(tv.Value))), true
	}
	key := exprKey(x)
	if n, ok := e.lens[key]; ok {
		return n, true
	}
	if other, ok := e.eqLen[key]; ok {
		if n, ok := e.lens[other]; ok {
			return n, true
		}
	}
	// Lengths are never negative, so zero is always a sound floor —
	// this is what proves the universally safe x[:0] reset idiom.
	return 0, true
}

// arrayLen unwraps [N]T and *[N]T.
func arrayLen(t types.Type) (int64, bool) {
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	if arr, ok := u.(*types.Array); ok {
		return arr.Len(), true
	}
	return 0, false
}

// isLenCall matches len(X) / cap(X) and returns X.
func (e *facts) isLenCall(x ast.Expr) (arg ast.Expr, isCap, ok bool) {
	call, isCall := ast.Unparen(x).(*ast.CallExpr)
	if !isCall || len(call.Args) != 1 {
		return nil, false, false
	}
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent {
		return nil, false, false
	}
	if _, isBuiltin := e.info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil, false, false
	}
	switch id.Name {
	case "len":
		return call.Args[0], false, true
	case "cap":
		return call.Args[0], true, true
	}
	return nil, false, false
}

// rangeOf evaluates the provable interval of an integer expression:
// constants, fact lookups, unsigned-type floors, len/cap calls and a
// structural arithmetic over +, -, *, /, %, &, >> and conversions.
// The symbolic lenRef component survives ± constant adjustment, so
// `i+1` inherits `i <= len(b)-1` as `<= len(b)`.
func (e *facts) rangeOf(x ast.Expr) intFact {
	x = ast.Unparen(x)
	if v, ok := e.constVal(x); ok {
		return intFact{lo: v, hi: v, hasLo: true, hasHi: true, nonzero: v != 0}
	}
	var f intFact
	switch b := x.(type) {
	case *ast.BinaryExpr:
		f = e.rangeBinary(b)
	case *ast.CallExpr:
		if arg, isCap, ok := e.isLenCall(x); ok {
			if n, known := e.minLen(arg); known {
				f.hasLo, f.lo = true, n
			} else {
				f.hasLo, f.lo = true, 0
			}
			if !isCap {
				f.hasLenRef, f.lenRef, f.lenDelta = true, exprKey(arg), 0
			}
			break
		}
		if conv, ok := e.conversionOperand(b); ok {
			f = e.rangeConv(b, conv)
		}
	case *ast.UnaryExpr:
		if b.Op == token.SUB {
			r := e.rangeOf(b.X)
			if r.hasHi {
				f.hasLo, f.lo = true, -r.hi
			}
			if r.hasLo {
				f.hasHi, f.hi = true, -r.lo
			}
			f.nonzero = r.nonzero
		}
	default:
		if fact, ok := e.ints[exprKey(x)]; ok {
			f = fact
		}
	}
	// Unsigned-typed expressions never go below zero, and the narrow
	// unsigned kinds carry a width ceiling for free.
	if t := e.info.TypeOf(x); t != nil {
		if bt, ok := t.Underlying().(*types.Basic); ok && bt.Info()&types.IsUnsigned != 0 {
			if !f.hasLo || f.lo < 0 {
				f.hasLo, f.lo = true, 0
			}
			if w, ok := narrowUnsignedMax(bt.Kind()); ok && (!f.hasHi || f.hi > w) {
				f.hasHi, f.hi = true, w
			}
		}
	}
	// An ident can carry facts on top of its structural range.
	if fact, ok := e.ints[exprKey(x)]; ok {
		if fact.hasLo && (!f.hasLo || fact.lo > f.lo) {
			f.hasLo, f.lo = true, fact.lo
		}
		if fact.hasHi && (!f.hasHi || fact.hi < f.hi) {
			f.hasHi, f.hi = true, fact.hi
		}
		if fact.hasLenRef && !f.hasLenRef {
			f.hasLenRef, f.lenRef, f.lenDelta = true, fact.lenRef, fact.lenDelta
		}
		f.nonzero = f.nonzero || fact.nonzero
	}
	return f
}

func narrowUnsignedMax(k types.BasicKind) (int64, bool) {
	switch k {
	case types.Uint8:
		return 255, true
	case types.Uint16:
		return 65535, true
	}
	return 0, false
}

// conversionOperand returns the operand when call is a type
// conversion to a basic integer type.
func (e *facts) conversionOperand(call *ast.CallExpr) (ast.Expr, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := e.info.Types[ast.Unparen(call.Fun)]
	if !ok || !tv.IsType() {
		return nil, false
	}
	if bt, ok := tv.Type.Underlying().(*types.Basic); !ok || bt.Info()&types.IsInteger == 0 {
		return nil, false
	}
	return call.Args[0], true
}

// rangeConv propagates a range through an integer conversion when the
// operand's interval provably fits the target type, so no wrap or
// truncation can occur.
func (e *facts) rangeConv(call *ast.CallExpr, operand ast.Expr) intFact {
	r := e.rangeOf(operand)
	tv := e.info.Types[ast.Unparen(call.Fun)]
	bt, _ := tv.Type.Underlying().(*types.Basic)
	if bt == nil {
		return intFact{}
	}
	lo, hi, ok := intKindRange(bt.Kind())
	if !ok {
		return intFact{}
	}
	if r.hasLo && r.lo >= lo && ((r.hasHi && r.hi <= hi) || widerOrEqual(bt.Kind(), e.operandKind(operand))) {
		return r
	}
	// Otherwise only the target type's own unsigned floor is safe,
	// which the caller's unsigned handling already adds.
	return intFact{}
}

func (e *facts) operandKind(x ast.Expr) types.BasicKind {
	if t := e.info.TypeOf(x); t != nil {
		if bt, ok := t.Underlying().(*types.Basic); ok {
			return bt.Kind()
		}
	}
	return types.Invalid
}

// intKindRange returns the representable range of an integer kind
// (64-bit platform model, matching the repo's deployment targets).
func intKindRange(k types.BasicKind) (lo, hi int64, ok bool) {
	switch k {
	case types.Int, types.Int64:
		return -1 << 63, 1<<63 - 1, true
	case types.Int32:
		return -1 << 31, 1<<31 - 1, true
	case types.Int16:
		return -1 << 15, 1<<15 - 1, true
	case types.Int8:
		return -128, 127, true
	case types.Uint, types.Uint64, types.Uintptr:
		return 0, 1<<63 - 1, true // hi clamped to int64 range
	case types.Uint32:
		return 0, 1<<32 - 1, true
	case types.Uint16:
		return 0, 65535, true
	case types.Uint8:
		return 0, 255, true
	}
	return 0, 0, false
}

// intKindBits is the storage width used by the truncating-conversion
// rule.
func intKindBits(k types.BasicKind) int {
	switch k {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	case types.Int, types.Uint, types.Int64, types.Uint64, types.Uintptr:
		return 64
	}
	return 0
}

func widerOrEqual(target, source types.BasicKind) bool {
	tb, sb := intKindBits(target), intKindBits(source)
	return tb != 0 && sb != 0 && tb >= sb
}

func (e *facts) rangeBinary(b *ast.BinaryExpr) intFact {
	l, r := e.rangeOf(b.X), e.rangeOf(b.Y)
	var f intFact
	switch b.Op {
	case token.ADD:
		if l.hasLo && r.hasLo {
			f.hasLo, f.lo = true, l.lo+r.lo
		}
		if l.hasHi && r.hasHi {
			f.hasHi, f.hi = true, l.hi+r.hi
		}
		if l.hasLenRef && r.hasLo && r.hasHi && r.lo == r.hi {
			f.hasLenRef, f.lenRef, f.lenDelta = true, l.lenRef, l.lenDelta+r.lo
		} else if r.hasLenRef && l.hasLo && l.hasHi && l.lo == l.hi {
			f.hasLenRef, f.lenRef, f.lenDelta = true, r.lenRef, r.lenDelta+l.lo
		}
	case token.SUB:
		if l.hasLo && r.hasHi {
			f.hasLo, f.lo = true, l.lo-r.hi
		}
		if l.hasHi && r.hasLo {
			f.hasHi, f.hi = true, l.hi-r.lo
		}
		if l.hasLenRef && r.hasLo && r.hasHi && r.lo == r.hi {
			f.hasLenRef, f.lenRef, f.lenDelta = true, l.lenRef, l.lenDelta-r.lo
		}
	case token.MUL:
		if l.hasLo && r.hasLo && l.lo >= 0 && r.lo >= 0 {
			f.hasLo, f.lo = true, l.lo*r.lo
			if l.hasHi && r.hasHi {
				f.hasHi, f.hi = true, l.hi*r.hi
			}
		}
	case token.QUO:
		if l.hasLo && l.lo >= 0 && r.hasLo && r.lo >= 1 {
			f.hasLo, f.lo = true, 0
			if l.hasHi {
				f.hasHi, f.hi = true, l.hi
			}
		}
	case token.REM:
		if l.hasLo && l.lo >= 0 && r.hasLo && r.lo >= 1 {
			f.hasLo, f.lo = true, 0
			if r.hasHi {
				f.hasHi, f.hi = true, r.hi-1
			}
		}
	case token.AND:
		// x & c with constant c >= 0 lands in [0, c] for any x.
		if c, ok := e.constVal(b.Y); ok && c >= 0 {
			f = intFact{lo: 0, hi: c, hasLo: true, hasHi: true}
		} else if c, ok := e.constVal(b.X); ok && c >= 0 {
			f = intFact{lo: 0, hi: c, hasLo: true, hasHi: true}
		}
	case token.SHR:
		if l.hasLo && l.lo >= 0 {
			f.hasLo, f.lo = true, 0
			if l.hasHi {
				if c, ok := e.constVal(b.Y); ok && c >= 0 && c < 63 {
					f.hasHi, f.hi = true, l.hi>>uint(c)
				} else {
					f.hasHi, f.hi = true, l.hi
				}
			}
		}
	}
	return f
}

// ---- condition-derived facts ----

// applyCond augments the environment with what holds when cond
// evaluated to (!negate): comparison guards, nil checks, &&/|| under
// the usual De Morgan decomposition.
func (e *facts) applyCond(cond ast.Expr, negate bool) {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			e.applyCond(c.X, !negate)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if !negate { // A && B true: both hold
				e.applyCond(c.X, false)
				e.applyCond(c.Y, false)
			}
		case token.LOR:
			if negate { // !(A || B): both negations hold
				e.applyCond(c.X, true)
				e.applyCond(c.Y, true)
			}
		default:
			op := c.Op
			if negate {
				op = negateCmp(op)
				if op == token.ILLEGAL {
					return
				}
			}
			e.applyCompare(c.X, op, c.Y)
		}
	}
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	}
	return token.ILLEGAL
}

// applyCompare records facts from `lhs op rhs` holding true.
func (e *facts) applyCompare(lhs ast.Expr, op token.Token, rhs ast.Expr) {
	// Normalize so the interesting operand sits on the left.
	if _, lConst := e.constVal(lhs); (lConst || e.isNilExpr(lhs)) && !e.isNilExpr(rhs) {
		lhs, rhs = rhs, lhs
		op = flipCmp(op)
	}
	switch {
	case e.isNilExpr(rhs):
		key := exprKey(lhs)
		switch op {
		case token.EQL:
			e.defNil[key] = true
			delete(e.nonNil, key)
		case token.NEQ:
			e.nonNil[key] = true
			delete(e.defNil, key)
		}
		return
	}
	// len(x) guards establish length facts from the other side.
	lArg, lIsCap, lIsLen := e.isLenCall(lhs)
	rArg, rIsCap, rIsLen := e.isLenCall(rhs)
	if lIsLen && !lIsCap {
		e.applyLenCompare(lArg, op, rhs)
	}
	if rIsLen && !rIsCap {
		e.applyLenCompare(rArg, flipCmp(op), lhs)
	}
	// len(a) == len(b) makes the two containers interchangeable for
	// bounds proofs.
	if op == token.EQL && lIsLen && rIsLen && !lIsCap && !rIsCap {
		ka, kb := exprKey(lArg), exprKey(rArg)
		e.eqLen[ka] = kb
		e.eqLen[kb] = ka
	}
	// Integer facts for the left side from the right side's range.
	if !isIntExpr(e.info, lhs) {
		return
	}
	// Two non-constant operands yield a pairwise ordering fact.
	if _, rConst := e.constVal(rhs); !rConst && isIntExpr(e.info, rhs) {
		lk, rk := exprKey(lhs), exprKey(rhs)
		switch op {
		case token.LSS:
			e.setRel(lk, rk, -1)
		case token.LEQ:
			e.setRel(lk, rk, 0)
		case token.GTR:
			e.setRel(rk, lk, -1)
		case token.GEQ:
			e.setRel(rk, lk, 0)
		case token.EQL:
			e.setRel(lk, rk, 0)
			e.setRel(rk, lk, 0)
		}
	}
	key := exprKey(lhs)
	r := e.rangeOf(rhs)
	var f intFact
	switch op {
	case token.LSS: // lhs < rhs
		if r.hasHi {
			f.hasHi, f.hi = true, r.hi-1
		}
		if r.hasLenRef {
			f.hasLenRef, f.lenRef, f.lenDelta = true, r.lenRef, r.lenDelta-1
		}
	case token.LEQ:
		if r.hasHi {
			f.hasHi, f.hi = true, r.hi
		}
		if r.hasLenRef {
			f.hasLenRef, f.lenRef, f.lenDelta = true, r.lenRef, r.lenDelta
		}
	case token.GTR:
		if r.hasLo {
			f.hasLo, f.lo = true, r.lo+1
		}
	case token.GEQ:
		if r.hasLo {
			f.hasLo, f.lo = true, r.lo
		}
	case token.EQL:
		f = r
	case token.NEQ:
		if r.hasLo && r.hasHi && r.lo == 0 && r.hi == 0 {
			f.nonzero = true
		}
	}
	f.nonzero = f.nonzero || (f.hasLo && f.lo > 0) || (f.hasHi && f.hi < 0)
	if f.hasLo || f.hasHi || f.hasLenRef || f.nonzero {
		e.mergeInt(key, f)
	}
}

// applyLenCompare records a minimum-length fact for arg from
// `len(arg) op rhs` and a symbolic upper bound for rhs when the
// comparison caps it by the length.
func (e *facts) applyLenCompare(arg ast.Expr, op token.Token, rhs ast.Expr) {
	key := exprKey(arg)
	r := e.rangeOf(rhs)
	switch op {
	case token.GTR: // len(arg) > rhs
		if r.hasLo {
			e.setMinLen(key, r.lo+1)
		}
		if isIntExpr(e.info, rhs) {
			e.mergeInt(exprKey(rhs), intFact{hasLenRef: true, lenRef: key, lenDelta: -1})
			e.lenRefAddend(rhs, key, -1)
		}
	case token.GEQ, token.EQL: // len(arg) >= rhs (== implies >=)
		if r.hasLo {
			e.setMinLen(key, r.lo)
		}
		if isIntExpr(e.info, rhs) {
			e.mergeInt(exprKey(rhs), intFact{hasLenRef: true, lenRef: key, lenDelta: 0})
			e.lenRefAddend(rhs, key, 0)
		}
		if op == token.EQL && r.hasLo && r.hasHi && r.lo == r.hi {
			// Exact length: also cap indices proven < len elsewhere.
			e.mergeInt("len("+key+")", intFact{hasLo: true, lo: r.lo, hasHi: true, hi: r.hi})
		}
	case token.NEQ:
		// len(arg) != 0 on an unsigned length means >= 1.
		if r.hasLo && r.hasHi && r.lo == 0 && r.hi == 0 {
			e.setMinLen(key, 1)
		}
	}
}

// lenRefAddend propagates a symbolic cap from a compound operand to
// its base: `i+c ≤ len(arg)+delta` implies `i ≤ len(arg)+delta-c`, so
// a guard like `i+1 < len(b)` also caps the bare i (proving b[i], not
// just b[i+1]).
func (e *facts) lenRefAddend(rhs ast.Expr, key string, delta int64) {
	if base, c := e.splitAddend(rhs); base != "" && c != 0 {
		e.mergeInt(base, intFact{hasLenRef: true, lenRef: key, lenDelta: delta - c})
	}
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // ==, != are symmetric
}

func (e *facts) isNilExpr(x ast.Expr) bool {
	tv, ok := e.info.Types[ast.Unparen(x)]
	return ok && tv.IsNil()
}

func isIntExpr(info *types.Info, x ast.Expr) bool {
	t := info.TypeOf(ast.Unparen(x))
	if t == nil {
		return false
	}
	bt, ok := t.Underlying().(*types.Basic)
	return ok && bt.Info()&types.IsInteger != 0
}

// ---- assignment-derived facts ----

// learnAssign records facts flowing from `lhs := rhs` / `lhs = rhs`
// after the caller invalidated lhs's old facts: re-slice lengths,
// index-search results, copy results, non-nil allocations, nil
// literals and plain arithmetic ranges.
func (e *facts) learnAssign(lhs, rhs ast.Expr) {
	key := exprKey(lhs)
	if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
		if baseIdent(lhs) == "" {
			return
		}
	}
	rhs = ast.Unparen(rhs)
	if e.isNilExpr(rhs) {
		e.defNil[key] = true
		return
	}
	switch r := rhs.(type) {
	case *ast.SliceExpr:
		if n, ok := e.sliceResultMinLen(r); ok {
			e.setMinLen(key, n)
		}
		return
	case *ast.CompositeLit:
		e.nonNil[key] = true
		if t := e.info.TypeOf(r); t != nil {
			if _, isSlice := t.Underlying().(*types.Slice); isSlice {
				// Keyed elements only push the length up, so the
				// element count is a sound minimum.
				e.setMinLen(key, int64(len(r.Elts)))
			}
		}
		return
	case *ast.UnaryExpr:
		if r.Op == token.AND {
			e.nonNil[key] = true
			return
		}
	case *ast.CallExpr:
		if f, ok := e.callResultFact(r); ok {
			e.mergeInt(key, f)
			return
		}
		if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok {
			if b, isBuiltin := e.info.Uses[id].(*types.Builtin); isBuiltin {
				switch b.Name() {
				case "make", "new":
					e.nonNil[key] = true
					if b.Name() == "make" && len(r.Args) >= 2 {
						if n, ok := e.constVal(r.Args[1]); ok {
							e.setMinLen(key, n)
						}
					}
					return
				case "append":
					e.nonNil[key] = true
					return
				}
			}
		}
	}
	if isIntExpr(e.info, lhs) {
		f := e.rangeOf(rhs)
		if f.hasLo || f.hasHi || f.hasLenRef || f.nonzero {
			e.mergeInt(key, f)
		}
	}
}

// sliceResultMinLen computes a guaranteed minimum length for the
// value of x[a:b]: min(b) - max(a), with missing bounds defaulting to
// 0 and len(x).
func (e *facts) sliceResultMinLen(se *ast.SliceExpr) (int64, bool) {
	var aHi int64
	if se.Low != nil {
		ra := e.rangeOf(se.Low)
		if !ra.hasHi {
			return 0, false
		}
		aHi = ra.hi
	}
	var bLo int64
	if se.High == nil {
		n, ok := e.minLen(se.X)
		if !ok {
			return 0, false
		}
		bLo = n
	} else {
		rb := e.rangeOf(se.High)
		if !rb.hasLo {
			return 0, false
		}
		bLo = rb.lo
	}
	if bLo-aHi < 0 {
		return 0, false
	}
	return bLo - aHi, true
}

// callResultFact models the stdlib search/copy results the parsers
// lean on: bytes/strings Index* return < len(haystack) (and >= -1),
// copy returns [0, len(dst)].
func (e *facts) callResultFact(call *ast.CallExpr) (intFact, bool) {
	// copy builtin.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := e.info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "copy" && len(call.Args) == 2 {
			return intFact{hasLo: true, lo: 0, hasLenRef: true, lenRef: exprKey(call.Args[0]), lenDelta: 0}, true
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return intFact{}, false
	}
	fn, ok := e.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return intFact{}, false
	}
	pkg := fn.Pkg().Path()
	if pkg != "bytes" && pkg != "strings" {
		return intFact{}, false
	}
	if len(call.Args) < 1 {
		return intFact{}, false
	}
	hay := exprKey(call.Args[0])
	switch fn.Name() {
	case "IndexByte", "LastIndexByte", "IndexRune":
		// result in [-1, len(hay)-1]
		return intFact{hasLo: true, lo: -1, hasLenRef: true, lenRef: hay, lenDelta: -1}, true
	case "Index", "LastIndex", "IndexAny", "LastIndexAny":
		if len(call.Args) == 2 {
			var sepMin int64
			if n, ok := e.minLen(call.Args[1]); ok {
				sepMin = n
			}
			return intFact{hasLo: true, lo: -1, hasLenRef: true, lenRef: hay, lenDelta: -sepMin}, true
		}
	}
	return intFact{}, false
}

// ---- proofs consumed by the nopanic pass ----

// indexOK reports whether x[idx] is provably in bounds.
func (e *facts) indexOK(x, idx ast.Expr) bool {
	r := e.rangeOf(idx)
	if !r.hasLo || r.lo < 0 {
		return false
	}
	if r.hasLenRef && e.lenEquiv(r.lenRef, exprKey(x)) && r.lenDelta <= -1 {
		return true
	}
	if r.hasHi {
		if n, ok := e.minLen(x); ok && r.hi < n {
			return true
		}
	}
	return false
}

// boundLEQLen reports whether bound <= len(x) [+slack] provably
// holds; slack -1 asks for strictly less.
func (e *facts) boundLEQLen(bound ast.Expr, x ast.Expr, slack int64) bool {
	r := e.rangeOf(bound)
	if r.hasLenRef && e.lenEquiv(r.lenRef, exprKey(x)) && r.lenDelta <= slack {
		return true
	}
	if r.hasHi {
		if n, ok := e.minLen(x); ok && r.hi <= n+slack {
			return true
		}
	}
	return false
}

// sliceExprOK proves x[a:b] (and the rarely used x[a:b:c]) in
// bounds: a >= 0, b <= len(x), a <= b.
func (e *facts) sliceExprOK(se *ast.SliceExpr) bool {
	x := se.X
	// Low bound >= 0.
	var loRange intFact
	if se.Low != nil {
		loRange = e.rangeOf(se.Low)
		if !loRange.hasLo || loRange.lo < 0 {
			return false
		}
	} else {
		loRange = intFact{hasLo: true, lo: 0, hasHi: true, hi: 0}
	}
	// High bound <= len(x) — for slices (not arrays/strings) the true
	// limit is cap, and len is a sound lower bound on cap.
	if se.High != nil {
		if !e.boundLEQLen(se.High, x, 0) {
			return false
		}
	}
	// Low <= High.
	high := se.High
	if high == nil {
		// a <= len(x)
		if !e.boundLEQLen(se.Low, x, 0) {
			return false
		}
	} else {
		if !e.leq(se.Low, high, loRange) {
			return false
		}
	}
	// A 3-index max bound is provable only in the structural cap form.
	if se.Slice3 && se.Max != nil {
		if arg, isCap, ok := e.isLenCall(se.Max); !ok || !isCap || exprKey(arg) != exprKey(x) {
			return false
		}
	}
	return true
}

// leq proves low <= high for slice bounds: structurally (high ==
// low+c, c >= 0) or via ranges.
func (e *facts) leq(low, high ast.Expr, loRange intFact) bool {
	var lowKey string
	if low != nil {
		lowKey = exprKey(low)
	}
	if b, ok := ast.Unparen(high).(*ast.BinaryExpr); ok && low != nil {
		if b.Op == token.ADD && exprKey(b.X) == lowKey {
			if c, ok := e.constVal(b.Y); ok && c >= 0 {
				return true
			}
		}
	}
	hr := e.rangeOf(high)
	if low == nil {
		return hr.hasLo && hr.lo >= 0
	}
	if loRange.hasHi && hr.hasLo && loRange.hi <= hr.lo {
		return true
	}
	// Pairwise ordering facts: low = X+cx, high = Y+cy, and a guard
	// proved X <= Y+d with d <= cy-cx.
	lb, lc := e.splitAddend(low)
	hb, hc := e.splitAddend(high)
	if lb != "" && hb != "" {
		if lb == hb && lc <= hc {
			return true
		}
		if e.relLEQ(lb, hb, hc-lc) {
			return true
		}
	}
	// Identical expressions are trivially equal.
	return lowKey == exprKey(high)
}

// splitAddend decomposes x into base expression plus constant offset
// ("i+1" -> ("i", 1), "j" -> ("j", 0)); constants return base "".
func (e *facts) splitAddend(x ast.Expr) (string, int64) {
	x = ast.Unparen(x)
	if _, ok := e.constVal(x); ok {
		return "", 0
	}
	if b, ok := x.(*ast.BinaryExpr); ok {
		if b.Op == token.ADD {
			if c, ok := e.constVal(b.Y); ok {
				base, off := e.splitAddend(b.X)
				return base, off + c
			}
			if c, ok := e.constVal(b.X); ok {
				base, off := e.splitAddend(b.Y)
				return base, off + c
			}
		}
		if b.Op == token.SUB {
			if c, ok := e.constVal(b.Y); ok {
				base, off := e.splitAddend(b.X)
				return base, off - c
			}
		}
	}
	return exprKey(x), 0
}

// argLenAtLeast proves len(arg) >= need — used for the
// encoding/binary fixed-width decoders, which panic on short slices.
func (e *facts) argLenAtLeast(arg ast.Expr, need int64) bool {
	arg = ast.Unparen(arg)
	if n, ok := e.minLen(arg); ok && n >= need {
		return true
	}
	if se, ok := arg.(*ast.SliceExpr); ok && !se.Slice3 {
		if n, ok := e.sliceResultMinLen(se); ok && n >= need {
			return true
		}
		// x[a:] has len len(x)-a >= need iff a <= len(x)-need.
		if se.High == nil {
			if se.Low == nil {
				if n, ok := e.minLen(se.X); ok && n >= need {
					return true
				}
				return false
			}
			return e.boundLEQLen(se.Low, se.X, -need)
		}
	}
	return false
}
