// Package impure2 seeds the guard-purity edge cases: impurity hidden
// behind a method value, behind a defer, and behind a same-package
// helper call. Analyzed only by the analyzer's own tests.
package impure2

import "vids/internal/core"

// flagger carries guard state so its methods are natural guards.
type flagger struct{ armed bool }

// guard is impure: it writes a machine variable. The rule must resolve
// the method value f.guard back to this body.
func (f *flagger) guard(c *core.Ctx) bool {
	c.Vars.SetInt("armed", 1)
	return f.armed
}

// pureGuard only reads; not flagged.
func (f *flagger) pureGuard(c *core.Ctx) bool { return f.armed }

// MethodValueGuard binds a method value as the predicate. Flagged.
func MethodValueGuard() *core.Spec {
	s := core.NewSpec("impure2-method", "S0")
	f := &flagger{}
	s.On("S0", "go", f.guard, nil, "S1")
	s.Final("S1")
	return s
}

// DeferredEmitGuard hides the δ-emission behind a defer: it still runs
// on every guard evaluation, just later. Flagged.
func DeferredEmitGuard() *core.Spec {
	s := core.NewSpec("impure2-defer", "S0")
	s.On("S0", "go", func(c *core.Ctx) bool {
		defer c.Emit("peer", core.Event{Name: "delta.leak"})
		return true
	}, nil, "S1")
	s.Final("S1")
	return s
}

// markSeen is the impure helper a guard closure delegates to.
func markSeen(c *core.Ctx) {
	c.Vars.SetInt("seen", 1)
}

// HelperCallGuard calls the impure helper from a guard literal; the
// rule must follow the same-package call. Flagged.
func HelperCallGuard() *core.Spec {
	s := core.NewSpec("impure2-helper", "S0")
	s.On("S0", "go", func(c *core.Ctx) bool {
		markSeen(c)
		return c.Event.IntArg("x") > 0
	}, nil, "S1")
	s.Final("S1")
	return s
}

// isPositive is a pure helper; calling it from a guard is the
// sanctioned shape.
func isPositive(c *core.Ctx) bool { return c.Event.IntArg("x") > 0 }

// CleanGuards exercises the same resolution paths without impurity:
// a pure method value and a guard closure calling a pure helper.
// Not flagged.
func CleanGuards() *core.Spec {
	s := core.NewSpec("impure2-clean", "S0")
	f := &flagger{}
	s.On("S0", "a", f.pureGuard, nil, "S1")
	s.On("S0", "b", func(c *core.Ctx) bool { return isPositive(c) }, nil, "S1")
	s.Final("S1")
	return s
}
