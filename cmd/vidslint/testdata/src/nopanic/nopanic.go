// Package nopanic deliberately violates vidslint's panic-freedom
// gate; it is analyzed only by the analyzer's own tests (testdata is
// invisible to the go tool). Every seeded site below corresponds to
// one rule of the panic model, and the directive misuses at the
// bottom exercise the freshness sweep.
package nopanic

import "encoding/hex"

// Box mirrors a parsed-message record.
type Box struct{ N int }

// hook is a function value the traversal cannot resolve.
var hook = func(b []byte) {}

// Feeder is an interface the gate cannot see through.
type Feeder interface{ Feed(b []byte) }

// Entry is the seeded untrusted-input root: each commented line below
// is one distinct violation class.
//
//vids:nopanic fixture root; every site below is a seeded violation
func Entry(data []byte, v any, f Feeder) int {
	x := data[4]     // want: index not dominated
	tail := data[2:] // want: slice expression not dominated
	n := v.(int)     // want: single-result type assertion
	var m map[string]int
	m["k"] = n // want: write to nil map
	var p *Box
	total := p.N        // want: nil pointer dereference
	total += int(x) / n // want: division by unproven divisor
	total %= n          // want: modulo by unproven divisor
	if n > 1000 {
		panic("flood") // want: explicit panic call
	}
	idx := uint64(total)
	small := data[uint8(idx)] // want: truncating conversion used as index
	hook(tail)                // want: dynamic call through function value
	f.Feed(tail)              // want: unresolvable interface method call
	_ = hex.EncodeToString(tail)
	//vids:panic-ok fixture: seeded suppression — this waiver absorbs the site below
	waived := data[9]
	total += helper(tail) + int(small) + int(waived) + int(Quiet(tail))
	return total
}

// helper panics one level below the root, so its finding must carry
// the call-graph path nopanic.Entry → nopanic.helper.
func helper(b []byte) int {
	return int(b[8]) // want: index not dominated, with path diagnostic
}

// Quiet is reached from the root and fully guarded, so its
// function-level waiver has nothing left to justify.
//
//vids:panic-ok fixture: stale because Quiet suppresses nothing
func Quiet(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

// Unreached carries a function-level waiver but no nopanic root
// reaches it, so the waiver is stale by construction.
//
//vids:panic-ok fixture: stale because Unreached is unreached
func Unreached(b []byte) byte {
	return b[0]
}

// waivers seeds the line-level hygiene findings: a waiver with no
// justification, and a justified waiver with nothing to justify.
func waivers(b []byte) int {
	x := 0
	//vids:panic-ok
	x++
	//vids:panic-ok fixture: nothing on this line can panic
	x++
	return x + len(b)
}
