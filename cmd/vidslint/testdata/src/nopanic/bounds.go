// bounds.go is the dominance table for the flow-sensitive facts pass:
// the ok* functions are guarded in shapes the engine must prove (no
// findings), the bad* functions look guarded but are not (exactly one
// finding each). Together they pin the positive and negative halves of
// the bounds model.
package nopanic

import (
	"encoding/binary"
	"strings"
)

// Bounds is the fixture root that puts the whole table on the
// untrusted path.
//
//vids:nopanic fixture root for the bounds-dominance table
func Bounds(data []byte, s string, k int) int {
	total := okGuardIndex(data)
	total += okAndGuard(data)
	total += okOrBail(data)
	total += okIndexByte(s)
	total += okRangeLoop(data)
	total += okCountedLoop(data)
	total += okReslice(data)
	total += okMakeCopy(data)
	total += okExactLen(data)
	total += okWindow(data)
	total += okBinary(data)
	total += badMutateAfterGuard(data)
	total += badJoinWiden(data, k)
	total += badWrongPolarity(data)
	total += badBinary(data)
	return total
}

// okGuardIndex: the classic early-return length guard dominates the
// index.
func okGuardIndex(b []byte) int {
	if len(b) < 4 {
		return 0
	}
	return int(b[3])
}

// okAndGuard: && short-circuit carries the bound to the right operand.
func okAndGuard(b []byte) int {
	if len(b) > 2 && b[2] == 7 {
		return 1
	}
	return 0
}

// okOrBail: || in a bail condition proves the negated branch.
func okOrBail(b []byte) int {
	if len(b) == 0 || b[0] != 0x80 {
		return 0
	}
	return int(b[0])
}

// okIndexByte: an IndexByte result checked non-negative bounds both
// halves of the split.
func okIndexByte(s string) int {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0
	}
	return len(s[:i]) + len(s[i+1:])
}

// okRangeLoop: a range index is in bounds by construction.
func okRangeLoop(b []byte) int {
	t := 0
	for i := range b {
		t += int(b[i])
	}
	return t
}

// okCountedLoop: the i++ idiom keeps the lower bound, the condition
// supplies the upper one.
func okCountedLoop(b []byte) int {
	t := 0
	for i := 0; i < len(b); i++ {
		t += int(b[i])
	}
	return t
}

// okReslice: a re-slice under a guard keeps the residual length.
func okReslice(b []byte) int {
	if len(b) < 8 {
		return 0
	}
	rest := b[4:]
	return int(rest[3])
}

// okMakeCopy: make fixes the length; copy into it invalidates nothing.
func okMakeCopy(b []byte) int {
	buf := make([]byte, 4)
	n := copy(buf, b)
	if n == 0 {
		return 0
	}
	return int(buf[3])
}

// okExactLen: an exact-length equality proves any smaller index.
func okExactLen(b []byte) int {
	if len(b) != 4 {
		return 0
	}
	return int(b[0]) + int(b[3])
}

// okWindow: the advancing-window idiom — each iteration re-proves the
// bound on the slice it is about to consume.
func okWindow(b []byte) int {
	t := 0
	w := b
	for len(w) >= 4 {
		t += int(w[3])
		w = w[4:]
	}
	return t
}

// okBinary: binary.BigEndian readers are proven by the residual
// length of a guarded re-slice.
func okBinary(b []byte) int {
	if len(b) < 8 {
		return 0
	}
	return int(binary.BigEndian.Uint32(b[4:]))
}

// badMutateAfterGuard: the guard is established, then the slice is
// rebound — the old bound must not survive the mutation.
func badMutateAfterGuard(b []byte) int {
	if len(b) < 4 {
		return 0
	}
	b = b[2:]
	return int(b[3]) // want: index not dominated (guard predates the rebind)
}

// badJoinWiden: one branch leaves i bounded, the other does not; the
// join must widen to unknown.
func badJoinWiden(b []byte, k int) int {
	i := 0
	if k > 0 {
		i = k
	}
	if len(b) == 0 {
		return 0
	}
	return int(b[i]) // want: index not dominated (join widened i)
}

// badWrongPolarity: the guard bails on the long case, so the fallthrough
// proves only an upper bound on the length.
func badWrongPolarity(b []byte) int {
	if len(b) > 4 {
		return 0
	}
	return int(b[2]) // want: index not dominated (wrong polarity)
}

// badBinary: an 8-byte reader behind a 4-byte guard.
func badBinary(b []byte) int {
	if len(b) < 4 {
		return 0
	}
	return int(binary.BigEndian.Uint64(b)) // want: binary reader not proven long enough
}
