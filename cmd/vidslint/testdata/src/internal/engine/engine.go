// Package engine deliberately violates vidslint's wall-clock rule;
// it is analyzed only by the analyzer's own tests (testdata is
// invisible to the go tool). Its import path ends in
// "internal/engine", which is what puts it inside the rule's gate.
package engine

import "time"

// Deadline reads the wall clock twice without annotation. Both calls
// must be flagged.
func Deadline() time.Time {
	start := time.Now()                      // finding: wall clock
	return start.Add(time.Since(time.Now())) // finding: wall clock (nested call)
}

// Backoff sleeps on the wall clock. Flagged.
func Backoff() {
	time.Sleep(10 * time.Millisecond) // finding: wall clock
}

// Instrumented is a deliberate wall-clock site — self-timing around a
// batch, annotated end-of-line. Not flagged.
func Instrumented() time.Duration {
	start := time.Now() //vidslint:allow wallclock
	work()
	//vidslint:allow wallclock
	return time.Since(time.Now().Add(-time.Since(start)))
}

// VirtualOK uses a passed-in instant instead of the wall clock. Not
// flagged: time arithmetic is fine, only Now and Sleep read the
// clock.
func VirtualOK(now time.Time) time.Time {
	return now.Add(250 * time.Millisecond)
}

func work() {}
