// Package ids mimics the real internal/ids just enough to trip the
// spec-registry rule: its import path ends in "internal/ids", so
// vidslint applies the builder contract.
package ids

import "vids/internal/core"

// brokenSpec constructs a machine with neither Final nor Attack
// states and is never reachable from Specs: two findings.
func brokenSpec() *core.Spec {
	s := core.NewSpec("broken", "A")
	s.On("A", "e", nil, nil, "A")
	return s
}

// helperSpec is reachable from Specs only through goodSpec; it must
// not be flagged.
func helperSpec(name string) *core.Spec {
	s := core.NewSpec(name, "A")
	s.On("A", "e", nil, nil, "A")
	s.Attack("A")
	return s
}

func goodSpec() *core.Spec {
	return helperSpec("good")
}

// Specs is the registry the real package exposes.
func Specs() []*core.Spec {
	return []*core.Spec{goodSpec()}
}

var _ = brokenSpec // silence the unused-function vet in spirit
