// Package timerwheel (fixture) deliberately violates vidslint's
// concurrency-discipline gate; its import path ends in
// internal/timerwheel so analyzeDir applies the lock rules. Each
// seeded function below is one violation class; ok demonstrates the
// disciplined shapes and must stay clean.
package timerwheel

import "sync"

// shard mirrors the engine's ring-buffer hand-off: mu is a *queue
// lock* because the struct also carries condition variables.
type shard struct {
	mu    sync.Mutex
	ready sync.Cond
	space sync.Cond
	buf   []int
	cb    func(int)
}

// router holds the second lock of the seeded ordering cycle.
type router struct {
	mu sync.Mutex
}

// lockCycleA acquires shard.mu before router.mu.
func lockCycleA(s *shard, r *router) {
	s.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	s.mu.Unlock()
}

// lockCycleB acquires the same pair in the opposite order — the seeded
// deadlock-in-waiting.
func lockCycleB(s *shard, r *router) {
	r.mu.Lock()
	s.mu.Lock() // want: lock-order cycle
	s.mu.Unlock()
	r.mu.Unlock()
}

// ifWait guards Wait with an if — the seeded spurious-wakeup race.
func ifWait(s *shard) {
	s.mu.Lock()
	if len(s.buf) == 0 {
		s.ready.Wait() // want: Wait outside a for loop
	}
	s.mu.Unlock()
}

// blockingSend sends on a channel while holding the queue lock.
func blockingSend(s *shard, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want: send under queue lock
	s.mu.Unlock()
}

// callbackUnderLock invokes a function field inside the critical
// section; the callee can block or re-enter the shard.
func callbackUnderLock(s *shard) {
	s.mu.Lock()
	s.cb(1) // want: callback under queue lock
	s.mu.Unlock()
}

// spawnUnderLock launches a goroutine inside the critical section.
func spawnUnderLock(s *shard) {
	s.mu.Lock()
	go drain(s) // want: goroutine under lock
	s.mu.Unlock()
}

func drain(s *shard) { _ = s }

//vids:lockorder shard.mu before router.mu — malformed: the directive takes an arrow, not prose

// ok demonstrates the disciplined shapes: Wait inside a for loop, the
// channel send after the critical section, the callback invoked with
// the lock released.
func ok(s *shard, ch chan int) {
	s.mu.Lock()
	for len(s.buf) == 0 {
		s.ready.Wait()
	}
	v := s.buf[len(s.buf)-1]
	s.buf = s.buf[:len(s.buf)-1]
	cb := s.cb
	s.mu.Unlock()
	if cb != nil {
		cb(v)
	}
	ch <- v
	s.space.Signal()
}
