// Package impure deliberately violates vidslint's guard-purity rule;
// it is analyzed only by the analyzer's own tests (testdata is
// invisible to the go tool).
package impure

import "vids/internal/core"

// EmittingGuard hides a δ-emission inside a guard literal. Flagged:
// Step evaluates every guard on an event, so the emission fires even
// when this transition is not taken.
func EmittingGuard() *core.Spec {
	s := core.NewSpec("impure-emit", "S0")
	s.On("S0", "go", func(c *core.Ctx) bool {
		c.Emit("peer", core.Event{Name: "delta.leak"})
		return true
	}, nil, "S1")
	s.Final("S1")
	return s
}

// mutatingGuard is bound to a local identifier before use; the rule
// must resolve the identifier back to the literal. Flagged: writes a
// machine variable from a predicate.
func MutatingGuard() *core.Spec {
	s := core.NewSpec("impure-set", "S0")
	guard := func(c *core.Ctx) bool {
		c.Vars.SetInt("seen", 1)
		return c.Event.IntArg("x") > 0
	}
	s.On("S0", "go", guard, nil, "S1")
	s.Final("S1")
	return s
}

// indexingGuard assigns into the Globals map through a package-level
// function used as a guard. Flagged.
func indexingGuard(c *core.Ctx) bool {
	c.Globals["g.dirty"] = core.IntVal(1)
	return true
}

func IndexingGuard() *core.Spec {
	s := core.NewSpec("impure-index", "S0")
	s.OnLabeled("dirty", "S0", "go", indexingGuard, nil, "S1")
	s.Final("S1")
	return s
}

// PureGuard reads the event and variables without writing anything.
// Not flagged: reads are what predicates are for, and the Action is
// the sanctioned place for the write.
func PureGuard() *core.Spec {
	s := core.NewSpec("pure", "S0")
	s.On("S0", "go", func(c *core.Ctx) bool {
		return c.Event.IntArg("x") > 0 && c.Vars.GetInt("seen") == 0
	}, func(c *core.Ctx) {
		c.Vars.SetInt("seen", 1)
		c.Emit("peer", core.Event{Name: "delta.ok"})
	}, "S1")
	s.Final("S1")
	return s
}
