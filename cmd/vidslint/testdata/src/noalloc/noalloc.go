// Package noalloc deliberately violates vidslint's whole-program
// escape/allocation gate; it is analyzed only by the analyzer's own
// tests (testdata is invisible to the go tool). Every seeded site
// below corresponds to one rule of the escape model, and the directive
// misuses at the bottom exercise the freshness sweep.
package noalloc

// Box is a record the seeded sites force onto the heap.
type Box struct{ N int }

// Sink keeps boxed values reachable, mirroring how alert callbacks
// retain interface values in the real codebase.
var Sink any

// hook is a function value the traversal cannot resolve.
var hook = func() {}

// Hot is the seeded hot-path root: each line below is one distinct
// violation class.
//
//vids:noalloc fixture root; every site below is a seeded violation
func Hot(b []byte) string {
	m := make(map[string]int) // want: make allocates
	m["k"] = len(b)           // want: map assignment may grow
	s := string(b)            // want: conversion copies
	go idle()                 // want: go statement allocates
	hook()                    // want: dynamic call through a function value
	Sink = len(s)             // want: interface boxing
	escape()
	return s
}

// escape allocates one level below the root, so its finding must carry
// the call-graph path noalloc.Hot → noalloc.escape.
func escape() *Box {
	return &Box{N: 1} // want: composite literal escapes
}

func idle() {}

// Frozen is reached from no root, so its function-level waiver is
// stale by construction.
//
//vids:alloc-ok fixture: stale because Frozen is unreached
func Frozen() []int {
	return make([]int, 4)
}

// Detached is never reached either; its coldpath marker never cuts a
// traversal and must be reported stale.
//
//vids:coldpath fixture: stale because no closure reaches Detached
func Detached() {}

// Confused carries contradictory directives: a function cannot be a
// hot-path root and off the hot path at once.
//
//vids:noalloc fixture conflict root
//vids:coldpath fixture conflict marker
func Confused() {}

// waivers seeds the two line-level hygiene findings: a waiver with no
// justification, and a justified waiver with nothing left to justify.
func waivers() int {
	x := 0
	//vids:alloc-ok
	x++
	//vids:alloc-ok fixture: nothing on this line allocates
	x++
	return x
}
