// Package badpkg deliberately violates vidslint's dropped-error and
// Args-indexing rules; it is analyzed only by the analyzer's own
// tests (testdata is invisible to the go tool).
package badpkg

import (
	"vids/internal/core"
	"vids/internal/rtp"
	"vids/internal/sim"
)

// DropEverything discards the results of every call the linter cares
// about. Each of the four calls below must be flagged.
func DropEverything(m *core.Machine, sys *core.System) {
	m.Step(core.Event{Name: "e"})                 // finding: dropped Step
	sys.Deliver("m", core.Event{Name: "e"})       // finding: dropped Deliver
	go sys.DeliverSync("m", core.Event{Name: ""}) // finding: dropped DeliverSync
	defer m.Step(core.Event{Name: "e"})           // finding: dropped Step
}

// ExplicitDiscard is the accepted idiom: the blank assignments are a
// visible, reviewable decision. Not flagged.
func ExplicitDiscard(m *core.Machine) {
	_, _ = m.Step(core.Event{Name: "e"})
}

// RawArgs indexes the event argument map directly instead of going
// through the typed accessors. Both the read and the write must be
// flagged.
func RawArgs(e core.Event) any {
	e.Args["k"] = 1    // finding: direct Args index
	return e.Args["x"] // finding: direct Args index
}

// TypedAccess is the accepted idiom. Not flagged.
func TypedAccess(e core.Event) string {
	return e.StringArg("x")
}

// PayloadAssertString materializes the whole packet body as a string
// via a type assertion — the per-packet copy the hot path forbids.
// Must be flagged.
func PayloadAssertString(pkt *sim.Packet) string {
	return string(pkt.Payload.([]byte)) // finding: payload string conversion
}

// PayloadFieldString converts a typed []byte Payload field. Must be
// flagged.
func PayloadFieldString(p *rtp.Packet) string {
	return string(p.Payload) // finding: payload string conversion
}

// ByteSliceString converts a byte slice that is not a packet payload.
// Not flagged.
func ByteSliceString(b []byte) string {
	return string(b)
}

// PayloadLength reads the payload without copying it. Not flagged.
func PayloadLength(p *rtp.Packet) int {
	return len(p.Payload)
}
