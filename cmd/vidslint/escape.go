package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The escape gate's model of the Go allocator, tuned for this
// repository's hot-path idioms (PRs 3–4):
//
//   - make/new, &T{...}, map and slice literals, string concatenation,
//     go statements, function literals and bound-method values are
//     allocation sites.
//   - append is accepted only in the self-append form
//     `x = append(x, ...)` / `x = append(x[:0], ...)`: growth is
//     amortized against reused capacity, which the AllocsPerRun
//     ceilings in alloc_test.go bound at runtime. Any other append
//     destination is a finding.
//   - string([]byte) / []byte(string) conversions are findings except
//     in the two forms the compiler compiles allocation-free: a map
//     index key `m[string(b)]` and a comparison operand
//     `string(b) == s`.
//   - converting, passing or returning a non-pointer-shaped value as
//     an interface boxes it; pointers, maps, channels and funcs fit in
//     the interface word and do not.
//   - calls the analysis cannot resolve statically — function values,
//     interface methods — are findings: an unprovable callee is an
//     unproven hot path.
//   - calls out of the module are findings unless the package or
//     function is on the allocation-free allowlist below.
//
// Map iteration and value-struct composite literals are deliberately
// not flagged: neither allocates (a non-escaping struct literal lives
// in its frame; flagging every one would drown the signal).

// noallocPackages are non-module packages whose exported API is
// allocation-free for the operations the hot path uses (atomics,
// arithmetic, fixed-width codecs, intrusive-heap maintenance).
var noallocPackages = map[string]bool{
	"sync":            true,
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"time":            true, // Duration arithmetic; wall-clock reads are checkWallClock's concern
	"encoding/binary": true,
	"container/heap":  true, // pointer-shaped elements only; sim's event heap qualifies
	"unicode/utf8":    true,
}

// noallocFuncs allowlists individual non-module functions from
// packages that also export allocating APIs.
var noallocFuncs = map[string]bool{
	"strconv.AppendInt":   true,
	"strconv.AppendUint":  true,
	"bytes.Index":         true,
	"bytes.IndexByte":     true,
	"bytes.LastIndexByte": true,
	"bytes.Equal":         true,
	"bytes.Compare":       true,
	"bytes.HasPrefix":     true,
	"bytes.HasSuffix":     true,
	"bytes.Contains":      true,
	"bytes.TrimSpace":     true, // returns a subslice
	"strings.Index":       true,
	"strings.IndexByte":   true,
	"strings.LastIndex":   true,
	"strings.EqualFold":   true,
	"strings.Compare":     true,
	"strings.HasPrefix":   true,
	"strings.HasSuffix":   true,
	"strings.Contains":    true,
	"strings.Count":       true,
	"strings.TrimSpace":   true, // returns a substring
	"strings.TrimPrefix":  true,
	"strings.TrimSuffix":  true,
	"strings.CutPrefix":   true,
	"strings.CutSuffix":   true,
	"strings.Cut":         true,
	"strings.IndexAny":    true,
	"strings.Trim":        true, // returns a substring
	"strconv.Atoi":        true, // allocates only in its *NumError return
	"errors.Is":           true,
	"sort.Search":         true,
}

// escapePass walks the static call closure of every //vids:noalloc
// root and reports potential heap-allocation sites with the call path
// from the root, so a reviewer sees *why* a function is hot before
// judging the justification.
type escapePass struct {
	a        *analyzer
	prog     *program
	findings []finding
}

// checkEscape runs the allocation/escape gate: BFS over the static
// call graph from the annotated roots, scanning each function body
// once, then the directive-freshness sweep.
func (a *analyzer) checkEscape(prog *program) []finding {
	ep := &escapePass{a: a, prog: prog}
	var roots []string
	for k, n := range prog.funcs {
		if n.noalloc && a.analyzed[n.pkg.path] {
			roots = append(roots, k)
		}
	}
	sort.Strings(roots)
	queue := make([]string, 0, len(roots))
	for _, r := range roots {
		prog.rootOf[r] = r
		queue = append(queue, r)
	}
	seen := make(map[string]bool)
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		if seen[key] {
			continue
		}
		seen[key] = true
		node := prog.funcs[key]
		if node == nil {
			continue
		}
		node.reached = true
		callees := ep.scanFunc(node)
		sort.Strings(callees)
		for _, c := range callees {
			if seen[c] {
				continue
			}
			if _, known := prog.parent[c]; !known {
				prog.parent[c] = key
				prog.rootOf[c] = prog.rootOf[key]
			}
			queue = append(queue, c)
		}
	}
	ep.findings = append(ep.findings, prog.waivers.staleness(a, prog)...)
	return ep.findings
}

// site records one potential allocation finding, honoring line-level
// waivers first and the enclosing function-level alloc-ok second.
func (ep *escapePass) site(node *funcNode, pos token.Pos, what string) {
	p := ep.a.fset.Position(pos)
	if w := ep.prog.waivers.lookup(p); w != nil {
		return
	}
	if node.hasAllocOK {
		node.suppressed++
		return
	}
	ep.findings = append(ep.findings, finding{
		pos:  p,
		msg:  fmt.Sprintf("noalloc: %s [hot path: %s]; justify with //vids:alloc-ok <reason> or restructure", what, ep.prog.pathTo(node.key)),
		kind: "noalloc",
	})
}

// scanFunc scans one function body for allocation sites and returns
// the keys of module functions it statically calls.
func (ep *escapePass) scanFunc(node *funcNode) []string {
	info := node.pkg.info
	var callees []string
	selfAppend := make(map[ast.Expr]bool)
	var stack []ast.Node
	var sigs []*types.Signature
	if fn, ok := info.Defs[node.decl.Name].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok {
			sigs = append(sigs, sig)
		}
	}

	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		if n == nil {
			if _, wasLit := stack[len(stack)-1].(*ast.FuncLit); wasLit && len(sigs) > 0 {
				sigs = sigs[:len(sigs)-1]
			}
			stack = stack[:len(stack)-1]
			return true
		}
		parent := parentSkippingParens(stack)
		switch x := n.(type) {
		case *ast.FuncLit:
			ep.site(node, x.Pos(), "function literal allocates a closure")
			sig, _ := info.TypeOf(x).(*types.Signature)
			sigs = append(sigs, sig)

		case *ast.GoStmt:
			ep.site(node, x.Pos(), "go statement allocates a goroutine")

		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := ast.Unparen(x.X).(*ast.CompositeLit); isLit {
					ep.site(node, x.Pos(), "composite literal escapes to the heap (&T{...})")
				}
			}

		case *ast.CompositeLit:
			if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
				break // already flagged at the & above
			}
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Map:
				ep.site(node, x.Pos(), "map literal allocates")
			case *types.Slice:
				ep.site(node, x.Pos(), "slice literal allocates its backing array")
			}

		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) {
				if tv, ok := info.Types[x]; !ok || tv.Value == nil { // constants fold at compile time
					ep.site(node, x.Pos(), "string concatenation allocates")
				}
			}

		case *ast.SelectorExpr:
			if sel := info.Selections[x]; sel != nil && sel.Kind() == types.MethodVal && !isCallFun(stack, x) {
				ep.site(node, x.Pos(), "method value allocates a bound-method closure")
			}

		case *ast.AssignStmt:
			ep.scanAssign(node, x, info, selfAppend)

		case *ast.ReturnStmt:
			if len(sigs) > 0 {
				ep.scanReturn(node, x, sigs[len(sigs)-1], info)
			}

		case *ast.CallExpr:
			ep.classifyCall(node, x, parent, info, &callees, selfAppend)
		}
		stack = append(stack, n)
		return true
	})
	return callees
}

// scanAssign handles the assignment-borne rules: self-append
// recognition, map-growth on index assignment, and interface boxing.
func (ep *escapePass) scanAssign(node *funcNode, as *ast.AssignStmt, info *types.Info, selfAppend map[ast.Expr]bool) {
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin &&
					types.ExprString(as.Lhs[i]) == types.ExprString(appendBase(call.Args[0])) {
					selfAppend[call] = true
				}
			}
		}
	}
	for _, lhs := range as.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if _, isMap := info.TypeOf(idx.X).Underlying().(*types.Map); isMap {
				ep.site(node, idx.Pos(), "map assignment may grow the bucket array")
			}
		}
	}
	if len(as.Lhs) == len(as.Rhs) && as.Tok == token.ASSIGN {
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			lt := info.TypeOf(lhs)
			if lt == nil || !types.IsInterface(lt) {
				continue
			}
			if boxes(info, as.Rhs[i]) {
				ep.site(node, as.Rhs[i].Pos(), fmt.Sprintf("assigning %s into an interface boxes it", info.TypeOf(as.Rhs[i])))
			}
		}
	}
}

// scanReturn flags returns that box a concrete value into an
// interface-typed result.
func (ep *escapePass) scanReturn(node *funcNode, ret *ast.ReturnStmt, sig *types.Signature, info *types.Info) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return // naked return or multi-value passthrough: nothing new escapes here
	}
	for i, res := range ret.Results {
		rt := sig.Results().At(i).Type()
		if !types.IsInterface(rt) {
			continue
		}
		if boxes(info, res) {
			ep.site(node, res.Pos(), fmt.Sprintf("returning %s as %s boxes it", info.TypeOf(res), rt))
		}
	}
}

// classifyCall dispatches one call expression: conversions, builtins,
// static module/stdlib calls, and the dynamic calls the analysis
// cannot follow.
func (ep *escapePass) classifyCall(node *funcNode, call *ast.CallExpr, parent ast.Node, info *types.Info, callees *[]string, selfAppend map[ast.Expr]bool) {
	funExpr := ast.Unparen(call.Fun)

	if tv, ok := info.Types[funExpr]; ok && tv.IsType() {
		ep.checkConversion(node, call, tv.Type, parent, info)
		return
	}
	if _, ok := funExpr.(*ast.FuncLit); ok {
		return // the literal itself was flagged; its body is scanned inline
	}

	switch fx := funExpr.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fx].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "make":
				ep.site(node, call.Pos(), "make allocates")
			case "new":
				ep.site(node, call.Pos(), "new allocates")
			case "append":
				if !selfAppend[call] {
					ep.site(node, call.Pos(), "append whose result is not reassigned to its own operand allocates or copies")
				}
			}
			return
		case *types.Func:
			ep.staticCall(node, call, obj, info, callees)
			return
		case *types.Var:
			ep.site(node, call.Pos(), fmt.Sprintf("dynamic call through function value %s cannot be proven allocation-free", fx.Name))
			return
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fx]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal:
				if types.IsInterface(sel.Recv()) {
					ep.site(node, call.Pos(), fmt.Sprintf("interface method call %s cannot be statically resolved", fx.Sel.Name))
					return
				}
				if fn, ok := sel.Obj().(*types.Func); ok {
					ep.staticCall(node, call, fn, info, callees)
					return
				}
			case types.FieldVal:
				ep.site(node, call.Pos(), fmt.Sprintf("dynamic call through function field %s cannot be proven allocation-free", fx.Sel.Name))
				return
			case types.MethodExpr:
				// T.Method used as a call target: resolves statically.
				if fn, ok := sel.Obj().(*types.Func); ok {
					ep.staticCall(node, call, fn, info, callees)
					return
				}
			}
		}
		if fn, ok := info.Uses[fx.Sel].(*types.Func); ok {
			ep.staticCall(node, call, fn, info, callees)
			return
		}
		if _, ok := info.Uses[fx.Sel].(*types.Var); ok {
			ep.site(node, call.Pos(), fmt.Sprintf("dynamic call through function variable %s cannot be proven allocation-free", fx.Sel.Name))
			return
		}
	}
	ep.site(node, call.Pos(), "dynamic call through a computed function value cannot be proven allocation-free")
}

// staticCall handles a statically resolved callee: module functions
// join the traversal (unless //vids:coldpath cuts them), non-module
// callees must be allowlisted, and interface-typed parameters are
// checked for boxing.
func (ep *escapePass) staticCall(node *funcNode, call *ast.CallExpr, fn *types.Func, info *types.Info, callees *[]string) {
	pkg := fn.Pkg()
	if pkg == nil {
		return // error.Error and friends from the universe scope
	}
	path := pkg.Path()
	sig, _ := fn.Type().(*types.Signature)
	if path == ep.a.modulePath || strings.HasPrefix(path, ep.a.modulePath+"/") {
		key := funcKey(fn)
		callee := ep.prog.funcs[key]
		switch {
		case callee == nil:
			ep.site(node, call.Pos(), fmt.Sprintf("call to %s has no body in the module index (generated or assembly?)", fn.FullName()))
		case callee.hasColdpath:
			callee.cut = true
		default:
			*callees = append(*callees, key)
		}
		ep.checkArgBoxing(node, call, sig, info)
		return
	}
	if noallocPackages[path] || noallocFuncs[path+"."+fn.Name()] {
		ep.checkArgBoxing(node, call, sig, info)
		return
	}
	ep.site(node, call.Pos(), fmt.Sprintf("call into %s.%s is not on the allocation-free allowlist", path, fn.Name()))
}

// checkArgBoxing flags arguments boxed into interface-typed
// parameters, and variadic calls that materialize an argument slice.
func (ep *escapePass) checkArgBoxing(node *funcNode, call *ast.CallExpr, sig *types.Signature, info *types.Info) {
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through whole; no per-element boxing
			}
			if i == params.Len()-1 && params.Len() > 0 {
				ep.site(node, call.Args[i].Pos(), "variadic call allocates its argument slice")
			}
			if params.Len() > 0 {
				if sl, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
					pt = sl.Elem()
				}
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if boxes(info, arg) {
			ep.site(node, arg.Pos(), fmt.Sprintf("argument boxes %s into %s", info.TypeOf(arg), pt))
		}
	}
}

// checkConversion applies the conversion rules: interface boxing, and
// string↔bytes copies outside the compiler's allocation-free forms.
func (ep *escapePass) checkConversion(node *funcNode, call *ast.CallExpr, target types.Type, parent ast.Node, info *types.Info) {
	if len(call.Args) != 1 {
		return
	}
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if types.IsInterface(target) {
		if boxes(info, call.Args[0]) {
			ep.site(node, call.Pos(), fmt.Sprintf("conversion boxes %s into %s", src, target))
		}
		return
	}
	tu, su := target.Underlying(), src.Underlying()
	s2b := isStringType(tu) && isBytesType(su)
	b2s := isBytesType(tu) && isStringType(su)
	if !s2b && !b2s {
		return
	}
	switch p := parent.(type) {
	case *ast.IndexExpr:
		if _, isMap := info.TypeOf(p.X).Underlying().(*types.Map); isMap && ast.Unparen(p.Index) == call {
			return // m[string(b)]: the compiler probes without materializing the key
		}
	case *ast.BinaryExpr:
		switch p.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return // string(b) == s: compiled as a byte comparison
		}
	}
	ep.site(node, call.Pos(), fmt.Sprintf("conversion %s(%s) copies", target, src))
}

// boxes reports whether storing expr in an interface allocates: true
// for concrete non-pointer-shaped values, false for nil, existing
// interfaces and word-sized reference types.
func boxes(info *types.Info, expr ast.Expr) bool {
	if tv, ok := info.Types[expr]; ok && tv.IsNil() {
		return false
	}
	t := info.TypeOf(expr)
	if t == nil || types.IsInterface(t) {
		return false
	}
	return !pointerShaped(t)
}

// pointerShaped reports whether t occupies exactly one pointer word,
// making interface conversion a header write instead of an allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// appendBase strips slicing from an append destination so
// `x = append(x[:0], ...)` is recognized as self-append.
func appendBase(expr ast.Expr) ast.Expr {
	e := ast.Unparen(expr)
	for {
		sl, ok := e.(*ast.SliceExpr)
		if !ok {
			return e
		}
		e = ast.Unparen(sl.X)
	}
}

// parentSkippingParens returns the nearest non-paren ancestor on the
// walk stack.
func parentSkippingParens(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// isCallFun reports whether sel is (possibly through parentheses) the
// callee position of the nearest enclosing call expression.
func isCallFun(stack []ast.Node, sel ast.Expr) bool {
	if call, ok := parentSkippingParens(stack).(*ast.CallExpr); ok {
		return ast.Unparen(call.Fun) == sel
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBytesType(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	el, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (el.Kind() == types.Byte || el.Kind() == types.Rune || el.Kind() == types.Uint8 || el.Kind() == types.Int32)
}
