package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// lineWaiver is one line-level suppression (`//vids:alloc-ok <reason>`
// for the escape gate, `//vids:panic-ok <reason>` for the nopanic
// gate). It covers findings on its own line (end-of-line form) and the
// line after it (preceding-line form), mirroring the established
// `//vidslint:allow` convention. Like speccover's coverage waivers,
// every suppression is freshness-checked: a waiver that no longer
// matches any finding is itself reported, so justifications are
// deleted with the code they excused instead of rotting in place.
type lineWaiver struct {
	pkg    *pkgInfo
	pos    token.Position
	reason string
	used   bool
}

// waiverSet indexes the line waivers of one directive by filename and
// line.
type waiverSet struct {
	directive string // e.g. dirAllocOK, dirPanicOK
	byLine    map[string]map[int]*lineWaiver
	all       []*lineWaiver
}

func newWaiverSet(directive string) *waiverSet {
	return &waiverSet{directive: directive, byLine: make(map[string]map[int]*lineWaiver)}
}

// collectFile harvests the line-level waivers of one file for this
// set's directive. Doc-comment directives are function-level (handled
// by buildProgram), so comment groups attached as documentation are
// skipped here.
func (ws *waiverSet) collectFile(a *analyzer, pi *pkgInfo, f *ast.File) {
	docGroups := make(map[*ast.CommentGroup]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Doc != nil {
				docGroups[d.Doc] = true
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				docGroups[d.Doc] = true
			}
		}
		return true
	})
	for _, cg := range f.Comments {
		if docGroups[cg] {
			continue
		}
		for _, c := range cg.List {
			reason, ok := directiveText(c.Text, ws.directive)
			if !ok {
				continue
			}
			w := &lineWaiver{pkg: pi, pos: a.fset.Position(c.Pos()), reason: reason}
			ws.all = append(ws.all, w)
			m := ws.byLine[w.pos.Filename]
			if m == nil {
				m = make(map[int]*lineWaiver)
				ws.byLine[w.pos.Filename] = m
			}
			m[w.pos.Line] = w
		}
	}
}

// lookup returns the waiver covering a finding at pos: a directive on
// the same line or on the line above. The waiver is marked used.
func (ws *waiverSet) lookup(pos token.Position) *lineWaiver {
	m := ws.byLine[pos.Filename]
	if m == nil {
		return nil
	}
	if w := m[pos.Line]; w != nil {
		w.used = true
		return w
	}
	if w := m[pos.Line-1]; w != nil {
		w.used = true
		return w
	}
	return nil
}

// lineStaleness reports directive-hygiene findings for this set's line
// waivers in the analyzed packages: empty reasons and waivers that
// suppressed nothing. emptyMsg and staleMsg word the two cases for the
// owning gate.
func (ws *waiverSet) lineStaleness(a *analyzer, emptyMsg, staleMsg string) []finding {
	var out []finding
	for _, w := range ws.all {
		if !a.analyzed[w.pkg.path] {
			continue
		}
		switch {
		case w.reason == "":
			out = append(out, finding{pos: w.pos, msg: emptyMsg, kind: "directive"})
		case !w.used:
			out = append(out, finding{pos: w.pos, msg: staleMsg, kind: "directive"})
		}
	}
	return out
}

// staleness reports the escape gate's directive-hygiene findings:
// line-waiver freshness, function-level alloc-ok on functions off
// every hot path, and coldpath markers that never cut a traversal.
func (ws *waiverSet) staleness(a *analyzer, prog *program) []finding {
	out := ws.lineStaleness(a,
		"//vids:alloc-ok needs a non-empty justification (why is this allocation acceptable on the hot path?)",
		"stale //vids:alloc-ok: no hot-path allocation finding on this or the next line — delete the waiver or move it to the site it justifies")
	for _, node := range sortedFuncs(prog) {
		if !a.analyzed[node.pkg.path] {
			continue
		}
		pos := a.fset.Position(node.decl.Pos())
		if node.hasAllocOK {
			switch {
			case node.allocOK == "":
				out = append(out, finding{pos: pos, msg: fmt.Sprintf("//vids:alloc-ok on %s needs a non-empty justification", node.name()), kind: "directive"})
			case !node.reached:
				out = append(out, finding{pos: pos, msg: fmt.Sprintf("stale //vids:alloc-ok on %s: the function is not reached from any //vids:noalloc root", node.name()), kind: "directive"})
			case node.suppressed == 0:
				out = append(out, finding{pos: pos, msg: fmt.Sprintf("stale //vids:alloc-ok on %s: the function body has no allocation site left to justify", node.name()), kind: "directive"})
			}
		}
		if node.hasColdpath {
			switch {
			case node.coldpath == "":
				out = append(out, finding{pos: pos, msg: fmt.Sprintf("//vids:coldpath on %s needs a non-empty justification", node.name()), kind: "directive"})
			case !node.cut:
				out = append(out, finding{pos: pos, msg: fmt.Sprintf("stale //vids:coldpath on %s: no //vids:noalloc closure ever reaches this function — delete the directive", node.name()), kind: "directive"})
			}
			if node.noalloc {
				out = append(out, finding{pos: pos, msg: fmt.Sprintf("%s is both //vids:noalloc and //vids:coldpath — a function cannot be a hot-path root and off the hot path at once", node.name()), kind: "directive"})
			}
		}
	}
	return out
}

// sortedFuncs returns the program's function nodes in deterministic
// key order.
func sortedFuncs(prog *program) []*funcNode {
	keys := make([]string, 0, len(prog.funcs))
	for k := range prog.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*funcNode, len(keys))
	for i, k := range keys {
		out[i] = prog.funcs[k]
	}
	return out
}
