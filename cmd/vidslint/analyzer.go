package main

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// finding is one diagnostic anchored to a source position. kind
// classifies it for the machine-readable output ("noalloc",
// "nopanic", "directive"); the per-package style and concurrency
// rules leave it empty and render as "lint".
type finding struct {
	pos  token.Position
	msg  string
	kind string
}

func (f finding) String() string {
	return fmt.Sprintf("%s: %s", f.pos, f.msg)
}

// pkgInfo retains one typechecked module package — syntax, type
// information and the package object — so the whole-program passes
// (the escape gate and the alloc-ceiling drift check) can traverse
// call graphs across package boundaries after the per-package rules
// ran.
type pkgInfo struct {
	path  string
	files []*ast.File
	info  *types.Info
	pkg   *types.Package
}

// analyzer loads, typechecks and lints packages of one module using
// only the standard library: go/parser for syntax, go/types for
// semantics, and a module-aware importer that resolves in-module
// import paths against the repo tree and everything else through the
// compiler source importer. Test files are skipped (they exercise the
// APIs loosely on purpose); `go vet` still covers them in CI.
type analyzer struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	corePath   string // <module>/internal/core
	std        types.ImporterFrom
	cache      map[string]*types.Package

	// pkgs retains every module package loaded in this run (explicitly
	// analyzed or pulled in as an import), keyed by import path.
	// analyzed marks the subset that analyzeDir was pointed at: the
	// whole-program passes report directive staleness only there, so
	// linting one fixture directory never blames annotations in
	// packages it merely imports.
	pkgs     map[string]*pkgInfo
	analyzed map[string]bool

	// prog is the whole-program index of the latest programFindings
	// run, kept for the -json waiver inventory.
	prog *program
}

func newAnalyzer(moduleRoot, modulePath string) *analyzer {
	fset := token.NewFileSet()
	return &analyzer{
		fset:       fset,
		moduleRoot: moduleRoot,
		modulePath: modulePath,
		corePath:   modulePath + "/internal/core",
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:      make(map[string]*types.Package),
		pkgs:       make(map[string]*pkgInfo),
		analyzed:   make(map[string]bool),
	}
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// Import implements types.Importer for the typechecker's benefit.
func (a *analyzer) Import(path string) (*types.Package, error) {
	return a.ImportFrom(path, "", 0)
}

// ImportFrom resolves module-internal packages from source under the
// module root and delegates everything else (the standard library) to
// the source importer.
func (a *analyzer) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := a.cache[path]; ok {
		return pkg, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == a.modulePath || strings.HasPrefix(path, a.modulePath+"/") {
		files, err := a.parseDir(a.dirFor(path))
		if err != nil {
			return nil, err
		}
		info := newTypesInfo()
		conf := types.Config{Importer: a}
		pkg, err := conf.Check(path, a.fset, files, info)
		if err != nil {
			return nil, err
		}
		a.cache[path] = pkg
		if _, ok := a.pkgs[path]; !ok {
			a.pkgs[path] = &pkgInfo{path: path, files: files, info: info, pkg: pkg}
		}
		return pkg, nil
	}
	pkg, err := a.std.ImportFrom(path, dir, mode)
	if err == nil {
		a.cache[path] = pkg
	}
	return pkg, err
}

func (a *analyzer) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, a.modulePath), "/")
	return filepath.Join(a.moduleRoot, filepath.FromSlash(rel))
}

func (a *analyzer) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(a.moduleRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return a.modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, a.moduleRoot)
	}
	return a.modulePath + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses every non-test .go file of one directory.
func (a *analyzer) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(a.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildConstraintSatisfied(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// buildConstraintSatisfied mirrors the go tool's //go:build file
// selection for the analyzer's own GOOS/GOARCH, so platform variants
// of one symbol (e.g. the SO_REUSEPORT pair in internal/ingress)
// don't collide in the typechecker.
func buildConstraintSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed constraints are the compiler's problem
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH
			})
		}
	}
	return true
}

// analyzeDir typechecks one package directory and runs every rule.
func (a *analyzer) analyzeDir(dir string) ([]finding, error) {
	importPath, err := a.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	files, err := a.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := newTypesInfo()
	conf := types.Config{Importer: a}
	pkg, err := conf.Check(importPath, a.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	a.pkgs[importPath] = &pkgInfo{path: importPath, files: files, info: info, pkg: pkg}
	a.analyzed[importPath] = true

	// internal/idsgen holds specgen's generated dispatch tables plus the
	// hand-written runtime they call into. The style rules (typed-accessor
	// idiom, dropped-error discipline, guard purity) are tuned for code a
	// human maintains transition-by-transition, not for table literals a
	// generator rewrites wholesale, so they are skipped there. The
	// program-wide noalloc/escape closure and the lock gate still apply:
	// the compiled hot path gets the same allocation guarantees as the
	// interpreted one.
	style := !strings.HasSuffix(importPath, "internal/idsgen")

	var out []finding
	if style {
		out = append(out, a.checkDroppedErrors(files, info)...)
		out = append(out, a.checkArgsIndexing(importPath, files, info)...)
		if !strings.HasSuffix(importPath, "internal/sipmsg") {
			out = append(out, a.checkPayloadStringConv(files, info)...)
		}
		if strings.HasSuffix(importPath, "internal/ids") {
			out = append(out, a.checkSpecRegistry(importPath, files, info)...)
		}
		out = append(out, a.checkGuardPurity(files, info)...)
		if strings.HasSuffix(importPath, "internal/ids") || strings.HasSuffix(importPath, "internal/engine") ||
			strings.HasSuffix(importPath, "internal/ingress") {
			out = append(out, a.checkWallClock(files, info)...)
		}
	}
	if strings.HasSuffix(importPath, "internal/engine") || strings.HasSuffix(importPath, "internal/timerwheel") ||
		strings.HasSuffix(importPath, "internal/ingress") || strings.HasSuffix(importPath, "internal/idsgen") {
		out = append(out, a.checkLockDiscipline(files, info)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos.Filename != out[j].pos.Filename {
			return out[i].pos.Filename < out[j].pos.Filename
		}
		return out[i].pos.Offset < out[j].pos.Offset
	})
	return out, nil
}

// expandPatterns turns go-style package patterns ("./...", "./cmd/x")
// into package directories. testdata, hidden and underscore-prefixed
// directories are skipped, mirroring the go tool.
func (a *analyzer) expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(pat)
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
