// Command vidslint is vids' repo-specific static analyzer, built on
// the standard library's go/parser, go/ast and go/types only. It
// enforces the source-level contracts that keep the EFSM engine
// honest:
//
//   - results of (*core.Machine).Step / (*core.System).Deliver /
//     DeliverSync must not be discarded outright — ErrNoTransition is
//     the specification-deviation signal (paper Section 4);
//   - core.Event.Args must not be indexed directly outside
//     internal/core — the typed accessors own the wire-type handling;
//   - every spec builder in internal/ids must declare Final or Attack
//     states and be reachable from the ids.Specs registry, so
//     cmd/fsmdump and internal/speclint actually verify it;
//   - transition guards (the Predicate arguments of Spec.On and
//     OnLabeled) must be side-effect free — no Ctx.Emit, no writes to
//     Vars or Globals — because Step evaluates every guard to prove
//     disjointness and speclint re-runs them under synthetic probes;
//   - simulation-driven packages (internal/ids, internal/engine) must
//     not call time.Now or time.Sleep: detection time comes from the
//     virtual clock so trace replay reproduces live runs exactly.
//     Deliberate wall-clock sites carry //vidslint:allow wallclock.
//   - the static call closure of every //vids:nopanic root — the
//     parsers and dispatchers that consume raw network bytes — must be
//     free of potential runtime panics: every index, slice, type
//     assertion, map write, pointer dereference, division and shift
//     must be dominated by a proving guard, or carry a justified
//     //vids:panic-ok waiver (freshness-checked like alloc-ok).
//
// Usage:
//
//	vidslint ./...          # lint the whole module (the CI gate)
//	vidslint ./internal/ids # lint one package directory
//	vidslint -json ./...    # {findings, waivers} JSON on stdout
//
// The -json document carries each finding's owning gate in kind and a
// full inventory of alloc-ok/panic-ok waivers (file, line, scope,
// justification, whether it suppressed anything), so CI artifacts
// expose the complete suppression surface for audit.
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	fs := flag.NewFlagSet("vidslint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line lines")
	_ = fs.Parse(os.Args[1:])
	findings, err := run(fs.Args(), *jsonOut, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidslint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// jsonFinding is the machine-readable shape of one diagnostic. kind
// names the owning gate ("lint" for per-package style rules, "escape",
// "nopanic", "lockorder", "directive" for waiver hygiene), so CI
// artifacts can be filtered per gate.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
	Kind string `json:"kind"`
}

// jsonWaiver is one entry of the waiver inventory: every
// //vids:alloc-ok and //vids:panic-ok in the analyzed packages, line
// or function scoped, with its justification and whether it
// suppressed anything this run. The inventory makes the suppression
// surface auditable from the CI artifact alone.
type jsonWaiver struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Directive string `json:"directive"`
	Reason    string `json:"reason"`
	Used      bool   `json:"used"`
	Scope     string `json:"scope"` // "line" or "function"
	Func      string `json:"func,omitempty"`
}

// jsonReport is the -json document: the findings plus the full waiver
// inventory.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Waivers  []jsonWaiver  `json:"waivers"`
}

// waiverInventory collects every alloc-ok/panic-ok waiver of the
// analyzed packages from the whole-program state.
func waiverInventory(a *analyzer) []jsonWaiver {
	out := []jsonWaiver{}
	if a.prog == nil {
		return out
	}
	for _, set := range []*waiverSet{a.prog.waivers, a.prog.panicWaivers} {
		for _, w := range set.all {
			if !a.analyzed[w.pkg.path] {
				continue
			}
			out = append(out, jsonWaiver{
				File: w.pos.Filename, Line: w.pos.Line,
				Directive: "//" + set.directive, Reason: w.reason,
				Used: w.used, Scope: "line",
			})
		}
	}
	for _, node := range sortedFuncs(a.prog) {
		if !a.analyzed[node.pkg.path] {
			continue
		}
		pos := a.fset.Position(node.decl.Pos())
		if node.hasAllocOK {
			out = append(out, jsonWaiver{
				File: pos.Filename, Line: pos.Line,
				Directive: "//" + dirAllocOK, Reason: node.allocOK,
				Used: node.suppressed > 0, Scope: "function", Func: node.name(),
			})
		}
		if node.hasPanicOK {
			out = append(out, jsonWaiver{
				File: pos.Filename, Line: pos.Line,
				Directive: "//" + dirPanicOK, Reason: node.panicOK,
				Used: node.npSuppressed > 0, Scope: "function", Func: node.name(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Directive < out[j].Directive
	})
	return out
}

func run(patterns []string, jsonOut bool, out io.Writer) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	root, module, err := findModule(wd)
	if err != nil {
		return 0, err
	}
	a := newAnalyzer(root, module)
	dirs, err := a.expandPatterns(patterns)
	if err != nil {
		return 0, err
	}
	all := make([]finding, 0, 8)
	for _, dir := range dirs {
		findings, err := a.analyzeDir(dir)
		if err != nil {
			return len(all), err
		}
		all = append(all, findings...)
	}
	// Whole-program passes run after every requested directory is
	// loaded: the escape gate over the //vids:noalloc closure, the
	// directive-freshness sweep, and the alloc-ceiling drift check.
	progFindings, err := a.programFindings()
	if err != nil {
		return len(all), err
	}
	all = append(all, progFindings...)
	if jsonOut {
		report := jsonReport{Findings: make([]jsonFinding, len(all)), Waivers: waiverInventory(a)}
		for i, f := range all {
			kind := f.kind
			if kind == "" {
				kind = "lint"
			}
			report.Findings[i] = jsonFinding{File: f.pos.Filename, Line: f.pos.Line, Col: f.pos.Column, Msg: f.msg, Kind: kind}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return len(all), err
		}
		return len(all), nil
	}
	for _, f := range all {
		fmt.Fprintln(out, f)
	}
	return len(all), nil
}

// findModule walks up from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for cur := dir; ; {
		modfile := filepath.Join(cur, "go.mod")
		if _, statErr := os.Stat(modfile); statErr == nil {
			mod, parseErr := modulePath(modfile)
			if parseErr != nil {
				return "", "", parseErr
			}
			return cur, mod, nil
		}
		parent := filepath.Dir(cur)
		if parent == cur {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		cur = parent
	}
}

func modulePath(modfile string) (string, error) {
	f, err := os.Open(modfile)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("%s: no module directive", modfile)
}
