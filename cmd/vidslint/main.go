// Command vidslint is vids' repo-specific static analyzer, built on
// the standard library's go/parser, go/ast and go/types only. It
// enforces the source-level contracts that keep the EFSM engine
// honest:
//
//   - results of (*core.Machine).Step / (*core.System).Deliver /
//     DeliverSync must not be discarded outright — ErrNoTransition is
//     the specification-deviation signal (paper Section 4);
//   - core.Event.Args must not be indexed directly outside
//     internal/core — the typed accessors own the wire-type handling;
//   - every spec builder in internal/ids must declare Final or Attack
//     states and be reachable from the ids.Specs registry, so
//     cmd/fsmdump and internal/speclint actually verify it.
//
// Usage:
//
//	vidslint ./...          # lint the whole module (the CI gate)
//	vidslint ./internal/ids # lint one package directory
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	findings, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidslint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		os.Exit(1)
	}
}

func run(patterns []string, out *os.File) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	root, module, err := findModule(wd)
	if err != nil {
		return 0, err
	}
	a := newAnalyzer(root, module)
	dirs, err := a.expandPatterns(patterns)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, dir := range dirs {
		findings, err := a.analyzeDir(dir)
		if err != nil {
			return total, err
		}
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
		total += len(findings)
	}
	return total, nil
}

// findModule walks up from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for cur := dir; ; {
		modfile := filepath.Join(cur, "go.mod")
		if _, statErr := os.Stat(modfile); statErr == nil {
			mod, parseErr := modulePath(modfile)
			if parseErr != nil {
				return "", "", parseErr
			}
			return cur, mod, nil
		}
		parent := filepath.Dir(cur)
		if parent == cur {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		cur = parent
	}
}

func modulePath(modfile string) (string, error) {
	f, err := os.Open(modfile)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("%s: no module directive", modfile)
}
