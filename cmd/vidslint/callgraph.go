package main

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The escape gate's annotation vocabulary, harvested from function doc
// comments and body comments:
//
//	//vids:noalloc [note]      — escape-gate root: the whole static
//	                             call closure of this function is
//	                             scanned for heap-allocation sites.
//	//vids:alloc-ok <reason>   — function level (doc comment): every
//	                             allocation site lexically inside this
//	                             function is justified by <reason>;
//	                             line level (body comment): justifies
//	                             sites on the same or the next line.
//	//vids:coldpath <reason>   — this function is off the per-packet
//	                             path; the closure traversal does not
//	                             descend into it.
//
// The nopanic gate (nopanic.go) adds a parallel vocabulary:
//
//	//vids:nopanic [note]      — panic-gate root: the whole static
//	                             call closure of this function is
//	                             scanned for potential runtime panic
//	                             sites (it handles untrusted input).
//	//vids:panic-ok <reason>   — function level (doc comment): every
//	                             potential panic site lexically inside
//	                             this function is impossible for
//	                             <reason>; line level (body comment):
//	                             justifies sites on the same or the
//	                             next line.
//
// Both alloc-ok and coldpath are freshness-checked like speccover
// waivers: a directive that no longer suppresses or cuts anything is
// itself a finding, so justifications cannot rot in place. panic-ok
// gets the identical treatment.
const (
	dirNoalloc  = "vids:noalloc"
	dirAllocOK  = "vids:alloc-ok"
	dirColdpath = "vids:coldpath"
	dirNopanic  = "vids:nopanic"
	dirPanicOK  = "vids:panic-ok"
)

// funcNode is one module function in the whole-program index.
type funcNode struct {
	key  string
	pkg  *pkgInfo
	decl *ast.FuncDecl

	noalloc     bool   // //vids:noalloc root
	hasAllocOK  bool   // function-level //vids:alloc-ok present
	allocOK     string // its reason (may be empty — rejected by freshness)
	hasColdpath bool   // //vids:coldpath present
	coldpath    string // its reason
	nopanic     bool   // //vids:nopanic root
	hasPanicOK  bool   // function-level //vids:panic-ok present
	panicOK     string // its reason

	reached      bool // visited by the escape closure traversal
	cut          bool // skipped as a //vids:coldpath callee at least once
	suppressed   int  // sites suppressed by the function-level alloc-ok
	npReached    bool // visited by the nopanic closure traversal
	npSuppressed int  // sites suppressed by the function-level panic-ok
}

// name returns a human-readable short name (pkg.Func or
// pkg.Type.Method) for call-graph path diagnostics.
func (n *funcNode) name() string {
	pkg := n.pkg.path
	if i := strings.LastIndex(pkg, "/"); i >= 0 {
		pkg = pkg[i+1:]
	}
	if n.decl.Recv != nil && len(n.decl.Recv.List) == 1 {
		if recv := recvTypeName(n.decl.Recv.List[0].Type); recv != "" {
			return pkg + ".(" + recv + ")." + n.decl.Name.Name
		}
	}
	return pkg + "." + n.decl.Name.Name
}

// program is the whole-module function index plus the line-level
// suppression waivers, built once after all requested directories were
// analyzed.
type program struct {
	funcs        map[string]*funcNode
	waivers      *waiverSet // //vids:alloc-ok line waivers
	panicWaivers *waiverSet // //vids:panic-ok line waivers

	// reached/parent record the escape traversal: which functions the
	// noalloc closure visited and through which caller, for
	// root-to-site path diagnostics. npParent/npRootOf are the nopanic
	// gate's equivalents (the two closures differ: nopanic descends
	// into //vids:coldpath functions too — a crash has no cold path).
	parent   map[string]string
	rootOf   map[string]string
	npParent map[string]string
	npRootOf map[string]string
}

// funcKey names a function unambiguously across type-checker runs:
// package path, receiver type name (if any), function name. String
// keys make the index robust against the same package being
// typechecked more than once (imported first, analyzed later), which
// yields distinct types.Func objects for one source function.
func funcKey(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return fn.FullName()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.FullName()
}

// recvTypeName extracts the receiver type name from a FuncDecl
// receiver field ("*Wheel" and "Wheel" both yield "Wheel").
func recvTypeName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver, unused in this module
		return recvTypeName(e.X)
	}
	return ""
}

// directiveText returns the payload after a //vids:<name> marker, or
// ("", false) when the comment is not that directive. The reason may
// be empty ("", true) — the freshness check rejects that separately.
func directiveText(comment, directive string) (string, bool) {
	text := strings.TrimPrefix(comment, "//")
	if text == directive {
		return "", true
	}
	if rest, ok := strings.CutPrefix(text, directive+" "); ok {
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// buildProgram indexes every function declaration of every module
// package loaded so far and harvests the escape-gate directives.
func (a *analyzer) buildProgram() *program {
	prog := &program{
		funcs:        make(map[string]*funcNode),
		waivers:      newWaiverSet(dirAllocOK),
		panicWaivers: newWaiverSet(dirPanicOK),
		parent:       make(map[string]string),
		rootOf:       make(map[string]string),
		npParent:     make(map[string]string),
		npRootOf:     make(map[string]string),
	}
	paths := make([]string, 0, len(a.pkgs))
	for p := range a.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		pi := a.pkgs[p]
		for _, f := range pi.files {
			prog.waivers.collectFile(a, pi, f)
			prog.panicWaivers.collectFile(a, pi, f)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pi.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{key: funcKey(fn), pkg: pi, decl: fd}
				if fd.Doc != nil {
					for _, c := range fd.Doc.List {
						if _, ok := directiveText(c.Text, dirNoalloc); ok {
							node.noalloc = true
						}
						if reason, ok := directiveText(c.Text, dirAllocOK); ok {
							node.hasAllocOK, node.allocOK = true, reason
						}
						if reason, ok := directiveText(c.Text, dirColdpath); ok {
							node.hasColdpath, node.coldpath = true, reason
						}
						if _, ok := directiveText(c.Text, dirNopanic); ok {
							node.nopanic = true
						}
						if reason, ok := directiveText(c.Text, dirPanicOK); ok {
							node.hasPanicOK, node.panicOK = true, reason
						}
					}
				}
				if _, dup := prog.funcs[node.key]; !dup {
					prog.funcs[node.key] = node
				}
			}
		}
	}
	return prog
}

// pathTo renders the BFS call path from the escape traversal root
// down to key, e.g. "sipmsg.Parse → sipmsg.parseHeaderLine".
func (prog *program) pathTo(key string) string {
	return prog.pathIn(prog.parent, key)
}

// npPathTo is pathTo over the nopanic traversal.
func (prog *program) npPathTo(key string) string {
	return prog.pathIn(prog.npParent, key)
}

func (prog *program) pathIn(parent map[string]string, key string) string {
	var chain []string
	for cur := key; cur != ""; cur = parent[cur] {
		node := prog.funcs[cur]
		if node == nil {
			break
		}
		chain = append(chain, node.name())
		if parent[cur] == cur {
			break
		}
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " → ")
}

// programFindings runs the whole-program passes over everything loaded
// so far: the escape/allocation gate over the //vids:noalloc closure,
// directive freshness, and — when the real internal/ids package was
// among the analyzed directories (i.e. a module-wide lint, not a
// fixture run) — the alloc-ceiling drift gate against alloc_test.go.
func (a *analyzer) programFindings() ([]finding, error) {
	prog := a.buildProgram()
	a.prog = prog
	out := a.checkEscape(prog)
	out = append(out, a.checkNopanic(prog)...)
	if a.analyzed[a.modulePath+"/internal/ids"] {
		fs, err := a.checkAllocDrift(prog)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sortFindings(a, out)
	return out, nil
}

func sortFindings(a *analyzer, out []finding) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos.Filename != out[j].pos.Filename {
			return out[i].pos.Filename < out[j].pos.Filename
		}
		if out[i].pos.Offset != out[j].pos.Offset {
			return out[i].pos.Offset < out[j].pos.Offset
		}
		return out[i].msg < out[j].msg
	})
}
