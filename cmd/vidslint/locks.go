package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The concurrency-discipline gate, run over internal/engine and
// internal/timerwheel (and their fixtures). It models the repo's
// locking vocabulary:
//
//   - A lock is identified by (owning struct type, mutex field) —
//     "Engine.mu", "shard.mu" — so every instance of a struct shares
//     one discipline.
//   - A *queue lock* is a mutex declared in a struct that also carries
//     sync.Cond fields (the shard ring buffer). Queue locks guard
//     bounded hand-off state, so while one is held the gate forbids
//     blocking channel operations, select, and dynamic calls
//     (callbacks) — any of which can stall every producer parked on
//     the condition variable.
//   - Lock-order edges are observed whenever a mutex is acquired while
//     another is held (directly or through a same-package callee's
//     transitive acquire summary). `//vids:lockorder A -> B` declares
//     an edge the analysis cannot see — e.g. a callback registered at
//     construction time that runs under A and takes B. Cycles in the
//     combined graph are deadlocks-in-waiting and are reported.
//   - sync.Cond.Wait must sit inside a for statement: Wait's contract
//     allows spurious wakeups, so an if-guarded Wait is a latent race.
//   - No goroutine may be launched while any lock is held.
//
// The held-set walk is intraprocedural and source-ordered with a
// branch-local approximation: Lock/Unlock effects inside a branch do
// not leak past it, and a deferred Unlock keeps the lock held to the
// end of the function. Function literals are analyzed as separate
// bodies with an empty held set (they run at an unknown later time).
type lockPass struct {
	a     *analyzer
	info  *types.Info
	files []*ast.File

	findings   []finding
	queueLocks map[string]bool
	// edges[from][to] is the position where the ordering from→to was
	// first observed or declared.
	edges     map[string]map[string]token.Position
	summaries map[string]map[string]bool // funcKey → locks (transitively) acquired
	decls     map[string]*ast.FuncDecl   // same-package funcKey → decl
	pending   []*ast.FuncLit             // literals queued for separate walks
}

// checkLockDiscipline runs the concurrency gate over one package.
func (a *analyzer) checkLockDiscipline(files []*ast.File, info *types.Info) []finding {
	lp := &lockPass{
		a:          a,
		info:       info,
		files:      files,
		queueLocks: make(map[string]bool),
		edges:      make(map[string]map[string]token.Position),
		summaries:  make(map[string]map[string]bool),
		decls:      make(map[string]*ast.FuncDecl),
	}
	lp.findQueueLocks()
	lp.collectDeclaredEdges()
	lp.buildSummaries()
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lp.walkBody(fd.Body, make(map[string]token.Position), 0)
		}
	}
	for len(lp.pending) > 0 {
		lit := lp.pending[0]
		lp.pending = lp.pending[1:]
		lp.walkBody(lit.Body, make(map[string]token.Position), 0)
	}
	lp.detectCycles()
	sort.Slice(lp.findings, func(i, j int) bool {
		if lp.findings[i].pos.Filename != lp.findings[j].pos.Filename {
			return lp.findings[i].pos.Filename < lp.findings[j].pos.Filename
		}
		if lp.findings[i].pos.Offset != lp.findings[j].pos.Offset {
			return lp.findings[i].pos.Offset < lp.findings[j].pos.Offset
		}
		return lp.findings[i].msg < lp.findings[j].msg
	})
	return lp.findings
}

// findQueueLocks marks every mutex field declared in a struct that
// also carries sync.Cond state.
func (lp *lockPass) findQueueLocks() {
	for _, f := range lp.files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			var mutexes []string
			hasCond := false
			for _, field := range st.Fields.List {
				t := lp.info.TypeOf(field.Type)
				if t == nil {
					continue
				}
				if isSyncNamed(t, "Cond") {
					hasCond = true
				}
				if isSyncNamed(t, "Mutex") || isSyncNamed(t, "RWMutex") {
					for _, name := range field.Names {
						mutexes = append(mutexes, ts.Name.Name+"."+name.Name)
					}
				}
			}
			if hasCond {
				for _, m := range mutexes {
					lp.queueLocks[m] = true
				}
			}
			return true
		})
	}
}

// collectDeclaredEdges harvests `//vids:lockorder A -> B` directives.
func (lp *lockPass) collectDeclaredEdges() {
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				payload, ok := directiveText(c.Text, "vids:lockorder")
				if !ok {
					continue
				}
				from, to, found := strings.Cut(payload, "->")
				from, to = strings.TrimSpace(from), strings.TrimSpace(to)
				if !found || from == "" || to == "" {
					lp.findings = append(lp.findings, finding{
						pos: lp.a.fset.Position(c.Pos()),
						msg: "//vids:lockorder needs the form `//vids:lockorder Type.field -> Type.field`",
					})
					continue
				}
				lp.addEdge(from, to, lp.a.fset.Position(c.Pos()))
			}
		}
	}
}

// buildSummaries computes, per function, the set of locks it may
// acquire directly or through same-package static callees (fixpoint).
// Function literals are excluded: they run at an unknown time, not at
// their creation site.
func (lp *lockPass) buildSummaries() {
	calls := make(map[string]map[string]bool) // caller key → callee keys
	for _, f := range lp.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := lp.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := funcKey(fn)
			lp.decls[key] = fd
			direct := make(map[string]bool)
			callees := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, method, ok := lp.lockOp(call); ok && (method == "Lock" || method == "RLock") {
					direct[id] = true
				}
				if callee := lp.staticCalleeKey(call); callee != "" {
					callees[callee] = true
				}
				return true
			})
			lp.summaries[key] = direct
			calls[key] = callees
		}
	}
	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			sum := lp.summaries[caller]
			for callee := range callees {
				for l := range lp.summaries[callee] {
					if !sum[l] {
						sum[l] = true
						changed = true
					}
				}
			}
		}
	}
}

// staticCalleeKey resolves a call to a same-package function or
// method declared in the files under analysis, else "".
func (lp *lockPass) staticCalleeKey(call *ast.CallExpr) string {
	var obj types.Object
	switch fx := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = lp.info.Uses[fx]
	case *ast.SelectorExpr:
		if sel := lp.info.Selections[fx]; sel != nil && sel.Kind() == types.MethodVal {
			obj = sel.Obj()
		} else {
			obj = lp.info.Uses[fx.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	key := funcKey(fn)
	if _, samePkg := lp.summaries[key]; samePkg {
		return key
	}
	if _, samePkg := lp.decls[key]; samePkg {
		return key
	}
	return ""
}

// lockOp classifies a call as a mutex or condition-variable operation:
// it returns the lock/cond identity ("Type.field") and the method name
// (Lock, Unlock, RLock, RUnlock, Wait, Signal, Broadcast).
func (lp *lockPass) lockOp(call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn, ok := lp.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", false
	}
	recv := sig.Recv().Type()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex", "Cond":
		return lp.lockIdent(sel.X), fn.Name(), true
	}
	return "", "", false
}

// lockIdent names the mutex/cond operand: "Type.field" when it is a
// struct field, otherwise the expression text (local locks).
func (lp *lockPass) lockIdent(expr ast.Expr) string {
	if sel, ok := ast.Unparen(expr).(*ast.SelectorExpr); ok {
		if s := lp.info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			t := s.Recv()
			if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + sel.Sel.Name
			}
		}
	}
	return types.ExprString(expr)
}

func (lp *lockPass) addEdge(from, to string, pos token.Position) {
	m := lp.edges[from]
	if m == nil {
		m = make(map[string]token.Position)
		lp.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

func (lp *lockPass) report(pos token.Pos, format string, args ...any) {
	lp.findings = append(lp.findings, finding{pos: lp.a.fset.Position(pos), msg: fmt.Sprintf(format, args...)})
}

// heldQueueLock returns the name of a held queue lock, if any.
func heldQueueLock(held map[string]token.Position, queue map[string]bool) string {
	var names []string
	for id := range held {
		if queue[id] {
			names = append(names, id)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return ""
	}
	return names[0]
}

func anyHeld(held map[string]token.Position) string {
	var names []string
	for id := range held {
		names = append(names, id)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return ""
	}
	return strings.Join(names, ", ")
}

func copyHeld(held map[string]token.Position) map[string]token.Position {
	cp := make(map[string]token.Position, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

// walkBody walks one function (or literal) body in source order,
// threading the held-lock set through straight-line code and giving
// each branch its own copy.
func (lp *lockPass) walkBody(body *ast.BlockStmt, held map[string]token.Position, loopDepth int) {
	for _, stmt := range body.List {
		lp.walkStmt(stmt, held, loopDepth)
	}
}

func (lp *lockPass) walkStmt(stmt ast.Stmt, held map[string]token.Position, loopDepth int) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		lp.walkBody(s, held, loopDepth)
	case *ast.ExprStmt:
		lp.scanExpr(s.X, held, loopDepth, true)
	case *ast.DeferStmt:
		if id, method, ok := lp.lockOp(s.Call); ok && (method == "Unlock" || method == "RUnlock") {
			_ = id // deferred unlock: the lock stays held to the end of the walk
			return
		}
		lp.scanExpr(s.Call, held, loopDepth, false)
	case *ast.GoStmt:
		if names := anyHeld(held); names != "" {
			lp.report(s.Pos(), "goroutine launched while holding %s: spawning under a lock hides the critical section's true extent", names)
		}
		// The goroutine body runs lock-free later; args evaluate now.
		for _, arg := range s.Call.Args {
			lp.scanExpr(arg, held, loopDepth, false)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lp.pending = append(lp.pending, lit)
		}
	case *ast.SendStmt:
		if q := heldQueueLock(held, lp.queueLocks); q != "" {
			lp.report(s.Pos(), "channel send while holding queue lock %s can block every producer parked on its condition variable", q)
		}
		lp.scanExpr(s.Chan, held, loopDepth, false)
		lp.scanExpr(s.Value, held, loopDepth, false)
	case *ast.SelectStmt:
		if q := heldQueueLock(held, lp.queueLocks); q != "" {
			lp.report(s.Pos(), "select while holding queue lock %s can block the shard hand-off", q)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				branch := copyHeld(held)
				for _, st := range cc.Body {
					lp.walkStmt(st, branch, loopDepth)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			lp.walkStmt(s.Init, held, loopDepth)
		}
		lp.scanExpr(s.Cond, held, loopDepth, false)
		lp.walkBody(s.Body, copyHeld(held), loopDepth)
		if s.Else != nil {
			lp.walkStmt(s.Else, copyHeld(held), loopDepth)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lp.walkStmt(s.Init, held, loopDepth)
		}
		if s.Cond != nil {
			lp.scanExpr(s.Cond, held, loopDepth, false)
		}
		body := copyHeld(held)
		lp.walkBody(s.Body, body, loopDepth+1)
		if s.Post != nil {
			lp.walkStmt(s.Post, body, loopDepth+1)
		}
	case *ast.RangeStmt:
		lp.scanExpr(s.X, held, loopDepth, false)
		lp.walkBody(s.Body, copyHeld(held), loopDepth+1)
	case *ast.SwitchStmt:
		if s.Init != nil {
			lp.walkStmt(s.Init, held, loopDepth)
		}
		if s.Tag != nil {
			lp.scanExpr(s.Tag, held, loopDepth, false)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				branch := copyHeld(held)
				for _, st := range cc.Body {
					lp.walkStmt(st, branch, loopDepth)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lp.walkStmt(s.Init, held, loopDepth)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				branch := copyHeld(held)
				for _, st := range cc.Body {
					lp.walkStmt(st, branch, loopDepth)
				}
			}
		}
	case *ast.LabeledStmt:
		lp.walkStmt(s.Stmt, held, loopDepth)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			lp.scanExpr(rhs, held, loopDepth, false)
		}
		for _, lhs := range s.Lhs {
			lp.scanExpr(lhs, held, loopDepth, false)
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			lp.scanExpr(res, held, loopDepth, false)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lp.pending = append(lp.pending, lit)
				return false
			}
			return true
		})
	}
}

// scanExpr examines one expression for lock operations, blocking
// receives, dynamic calls under queue locks, and nested literals.
// asStmt marks an expression-statement call, where Lock/Unlock mutate
// the held set.
func (lp *lockPass) scanExpr(expr ast.Expr, held map[string]token.Position, loopDepth int, asStmt bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		lp.pending = append(lp.pending, e)
		return
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			if q := heldQueueLock(held, lp.queueLocks); q != "" {
				lp.report(e.Pos(), "channel receive while holding queue lock %s can block the shard hand-off", q)
			}
		}
		lp.scanExpr(e.X, held, loopDepth, false)
		return
	case *ast.BinaryExpr:
		lp.scanExpr(e.X, held, loopDepth, false)
		lp.scanExpr(e.Y, held, loopDepth, false)
		return
	case *ast.CallExpr:
		lp.scanCall(e, held, loopDepth, asStmt)
		return
	case *ast.IndexExpr:
		lp.scanExpr(e.X, held, loopDepth, false)
		lp.scanExpr(e.Index, held, loopDepth, false)
		return
	case *ast.SelectorExpr:
		lp.scanExpr(e.X, held, loopDepth, false)
		return
	case *ast.StarExpr:
		lp.scanExpr(e.X, held, loopDepth, false)
		return
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				lp.scanExpr(kv.Value, held, loopDepth, false)
			} else {
				lp.scanExpr(el, held, loopDepth, false)
			}
		}
		return
	}
}

func (lp *lockPass) scanCall(call *ast.CallExpr, held map[string]token.Position, loopDepth int, asStmt bool) {
	for _, arg := range call.Args {
		lp.scanExpr(arg, held, loopDepth, false)
	}
	if id, method, ok := lp.lockOp(call); ok {
		pos := lp.a.fset.Position(call.Pos())
		switch method {
		case "Lock", "RLock":
			for h := range held {
				if h == id {
					lp.report(call.Pos(), "%s acquired while already held (self-deadlock)", id)
					continue
				}
				lp.addEdge(h, id, pos)
			}
			if asStmt {
				held[id] = pos
			}
		case "Unlock", "RUnlock":
			if asStmt {
				delete(held, id)
			}
		case "Wait":
			if loopDepth == 0 {
				lp.report(call.Pos(), "sync.Cond.Wait on %s outside a for loop: spurious wakeups make if-guarded waits a race", id)
			}
		}
		return
	}
	if callee := lp.staticCalleeKey(call); callee != "" {
		pos := lp.a.fset.Position(call.Pos())
		for h := range held {
			for l := range lp.summaries[callee] {
				if h == l {
					lp.report(call.Pos(), "call may re-acquire %s already held here (self-deadlock through %s)", h, callee)
					continue
				}
				lp.addEdge(h, l, pos)
			}
		}
		return
	}
	if lp.isDynamicCall(call) {
		if q := heldQueueLock(held, lp.queueLocks); q != "" {
			lp.report(call.Pos(), "callback invoked while holding queue lock %s: the callee can block or re-enter the shard", q)
		}
	}
}

// isDynamicCall reports whether the call target is a function value,
// interface method, or struct function field — anything the analysis
// cannot resolve to a declaration.
func (lp *lockPass) isDynamicCall(call *ast.CallExpr) bool {
	funExpr := ast.Unparen(call.Fun)
	if tv, ok := lp.info.Types[funExpr]; ok && tv.IsType() {
		return false // conversion
	}
	switch fx := funExpr.(type) {
	case *ast.Ident:
		switch lp.info.Uses[fx].(type) {
		case *types.Builtin, *types.Func, *types.TypeName:
			return false
		case *types.Var:
			return true
		}
	case *ast.SelectorExpr:
		if sel := lp.info.Selections[fx]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal:
				return types.IsInterface(sel.Recv())
			case types.FieldVal:
				return true
			}
			return false
		}
		switch lp.info.Uses[fx.Sel].(type) {
		case *types.Func, *types.TypeName, *types.Builtin:
			return false
		case *types.Var:
			return true
		}
	case *ast.FuncLit:
		return false // body walked separately; the call itself is direct
	}
	return true
}

// detectCycles finds cycles in the combined observed+declared
// lock-order graph and reports each once.
func (lp *lockPass) detectCycles() {
	nodes := make([]string, 0, len(lp.edges))
	for n := range lp.edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	seenCycles := make(map[string]bool)

	var visit func(n string)
	visit = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		tos := make([]string, 0, len(lp.edges[n]))
		for to := range lp.edges[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			switch color[to] {
			case white:
				visit(to)
			case gray:
				// Back edge: extract the cycle from the stack.
				start := len(stack) - 1
				for start >= 0 && stack[start] != to {
					start--
				}
				if start < 0 {
					continue
				}
				cycle := append([]string(nil), stack[start:]...)
				canon := append([]string(nil), cycle...)
				sort.Strings(canon)
				sig := strings.Join(canon, "|")
				if seenCycles[sig] {
					continue
				}
				seenCycles[sig] = true
				lp.findings = append(lp.findings, finding{
					pos: lp.edges[n][to],
					msg: fmt.Sprintf("lock-order cycle: %s → %s — acquiring in both orders deadlocks under contention", strings.Join(cycle, " → "), to),
				})
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
}

// isSyncNamed reports whether t is sync.<name> or *sync.<name>.
func isSyncNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}
