package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkGuardPurity flags transition guards — the Predicate arguments
// of (*core.Spec).On and OnLabeled — whose bodies mutate machine
// state: calling (*core.Ctx).Emit, calling a core.Vars mutator
// (Set, SetString, SetInt, SetUint32, SetBool, SetDuration), or
// assigning through an index expression into a core.Vars map. The
// paper's predicates P_t must be side-effect free: Machine.Step
// evaluates EVERY guard on an event to prove mutual disjointness, so
// an impure guard runs its side effects even when its transition is
// not taken, and speclint's probe-based discovery replays guards
// under synthetic contexts where stray writes corrupt the analysis.
// Guards written as function literals, locals bound to literals, or
// package-level functions are all resolved.
func (a *analyzer) checkGuardPurity(files []*ast.File, info *types.Info) []finding {
	onName := "(*" + a.corePath + ".Spec).On"
	onLabeledName := "(*" + a.corePath + ".Spec).OnLabeled"

	// Resolve guard identifiers package-wide: locals bound to a
	// function literal, package-level function declarations, and
	// methods (guards may be bound method values like f.guard).
	lits := make(map[types.Object]*ast.FuncLit)
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := info.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lit, ok := as.Rhs[i].(*ast.FuncLit)
				if !ok {
					continue
				}
				if obj := info.Defs[id]; obj != nil {
					lits[obj] = lit
				} else if obj := info.Uses[id]; obj != nil {
					lits[obj] = lit
				}
			}
			return true
		})
	}

	var out []finding
	flagged := make(map[token.Pos]bool) // one finding per guard body
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			guardIdx := -1
			switch fn.FullName() {
			case onName:
				guardIdx = 2
			case onLabeledName:
				guardIdx = 3
			default:
				return true
			}
			if len(call.Args) <= guardIdx {
				return true
			}
			var body *ast.BlockStmt
			switch g := ast.Unparen(call.Args[guardIdx]).(type) {
			case *ast.FuncLit:
				body = g.Body
			case *ast.Ident:
				if obj := info.Uses[g]; obj != nil {
					if lit, ok := lits[obj]; ok {
						body = lit.Body
					} else if fd, ok := decls[obj]; ok {
						body = fd.Body
					}
				}
			case *ast.SelectorExpr:
				// Bound method value (f.guard) or package-qualified
				// function used as the predicate.
				var obj types.Object
				if sel := info.Selections[g]; sel != nil && sel.Kind() == types.MethodVal {
					obj = sel.Obj()
				} else {
					obj = info.Uses[g.Sel]
				}
				if fd, ok := decls[obj]; ok {
					body = fd.Body
				}
			}
			if body == nil || flagged[body.Pos()] {
				return true
			}
			if msg, pos, impure := a.guardImpurity(body, info, decls); impure {
				flagged[body.Pos()] = true
				out = append(out, finding{pos: pos, msg: msg})
			}
			return true
		})
	}
	return out
}

// guardImpurity scans one guard body for side effects on machine
// state and reports the first one found. Same-package helpers the
// guard calls (directly, through a method value, or under a defer) are
// scanned transitively: delegating the write does not purify the
// guard.
func (a *analyzer) guardImpurity(body *ast.BlockStmt, info *types.Info, decls map[types.Object]*ast.FuncDecl) (msg string, pos token.Position, impure bool) {
	emitName := "(*" + a.corePath + ".Ctx).Emit"
	mutators := map[string]bool{
		"(" + a.corePath + ".Vars).Set":         true,
		"(" + a.corePath + ".Vars).SetString":   true,
		"(" + a.corePath + ".Vars).SetInt":      true,
		"(" + a.corePath + ".Vars).SetUint32":   true,
		"(" + a.corePath + ".Vars).SetBool":     true,
		"(" + a.corePath + ".Vars).SetDuration": true,
	}
	visited := make(map[*ast.BlockStmt]bool)
	var scan func(b *ast.BlockStmt)
	scan = func(b *ast.BlockStmt) {
		if visited[b] {
			return
		}
		visited[b] = true
		ast.Inspect(b, func(n ast.Node) bool {
			if impure {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				var callee types.Object
				switch fx := ast.Unparen(n.Fun).(type) {
				case *ast.Ident:
					callee = info.Uses[fx]
				case *ast.SelectorExpr:
					if sel := info.Selections[fx]; sel != nil && sel.Kind() == types.MethodVal {
						callee = sel.Obj()
					} else {
						callee = info.Uses[fx.Sel]
					}
				}
				fn, ok := callee.(*types.Func)
				if !ok {
					return true
				}
				switch full := fn.FullName(); {
				case full == emitName:
					msg = "impure guard: calls (*core.Ctx).Emit — predicates are evaluated for every candidate transition, so a guard-side emission fires even when the transition is not taken; move the Emit into the Action"
					pos = a.fset.Position(n.Pos())
					impure = true
				case mutators[full]:
					msg = fmt.Sprintf("impure guard: %s mutates machine variables — guards must be side-effect free (speclint probes re-run them under synthetic contexts); move the write into the Action", fn.Name())
					pos = a.fset.Position(n.Pos())
					impure = true
				default:
					if fd, samePkg := decls[callee]; samePkg {
						scan(fd.Body)
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
					if !ok {
						continue
					}
					if a.isCoreVars(info.Types[idx.X].Type) {
						msg = "impure guard: assigns into a core.Vars map — guards must be side-effect free (speclint probes re-run them under synthetic contexts); move the write into the Action"
						pos = a.fset.Position(idx.Pos())
						impure = true
						break
					}
				}
			}
			return !impure
		})
	}
	scan(body)
	return msg, pos, impure
}

func (a *analyzer) isCoreVars(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Vars" && obj.Pkg() != nil && obj.Pkg().Path() == a.corePath
}

// checkWallClock flags time.Now and time.Sleep in simulation-driven
// packages (internal/ids and internal/engine; analyzeDir applies the
// gate). Detection logic there must derive time from the virtual
// clock (sim.Sim.Now) so that replaying a recorded trace reproduces
// the live run bit-for-bit; a wall-clock read silently decouples the
// two. Deliberate wall-clock sites (self-instrumentation counters, OS
// socket deadlines) are annotated with a `//vidslint:allow wallclock`
// comment on the same line or the line above.
func (a *analyzer) checkWallClock(files []*ast.File, info *types.Info) []finding {
	var out []finding
	for _, f := range files {
		allowed := a.allowedLines(f, "wallclock")
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			full := fn.FullName()
			if full != "time.Now" && full != "time.Sleep" {
				return true
			}
			pos := a.fset.Position(call.Pos())
			if allowed[pos.Line] {
				return true
			}
			out = append(out, finding{
				pos: pos,
				msg: fmt.Sprintf("%s in a simulation-driven package breaks virtual-clock determinism and trace-replay parity: use the simulator clock, or annotate a deliberate site with //vidslint:allow wallclock", full),
			})
			return true
		})
	}
	return out
}

// allowedLines collects the source lines covered by
// `//vidslint:allow <what>` directives: the directive's own line (for
// end-of-line annotations) and the line after it (for annotations on
// the preceding line). parseDir retains comments for this.
func (a *analyzer) allowedLines(f *ast.File, what string) map[int]bool {
	allowed := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			directive := "vidslint:allow " + what
			// A justification may follow the directive after a space.
			if text != directive && !strings.HasPrefix(text, directive+" ") {
				continue
			}
			line := a.fset.Position(c.Pos()).Line
			allowed[line] = true
			allowed[line+1] = true
		}
	}
	return allowed
}
