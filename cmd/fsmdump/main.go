// Command fsmdump renders vids' protocol state machines — the
// executable counterparts of the paper's Figures 2, 4, 5 and 6 — as
// Graphviz DOT, and validates them (structural well-formedness plus
// reachability of every attack and final state).
//
// Usage:
//
//	fsmdump              # validate and list machines
//	fsmdump -dot sip     # print one machine as DOT
//	fsmdump -dot all     # print every machine
package main

import (
	"flag"
	"fmt"
	"os"

	"vids/internal/core"
	"vids/internal/ids"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fsmdump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fsmdump", flag.ContinueOnError)
	dot := fs.String("dot", "", "render this machine (or \"all\") as Graphviz DOT")
	if err := fs.Parse(args); err != nil {
		return err
	}

	specs := ids.Specs(ids.DefaultConfig())
	if *dot != "" {
		matched := false
		for _, s := range specs {
			if *dot == "all" || *dot == s.Name {
				matched = true
				fmt.Println(s.DOT())
			}
		}
		if !matched {
			return fmt.Errorf("unknown machine %q", *dot)
		}
		return nil
	}

	for _, s := range specs {
		status := "ok"
		if err := s.Validate(); err != nil {
			status = err.Error()
		} else if err := s.CheckReachable(); err != nil {
			status = err.Error()
		}
		fmt.Printf("%-16s states=%-2d transitions=%-3d attack=%d final=%d  %s\n",
			s.Name, len(s.States()), len(s.Transitions()),
			countIf(s, s.IsAttack), countIf(s, s.IsFinal), status)
	}
	return nil
}

func countIf(s *core.Spec, pred func(core.State) bool) int {
	n := 0
	for _, st := range s.States() {
		if pred(st) {
			n++
		}
	}
	return n
}
