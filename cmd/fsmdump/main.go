// Command fsmdump renders vids' protocol state machines — the
// executable counterparts of the paper's Figures 2, 4, 5 and 6 — as
// Graphviz DOT, and statically verifies them via internal/speclint:
// structural well-formedness, reachability, livelock freedom,
// shadowed transitions, the δ-synchronization contract between the
// SIP and RTP machines, and bounded exploration of their
// communicating product. Any finding makes the command exit nonzero,
// so CI can gate on it.
//
// Usage:
//
//	fsmdump                        # verify every machine and the system
//	fsmdump -dot sip               # print one machine as DOT
//	fsmdump -dot all               # print every machine
//	fsmdump -dot all -backend compiled  # ... from specgen's dispatch tables
//	fsmdump -depth 24              # deepen the product exploration
//	fsmdump -witness               # print a shortest path to every attack state
//
// -backend compiled renders the spec graphs reconstructed from the
// generated dense transition tables (internal/idsgen) instead of the
// interpreted spec builders; identical DOT from both backends is part
// of the compiled-dispatch parity gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"vids/internal/core"
	"vids/internal/ids"
	"vids/internal/idsgen"
	"vids/internal/speclint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fsmdump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fsmdump", flag.ContinueOnError)
	dot := fs.String("dot", "", "render this machine (or \"all\") as Graphviz DOT")
	depth := fs.Int("depth", 0, "product exploration depth (0 = speclint default)")
	witness := fs.Bool("witness", false, "print a shortest event path to every attack state")
	backend := fs.String("backend", "interpreted", "spec source for -dot: interpreted (the ids spec builders) or compiled (reconstructed from specgen's dispatch tables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := ids.DefaultConfig()
	specs := ids.Specs(cfg)
	switch *backend {
	case "interpreted":
	case "compiled":
		// Rebuild the spec graphs from the generated dense tables. Only
		// the structure (states, events, labels, guard/action flags,
		// final/attack annotations) round-trips — guards and actions in
		// the compiled backend are Go functions, so speclint's semantic
		// passes keep running against the interpreted specs below. -dot
		// on both backends producing identical output is the structural
		// half of the parity gate.
		if *dot == "" {
			return fmt.Errorf("-backend compiled only affects -dot; lint always runs on the interpreted specs")
		}
		specs = idsgen.ReconstructSpecs()
	default:
		return fmt.Errorf("unknown -backend %q (want interpreted or compiled)", *backend)
	}
	if *dot != "" {
		matched := false
		for _, s := range specs {
			if *dot == "all" || *dot == s.Name {
				matched = true
				fmt.Println(s.DOT())
			}
		}
		if !matched {
			return fmt.Errorf("unknown machine %q", *dot)
		}
		return nil
	}

	opts := speclint.DefaultOptions()
	if *depth > 0 {
		opts.ProductDepth = *depth
	}
	if *witness {
		return printWitnesses(specs, opts)
	}
	// The first len(SystemSpecs) specs are the communicating triple;
	// the standalone detectors that follow are linted per-machine
	// only.
	findings := speclint.LintAll(specs, len(ids.SystemSpecs(cfg)), opts)

	for _, s := range specs {
		fmt.Printf("%-16s states=%-2d transitions=%-3d attack=%d final=%d\n",
			s.Name, len(s.States()), len(s.Transitions()),
			countIf(s, s.IsAttack), countIf(s, s.IsFinal))
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Println("finding:", f)
			if len(f.Witness) > 0 {
				fmt.Println("  witness:", speclint.FormatWitness(f.Witness))
			}
		}
		return fmt.Errorf("%d speclint finding(s)", len(findings))
	}
	fmt.Println("speclint: all machines and the communicating system are clean")
	return nil
}

// printWitnesses shows, for every attack state of every machine, the
// shortest event sequence that reaches it — the counterexample a
// analyst replays to understand what traffic pattern each detection
// corresponds to.
func printWitnesses(specs []*core.Spec, opts speclint.Options) error {
	missing := 0
	for _, s := range specs {
		for _, st := range s.States() {
			if !s.IsAttack(st) {
				continue
			}
			path := speclint.Witness(s, st, opts)
			if path == nil {
				fmt.Printf("%s %s: NO PATH\n", s.Name, st)
				missing++
				continue
			}
			fmt.Printf("%s %s:\n  %s\n", s.Name, st, speclint.FormatWitness(path))
		}
	}
	if missing > 0 {
		return fmt.Errorf("%d attack state(s) without a witness path", missing)
	}
	return nil
}

func countIf(s *core.Spec, pred func(core.State) bool) int {
	n := 0
	for _, st := range s.States() {
		if pred(st) {
			n++
		}
	}
	return n
}
