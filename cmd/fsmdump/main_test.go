package main

import (
	"io"
	"os"
	"testing"
)

func TestVerifyAllMachines(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyWithDeeperProduct(t *testing.T) {
	if err := run([]string{"-depth", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestDOTOutput(t *testing.T) {
	for _, name := range []string{"sip", "rtp-caller", "invite-flood", "all"} {
		if err := run([]string{"-dot", name}); err != nil {
			t.Fatalf("-dot %s: %v", name, err)
		}
	}
	if err := run([]string{"-dot", "nope"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := fn()
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

// The golden equivalence gate: -dot all must print byte-identical
// output whether the specs come from the interpreted builders or are
// reconstructed from specgen's compiled dispatch tables.
func TestDOTBackendEquivalence(t *testing.T) {
	interp := captureStdout(t, func() error { return run([]string{"-dot", "all"}) })
	comp := captureStdout(t, func() error { return run([]string{"-dot", "all", "-backend", "compiled"}) })
	if interp != comp {
		t.Errorf("compiled-backend DOT diverges from interpreted\n--- interpreted ---\n%s\n--- compiled ---\n%s", interp, comp)
	}
	if interp == "" {
		t.Fatal("no DOT output captured")
	}
}

func TestBackendFlagValidation(t *testing.T) {
	if err := run([]string{"-backend", "compiled"}); err == nil {
		t.Fatal("-backend compiled without -dot accepted; lint must stay on the interpreted specs")
	}
	if err := run([]string{"-dot", "sip", "-backend", "bogus"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
