package main

import "testing"

func TestVerifyAllMachines(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyWithDeeperProduct(t *testing.T) {
	if err := run([]string{"-depth", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestDOTOutput(t *testing.T) {
	for _, name := range []string{"sip", "rtp-caller", "invite-flood", "all"} {
		if err := run([]string{"-dot", name}); err != nil {
			t.Fatalf("-dot %s: %v", name, err)
		}
	}
	if err := run([]string{"-dot", "nope"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
}
