package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vids/internal/engine"
	"vids/internal/trace"
)

func writeSynthTrace(t *testing.T, cfg engine.SynthConfig) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "synth.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	for _, en := range engine.Synthesize(cfg) {
		if err := w.Record(en.Packet(), en.At()); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceRunToCompletion drives the daemon end to end on a synthetic
// attack trace at maximum pace: it must detect, drain, report and
// exit on its own.
func TestTraceRunToCompletion(t *testing.T) {
	path := writeSynthTrace(t, engine.SynthConfig{Calls: 10, RTPPerCall: 5, Attacks: true})
	report := filepath.Join(t.TempDir(), "alerts.json")

	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-source", "trace", "-trace", path, "-pace", "0",
		"-shards", "3", "-policy", "block", "-report", report,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "ALERT") {
		t.Errorf("no alerts on stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "vidsd: done:") {
		t.Errorf("no final summary on stderr:\n%s", stderr.String())
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "invite-flood") {
		t.Errorf("report missing expected alert types:\n%s", data)
	}
}

// TestDropPolicyFlag exercises the drop-oldest configuration path.
func TestDropPolicyFlag(t *testing.T) {
	path := writeSynthTrace(t, engine.SynthConfig{Calls: 2, RTPPerCall: 2})
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-source", "trace", "-trace", path, "-pace", "0",
		"-shards", "1", "-queue", "4", "-policy", "drop", "-stats", "0",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestFlagErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-policy", "bogus"},
		{"-source", "bogus"},
		{"-source", "trace"}, // no -trace file
		{"-nope"},
	}
	for _, args := range cases {
		if err := run(args, &out, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
