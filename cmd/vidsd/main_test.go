package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vids/internal/engine"
	"vids/internal/ids"
	"vids/internal/trace"
)

func writeSynthTrace(t *testing.T, cfg engine.SynthConfig) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "synth.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	for _, en := range engine.Synthesize(cfg) {
		if err := w.Record(en.Packet(), en.At()); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceRunToCompletion drives the daemon end to end on a synthetic
// attack trace at maximum pace: it must detect, drain, report and
// exit on its own.
func TestTraceRunToCompletion(t *testing.T) {
	path := writeSynthTrace(t, engine.SynthConfig{Calls: 10, RTPPerCall: 5, Attacks: true})
	report := filepath.Join(t.TempDir(), "alerts.json")

	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-source", "trace", "-trace", path, "-pace", "0",
		"-shards", "3", "-policy", "block", "-report", report,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "ALERT") {
		t.Errorf("no alerts on stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "vidsd: done:") {
		t.Errorf("no final summary on stderr:\n%s", stderr.String())
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "invite-flood") {
		t.Errorf("report missing expected alert types:\n%s", data)
	}
}

// TestEOFDrainFlushesStatsAndReport pins the EOF exit path: when the
// trace source simply runs out (no signal involved), the daemon must
// still announce the drain, print the final statistics line, and
// write the JSON report.
func TestEOFDrainFlushesStatsAndReport(t *testing.T) {
	path := writeSynthTrace(t, engine.SynthConfig{Calls: 4, RTPPerCall: 3})
	report := filepath.Join(t.TempDir(), "alerts.json")

	var stdout, stderr bytes.Buffer
	// -stats 0 disables the periodic reporter, so any stats line on
	// stderr can only come from the final flush.
	err := run([]string{
		"-source", "trace", "-trace", path, "-pace", "0",
		"-shards", "2", "-stats", "0", "-report", report,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "vidsd: source exhausted, draining") {
		t.Errorf("no EOF drain notice:\n%s", out)
	}
	if !strings.Contains(out, "vidsd: ingested=") {
		t.Errorf("final stats line not flushed on EOF:\n%s", out)
	}
	if !strings.Contains(out, "vidsd: done:") {
		t.Errorf("no final summary:\n%s", out)
	}
	if !strings.Contains(out, "vidsd: report written to") {
		t.Errorf("report not announced:\n%s", out)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("report not written on EOF exit: %v", err)
	}
	var doc struct {
		Alerts []ids.Alert  `json:"alerts"`
		Stats  engine.Stats `json:"stats"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("report is not an alert+stats document: %v\n%s", err, data)
	}
	if doc.Alerts == nil {
		t.Errorf("report has no alerts array:\n%s", data)
	}
	if doc.Stats.Ingested == 0 {
		t.Errorf("report stats empty:\n%s", data)
	}
}

// TestLanesRunToCompletion drives the multi-lane ingestion tier end to
// end from the daemon: same trace, -lanes 2, shed policy and the
// widened report. The attack trace must still be fully detected.
func TestLanesRunToCompletion(t *testing.T) {
	path := writeSynthTrace(t, engine.SynthConfig{Calls: 10, RTPPerCall: 5, Attacks: true})
	report := filepath.Join(t.TempDir(), "alerts.json")

	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-source", "trace", "-trace", path, "-pace", "0",
		"-shards", "4", "-lanes", "2", "-policy", "shed",
		"-stats", "0", "-report", report,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "vidsd: 2 lane(s) -> 4 shard(s)") {
		t.Errorf("lane banner missing:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "ALERT") {
		t.Errorf("no alerts on stdout:\n%s", stdout.String())
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Alerts []ids.Alert  `json:"alerts"`
		Stats  engine.Stats `json:"stats"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("report: %v\n%s", err, data)
	}
	if !strings.Contains(string(data), "invite-flood") {
		t.Errorf("report missing expected alert types:\n%s", data)
	}
	if doc.Stats.Dropped != 0 {
		t.Errorf("lossless trace replay dropped %d packets", doc.Stats.Dropped)
	}
}

// TestFastpathCountersSurfaced pins the operator-visible fast-path
// accounting: on a benign media-heavy trace through the lane tier the
// cache must absorb packets, the stderr stats line must carry the
// fp-* counters, and the JSON report must record them. The same trace
// with -fastpath=false must absorb nothing — and detect identically.
func TestFastpathCountersSurfaced(t *testing.T) {
	path := writeSynthTrace(t, engine.SynthConfig{Calls: 4, RTPPerCall: 40})
	report := filepath.Join(t.TempDir(), "alerts.json")

	var stdout, stderr bytes.Buffer
	// A small queue keeps ingestion within a few packets of the shard
	// worker, so flows reach the armable state (no queued escalations)
	// instead of the whole trace being enqueued before any arm lands.
	err := run([]string{
		"-source", "trace", "-trace", path, "-pace", "0",
		"-shards", "1", "-lanes", "1", "-queue", "4",
		"-stats", "0", "-report", report,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "fp-hits=") {
		t.Errorf("stats line missing fast-path counters:\n%s", stderr.String())
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Alerts []ids.Alert  `json:"alerts"`
		Stats  engine.Stats `json:"stats"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("report: %v\n%s", err, data)
	}
	if doc.Stats.FastpathHits == 0 {
		t.Errorf("benign media-heavy trace absorbed nothing: %+v", doc.Stats)
	}
	if got := doc.Stats.FastpathHits + doc.Stats.FastpathMisses + doc.Stats.FastpathEscalations; got == 0 {
		t.Errorf("fast-path counters all zero in report:\n%s", data)
	}

	stdout.Reset()
	stderr.Reset()
	offReport := filepath.Join(t.TempDir(), "alerts-off.json")
	err = run([]string{
		"-source", "trace", "-trace", path, "-pace", "0",
		"-shards", "1", "-lanes", "1", "-queue", "4", "-stats", "0",
		"-fastpath=false", "-report", offReport,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -fastpath=false: %v\nstderr: %s", err, stderr.String())
	}
	offData, err := os.ReadFile(offReport)
	if err != nil {
		t.Fatal(err)
	}
	var offDoc struct {
		Alerts []ids.Alert  `json:"alerts"`
		Stats  engine.Stats `json:"stats"`
	}
	if err := json.Unmarshal(offData, &offDoc); err != nil {
		t.Fatalf("report: %v\n%s", err, offData)
	}
	if offDoc.Stats.FastpathHits != 0 || offDoc.Stats.FastpathMisses != 0 {
		t.Errorf("-fastpath=false still consulted the cache: %+v", offDoc.Stats)
	}
	if len(doc.Alerts) != len(offDoc.Alerts) {
		t.Errorf("alert count diverges across -fastpath: on=%d off=%d", len(doc.Alerts), len(offDoc.Alerts))
	}
}

// TestSRTPFlag: header-only mode must run clean end to end and stay
// silent on a benign trace.
func TestSRTPFlag(t *testing.T) {
	path := writeSynthTrace(t, engine.SynthConfig{Calls: 3, RTPPerCall: 4})
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-source", "trace", "-trace", path, "-pace", "0",
		"-shards", "2", "-lanes", "2", "-srtp", "-stats", "0",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if strings.Contains(stdout.String(), "ALERT") {
		t.Errorf("benign trace raised alerts in -srtp mode:\n%s", stdout.String())
	}
}

// TestDropPolicyFlag exercises the drop-oldest configuration path.
func TestDropPolicyFlag(t *testing.T) {
	path := writeSynthTrace(t, engine.SynthConfig{Calls: 2, RTPPerCall: 2})
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-source", "trace", "-trace", path, "-pace", "0",
		"-shards", "1", "-queue", "4", "-policy", "drop", "-stats", "0",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestFlagErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-policy", "bogus"},
		{"-source", "bogus"},
		{"-source", "trace"}, // no -trace file
		{"-nope"},
	}
	for _, args := range cases {
		if err := run(args, &out, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
