// Command vidsd runs vids as an online detection daemon: the sharded
// concurrent engine (internal/engine) fed from a packet source, with
// alerts streamed to stdout as they fire and pipeline statistics
// reported periodically on stderr.
//
// Two sources are available:
//
//   - trace: replay a captured trace file (cmd/simnet -trace or
//     cmd/vids -report companions) at a configurable pace. -pace 1
//     reproduces the capture timeline in real time, -pace 0 pushes as
//     fast as the engine accepts — the offline-analysis mode.
//   - udp: bind real UDP sockets for SIP and media (RTCP is
//     demultiplexed off the media socket per RFC 5761) and analyze
//     whatever arrives, live.
//
// With -lanes N (N > 0) packets enter through the multi-lane
// ingestion tier (internal/ingress): parsing moves onto the shard
// workers, flood windows onto the lanes, and with -source udp the
// -listeners flag binds several SO_REUSEPORT socket pairs feeding the
// lanes concurrently. -lanes 0 keeps the classic serial router path.
// The lane tier consults the per-flow RTP validation cache and absorbs
// in-profile media before shard enqueue; -fastpath=false disables the
// cache so every packet takes the slow path.
//
// Usage:
//
//	vidsd -source trace -trace capture.jsonl [-pace 1] [-shards N]
//	vidsd -source udp [-sip :5060] [-rtp :20000] [-policy drop]
//	vidsd -source udp -lanes 4 -listeners 2 [-policy shed] [-srtp]
//
// The daemon drains and exits when the source is exhausted or on
// SIGINT/SIGTERM: queued packets are analyzed, final statistics are
// printed, and -report writes the alert log plus the final pipeline
// counters as JSON.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vids/internal/engine"
	"vids/internal/ids"
	"vids/internal/ingress"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vidsd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vidsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		shards    = fs.Int("shards", 0, "detection shard workers (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 0, "per-shard queue depth (0 = 1024)")
		policy    = fs.String("policy", "block", "full-queue policy: block (lossless), drop (drop-oldest) or shed (media before signaling)")
		lanes     = fs.Int("lanes", 0, "ingestion lanes; 0 = classic serial router path")
		listeners = fs.Int("listeners", 1, "UDP socket pairs, SO_REUSEPORT permitting (source=udp, lanes>0)")
		srtp      = fs.Bool("srtp", false, "SRTP-degraded mode: inspect only cleartext RTP headers, skip media payloads and RTCP")
		fastpath  = fs.Bool("fastpath", true, "per-flow RTP validation cache in front of the shards (consulted by the lane tier); false = every packet takes the slow path")
		compiled  = fs.Bool("compiled", true, "run the specgen-compiled EFSM backend (false = interpreted reference walker)")
		source    = fs.String("source", "trace", "packet source: trace or udp")
		tracePath = fs.String("trace", "", "trace file to replay (source=trace)")
		pace      = fs.Float64("pace", 1, "replay speed multiple; 0 = as fast as possible (source=trace)")
		sipAddr   = fs.String("sip", ":5060", "SIP listen address (source=udp)")
		rtpAddr   = fs.String("rtp", ":20000", "media listen address (source=udp)")
		advertise = fs.String("advertise", "", "host recorded as packet destination; match your SDP (source=udp)")
		statsIvl  = fs.Duration("stats", 10*time.Second, "statistics reporting interval (0 disables)")
		report    = fs.String("report", "", "write the alert log and final counters (JSON) to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := engine.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		IDS:        ids.DefaultConfig(),
		OnAlert: func(a ids.Alert) {
			fmt.Fprintf(stdout, "ALERT %s\n", a)
		},
	}
	cfg.IDS.MediaHeaderOnly = *srtp
	cfg.DisableFastpath = !*fastpath
	if !*compiled {
		cfg.IDS.Backend = ids.BackendInterpreted
	}
	switch *policy {
	case "block":
		cfg.Policy = engine.Block
	case "drop":
		cfg.Policy = engine.DropOldest
	case "shed":
		cfg.Policy = engine.Shed
	default:
		return fmt.Errorf("unknown -policy %q (want block, drop or shed)", *policy)
	}
	if *lanes < 0 {
		return fmt.Errorf("-lanes must be >= 0")
	}

	// The tier in front of the engine: with -lanes 0 the engine's own
	// serial router ingests; otherwise the multi-lane tier does, and
	// stats/alerts/drain all go through it.
	var (
		sink   engine.Sink
		stats  func() engine.Stats
		alerts func() []ids.Alert
		drain  func() error
		ing    *ingress.Ingress
	)
	if *lanes > 0 {
		ing = ingress.New(ingress.Config{Lanes: *lanes, Engine: cfg})
		sink, stats, alerts, drain = ing, ing.Stats, ing.Alerts, ing.Close
		fmt.Fprintf(stderr, "vidsd: %d lane(s) -> %d shard(s), queue %s, source %s\n",
			ing.Lanes(), ing.Engine().Shards(), cfg.Policy, *source)
	} else {
		e := engine.New(cfg)
		sink, stats, alerts, drain = e, e.Stats, e.Alerts, e.Close
		fmt.Fprintf(stderr, "vidsd: %d shard(s), queue %s, source %s\n",
			e.Shards(), cfg.Policy, *source)
	}

	var runSrc func(context.Context) error
	switch *source {
	case "trace":
		if *tracePath == "" {
			return fmt.Errorf("source=trace needs -trace FILE")
		}
		src := &engine.TraceSource{Path: *tracePath, Pace: *pace}
		runSrc = func(ctx context.Context) error { return src.Run(ctx, sink) }
	case "udp":
		if ing != nil {
			ul := &ingress.UDPListeners{
				SIPAddr: *sipAddr, RTPAddr: *rtpAddr,
				AdvertiseHost: *advertise, Listeners: *listeners,
			}
			runSrc = func(ctx context.Context) error { return ul.Run(ctx, ing) }
		} else {
			src := &engine.UDPSource{SIPAddr: *sipAddr, RTPAddr: *rtpAddr, AdvertiseHost: *advertise}
			runSrc = func(ctx context.Context) error { return src.Run(ctx, sink) }
		}
	default:
		return fmt.Errorf("unknown -source %q (want trace or udp)", *source)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic stats on stderr, so alert output on stdout stays clean
	// for piping.
	statsDone := make(chan struct{})
	if *statsIvl > 0 {
		go func() {
			defer close(statsDone)
			t := time.NewTicker(*statsIvl)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					printStats(stderr, stats())
				case <-ctx.Done():
					return
				}
			}
		}()
	} else {
		close(statsDone)
	}

	srcErr := runSrc(ctx)
	switch {
	case errors.Is(srcErr, context.Canceled):
		fmt.Fprintln(stderr, "vidsd: interrupted, draining")
		srcErr = nil
	case srcErr == nil:
		fmt.Fprintln(stderr, "vidsd: source exhausted, draining")
	}
	stop()
	<-statsDone
	closeErr := drain()

	// The final counters and the report flush no matter how the run
	// ended — source EOF, signal, or a drain failure. An operator
	// diagnosing a failed run needs the numbers and the alert log most
	// of all, and a clean EOF exit must leave the same artifacts a
	// signal-triggered drain does.
	finalStats := stats()
	printStats(stderr, finalStats)
	alertLog := alerts()
	fmt.Fprintf(stderr, "vidsd: done: %d alert(s)\n", len(alertLog))
	var reportErr error
	if *report != "" {
		if reportErr = writeReport(alertLog, finalStats, *report); reportErr == nil {
			fmt.Fprintf(stderr, "vidsd: report written to %s\n", *report)
		}
	}
	return errors.Join(srcErr, closeErr, reportErr)
}

func printStats(w io.Writer, st engine.Stats) {
	fmt.Fprintf(w, "vidsd: ingested=%d processed=%d dropped=%d dropped-media=%d dropped-signaling=%d absorbed=%d ignored=%d parse-errors=%d alerts=%d pps=%.0f fp-hits=%d fp-misses=%d fp-escalations=%d fp-invalidations=%d\n",
		st.Ingested, st.Processed, st.Dropped, st.DroppedMedia, st.DroppedSignaling,
		st.Absorbed, st.Ignored, st.ParseErrors, st.Alerts, st.PacketsPerSec,
		st.FastpathHits, st.FastpathMisses, st.FastpathEscalations, st.FastpathInvalidations)
	for i, sh := range st.Shards {
		if sh.Depth > 0 {
			fmt.Fprintf(w, "vidsd:   shard %d backlog: %d queued\n", i, sh.Depth)
		}
	}
}

// reportDoc is the on-disk report shape: the alert log plus the final
// pipeline counters, so a drained run documents its own backpressure
// behavior (what was shed, and of which tier) next to what it
// detected.
type reportDoc struct {
	Alerts []ids.Alert  `json:"alerts"`
	Stats  engine.Stats `json:"stats"`
}

func writeReport(alerts []ids.Alert, st engine.Stats, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if alerts == nil {
		alerts = []ids.Alert{}
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(reportDoc{Alerts: alerts, Stats: st})
}
