package main

import (
	"io"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: vids
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSIPParse      	    2000	      3113 ns/op	 147.14 MB/s	    1448 B/op	      16 allocs/op
BenchmarkIDSProcessRTP 	    2000	       324.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig9CallSetup 	       2	 128489810 ns/op	         0.4969 setup-overhead-ms
PASS
ok  	vids	0.029s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Package != "vids" {
		t.Errorf("header = %q/%q/%q", rep.GOOS, rep.GOARCH, rep.Package)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}

	sip := rep.Benchmarks[0]
	if sip.Name != "BenchmarkSIPParse" || sip.Iterations != 2000 {
		t.Errorf("sip = %+v", sip)
	}
	if sip.NsPerOp != 3113 || sip.BytesPerOp != 1448 || sip.AllocsPerOp != 16 {
		t.Errorf("sip measurements = %+v", sip)
	}
	if sip.MBPerSec != 147.14 {
		t.Errorf("sip MB/s = %v", sip.MBPerSec)
	}

	idsRTP := rep.Benchmarks[1]
	if idsRTP.BytesPerOp != 0 || idsRTP.AllocsPerOp != 0 || idsRTP.NsPerOp != 324.2 {
		t.Errorf("ids rtp = %+v", idsRTP)
	}

	fig9 := rep.Benchmarks[2]
	if got := fig9.Metrics["setup-overhead-ms"]; got != 0.4969 {
		t.Errorf("custom metric = %v", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"BenchmarkX\n",               // no iteration count
		"BenchmarkX 10 5\n",          // value without unit
		"BenchmarkX ten 5 ns/op\n",   // bad iteration count
		"BenchmarkX 10 fast ns/op\n", // bad value
	} {
		if _, err := parse(strings.NewReader(in)); err == nil {
			t.Errorf("parse(%q) accepted malformed input", in)
		}
	}
}

func TestMerge(t *testing.T) {
	a := &Report{GOOS: "linux", GOARCH: "amd64", Package: "vids", CPU: "x",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA", AllocsPerOp: 3},
			{Name: "BenchmarkB", AllocsPerOp: 7},
		}}
	b := &Report{GOOS: "linux",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkB", AllocsPerOp: 5}, // rerun replaces the earlier entry
			{Name: "BenchmarkC", AllocsPerOp: 1},
		}}
	out := merge([]*Report{a, b})
	if out.GOOS != "linux" || out.Package != "vids" {
		t.Errorf("header = %+v", out)
	}
	if len(out.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(out.Benchmarks))
	}
	names := []string{out.Benchmarks[0].Name, out.Benchmarks[1].Name, out.Benchmarks[2].Name}
	if names[0] != "BenchmarkA" || names[1] != "BenchmarkB" || names[2] != "BenchmarkC" {
		t.Errorf("order = %v", names)
	}
	if out.Benchmarks[1].AllocsPerOp != 5 {
		t.Errorf("rerun did not replace: %+v", out.Benchmarks[1])
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSIPParse-8":                   "BenchmarkSIPParse",
		"BenchmarkEngineThroughput/shards=4-16": "BenchmarkEngineThroughput/shards=4",
		"BenchmarkNoSuffix":                     "BenchmarkNoSuffix",
		"BenchmarkDash-x":                       "BenchmarkDash-x",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	baseline := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkZeroAlloc-4", AllocsPerOp: 0},
		{Name: "BenchmarkSmall-4", AllocsPerOp: 18},
		{Name: "BenchmarkGone-4", AllocsPerOp: 2},
	}}

	t.Run("within tolerance", func(t *testing.T) {
		fresh := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkZeroAlloc-8", AllocsPerOp: 0},
			{Name: "BenchmarkSmall-8", AllocsPerOp: 19}, // +5.6% < 10%
			{Name: "BenchmarkGone-8", AllocsPerOp: 2},
		}}
		var out strings.Builder
		if failures, _ := compare(baseline, fresh, &out); len(failures) != 0 {
			t.Errorf("unexpected failures: %v", failures)
		}
		if !strings.Contains(out.String(), "BenchmarkSmall") {
			t.Errorf("no per-benchmark report:\n%s", out.String())
		}
	})

	t.Run("regression past tolerance", func(t *testing.T) {
		fresh := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkZeroAlloc-8", AllocsPerOp: 0},
			{Name: "BenchmarkSmall-8", AllocsPerOp: 21}, // +16.7%
			{Name: "BenchmarkGone-8", AllocsPerOp: 2},
		}}
		var out strings.Builder
		failures, _ := compare(baseline, fresh, &out)
		if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkSmall") {
			t.Errorf("failures = %v", failures)
		}
	})

	t.Run("zero baseline stays zero", func(t *testing.T) {
		fresh := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkZeroAlloc-8", AllocsPerOp: 1},
			{Name: "BenchmarkSmall-8", AllocsPerOp: 18},
			{Name: "BenchmarkGone-8", AllocsPerOp: 2},
		}}
		failures, _ := compare(baseline, fresh, &strings.Builder{})
		if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkZeroAlloc") {
			t.Errorf("failures = %v", failures)
		}
	})

	t.Run("pinned benchmark missing from fresh run", func(t *testing.T) {
		fresh := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkZeroAlloc-8", AllocsPerOp: 0},
			{Name: "BenchmarkSmall-8", AllocsPerOp: 18},
		}}
		failures, _ := compare(baseline, fresh, &strings.Builder{})
		if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkGone") {
			t.Errorf("failures = %v", failures)
		}
	})
}

func TestParseSkipsNoise(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok \tvids\t0.1s\n--- BENCH: x\nBenchmarkY 5 2 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkY" {
		t.Fatalf("rep = %+v", rep)
	}
}

// TestCompareNsWarning pins the advisory time gate: ns/op growth past
// 25% warns without failing, growth under it stays silent, and an
// allocs/op regression still fails regardless of timing.
func TestCompareNsWarning(t *testing.T) {
	baseline := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkHot-4", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "BenchmarkWarm-4", NsPerOp: 200, AllocsPerOp: 4},
	}}

	t.Run("slow but allocation-clean warns only", func(t *testing.T) {
		fresh := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkHot-8", NsPerOp: 130, AllocsPerOp: 2},  // +30% ns/op
			{Name: "BenchmarkWarm-8", NsPerOp: 240, AllocsPerOp: 4}, // +20% ns/op
		}}
		var out strings.Builder
		failures, warnings := compare(baseline, fresh, &out)
		if len(failures) != 0 {
			t.Errorf("unexpected failures: %v", failures)
		}
		if len(warnings) != 1 || !strings.Contains(warnings[0], "BenchmarkHot") {
			t.Errorf("warnings = %v, want one about BenchmarkHot", warnings)
		}
		if !strings.Contains(out.String(), "slow") {
			t.Errorf("report does not mark the slow benchmark:\n%s", out.String())
		}
	})

	t.Run("alloc regression outranks the time warning", func(t *testing.T) {
		fresh := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkHot-8", NsPerOp: 130, AllocsPerOp: 3}, // both worse
			{Name: "BenchmarkWarm-8", NsPerOp: 200, AllocsPerOp: 4},
		}}
		failures, warnings := compare(baseline, fresh, &strings.Builder{})
		if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkHot") {
			t.Errorf("failures = %v, want one about BenchmarkHot", failures)
		}
		if len(warnings) != 0 {
			t.Errorf("warnings = %v, want none (the failure already reports the benchmark)", warnings)
		}
	})

	t.Run("zero-ns baseline never divides", func(t *testing.T) {
		zb := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkNew-4", AllocsPerOp: 1}}}
		fresh := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkNew-8", NsPerOp: 50, AllocsPerOp: 1}}}
		failures, warnings := compare(zb, fresh, &strings.Builder{})
		if len(failures) != 0 || len(warnings) != 0 {
			t.Errorf("failures = %v, warnings = %v, want none", failures, warnings)
		}
	})
}

func TestScalingCheck(t *testing.T) {
	mk := func(cores, s1, s4 float64) *Report {
		return &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkEngineThroughput/shards=1-8",
				Metrics: map[string]float64{"pkts/sec": s1, "cores": cores}},
			{Name: "BenchmarkEngineThroughput/shards=4-8",
				Metrics: map[string]float64{"pkts/sec": s4, "cores": cores}},
		}}
	}
	num := "BenchmarkEngineThroughput/shards=4"
	den := "BenchmarkEngineThroughput/shards=1"

	t.Run("scaling holds", func(t *testing.T) {
		var out strings.Builder
		err := scalingCheck(mk(8, 100000, 310000), num, den, "pkts/sec", 2, 4, &out)
		if err != nil {
			t.Fatalf("unexpected failure: %v", err)
		}
		if !strings.Contains(out.String(), "scaling ok") {
			t.Errorf("no verdict line:\n%s", out.String())
		}
	})

	t.Run("re-serialized pipeline fails", func(t *testing.T) {
		// The old single-router failure mode: shards=4 flat at shards=1.
		err := scalingCheck(mk(8, 670419, 663984), num, den, "pkts/sec", 2, 4, io.Discard)
		if err == nil {
			t.Fatal("flat scaling accepted")
		}
		if !strings.Contains(err.Error(), "scaling floor violated") {
			t.Errorf("wrong error: %v", err)
		}
	})

	t.Run("too few cores skips", func(t *testing.T) {
		var out strings.Builder
		err := scalingCheck(mk(1, 670419, 663984), num, den, "pkts/sec", 2, 4, &out)
		if err != nil {
			t.Fatalf("single-core run must skip, got: %v", err)
		}
		if !strings.Contains(out.String(), "skipped") {
			t.Errorf("no skip notice:\n%s", out.String())
		}
	})

	t.Run("missing benchmark fails", func(t *testing.T) {
		rep := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkEngineThroughput/shards=1-8",
				Metrics: map[string]float64{"pkts/sec": 1, "cores": 8}},
		}}
		if err := scalingCheck(rep, num, den, "pkts/sec", 2, 4, io.Discard); err == nil {
			t.Fatal("missing numerator accepted")
		}
	})

	t.Run("missing metric fails", func(t *testing.T) {
		rep := mk(8, 100000, 310000)
		delete(rep.Benchmarks[1].Metrics, "pkts/sec")
		if err := scalingCheck(rep, num, den, "pkts/sec", 2, 4, io.Discard); err == nil {
			t.Fatal("metric-less numerator accepted")
		}
	})
}
