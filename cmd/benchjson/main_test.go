package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: vids
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSIPParse      	    2000	      3113 ns/op	 147.14 MB/s	    1448 B/op	      16 allocs/op
BenchmarkIDSProcessRTP 	    2000	       324.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig9CallSetup 	       2	 128489810 ns/op	         0.4969 setup-overhead-ms
PASS
ok  	vids	0.029s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Package != "vids" {
		t.Errorf("header = %q/%q/%q", rep.GOOS, rep.GOARCH, rep.Package)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}

	sip := rep.Benchmarks[0]
	if sip.Name != "BenchmarkSIPParse" || sip.Iterations != 2000 {
		t.Errorf("sip = %+v", sip)
	}
	if sip.NsPerOp != 3113 || sip.BytesPerOp != 1448 || sip.AllocsPerOp != 16 {
		t.Errorf("sip measurements = %+v", sip)
	}
	if sip.MBPerSec != 147.14 {
		t.Errorf("sip MB/s = %v", sip.MBPerSec)
	}

	idsRTP := rep.Benchmarks[1]
	if idsRTP.BytesPerOp != 0 || idsRTP.AllocsPerOp != 0 || idsRTP.NsPerOp != 324.2 {
		t.Errorf("ids rtp = %+v", idsRTP)
	}

	fig9 := rep.Benchmarks[2]
	if got := fig9.Metrics["setup-overhead-ms"]; got != 0.4969 {
		t.Errorf("custom metric = %v", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"BenchmarkX\n",               // no iteration count
		"BenchmarkX 10 5\n",          // value without unit
		"BenchmarkX ten 5 ns/op\n",   // bad iteration count
		"BenchmarkX 10 fast ns/op\n", // bad value
	} {
		if _, err := parse(strings.NewReader(in)); err == nil {
			t.Errorf("parse(%q) accepted malformed input", in)
		}
	}
}

func TestParseSkipsNoise(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok \tvids\t0.1s\n--- BENCH: x\nBenchmarkY 5 2 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkY" {
		t.Fatalf("rep = %+v", rep)
	}
}
