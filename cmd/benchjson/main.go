// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so the benchmark regression harness (`make
// bench`) can archive machine-readable numbers — ns/op, B/op,
// allocs/op and any custom ReportMetric units — per run.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH.json
//
// It reads the benchmark text from stdin and writes JSON to stdout,
// exiting non-zero when the input contains no benchmark results (an
// empty report almost always means the bench invocation itself
// failed).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	// Metrics holds custom b.ReportMetric units, keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document: the run's environment header plus
// every benchmark result in input order.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Package    string      `json:"package,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes `go test -bench` output. Unrecognized lines (PASS,
// ok, test log noise) are skipped: benchmark text is a stream meant
// for humans and only its Benchmark* lines carry results.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseResult(line)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %v", err)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseResult decodes one result line: the benchmark name, the
// iteration count, then "value unit" pairs.
func parseResult(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed result line %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q in %q: %v", f[i], line, err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = int64(val)
		case "allocs/op":
			b.AllocsPerOp = int64(val)
		case "MB/s":
			b.MBPerSec = val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results in input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
