// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so the benchmark regression harness (`make
// bench`) can archive machine-readable numbers — ns/op, B/op,
// allocs/op and any custom ReportMetric units — per run.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH.json
//	benchjson -merge run1.json run2.json > BENCH.json
//	benchjson -compare BENCH.json BENCH.fresh.json
//	benchjson -scaling BENCH.json BenchmarkEngineThroughput/shards=4 BenchmarkEngineThroughput/shards=1
//
// The default mode reads benchmark text from stdin and writes JSON to
// stdout, exiting non-zero when the input contains no benchmark
// results (an empty report almost always means the bench invocation
// itself failed). -merge combines several JSON reports into one (a
// later run of the same benchmark replaces the earlier entry), so a
// bench target built from multiple `go test -bench` invocations still
// archives a single file. -compare diffs a fresh report against a
// committed baseline: allocs/op is the hard gate (exit non-zero on a
// >10% regression in any benchmark the baseline pins), while ns/op
// growth past 25% only prints a warning — wall-clock time varies
// across machines, allocation counts do not. -scaling asserts a
// throughput-scaling floor between two benchmarks of one report
// (shards=4 must beat shards=1 by -scale-ratio in -scale-metric),
// skipping with a notice when the run's recorded "cores" metric shows
// the machine cannot exhibit parallel speedup.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	// Metrics holds custom b.ReportMetric units, keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document: the run's environment header plus
// every benchmark result in input order.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Package    string      `json:"package,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes `go test -bench` output. Unrecognized lines (PASS,
// ok, test log noise) are skipped: benchmark text is a stream meant
// for humans and only its Benchmark* lines carry results.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseResult(line)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %v", err)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseResult decodes one result line: the benchmark name, the
// iteration count, then "value unit" pairs.
func parseResult(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed result line %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q in %q: %v", f[i], line, err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = int64(val)
		case "allocs/op":
			b.AllocsPerOp = int64(val)
		case "MB/s":
			b.MBPerSec = val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}

// merge combines reports in argument order: the environment header
// comes from the first report that has one, and a later result for a
// benchmark already seen replaces the earlier entry in place — the
// rerun is the measurement of record.
func merge(reports []*Report) *Report {
	out := &Report{}
	index := make(map[string]int)
	for _, rep := range reports {
		if out.GOOS == "" {
			out.GOOS, out.GOARCH, out.Package, out.CPU = rep.GOOS, rep.GOARCH, rep.Package, rep.CPU
		}
		for _, b := range rep.Benchmarks {
			if i, seen := index[b.Name]; seen {
				out.Benchmarks[i] = b
				continue
			}
			index[b.Name] = len(out.Benchmarks)
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	return out
}

// regressionTolerance is how much allocs/op may grow over the pinned
// baseline before compare fails the run.
const regressionTolerance = 0.10

// nsTolerance is how much ns/op may grow before compare *warns*.
// Wall-clock time is noisy across machines and CI runners, so time
// regressions are advisory; the deterministic allocs/op count stays
// the hard gate.
const nsTolerance = 0.25

// baseName strips the -N GOMAXPROCS suffix `go test` appends to
// benchmark names, so a baseline recorded on one machine matches a
// fresh run on another core count.
func baseName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compare diffs a fresh report against every benchmark the baseline
// pins, writing one line per comparison. It returns the allocs/op
// regressions past tolerance as failures (a pinned benchmark missing
// from the fresh run counts too: a silently-skipped gate is no gate)
// and ns/op growth past nsTolerance as advisory warnings — time is
// too machine-dependent to fail on, but worth a nudge.
func compare(baseline, fresh *Report, w io.Writer) (failures, warnings []string) {
	freshBy := make(map[string]Benchmark)
	for _, b := range fresh.Benchmarks {
		freshBy[baseName(b.Name)] = b
	}
	for _, base := range baseline.Benchmarks {
		name := baseName(base.Name)
		f, ok := freshBy[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: pinned in baseline but missing from fresh run", name))
			continue
		}
		limit := float64(base.AllocsPerOp) * (1 + regressionTolerance)
		status := "ok"
		if float64(f.AllocsPerOp) > limit {
			status = "REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: allocs/op %d -> %d (budget %.1f)", name, base.AllocsPerOp, f.AllocsPerOp, limit))
		} else if base.NsPerOp > 0 && f.NsPerOp > base.NsPerOp*(1+nsTolerance) {
			status = "slow"
			warnings = append(warnings,
				fmt.Sprintf("%s: ns/op %.1f -> %.1f (+%.0f%%, advisory threshold +%.0f%%)",
					name, base.NsPerOp, f.NsPerOp, 100*(f.NsPerOp-base.NsPerOp)/base.NsPerOp, 100*nsTolerance))
		}
		fmt.Fprintf(w, "%-50s allocs/op %6d -> %6d  %s\n", name, base.AllocsPerOp, f.AllocsPerOp, status)
	}
	return failures, warnings
}

// scalingCheck enforces a throughput-scaling floor between two
// benchmarks of one report: the numerator's metric must be at least
// ratio times the denominator's. It is the gate that keeps the
// multi-lane ingestion tier honest — if the sharded pipeline ever
// re-serializes (the failure mode the old single-router design had),
// shards=4 collapses to shards=1 throughput and this check fails the
// run. Machines without enough cores to exhibit parallel speedup
// cannot measure the property at all, so when the numerator's "cores"
// metric is below minCores the check skips with a notice instead of
// producing a meaningless verdict.
func scalingCheck(rep *Report, numName, denName, metric string, ratio, minCores float64, w io.Writer) error {
	find := func(name string) (Benchmark, bool) {
		for _, b := range rep.Benchmarks {
			if baseName(b.Name) == name {
				return b, true
			}
		}
		return Benchmark{}, false
	}
	num, ok := find(numName)
	if !ok {
		return fmt.Errorf("benchjson: scaling numerator %q not in report", numName)
	}
	den, ok := find(denName)
	if !ok {
		return fmt.Errorf("benchjson: scaling denominator %q not in report", denName)
	}
	if cores, ok := num.Metrics["cores"]; ok && cores < minCores {
		fmt.Fprintf(w, "benchjson: scaling check skipped: run recorded %.0f core(s), need >= %.0f to measure parallel speedup\n",
			cores, minCores)
		return nil
	}
	nv, ok := num.Metrics[metric]
	if !ok || nv <= 0 {
		return fmt.Errorf("benchjson: %s has no %s metric", numName, metric)
	}
	dv, ok := den.Metrics[metric]
	if !ok || dv <= 0 {
		return fmt.Errorf("benchjson: %s has no %s metric", denName, metric)
	}
	got := nv / dv
	if got < ratio {
		return fmt.Errorf("benchjson: scaling floor violated: %s %s = %.0f vs %s = %.0f — ratio %.2fx < required %.2fx",
			metric, numName, nv, denName, dv, got, ratio)
	}
	fmt.Fprintf(w, "benchjson: scaling ok: %s %.0f / %.0f = %.2fx (floor %.2fx)\n",
		metric, nv, dv, got, ratio)
	return nil
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %v", path, err)
	}
	return rep, nil
}

func writeJSON(rep *Report, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	mergeMode := flag.Bool("merge", false, "merge the JSON reports given as arguments into one on stdout")
	compareMode := flag.Bool("compare", false, "compare allocs/op: BASELINE.json FRESH.json; exit 1 on >10% regression")
	scalingMode := flag.Bool("scaling", false, "scaling floor: REPORT.json NUMERATOR DENOMINATOR; exit 1 when the metric ratio is below -scale-ratio")
	scaleMetric := flag.String("scale-metric", "pkts/sec", "custom metric the -scaling check compares")
	scaleRatio := flag.Float64("scale-ratio", 2, "minimum NUMERATOR/DENOMINATOR metric ratio for -scaling")
	scaleMinCores := flag.Float64("scale-min-cores", 4, "skip -scaling when the run's recorded 'cores' metric is below this")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch {
	case *mergeMode:
		if flag.NArg() < 1 {
			fail(fmt.Errorf("benchjson: -merge needs at least one report file"))
		}
		reports := make([]*Report, 0, flag.NArg())
		for _, path := range flag.Args() {
			rep, err := loadReport(path)
			if err != nil {
				fail(err)
			}
			reports = append(reports, rep)
		}
		if err := writeJSON(merge(reports), os.Stdout); err != nil {
			fail(err)
		}
	case *scalingMode:
		if flag.NArg() != 3 {
			fail(fmt.Errorf("benchjson: -scaling needs REPORT.json NUMERATOR DENOMINATOR"))
		}
		rep, err := loadReport(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		if err := scalingCheck(rep, flag.Arg(1), flag.Arg(2),
			*scaleMetric, *scaleRatio, *scaleMinCores, os.Stdout); err != nil {
			fail(err)
		}
	case *compareMode:
		if flag.NArg() != 2 {
			fail(fmt.Errorf("benchjson: -compare needs exactly BASELINE.json FRESH.json"))
		}
		baseline, err := loadReport(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		fresh, err := loadReport(flag.Arg(1))
		if err != nil {
			fail(err)
		}
		failures, warnings := compare(baseline, fresh, os.Stdout)
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "benchjson: warning: "+w)
		}
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d allocation regression(s) vs %s:\n", len(failures), flag.Arg(0))
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "  "+f)
			}
			os.Exit(1)
		}
	default:
		rep, err := parse(os.Stdin)
		if err != nil {
			fail(err)
		}
		if len(rep.Benchmarks) == 0 {
			fail(fmt.Errorf("benchjson: no benchmark results in input"))
		}
		if err := writeJSON(rep, os.Stdout); err != nil {
			fail(err)
		}
	}
}
