// Command specgen compiles the interpreted EFSM specifications of
// internal/ids into the dense transition tables of internal/idsgen.
//
// The generator loads ids.Specs (the SIP machine, the two RTP
// direction machines, the two windowed flood counters and the
// standalone spam monitor), flattens each into a [state][event] cell
// table in the exact candidate order the interpreted core.Machine.Step
// walks, and emits internal/idsgen/tables_gen.go: the tables plus one
// guard/action dispatch switch per machine family. The guard and
// action bodies themselves are handwritten in internal/idsgen; the
// generated switches reference them by structural name
// (<family>Guard_<FROM>_<event>_<cellIndex>), so any structural spec
// change regenerates into names that fail to compile until the
// handwritten semantics are brought back in line.
//
// Twin machines (rtp-caller/rtp-callee, invite-flood/response-flood)
// share one dispatch family: the generator asserts the twins are
// isomorphic to the family representative and reuses its transition
// indices, canonicalizing the flood twins' counted event to "data".
//
// Usage:
//
//	specgen [-out internal/idsgen/tables_gen.go]   regenerate
//	specgen -check                                 fail if committed code is stale
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/format"
	"os"
	"sort"
	"strings"

	"vids/internal/core"
	"vids/internal/ids"
)

// family groups machines that share one dispatch switch and one set of
// handwritten guard/action bodies.
type family struct {
	key     string // dispatch prefix: sip, rtp, flood, spam
	machine string // compiled machine type in internal/idsgen
	args    string // typed-payload type in internal/idsgen
}

var families = map[string]*family{
	"sip":   {key: "sip", machine: "SIPMachine", args: "SIPArgs"},
	"rtp":   {key: "rtp", machine: "RTPMachine", args: "RTPArgs"},
	"flood": {key: "flood", machine: "FloodMachine", args: "FloodArgs"},
	"spam":  {key: "spam", machine: "SpamMachine", args: "RTPArgs"},
}

// specFamily classifies a spec by its registered name; an unknown name
// is a hard error so a renamed or added machine cannot silently skip
// compilation.
func specFamily(name string) (fam string, tblVar string, rep bool, err error) {
	switch name {
	case "sip":
		return "sip", "tblSIP", true, nil
	case "rtp-caller":
		return "rtp", "tblRTPCaller", true, nil
	case "rtp-callee":
		return "rtp", "tblRTPCallee", false, nil
	case "invite-flood":
		return "flood", "tblInviteFlood", true, nil
	case "response-flood":
		return "flood", "tblRespFlood", false, nil
	case "rtp-spam":
		return "spam", "tblSpam", true, nil
	}
	return "", "", false, fmt.Errorf("specgen: unknown spec %q (teach specFamily about it)", name)
}

// cell is one compiled transition before emission.
type cell struct {
	to      int
	fn      int
	guarded bool
	action  bool
	label   string
}

// model is one machine's flattened table.
type model struct {
	name    string
	tblVar  string
	famKey  string
	rep     bool
	states  []core.State
	events  []string
	initial int
	final   []bool
	attack  []bool
	cells   [][][]cell
}

func buildModel(spec *core.Spec, tblVar, famKey string, rep bool) (*model, error) {
	m := &model{name: spec.Name, tblVar: tblVar, famKey: famKey, rep: rep}
	m.states = spec.States()
	stateIx := make(map[core.State]int, len(m.states))
	for i, st := range m.states {
		stateIx[st] = i
	}
	if len(m.states) > 255 {
		return nil, fmt.Errorf("specgen: %s: %d states overflow the uint8 table index", spec.Name, len(m.states))
	}
	init, ok := stateIx[spec.Initial]
	if !ok {
		return nil, fmt.Errorf("specgen: %s: initial state %q not in States()", spec.Name, spec.Initial)
	}
	m.initial = init

	seen := make(map[string]bool)
	for _, t := range spec.Transitions() {
		if !seen[t.Event] {
			seen[t.Event] = true
			m.events = append(m.events, t.Event)
		}
	}
	sort.Strings(m.events)
	eventIx := make(map[string]int, len(m.events))
	for i, ev := range m.events {
		eventIx[ev] = i
	}

	m.final = make([]bool, len(m.states))
	m.attack = make([]bool, len(m.states))
	for i, st := range m.states {
		m.final[i] = spec.IsFinal(st)
		m.attack[i] = spec.IsAttack(st)
	}

	m.cells = make([][][]cell, len(m.states))
	for i := range m.cells {
		m.cells[i] = make([][]cell, len(m.events))
	}
	// Transitions() yields (sorted from, sorted event, insertion order):
	// appending preserves the interpreter's in-cell candidate order.
	for _, t := range spec.Transitions() {
		si, ei := stateIx[t.From], eventIx[t.Event]
		m.cells[si][ei] = append(m.cells[si][ei], cell{
			to:      stateIx[t.To],
			guarded: t.Guard != nil,
			action:  t.Do != nil,
			label:   t.Label,
		})
	}
	return m, nil
}

// canonEvent maps an event to the name used in dispatch-function
// names. The flood twins count different SIP events through one shared
// counter shape, so their data column canonicalizes to "data".
func canonEvent(famKey, event string) string {
	if famKey == "flood" && event != "timer.T1" {
		return "data"
	}
	return event
}

// assignFns numbers the representative's transitions family-wide in
// table-walk order.
func assignFns(rep *model) error {
	fn := 0
	for si := range rep.cells {
		for ei := range rep.cells[si] {
			for ci := range rep.cells[si][ei] {
				rep.cells[si][ei][ci].fn = fn
				fn++
			}
		}
	}
	if fn > 1<<16-1 {
		return fmt.Errorf("specgen: %s: %d transitions overflow the uint16 dispatch index", rep.name, fn)
	}
	return nil
}

// copyFns asserts twin is isomorphic to its family representative
// (same states, same canonical events, same cell shapes and flags) and
// reuses the representative's transition indices. Labels may differ —
// the twins carry their own alert labels.
func copyFns(rep, twin *model) error {
	if len(twin.states) != len(rep.states) {
		return fmt.Errorf("specgen: %s/%s: state count mismatch (%d vs %d)", rep.name, twin.name, len(rep.states), len(twin.states))
	}
	for i := range rep.states {
		if twin.states[i] != rep.states[i] {
			return fmt.Errorf("specgen: %s/%s: state %d mismatch (%q vs %q)", rep.name, twin.name, i, rep.states[i], twin.states[i])
		}
	}
	if len(twin.events) != len(rep.events) {
		return fmt.Errorf("specgen: %s/%s: event count mismatch", rep.name, twin.name)
	}
	for i := range rep.events {
		if canonEvent(twin.famKey, twin.events[i]) != canonEvent(rep.famKey, rep.events[i]) {
			return fmt.Errorf("specgen: %s/%s: event column %d mismatch (%q vs %q)", rep.name, twin.name, i, rep.events[i], twin.events[i])
		}
	}
	if twin.initial != rep.initial || !boolsEq(twin.final, rep.final) || !boolsEq(twin.attack, rep.attack) {
		return fmt.Errorf("specgen: %s/%s: initial/final/attack marking mismatch", rep.name, twin.name)
	}
	for si := range rep.cells {
		for ei := range rep.cells[si] {
			rc, tc := rep.cells[si][ei], twin.cells[si][ei]
			if len(rc) != len(tc) {
				return fmt.Errorf("specgen: %s/%s: cell (%s, %s) candidate count mismatch", rep.name, twin.name, rep.states[si], rep.events[ei])
			}
			for ci := range rc {
				if tc[ci].to != rc[ci].to || tc[ci].guarded != rc[ci].guarded || tc[ci].action != rc[ci].action {
					return fmt.Errorf("specgen: %s/%s: cell (%s, %s)[%d] shape mismatch", rep.name, twin.name, rep.states[si], rep.events[ei], ci)
				}
				twin.cells[si][ei][ci].fn = rc[ci].fn
			}
		}
	}
	return nil
}

func boolsEq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sanitize turns a state or event name into a Go identifier fragment.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func dispatchName(kind, famKey string, state core.State, event string, ci int) string {
	return fmt.Sprintf("%s%s_%s_%s_%d", famKey, kind, sanitize(string(state)), sanitize(event), ci)
}

func emitTable(b *bytes.Buffer, m *model) {
	fmt.Fprintf(b, "var %s = machTable{\n", m.tblVar)
	fmt.Fprintf(b, "name: %q,\n", m.name)
	fmt.Fprintf(b, "initial: %d,\n", m.initial)
	fmt.Fprintf(b, "states: []core.State{")
	for i, st := range m.states {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%q", string(st))
	}
	b.WriteString("},\n")
	fmt.Fprintf(b, "events: []string{")
	for i, ev := range m.events {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%q", ev)
	}
	b.WriteString("},\n")
	emitBools(b, "final", m.final)
	emitBools(b, "attack", m.attack)
	// cells is row-major flat: state si's row occupies indices
	// [si*len(events), (si+1)*len(events)).
	b.WriteString("cells: [][]trans{\n")
	for si, byEvent := range m.cells {
		fmt.Fprintf(b, "// %s\n", m.states[si])
		for ei, cands := range byEvent {
			if len(cands) == 0 {
				fmt.Fprintf(b, "nil, // %s\n", m.events[ei])
				continue
			}
			b.WriteString("{")
			for ci, c := range cands {
				if ci > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(b, "{to: %d, fn: %d", c.to, c.fn)
				if c.guarded {
					b.WriteString(", guarded: true")
				}
				if c.action {
					b.WriteString(", action: true")
				}
				if c.label != "" {
					fmt.Fprintf(b, ", label: %q", c.label)
				}
				b.WriteString("}")
			}
			fmt.Fprintf(b, "}, // %s\n", m.events[ei])
		}
	}
	b.WriteString("},\n}\n\n")
}

func emitBools(b *bytes.Buffer, field string, vals []bool) {
	fmt.Fprintf(b, "%s: []bool{", field)
	for i, v := range vals {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%v", v)
	}
	b.WriteString("},\n")
}

// emitDispatch writes the guard and action switches for one family,
// derived from the representative's table.
func emitDispatch(b *bytes.Buffer, rep *model) {
	fam := families[rep.famKey]

	fmt.Fprintf(b, "func %sGuardFn(fn uint16, m *%s, e *core.Event, a *%s) bool {\n", fam.key, fam.machine, fam.args)
	b.WriteString("switch fn {\n")
	for si := range rep.cells {
		for ei := range rep.cells[si] {
			for ci, c := range rep.cells[si][ei] {
				if !c.guarded {
					continue
				}
				name := dispatchName("Guard", fam.key, rep.states[si], canonEvent(rep.famKey, rep.events[ei]), ci)
				fmt.Fprintf(b, "case %d:\nreturn %s(m, e, a)\n", c.fn, name)
			}
		}
	}
	b.WriteString("}\nreturn true\n}\n\n")

	fmt.Fprintf(b, "func %sActionFn(fn uint16, m *%s, e *core.Event, a *%s) {\n", fam.key, fam.machine, fam.args)
	b.WriteString("switch fn {\n")
	for si := range rep.cells {
		for ei := range rep.cells[si] {
			for ci, c := range rep.cells[si][ei] {
				if !c.action {
					continue
				}
				name := dispatchName("Action", fam.key, rep.states[si], canonEvent(rep.famKey, rep.events[ei]), ci)
				fmt.Fprintf(b, "case %d:\n%s(m, e, a)\n", c.fn, name)
			}
		}
	}
	b.WriteString("}\n}\n\n")
}

func generate() ([]byte, error) {
	specs := ids.Specs(ids.DefaultConfig())

	var models []*model
	reps := make(map[string]*model)
	for _, spec := range specs {
		famKey, tblVar, rep, err := specFamily(spec.Name)
		if err != nil {
			return nil, err
		}
		m, err := buildModel(spec, tblVar, famKey, rep)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
		if rep {
			if prev, dup := reps[famKey]; dup {
				return nil, fmt.Errorf("specgen: families %s: two representatives (%s, %s)", famKey, prev.name, m.name)
			}
			reps[famKey] = m
			if err := assignFns(m); err != nil {
				return nil, err
			}
		}
	}
	for _, m := range models {
		if m.rep {
			continue
		}
		rep, ok := reps[m.famKey]
		if !ok {
			return nil, fmt.Errorf("specgen: %s: family %s has no representative", m.name, m.famKey)
		}
		if err := copyFns(rep, m); err != nil {
			return nil, err
		}
	}

	var b bytes.Buffer
	b.WriteString("// Code generated by specgen from the ids EFSM specifications. DO NOT EDIT.\n")
	b.WriteString("//\n")
	b.WriteString("// Regenerate with `make specgen`; CI runs `specgen -check` and fails\n")
	b.WriteString("// if this file drifts from internal/ids.\n\n")
	b.WriteString("package idsgen\n\n")
	b.WriteString("import \"vids/internal/core\"\n\n")
	for _, m := range models {
		emitTable(&b, m)
	}
	// Stable dispatch order regardless of map iteration.
	famOrder := []string{"sip", "rtp", "flood", "spam"}
	for _, famKey := range famOrder {
		rep, ok := reps[famKey]
		if !ok {
			return nil, fmt.Errorf("specgen: no specs classified into family %s", famKey)
		}
		emitDispatch(&b, rep)
	}

	src, err := format.Source(b.Bytes())
	if err != nil {
		return nil, fmt.Errorf("specgen: generated code does not parse: %v", err)
	}
	return src, nil
}

func main() {
	out := flag.String("out", "internal/idsgen/tables_gen.go", "output path for the generated tables")
	check := flag.Bool("check", false, "verify the committed generated code is current; exit nonzero on drift")
	flag.Parse()

	src, err := generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *check {
		have, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "specgen: -check: %v\n", err)
			os.Exit(1)
		}
		if !bytes.Equal(have, src) {
			fmt.Fprintf(os.Stderr, "specgen: %s is stale; run `make specgen` and commit the result\n", *out)
			os.Exit(1)
		}
		fmt.Printf("specgen: %s is current\n", *out)
		return
	}

	if err := os.WriteFile(*out, src, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("specgen: wrote %s\n", *out)
}
