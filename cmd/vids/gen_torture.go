//go:build ignore

// gen_torture.go regenerates testdata/torture.jsonl: a deterministic
// replay trace that interleaves benign calls and the synthetic attack
// scenarios with RFC-4475-flavored hostile SIP datagrams and malformed
// media packets. TestTortureTraceReplay replays it through `vids
// -replay` and checks the run is panic-free, the alert multiset is
// stable, and every datagram is accounted for in the parse counters.
//
// Regenerate with:
//
//	go run cmd/vids/gen_torture.go
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"vids/internal/engine"
	"vids/internal/trace"
)

func main() {
	entries := engine.Synthesize(engine.SynthConfig{Calls: 4, RTPPerCall: 4, Attacks: true})
	last := time.Duration(0)
	for _, e := range entries {
		if at := e.At(); at > last {
			last = at
		}
	}

	hostile := []struct {
		proto string
		data  string
	}{
		// Separator stuffing and start-line fragments.
		{"SIP", "INVITE\r\n\r\n\r\n"},
		{"SIP", ":::::\r\n\r\n"},
		// Start line only: the mandatory header check rejects it.
		{"SIP", "INVITE sip:a@b SIP/2.0\r\n\r\n"},
		// Content-Length far beyond the datagram.
		{"SIP", "INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>\r\nCall-ID: tort4\r\nCSeq: 1 INVITE\r\n" +
			"Content-Length: 999999999\r\n\r\nshort"},
		// Negative and overflowing CSeq numbers.
		{"SIP", "INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>\r\nCall-ID: tort5\r\nCSeq: -1 INVITE\r\n\r\n"},
		{"SIP", "INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>\r\nCall-ID: tort6\r\nCSeq: 99999999999999999999 INVITE\r\n\r\n"},
		// Whitespace-only and null-byte header values.
		{"SIP", "INVITE sip:a@b SIP/2.0\r\nVia: \r\n\r\n"},
		{"SIP", "INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP \x00;branch=x\r\n\r\n"},
		// Raw binary noise on the SIP port.
		{"SIP", "\x00\x01\x02\x03\x04\x05\x06\x07"},
		// Truncated mid-header.
		{"SIP", "INVITE sip:bob@b.example.com SIP/2.0\r\nVia: SIP/2.0/UDP ua1.a"},
		// Legal but rare: deeply folded Via, unicode display name, and
		// an oversized branch parameter — the parser must accept these.
		{"SIP", "OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h\r\n \r\n \r\n ;branch=z9hG4bKf1\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: tort-fold\r\nCSeq: 1 OPTIONS\r\n\r\n"},
		{"SIP", "OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bKu1\r\n" +
			"From: \"日本語\" <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: tort-uni\r\nCSeq: 1 OPTIONS\r\n\r\n"},
		{"SIP", "OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK" + strings.Repeat("a", 2048) + "\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: tort-long\r\nCSeq: 1 OPTIONS\r\n\r\n"},
		// Malformed media: wrong RTP version, truncated RTP header,
		// RTCP with a lying length field, truncated RTCP.
		{"RTP", "\x00\x00\x00\x01\x00\x00\x00\xa0\xde\xca\xfb\xad"},
		{"RTP", "\x80\x00\x00\x01\x00\x00"},
		{"RTCP", "\x80\xc8\xff\xff\x00\x00\x00\x00"},
		{"RTCP", "\x81\xcb"},
	}
	at := last + time.Second
	for i, h := range hostile {
		entries = append(entries, trace.Entry{
			AtNanos:  int64(at + time.Duration(i)*time.Millisecond),
			Proto:    h.proto,
			FromHost: "attacker.example.net", FromPort: 6666,
			ToHost: "proxy.b.example.com", ToPort: 5060,
			Size: len(h.data), Data: []byte(h.data),
		})
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].AtNanos < entries[j].AtNanos })

	f, err := os.Create("cmd/vids/testdata/torture.jsonl")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := trace.NewWriter(f)
	for _, e := range entries {
		if err := w.Record(e.Packet(), e.At()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d entries\n", w.Entries())
}
