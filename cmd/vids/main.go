// Command vids demonstrates the intrusion detection system end to
// end: it stands up the enterprise testbed with vids inline, runs
// benign calls, launches a chosen attack, and streams the alert log.
// With -replay it instead analyzes a previously captured packet trace
// offline (see cmd/simnet -trace).
//
// Usage:
//
//	vids [-scenario bye-dos|cancel-dos|invite-flood|media-spam|rtp-flood|codec-change|hijack|toll-fraud|drdos|register-hijack|rtcp-bye|clean|all] [-report alerts.json]
//	vids -replay trace.jsonl [-shards N]
//
// Both modes run the specgen-compiled EFSM backend by default;
// -compiled=false switches to the interpreted reference walker (the
// two are differentially tested to produce identical alerts).
//
// With -shards N > 0 the replay runs through the multi-lane ingestion
// tier feeding the concurrent sharded engine (internal/ingress,
// internal/engine) — including the per-flow RTP validation cache
// unless -fastpath=false — and the resulting alert set is verified
// against a single-threaded replay of the same trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"

	"vids"
	"vids/internal/engine"
	"vids/internal/ingress"
	"vids/internal/scenario"
	"vids/internal/trace"
	"vids/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vids:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vids", flag.ContinueOnError)
	var (
		scenarioName = fs.String("scenario", "all", "attack scenario to run ("+strings.Join(scenario.Names, "|")+"|all)")
		seed         = fs.Int64("seed", 1, "workload seed")
		replay       = fs.String("replay", "", "analyze a captured packet trace instead of running the testbed")
		report       = fs.String("report", "", "write the alert report (JSON) to this file")
		shards       = fs.Int("shards", 0, "replay through the concurrent engine with N shard workers (0 = single-threaded)")
		compiled     = fs.Bool("compiled", true, "run the specgen-compiled EFSM backend (false = interpreted reference walker)")
		fastpath     = fs.Bool("fastpath", true, "per-flow RTP validation cache in the sharded replay (shards>0); false = every packet takes the slow path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend := vids.BackendCompiled
	if !*compiled {
		backend = vids.BackendInterpreted
	}
	if *replay != "" {
		return replayTrace(*replay, *report, *shards, backend, *fastpath)
	}

	names := scenario.Names
	if *scenarioName != "all" {
		names = []string{*scenarioName}
	}
	for _, name := range names {
		if err := runScenario(name, *seed, *report, backend); err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
	}
	return nil
}

// writeReport exports alerts as JSON when a report path was given.
func writeReport(d *vids.IDS, path string) error {
	if path == "" {
		return nil
	}
	return writeAlerts(d.Alerts(), path)
}

// writeAlerts renders an alert slice in the same JSON format as
// IDS.WriteAlerts.
func writeAlerts(alerts []vids.Alert, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if alerts == nil {
		alerts = []vids.Alert{}
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(alerts); err != nil {
		return err
	}
	fmt.Printf("  report: %d alert(s) written to %s\n", len(alerts), path)
	return nil
}

// replayTrace feeds a captured trace into a fresh IDS instance, or —
// with shards > 0 — into the concurrent sharded engine, in which case
// the engine's alert set is checked against the single-threaded run.
func replayTrace(path, report string, shards int, backend vids.Backend, fastpath bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := trace.Read(f)
	if err != nil {
		return err
	}
	if shards > 0 {
		return replayEngine(entries, report, shards, backend, fastpath)
	}
	cfg := vids.DefaultConfig()
	cfg.Backend = backend
	s := vids.NewSimulator(1)
	d := vids.New(s, cfg)
	d.OnAlert = func(a vids.Alert) { fmt.Printf("ALERT %s\n", a) }
	if err := trace.Replay(s, entries, d); err != nil {
		return err
	}
	if err := s.RunAll(); err != nil {
		return err
	}
	sipN, rtpN, parseErrs, deviations := d.Counters()
	fmt.Printf("replayed %d packets: sip=%d rtp=%d parse-errors=%d deviations=%d alerts=%d\n",
		len(entries), sipN, rtpN, parseErrs, deviations, len(d.Alerts()))
	return writeReport(d, report)
}

// replayEngine pushes the trace through the multi-lane ingestion tier
// feeding the sharded engine — the path where the per-flow RTP
// validation cache absorbs in-profile media — and verifies the
// resulting alert set matches a sequential replay of the same entries:
// the engine's correctness contract, and with -fastpath on, the
// cache's alert-parity contract.
func replayEngine(entries []trace.Entry, report string, shards int, backend vids.Backend, fastpath bool) error {
	idsCfg := vids.DefaultConfig()
	idsCfg.Backend = backend
	ing := ingress.New(ingress.Config{
		Lanes:  1,
		Engine: engine.Config{Shards: shards, IDS: idsCfg, DisableFastpath: !fastpath},
	})
	e := ing.Engine()
	for i, en := range entries {
		if err := ing.Ingest(en.Packet(), en.At()); err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
	}
	if err := ing.Close(); err != nil {
		return err
	}
	alerts := ing.Alerts()
	for _, a := range alerts {
		fmt.Printf("ALERT %s\n", a)
	}
	st := ing.Stats()
	fmt.Printf("replayed %d packets on %d shard(s): processed=%d absorbed=%d parse-errors=%d dropped=%d fastpath-hits=%d alerts=%d\n",
		len(entries), e.Shards(), st.Processed, st.Absorbed, st.ParseErrors, st.Dropped, st.FastpathHits, len(alerts))

	// Cross-check against the single-threaded path: same trace, same
	// detectors, one fact base.
	s := vids.NewSimulator(1)
	d := vids.New(s, idsCfg)
	if err := trace.Replay(s, entries, d); err != nil {
		return err
	}
	if err := s.RunAll(); err != nil {
		return err
	}
	seq := d.Alerts()
	engine.SortAlerts(seq)
	if !reflect.DeepEqual(alerts, seq) {
		return fmt.Errorf("engine alerts diverge from the sequential run: %d vs %d", len(alerts), len(seq))
	}
	fmt.Printf("  verified: alert set matches the sequential run (%d alert(s))\n", len(seq))
	return writeAlerts(alerts, report)
}

func runScenario(name string, seed int64, report string, backend vids.Backend) error {
	fmt.Printf("==== scenario: %s ====\n", name)
	tb, err := scenario.Run(name, scenario.Options{
		Seed: seed, Out: os.Stdout,
		Configure: func(cfg *workload.Config) { cfg.IDS.Backend = backend },
	})
	if err != nil {
		return err
	}
	alerts := tb.IDS.Alerts()
	if name == "clean" && len(alerts) == 0 {
		fmt.Println("  no alerts — clean traffic passes silently")
	}
	fmt.Printf("  => %d alert(s)\n\n", len(alerts))
	return writeReport(tb.IDS, report)
}
