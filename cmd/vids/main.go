// Command vids demonstrates the intrusion detection system end to
// end: it stands up the enterprise testbed with vids inline, runs
// benign calls, launches a chosen attack, and streams the alert log.
// With -replay it instead analyzes a previously captured packet trace
// offline (see cmd/simnet -trace).
//
// Usage:
//
//	vids [-scenario bye-dos|cancel-dos|invite-flood|media-spam|rtp-flood|codec-change|hijack|toll-fraud|drdos|register-hijack|rtcp-bye|clean|all] [-report alerts.json]
//	vids -replay trace.jsonl [-shards N]
//
// With -shards N > 0 the replay runs through the concurrent sharded
// engine (internal/engine) and the resulting alert set is verified
// against a single-threaded replay of the same trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"
	"time"

	"vids"
	"vids/internal/attack"
	"vids/internal/engine"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/trace"
	"vids/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vids:", err)
		os.Exit(1)
	}
}

var scenarioNames = []string{
	"clean", "bye-dos", "cancel-dos", "invite-flood",
	"media-spam", "rtp-flood", "codec-change", "hijack", "toll-fraud",
	"drdos", "register-hijack", "rtcp-bye",
}

func run(args []string) error {
	fs := flag.NewFlagSet("vids", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "all", "attack scenario to run ("+strings.Join(scenarioNames, "|")+"|all)")
		seed     = fs.Int64("seed", 1, "workload seed")
		replay   = fs.String("replay", "", "analyze a captured packet trace instead of running the testbed")
		report   = fs.String("report", "", "write the alert report (JSON) to this file")
		shards   = fs.Int("shards", 0, "replay through the concurrent engine with N shard workers (0 = single-threaded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replay != "" {
		return replayTrace(*replay, *report, *shards)
	}

	names := scenarioNames
	if *scenario != "all" {
		names = []string{*scenario}
	}
	for _, name := range names {
		if err := runScenario(name, *seed, *report); err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
	}
	return nil
}

// writeReport exports alerts as JSON when a report path was given.
func writeReport(d *vids.IDS, path string) error {
	if path == "" {
		return nil
	}
	return writeAlerts(d.Alerts(), path)
}

// writeAlerts renders an alert slice in the same JSON format as
// IDS.WriteAlerts.
func writeAlerts(alerts []vids.Alert, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if alerts == nil {
		alerts = []vids.Alert{}
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(alerts); err != nil {
		return err
	}
	fmt.Printf("  report: %d alert(s) written to %s\n", len(alerts), path)
	return nil
}

// replayTrace feeds a captured trace into a fresh IDS instance, or —
// with shards > 0 — into the concurrent sharded engine, in which case
// the engine's alert set is checked against the single-threaded run.
func replayTrace(path, report string, shards int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := trace.Read(f)
	if err != nil {
		return err
	}
	if shards > 0 {
		return replayEngine(entries, report, shards)
	}
	s := vids.NewSimulator(1)
	d := vids.New(s, vids.DefaultConfig())
	d.OnAlert = func(a vids.Alert) { fmt.Printf("ALERT %s\n", a) }
	if err := trace.Replay(s, entries, d); err != nil {
		return err
	}
	if err := s.RunAll(); err != nil {
		return err
	}
	sipN, rtpN, parseErrs, deviations := d.Counters()
	fmt.Printf("replayed %d packets: sip=%d rtp=%d parse-errors=%d deviations=%d alerts=%d\n",
		len(entries), sipN, rtpN, parseErrs, deviations, len(d.Alerts()))
	return writeReport(d, report)
}

// replayEngine pushes the trace through the sharded engine and
// verifies the resulting alert set matches a sequential replay of the
// same entries — the engine's correctness contract.
func replayEngine(entries []trace.Entry, report string, shards int) error {
	e := engine.New(engine.Config{Shards: shards})
	for i, en := range entries {
		if err := e.Ingest(en.Packet(), en.At()); err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
	}
	if err := e.Close(); err != nil {
		return err
	}
	alerts := e.Alerts()
	for _, a := range alerts {
		fmt.Printf("ALERT %s\n", a)
	}
	st := e.Stats()
	fmt.Printf("replayed %d packets on %d shard(s): processed=%d absorbed=%d parse-errors=%d dropped=%d alerts=%d\n",
		len(entries), e.Shards(), st.Processed, st.Absorbed, st.ParseErrors, st.Dropped, len(alerts))

	// Cross-check against the single-threaded path: same trace, same
	// detectors, one fact base.
	s := vids.NewSimulator(1)
	d := vids.New(s, vids.DefaultConfig())
	if err := trace.Replay(s, entries, d); err != nil {
		return err
	}
	if err := s.RunAll(); err != nil {
		return err
	}
	seq := d.Alerts()
	engine.SortAlerts(seq)
	if !reflect.DeepEqual(alerts, seq) {
		return fmt.Errorf("engine alerts diverge from the sequential run: %d vs %d", len(alerts), len(seq))
	}
	fmt.Printf("  verified: alert set matches the sequential run (%d alert(s))\n", len(seq))
	return writeAlerts(alerts, report)
}

func runScenario(name string, seed int64, report string) error {
	fmt.Printf("==== scenario: %s ====\n", name)

	cfg := vids.DefaultTestbedConfig()
	cfg.Seed = seed
	cfg.UAs = 4
	cfg.WithMedia = true
	cfg.AnswerDelay = time.Second
	if name == "cancel-dos" {
		cfg.AnswerDelay = 20 * time.Second // keep the INVITE pending
	}
	tb, err := vids.NewTestbed(cfg)
	if err != nil {
		return err
	}
	tb.IDS.OnAlert = func(a vids.Alert) { fmt.Printf("  ALERT %s\n", a) }

	sniff := attack.NewSniffer()
	tb.Net.Tap(sniff.Tap)
	atk := attack.New(tb.Sim, tb.Net, workload.AttackerHost)

	if err := tb.Sim.Run(time.Second); err != nil {
		return err
	}
	rec, err := tb.PlaceCall(0, 0, 2*time.Minute)
	if err != nil {
		return err
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 8*time.Second); err != nil {
		return err
	}

	call := rec.Call()
	info := attack.DialogInfo{
		CallID:          call.ID,
		CallerTag:       call.LocalTag,
		CalleeTag:       call.RemoteTag,
		CallerAOR:       sipmsg.URI{User: workload.UAUser("a", 1), Host: workload.DomainA},
		CalleeAOR:       sipmsg.URI{User: workload.UAUser("b", 1), Host: workload.DomainB},
		CallerHost:      workload.UAHost("a", 1),
		CalleeHost:      call.RemoteContact.Host,
		CallerMediaPort: call.LocalRTPPort,
	}
	if call.RemoteSDP != nil {
		if audio, ok := call.RemoteSDP.FirstAudio(); ok {
			info.CalleeMediaPort = audio.Port
		}
	}
	if st, ok := sniff.Stream(sim.Addr{Host: info.CalleeHost, Port: info.CalleeMediaPort}); ok {
		info.SSRC, info.LastSeq, info.LastTS = st.SSRC, st.LastSeq, st.LastTS
	}

	switch name {
	case "clean":
		fmt.Println("  (no attack injected)")
	case "bye-dos":
		fmt.Println("  attacker: fully spoofed BYE impersonating the caller")
		if err := atk.ByeDoS(info, true); err != nil {
			return err
		}
	case "cancel-dos":
		fmt.Println("  attacker: forged CANCEL for the pending INVITE")
		if err := atk.CancelDoS(info, "z9hG4bKforged",
			sim.Addr{Host: workload.ProxyBHost, Port: 5060}, ""); err != nil {
			return err
		}
	case "invite-flood":
		fmt.Println("  attacker: 40 INVITEs in 400ms at one phone")
		atk.InviteFlood(sipmsg.URI{User: workload.UAUser("b", 2), Host: workload.DomainB},
			sim.Addr{Host: workload.ProxyBHost, Port: 5060}, 40, 10*time.Millisecond)
	case "media-spam":
		fmt.Println("  attacker: fabricated RTP with sniffed SSRC, jumped seq/timestamp")
		atk.MediaSpam(info, 20, 20*time.Millisecond)
	case "rtp-flood":
		fmt.Println("  attacker: RTP at 10x the codec rate")
		atk.RTPFlood(info, 500, 2*time.Millisecond, false)
	case "codec-change":
		fmt.Println("  attacker: RTP with a non-negotiated payload type")
		atk.RTPFlood(info, 10, 20*time.Millisecond, true)
	case "hijack":
		fmt.Println("  attacker: in-dialog re-INVITE redirecting media")
		if err := atk.Hijack(info); err != nil {
			return err
		}
	case "toll-fraud":
		fmt.Println("  misbehaving caller: BYE to stop billing, media keeps flowing")
		if err := tb.UAsA[0].Bye(call); err != nil {
			return err
		}
		attack.NewTollFraudster(attack.New(tb.Sim, tb.Net, info.CallerHost)).
			ContinueMedia(info, 100, 20*time.Millisecond)
	case "drdos":
		fmt.Println("  attacker: spoofed OPTIONS to every network-A phone; responses swamp a B phone")
		var reflectors []sim.Addr
		for i := 1; i <= cfg.UAs; i++ {
			reflectors = append(reflectors, sim.Addr{Host: workload.UAHost("a", i), Port: 5060})
		}
		atk.DRDoS(sim.Addr{Host: workload.UAHost("b", 2), Port: 5060},
			reflectors, 8, 5*time.Millisecond)
	case "rtcp-bye":
		fmt.Println("  attacker: forged RTCP BYE ending the media stream, SIP untouched")
		if err := atk.RTCPBye(info); err != nil {
			return err
		}
	case "register-hijack":
		fmt.Println("  attacker: forged REGISTER rebinding a victim's AOR to the attacker")
		victim := sipmsg.URI{User: workload.UAUser("b", 2), Host: workload.DomainB}
		if err := atk.HijackRegistration(victim,
			sim.Addr{Host: workload.ProxyBHost, Port: 5060}); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown scenario (want %s)", strings.Join(scenarioNames, "|"))
	}

	if err := tb.Sim.Run(tb.Sim.Now() + 15*time.Second); err != nil {
		return err
	}
	alerts := tb.IDS.Alerts()
	if name == "clean" && len(alerts) == 0 {
		fmt.Println("  no alerts — clean traffic passes silently")
	}
	fmt.Printf("  => %d alert(s)\n\n", len(alerts))
	return writeReport(tb.IDS, report)
}
