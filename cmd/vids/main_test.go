package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vids"
	"vids/internal/engine"
	"vids/internal/rtp"
	"vids/internal/sipmsg"
	"vids/internal/trace"
)

func TestScenarioAndReplayWorkflow(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "alerts.json")
	if err := run([]string{"-scenario", "media-spam", "-report", report}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestCleanScenario(t *testing.T) {
	if err := run([]string{"-scenario", "clean"}); err != nil {
		t.Fatal(err)
	}
}

// TestTortureTraceReplay replays the committed RFC-4475-flavored
// torture trace (benign calls + attack scenarios interleaved with
// hostile SIP datagrams and malformed media; see gen_torture.go):
// the replay must complete without panicking, produce the same alert
// multiset on every run, pass the sharded engine's internal alert
// parity check, and account for every datagram in the parse counters.
func TestTortureTraceReplay(t *testing.T) {
	path := filepath.Join("testdata", "torture.jsonl")
	dir := t.TempDir()
	rep1 := filepath.Join(dir, "alerts1.json")
	rep2 := filepath.Join(dir, "alerts2.json")
	if err := run([]string{"-replay", path, "-report", rep1}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-replay", path, "-report", rep2}); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(rep1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(rep2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("alert multiset differs between two replays of the same trace")
	}
	if len(b1) < 10 {
		t.Errorf("alert report suspiciously small (%d bytes); torture trace should trip detectors", len(b1))
	}
	// The sharded path verifies its alert set against the sequential
	// run internally; a divergence fails the command.
	if err := run([]string{"-replay", path, "-shards", "4"}); err != nil {
		t.Fatal(err)
	}
}

// TestTortureTraceCounters re-runs the torture trace through a bare
// IDS and checks the parse counters account for exactly the datagrams
// the wire parsers reject — no packet vanishes uncounted.
func TestTortureTraceCounters(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "torture.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}

	var expSIP, expRTP, expErr uint64
	for _, e := range entries {
		switch e.Proto {
		case "SIP":
			if _, err := sipmsg.Parse(e.Data); err != nil {
				expErr++
			} else {
				expSIP++
			}
		case "RTP":
			var p rtp.Packet
			if err := rtp.ParseInto(&p, e.Data); err != nil {
				expErr++
			} else {
				expRTP++
			}
		case "RTCP":
			var p rtp.RTCP
			if err := rtp.ParseRTCPInto(&p, e.Data); err != nil {
				expErr++
			}
		}
	}
	if expErr < 10 {
		t.Fatalf("only %d malformed datagrams in the torture trace; regenerate with gen_torture.go", expErr)
	}

	s := vids.NewSimulator(1)
	d := vids.New(s, vids.DefaultConfig())
	if err := trace.Replay(s, entries, d); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	sipN, rtpN, parseErrs, _ := d.Counters()
	if sipN != expSIP || rtpN != expRTP || parseErrs != expErr {
		t.Errorf("counters sip=%d rtp=%d parse-errors=%d, want sip=%d rtp=%d parse-errors=%d",
			sipN, rtpN, parseErrs, expSIP, expRTP, expErr)
	}
}

// TestShardedReplay replays a synthetic attack trace through the
// sharded engine; the command itself asserts the alert set matches
// the single-threaded run.
func TestShardedReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "synth.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	for _, en := range engine.Synthesize(engine.SynthConfig{Calls: 12, RTPPerCall: 6, Attacks: true}) {
		if err := w.Record(en.Packet(), en.At()); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	report := filepath.Join(dir, "alerts.json")
	if err := run([]string{"-replay", path, "-shards", "4", "-report", report}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(report); err != nil || fi.Size() == 0 {
		t.Fatalf("report not written: %v", err)
	}
	// The legacy single-threaded path must still work.
	if err := run([]string{"-replay", path}); err != nil {
		t.Fatal(err)
	}
}
