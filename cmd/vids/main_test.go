package main

import (
	"path/filepath"
	"testing"
)

func TestScenarioAndReplayWorkflow(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "alerts.json")
	if err := run([]string{"-scenario", "media-spam", "-report", report}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestCleanScenario(t *testing.T) {
	if err := run([]string{"-scenario", "clean"}); err != nil {
		t.Fatal(err)
	}
}
