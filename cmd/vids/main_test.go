package main

import (
	"os"
	"path/filepath"
	"testing"

	"vids/internal/engine"
	"vids/internal/trace"
)

func TestScenarioAndReplayWorkflow(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "alerts.json")
	if err := run([]string{"-scenario", "media-spam", "-report", report}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestCleanScenario(t *testing.T) {
	if err := run([]string{"-scenario", "clean"}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedReplay replays a synthetic attack trace through the
// sharded engine; the command itself asserts the alert set matches
// the single-threaded run.
func TestShardedReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "synth.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	for _, en := range engine.Synthesize(engine.SynthConfig{Calls: 12, RTPPerCall: 6, Attacks: true}) {
		if err := w.Record(en.Packet(), en.At()); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	report := filepath.Join(dir, "alerts.json")
	if err := run([]string{"-replay", path, "-shards", "4", "-report", report}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(report); err != nil || fi.Size() == 0 {
		t.Fatalf("report not written: %v", err)
	}
	// The legacy single-threaded path must still work.
	if err := run([]string{"-replay", path}); err != nil {
		t.Fatal(err)
	}
}
