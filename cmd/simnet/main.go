// Command simnet runs the paper's Figure 7 enterprise VoIP testbed:
// two networks of SIP phones and proxies joined across a lossy
// internet cloud, generating a random calling pattern, with vids
// optionally placed inline at network B's edge.
//
// Usage:
//
//	simnet [-duration 10m] [-uas 20] [-seed 1] [-media] [-novids] [-tap]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vids"
	"vids/internal/metrics"
	"vids/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simnet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simnet", flag.ContinueOnError)
	var (
		duration = fs.Duration("duration", 10*time.Minute, "workload horizon")
		uas      = fs.Int("uas", 20, "user agents per network")
		seed     = fs.Int64("seed", 1, "workload seed")
		media    = fs.Bool("media", false, "stream G.729 media for every call")
		novids   = fs.Bool("novids", false, "run without vids (plain forwarding)")
		tap      = fs.Bool("tap", false, "attach vids passively instead of inline")
		traceOut = fs.String("trace", "", "write a packet trace (JSON lines) to this file")
		cdrOut   = fs.String("cdr", "", "write call detail records (CSV) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := vids.DefaultTestbedConfig()
	cfg.Seed = *seed
	cfg.UAs = *uas
	cfg.WithMedia = *media
	cfg.VidsInline = !*novids && !*tap
	cfg.VidsTap = *tap

	tb, err := vids.NewTestbed(cfg)
	if err != nil {
		return err
	}
	if tb.IDS != nil {
		tb.IDS.OnAlert = func(a vids.Alert) {
			fmt.Printf("ALERT %s\n", a)
		}
	}

	var tw *trace.Writer
	if *traceOut != "" {
		if tb.IDS == nil {
			return fmt.Errorf("-trace requires vids (remove -novids)")
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		tw = trace.NewWriter(f)
		// Record from vids' own vantage point so a later replay sees
		// exactly the packet stream the live instance analyzed.
		tb.IDS.OnPacket = tw.Tap
	}

	fmt.Printf("simnet: %d+%d UAs, vids inline=%v tap=%v, media=%v, horizon=%v\n\n",
		*uas, *uas, cfg.VidsInline, cfg.VidsTap, *media, *duration)

	start := time.Now()
	tb.GenerateCalls(*duration)
	if err := tb.Sim.Run(*duration + 2*time.Minute); err != nil {
		return err
	}
	elapsed := time.Since(start)

	placed, established, failed := tb.CallStats()
	fmt.Printf("calls: placed=%d established=%d failed=%d\n", placed, established, failed)

	setup := tb.SetupDelays(-1)
	fmt.Printf("call setup delay: mean=%sms p95=%.2fms over %d calls\n",
		metrics.Ms(setup.MeanDuration()), setup.Percentile(95)*1000, setup.Count())

	if *media {
		delay, jitter := tb.MediaQoS("b")
		fmt.Printf("B-side RTP: mean delay=%.3fms mean jitter=%ss over %d streams\n",
			delay.Mean()*1000, metrics.F(jitter.Mean()), delay.Count())
	}

	reqA, respA, _, _ := tb.ProxyA.Stats()
	reqB, respB, _, rejB := tb.ProxyB.Stats()
	fmt.Printf("proxy A forwarded %d requests / %d responses; proxy B %d/%d (%d rejected)\n",
		reqA, respA, reqB, respB, rejB)
	fmt.Printf("network: delivered=%d dropped=%d\n", tb.Net.Delivered(), tb.Net.Dropped())

	if tb.IDS != nil {
		sipN, rtpN, parseErr, deviations := tb.IDS.Counters()
		fmt.Printf("vids: sip=%d rtp=%d parse-errors=%d deviations=%d alerts=%d resident-calls=%d evicted=%d\n",
			sipN, rtpN, parseErr, deviations, len(tb.IDS.Alerts()),
			tb.IDS.ActiveCalls(), tb.IDS.Evicted())
	}
	if tw != nil {
		if err := tw.Err(); err != nil {
			return err
		}
		fmt.Printf("trace: wrote %d packets to %s\n", tw.Entries(), *traceOut)
	}
	if *cdrOut != "" {
		f, err := os.Create(*cdrOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tb.WriteCDRs(f); err != nil {
			return err
		}
		fmt.Printf("cdr: wrote %d records to %s\n", len(tb.Records), *cdrOut)
	}
	fmt.Printf("\nsimulated %v of testbed time in %v of host time (%d events)\n",
		*duration, elapsed.Round(time.Millisecond), tb.Sim.Executed())
	return nil
}
