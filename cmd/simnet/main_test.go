package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSimnetRunsTiny(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.jsonl")
	cdrFile := filepath.Join(dir, "c.csv")
	err := run([]string{"-duration", "4m", "-uas", "3", "-media",
		"-trace", traceFile, "-cdr", cdrFile})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{traceFile, cdrFile} {
		st, err := os.Stat(f)
		if err != nil || st.Size() == 0 {
			t.Fatalf("output %s missing or empty: %v", f, err)
		}
	}
}

func TestSimnetTraceRequiresVids(t *testing.T) {
	if err := run([]string{"-duration", "1s", "-uas", "2", "-novids", "-trace", "/tmp/x"}); err == nil {
		t.Fatal("-trace with -novids accepted")
	}
}
