package vids_test

import (
	"encoding/binary"
	"testing"
	"time"

	"vids/internal/core"
	"vids/internal/fastpath"
	"vids/internal/ids"
	"vids/internal/idsgen"
	"vids/internal/rtp"
	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// Allocation ceilings for the packet hot path. These are regression
// budgets, not targets: they hold the measured post-optimization
// counts (with a little headroom where the runtime gives no exact
// guarantee) so an accidental per-packet allocation fails tier-1
// tests instead of silently eroding throughput.
const (
	// maxSIPParseAllocs bounds sipmsg.Parse on a realistic INVITE
	// with SDP: one allocation per retained header value plus the
	// header slices. The seed parser took 33.
	maxSIPParseAllocs = 16
	// maxIDSProcessRTPAllocs bounds the full IDS path for one RTP
	// packet on an established call in steady state. The seed path
	// took 12 (excluding packet marshaling).
	maxIDSProcessRTPAllocs = 2
	// maxIDSProcessSIPAllocs bounds the full IDS path for one SIP
	// packet: parse, classify, typed event, machine step. Parsing
	// itself owns most of the budget (see maxSIPParseAllocs); the
	// detection layer on top is nearly allocation-free once URIs,
	// media keys and alert strings are interned or built lazily. The
	// pre-pooling path took 46.
	maxIDSProcessSIPAllocs = 20
	// maxCallChurnAllocs bounds one full INVITE→BYE dialog plus its
	// timer drain in steady state, after the monitor pool, intern
	// table and timer wheel are warm. Measured at 0; the headroom
	// covers incidental map rehashing.
	maxCallChurnAllocs = 4
	// maxIDSProcessSIPCompiledAllocs bounds the detection layer alone
	// on the specgen-compiled backend: ProcessSIP on a pre-parsed
	// INVITE — classify, fact-base lookup, typed event, compiled
	// machine step — with the parser's share factored out. Measured
	// at 0 in steady state; the budget leaves room for incidental
	// map rehashing while staying far below the interpreted seed's
	// 18 (16 of which were the parse).
	maxIDSProcessSIPCompiledAllocs = 9
	// maxEFSMStepCompiledAllocs pins the compiled transition itself:
	// dense-table lookup, devirtualized guard, struct-field action.
	// Zero, exactly — the //vids:noalloc gate in cmd/vidslint proves
	// it statically and this budget proves it dynamically.
	maxEFSMStepCompiledAllocs = 0
	// maxFastpathConsultAllocs pins the media fast-path hit: key render
	// into a stack buffer, stripe hash, hot-slot probe, predicate check,
	// window advance. Zero, exactly — an allocation here is paid by
	// ~90% of all packets in a media-heavy mix.
	maxFastpathConsultAllocs = 0
)

// TestAllocBudgetSIPParse holds the parser to its allocation budget.
func TestAllocBudgetSIPParse(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	raw := benchInvite().Bytes()
	avg := testing.AllocsPerRun(200, func() {
		if _, err := sipmsg.Parse(raw); err != nil {
			t.Fatal(err)
		}
	})
	if avg > maxSIPParseAllocs {
		t.Errorf("sipmsg.Parse allocates %.1f/op, budget %d", avg, maxSIPParseAllocs)
	}
}

// TestAllocBudgetIDSProcessRTP holds the whole per-RTP-packet
// detection path — classify, typed event, media-key probe, machine
// step — to its allocation budget.
func TestAllocBudgetIDSProcessRTP(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	s := sim.New(1)
	cfg := ids.DefaultConfig()
	// All runs land on one virtual instant, so disarm the rate window:
	// this test measures the steady-state path, not the flood
	// transition.
	cfg.RTP.RatePackets = 1 << 30
	d := ids.New(s, cfg)

	// Establish one call so the stream has a live machine (same setup
	// as BenchmarkIDSProcessRTP).
	inv := benchInvite()
	pa := sim.Addr{Host: "proxy.a.example.com", Port: 5060}
	pb := sim.Addr{Host: "proxy.b.example.com", Port: 5060}
	d.Process(&sim.Packet{From: pa, To: pb, Proto: sim.ProtoSIP, Size: 500, Payload: inv.Bytes()})
	ok := sipmsg.NewResponse(inv, sipmsg.StatusOK)
	ok.To = ok.To.WithTag("t2")
	okContact := sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "ua2.b.example.com"}}
	ok.Contact = &okContact
	ok.ContentType = "application/sdp"
	ok.Body = sdp.New("bob", "ua2.b.example.com", 30000, sdp.PayloadG729).Marshal()
	d.Process(&sim.Packet{From: pb, To: pa, Proto: sim.ProtoSIP, Size: 500, Payload: ok.Bytes()})

	p := &rtp.Packet{PayloadType: 18, SSRC: 42, Payload: make([]byte, 20)}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	pkt := &sim.Packet{
		From:  sim.Addr{Host: "ua1.a.example.com", Port: 20000},
		To:    sim.Addr{Host: "ua2.b.example.com", Port: 30000},
		Proto: sim.ProtoRTP, Size: len(raw), Payload: raw,
	}
	seq := uint16(0)
	avg := testing.AllocsPerRun(200, func() {
		seq++
		binary.BigEndian.PutUint16(raw[2:], seq)
		binary.BigEndian.PutUint32(raw[4:], uint32(seq)*160)
		d.Process(pkt)
	})
	if avg > maxIDSProcessRTPAllocs {
		t.Errorf("ids.Process(RTP) allocates %.1f/op, budget %d", avg, maxIDSProcessRTPAllocs)
	}
	if n := len(d.Alerts()); n != 0 {
		t.Fatalf("steady-state stream raised %d alerts", n)
	}
}

// TestAllocBudgetIDSProcessSIP holds the whole per-SIP-packet
// detection path to its allocation budget (the setup mirrors
// BenchmarkIDSProcessSIP).
func TestAllocBudgetIDSProcessSIP(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	s := sim.New(1)
	d := ids.New(s, ids.DefaultConfig())
	raw := benchInvite().Bytes()
	from := sim.Addr{Host: "proxy.a.example.com", Port: 5060}
	to := sim.Addr{Host: "proxy.b.example.com", Port: 5060}
	avg := testing.AllocsPerRun(200, func() {
		d.Process(&sim.Packet{From: from, To: to, Proto: sim.ProtoSIP, Size: len(raw), Payload: raw})
	})
	if avg > maxIDSProcessSIPAllocs {
		t.Errorf("ids.Process(SIP) allocates %.1f/op, budget %d", avg, maxIDSProcessSIPAllocs)
	}
}

// TestAllocBudgetIDSProcessSIPCompiled holds the compiled-backend
// per-SIP-packet detection layer to its allocation budget. The setup
// mirrors BenchmarkIDSProcessSIPCompiled: one INVITE parsed once,
// then re-delivered as a retransmission of the same dialog, so the
// measurement isolates ProcessSIP from the parser.
func TestAllocBudgetIDSProcessSIPCompiled(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	s := sim.New(1)
	cfg := ids.DefaultConfig()
	cfg.Backend = ids.BackendCompiled
	// Retransmissions land on one frozen virtual instant; disarm the
	// windowed flood counter so the benign path is what gets measured.
	cfg.FloodN = 1 << 40
	d := ids.New(s, cfg)
	inv := benchInvite()
	from := sim.Addr{Host: "proxy.a.example.com", Port: 5060}
	to := sim.Addr{Host: "proxy.b.example.com", Port: 5060}
	pkt := &sim.Packet{From: from, To: to, Proto: sim.ProtoSIP, Size: 500}
	d.ProcessSIP(inv, pkt) // create the monitor outside the measured runs
	avg := testing.AllocsPerRun(200, func() {
		d.ProcessSIP(inv, pkt)
	})
	if avg > maxIDSProcessSIPCompiledAllocs {
		t.Errorf("compiled ids.ProcessSIP allocates %.1f/op, budget %d", avg, maxIDSProcessSIPCompiledAllocs)
	}
	if n := len(d.Alerts()); n != 0 {
		t.Fatalf("retransmitted INVITE raised %d alerts", n)
	}
}

// TestAllocBudgetEFSMStepCompiled holds one compiled transition to
// exactly zero allocations: the invite-flood counter spinning on its
// guarded counting self-loop with a typed argument vector, the same
// step BenchmarkEFSMStepCompiled times.
func TestAllocBudgetEFSMStepCompiled(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	m := idsgen.NewFloodMachine(idsgen.FloodInvite, 1<<40)
	args := idsgen.FloodArgs{Dest: "bob@b.example.com", Src: "attacker.example.net"}
	ev := core.Event{Name: ids.EvInvite, Typed: &args}
	if _, err := m.Step(ev); err != nil { // INIT -> counting: arm the self-loop
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := m.Step(ev); err != nil {
			t.Fatal(err)
		}
	})
	if avg > maxEFSMStepCompiledAllocs {
		t.Errorf("compiled Step allocates %.1f/op, budget %d", avg, maxEFSMStepCompiledAllocs)
	}
}

// countingObserver is a minimal core.CoverageObserver: plain counter
// fields, no maps, so it adds zero allocations of its own and the
// measurement isolates the hook mechanism in Machine.Step.
type countingObserver struct {
	fired, emitted, attacks int
}

func (o *countingObserver) TransitionFired(machine string, from core.State, event string, to core.State, label string) {
	o.fired++
}
func (o *countingObserver) DeltaEmitted(machine, target, event string) { o.emitted++ }
func (o *countingObserver) AttackEntered(machine string, state core.State) {
	o.attacks++
}

// TestAllocBudgetCoverageHook holds the per-RTP-packet path to the
// same allocation budget with a coverage observer installed: the
// Machine.Step hook must not box its string/State parameters, so
// observing coverage costs an interface call, not an allocation. (The
// nil-observer case — production — is covered by the other budgets in
// this file.)
func TestAllocBudgetCoverageHook(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	s := sim.New(1)
	cfg := ids.DefaultConfig()
	cfg.RTP.RatePackets = 1 << 30
	d := ids.New(s, cfg)
	obs := &countingObserver{}
	d.SetCoverage(obs)

	inv := benchInvite()
	pa := sim.Addr{Host: "proxy.a.example.com", Port: 5060}
	pb := sim.Addr{Host: "proxy.b.example.com", Port: 5060}
	d.Process(&sim.Packet{From: pa, To: pb, Proto: sim.ProtoSIP, Size: 500, Payload: inv.Bytes()})
	ok := sipmsg.NewResponse(inv, sipmsg.StatusOK)
	ok.To = ok.To.WithTag("t2")
	okContact := sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "ua2.b.example.com"}}
	ok.Contact = &okContact
	ok.ContentType = "application/sdp"
	ok.Body = sdp.New("bob", "ua2.b.example.com", 30000, sdp.PayloadG729).Marshal()
	d.Process(&sim.Packet{From: pb, To: pa, Proto: sim.ProtoSIP, Size: 500, Payload: ok.Bytes()})

	p := &rtp.Packet{PayloadType: 18, SSRC: 42, Payload: make([]byte, 20)}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	pkt := &sim.Packet{
		From:  sim.Addr{Host: "ua1.a.example.com", Port: 20000},
		To:    sim.Addr{Host: "ua2.b.example.com", Port: 30000},
		Proto: sim.ProtoRTP, Size: len(raw), Payload: raw,
	}
	seq := uint16(0)
	before := obs.fired
	avg := testing.AllocsPerRun(200, func() {
		seq++
		binary.BigEndian.PutUint16(raw[2:], seq)
		binary.BigEndian.PutUint32(raw[4:], uint32(seq)*160)
		d.Process(pkt)
	})
	if avg > maxIDSProcessRTPAllocs {
		t.Errorf("ids.Process(RTP) with observer allocates %.1f/op, budget %d", avg, maxIDSProcessRTPAllocs)
	}
	if obs.fired <= before {
		t.Fatalf("observer saw no transitions (fired=%d)", obs.fired)
	}
}

// TestAllocBudgetCallChurn holds the whole call lifecycle — monitor
// creation, establishment, teardown, timer drain, eviction, recycling
// — to its steady-state allocation budget (the dialog mirrors
// BenchmarkCallChurn).
func TestAllocBudgetCallChurn(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	s := sim.New(1)
	cfg := ids.DefaultConfig()
	d := ids.New(s, cfg)
	dialogs := make([][]churnStep, 8)
	for i := range dialogs {
		dialogs[i] = churnDialog(i)
	}
	settle := cfg.ByeGraceT + cfg.CloseLinger + time.Second
	i := 0
	run := func() {
		for _, step := range dialogs[i%len(dialogs)] {
			d.ProcessSIP(step.m, step.pkt)
		}
		if err := s.Run(s.Now() + settle); err != nil {
			t.Fatal(err)
		}
		i++
	}
	// Warm up the monitor pool, intern table, flood windows and the
	// simulator's event free list before measuring.
	for j := 0; j < 32; j++ {
		run()
	}
	avg := testing.AllocsPerRun(100, run)
	if avg > maxCallChurnAllocs {
		t.Errorf("call churn allocates %.1f/dialog, budget %d", avg, maxCallChurnAllocs)
	}
	if n := len(d.Alerts()); n != 0 {
		t.Fatalf("benign churn raised %d alerts", n)
	}
}

// TestAllocBudgetFastpathConsult holds the fast-path hit — the exact
// call shape the ingress lanes use: render the media key into a stack
// buffer, consult through the out-param API — to zero allocations.
func TestAllocBudgetFastpathConsult(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	c := fastpath.New(fastpath.Config{
		Stripes:     8,
		SeqGap:      50,
		TSGap:       8000,
		RateWindow:  time.Second,
		RatePackets: 1 << 30, // never trip the flood predicate here
	})
	host, port := "media.a.example.com", 30000
	var kb [96]byte
	key := ids.AppendMediaKey(kb[:0], host, port)
	c.Install(key, "alloc-budget-call", 0)
	// Arm the way a shard worker would: first consult escalates with
	// the flow pinned, then Update publishes the machine snapshot.
	v, f, epoch, _, _ := c.Lookup(key, 18, 42, 100, 1600, 0)
	if v != fastpath.Miss || f == nil {
		t.Fatalf("priming lookup = %v, want Miss with flow", v)
	}
	if !c.Update(key, epoch, 18, fastpath.Snapshot{Gen: 1, SSRC: 42, Seq: 100, TS: 1600, WinCount: 1}) {
		t.Fatal("arm refused")
	}
	f.Release()

	seq, ts, at := uint16(100), uint32(1600), time.Duration(0)
	var res fastpath.Consult
	avg := testing.AllocsPerRun(200, func() {
		seq++
		ts += 160
		at += 20 * time.Millisecond
		var buf [96]byte
		c.ConsultKey(ids.AppendMediaKey(buf[:0], host, port), 18, 42, seq, ts, at, &res)
		if res.Verdict != fastpath.Hit {
			t.Fatalf("consult = %v at seq %d, want Hit", res.Verdict, seq)
		}
	})
	if avg > maxFastpathConsultAllocs {
		t.Errorf("fastpath consult allocates %.1f/packet, budget %d", avg, maxFastpathConsultAllocs)
	}
}
