//go:build !linux

package ingress

import "net"

// reusePortAvailable gates multi-listener binding; without a portable
// SO_REUSEPORT spelling the tier falls back to a single socket pair.
const reusePortAvailable = false

func listenConfig(bool) net.ListenConfig { return net.ListenConfig{} }
