package ingress

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vids/internal/engine"
	"vids/internal/ids"
	"vids/internal/rtp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/trace"
)

// replaySequential runs a trace through the plain single-threaded IDS
// — the ground truth the tier must reproduce.
func replaySequential(t *testing.T, entries []trace.Entry, cfg ids.Config) []ids.Alert {
	t.Helper()
	s := sim.New(0)
	d := ids.New(s, cfg)
	if err := trace.Replay(s, entries, d); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	alerts := d.Alerts()
	engine.SortAlerts(alerts)
	return alerts
}

// replayIngress feeds a trace through the lane path one packet at a
// time, the way a single listener goroutine would.
func replayIngress(t *testing.T, entries []trace.Entry, cfg Config) ([]ids.Alert, engine.Stats) {
	t.Helper()
	ing := New(cfg)
	for i, en := range entries {
		if err := ing.Ingest(en.Packet(), en.At()); err != nil {
			t.Fatalf("ingest entry %d: %v", i, err)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	return ing.Alerts(), ing.Stats()
}

// TestIngressParityWithSequential is the tier's acceptance check: the
// lane path — lite extract, per-lane flood windows, raw shard handoff
// — must yield the exact alert multiset of the sequential IDS for a
// trace that exercises every detector family, at every lane count.
func TestIngressParityWithSequential(t *testing.T) {
	entries := engine.Synthesize(engine.SynthConfig{Calls: 40, RTPPerCall: 10, Attacks: true})
	if len(entries) < 1000 {
		t.Fatalf("suspiciously small trace: %d entries", len(entries))
	}
	want := replaySequential(t, entries, ids.DefaultConfig())
	if len(want) == 0 {
		t.Fatal("sequential replay raised no alerts; trace is not exercising the detectors")
	}

	for _, lanes := range []int{1, 2, 4} {
		got, st := replayIngress(t, entries, Config{
			Lanes:  lanes,
			Engine: engine.Config{Shards: 4},
		})
		if !reflect.DeepEqual(want, got) {
			t.Errorf("lanes=%d: alert streams diverge: sequential %d alerts, ingress %d",
				lanes, len(want), len(got))
			max := len(want)
			if len(got) > max {
				max = len(got)
			}
			for i := 0; i < max && i < 40; i++ {
				var w, g ids.Alert
				if i < len(want) {
					w = want[i]
				}
				if i < len(got) {
					g = got[i]
				}
				if !reflect.DeepEqual(w, g) {
					t.Errorf("  [%d]\n    seq: %+v\n    ing: %+v", i, w, g)
				}
			}
		}
		if st.Dropped != 0 {
			t.Errorf("lanes=%d: Block policy dropped %d packets", lanes, st.Dropped)
		}
		if st.Processed+st.Absorbed+st.Ignored+st.ParseErrors != uint64(len(entries)) {
			t.Errorf("lanes=%d: accounting mismatch: processed %d + absorbed %d + ignored %d + parse errors %d != %d entries",
				lanes, st.Processed, st.Absorbed, st.Ignored, st.ParseErrors, len(entries))
		}
		if st.Ingested != uint64(len(entries)) {
			t.Errorf("lanes=%d: ingested %d of %d entries", lanes, st.Ingested, len(entries))
		}
	}
}

// TestLaneNormalization: the lane count must always divide the shard
// count, rounding the request down to the nearest divisor.
func TestLaneNormalization(t *testing.T) {
	cases := []struct {
		shards, lanes, want int
	}{
		{4, 0, 4}, // default: one lane per shard
		{4, 4, 4}, // exact
		{4, 3, 2}, // 3 does not divide 4 -> largest divisor below
		{4, 9, 4}, // clamped to the shard count
		{6, 5, 3}, // divisors of 6: 1, 2, 3, 6
		{8, 7, 4}, // divisors of 8: 1, 2, 4, 8
		{1, 4, 1}, // single shard forces a single lane
		{5, 2, 1}, // prime shard counts only split 1 or all
	}
	for _, tc := range cases {
		ing := New(Config{Lanes: tc.lanes, Engine: engine.Config{Shards: tc.shards}})
		if got := ing.Lanes(); got != tc.want {
			t.Errorf("shards=%d lanes=%d: normalized to %d, want %d",
				tc.shards, tc.lanes, got, tc.want)
		}
		if err := ing.Close(); err != nil {
			t.Errorf("shards=%d lanes=%d: close: %v", tc.shards, tc.lanes, err)
		}
	}
}

// TestIngressConcurrentProducers hammers Ingest from several
// goroutines, each replaying a disjoint slice of the dialog space the
// way independent listeners would. A clean workload must stay clean —
// no alerts, no drops, every packet accounted for. Run under -race
// this is also the tier's lock-discipline check.
func TestIngressConcurrentProducers(t *testing.T) {
	const producers = 4
	const callsEach = 24

	traces := make([][]trace.Entry, producers)
	total := 0
	for i := range traces {
		traces[i] = engine.Synthesize(engine.SynthConfig{
			Calls: callsEach, RTPPerCall: 8, FirstCall: i * callsEach,
		})
		total += len(traces[i])
	}

	ing := New(Config{Lanes: 4, Engine: engine.Config{Shards: 4}})
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(entries []trace.Entry) {
			defer wg.Done()
			for _, en := range entries {
				if err := ing.Ingest(en.Packet(), en.At()); err != nil {
					errs <- err
					return
				}
			}
		}(traces[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	if alerts := ing.Alerts(); len(alerts) != 0 {
		t.Errorf("clean concurrent workload raised %d alerts; first: %+v", len(alerts), alerts[0])
	}
	st := ing.Stats()
	if st.Ingested != uint64(total) {
		t.Errorf("ingested %d of %d packets", st.Ingested, total)
	}
	if st.Dropped != 0 {
		t.Errorf("dropped %d packets under Block policy", st.Dropped)
	}
	if st.Processed+st.Absorbed+st.Ignored+st.ParseErrors != uint64(total) {
		t.Errorf("accounting mismatch: %+v", st)
	}
}

// shedInvite builds a minimal well-formed initial INVITE for dialog i.
func shedInvite(i int) *sipmsg.Message {
	host := fmt.Sprintf("ua%d.a.example.com", i)
	inv := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{
		User: fmt.Sprintf("bob%d", i), Host: "b.example.com",
	})
	inv.Via = []sipmsg.Via{{Transport: "UDP", Host: host, Port: 5060,
		Params: map[string]string{"branch": fmt.Sprintf("z9hG4bKshed%d", i)}}}
	inv.From = sipmsg.NameAddr{URI: sipmsg.URI{
		User: fmt.Sprintf("alice%d", i), Host: "a.example.com",
	}}.WithTag(fmt.Sprintf("st%d", i))
	inv.To = sipmsg.NameAddr{URI: sipmsg.URI{
		User: fmt.Sprintf("bob%d", i), Host: "b.example.com",
	}}
	inv.CallID = fmt.Sprintf("ingshed-%d@a.example.com", i)
	inv.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
	return inv
}

// TestIngressShedsMediaBeforeSignaling floods a deliberately tiny tier
// — one shard, its worker parked inside an alert callback — and
// asserts the overload tiers: a full ring sheds arriving media on the
// floor, and arriving signaling evicts queued media before any
// signaling packet is lost. The surviving signaling must still be
// detected on.
func TestIngressShedsMediaBeforeSignaling(t *testing.T) {
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var retired atomic.Uint64
	ing := New(Config{
		Lanes: 1,
		Engine: engine.Config{
			Shards:     1,
			QueueDepth: 8,
			Policy:     engine.Shed,
			OnAlert: func(ids.Alert) {
				once.Do(func() {
					close(blocked)
					<-release
				})
			},
			OnRetire: func(*sim.Packet) { retired.Add(1) },
		},
	})

	// A REGISTER always raises the rogue-register alert: the shard
	// worker parses it, alerts, and parks inside OnAlert.
	reg := sipmsg.NewRequest(sipmsg.REGISTER, sipmsg.URI{Host: "a.example.com"})
	reg.Via = []sipmsg.Via{{Transport: "UDP", Host: "x.example.net", Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKingshed"}}}
	reg.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "a", Host: "a.example.com"}}.WithTag("s1")
	reg.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "a", Host: "a.example.com"}}
	reg.CallID = "ingshed@example.net"
	reg.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.REGISTER}
	regPkt := &sim.Packet{
		From:  sim.Addr{Host: "x.example.net", Port: 5060},
		To:    sim.Addr{Host: "reg.a.example.com", Port: 5060},
		Proto: sim.ProtoSIP, Payload: reg.Bytes(),
	}
	if err := ing.Ingest(regPkt, 0); err != nil {
		t.Fatal(err)
	}
	<-blocked

	// 20 RTCP sender reports toward an unadvertised destination: 8 fill
	// the ring, 12 are floor-dropped (tier 1). Sender reports raise no
	// alerts, so the survivors cannot perturb the alert assertions.
	rtcpPayload := func(i int) []byte {
		raw, err := (&rtp.RTCP{Type: rtp.RTCPSenderReport, SSRC: uint32(i)}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	for i := 0; i < 20; i++ {
		pkt := &sim.Packet{
			From:    sim.Addr{Host: "m.example.net", Port: 40001},
			To:      sim.Addr{Host: "n.example.net", Port: 40001},
			Proto:   sim.ProtoRTCP,
			Payload: rtcpPayload(i),
		}
		if err := ing.Ingest(pkt, time.Duration(i+1)*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	// 5 INVITEs against the full ring: each evicts one queued media
	// packet (tier 2); with 8 media queued, no signaling is ever lost.
	for i := 0; i < 5; i++ {
		inv := shedInvite(i)
		pkt := &sim.Packet{
			From:  sim.Addr{Host: fmt.Sprintf("ua%d.a.example.com", i), Port: 5060},
			To:    sim.Addr{Host: "proxy.b.example.com", Port: 5060},
			Proto: sim.ProtoSIP, Payload: inv.Bytes(),
		}
		if err := ing.Ingest(pkt, time.Duration(30+i)*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	st := ing.Stats()
	if st.DroppedMedia != 17 {
		t.Errorf("DroppedMedia = %d, want 17 (12 floor drops + 5 evictions)", st.DroppedMedia)
	}
	if st.DroppedSignaling != 0 {
		t.Errorf("DroppedSignaling = %d, want 0 — signaling must outlive media", st.DroppedSignaling)
	}
	if st.Processed != 9 { // REGISTER + 3 surviving reports + 5 INVITEs
		t.Errorf("Processed = %d, want 9", st.Processed)
	}
	if st.Processed+st.Absorbed+st.Ignored+st.ParseErrors+st.Dropped != st.Ingested {
		t.Errorf("accounting mismatch: %+v", st)
	}
	if got := retired.Load(); got != st.Ingested {
		t.Errorf("retired %d of %d ingested packets", got, st.Ingested)
	}

	// The surviving signaling still went through detection: exactly the
	// rogue REGISTER alert, despite the flood.
	var rogue int
	for _, a := range ing.Alerts() {
		if a.Type == ids.AlertRogueRegister {
			rogue++
		}
	}
	if rogue != 1 {
		t.Errorf("rogue-register alerts = %d, want 1 — shedding must not mute surviving signaling", rogue)
	}
}

// TestIngressHeaderOnlyMediaParity: the SRTP-degraded mode must leave
// the signaling detectors and the header-driven media detectors
// untouched — the alert multiset may only lose RTCP-payload alerts
// (forged RTCP BYE rides encrypted SRTCP).
func TestIngressHeaderOnlyMediaParity(t *testing.T) {
	entries := engine.Synthesize(engine.SynthConfig{Calls: 20, RTPPerCall: 10, Attacks: true})
	idsCfg := ids.DefaultConfig()
	idsCfg.MediaHeaderOnly = true
	want := replaySequential(t, entries, idsCfg)
	if len(want) == 0 {
		t.Fatal("header-only sequential replay raised no alerts")
	}
	for _, a := range want {
		if a.Type == ids.AlertRTCPBye {
			t.Fatalf("header-only mode should not see RTCP payloads, got %+v", a)
		}
	}

	got, _ := replayIngress(t, entries, Config{
		Lanes:  2,
		Engine: engine.Config{Shards: 4, IDS: idsCfg},
	})
	if !reflect.DeepEqual(want, got) {
		t.Errorf("header-only parity broken: sequential %d alerts, ingress %d", len(want), len(got))
	}
}
