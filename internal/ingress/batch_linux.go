//go:build linux && (amd64 || arm64)

package ingress

import (
	"net"
	"syscall"
	"unsafe"

	"vids/internal/sim"
)

// batchSize is the recvmmsg vector width: how many datagrams one
// poller wakeup may drain with a single syscall.
const batchSize = 16

// mmsghdr mirrors struct mmsghdr(2): a msghdr plus the per-message
// received length the kernel writes back. The trailing pad matches the
// 64-bit layouts this file builds for (amd64, arm64), where the struct
// is padded to msghdr alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// batchReader drains a UDP socket with recvmmsg(2): one syscall
// returns up to batchSize datagrams, amortizing the kernel crossing
// that dominates the per-packet cost of the one-ReadFrom-each loop.
// It layers under the net poller via SyscallConn — the raw read
// callback runs MSG_DONTWAIT and reports would-block — so read
// deadlines and Close behave exactly as they do for ReadFrom.
type batchReader struct {
	rc    syscall.RawConn
	msgs  [batchSize]mmsghdr
	iov   [batchSize]syscall.Iovec
	names [batchSize]syscall.RawSockaddrInet6
	sizes [batchSize]int
	addrs [batchSize]sim.Addr
}

// newBatchReader wraps conn for batched receive, or returns nil when
// the connection cannot expose a raw descriptor (the pump then falls
// back to the portable loop).
func newBatchReader(conn net.PacketConn) *batchReader {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return nil
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return nil
	}
	return &batchReader{rc: rc}
}

// read receives up to len(bufs) datagrams, one per buffer, and reports
// how many arrived. br.sizes and br.addrs hold the per-datagram length
// and source address, parallel to bufs. It blocks on the poller until
// at least one datagram is readable or the connection's read deadline
// expires (the returned error then satisfies net.Error.Timeout).
func (br *batchReader) read(bufs [][]byte) (int, error) {
	k := len(bufs)
	if k > batchSize {
		k = batchSize
	}
	for i := 0; i < k; i++ {
		br.iov[i].Base = &bufs[i][0]
		br.iov[i].SetLen(len(bufs[i]))
		br.msgs[i] = mmsghdr{}
		br.msgs[i].hdr.Iov = &br.iov[i]
		br.msgs[i].hdr.Iovlen = 1
		br.names[i] = syscall.RawSockaddrInet6{}
		br.msgs[i].hdr.Name = (*byte)(unsafe.Pointer(&br.names[i]))
		br.msgs[i].hdr.Namelen = uint32(unsafe.Sizeof(br.names[i]))
	}
	var n int
	var sysErr error
	err := br.rc.Read(func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&br.msgs[0])), uintptr(k),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false // not readable yet: back to the poller
		}
		if e != 0 {
			sysErr = e
		} else {
			n = int(r)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if sysErr != nil {
		return 0, sysErr
	}
	for i := 0; i < n; i++ {
		br.sizes[i] = int(br.msgs[i].len)
		br.addrs[i] = sockaddrToAddr(&br.names[i])
	}
	return n, nil
}

// sockaddrToAddr decodes the kernel-written source address. The port
// is read byte-wise: sockaddr ports are network byte order regardless
// of host endianness.
func sockaddrToAddr(sa *syscall.RawSockaddrInet6) sim.Addr {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		return sim.Addr{Host: net.IP(sa4.Addr[:]).String(), Port: int(p[0])<<8 | int(p[1])}
	case syscall.AF_INET6:
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return sim.Addr{Host: net.IP(sa.Addr[:]).String(), Port: int(p[0])<<8 | int(p[1])}
	}
	return sim.Addr{}
}
