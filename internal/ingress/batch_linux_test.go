//go:build linux && (amd64 || arm64)

package ingress

import (
	"bytes"
	"net"
	"os"
	"testing"
	"time"
)

// TestBatchReaderDrainsVector exercises recvmmsg over loopback: several
// datagrams sent back to back must come out of read with correct
// per-message lengths, payloads and source addresses, across however
// many batches the kernel splits them into.
func TestBatchReaderDrainsVector(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := newBatchReader(conn)
	if br == nil {
		t.Fatal("newBatchReader returned nil for a *net.UDPConn")
	}

	sender, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	senderAddr := sender.LocalAddr().(*net.UDPAddr)

	const sent = 5
	for i := 0; i < sent; i++ {
		msg := bytes.Repeat([]byte{byte('a' + i)}, 10+i)
		if _, err := sender.Write(msg); err != nil {
			t.Fatal(err)
		}
	}

	bufs := make([][]byte, batchSize)
	for i := range bufs {
		bufs[i] = make([]byte, 2048)
	}
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < sent && time.Now().Before(deadline) {
		_ = conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		n, err := br.read(bufs)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			t.Fatalf("read: %v", err)
		}
		for i := 0; i < n; i++ {
			want := bytes.Repeat([]byte{byte('a' + got)}, 10+got)
			if br.sizes[i] != len(want) {
				t.Fatalf("datagram %d: size %d, want %d", got, br.sizes[i], len(want))
			}
			if !bytes.Equal(bufs[i][:br.sizes[i]], want) {
				t.Fatalf("datagram %d: payload %q, want %q", got, bufs[i][:br.sizes[i]], want)
			}
			if br.addrs[i].Port != senderAddr.Port {
				t.Fatalf("datagram %d: source port %d, want %d", got, br.addrs[i].Port, senderAddr.Port)
			}
			if ip := net.ParseIP(br.addrs[i].Host); ip == nil || !ip.IsLoopback() {
				t.Fatalf("datagram %d: source host %q is not loopback", got, br.addrs[i].Host)
			}
			got++
		}
	}
	if got != sent {
		t.Fatalf("received %d datagrams, want %d", got, sent)
	}
}

// TestBatchReaderDeadline pins the poller integration: with nothing to
// read, a read deadline must surface as a timeout error, not a hang
// and not a zero-count success.
func TestBatchReaderDeadline(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := newBatchReader(conn)
	if br == nil {
		t.Fatal("newBatchReader returned nil")
	}
	bufs := [][]byte{make([]byte, 2048)}
	_ = conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	n, err := br.read(bufs)
	if err == nil {
		t.Fatalf("read returned %d datagrams, want timeout", n)
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("read error %v (%T), want a net.Error timeout", err, err)
	}
	if !os.IsTimeout(err) {
		t.Fatalf("read error %v does not satisfy os.IsTimeout", err)
	}
}
