//go:build !linux || (!amd64 && !arm64)

package ingress

import (
	"net"

	"vids/internal/sim"
)

// batchSize on platforms without recvmmsg: the pump's portable
// one-datagram loop is used instead, so the vector width is nominal.
const batchSize = 1

// batchReader is the no-batching stub: newBatchReader always returns
// nil and the pump falls back to the ReadFrom loop. The type exists so
// the batch pump compiles everywhere.
type batchReader struct {
	sizes [batchSize]int
	addrs [batchSize]sim.Addr
}

func newBatchReader(net.PacketConn) *batchReader { return nil }

func (br *batchReader) read([][]byte) (int, error) { return 0, nil }
