package ingress

import (
	"bytes"
	"testing"

	"vids/internal/engine"
	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// TestExtractMatchesFullParse is the lite extract's ground-truth
// property: over every SIP datagram the synthesizer can emit —
// including every attack shape — each field the lanes route on must
// agree exactly with the full parser.
func TestExtractMatchesFullParse(t *testing.T) {
	entries := engine.Synthesize(engine.SynthConfig{Calls: 30, RTPPerCall: 4, Attacks: true})
	sipSeen := 0
	for i, en := range entries {
		pkt := en.Packet()
		if pkt.Proto != sim.ProtoSIP {
			continue
		}
		raw, ok := pkt.Payload.([]byte)
		if !ok {
			t.Fatalf("entry %d: SIP payload is %T", i, pkt.Payload)
		}
		m, err := sipmsg.Parse(raw)
		if err != nil {
			t.Fatalf("entry %d: full parse rejected synthesized SIP: %v", i, err)
		}
		sipSeen++

		var sum sipSummary
		if !extractSIP(raw, &sum) {
			t.Errorf("entry %d: extract bailed on a serialized %s", i, m.Summary())
			continue
		}
		if sum.req != m.IsRequest() {
			t.Errorf("entry %d: req = %v, parser says %v", i, sum.req, m.IsRequest())
		}
		if sum.req && string(sum.method) != string(m.Method) {
			t.Errorf("entry %d: method %q vs %q", i, sum.method, m.Method)
		}
		if !sum.req && sum.status != m.StatusCode {
			t.Errorf("entry %d: status %d vs %d", i, sum.status, m.StatusCode)
		}
		if string(sum.callID) != m.CallID {
			t.Errorf("entry %d: callID %q vs %q", i, sum.callID, m.CallID)
		}
		if sum.toTag != (m.To.Tag() != "") {
			t.Errorf("entry %d: toTag %v, parser tag %q", i, sum.toTag, m.To.Tag())
		}
		if string(sum.cseqMethod) != string(m.CSeq.Method) {
			t.Errorf("entry %d: CSeq method %q vs %q", i, sum.cseqMethod, m.CSeq.Method)
		}
		if sum.req {
			if string(sum.ruriUser) != m.RequestURI.User {
				t.Errorf("entry %d: R-URI user %q vs %q", i, sum.ruriUser, m.RequestURI.User)
			}
			if string(sum.ruriHost) != m.RequestURI.Host {
				t.Errorf("entry %d: R-URI host %q vs %q", i, sum.ruriHost, m.RequestURI.Host)
			}
		}
		if !bytes.Equal(sum.body, m.Body) {
			t.Errorf("entry %d: body diverges (%d vs %d bytes)", i, len(sum.body), len(m.Body))
		}
	}
	if sipSeen < 100 {
		t.Fatalf("only %d SIP datagrams in trace; property check is too weak", sipSeen)
	}
}

// TestExtractBailsToSlowPath: shapes the lite extract must refuse —
// each is either malformed (the slow path counts the parse error) or
// legal-but-rare (the slow path handles it with the full parser). The
// invariant protecting parity is that extract NEVER misreads; bailing
// is always safe.
func TestExtractBailsToSlowPath(t *testing.T) {
	base := "INVITE sip:bob@b.example.com SIP/2.0\r\n" +
		"Via: SIP/2.0/UDP ua1.a.example.com:5060;branch=z9hG4bKx\r\n" +
		"From: <sip:alice@a.example.com>;tag=1\r\n" +
		"To: <sip:bob@b.example.com>\r\n" +
		"Call-ID: bail@a.example.com\r\n" +
		"CSeq: 1 INVITE\r\n\r\n"
	var sum sipSummary
	if !extractSIP([]byte(base), &sum) {
		t.Fatal("extract rejected the baseline message")
	}

	cases := map[string]string{
		"folded header": "INVITE sip:bob@b.example.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP ua1.a.example.com:5060\r\n" +
			"From: <sip:alice@a.example.com>;tag=1\r\n" +
			"To: <sip:bob@b.example.com>\r\n" +
			"Call-ID: bail@a.example.com\r\n" +
			"CSeq: 1\r\n INVITE\r\n\r\n",
		"quoted display name": "INVITE sip:bob@b.example.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP ua1.a.example.com:5060\r\n" +
			"From: <sip:alice@a.example.com>;tag=1\r\n" +
			"To: \"Bob; tag=evil\" <sip:bob@b.example.com>\r\n" +
			"Call-ID: bail@a.example.com\r\n" +
			"CSeq: 1 INVITE\r\n\r\n",
		"unknown method":  "FONDLE sip:b@b SIP/2.0\r\n\r\n",
		"missing call-id": "INVITE sip:bob@b.example.com SIP/2.0\r\nVia: v\r\nFrom: f\r\nTo: t\r\nCSeq: 1 INVITE\r\n\r\n",
		"no start line":   "\r\n\r\n",
		"garbage":         "\x00\x01\x02\x03",
		"bad status":      "SIP/2.0 9x9 Weird\r\nCall-ID: a@b\r\n\r\n",
		"cseq overflow":   "INVITE sip:b@b SIP/2.0\r\nVia: v\r\nFrom: f\r\nTo: t\r\nCall-ID: a@b\r\nCSeq: 99999999999 INVITE\r\n\r\n",
		"truncated body": "INVITE sip:bob@b.example.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP ua1.a.example.com:5060\r\n" +
			"From: <sip:alice@a.example.com>;tag=1\r\n" +
			"To: <sip:bob@b.example.com>\r\n" +
			"Call-ID: bail@a.example.com\r\n" +
			"CSeq: 1 INVITE\r\n" +
			"Content-Length: 999\r\n\r\nshort",
	}
	for name, raw := range cases {
		var s sipSummary
		if extractSIP([]byte(raw), &s) {
			t.Errorf("%s: extract accepted a shape it must defer to the full parser", name)
		}
	}
}
