package ingress

import (
	"bytes"
	"testing"

	"vids/internal/sipmsg"
)

// FuzzLiteExtract is the differential fuzz target for the lane fast
// path: extractSIP must be total on arbitrary datagrams, and whenever
// both the lite extract and the full parser accept the same bytes,
// every field the lanes route on must agree — the misroute-vs-bail
// invariant TestExtractMatchesFullParse checks over synthesized
// traffic, here driven by mutation. An extract accept that the full
// parser rejects is fine: the shard's slow path re-parses and counts
// the error.
func FuzzLiteExtract(f *testing.F) {
	f.Add([]byte("INVITE sip:bob@b.example.com SIP/2.0\r\n" +
		"Via: SIP/2.0/UDP ua1.a.example.com:5060;branch=z9hG4bKx\r\n" +
		"From: <sip:alice@a.example.com>;tag=1\r\n" +
		"To: <sip:bob@b.example.com>\r\n" +
		"Call-ID: bail@a.example.com\r\n" +
		"CSeq: 1 INVITE\r\n\r\n"))
	f.Add([]byte("SIP/2.0 180 Ringing\r\n" +
		"Via: SIP/2.0/UDP p.example.com;branch=z9hG4bKp\r\n" +
		"From: <sip:alice@a.example.com>;tag=1\r\n" +
		"To: <sip:bob@b.example.com>;tag=2\r\n" +
		"Call-ID: ring@a.example.com\r\n" +
		"CSeq: 1 INVITE\r\n\r\n"))
	f.Add([]byte("INVITE sip:bob@b SIP/2.0\r\n" +
		"Via: v\r\nFrom: f\r\nTo: t\r\nCall-ID: c\r\nCSeq: 1 INVITE\r\n" +
		"Content-Length: 4\r\n\r\nv=0\r\ntrailing"))
	f.Add([]byte("\r\n\r\n"))
	f.Add([]byte("\x00\x01\x02\x03"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var sum sipSummary
		if !extractSIP(raw, &sum) {
			return
		}
		m, err := sipmsg.Parse(raw)
		if err != nil {
			return
		}
		if sum.req != m.IsRequest() {
			t.Fatalf("req = %v, parser says %v\nwire: %q", sum.req, m.IsRequest(), raw)
		}
		if sum.req && string(sum.method) != string(m.Method) {
			t.Fatalf("method %q vs %q\nwire: %q", sum.method, m.Method, raw)
		}
		if !sum.req && sum.status != m.StatusCode {
			t.Fatalf("status %d vs %d\nwire: %q", sum.status, m.StatusCode, raw)
		}
		if string(sum.callID) != m.CallID {
			t.Fatalf("callID %q vs %q\nwire: %q", sum.callID, m.CallID, raw)
		}
		if sum.toTag != (m.To.Tag() != "") {
			t.Fatalf("toTag %v, parser tag %q\nwire: %q", sum.toTag, m.To.Tag(), raw)
		}
		if string(sum.cseqMethod) != string(m.CSeq.Method) {
			t.Fatalf("CSeq method %q vs %q\nwire: %q", sum.cseqMethod, m.CSeq.Method, raw)
		}
		if sum.req {
			if string(sum.ruriUser) != m.RequestURI.User {
				t.Fatalf("R-URI user %q vs %q\nwire: %q", sum.ruriUser, m.RequestURI.User, raw)
			}
			if string(sum.ruriHost) != m.RequestURI.Host {
				t.Fatalf("R-URI host %q vs %q\nwire: %q", sum.ruriHost, m.RequestURI.Host, raw)
			}
		}
		if !bytes.Equal(sum.body, m.Body) {
			t.Fatalf("body diverges (%d vs %d bytes)\nwire: %q", len(sum.body), len(m.Body), raw)
		}
	})
}
