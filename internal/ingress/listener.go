package ingress

import (
	"context"
	"fmt"
	"net"
	"time"

	"vids/internal/engine"
	"vids/internal/sim"
)

// UDPListeners feeds an Ingress from live sockets: K listener pairs
// (one SIP socket, one media socket each) bound to the same two
// addresses with SO_REUSEPORT where the platform has it, so the kernel
// spreads datagrams over the readers by flow hash — same-flow packets
// stay on one reader, preserving the per-call ordering the detectors
// assume. Platforms without the option fall back to a single pair.
//
// Each reader draws receive buffers from the tier's free list and
// stamps packets at receive time, before any lane or queue is
// involved, so ingestion backpressure never skews the arrival timeline
// the detectors reason about.
type UDPListeners struct {
	SIPAddr string // e.g. ":5060"
	RTPAddr string // e.g. ":20000"
	// AdvertiseHost is the host recorded as the destination of ingested
	// packets; it should match what SDP bodies advertise. Defaults to
	// each listener's own IP.
	AdvertiseHost string
	// Listeners is the number of socket pairs. Zero or negative means
	// one. Counts above one require SO_REUSEPORT and are clamped to one
	// where it is unavailable.
	Listeners int
}

// Run binds the sockets and pumps datagrams into ing until ctx is
// canceled or a reader fails. It returns only after every reader has
// stopped, so the caller may Close the tier immediately afterward.
func (ul *UDPListeners) Run(ctx context.Context, ing *Ingress) error {
	pairs := ul.Listeners
	if pairs <= 1 {
		pairs = 1
	}
	if pairs > 1 && !reusePortAvailable {
		pairs = 1
	}

	conns := make([]net.PacketConn, 0, 2*pairs)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	lc := listenConfig(pairs > 1)
	for i := 0; i < pairs; i++ {
		sipConn, err := lc.ListenPacket(ctx, "udp", ul.SIPAddr)
		if err != nil {
			return fmt.Errorf("ingress: bind SIP: %w", err)
		}
		conns = append(conns, sipConn)
		rtpConn, err := lc.ListenPacket(ctx, "udp", ul.RTPAddr)
		if err != nil {
			return fmt.Errorf("ingress: bind RTP: %w", err)
		}
		conns = append(conns, rtpConn)
	}

	start := time.Now() //vidslint:allow wallclock — live capture epoch for packet timestamps
	errc := make(chan error, len(conns))
	for i, conn := range conns {
		media := i%2 == 1
		go func(c net.PacketConn, media bool) {
			errc <- ul.pump(ctx, ing, c, start, media)
		}(conn, media)
	}

	var err error
	select {
	case err = <-errc:
	case <-ctx.Done():
	}
	// Unblock the remaining readers and wait them all out.
	for _, c := range conns {
		c.Close()
	}
	for i := 1; i < len(conns); i++ {
		<-errc
	}
	return err
}

// pump reads one socket until cancellation, mirroring
// engine.UDPSource.pump but drawing from the shared tier pool: the
// buffer travels with the packet and the tier's retire hook recycles
// it; on any path where the packet is not handed off, the buffer goes
// straight back.
func (ul *UDPListeners) pump(ctx context.Context, ing *Ingress, conn net.PacketConn, start time.Time, media bool) error {
	local, _ := conn.LocalAddr().(*net.UDPAddr)
	toHost := ul.AdvertiseHost
	if toHost == "" && local != nil {
		toHost = local.IP.String()
	}
	toPort := 0
	if local != nil {
		toPort = local.Port
	}
	pool := ing.Buffers()
	if br := newBatchReader(conn); br != nil {
		return ul.pumpBatch(ctx, ing, conn, br, start, toHost, toPort, media)
	}
	for {
		buf := pool.Get()
		//vidslint:allow wallclock — OS socket deadline, not detection time
		_ = conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			pool.Put(buf)
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if ctx.Err() != nil {
					return nil
				}
				continue
			}
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("ingress: read: %w", err)
		}
		at := time.Since(start) // receive time, not enqueue time
		payload := buf[:n]
		proto := sim.ProtoSIP
		if media {
			proto = sim.ProtoRTP
			if isRTCP(payload) {
				proto = sim.ProtoRTCP
			}
		}
		fromAddr := sim.Addr{}
		if ua, ok := from.(*net.UDPAddr); ok {
			fromAddr = sim.Addr{Host: ua.IP.String(), Port: ua.Port}
		}
		pkt := &sim.Packet{
			From:    fromAddr,
			To:      sim.Addr{Host: toHost, Port: toPort},
			Proto:   proto,
			Size:    n,
			Payload: payload,
		}
		if err := ing.Ingest(pkt, at); err != nil {
			pool.Put(buf)
			if err == engine.ErrClosed {
				return nil
			}
			return err
		}
	}
}

// pumpBatch is the Linux fast pump: recvmmsg(2) drains up to
// batchSize datagrams per syscall into pooled buffers. Consumed
// buffers travel with their packets (the retire hook recycles them);
// slots the batch did not fill keep their buffer for the next read, so
// idle wakeups touch the free list not at all. All datagrams of one
// batch share a receive timestamp — the kernel delivered them
// together, and a finer stamp than the wakeup that surfaced them does
// not exist.
func (ul *UDPListeners) pumpBatch(ctx context.Context, ing *Ingress, conn net.PacketConn, br *batchReader, start time.Time, toHost string, toPort int, media bool) error {
	pool := ing.Buffers()
	var bufs [batchSize][]byte
	defer func() {
		for i, b := range bufs {
			if b != nil {
				pool.Put(b)
				bufs[i] = nil
			}
		}
	}()
	for {
		for i := range bufs {
			if bufs[i] == nil {
				bufs[i] = pool.Get()
			}
		}
		//vidslint:allow wallclock — OS socket deadline, not detection time
		_ = conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		n, err := br.read(bufs[:])
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if ctx.Err() != nil {
					return nil
				}
				continue
			}
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("ingress: read: %w", err)
		}
		at := time.Since(start) // receive time for the whole batch
		for i := 0; i < n; i++ {
			buf := bufs[i]
			payload := buf[:br.sizes[i]]
			proto := sim.ProtoSIP
			if media {
				proto = sim.ProtoRTP
				if isRTCP(payload) {
					proto = sim.ProtoRTCP
				}
			}
			pkt := &sim.Packet{
				From:    br.addrs[i],
				To:      sim.Addr{Host: toHost, Port: toPort},
				Proto:   proto,
				Size:    len(payload),
				Payload: payload,
			}
			bufs[i] = nil // handed off with the packet
			if err := ing.Ingest(pkt, at); err != nil {
				pool.Put(buf)
				if err == engine.ErrClosed {
					return nil
				}
				return err
			}
		}
	}
}

// isRTCP demultiplexes rtcp-mux media sockets: RTP payload types stay
// below 128, RTCP packet types occupy 200–204 (RFC 5761 §4).
func isRTCP(data []byte) bool {
	return len(data) >= 2 && data[0]>>6 == 2 && data[1] >= 200 && data[1] <= 204
}
