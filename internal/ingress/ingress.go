// Package ingress is the production ingestion tier between packet
// sources and the detection engine: M independent lanes standing in
// front of N shard workers, with the serial work the engine's router
// used to do — parse, classify, flood accounting, media-index
// maintenance — either moved onto the shard workers (the full SIP
// parse) or spread over the lanes (everything else).
//
// A lane is a lock stripe, not a goroutine: listener goroutines call
// Ingest concurrently, and each packet takes the lane lock (or locks —
// a SIP packet may touch the flood lane, the call lane and a media
// lane, always sequentially, never nested) that its keys hash to. The
// per-packet work under a lane lock is deliberately tiny: a zero-alloc
// lite extract of the Call-ID/media key (no full parse — the owning
// shard does that, so parsing scales with the shard count), a map
// probe, and a clock advance. The engine's single router mutex, which
// BENCH_engine.json showed flattening shards=4 to shards=1 throughput,
// is out of the hot path entirely: lanes hand raw buffers straight to
// shard queues via EnqueueRaw.
//
// Cross-call detection stays exact under the partitioning because the
// flood detectors are per-destination: every INVITE toward one AOR
// hashes to the same lane, so that lane's FloodWatch sees the
// destination's whole stream, exactly as the engine's shared one
// would. Lane alerts merge into the engine's alert plane via
// RecordAlert.
package ingress

import (
	"runtime"
	"sync"
	"time"

	"vids/internal/bufpool"
	"vids/internal/engine"
	"vids/internal/fastpath"
	"vids/internal/ids"
	"vids/internal/intern"
	"vids/internal/rtp"
	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// laneTableCap bounds each lane's string-intern table, matching the
// engine router's sizing per serialized ingestion point.
const laneTableCap = 4096

// Config parameterizes an Ingress.
type Config struct {
	// Lanes is the number of lock stripes. Zero or negative means one
	// lane per shard. The count is normalized down to the largest
	// divisor of the shard count, so each lane owns an equal, disjoint
	// subset of shards (lane = shard index mod lanes).
	Lanes int
	// BufferSize is the receive-buffer capacity handed to the free
	// list. Zero means bufpool.DefaultSize.
	BufferSize int
	// Engine configures the wrapped detection engine. OnRetire is
	// chained: the ingress installs the pool recycler first and then
	// calls any hook set here.
	Engine engine.Config
}

// mediaEntry is one lane's routing record for an advertised media
// destination.
type mediaEntry struct {
	callID      string        // interned owning Call-ID
	shardIdx    int           // the owning call's shard, resolved at install time
	lastSeen    time.Duration // last packet toward this destination
	lastRefresh time.Duration // last cross-lane refresh of the owning call
}

// lane is one lock stripe of the ingestion tier. All fields after mu
// are guarded by it. Lane locks never nest with each other or with the
// engine's: a packet acquires each lane it needs in sequence, and
// everything engine-facing (EnqueueRaw, RecordAlert, Note*) happens
// after the lane lock is released.
type lane struct {
	mu      sync.Mutex
	clock   *sim.Simulator           // per-lane virtual clock: flood windows, sweeps
	fw      *ids.FloodWatch          // per-destination detectors for keys hashed here
	pending []ids.Alert              // alerts raised under mu, drained outside it
	calls   map[string]time.Duration // Call-ID -> last activity
	gone    map[string]time.Duration // Call-ID -> when the sweep forgot it
	media   map[string]*mediaEntry   // media key -> routing record
	keyBuf  []byte                   // reusable key scratch
	strings *intern.Table
	swept   bool // a sweep is scheduled on clock
}

// Ingress is the multi-lane ingestion tier. Create instances with New;
// the zero value is not usable. Close drains the lanes and the wrapped
// engine.
type Ingress struct {
	e      *engine.Engine
	fp     *fastpath.Cache // the engine's RTP validation cache; nil when disabled
	lanes  []*lane
	pool   *bufpool.Pool
	retire func(*sim.Packet) // the chained retire hook, for lane-side disposal
	retain time.Duration     // idle lifetime of routing entries, mirroring the engine

	// refreshEvery throttles the cross-lane "this call is still
	// streaming" touch a media packet makes on its call's lane: one
	// extra lock acquisition per quarter-retain instead of per packet.
	refreshEvery time.Duration
}

// New builds the tier: the buffer pool, the wrapped engine (with the
// pool recycler chained into OnRetire), and the lanes. The engine's
// IDS config is normalized here so the lane FloodWatch instances run
// the same thresholds the shards do.
func New(cfg Config) *Ingress {
	if cfg.Engine.Shards <= 0 {
		cfg.Engine.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Engine.IDS == (ids.Config{}) {
		cfg.Engine.IDS = ids.DefaultConfig()
	}
	lanes := cfg.Lanes
	if lanes <= 0 || lanes > cfg.Engine.Shards {
		lanes = cfg.Engine.Shards
	}
	for cfg.Engine.Shards%lanes != 0 {
		lanes-- // largest divisor ≤ requested: lanes partition shards evenly
	}

	pool := bufpool.New(cfg.BufferSize)
	user := cfg.Engine.OnRetire
	cfg.Engine.OnRetire = func(pkt *sim.Packet) {
		if raw, ok := pkt.Payload.([]byte); ok {
			pool.Put(raw) // foreign (trace/synthetic) payloads are dropped by the pool
		}
		if user != nil {
			user(pkt)
		}
	}

	ing := &Ingress{
		e:            engine.New(cfg.Engine),
		lanes:        make([]*lane, lanes),
		pool:         pool,
		retire:       cfg.Engine.OnRetire,
		retain:       cfg.Engine.IDS.IdleEviction + cfg.Engine.IDS.CloseLinger,
		refreshEvery: (cfg.Engine.IDS.IdleEviction + cfg.Engine.IDS.CloseLinger) / 4,
	}
	ing.fp = ing.e.Fastpath()
	idsCfg := cfg.Engine.IDS
	idsCfg.ExternalFloods = true // mirror the engine: lanes own the windows
	for i := range ing.lanes {
		l := &lane{
			clock:   sim.New(int64(1000 + i)),
			calls:   make(map[string]time.Duration),
			gone:    make(map[string]time.Duration),
			media:   make(map[string]*mediaEntry),
			strings: intern.New(laneTableCap),
		}
		l.fw = ids.NewFloodWatch(l.clock, idsCfg, func(a ids.Alert) {
			// Runs under l.mu (feeds and clock timers execute only
			// there); the alert is delivered to the engine after unlock.
			l.pending = append(l.pending, a)
		})
		ing.lanes[i] = l
	}
	return ing
}

// Engine exposes the wrapped engine for stats, alerts, and direct
// (router-path) ingestion.
func (ing *Ingress) Engine() *engine.Engine { return ing.e }

// Buffers exposes the receive-buffer free list for listeners to draw
// from.
func (ing *Ingress) Buffers() *bufpool.Pool { return ing.pool }

// Lanes reports the normalized lane count.
func (ing *Ingress) Lanes() int { return len(ing.lanes) }

// Stats snapshots the wrapped engine's counters (lane dispositions are
// folded into them via the engine's Note hooks).
func (ing *Ingress) Stats() engine.Stats { return ing.e.Stats() }

// Alerts merges lane, router and shard alerts. Call after Close.
func (ing *Ingress) Alerts() []ids.Alert { return ing.e.Alerts() }

// Ingest routes one packet into the tier. It implements
// engine.Sink: on error the caller keeps ownership of the payload
// buffer; on success the tier owns it and the retire hook will recycle
// it exactly once. Safe for concurrent use; per-call packet ordering
// is the caller's (per-listener) responsibility.
func (ing *Ingress) Ingest(pkt *sim.Packet, at time.Duration) error {
	switch pkt.Proto {
	case sim.ProtoSIP:
		return ing.ingestSIP(pkt, at)
	case sim.ProtoRTP:
		return ing.ingestMedia(pkt, pkt.To.Host, pkt.To.Port, at)
	case sim.ProtoRTCP:
		// RTCP rides the media port + 1 (RFC 3550), same keying the
		// shard-side handler assumes.
		return ing.ingestMedia(pkt, pkt.To.Host, pkt.To.Port-1, at)
	default:
		ing.e.NoteIngested()
		ing.e.NoteIgnored()
		ing.retirePkt(pkt)
		return nil
	}
}

func (ing *Ingress) retirePkt(pkt *sim.Packet) {
	if ing.retire != nil {
		ing.retire(pkt) //vids:alloc-ok retire hook recycles pooled receive buffers; nil in replay
	}
}

// laneForShard maps a shard index to its owning lane: lanes divide the
// shard count, so shard s belongs to lane s mod M.
func (ing *Ingress) laneForShard(shardIdx int) *lane {
	return ing.lanes[shardIdx%len(ing.lanes)]
}

// laneForMedia stripes media destinations over lanes independently of
// the shard mapping, so a media flood at one host spreads its lock
// pressure away from the victim's signaling lane. Install (host from
// an SDP body) and lookup (host from a packet) hash identical strings.
func (ing *Ingress) laneForMedia(host string, port int) *lane {
	h := fnvString(host)
	h ^= uint32(port) * 2654435761 // Knuth multiplicative mix
	return ing.lanes[int(h%uint32(len(ing.lanes)))]
}

func (ing *Ingress) laneForMediaBytes(host []byte, port int) *lane {
	h := fnvBytes(fnvOffset, host)
	h ^= uint32(port) * 2654435761
	return ing.lanes[int(h%uint32(len(ing.lanes)))]
}

// laneForDest stripes flood destinations (user@host AORs for INVITE
// windows, plain hosts for reflection windows) over lanes.
func (ing *Ingress) laneForDest(user, host []byte) *lane {
	h := fnvBytes(fnvOffset, user)
	h = fnvByte(h, '@')
	h = fnvBytes(h, host)
	return ing.lanes[int(h%uint32(len(ing.lanes)))]
}

func (ing *Ingress) laneForHost(host string) *lane {
	return ing.lanes[int(fnvString(host)%uint32(len(ing.lanes)))]
}

const (
	fnvOffset = 2166136261
	fnvPrime  = 16777619
)

func fnvBytes(h uint32, b []byte) uint32 {
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= fnvPrime
	}
	return h
}

func fnvByte(h uint32, c byte) uint32 {
	h ^= uint32(c)
	h *= fnvPrime
	return h
}

func fnvString(s string) uint32 {
	h := uint32(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime
	}
	return h
}

// ingestSIP is the signaling lane path: lite-extract the routing
// fields, feed the flood window for initial INVITEs, maintain the
// call/tombstone maps, install media routes from SDP, and hand the raw
// buffer to the owning shard, which parses it there. Anything the
// extract cannot commit to falls back to a full parse (cold path).
//
//vids:noalloc the per-datagram signaling path; alert/absorb/install branches are cold
func (ing *Ingress) ingestSIP(pkt *sim.Packet, at time.Duration) error {
	raw, ok := pkt.Payload.([]byte)
	if !ok {
		ing.e.NoteIngested()
		ing.e.NoteParseError()
		ing.retirePkt(pkt)
		return nil
	}
	var sum sipSummary
	if !extractSIP(raw, &sum) {
		return ing.ingestSIPSlow(pkt, raw, at)
	}

	isInvite := sum.req && string(sum.method) == "INVITE"
	if isInvite && !sum.toTag {
		// Initial INVITE: feed the per-destination Figure 4 window on
		// the destination's lane.
		ing.feedInvite(sum.ruriUser, sum.ruriHost, pkt.From.Host, at)
	}

	shardIdx := ing.e.ShardIndexForBytes(sum.callID)
	l := ing.laneForShard(shardIdx)
	l.mu.Lock()
	_ = l.clock.RunUntil(at)
	if isInvite {
		cid := l.strings.Bytes(sum.callID)
		l.calls[cid] = at //vids:alloc-ok one dialog slot per INVITE; the sweep bounds the table
		delete(l.gone, cid)
		ing.armSweep(l)
	} else if _, known := l.calls[string(sum.callID)]; known {
		l.calls[l.strings.Bytes(sum.callID)] = at //vids:alloc-ok refreshes the slot the probe above found
	} else if !sum.req {
		// A response for a call this edge never initiated: absorbed
		// here, exactly as the engine's router absorbs it — the shards
		// never see it. Tombstoned calls swallow their stragglers
		// silently.
		_, evicted := l.gone[string(sum.callID)]
		alerts := l.takePending()
		l.mu.Unlock()
		ing.drain(alerts)
		return ing.absorbStray(pkt, raw, evicted, at)
	}
	alerts := l.takePending()
	l.mu.Unlock()
	ing.drain(alerts)

	// Mirror ids.indexMedia: the INVITE's SDP names where the callee's
	// stream will land, the 2xx answer's where the caller's will.
	if isInvite || (!sum.req && sum.status >= 200 && sum.status < 300 &&
		string(sum.cseqMethod) == "INVITE") {
		if addr, port, _, ok := sdp.MediaDest(sum.body); ok {
			ing.installMedia(addr, port, sum.callID, at)
		}
	}

	if ing.fp != nil {
		// Signaling can change what this call's RTP means (BYE, CANCEL,
		// renegotiation): disarm its flows before the event is enqueued,
		// so an RTP packet racing this datagram on another lane can no
		// longer be absorbed against pre-transition state.
		ing.fp.DisarmCall(sum.callID)
	}
	if err := ing.e.EnqueueRaw(shardIdx, pkt, at); err != nil {
		return err
	}
	ing.e.NoteIngested()
	return nil
}

// feedInvite renders user@host into the destination lane's scratch,
// interns it, and feeds that lane's INVITE-flood window.
func (ing *Ingress) feedInvite(user, host []byte, src string, at time.Duration) {
	l := ing.laneForDest(user, host)
	l.mu.Lock()
	_ = l.clock.RunUntil(at)
	l.keyBuf = append(l.keyBuf[:0], user...)
	l.keyBuf = append(l.keyBuf, '@')
	l.keyBuf = append(l.keyBuf, host...)
	l.fw.FeedInvite(l.strings.Bytes(l.keyBuf), src, l.clock.Now())
	alerts := l.takePending()
	l.mu.Unlock()
	ing.drain(alerts)
}

// installMedia records an advertised media destination on its lane.
// The install is per-SDP-observation (cold next to the media stream it
// routes), so interning the host and key here is fine.
func (ing *Ingress) installMedia(addr []byte, port int, callID []byte, at time.Duration) {
	l := ing.laneForMediaBytes(addr, port)
	l.mu.Lock()
	_ = l.clock.RunUntil(at)
	host := l.strings.Bytes(addr)
	l.keyBuf = ids.AppendMediaKey(l.keyBuf[:0], host, port)
	key := l.strings.Bytes(l.keyBuf)
	cid := l.strings.Bytes(callID)
	ent, ok := l.media[key]
	if ok {
		ent.callID = cid
		ent.shardIdx = ing.e.ShardIndexFor(cid)
		ent.lastSeen = at
		ent.lastRefresh = at
	} else {
		ent = &mediaEntry{ //vids:alloc-ok one routing record per advertised destination
			callID: cid, shardIdx: ing.e.ShardIndexFor(cid),
			lastSeen: at, lastRefresh: at,
		}
		l.media[key] = ent //vids:alloc-ok per-SDP-observation insert, cold next to the stream it routes
	}
	if ing.fp != nil {
		// Register (or, on SDP renegotiation, invalidate) the flow in
		// the validation cache under the interned owner. The cache
		// mirrors the shard index so its consult can route absorbed
		// packets without touching this lane again.
		ing.fp.Install(l.keyBuf, cid, ent.shardIdx)
	}
	ing.armSweep(l)
	alerts := l.takePending()
	l.mu.Unlock()
	ing.drain(alerts)
}

// absorbStray handles a response for an unknown call. The full parse
// happens here — strays are off the forwarding path, and the exact
// message (Summary, CSeq method) drives the reflection detector with
// router-path fidelity.
//
//vids:coldpath stray responses never reach a shard; volume is bounded by the reflection window
func (ing *Ingress) absorbStray(pkt *sim.Packet, raw []byte, evicted bool, at time.Duration) error {
	m, err := sipmsg.Parse(raw)
	if err != nil {
		ing.e.NoteIngested()
		ing.e.NoteParseError()
		ing.retirePkt(pkt)
		return nil
	}
	if !evicted && m.CSeq.Method != sipmsg.REGISTER {
		l := ing.laneForHost(pkt.To.Host)
		l.mu.Lock()
		_ = l.clock.RunUntil(at)
		l.fw.FeedStrayResponse(m, pkt.To.Host, pkt.From.Host, l.clock.Now())
		alerts := l.takePending()
		l.mu.Unlock()
		ing.drain(alerts)
	}
	ing.e.NoteIngested()
	ing.e.NoteAbsorbed()
	ing.retirePkt(pkt)
	return nil
}

// ingestSIPSlow is the fallback for datagrams the lite extract cannot
// commit to: a full parse, then the same routing decisions. Parse
// failures are counted and retired here, so the shards only ever
// re-parse messages known to be well-formed.
//
//vids:coldpath the lite extract covers the protocol's serialized shapes; this path is for the torture cases
func (ing *Ingress) ingestSIPSlow(pkt *sim.Packet, raw []byte, at time.Duration) error {
	m, err := sipmsg.Parse(raw)
	if err != nil {
		ing.e.NoteIngested()
		ing.e.NoteParseError()
		ing.retirePkt(pkt)
		return nil
	}
	var sum sipSummary
	sum.req = m.IsRequest()
	if sum.req {
		sum.method = []byte(m.Method)
		sum.ruriUser = []byte(m.RequestURI.User)
		sum.ruriHost = []byte(m.RequestURI.Host)
	} else {
		sum.status = m.StatusCode
	}
	sum.callID = []byte(m.CallID)
	sum.toTag = m.To.Tag() != ""
	sum.cseqMethod = []byte(m.CSeq.Method)
	sum.body = m.Body

	isInvite := sum.req && m.Method == sipmsg.INVITE
	if isInvite && !sum.toTag {
		ing.feedInvite(sum.ruriUser, sum.ruriHost, pkt.From.Host, at)
	}
	shardIdx := ing.e.ShardIndexFor(m.CallID)
	l := ing.laneForShard(shardIdx)
	l.mu.Lock()
	_ = l.clock.RunUntil(at)
	if isInvite {
		cid := l.strings.String(m.CallID)
		l.calls[cid] = at
		delete(l.gone, cid)
		ing.armSweep(l)
	} else if _, known := l.calls[m.CallID]; known {
		l.calls[l.strings.String(m.CallID)] = at
	} else if !sum.req {
		_, evicted := l.gone[m.CallID]
		alerts := l.takePending()
		l.mu.Unlock()
		ing.drain(alerts)
		return ing.absorbStray(pkt, raw, evicted, at)
	}
	alerts := l.takePending()
	l.mu.Unlock()
	ing.drain(alerts)

	if isInvite || (m.IsResponse() && m.IsSuccess() && m.CSeq.Method == sipmsg.INVITE) {
		if addr, port, _, ok := sdp.MediaDest(m.Body); ok {
			ing.installMedia(addr, port, sum.callID, at)
		}
	}
	if ing.fp != nil {
		ing.fp.DisarmCall(sum.callID)
	}
	if err := ing.e.EnqueueRaw(shardIdx, pkt, at); err != nil {
		return err
	}
	ing.e.NoteIngested()
	return nil
}

// ingestMedia is the media hot path. An RTP packet consults the
// validation cache first — key rendered into a stack buffer, one
// stripe lock, no lane lock — and an in-profile packet is absorbed
// right there: one hit-counter add, buffer back to the pool, done.
// Everything else (predicate miss, unknown flow, RTCP, cache
// disabled) takes the lane path: clock advance, routing-map
// bookkeeping, shard enqueue. A known destination routes to its
// call's shard; a destination no SDP advertised hashes by its key, so
// an unsolicited stream still lands all its packets on one shard's
// spam monitor — exactly the engine router's semantics.
//
//vids:noalloc the per-datagram media path
func (ing *Ingress) ingestMedia(pkt *sim.Packet, host string, port int, at time.Duration) error {
	var (
		res       fastpath.Consult
		consulted bool
	)
	if ing.fp != nil && pkt.Proto == sim.ProtoRTP {
		if raw, isRaw := pkt.Payload.([]byte); isRaw {
			if ssrc, pt, seq, ts, extracted := rtp.ExtractLite(raw); extracted {
				var kb [96]byte // media keys are "m|host|port"; hosts are DNS labels, never near 96 bytes
				ing.fp.ConsultKey(ids.AppendMediaKey(kb[:0], host, port), pt, ssrc, seq, ts, at, &res)
				consulted = true
				if res.Verdict == fastpath.Hit {
					if res.Touch {
						// Amortized liveness: the absorbed stream no
						// longer walks the lanes, so once per refresh
						// interval a hit pays the bookkeeping the slow
						// path pays per packet.
						ing.touchMedia(host, port, at)
					}
					ing.e.NoteFastpathHit(res.ShardIdx)
					ing.retirePkt(pkt)
					return nil
				}
			}
		}
	}

	l := ing.laneForMedia(host, port)
	var (
		shardIdx int
		touchCID string
	)
	l.mu.Lock()
	_ = l.clock.RunUntil(at)
	l.keyBuf = ids.AppendMediaKey(l.keyBuf[:0], host, port)
	if ent, ok := l.media[string(l.keyBuf)]; ok {
		ent.lastSeen = at
		shardIdx = ent.shardIdx
		if at-ent.lastRefresh > ing.refreshEvery {
			// Amortized cross-lane touch: keep the owning call alive on
			// its signaling lane without paying a second lock per packet.
			ent.lastRefresh = at
			touchCID = ent.callID
		}
		if ing.fp != nil && pkt.Proto == sim.ProtoRTCP {
			if raw, isRaw := pkt.Payload.([]byte); isRaw &&
				len(raw) >= 2 && raw[1] == rtp.RTCPBye {
				// An RTCP BYE starts the media-plane teardown clock on
				// the worker: stop absorbing before it gets there.
				ing.fp.Disarm(l.keyBuf)
			}
		}
	} else if consulted && res.Flow != nil {
		// The lane's routing entry was swept but the cache still knows
		// the flow: route by its mirrored shard, keeping the packet on
		// the owning call's monitor.
		shardIdx = res.ShardIdx
	} else {
		shardIdx = ing.e.ShardIndexForBytes(l.keyBuf)
	}
	alerts := l.takePending()
	l.mu.Unlock()
	ing.drain(alerts)

	ing.touchCall(touchCID, at)
	if consulted && res.Flow != nil {
		if err := ing.e.EnqueueMedia(shardIdx, pkt, at, res.Flow, res.Epoch, res.Snap, res.HasSnap); err != nil {
			return err
		}
		ing.e.NoteIngested()
		return nil
	}
	if err := ing.e.EnqueueRaw(shardIdx, pkt, at); err != nil {
		return err
	}
	ing.e.NoteIngested()
	return nil
}

// touchMedia refreshes the lane bookkeeping for an absorbed flow: the
// routing entry's activity stamp (its lane's sweep) and the owning
// call's slot (the signaling lane's sweep). The cache's Touch signal
// rates this at once per quarter-retain per flow, so absorption never
// looks like idleness to either sweep.
//
//vids:coldpath one refresh per quarter-retain per absorbed flow, not per packet
func (ing *Ingress) touchMedia(host string, port int, at time.Duration) {
	l := ing.laneForMedia(host, port)
	var touchCID string
	l.mu.Lock()
	_ = l.clock.RunUntil(at)
	l.keyBuf = ids.AppendMediaKey(l.keyBuf[:0], host, port)
	if ent, ok := l.media[string(l.keyBuf)]; ok {
		ent.lastSeen = at
		ent.lastRefresh = at
		touchCID = ent.callID
	}
	alerts := l.takePending()
	l.mu.Unlock()
	ing.drain(alerts)
	ing.touchCall(touchCID, at)
}

// touchCall refreshes a live call's activity slot on its signaling
// lane; tombstoned or forgotten calls are left alone.
//
//vids:noalloc empty-cid common case returns before any lock
func (ing *Ingress) touchCall(cid string, at time.Duration) {
	if cid == "" {
		return
	}
	cl := ing.laneForShard(ing.e.ShardIndexFor(cid))
	cl.mu.Lock()
	if _, live := cl.calls[cid]; live {
		cl.calls[cid] = at //vids:alloc-ok refreshes the slot the guard above found
	}
	cl.mu.Unlock()
}

// takePending detaches the lane's raised-alert backlog. Caller holds
// l.mu; the returned slice is delivered via drain after unlock. The
// common case is empty and free; the alert case hands the whole slice
// over and lets the next raise start a fresh one.
func (l *lane) takePending() []ids.Alert {
	if len(l.pending) == 0 {
		return nil
	}
	out := l.pending
	l.pending = nil
	return out
}

// drain merges lane-raised alerts into the engine's alert plane.
//
//vids:coldpath alerts are detections, not traffic; the common-case call carries a nil slice
func (ing *Ingress) drain(alerts []ids.Alert) {
	for _, a := range alerts {
		ing.e.RecordAlert(a)
	}
}

// armSweep schedules the lane's routing-index sweep on its clock,
// mirroring the engine router's GC: entries idle longer than the shard
// would keep their call are dropped, and forgotten Call-IDs leave
// tombstones so straggler responses stay silent. Media entries carry
// their own activity stamp because their owning call may live on
// another lane, which this lane must not lock. Caller holds l.mu.
func (ing *Ingress) armSweep(l *lane) {
	if l.swept || ing.retain <= 0 {
		return
	}
	l.swept = true
	l.clock.Schedule(ing.retain/2, func() { //vids:alloc-ok one sweep closure per retain/2 window, not per packet
		l.swept = false
		now := l.clock.Now()
		for id, last := range l.calls {
			if now-last > ing.retain {
				delete(l.calls, id)
				l.gone[id] = now //vids:alloc-ok one tombstone per forgotten call, expired by the next sweep
			}
		}
		for id, at := range l.gone {
			if now-at > ing.retain {
				delete(l.gone, id)
			}
		}
		for key, ent := range l.media {
			if now-ent.lastSeen > ing.retain {
				delete(l.media, key)
			}
		}
		if len(l.calls)+len(l.gone)+len(l.media) > 0 {
			ing.armSweep(l)
		}
	})
}

// Close drains the tier: every lane's clock runs to completion (open
// flood windows expire, sweeps settle), lane alerts merge, and the
// wrapped engine is closed — which drains the shard queues and their
// timers. Callers must stop feeding Ingest first (listeners stop on
// ctx cancellation before their Run returns).
func (ing *Ingress) Close() error {
	var firstErr error
	for _, l := range ing.lanes {
		l.mu.Lock()
		err := l.clock.RunAll()
		alerts := l.takePending()
		l.mu.Unlock()
		ing.drain(alerts)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := ing.e.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
