package ingress

import "bytes"

// sipSummary is the routing-relevant skeleton of one SIP datagram: the
// handful of fields a lane needs to pick a shard, feed the cross-call
// detectors, and maintain its routing indexes. Every byte-slice field
// aliases the receive buffer — nothing is materialized — so a summary
// is only valid until the buffer is handed onward or retired.
type sipSummary struct {
	req        bool // request (method set) vs response (status set)
	method     []byte
	status     int
	callID     []byte
	toTag      bool // the To header carries a non-empty tag parameter
	cseqMethod []byte
	ruriUser   []byte // request only: Request-URI user part
	ruriHost   []byte // request only: Request-URI host part
	body       []byte // Content-Length-clamped message body
}

var liteCRLFCRLF = []byte("\r\n\r\n")

// extractSIP fills s from raw without allocating: one pass over the
// start line and header block, touching only the five header families
// routing needs (Via, From, To, Call-ID, CSeq, Content-Length). It is
// deliberately less tolerant than sipmsg.Parse — folded continuation
// lines, quoted display names in To, or any malformed field make it
// report false, and the caller falls back to the full parser. It must
// never accept a shape it might misread: a false negative costs one
// cold-path parse, a false positive misroutes a packet.
//
//vids:noalloc the per-datagram SIP routing extract on the lane hot path
//vids:nopanic one pass over raw network bytes before any validation
func extractSIP(raw []byte, s *sipSummary) bool {
	*s = sipSummary{}
	headerEnd, bodyStart := len(raw), len(raw)
	if i := bytes.Index(raw, liteCRLFCRLF); i >= 0 {
		headerEnd, bodyStart = i, i+4
	}
	hdr := raw[:headerEnd]

	line, pos := liteCutLine(hdr, 0)
	if !extractStartLine(s, liteTrim(line)) {
		return false
	}

	var haveVia, haveFrom, haveTo, haveCallID, haveCSeq bool
	contentLength := -1
	for pos <= len(hdr) {
		var ln []byte
		ln, pos = liteCutLine(hdr, pos)
		if len(ln) == 0 {
			continue
		}
		if ln[0] == ' ' || ln[0] == '\t' {
			return false // folded header: the full parser unfolds, we bail
		}
		colon := bytes.IndexByte(ln, ':')
		if colon < 0 {
			return false
		}
		name := liteTrim(ln[:colon])
		value := liteTrim(ln[colon+1:])
		switch {
		case liteFold(name, "via") || liteFold(name, "v"):
			haveVia = true
		case liteFold(name, "from") || liteFold(name, "f"):
			haveFrom = true
		case liteFold(name, "to") || liteFold(name, "t"):
			tag, ok := extractToTag(value)
			if !ok {
				return false
			}
			s.toTag = tag
			haveTo = true
		case liteFold(name, "call-id") || liteFold(name, "i"):
			if len(value) == 0 {
				return false
			}
			s.callID = value // duplicates: last wins, like the full parser
			haveCallID = true
		case liteFold(name, "cseq"):
			method, ok := extractCSeqMethod(value)
			if !ok {
				return false
			}
			s.cseqMethod = method
			haveCSeq = true
		case liteFold(name, "content-length") || liteFold(name, "l"):
			n, ok := liteAtoi(value)
			if !ok {
				return false
			}
			contentLength = n
		}
	}
	// Mirror sipmsg's Validate: the headers it requires must be present,
	// or the full parser would have rejected the message.
	if !haveVia || !haveFrom || !haveTo || !haveCallID || !haveCSeq {
		return false
	}
	body := raw[bodyStart:] //vids:panic-ok bodyStart is len(raw) or bytes.Index(raw, liteCRLFCRLF)+4 ≤ len(raw) when the 4-byte needle is found
	if contentLength >= 0 {
		if contentLength > len(body) {
			return false
		}
		body = body[:contentLength]
	}
	s.body = body
	return true
}

const liteSIPVersion = "SIP/2.0"

// extractStartLine parses `METHOD URI SIP/2.0` or `SIP/2.0 code
// reason`, filling the request/response discriminator and the routing
// fields. Only the exact single-space shape the protocol serializes is
// accepted; anything looser falls back.
func extractStartLine(s *sipSummary, line []byte) bool {
	if len(line) > len(liteSIPVersion) &&
		string(line[:len(liteSIPVersion)]) == liteSIPVersion &&
		line[len(liteSIPVersion)] == ' ' {
		rest := line[len(liteSIPVersion)+1:]
		codePart := rest
		if sp := bytes.IndexByte(rest, ' '); sp >= 0 {
			codePart = rest[:sp]
		}
		code, ok := liteAtoi(codePart)
		if !ok || code < 100 || code > 699 {
			return false
		}
		s.status = code
		return true
	}
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 <= 0 {
		return false
	}
	tail := line[sp1+1:]
	sp2 := bytes.IndexByte(tail, ' ')
	if sp2 <= 0 {
		return false
	}
	if string(tail[sp2+1:]) != liteSIPVersion {
		return false
	}
	method := line[:sp1]
	if !liteKnownMethod(method) {
		return false // the full parser decides; unknown methods are rejects
	}
	user, host, ok := extractURI(tail[:sp2])
	if !ok {
		return false
	}
	s.req = true
	s.method = method
	s.ruriUser = user
	s.ruriHost = host
	return true
}

// extractURI splits `sip:user@host[:port]` (optionally angle-quoted,
// parameters and headers stripped) the way sipmsg.ParseURI does.
func extractURI(u []byte) (user, host []byte, ok bool) {
	if len(u) >= 2 && u[0] == '<' && u[len(u)-1] == '>' {
		u = u[1 : len(u)-1]
	}
	if len(u) < 4 || string(u[:4]) != "sip:" {
		return nil, nil, false
	}
	rest := u[4:]
	// Truncate at the first parameter or header delimiter; truncating
	// at ';' first and then '?' finds whichever comes first.
	if i := bytes.IndexByte(rest, ';'); i >= 0 {
		rest = rest[:i]
	}
	if i := bytes.IndexByte(rest, '?'); i >= 0 {
		rest = rest[:i]
	}
	if at := bytes.IndexByte(rest, '@'); at >= 0 {
		user = rest[:at]
		rest = rest[at+1:]
	}
	if c := bytes.IndexByte(rest, ':'); c >= 0 {
		port, okp := liteAtoi(rest[c+1:])
		if !okp || port <= 0 || port > 65535 {
			return nil, nil, false
		}
		rest = rest[:c]
	}
	if len(rest) == 0 {
		return nil, nil, false
	}
	return user, rest, true
}

// extractToTag reports whether a To header value carries a non-empty
// tag parameter. Quoted display names could hide separators, so their
// presence fails the extract and defers to the full parser.
func extractToTag(value []byte) (tag, ok bool) {
	if bytes.IndexByte(value, '"') >= 0 {
		return false, false
	}
	params := value
	if i := bytes.IndexByte(value, '<'); i >= 0 {
		j := bytes.IndexByte(value, '>')
		if j < i {
			return false, false
		}
		params = value[j+1:]
	} else if k := bytes.IndexByte(value, ';'); k >= 0 {
		params = value[k:]
	} else {
		return false, true
	}
	for len(params) > 0 {
		var seg []byte
		if i := bytes.IndexByte(params, ';'); i >= 0 {
			seg, params = params[:i], params[i+1:]
		} else {
			seg, params = params, nil
		}
		seg = liteTrim(seg)
		if eq := bytes.IndexByte(seg, '='); eq >= 0 {
			if string(liteTrim(seg[:eq])) == "tag" && len(liteTrim(seg[eq+1:])) > 0 {
				return true, true
			}
		}
	}
	return false, true
}

// extractCSeqMethod validates `seq method` exactly as the full parser
// does (decimal 32-bit sequence, single method token) and returns the
// method bytes.
func extractCSeqMethod(value []byte) ([]byte, bool) {
	sp := bytes.IndexByte(value, ' ')
	if sp <= 0 {
		return nil, false
	}
	seq := value[:sp]
	method := liteTrim(value[sp+1:])
	if len(method) == 0 || bytes.IndexByte(method, ' ') >= 0 {
		return nil, false
	}
	var n uint64
	for _, c := range seq {
		if c < '0' || c > '9' {
			return nil, false
		}
		n = n*10 + uint64(c-'0')
		if n > 1<<32-1 {
			return nil, false
		}
	}
	return method, true
}

// liteCutLine mirrors sipmsg's cutLine: the line starting at pos up to
// CRLF (or end of b), and the position after the terminator.
func liteCutLine(b []byte, pos int) ([]byte, int) {
	if pos < 0 || pos > len(b) {
		return nil, len(b) + 1
	}
	rest := b[pos:]
	for i := 0; i+1 < len(rest); i++ {
		if rest[i] == '\r' && rest[i+1] == '\n' {
			return rest[:i], pos + i + 2
		}
	}
	return rest, len(b) + 1
}

func liteTrim(b []byte) []byte {
	for len(b) > 0 && liteSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && liteSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func liteSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// liteFold reports whether b equals the lower-case name s under ASCII
// case folding.
func liteFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := b[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// liteAtoi parses a non-negative decimal integer; anything else fails.
func liteAtoi(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		if n > (1<<31-1)/10 {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// knownMethods matches sipmsg.KnownMethods: methods are
// case-sensitive tokens, compared exactly.
var knownMethods = [][]byte{
	[]byte("INVITE"), []byte("ACK"), []byte("BYE"),
	[]byte("CANCEL"), []byte("REGISTER"), []byte("OPTIONS"),
}

func liteKnownMethod(m []byte) bool {
	for _, k := range knownMethods {
		if bytes.Equal(m, k) {
			return true
		}
	}
	return false
}
