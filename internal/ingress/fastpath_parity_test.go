package ingress

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"vids/internal/engine"
	"vids/internal/ids"
	"vids/internal/scenario"
	"vids/internal/sim"
	"vids/internal/trace"
	"vids/internal/workload"
)

// captureScenario runs a named attack scenario with a network tap and
// returns the delivered wire-level packet trace — the same packet
// stream the testbed's inline IDS observed, replayable against any
// backend.
func captureScenario(t *testing.T, name string) []trace.Entry {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	_, err := scenario.Run(name, scenario.Options{
		Seed: 1, Out: io.Discard,
		Prepare: func(tb *workload.Testbed) { tb.Net.Tap(w.Tap) },
	})
	if err != nil {
		t.Fatalf("scenario %s: %v", name, err)
	}
	entries, err := trace.Read(&buf)
	if err != nil {
		t.Fatalf("scenario %s: read capture: %v", name, err)
	}
	if len(entries) == 0 {
		t.Fatalf("scenario %s: empty capture", name)
	}
	return entries
}

// assertFastpathParity replays entries three ways — sequential IDS,
// lane tier with the validation cache, lane tier without — and
// requires the exact alert multiset from all three. This is the
// tentpole's correctness contract: absorption may change *work*, never
// *alerts*.
func assertFastpathParity(t *testing.T, name string, entries []trace.Entry) {
	t.Helper()
	want := replaySequential(t, entries, ids.DefaultConfig())
	for _, disable := range []bool{false, true} {
		got, st := replayIngress(t, entries, Config{
			Lanes:  2,
			Engine: engine.Config{Shards: 4, DisableFastpath: disable},
		})
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: fastpath=%v: alert multiset diverges from sequential: %d vs %d alerts",
				name, !disable, len(got), len(want))
			for i := 0; i < len(want) || i < len(got); i++ {
				var w, g ids.Alert
				if i < len(want) {
					w = want[i]
				}
				if i < len(got) {
					g = got[i]
				}
				if !reflect.DeepEqual(w, g) {
					t.Errorf("  [%d]\n    seq: %+v\n    ing: %+v", i, w, g)
				}
			}
		}
		if disable && st.FastpathHits+st.FastpathMisses+st.FastpathEscalations != 0 {
			t.Errorf("%s: disabled cache was consulted: %+v", name, st)
		}
		if sum := st.Processed + st.Absorbed + st.Ignored + st.ParseErrors; sum != uint64(len(entries)) {
			t.Errorf("%s: fastpath=%v: accounting mismatch: %d accounted of %d entries",
				name, !disable, sum, len(entries))
		}
	}
}

// TestFastpathScenarioParity pins alert parity across every attack
// scenario in the suite: -fastpath on and off must both reproduce the
// sequential ground truth exactly.
func TestFastpathScenarioParity(t *testing.T) {
	for _, name := range scenario.Names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			assertFastpathParity(t, name, captureScenario(t, name))
		})
	}
}

// TestFastpathWitnessTraceParity pins alert parity across the
// hand-authored speccover witness traces — the packet sequences built
// to reach transitions the scenarios do not, including the reorder,
// absorb and post-close corners most likely to disagree with a cache.
func TestFastpathWitnessTraceParity(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "coverage-traces", "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 14 {
		t.Fatalf("found %d witness traces, want at least 14", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			entries, err := trace.Read(f)
			if err != nil {
				t.Fatal(err)
			}
			assertFastpathParity(t, filepath.Base(path), entries)
		})
	}
}

// TestFastpathRTPRacingBYEAcrossLanes is the adversarial interleaving:
// a call's media is being absorbed by the cache when its BYE arrives
// on a *different lane*, racing hundreds of in-flight RTP packets. The
// ingress-time DisarmCall must linearize the BYE against absorption —
// whatever the arrival interleaving, RTP the cache absorbs is
// "before the BYE" and RTP after the disarm takes the slow path, where
// the machine (in RTP_AFTER_BYE) raises exactly one toll-fraud alert.
// No interleaving may yield zero alerts (absorption swallowing the
// attack) or extra ones.
func TestFastpathRTPRacingBYEAcrossLanes(t *testing.T) {
	entries := captureScenario(t, "toll-fraud")
	want := replaySequential(t, entries, ids.DefaultConfig())
	wantTypes := alertTypeCounts(want)
	if wantTypes[ids.AlertTollFraud] != 1 {
		t.Fatalf("toll-fraud scenario ground truth has %d toll-fraud alerts, want 1: %+v",
			wantTypes[ids.AlertTollFraud], want)
	}

	// Split at the BYE: everything before it is establishment and
	// in-call media, fed packet-by-packet with the pipeline drained
	// between packets so flows deterministically reach the armed,
	// absorbing state. Everything from the BYE on is split into a
	// signaling stream and a media stream fed by two goroutines — the
	// BYE races the fraudster's RTP into different lanes.
	byeIdx := -1
	for i, en := range entries {
		pkt := en.Packet()
		if pkt.Proto == sim.ProtoSIP && bytes.HasPrefix(payloadBytes(pkt), []byte("BYE ")) {
			byeIdx = i
			break
		}
	}
	if byeIdx <= 0 {
		t.Fatal("no BYE in toll-fraud capture")
	}

	ing := New(Config{Lanes: 4, Engine: engine.Config{Shards: 4}})
	drained := func(n uint64) bool {
		st := ing.Stats()
		return st.Processed+st.Absorbed+st.Ignored+st.ParseErrors >= n
	}
	for i, en := range entries[:byeIdx] {
		if err := ing.Ingest(en.Packet(), en.At()); err != nil {
			t.Fatalf("establishment entry %d: %v", i, err)
		}
		for !drained(uint64(i + 1)) {
			runtime.Gosched()
		}
	}
	if st := ing.Stats(); st.FastpathHits == 0 {
		t.Fatalf("in-call media never armed the cache before the race: %+v", st)
	}

	var sip, media []trace.Entry
	for _, en := range entries[byeIdx:] {
		if en.Packet().Proto == sim.ProtoSIP {
			sip = append(sip, en)
		} else {
			media = append(media, en)
		}
	}
	if len(media) < 50 {
		t.Fatalf("only %d post-BYE media packets to race", len(media))
	}
	// Race the signaling stream (BYE first) against the first half of
	// the fraudster's media. Packets racing the BYE may land on either
	// side of the disarm — both sides are legal serializations. The
	// second half is fed after the join barrier, so it is ingested
	// provably after DisarmCall returned: absorption for this flow is
	// over, and the slow path must see the attack.
	racing, after := media[:len(media)/2], media[len(media)/2:]
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, stream := range [][]trace.Entry{sip, racing} {
		wg.Add(1)
		go func(stream []trace.Entry) {
			defer wg.Done()
			for _, en := range stream {
				if err := ing.Ingest(en.Packet(), en.At()); err != nil {
					errs <- err
					return
				}
			}
		}(stream)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, en := range after {
		if err := ing.Ingest(en.Packet(), en.At()); err != nil {
			t.Fatalf("post-race entry %d: %v", i, err)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	// The racing interleaving may shift *when* the toll-fraud fires
	// (the first slow-path packet after the BYE is processed), but
	// never whether or how often: the alert type multiset must match
	// the sequential ground truth under every interleaving.
	got := ing.Alerts()
	if !reflect.DeepEqual(alertTypeCounts(got), wantTypes) {
		t.Errorf("racing BYE changed the alert multiset:\n  want %v\n  got  %v (alerts: %+v)",
			wantTypes, alertTypeCounts(got), got)
	}
	st := ing.Stats()
	if st.FastpathInvalidations == 0 {
		t.Errorf("BYE never invalidated the absorbing flows: %+v", st)
	}
	if sum := st.Processed + st.Absorbed + st.Ignored + st.ParseErrors; sum != uint64(len(entries)) {
		t.Errorf("accounting mismatch: %d accounted of %d entries", sum, len(entries))
	}
}

func alertTypeCounts(alerts []ids.Alert) map[ids.AlertType]int {
	m := map[ids.AlertType]int{}
	for _, a := range alerts {
		m[a.Type]++
	}
	return m
}

// payloadBytes exposes a packet's wire bytes when it carries raw
// bytes; structured payloads render through their Bytes method.
func payloadBytes(pkt *sim.Packet) []byte {
	switch p := pkt.Payload.(type) {
	case []byte:
		return p
	case interface{ Bytes() []byte }:
		return p.Bytes()
	}
	return nil
}
