package ingress

import (
	"context"
	"net"
	"strconv"
	"testing"
	"time"

	"vids/internal/engine"
	"vids/internal/rtp"
)

// TestUDPListenersLoopback drives the tier over real loopback sockets:
// SIP and media datagrams land in the lanes, and — the part the engine
// listener cannot do — every receive buffer comes from and returns to
// the tier's free list.
func TestUDPListenersLoopback(t *testing.T) {
	ing := New(Config{Lanes: 2, Engine: engine.Config{Shards: 2}})

	// Reserve two ephemeral ports so the sender knows where to aim.
	sipLn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sipPort := sipLn.LocalAddr().(*net.UDPAddr).Port
	sipLn.Close()
	rtpLn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rtpPort := rtpLn.LocalAddr().(*net.UDPAddr).Port
	rtpLn.Close()

	ul := &UDPListeners{
		SIPAddr:   net.JoinHostPort("127.0.0.1", strconv.Itoa(sipPort)),
		RTPAddr:   net.JoinHostPort("127.0.0.1", strconv.Itoa(rtpPort)),
		Listeners: 2, // exercises SO_REUSEPORT on Linux, clamps to 1 elsewhere
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ul.Run(ctx, ing) }()

	conn, err := net.Dial("udp", ul.SIPAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	mconn, err := net.Dial("udp", ul.RTPAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer mconn.Close()

	inv := shedInvite(0)
	rtpRaw, err := (&rtp.Packet{PayloadType: 18, Sequence: 1, Timestamp: 160,
		SSRC: 7, Payload: make([]byte, 20)}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rtcpRaw, err := (&rtp.RTCP{Type: rtp.RTCPSenderReport, SSRC: 7}).Marshal()
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		// Until Run has bound the sockets, loopback writes bounce with
		// "connection refused" — keep retrying within the deadline. The
		// target is high enough that buffers retire between bursts, so
		// buffer reuse is observable even with the batch pump's
		// per-socket prefetch of batchSize buffers.
		_, _ = conn.Write(inv.Bytes())
		_, _ = mconn.Write(rtpRaw)
		_, _ = mconn.Write(rtcpRaw)
		time.Sleep(20 * time.Millisecond)
		if st := ing.Stats(); st.Ingested >= 48 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("listeners never ingested: %+v", ing.Stats())
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	st := ing.Stats()
	if st.Ingested < 3 || st.Processed+st.Absorbed == 0 {
		t.Errorf("unexpected stats: %+v", st)
	}
	// Buffer-lifecycle invariant: with ingestion stopped and the engine
	// drained, every buffer the pool ever handed out is back on the free
	// list — each retire recycled exactly one receive buffer.
	gets, misses, free := ing.Buffers().Stats()
	if gets == 0 {
		t.Fatal("listeners never drew from the free list")
	}
	if uint64(free) != misses {
		t.Errorf("free list holds %d buffers, pool allocated %d — receive buffers leaked", free, misses)
	}
	if misses >= gets && gets > 4 {
		t.Errorf("no buffer reuse across %d gets (%d misses)", gets, misses)
	}
}
