//go:build linux

package ingress

import (
	"net"
	"syscall"
)

// reusePortAvailable gates multi-listener binding: on Linux,
// SO_REUSEPORT lets K sockets share one UDP address with the kernel
// flow-hashing datagrams across them.
const reusePortAvailable = true

// soReusePort is SO_REUSEPORT; the constant is absent from the stdlib
// syscall package, so it is spelled here (same value on every Linux
// architecture this repo targets).
const soReusePort = 0xf

// listenConfig returns a ListenConfig whose sockets opt into
// SO_REUSEPORT when shared binding is requested.
func listenConfig(shared bool) net.ListenConfig {
	if !shared {
		return net.ListenConfig{}
	}
	return net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
}
