// Package ids implements vids, the paper's VoIP intrusion detection
// system (Sections 5 and 6): a Packet Classifier and Event Distributor
// feeding per-call communicating EFSMs (one SIP machine plus one RTP
// machine per media direction), a Call State Fact Base holding each
// call's configuration, an Attack Scenario database of annotated
// attack transitions and windowed detectors, and an Analysis Engine
// that raises alerts on specification deviations and attack-state
// entries.
package ids

import (
	"fmt"
	"time"
)

// AlertType classifies an alert by the attack pattern that fired.
type AlertType string

// Alert types covering the paper's threat model (Section 3) and the
// detection patterns of Section 6.
const (
	// AlertInviteFlood: more than N INVITEs for one destination
	// within window T1 (Figure 4).
	AlertInviteFlood AlertType = "invite-flood"
	// AlertByeDoS: RTP still arriving after BYE + grace timer T from
	// the party that did not send the BYE (Figure 5).
	AlertByeDoS AlertType = "bye-dos"
	// AlertTollFraud: the BYE sender itself keeps sending RTP
	// (billing stopped, media continues; Section 3.1).
	AlertTollFraud AlertType = "toll-fraud"
	// AlertMediaSpam: RTP sequence-number or timestamp gap beyond
	// thresholds, or an SSRC change mid-stream (Figure 6).
	AlertMediaSpam AlertType = "media-spam"
	// AlertCodecViolation: RTP payload type differs from the codec
	// negotiated in SDP (Section 3.2).
	AlertCodecViolation AlertType = "codec-violation"
	// AlertRTPFlood: RTP packet rate beyond the negotiated codec's
	// plausible rate (Section 3.2).
	AlertRTPFlood AlertType = "rtp-flood"
	// AlertCallHijack: a re-INVITE inside an existing dialog from an
	// inconsistent source (Section 3.1).
	AlertCallHijack AlertType = "call-hijack"
	// AlertSpoofedBye: a BYE whose source/tags match neither dialog
	// party (Section 3.1).
	AlertSpoofedBye AlertType = "spoofed-bye"
	// AlertSpoofedCancel: a CANCEL inconsistent with the pending
	// INVITE's source (Section 3.1).
	AlertSpoofedCancel AlertType = "spoofed-cancel"
	// AlertDeviation: the event was not accepted by the protocol
	// state machine in its current configuration — the
	// specification-based anomaly signal.
	AlertDeviation AlertType = "protocol-deviation"
	// AlertUnsolicitedRTP: an RTP stream to a destination no SDP
	// exchange advertised.
	AlertUnsolicitedRTP AlertType = "unsolicited-rtp"
	// AlertDRDoS: a burst of SIP responses for calls the destination
	// never initiated — the reflection signature of spoofed requests
	// fanned out to many reflectors (Section 3.1).
	AlertDRDoS AlertType = "drdos"
	// AlertRTCPBye: an RTCP BYE terminating a media stream while the
	// signaling plane still shows the call established — a
	// media-plane teardown injection (RFC 3550 BYE abuse).
	AlertRTCPBye AlertType = "rtcp-bye"
	// AlertRogueRegister: a REGISTER crossing the enterprise edge.
	// All legitimate phones register from inside; an external
	// registration rebinds a victim's address-of-record to the
	// attacker (registration hijacking).
	AlertRogueRegister AlertType = "rogue-register"
)

// Alert is one detection event raised by the Analysis Engine.
type Alert struct {
	At     time.Duration `json:"atNanos"` // virtual time of detection
	Type   AlertType     `json:"type"`
	CallID string        `json:"callId,omitempty"` // empty for non-call-scoped alerts
	Source string        `json:"source"`
	Target string        `json:"target"`
	Detail string        `json:"detail"`
}

func (a Alert) String() string {
	return fmt.Sprintf("[%v] %s call=%q src=%s dst=%s: %s",
		a.At, a.Type, a.CallID, a.Source, a.Target, a.Detail)
}
