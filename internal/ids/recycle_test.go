package ids

import (
	"fmt"
	"testing"
	"time"

	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// These tests pin the monitor-pool recycling contract: an evicted
// call's record may be handed to a later call (even one reusing the
// same Call-ID), and nothing — machine state, alert dedup, armed
// timers, media index entries — may leak across the generation
// boundary.

func TestRecycledMonitorStartsPristine(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.CloseLinger = 10 * time.Millisecond })
	establishCall(t, h)
	mon1, _ := h.ids.Monitor(callID)

	// A CANCEL after establishment is a deviation; raising it marks the
	// per-call dedup set.
	cancel := mkInDialog(sipmsg.CANCEL, true, 1)
	h.ids.Process(sipPacket(cancel, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	if n := len(h.ids.AlertsOfType(AlertDeviation)); n != 1 {
		t.Fatalf("call 1 deviations = %d, want 1", n)
	}

	// Clean teardown; the BYE arms timer T, then eviction (10 ms) lands
	// before timer T's grace (100 ms) — recycling must cancel it.
	bye := mkInDialog(sipmsg.BYE, true, 2)
	h.ids.Process(sipPacket(bye, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	okr := sipmsg.NewResponse(bye, sipmsg.StatusOK)
	h.ids.Process(sipPacket(okr, sim.Addr{Host: calleeHost, Port: 5060}, sim.Addr{Host: callerHost, Port: 5060}))
	h.run(t, time.Second)
	if h.ids.ActiveCalls() != 0 {
		t.Fatal("call 1 not evicted")
	}
	if len(h.ids.monPool) != 1 {
		t.Fatalf("pool holds %d monitors, want 1", len(h.ids.monPool))
	}

	// The same Call-ID calls again. The pooled record must be reused
	// and behave exactly like a fresh one: establishment succeeds with
	// no deviation (stale SIP state would reject the INVITE), and the
	// stale timer T never fires into the new call's machines.
	establishCall(t, h)
	mon2, _ := h.ids.Monitor(callID)
	if mon2 != mon1 {
		t.Fatal("pooled monitor was not reused")
	}
	if mon2.RTPCaller.State() != RTPOpen || mon2.RTPCallee.State() != RTPOpen {
		t.Fatalf("recycled RTP machines = %v/%v", mon2.RTPCaller.State(), mon2.RTPCallee.State())
	}
	if n := len(h.ids.AlertsOfType(AlertDeviation)); n != 1 {
		t.Fatalf("re-establishment raised deviations: %v", h.ids.Alerts())
	}

	// The same deviation on the new call must alert again: a leaked
	// dedup set would swallow it.
	h.ids.Process(sipPacket(mkInDialog(sipmsg.CANCEL, true, 1),
		sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	if n := len(h.ids.AlertsOfType(AlertDeviation)); n != 2 {
		t.Fatalf("call 2 deviations = %d, want 2 (dedup leaked across recycle)", n)
	}

	bye2 := mkInDialog(sipmsg.BYE, true, 2)
	h.ids.Process(sipPacket(bye2, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	h.ids.Process(sipPacket(sipmsg.NewResponse(bye2, sipmsg.StatusOK),
		sim.Addr{Host: calleeHost, Port: 5060}, sim.Addr{Host: callerHost, Port: 5060}))
	h.run(t, h.sim.Now()+time.Second)
	if h.ids.ActiveCalls() != 0 || h.ids.Evicted() != 2 {
		t.Fatalf("active = %d, evicted = %d", h.ids.ActiveCalls(), h.ids.Evicted())
	}
	if n := len(h.ids.Alerts()); n != 2 {
		t.Fatalf("total alerts = %d, want exactly the two CANCEL deviations: %v", n, h.ids.Alerts())
	}
}

func TestStaleRTCPGraceSuppressedAcrossRecycle(t *testing.T) {
	// An RTCP BYE arms the 2 s grace timer; the call is then
	// idle-evicted and its monitor rehosted for a new call with the
	// same Call-ID before the deadline. The stale grace expiry must not
	// flag the (established, healthy) second call.
	h := newHarness(t, func(c *Config) { c.IdleEviction = 200 * time.Millisecond })
	establishCall(t, h)
	h.ids.Process(rtcpByePkt(0xAAAA,
		sim.Addr{Host: callerHost, Port: callerRTPPort + 1},
		sim.Addr{Host: calleeHost, Port: calleeRTPPort + 1}))

	h.run(t, 600*time.Millisecond)
	if h.ids.ActiveCalls() != 0 {
		t.Fatal("idle call not swept")
	}

	establishCall(t, h) // t = 600 ms: same Call-ID, pooled record
	h.run(t, 3*time.Second)
	if alerts := h.ids.Alerts(); len(alerts) != 0 {
		t.Fatalf("stale grace timer leaked into recycled call: %v", alerts)
	}
}

func TestTombstoneTTLUnderChurn(t *testing.T) {
	// Sequential churn through one pooled record: every eviction plants
	// a tombstone that must absorb that call's stragglers, and sweeps
	// must expire tombstones after the TTL so the map stays bounded.
	const calls = 300
	h := newHarness(t, func(c *Config) {
		c.CloseLinger = 5 * time.Millisecond
		c.IdleEviction = 500 * time.Millisecond
	})
	for i := 0; i < calls; i++ {
		id := fmt.Sprintf("churn-%d@%s", i, callerHost)
		base := time.Duration(i) * 100 * time.Millisecond
		h.at(base, func() {
			inv := mkInvite()
			inv.CallID = id
			h.ids.Process(sipPacket(inv, sim.Addr{Host: proxyA, Port: 5060}, sim.Addr{Host: proxyB, Port: 5060}))
			h.ids.Process(sipPacket(mkResponse(inv, 200, true),
				sim.Addr{Host: proxyB, Port: 5060}, sim.Addr{Host: proxyA, Port: 5060}))
			ack := mkInDialog(sipmsg.ACK, true, 1)
			ack.CallID = id
			h.ids.Process(sipPacket(ack, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
			bye := mkInDialog(sipmsg.BYE, true, 2)
			bye.CallID = id
			h.ids.Process(sipPacket(bye, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
			h.ids.Process(sipPacket(sipmsg.NewResponse(bye, sipmsg.StatusOK),
				sim.Addr{Host: calleeHost, Port: 5060}, sim.Addr{Host: callerHost, Port: 5060}))
		})
		// 20 ms later the monitor is evicted (5 ms linger); the
		// retransmitted 200 must die on the fresh tombstone.
		h.at(base+20*time.Millisecond, func() {
			bye := mkInDialog(sipmsg.BYE, true, 2)
			bye.CallID = id
			h.ids.Process(sipPacket(sipmsg.NewResponse(bye, sipmsg.StatusOK),
				sim.Addr{Host: calleeHost, Port: 5060}, sim.Addr{Host: callerHost, Port: 5060}))
		})
	}
	h.run(t, calls*100*time.Millisecond+5*time.Second)

	if alerts := h.ids.Alerts(); len(alerts) != 0 {
		t.Fatalf("benign churn raised alerts: %v", alerts[:min(len(alerts), 5)])
	}
	if h.ids.ActiveCalls() != 0 || h.ids.Evicted() != calls {
		t.Fatalf("active = %d, evicted = %d", h.ids.ActiveCalls(), h.ids.Evicted())
	}
	// Sequential churn needs exactly one record; a growing pool would
	// mean recycling misses.
	if len(h.ids.monPool) > 2 {
		t.Fatalf("pool grew to %d monitors under sequential churn", len(h.ids.monPool))
	}
	// All tombstones have outlived the TTL by now and must be gone...
	if n := len(h.ids.tombstones); n != 0 {
		t.Fatalf("%d tombstones survived past the TTL", n)
	}
	// ...so a very late straggler is once again an unknown-call event.
	bye := mkInDialog(sipmsg.BYE, true, 2)
	bye.CallID = fmt.Sprintf("churn-%d@%s", 0, callerHost)
	h.ids.Process(sipPacket(sipmsg.NewResponse(bye, sipmsg.StatusOK),
		sim.Addr{Host: calleeHost, Port: 5060}, sim.Addr{Host: callerHost, Port: 5060}))
	if n := len(h.ids.AlertsOfType(AlertDeviation)); n != 1 {
		t.Fatalf("expired tombstone should no longer absorb stragglers: %v", h.ids.Alerts())
	}
}
