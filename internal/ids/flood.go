package ids

import (
	"vids/internal/core"
)

// Flood machine states (paper Figure 4).
const (
	FloodInit     core.State = "INIT"
	FloodCounting core.State = "PACKET_RCVD"
	FloodAttack   core.State = "ATTACK_INVITE_FLOOD"
)

// EvTimerT1 is the window timer of Figure 4, injected by the IDS.
const EvTimerT1 = "timer.T1"

const labelInviteFlood = "invite-flood"

// floodSpec builds the per-destination INVITE-flood detector: N
// INVITEs for the same destination within window T1 are considered
// normal; exceeding N signals a flooding attack. "The setting of
// threshold N depends upon the up-limit that a particular type of a
// phone can handle" (Section 6).
func floodSpec(n int) *core.Spec {
	return windowCounterSpec("invite-flood", EvInvite, labelInviteFlood, n)
}

// respFloodSpec is the same windowed counter applied to SIP responses
// for calls the destination never initiated: the signature of a
// Distributed Reflection DoS, where spoofed requests sent to many
// reflectors swamp the victim with their responses (Section 3.1).
func respFloodSpec(n int) *core.Spec {
	return windowCounterSpec("response-flood", EvResponse, labelDRDoS, n)
}

const labelDRDoS = "drdos"

// windowCounterSpec is the generic Figure 4 machine: count occurrences
// of event per destination, enter the attack state past n within one
// timer window.
func windowCounterSpec(name, event, label string, n int) *core.Spec {
	s := core.NewSpec(name, FloodInit)

	// First event for destination D: initialize the packet counter
	// and (via the IDS observing this transition) start timer T1.
	s.On(FloodInit, event, nil, func(c *core.Ctx) {
		c.Vars.SetString("l.dest", c.Event.StringArg("dest"))
		c.Vars.SetInt("l.count", 1)
	}, FloodCounting)

	s.On(FloodCounting, event, func(c *core.Ctx) bool {
		return c.Vars.GetInt("l.count") < n
	}, func(c *core.Ctx) {
		c.Vars.SetInt("l.count", c.Vars.GetInt("l.count")+1)
	}, FloodCounting)

	s.OnLabeled(label, FloodCounting, event, func(c *core.Ctx) bool {
		return c.Vars.GetInt("l.count") >= n
	}, nil, FloodAttack)

	// Window expiry resets the detector.
	reset := func(c *core.Ctx) {
		delete(c.Vars, "l.count")
	}
	s.On(FloodCounting, EvTimerT1, nil, reset, FloodInit)
	s.On(FloodAttack, EvTimerT1, nil, reset, FloodInit)
	s.On(FloodInit, EvTimerT1, nil, nil, FloodInit)

	// Further events inside an already-flagged window are part of the
	// same attack.
	s.On(FloodAttack, event, nil, nil, FloodAttack)

	s.Attack(FloodAttack)
	s.Final(FloodInit)
	return s
}
