package ids

import (
	"testing"
	"time"

	"vids/internal/fastpath"
	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// fpRecorder is a MediaFastpath stub that records every hook call.
type fpRecorder struct {
	arms        []fpArm
	invalidated []string
	removed     []string
	activity    map[string]time.Duration
}

type fpArm struct {
	key     string
	payload uint8
	snap    fastpath.Snapshot
}

func (r *fpRecorder) hooks() MediaFastpath {
	return MediaFastpath{
		Arm: func(key []byte, payload uint8, snap fastpath.Snapshot) {
			r.arms = append(r.arms, fpArm{key: string(key), payload: payload, snap: snap})
		},
		Invalidate: func(key string) { r.invalidated = append(r.invalidated, key) },
		Remove:     func(key string) { r.removed = append(r.removed, key) },
		Activity: func(key string) (time.Duration, bool) {
			d, ok := r.activity[key]
			return d, ok
		},
	}
}

func mediaKeyOf(host string, port int) string {
	return string(appendMediaKey(nil, host, port))
}

// testArmHooks drives a clean call on the given backend and checks the
// detector publishes the machine's window state on the steady-state
// self-loop and disarms on every signaling event for the call.
func testArmHooks(t *testing.T, backend Backend) {
	h := newHarness(t, func(c *Config) { c.Backend = backend })
	rec := &fpRecorder{}
	h.ids.SetMediaFastpath(rec.hooks())
	establishCall(t, h)

	h.ids.Process(callerMediaPkt(100, 1000, 0xAAAA))
	if len(rec.arms) != 1 {
		t.Fatalf("arms after first in-profile packet = %d, want 1", len(rec.arms))
	}
	arm := rec.arms[0]
	if arm.key != mediaKeyOf(calleeHost, calleeRTPPort) {
		t.Errorf("armed key %q, want %q", arm.key, mediaKeyOf(calleeHost, calleeRTPPort))
	}
	if arm.payload != 18 {
		t.Errorf("armed payload %d, want 18 (G.729)", arm.payload)
	}
	if arm.snap.SSRC != 0xAAAA || arm.snap.Seq != 100 || arm.snap.TS != 1000 {
		t.Errorf("armed snapshot %+v, want ssrc=0xAAAA seq=100 ts=1000", arm.snap)
	}

	// The next in-profile packet re-arms with the advanced window.
	h.ids.Process(callerMediaPkt(101, 1160, 0xAAAA))
	if len(rec.arms) != 2 {
		t.Fatalf("arms after second packet = %d, want 2", len(rec.arms))
	}
	if got := rec.arms[1].snap; got.Seq != 101 || got.TS != 1160 {
		t.Errorf("re-armed snapshot %+v, want seq=101 ts=1160", got)
	}

	// An anomalous packet (wrong SSRC) deviates: no arm for it.
	h.ids.Process(callerMediaPkt(102, 1320, 0xDEAD))
	if len(rec.arms) != 2 {
		t.Errorf("anomalous packet armed the cache: %+v", rec.arms[len(rec.arms)-1])
	}

	// The BYE must invalidate every media key the call owns before the
	// signaling event is acked.
	rec.invalidated = nil
	bye := mkInDialog(sipmsg.BYE, true, 2)
	h.ids.Process(sipPacket(bye, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	want := map[string]bool{
		mediaKeyOf(calleeHost, calleeRTPPort): false,
		mediaKeyOf(callerHost, callerRTPPort): false,
	}
	for _, key := range rec.invalidated {
		if _, ok := want[key]; ok {
			want[key] = true
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("BYE did not invalidate %q (invalidated: %v)", key, rec.invalidated)
		}
	}
}

func TestFastpathArmHooksCompiled(t *testing.T)    { testArmHooks(t, BackendCompiled) }
func TestFastpathArmHooksInterpreted(t *testing.T) { testArmHooks(t, BackendInterpreted) }

// TestFastpathSRTPNeverArms: header-only (SRTP-degraded) mode must
// escalate everything — the cache cannot validate payloads it cannot
// see, so the detector must not publish window state at all.
func TestFastpathSRTPNeverArms(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.MediaHeaderOnly = true })
	rec := &fpRecorder{}
	h.ids.SetMediaFastpath(rec.hooks())
	establishCall(t, h)
	for i := 0; i < 5; i++ {
		h.ids.Process(callerMediaPkt(uint16(100+i), uint32(1000+160*i), 0xAAAA))
	}
	if len(rec.arms) != 0 {
		t.Fatalf("SRTP-degraded mode armed the cache %d times", len(rec.arms))
	}
}

// TestIdleSweepConsultsFastpathActivity pins the absorption blind
// spot: a call whose media is wholly absorbed never refreshes the
// monitor's LastActivity, and only the cache knows the flow is alive.
// The sweep must fold the cache's last-seen time in before judging the
// call idle — and resume evicting once absorption goes quiet too.
func TestIdleSweepConsultsFastpathActivity(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.IdleEviction = time.Minute })
	rec := &fpRecorder{activity: map[string]time.Duration{}}
	h.ids.SetMediaFastpath(rec.hooks())
	establishCall(t, h)

	// The cache keeps absorbing until t=90s; the monitor itself sees
	// nothing after setup.
	rec.activity[mediaKeyOf(calleeHost, calleeRTPPort)] = 90 * time.Second
	h.run(t, 2*time.Minute)
	if h.ids.ActiveCalls() != 1 {
		t.Fatal("sweep evicted a call whose media the cache was absorbing")
	}

	// Absorption stops (activity stays at 90s): idle eviction resumes,
	// and the evicted monitor's flows are removed from the cache.
	h.run(t, 10*time.Minute)
	if h.ids.ActiveCalls() != 0 {
		t.Fatal("sweep never reclaimed the call after absorption went quiet")
	}
	removed := map[string]bool{}
	for _, key := range rec.removed {
		removed[key] = true
	}
	if !removed[mediaKeyOf(calleeHost, calleeRTPPort)] || !removed[mediaKeyOf(callerHost, callerRTPPort)] {
		t.Errorf("eviction did not remove the call's flows from the cache (removed: %v)", rec.removed)
	}
}

// TestResyncMediaAppliesSnapshot: a resync snapshot must land in the
// owning machine's window variables — and be dropped when the monitor
// generation says the call was recycled since the snapshot was taken.
func TestResyncMediaAppliesSnapshot(t *testing.T) {
	for _, backend := range []Backend{BackendCompiled, BackendInterpreted} {
		h := newHarness(t, func(c *Config) { c.Backend = backend })
		rec := &fpRecorder{}
		h.ids.SetMediaFastpath(rec.hooks())
		establishCall(t, h)
		h.ids.Process(callerMediaPkt(100, 1000, 0xAAAA))
		if len(rec.arms) != 1 {
			t.Fatalf("backend %v: no arm", backend)
		}
		gen := rec.arms[0].snap.Gen

		// Apply an absorbed-window snapshot and verify the machine
		// continues from it: seq 150 is in-profile relative to the
		// snapshot (gap 1) but a 50-packet jump from the machine's own
		// last-seen seq 100 — only an applied resync keeps it clean.
		h.ids.ResyncMedia(calleeHost, calleeRTPPort, fastpath.Snapshot{
			Gen: gen, SSRC: 0xAAAA, Seq: 149, TS: 8840,
			WinStart: 0, WinCount: 1,
		})
		h.ids.Process(callerMediaPkt(150, 9000, 0xAAAA))
		if n := len(h.ids.Alerts()); n != 0 {
			t.Fatalf("backend %v: resynced machine flagged an in-profile packet: %+v", backend, h.ids.Alerts())
		}

		// A stale-generation snapshot must be ignored: rewind to a far
		// past window; if it applied, the next packet would deviate.
		h.ids.ResyncMedia(calleeHost, calleeRTPPort, fastpath.Snapshot{
			Gen: gen + 1, SSRC: 0xBBBB, Seq: 9, TS: 16,
		})
		h.ids.Process(callerMediaPkt(151, 9160, 0xAAAA))
		if n := len(h.ids.Alerts()); n != 0 {
			t.Fatalf("backend %v: stale-gen snapshot was applied: %+v", backend, h.ids.Alerts())
		}
	}
}
