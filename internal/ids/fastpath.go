package ids

import (
	"time"

	"vids/internal/fastpath"
	"vids/internal/idsgen"
)

// MediaFastpath is the engine-installed hook bundle tying one sharded
// IDS instance to the shared per-flow RTP validation cache
// (internal/fastpath). Every hook may be nil; a zero MediaFastpath
// turns the whole feature off. The detector calls Arm after a clean
// steady-state RTP packet, Invalidate/Remove on monitor transitions
// that change what the flow's traffic means, and Activity from the
// idle sweep so absorbed media keeps its call alive.
type MediaFastpath struct {
	// Arm publishes the machine's window variables for the media key
	// currently in the detector's scratch; the engine forwards it to
	// fastpath.Cache.Update under the epoch the packet was enqueued
	// with.
	Arm func(key []byte, payload uint8, snap fastpath.Snapshot)
	// Invalidate disarms the flow at key before the worker acks the
	// signaling event that made the mirror stale.
	Invalidate func(key string)
	// Remove deletes the flow at key (monitor eviction: the call is
	// gone, so is the mirror).
	Remove func(key string)
	// Activity reports when the flow last absorbed a packet, so the
	// idle sweep sees media the monitor never did.
	Activity func(key string) (time.Duration, bool)
}

// SetMediaFastpath installs the fast-path hooks. Kept off Config so
// Config stays comparable (the ingress tier relies on that).
func (d *IDS) SetMediaFastpath(h MediaFastpath) { d.fp = h }

// armFastpath publishes steady-state window variables after handleRTP
// delivered a packet that left the machine on the RTP_RCVD self-loop:
// from here on the cache can absorb in-profile packets itself.
// d.keyBuf still holds the packet's media key.
func (d *IDS) armFastpath(mon *CallMonitor, machine string) {
	m, ok := mon.System.Find(machine) //vids:alloc-ok backend seam: both Stepper backends are independently noalloc-rooted
	if !ok {
		return
	}
	snap := fastpath.Snapshot{Gen: mon.gen}
	var payload int
	if rm, isCompiled := m.(*idsgen.RTPMachine); isCompiled {
		payload, snap.SSRC, snap.Seq, snap.TS, snap.WinStart, snap.WinCount = rm.MediaWindow()
	} else {
		vars := m.Vars() //vids:alloc-ok interpreted-backend arm: Vars is the live store, no materialization
		payload = vars.GetInt("l.payload")
		snap.SSRC = vars.GetUint32("l.ssrc")
		snap.Seq = uint16(vars.GetUint32("l.seq"))
		snap.TS = vars.GetUint32("l.ts")
		snap.WinStart = vars.GetDuration("l.winStart")
		snap.WinCount = vars.GetInt("l.winCount")
	}
	d.fp.Arm(d.keyBuf, uint8(payload), snap) //vids:alloc-ok fast-path hook seam: the engine closure and cache Update are independently noalloc-rooted
}

// ResyncMedia applies an absorbed-window snapshot to the machine that
// owns the media destination, gen-gated against monitor recycling. The
// shard worker calls it before delivering the first escalated packet
// after a stretch of absorption, so the machine's variables reflect
// every packet the cache validated on its behalf.
func (d *IDS) ResyncMedia(host string, port int, snap fastpath.Snapshot) {
	d.keyBuf = appendMediaKey(d.keyBuf[:0], host, port)
	ref, ok := d.mediaIndex[string(d.keyBuf)]
	if !ok {
		return
	}
	mon := d.calls[ref.callID]
	if mon == nil || mon.gen != snap.Gen {
		return
	}
	m, ok := mon.System.Find(ref.machine)
	if !ok {
		return
	}
	if rm, isCompiled := m.(*idsgen.RTPMachine); isCompiled {
		rm.SetMediaWindow(snap.SSRC, snap.Seq, snap.TS, snap.WinStart, snap.WinCount)
		return
	}
	vars := m.Vars()
	vars.SetUint32("l.ssrc", snap.SSRC)
	vars.SetUint32("l.seq", uint32(snap.Seq))
	vars.SetUint32("l.ts", snap.TS)
	vars.SetDuration("l.winStart", snap.WinStart)
	vars.SetInt("l.winCount", snap.WinCount)
}

// invalidateMonitorMedia disarms every flow the monitor's call owns.
// Called synchronously while the worker processes a signaling event,
// before that event is acked — the cache mirror can never outlive the
// transition that made it stale.
func (d *IDS) invalidateMonitorMedia(mon *CallMonitor) {
	for _, key := range mon.mediaKeys {
		d.fp.Invalidate(key) //vids:alloc-ok signaling-path hook: fires per SIP event, not per media packet
	}
}

// removeMonitorMedia deletes the evicted monitor's flows from the
// cache, skipping keys a newer call has since overwritten.
func (d *IDS) removeMonitorMedia(mon *CallMonitor, callID string) {
	for _, key := range mon.mediaKeys {
		if ref, ok := d.mediaIndex[key]; ok && ref.callID == callID {
			d.fp.Remove(key) //vids:alloc-ok eviction-path hook: fires per monitor teardown, not per media packet
		}
	}
}

// mediaActivity folds the cache's last-absorbed times for the call's
// owned flows into LastActivity, so the idle sweep judges a call by
// the traffic the slow path would have seen without the fast path.
func (d *IDS) mediaActivity(mon *CallMonitor, callID string, last time.Duration) time.Duration {
	for _, key := range mon.mediaKeys {
		if ref, ok := d.mediaIndex[key]; !ok || ref.callID != callID {
			continue
		}
		if seen, ok := d.fp.Activity(key); ok && seen > last { //vids:alloc-ok idle-sweep hook: fires per sweep interval, not per media packet
			last = seen
		}
	}
	return last
}
