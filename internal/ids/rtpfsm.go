package ids

import (
	"time"

	"vids/internal/core"
	"vids/internal/rtp"
)

// RTP machine control states (paper Figures 2(a), 5 and 6).
const (
	RTPInit     core.State = "INIT"
	RTPOpen     core.State = "RTP_OPEN"
	RTPRcvd     core.State = "RTP_RCVD"
	RTPAfterBye core.State = "RTP_RCVD_AFTER_BYE"
	RTPClose    core.State = "RTP_CLOSE"

	RTPAttackSpam      core.State = "ATTACK_MEDIA_SPAM"
	RTPAttackCodec     core.State = "ATTACK_CODEC_VIOLATION"
	RTPAttackByeDoS    core.State = "ATTACK_BYE_DOS"
	RTPAttackTollFraud core.State = "ATTACK_TOLL_FRAUD"
	RTPAttackFlood     core.State = "ATTACK_RTP_FLOOD"
)

// Event names of the RTP machine's alphabet. The δ events arrive on
// the synchronization channel from the SIP machine; EvTimerT is
// injected by the IDS when the after-BYE grace timer expires.
const (
	EvRTP         = "rtp.packet"
	EvDeltaOpen   = "delta.open"
	EvDeltaBye    = "delta.bye"
	EvDeltaReopen = "delta.reopen"
	EvTimerT      = "timer.T"
)

// RTP transition labels for alert mapping.
const (
	labelMediaSpam = "media-spam"
	labelCodec     = "codec-violation"
	labelByeDoS    = "bye-dos"
	labelTollFraud = "toll-fraud"
	labelRTPFlood  = "rtp-flood"
)

// RTPThresholds are the adjustable detector parameters of Figure 6
// and Section 3.2.
type RTPThresholds struct {
	// SeqGap is the paper's Δn: a jump in sequence numbers larger
	// than this flags media spamming.
	SeqGap uint16
	// TSGap is the paper's Δt in RTP timestamp units (8 kHz clock).
	TSGap uint32
	// RateWindow/RatePackets bound the legitimate packet rate: more
	// than RatePackets within RateWindow flags an RTP flood.
	RateWindow  time.Duration
	RatePackets int
}

// rtpSpec builds one media-direction machine. The machine learns its
// negotiated endpoint lazily from the globals the SIP machine wrote
// (g.payload and the direction's media address), then tracks the
// stream's SSRC, sequence and timestamp evolution.
func rtpSpec(name string, th RTPThresholds) *core.Spec {
	s := core.NewSpec(name, RTPInit)

	// INIT --δ open--> RTP_OPEN: bind the negotiated media and
	// remember which party's stream this machine watches.
	s.On(RTPInit, EvDeltaOpen, nil, func(c *core.Ctx) {
		c.Vars.SetString("l.party", c.Event.StringArg("party"))
		c.Vars.SetInt("l.payload", c.Globals.GetInt("g.payload"))
	}, RTPOpen)

	payloadOK := func(c *core.Ctx) bool {
		return c.Event.IntArg("payloadType") == c.Vars.GetInt("l.payload")
	}

	// First packet of the stream: record the source binding.
	s.On(RTPOpen, EvRTP, payloadOK, func(c *core.Ctx) {
		e := c.Event
		c.Vars.SetBool("l.started", true)
		c.Vars.SetUint32("l.ssrc", e.Uint32Arg("ssrc"))
		c.Vars.SetUint32("l.seq", uint32(e.IntArg("seq")))
		c.Vars.SetUint32("l.ts", e.Uint32Arg("ts"))
		c.Vars.SetString("l.src", e.StringArg("src"))
		c.Vars.SetDuration("l.winStart", e.DurationArg("now"))
		c.Vars.SetInt("l.winCount", 1)
	}, RTPRcvd)
	s.OnLabeled(labelCodec, RTPOpen, EvRTP, func(c *core.Ctx) bool {
		return !payloadOK(c)
	}, nil, RTPAttackCodec)

	// Steady state: every packet must carry the negotiated payload
	// type, the established SSRC, and advance seq/timestamp within
	// the spam thresholds (Figure 6's predicate).
	sameSSRC := func(c *core.Ctx) bool {
		return c.Event.Uint32Arg("ssrc") == c.Vars.GetUint32("l.ssrc")
	}
	gapOK := func(c *core.Ctx) bool {
		prevSeq := uint16(c.Vars.GetUint32("l.seq"))
		prevTS := c.Vars.GetUint32("l.ts")
		seq := uint16(c.Event.IntArg("seq"))
		ts := c.Event.Uint32Arg("ts")
		// Backward packets (reordering) are tolerated; only forward
		// jumps beyond the thresholds indicate injection.
		return rtp.WindowOK(prevSeq, seq, prevTS, ts, th.SeqGap, th.TSGap)
	}
	rateOK := func(c *core.Ctx) bool {
		now := c.Event.DurationArg("now")
		winStart := c.Vars.GetDuration("l.winStart")
		if now-winStart > th.RateWindow {
			return true // window rolls over; reset happens in action
		}
		return c.Vars.GetInt("l.winCount") < th.RatePackets
	}

	normal := func(c *core.Ctx) bool {
		return payloadOK(c) && sameSSRC(c) && gapOK(c) && rateOK(c)
	}
	s.On(RTPRcvd, EvRTP, normal, func(c *core.Ctx) {
		e := c.Event
		// Advance-only: a tolerated reordered packet must not rewind
		// the window high-water mark (rtp.WindowAdvance), or the next
		// in-order packet reads as a spurious gap across the seq wrap.
		seq, ts := rtp.WindowAdvance(
			uint16(c.Vars.GetUint32("l.seq")), uint16(e.IntArg("seq")),
			c.Vars.GetUint32("l.ts"), e.Uint32Arg("ts"))
		c.Vars.SetUint32("l.seq", uint32(seq))
		c.Vars.SetUint32("l.ts", ts)
		now := e.DurationArg("now")
		if now-c.Vars.GetDuration("l.winStart") > th.RateWindow {
			c.Vars.SetDuration("l.winStart", now)
			c.Vars.SetInt("l.winCount", 1)
			return
		}
		c.Vars.SetInt("l.winCount", c.Vars.GetInt("l.winCount")+1)
	}, RTPRcvd)

	// Attack branches, most specific first; the guards are mutually
	// disjoint by construction.
	s.OnLabeled(labelCodec, RTPRcvd, EvRTP, func(c *core.Ctx) bool {
		return !payloadOK(c)
	}, nil, RTPAttackCodec)
	s.OnLabeled(labelMediaSpam, RTPRcvd, EvRTP, func(c *core.Ctx) bool {
		return payloadOK(c) && (!sameSSRC(c) || !gapOK(c))
	}, nil, RTPAttackSpam)
	s.OnLabeled(labelRTPFlood, RTPRcvd, EvRTP, func(c *core.Ctx) bool {
		return payloadOK(c) && sameSSRC(c) && gapOK(c) && !rateOK(c)
	}, nil, RTPAttackFlood)

	// δ bye: arm the in-flight grace period (timer T, Figure 5). The
	// IDS schedules the timer event when it sees this transition.
	s.On(RTPRcvd, EvDeltaBye, nil, nil, RTPAfterBye)
	s.On(RTPOpen, EvDeltaBye, nil, nil, RTPClose) // stream never started
	s.On(RTPInit, EvDeltaBye, nil, nil, RTPClose) // direction never opened

	// In-flight packets are tolerated until the timer fires.
	s.On(RTPAfterBye, EvRTP, nil, nil, RTPAfterBye)
	s.On(RTPAfterBye, EvTimerT, nil, nil, RTPClose)
	s.On(RTPOpen, EvTimerT, nil, nil, RTPOpen)
	s.On(RTPClose, EvTimerT, nil, nil, RTPClose)
	s.On(RTPRcvd, EvTimerT, nil, nil, RTPRcvd) // stale timer after a reopen

	// δ reopen: a BYE drew a 401 challenge, so nothing was torn down
	// (authenticated deployments) — the stream is still legitimate.
	started := func(c *core.Ctx) bool { return c.Vars.GetBool("l.started") }
	notStarted := func(c *core.Ctx) bool { return !started(c) }
	for _, from := range []core.State{RTPAfterBye, RTPClose} {
		s.On(from, EvDeltaReopen, started, nil, RTPRcvd)
		s.On(from, EvDeltaReopen, notStarted, nil, RTPOpen)
	}
	s.On(RTPOpen, EvDeltaReopen, nil, nil, RTPOpen)
	s.On(RTPRcvd, EvDeltaReopen, nil, nil, RTPRcvd)
	s.On(RTPInit, EvDeltaReopen, nil, nil, RTPInit)

	// Packets after RTP_CLOSE are the cross-protocol detections of
	// Figure 5: if the party that sent the BYE is still talking it is
	// toll fraud (billing stopped, media continues); if the *other*
	// party is still talking, it never learned about the BYE — the
	// BYE was spoofed (BYE DoS).
	fraud := func(c *core.Ctx) bool {
		return c.Vars.GetString("l.party") == c.Globals.GetString("g.byeSender")
	}
	s.OnLabeled(labelTollFraud, RTPClose, EvRTP, fraud, nil, RTPAttackTollFraud)
	s.OnLabeled(labelByeDoS, RTPClose, EvRTP, func(c *core.Ctx) bool {
		return !fraud(c)
	}, nil, RTPAttackByeDoS)

	// Attack states absorb further traffic.
	for _, attack := range []core.State{RTPAttackSpam, RTPAttackCodec,
		RTPAttackByeDoS, RTPAttackTollFraud, RTPAttackFlood} {
		for _, ev := range []string{EvRTP, EvDeltaOpen, EvDeltaBye, EvDeltaReopen, EvTimerT} {
			s.On(attack, ev, nil, nil, attack)
		}
	}

	s.Final(RTPClose)
	s.Attack(RTPAttackSpam, RTPAttackCodec, RTPAttackByeDoS,
		RTPAttackTollFraud, RTPAttackFlood)
	return s
}

// spamSpec is the standalone media-spamming monitor of Figure 6: it
// watches one (source, destination) stream that no SDP negotiated,
// starting from the first observed packet.
func spamSpec(th RTPThresholds) *core.Spec {
	s := core.NewSpec("rtp-spam", RTPInit)
	s.On(RTPInit, EvRTP, nil, func(c *core.Ctx) {
		e := c.Event
		c.Vars.SetUint32("l.ssrc", e.Uint32Arg("ssrc"))
		c.Vars.SetUint32("l.seq", uint32(e.IntArg("seq")))
		c.Vars.SetUint32("l.ts", e.Uint32Arg("ts"))
	}, RTPRcvd)

	gapOK := func(c *core.Ctx) bool {
		prevSeq := uint16(c.Vars.GetUint32("l.seq"))
		prevTS := c.Vars.GetUint32("l.ts")
		seq := uint16(c.Event.IntArg("seq"))
		ts := c.Event.Uint32Arg("ts")
		if !rtp.SeqLess(prevSeq, seq) && seq != prevSeq {
			return true // reordered behind the window: tolerated, SSRC unchecked
		}
		return rtp.WindowOK(prevSeq, seq, prevTS, ts, th.SeqGap, th.TSGap) &&
			c.Event.Uint32Arg("ssrc") == c.Vars.GetUint32("l.ssrc")
	}
	s.On(RTPRcvd, EvRTP, gapOK, func(c *core.Ctx) {
		// Advance-only, mirroring the negotiated-stream machine.
		seq, ts := rtp.WindowAdvance(
			uint16(c.Vars.GetUint32("l.seq")), uint16(c.Event.IntArg("seq")),
			c.Vars.GetUint32("l.ts"), c.Event.Uint32Arg("ts"))
		c.Vars.SetUint32("l.seq", uint32(seq))
		c.Vars.SetUint32("l.ts", ts)
	}, RTPRcvd)
	s.OnLabeled(labelMediaSpam, RTPRcvd, EvRTP, func(c *core.Ctx) bool {
		return !gapOK(c)
	}, nil, RTPAttackSpam)
	for _, ev := range []string{EvRTP} {
		s.On(RTPAttackSpam, ev, nil, nil, RTPAttackSpam)
	}
	s.Attack(RTPAttackSpam)
	return s
}
