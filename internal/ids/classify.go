package ids

import (
	"fmt"

	"vids/internal/rtp"
	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// Classified is the Packet Classifier's output: the packet's protocol
// label plus exactly one parsed application message (paper Figure 3).
// It is the unit of work a detection shard consumes, letting a routing
// layer that already parsed a packet (to extract its Call-ID) hand the
// parsed form to the IDS without a second parse.
type Classified struct {
	Proto sim.Proto
	SIP   *sipmsg.Message // set when Proto == sim.ProtoSIP
	RTP   *rtp.Packet     // set when Proto == sim.ProtoRTP
	RTCP  *rtp.RTCP       // set when Proto == sim.ProtoRTCP
}

// Classify parses one packet into its application message. Non-VoIP
// protocol labels classify successfully with no message (vids ignores
// them); payloads that are not raw bytes or fail to parse return an
// error.
func Classify(pkt *sim.Packet) (Classified, error) {
	raw, ok := pkt.Payload.([]byte)
	if !ok {
		return Classified{}, fmt.Errorf("ids: payload is %T, not wire bytes", pkt.Payload)
	}
	switch pkt.Proto {
	case sim.ProtoSIP:
		m, err := sipmsg.Parse(raw)
		if err != nil {
			return Classified{}, err
		}
		return Classified{Proto: sim.ProtoSIP, SIP: m}, nil
	case sim.ProtoRTP:
		p, err := rtp.Parse(raw)
		if err != nil {
			return Classified{}, err
		}
		return Classified{Proto: sim.ProtoRTP, RTP: p}, nil
	case sim.ProtoRTCP:
		p, err := rtp.ParseRTCP(raw)
		if err != nil {
			return Classified{}, err
		}
		return Classified{Proto: sim.ProtoRTCP, RTCP: p}, nil
	default:
		return Classified{Proto: pkt.Proto}, nil
	}
}

// MediaKey renders the fact-base index key for a media destination —
// the same key the Event Distributor uses to route RTP to a call's
// machine. Exposed so a sharding router can mirror the index.
func MediaKey(host string, port int) string { return mediaKey(host, port) }

// AppendMediaKey renders MediaKey(host, port) into b without
// allocating, so a sharding router can probe its mirror of the index
// through a reusable buffer.
func AppendMediaKey(b []byte, host string, port int) []byte {
	return appendMediaKey(b, host, port)
}

// MediaFromSDP extracts the advertised media destination (address,
// port, first payload type) from a SIP message's SDP body, if any.
// Exposed so a sharding router can maintain its media-key index from
// the same SDP observations the per-call machines use.
func MediaFromSDP(m *sipmsg.Message) (addr string, port int, payload int, ok bool) {
	a, p, pt, ok := sdp.MediaDest(m.Body)
	if !ok {
		return "", 0, 0, false
	}
	return string(a), p, pt, true
}
