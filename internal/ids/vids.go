package ids

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"vids/internal/core"
	"vids/internal/intern"
	"vids/internal/rtp"
	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/timerwheel"
)

// Config parameterizes the detectors and the inline processing-cost
// model.
type Config struct {
	// FloodN and FloodT1 are Figure 4's threshold N and window T1.
	FloodN  int
	FloodT1 time.Duration

	// ResponseFloodN bounds SIP responses for unknown calls toward
	// one destination within FloodT1 before flagging a DRDoS
	// reflection attack (Section 3.1).
	ResponseFloodN int

	// ByeGraceT is Figure 5's timer T: how long in-flight RTP is
	// tolerated after a BYE. The paper recommends about one RTT.
	ByeGraceT time.Duration

	// RTCPByeGrace is how long vids waits for the signaling plane to
	// confirm a teardown after seeing an RTCP BYE. It must cover a
	// SIP retransmission cycle (a lost BYE retries after 500 ms), so
	// it is much larger than ByeGraceT.
	RTCPByeGrace time.Duration

	// RTP tracks the media-stream thresholds (Figure 6, Section 3.2).
	RTP RTPThresholds

	// SIPProcessing / RTPProcessing are the per-packet costs the
	// inline vids host adds while logging and analyzing (the paper's
	// Sun Ultra 10 logs at millisecond granularity, Section 7.3).
	// They reproduce the paper's ~100 ms setup-delay and ~1.5 ms RTP
	// delay overheads.
	SIPProcessing time.Duration
	RTPProcessing time.Duration

	// Prevention turns the inline vids into an intrusion *prevention*
	// system: packets belonging to a detected attack context (a
	// quarantined flood source, a call in an attack state, a stream
	// whose machine flagged an attack) are dropped instead of
	// forwarded. The paper cites prevention as VoIP security's future
	// ([16]); detection-only remains the default.
	Prevention bool

	// Quarantine is how long a source that contributed to a detected
	// INVITE flood stays blocked toward that destination in
	// prevention mode.
	Quarantine time.Duration

	// CrossProtocol enables the δ synchronization between the SIP and
	// RTP machines. Disabling it is the ablation of experiment A1 —
	// the paper's headline feature turned off.
	CrossProtocol bool

	// ExternalFloods disables this instance's own cross-call
	// detectors (INVITE flood, DRDoS response reflection and the
	// prevention quarantine): an embedding layer runs one shared
	// FloodWatch in front of many IDS instances instead, as the
	// sharded online engine does — per-destination windows must see
	// the whole packet stream, not one shard's slice. Responses for
	// unknown calls are then counted but raise nothing here.
	ExternalFloods bool

	// MediaHeaderOnly restricts media inspection to the cleartext RTP
	// header, the view an observer retains when calls use SRTP
	// (RFC 3711): SSRC, sequence and timestamp stay visible, so the
	// RTP protocol state machine and the Figure 6 thresholds keep
	// working, but payloads are ciphertext and RTCP compound packets
	// ride inside encrypted SRTCP — the forged-RTCP-BYE detector goes
	// blind. Detection degrades; it does not fail.
	MediaHeaderOnly bool

	// IdleEviction evicts call monitors with no traffic for this
	// long (safety net for calls that never reach a final state).
	IdleEviction time.Duration

	// CloseLinger keeps a monitor resident after all its machines
	// reach final states, so traffic arriving *after* the protocol
	// closed — the signature of BYE DoS and toll fraud (Figure 5) —
	// still meets the machines that can flag it.
	CloseLinger time.Duration
}

// DefaultConfig returns the calibrated defaults used by the
// experiments.
func DefaultConfig() Config {
	return Config{
		FloodN:         20,
		FloodT1:        time.Second,
		ResponseFloodN: 20,
		ByeGraceT:      250 * time.Millisecond,
		RTCPByeGrace:   2 * time.Second,
		RTP: RTPThresholds{
			SeqGap:      50,
			TSGap:       8000, // one second of 8 kHz samples
			RateWindow:  time.Second,
			RatePackets: 100, // 2x the G.729 50 pkt/s rate
		},
		SIPProcessing: 50 * time.Millisecond,
		RTPProcessing: 750 * time.Microsecond,
		Quarantine:    time.Minute,
		CrossProtocol: true,
		IdleEviction:  5 * time.Minute,
		CloseLinger:   10 * time.Second,
	}
}

// Timer kinds dispatched by (*IDS).fire and (*FloodWatch).fire. Each
// intrusive timerwheel.Timer carries one of these so a single
// wheel-wide callback can route expiries without per-arm closures.
const (
	timerKindTCaller uint8 = iota // Figure 5's timer T, caller stream
	timerKindTCallee              // Figure 5's timer T, callee stream
	timerKindRTCPGrace
	timerKindEvict
	timerKindSweep
	timerKindFloodWindow
	timerKindRespFloodWindow
)

// CallMonitor is one entry of the Call State Fact Base: the
// communicating machines tracking one call (paper Figure 2(b)).
// Monitors are pooled: eviction resets the machines and returns the
// whole record — maps, scratch and embedded timers included — to the
// IDS free list, so steady-state call churn allocates nothing. The
// generation counter gen increments on every recycle; timers snapshot
// it at arm time, so an expiry armed for a previous occupant of the
// record can never act on (or alert about) the call that now owns it.
type CallMonitor struct {
	CallID    string
	System    *core.System
	SIP       *core.Machine
	RTPCaller *core.Machine
	RTPCallee *core.Machine

	Created      time.Duration
	LastActivity time.Duration

	raised map[string]bool // alert dedupe keys
	gen    uint32

	// Embedded lifecycle timers (armed on the owning IDS's wheel).
	timerTCaller timerwheel.Timer
	timerTCallee timerwheel.Timer
	rtcpTimer    timerwheel.Timer
	evictTimer   timerwheel.Timer

	// Pending RTCP-BYE grace context (valid while rtcpTimer is armed).
	rtcpSrc string
	rtcpKey string

	// Media-index keys owned by this call, so eviction removes exactly
	// its entries instead of scanning the whole index.
	mediaKeys []string
}

// mediaRef maps a media destination to the machine monitoring it.
type mediaRef struct {
	callID  string
	machine string
}

// IDS is the vids instance: Packet Classifier, Event Distributor,
// Call State Fact Base, Attack Scenarios, and Analysis Engine wired
// together (paper Figure 3).
type IDS struct {
	sim *sim.Simulator
	cfg Config

	sipSpec  *core.Spec
	rtpSpecs map[string]*core.Spec
	spamSp   *core.Spec

	calls      map[string]*CallMonitor
	mediaIndex map[string]mediaRef
	fw         *FloodWatch              // cross-call windowed detectors
	spamMons   map[string]*core.Machine // standalone monitors by media key
	tombstones map[string]time.Duration // recently evicted calls
	monPool    []*CallMonitor           // recycled monitors (free list)

	// wc drives every lifecycle timer — Figure 5's timer T, the RTCP
	// BYE grace, post-close eviction linger and the idle sweep — off
	// one hierarchical wheel anchored to the simulator clock.
	wc         *wheelClock
	sweepTimer timerwheel.Timer

	// strings interns Call-IDs, URIs, media keys and flood destinations
	// so the per-packet path reuses one stable copy per distinct key.
	strings *intern.Table

	// cover, when set via SetCoverage, observes every transition the
	// per-call systems and standalone monitors take (spec-coverage
	// tooling; nil in production).
	cover core.CoverageObserver

	alerts  []Alert
	OnAlert func(Alert)
	// OnPacket, when set, observes every packet entering Process —
	// vids' own vantage point. Trace capture hooks in here so that a
	// replayed trace reproduces exactly what the live instance saw.
	OnPacket func(pkt *sim.Packet, at time.Duration)

	// Counters for the evaluation harness.
	sipPackets     uint64
	rtpPackets     uint64
	rtcpPackets    uint64
	parseErrors    uint64
	deviations     uint64
	evicted        uint64
	prevented      uint64
	strayResponses uint64        // unknown-call responses deferred to an external FloodWatch
	procWallTime   time.Duration // real host CPU spent inside Process

	// Per-packet scratch state. Process/ProcessSIP run single-threaded
	// per instance (the sharded engine gives each shard its own IDS),
	// so one reusable set keeps the classify→step path allocation-free:
	// parsed RTP/RTCP packets, typed event args, and the media-key
	// probe buffer for index lookups.
	rtpScratch  rtp.Packet
	rtcpScratch rtp.RTCP
	sipScratch  sipArgs
	rtpArgsScr  rtpArgs
	keyBuf      []byte
}

// internTableCap bounds the per-instance string intern table at about
// twice this many entries — enough for the distinct Call-IDs, URIs and
// media keys of the resident call population plus recent churn.
const internTableCap = 4096

// New creates a vids instance bound to the simulator clock.
func New(s *sim.Simulator, cfg Config) *IDS {
	d := &IDS{
		sim:        s,
		cfg:        cfg,
		sipSpec:    sipSpec(cfg.CrossProtocol),
		spamSp:     spamSpec(cfg.RTP),
		calls:      make(map[string]*CallMonitor),
		mediaIndex: make(map[string]mediaRef),
		spamMons:   make(map[string]*core.Machine),
		tombstones: make(map[string]time.Duration),
		strings:    intern.New(internTableCap),
	}
	d.wc = newWheelClock(s, d.fire)
	d.sweepTimer.Kind = timerKindSweep
	d.fw = NewFloodWatch(s, cfg, func(a Alert) { d.raise(a, nil) })
	d.rtpSpecs = map[string]*core.Spec{
		MachineRTPCaller: rtpSpec(MachineRTPCaller, cfg.RTP),
		MachineRTPCallee: rtpSpec(MachineRTPCallee, cfg.RTP),
	}
	return d
}

// SetCoverage installs (or, with nil, removes) a core.CoverageObserver
// on every machine this instance runs — resident call monitors, the
// recycled pool, standalone spam monitors, and every monitor created
// later. cmd/speccover uses this to measure which spec transitions the
// test suites actually exercise; production leaves it nil, which
// alloc_test.go pins as allocation-free.
func (d *IDS) SetCoverage(obs core.CoverageObserver) {
	d.cover = obs
	for _, mon := range d.calls {
		mon.System.SetCoverage(obs)
	}
	for _, mon := range d.monPool {
		mon.System.SetCoverage(obs)
	}
	for _, m := range d.spamMons {
		m.SetCoverage(obs)
	}
	d.fw.SetCoverage(obs)
}

// fire dispatches one expired wheel timer. Call-scoped timers carry
// their monitor in Owner and a generation snapshot in Gen; a stale
// generation (the record was recycled onto another call) or a monitor
// no longer resident under its Call-ID makes the expiry a no-op.
//
//vids:noalloc timer expiry runs on the simulated-instant drain
func (d *IDS) fire(t *timerwheel.Timer) {
	if t.Kind == timerKindSweep {
		d.sweep()
		return
	}
	mon, _ := t.Owner.(*CallMonitor)
	if mon == nil || t.Gen != mon.gen || d.calls[mon.CallID] != mon {
		return
	}
	switch t.Kind {
	case timerKindTCaller:
		d.fireTimerT(mon, MachineRTPCaller)
	case timerKindTCallee:
		d.fireTimerT(mon, MachineRTPCallee)
	case timerKindRTCPGrace:
		d.fireRTCPGrace(mon)
	case timerKindEvict:
		d.evict(mon.CallID)
	}
}

// Config returns the active configuration.
func (d *IDS) Config() Config { return d.cfg }

// Transit returns the inline hook to install on the vids network
// node: every crossing packet is analyzed and delayed by the
// configured processing cost, then forwarded (the paper's placement
// between edge router and firewall, Figure 1).
func (d *IDS) Transit() sim.Transit {
	return func(pkt *sim.Packet) (time.Duration, bool) {
		d.Process(pkt)
		forward := true
		if d.cfg.Prevention && d.malicious(pkt) {
			d.prevented++
			forward = false
		}
		switch pkt.Proto {
		case sim.ProtoSIP:
			return d.cfg.SIPProcessing, forward
		case sim.ProtoRTP, sim.ProtoRTCP:
			return d.cfg.RTPProcessing, forward
		default:
			return 0, forward
		}
	}
}

// malicious decides, after the packet has been analyzed, whether it
// belongs to a detected attack context and should be blocked in
// prevention mode.
func (d *IDS) malicious(pkt *sim.Packet) bool {
	raw, ok := pkt.Payload.([]byte)
	if !ok {
		return false
	}
	switch pkt.Proto {
	case sim.ProtoSIP:
		m, err := sipmsg.Parse(raw)
		if err != nil {
			return true // unparseable traffic is dropped in prevention mode
		}
		if m.IsRequest() && m.Method == sipmsg.INVITE && m.To.Tag() == "" {
			dest := d.destKey(m.RequestURI.User, m.RequestURI.Host)
			if d.fw.Quarantined(dest, pkt.From.Host, d.sim.Now()) {
				return true
			}
		}
		if mon, ok := d.calls[m.CallID]; ok && mon.SIP.InAttack() {
			return true
		}
		return false
	case sim.ProtoRTP:
		d.keyBuf = appendMediaKey(d.keyBuf[:0], pkt.To.Host, pkt.To.Port)
		if ref, ok := d.mediaIndex[string(d.keyBuf)]; ok {
			if mon := d.calls[ref.callID]; mon != nil {
				machine, _ := mon.System.Machine(ref.machine)
				if machine != nil && machine.InAttack() {
					return true
				}
			}
		}
		if sp, ok := d.spamMons[string(d.keyBuf)]; ok && sp.InAttack() {
			return true
		}
		return false
	default:
		return false
	}
}

// Prevented reports packets blocked in prevention mode.
func (d *IDS) Prevented() uint64 { return d.prevented }

// Observe is the passive (tap) entry point: analyze without delaying.
func (d *IDS) Observe(pkt *sim.Packet, _ time.Duration) { d.Process(pkt) }

// Process classifies one packet and distributes the resulting event
// to the protocol machines. It is the allocation-minimal hot path:
// RTP/RTCP decode into the instance's scratch packets instead of
// going through Classify's allocating form.
//
//vids:noalloc the per-packet detection path; budgets alloc_test.go:maxIDSProcess*
func (d *IDS) Process(pkt *sim.Packet) {
	if d.OnPacket != nil {
		d.OnPacket(pkt, d.sim.Now()) //vids:alloc-ok trace/bench instrumentation hook; nil in production
	}
	start := time.Now()                                    //vidslint:allow wallclock — self-instrumentation, never feeds detection
	defer func() { d.procWallTime += time.Since(start) }() //vids:alloc-ok open-coded defer; the timing closure does not escape

	raw, ok := pkt.Payload.([]byte)
	if !ok {
		d.parseErrors++
		return
	}
	switch pkt.Proto {
	case sim.ProtoSIP:
		m, err := sipmsg.Parse(raw)
		if err != nil {
			d.parseErrors++
			return
		}
		d.sipPackets++
		d.handleSIP(m, pkt)
	case sim.ProtoRTP:
		if d.cfg.MediaHeaderOnly {
			// SRTP: payload is ciphertext with a trailing auth tag;
			// only the cleartext header is meaningful.
			if err := rtp.ParseHeaderInto(&d.rtpScratch, raw); err != nil {
				d.parseErrors++
				return
			}
		} else if err := rtp.ParseInto(&d.rtpScratch, raw); err != nil {
			d.parseErrors++
			return
		}
		d.rtpPackets++
		d.handleRTP(&d.rtpScratch, pkt)
	case sim.ProtoRTCP:
		if err := rtp.ParseRTCPInto(&d.rtcpScratch, raw); err != nil {
			d.parseErrors++
			return
		}
		d.rtcpPackets++
		d.handleRTCP(&d.rtcpScratch, pkt)
	default:
		// Non-VoIP traffic is outside vids' scope.
	}
}

// ProcessSIP is the classify-bypass entry point: it distributes an
// already-parsed SIP message exactly as Process would after parsing.
// The sharded engine routes on the Call-ID and hands the parsed form
// straight to the owning shard, so each SIP packet is parsed once.
//
//vids:noalloc the per-packet detection path for pre-parsed SIP
func (d *IDS) ProcessSIP(m *sipmsg.Message, pkt *sim.Packet) {
	if d.OnPacket != nil {
		d.OnPacket(pkt, d.sim.Now()) //vids:alloc-ok trace/bench instrumentation hook; nil in production
	}
	start := time.Now()                                    //vidslint:allow wallclock — self-instrumentation, never feeds detection
	defer func() { d.procWallTime += time.Since(start) }() //vids:alloc-ok open-coded defer; the timing closure does not escape

	d.sipPackets++
	d.handleSIP(m, pkt)
}

// dispatch is the Event Distributor: it hands each classified message
// to its protocol handler and maintains the per-protocol counters.
func (d *IDS) dispatch(cl Classified, pkt *sim.Packet) {
	switch cl.Proto {
	case sim.ProtoSIP:
		d.sipPackets++
		d.handleSIP(cl.SIP, pkt)
	case sim.ProtoRTP:
		d.rtpPackets++
		d.handleRTP(cl.RTP, pkt)
	case sim.ProtoRTCP:
		d.rtcpPackets++
		d.handleRTCP(cl.RTCP, pkt)
	default:
		// Non-VoIP traffic is outside vids' scope.
	}
}

// ---------------------------------------------------------------------------
// SIP path
// ---------------------------------------------------------------------------

func (d *IDS) handleSIP(m *sipmsg.Message, pkt *sim.Packet) {
	now := d.sim.Now()

	if m.IsRequest() && m.Method == sipmsg.REGISTER {
		// All of this enterprise's phones register from inside the
		// edge, so any REGISTER vids sees came from outside: an
		// attempt to rebind a local address-of-record elsewhere.
		d.raise(Alert{
			At: now, Type: AlertRogueRegister,
			CallID: m.CallID,
			Source: pkt.From.Host, Target: m.To.URI.String(),
			Detail: "REGISTER crossing the enterprise edge",
		}, nil)
		return
	}

	if m.IsRequest() && m.Method == sipmsg.INVITE && m.To.Tag() == "" && !d.cfg.ExternalFloods {
		// Initial INVITE: feed the flood detector keyed by the
		// destination AOR (Figure 4 counts INVITEs per destination).
		d.fw.FeedInvite(d.destKey(m.RequestURI.User, m.RequestURI.Host), pkt.From.Host, now)
	}

	mon := d.calls[m.CallID]
	if mon == nil {
		if m.IsRequest() && m.Method == sipmsg.INVITE {
			mon = d.newMonitor(m.CallID, now)
		} else {
			if _, evicted := d.tombstones[m.CallID]; evicted {
				return // stragglers of an already-closed call
			}
			if m.IsResponse() {
				if m.CSeq.Method == sipmsg.REGISTER {
					// The registrar's answer to a REGISTER that
					// already raised a rogue-register alert on its
					// way in; not a separate event.
					return
				}
				if d.cfg.ExternalFloods {
					// The embedding engine's shared FloodWatch owns
					// reflection detection; just account for it.
					d.strayResponses++
					return
				}
				// Responses for calls the destination never started:
				// count them toward the DRDoS reflection detector and
				// report the first as a deviation.
				d.fw.FeedStrayResponse(m, pkt.To.Host, pkt.From.Host, now)
				return
			}
			// SIP requests for a call vids never saw begin: deviation.
			d.raise(Alert{
				At: now, Type: AlertDeviation, CallID: m.CallID,
				Source: pkt.From.Host, Target: pkt.To.Host,
				Detail: fmt.Sprintf("%s for unknown call", m.Summary()), //vids:alloc-ok alert detail renders only when raising
			}, nil)
			return
		}
	}
	mon.LastActivity = now

	ev := d.sipEvent(m, pkt)

	// Register media destinations for the classifier before
	// delivering, so RTP routing is ready the moment SDP crosses.
	d.indexMedia(mon, m)

	results, err := mon.System.Deliver(MachineSIP, ev)
	d.consumeResults(mon, results, pkt)
	if err == core.ErrNoTransition {
		d.deviations++
		// Dedup before formatting: repeat deviations on one call skip
		// the Sprintf entirely.
		if d.shouldRaise(mon, AlertDeviation) {
			d.raiseRaw(Alert{
				At: now, Type: AlertDeviation, CallID: m.CallID,
				Source: pkt.From.Host, Target: pkt.To.Host,
				Detail: fmt.Sprintf("%s not accepted in state %s", m.Summary(), mon.SIP.State()), //vids:alloc-ok alert detail renders only when raising
			})
		}
	}

	if mon.System.AllFinal() {
		d.scheduleEvict(mon)
	}
}

// scheduleEvict removes a closed call's monitor after the linger
// window (so post-close attack traffic is still recognized).
func (d *IDS) scheduleEvict(mon *CallMonitor) {
	if mon.evictTimer.Armed() {
		return
	}
	mon.evictTimer.Gen = mon.gen
	d.wc.arm(&mon.evictTimer, d.cfg.CloseLinger)
}

// destKey renders and interns the destination AOR user@host the flood
// detectors and the prevention quarantine key on.
func (d *IDS) destKey(user, host string) string {
	d.keyBuf = append(d.keyBuf[:0], user...)
	d.keyBuf = append(d.keyBuf, '@')
	d.keyBuf = append(d.keyBuf, host...)
	return d.strings.Bytes(d.keyBuf)
}

// sipEvent builds the input vector x from a SIP message and its
// carrying packet (paper Section 4.2: header fields, SDP body values,
// and the transport source/destination). The vector lives in the
// instance's reusable typed-args scratch: it is valid until the next
// SIP packet, which is fine because Deliver consumes it synchronously.
func (d *IDS) sipEvent(m *sipmsg.Message, pkt *sim.Packet) core.Event {
	a := &d.sipScratch
	*a = sipArgs{
		src:     pkt.From.Host,
		dst:     pkt.To.Host,
		callID:  m.CallID,
		from:    d.internURI(m.From.URI),
		to:      d.internURI(m.To.URI),
		fromTag: m.From.Tag(),
		toTag:   m.To.Tag(),
	}
	if m.Contact != nil {
		a.contact = m.Contact.URI.Host
	}
	// One validating scan extracts the SDP media destination; both the
	// event vector and indexMedia (which runs right after) read the
	// scratch, so each message's body is examined exactly once.
	if addr, port, payload, ok := sdp.MediaDest(m.Body); ok {
		a.sdpAddr = d.strings.Bytes(addr)
		a.sdpPort = port
		a.sdpPayload = payload
	}

	if m.IsResponse() {
		a.status = m.StatusCode
		a.cseqMethod = string(m.CSeq.Method)
		return core.Event{Name: EvResponse, Typed: a}
	}
	name := EvResponse
	switch m.Method {
	case sipmsg.INVITE:
		name = EvInvite
	case sipmsg.ACK:
		name = EvAck
	case sipmsg.BYE:
		name = EvBye
	case sipmsg.CANCEL:
		name = EvCancel
	default:
		name = "sip." + string(m.Method) //vids:alloc-ok unknown-method events only; every RFC 3261 method is pre-named
	}
	return core.Event{Name: name, Typed: a}
}

// internURI renders a URI into the scratch buffer and interns it, so
// the recurring From/To identities of a call mix cost no allocation
// after first sight.
func (d *IDS) internURI(u sipmsg.URI) string {
	d.keyBuf = appendURI(d.keyBuf[:0], u)
	return d.strings.Bytes(d.keyBuf)
}

// indexMedia records the media destination the current SIP message
// advertises (already extracted into the sipArgs scratch by sipEvent)
// so the Event Distributor can route subsequent RTP packets to the
// right machine (Call State Fact Base lookups, Figure 3).
func (d *IDS) indexMedia(mon *CallMonitor, m *sipmsg.Message) {
	a := &d.sipScratch
	if a.sdpAddr == "" {
		return
	}
	var machine string
	switch {
	case m.IsRequest() && m.Method == sipmsg.INVITE:
		// Caller's SDP names where the *callee's* stream will land.
		machine = MachineRTPCallee
	case m.IsResponse() && m.IsSuccess() && m.CSeq.Method == sipmsg.INVITE:
		machine = MachineRTPCaller
	default:
		return
	}
	d.keyBuf = appendMediaKey(d.keyBuf[:0], a.sdpAddr, a.sdpPort)
	key := d.strings.Bytes(d.keyBuf)
	d.mediaIndex[key] = mediaRef{callID: mon.CallID, machine: machine} //vids:alloc-ok one entry per advertised media stream; deleted on eviction
	mon.mediaKeys = append(mon.mediaKeys, key)
}

func mediaKey(host string, port int) string {
	return host + ":" + strconv.Itoa(port)
}

// ---------------------------------------------------------------------------
// RTP path
// ---------------------------------------------------------------------------

func (d *IDS) handleRTP(p *rtp.Packet, pkt *sim.Packet) {
	now := d.sim.Now()
	a := &d.rtpArgsScr
	*a = rtpArgs{
		src:         pkt.From.Host,
		dst:         pkt.To.Host,
		ssrc:        p.SSRC,
		seq:         int(p.Sequence),
		ts:          p.Timestamp,
		payloadType: int(p.PayloadType),
		now:         now,
	}
	ev := core.Event{Name: EvRTP, Typed: a}

	// Probe the media index through the reusable key buffer; the key
	// string is only materialized on the cold paths that retain it.
	d.keyBuf = appendMediaKey(d.keyBuf[:0], pkt.To.Host, pkt.To.Port)
	ref, ok := d.mediaIndex[string(d.keyBuf)]
	if !ok {
		d.handleUnsolicitedRTP(ev, pkt, now)
		return
	}
	mon := d.calls[ref.callID]
	if mon == nil {
		// Call already evicted; the stream should be dead too.
		if _, evicted := d.tombstones[ref.callID]; !evicted {
			d.raise(Alert{
				At: now, Type: AlertUnsolicitedRTP, CallID: ref.callID,
				Source: pkt.From.Host, Target: string(d.keyBuf), //vids:alloc-ok alert-path materialization of the scratch media key
				Detail: "RTP for a call with no live monitor",
			}, nil)
		}
		return
	}
	mon.LastActivity = now

	results, err := mon.System.Deliver(ref.machine, ev)
	d.consumeResults(mon, results, pkt)
	if err == core.ErrNoTransition {
		d.deviations++
		d.raise(Alert{
			At: now, Type: AlertDeviation, CallID: mon.CallID,
			Source: pkt.From.Host, Target: string(d.keyBuf), //vids:alloc-ok alert-path materialization of the scratch media key
			Detail: fmt.Sprintf("RTP not accepted by %s in its current state", ref.machine), //vids:alloc-ok alert detail renders only when raising
		}, mon)
	}
}

// handleRTCP checks control traffic against the signaling state: an
// RTCP BYE for a stream whose call the SIP machine still considers
// established is a media-plane teardown injection. Periodic sender
// and receiver reports are counted but raise nothing.
func (d *IDS) handleRTCP(p *rtp.RTCP, pkt *sim.Packet) {
	if p.Type != rtp.RTCPBye {
		return
	}
	if d.cfg.MediaHeaderOnly {
		// Under SRTP the RTCP BYE rides inside an encrypted SRTCP
		// compound packet: the plaintext BYE this handler keys on is
		// not observable, so acting on one would mean trusting a
		// packet an SRTP deployment could never have shown us.
		return
	}
	now := d.sim.Now()
	// RTCP runs on the media port + 1.
	d.keyBuf = appendMediaKey(d.keyBuf[:0], pkt.To.Host, pkt.To.Port-1)
	ref, ok := d.mediaIndex[string(d.keyBuf)]
	if !ok {
		return // stream unknown (already closed or never negotiated)
	}
	mon := d.calls[ref.callID]
	if mon == nil {
		return
	}
	mon.LastActivity = now
	switch mon.SIP.State() {
	case SIPTeardown, SIPClosed:
		return // legitimate: the call is ending on the signaling plane too
	}
	// A genuine hangup races its own RTCP BYE against the SIP BYE on
	// the same path — and the SIP BYE may need a retransmission cycle
	// if it was lost — so give the signaling plane a generous window
	// before judging. One armed grace timer per call suffices: repeat
	// BYEs within the window would only re-raise a deduplicated alert.
	if mon.rtcpTimer.Armed() {
		return
	}
	mon.rtcpSrc = pkt.From.Host
	mon.rtcpKey = d.strings.Bytes(d.keyBuf)
	mon.rtcpTimer.Gen = mon.gen
	d.wc.arm(&mon.rtcpTimer, d.cfg.RTCPByeGrace)
}

// fireRTCPGrace judges a pending RTCP BYE once its grace window ends:
// if the signaling plane still has the dialog established, the
// media-plane teardown was injected.
func (d *IDS) fireRTCPGrace(mon *CallMonitor) {
	if mon.SIP.InAttack() {
		return
	}
	switch mon.SIP.State() {
	case SIPTeardown, SIPClosed:
		return
	}
	d.raise(Alert{
		At: d.sim.Now(), Type: AlertRTCPBye, CallID: mon.CallID,
		Source: mon.rtcpSrc, Target: mon.rtcpKey,
		Detail: "RTCP BYE while the SIP dialog is still established",
	}, mon)
}

// handleUnsolicitedRTP runs the standalone Figure 6 monitor for
// streams no SDP advertised. The media key is read from d.keyBuf
// (set by handleRTP) and materialized only when a monitor is created
// or an alert retains it.
func (d *IDS) handleUnsolicitedRTP(ev core.Event, pkt *sim.Packet, now time.Duration) {
	mon, ok := d.spamMons[string(d.keyBuf)]
	if !ok {
		key := string(d.keyBuf) //vids:alloc-ok first packet of an unadvertised stream only
		mon = core.NewMachine(d.spamSp, nil)
		mon.SetCoverage(d.cover)
		d.spamMons[key] = mon //vids:alloc-ok one machine per unsolicited stream; swept on idle
		d.armSweep()
		d.raise(Alert{
			At: now, Type: AlertUnsolicitedRTP,
			Source: pkt.From.Host, Target: key,
			Detail: "RTP stream with no negotiated session",
		}, nil)
	}
	res, err := mon.Step(ev)
	if err == nil && res.EnteredAttack {
		d.raise(Alert{
			At: now, Type: AlertMediaSpam,
			Source: pkt.From.Host, Target: string(d.keyBuf), //vids:alloc-ok alert-path materialization of the scratch media key
			Detail: "unsolicited stream exceeded spam thresholds",
		}, nil)
	}
}

// ---------------------------------------------------------------------------
// Fact base and analysis engine
// ---------------------------------------------------------------------------

func (d *IDS) newMonitor(callID string, now time.Duration) *CallMonitor {
	var mon *CallMonitor
	if n := len(d.monPool); n > 0 {
		mon = d.monPool[n-1]
		d.monPool[n-1] = nil
		d.monPool = d.monPool[:n-1]
	} else {
		sys := core.NewSystem()
		sipM, _ := sys.Add(d.sipSpec)
		caller, _ := sys.Add(d.rtpSpecs[MachineRTPCaller])
		callee, _ := sys.Add(d.rtpSpecs[MachineRTPCallee])
		mon = &CallMonitor{ //vids:alloc-ok monitor-pool miss only; steady-state churn recycles
			System:    sys,
			SIP:       sipM,
			RTPCaller: caller,
			RTPCallee: callee,
			raised:    make(map[string]bool), //vids:alloc-ok pool miss only; cleared and reused on recycle
		}
		mon.timerTCaller = timerwheel.Timer{Kind: timerKindTCaller, Owner: mon}
		mon.timerTCallee = timerwheel.Timer{Kind: timerKindTCallee, Owner: mon}
		mon.rtcpTimer = timerwheel.Timer{Kind: timerKindRTCPGrace, Owner: mon}
		mon.evictTimer = timerwheel.Timer{Kind: timerKindEvict, Owner: mon}
		sys.SetCoverage(d.cover)
	}
	mon.CallID = d.strings.String(callID)
	mon.Created = now
	mon.LastActivity = now
	d.calls[mon.CallID] = mon //vids:alloc-ok one entry per live call; deleted on eviction
	delete(d.tombstones, mon.CallID)
	d.armSweep()
	return mon
}

// consumeResults inspects transitions for attack entries and timer
// arming.
func (d *IDS) consumeResults(mon *CallMonitor, results []core.StepResult, pkt *sim.Packet) {
	now := d.sim.Now()
	for _, res := range results {
		if res.To == RTPAfterBye && res.From != RTPAfterBye {
			d.armTimerT(mon, res.Machine)
		}
		if res.EnteredAttack {
			t := alertTypeForLabel(res.Label)
			if d.shouldRaise(mon, t) {
				d.raiseRaw(Alert{
					At: now, Type: t,
					CallID: mon.CallID,
					Source: pkt.From.Host, Target: pkt.To.Host,
					Detail: fmt.Sprintf("%s: %s -> %s on %s", res.Machine, res.From, res.To, res.Event), //vids:alloc-ok alert detail renders only when raising
				})
			}
		}
	}
}

// armTimerT arms Figure 5's timer T for one RTP direction machine. An
// already-armed timer keeps its (earlier) deadline, matching the old
// one-closure-per-entry behavior where the earliest expiry acted and
// later ones found nothing left to do.
func (d *IDS) armTimerT(mon *CallMonitor, machine string) {
	t := &mon.timerTCallee
	if machine == MachineRTPCaller {
		t = &mon.timerTCaller
	}
	if t.Armed() {
		return
	}
	t.Gen = mon.gen
	d.wc.arm(t, d.cfg.ByeGraceT)
}

// fireTimerT delivers the timer-T expiry to its RTP machine: in-flight
// media after a BYE was tolerated for the grace window; whatever state
// the machine moves to now decides between clean closure and attack.
func (d *IDS) fireTimerT(mon *CallMonitor, machine string) {
	_, _ = mon.System.DeliverSync(machine, evTimerT)
	if mon.System.AllFinal() {
		d.scheduleEvict(mon)
	}
}

func alertTypeForLabel(label string) AlertType {
	switch label {
	case labelSpoofedBye:
		return AlertSpoofedBye
	case labelSpoofedCancel:
		return AlertSpoofedCancel
	case labelHijack:
		return AlertCallHijack
	case labelMediaSpam:
		return AlertMediaSpam
	case labelCodec:
		return AlertCodecViolation
	case labelByeDoS:
		return AlertByeDoS
	case labelTollFraud:
		return AlertTollFraud
	case labelRTPFlood:
		return AlertRTPFlood
	case labelInviteFlood:
		return AlertInviteFlood
	case labelDRDoS:
		return AlertDRDoS
	default:
		return AlertDeviation
	}
}

// shouldRaise applies the per-(call, type) alert dedup and records the
// key. Call it before constructing an Alert whose Detail formatting
// should be skipped for duplicates; a nil monitor always passes.
func (d *IDS) shouldRaise(mon *CallMonitor, t AlertType) bool {
	if mon == nil {
		return true
	}
	key := string(t)
	if mon.raised[key] {
		return false
	}
	mon.raised[key] = true //vids:alloc-ok per-call dedup set, bounded by the alert-type vocabulary
	return true
}

// raiseRaw records an alert that already passed (or does not need)
// deduplication.
func (d *IDS) raiseRaw(a Alert) {
	d.alerts = append(d.alerts, a)
	if d.OnAlert != nil {
		d.OnAlert(a) //vids:alloc-ok alert delivery callback; fires per alert, not per packet
	}
}

// raise records an alert, deduplicating per (call, type) so one
// attack does not flood the operator.
func (d *IDS) raise(a Alert, mon *CallMonitor) {
	if !d.shouldRaise(mon, a.Type) {
		return
	}
	d.raiseRaw(a)
}

// evict removes a finished call from the fact base (paper
// Section 7.3: "Once the calls have successfully reached the final
// state, the corresponding protocol state machines will be deleted")
// and recycles its monitor onto the pool.
func (d *IDS) evict(callID string) {
	mon := d.calls[callID]
	if mon == nil {
		return
	}
	delete(d.calls, callID)
	d.tombstones[mon.CallID] = d.sim.Now() //vids:alloc-ok eviction tombstone; swept with the linger window
	for _, key := range mon.mediaKeys {
		// A key is deleted only while this call still owns it; a newer
		// call reusing the same destination overwrote the entry.
		if ref, ok := d.mediaIndex[key]; ok && ref.callID == callID {
			delete(d.mediaIndex, key)
		}
	}
	d.evicted++
	d.recycle(mon)
}

// recycle scrubs an evicted monitor and returns it to the pool:
// pending timers are cancelled, the machines reset to their initial
// states, and the generation counter advances so any expiry or
// reference armed against the old call is recognizably stale. The next
// call this record hosts starts from exactly the state a freshly
// allocated monitor would.
func (d *IDS) recycle(mon *CallMonitor) {
	d.wc.cancel(&mon.timerTCaller)
	d.wc.cancel(&mon.timerTCallee)
	d.wc.cancel(&mon.rtcpTimer)
	d.wc.cancel(&mon.evictTimer)
	mon.gen++
	mon.timerTCaller.Gen = mon.gen
	mon.timerTCallee.Gen = mon.gen
	mon.rtcpTimer.Gen = mon.gen
	mon.evictTimer.Gen = mon.gen
	mon.System.Reset()
	clear(mon.raised)
	mon.CallID = ""
	mon.rtcpSrc, mon.rtcpKey = "", ""
	mon.Created, mon.LastActivity = 0, 0
	mon.mediaKeys = mon.mediaKeys[:0]
	d.monPool = append(d.monPool, mon)
}

// armSweep arms the idle-eviction sweep timer if it is not already
// pending. The sweep re-arms itself only while there is state to
// reclaim, so a drained IDS leaves the simulator's event queue empty
// and simulations terminate naturally.
func (d *IDS) armSweep() {
	if d.cfg.IdleEviction <= 0 || d.sweepTimer.Armed() {
		return
	}
	d.wc.arm(&d.sweepTimer, d.cfg.IdleEviction/2)
}

// sweep evicts idle calls, expires tombstones and drops the standalone
// spam monitors (their streams either stopped or will immediately
// re-register).
func (d *IDS) sweep() {
	now := d.sim.Now()
	for id, mon := range d.calls {
		if now-mon.LastActivity > d.cfg.IdleEviction {
			d.evict(id)
		}
	}
	for id, at := range d.tombstones {
		if now-at > d.cfg.IdleEviction {
			delete(d.tombstones, id)
		}
	}
	clear(d.spamMons)
	if len(d.calls)+len(d.tombstones) > 0 {
		d.armSweep()
	}
}

// ---------------------------------------------------------------------------
// Introspection for the evaluation harness
// ---------------------------------------------------------------------------

// Alerts returns a copy of all alerts raised so far.
func (d *IDS) Alerts() []Alert { return append([]Alert(nil), d.alerts...) }

// WriteAlerts renders all alerts as a JSON array (the operator-facing
// report format).
func (d *IDS) WriteAlerts(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	alerts := d.alerts
	if alerts == nil {
		alerts = []Alert{}
	}
	return enc.Encode(alerts)
}

// AlertStats counts alerts by type.
func (d *IDS) AlertStats() map[AlertType]int {
	out := make(map[AlertType]int)
	for _, a := range d.alerts {
		out[a.Type]++
	}
	return out
}

// AlertsOfType filters alerts by type.
func (d *IDS) AlertsOfType(t AlertType) []Alert {
	var out []Alert
	for _, a := range d.alerts {
		if a.Type == t {
			out = append(out, a)
		}
	}
	return out
}

// ActiveCalls reports the number of monitored calls resident in the
// fact base.
func (d *IDS) ActiveCalls() int { return len(d.calls) }

// Evicted reports how many call monitors were deleted after reaching
// final states.
func (d *IDS) Evicted() uint64 { return d.evicted }

// Monitor returns the monitor for a call, if resident.
func (d *IDS) Monitor(callID string) (*CallMonitor, bool) {
	m, ok := d.calls[callID]
	return m, ok
}

// Counters reports (SIP packets, RTP packets, parse errors,
// deviations) seen so far.
func (d *IDS) Counters() (sipPkts, rtpPkts, parseErrs, deviations uint64) {
	return d.sipPackets, d.rtpPackets, d.parseErrors, d.deviations
}

// RTCPPackets reports RTCP packets inspected.
func (d *IDS) RTCPPackets() uint64 { return d.rtcpPackets }

// ProcessingWallTime reports real host CPU time spent inside Process,
// for the CPU-overhead experiment (Section 7.3).
func (d *IDS) ProcessingWallTime() time.Duration { return d.procWallTime }

// MemoryFootprint sums the per-call state bytes across the fact base
// (Section 7.3's memory accounting).
func (d *IDS) MemoryFootprint() int {
	total := 0
	for _, mon := range d.calls {
		total += mon.System.MemoryFootprint()
	}
	return total
}

// PerCallMemory reports one call's state footprint in bytes.
func (mon *CallMonitor) PerCallMemory() int { return mon.System.MemoryFootprint() }

// SystemSpecs returns the communicating per-call triple — the SIP
// machine and the two RTP direction machines — exactly as newMonitor
// assembles them into one core.System. Tooling that verifies the
// δ-synchronization contract (internal/speclint) lints this set as a
// product.
func SystemSpecs(cfg Config) []*core.Spec {
	return []*core.Spec{
		sipSpec(cfg.CrossProtocol),
		rtpSpec(MachineRTPCaller, cfg.RTP),
		rtpSpec(MachineRTPCallee, cfg.RTP),
	}
}

// Specs returns the protocol machine definitions a configuration
// builds: the SIP machine, the two RTP direction machines, the INVITE
// and response flood detectors, and the standalone spam monitor. Used
// by tooling that renders or validates the specifications.
func Specs(cfg Config) []*core.Spec {
	return append(SystemSpecs(cfg),
		floodSpec(cfg.FloodN),
		respFloodSpec(cfg.ResponseFloodN),
		spamSpec(cfg.RTP),
	)
}
