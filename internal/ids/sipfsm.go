package ids

import (
	"vids/internal/core"
)

// Machine names inside one call's communicating system. The SIP
// machine synchronizes with two RTP machines, one per media
// direction; "rtp-caller" monitors the stream the caller sends
// (destination advertised in the 200 OK's SDP) and "rtp-callee" the
// stream the callee sends (destination advertised in the INVITE's
// SDP). This refines the paper's Figure 2(b) — the INVITE's δ opens
// the callee-to-caller direction, the 200 OK's δ opens the reverse.
const (
	MachineSIP       = "sip"
	MachineRTPCaller = "rtp-caller"
	MachineRTPCallee = "rtp-callee"
)

// SIP machine control states (paper Figures 2(a) and 5).
const (
	SIPInit        core.State = "INIT"
	SIPInviteRcvd  core.State = "INVITE_RCVD"
	SIPRinging     core.State = "RINGING"
	SIPEstablished core.State = "CALL_ESTABLISHED"
	SIPCancelWait  core.State = "CANCEL_WAIT"
	SIPTeardown    core.State = "CALL_TEARDOWN"
	SIPClosed      core.State = "CLOSED"

	SIPAttackSpoofedBye    core.State = "ATTACK_SPOOFED_BYE"
	SIPAttackSpoofedCancel core.State = "ATTACK_SPOOFED_CANCEL"
	SIPAttackHijack        core.State = "ATTACK_CALL_HIJACK"
)

// Event names of the SIP machine's alphabet.
const (
	EvInvite   = "sip.invite"
	EvAck      = "sip.ack"
	EvBye      = "sip.bye"
	EvCancel   = "sip.cancel"
	EvResponse = "sip.response"
)

// Pre-built δ synchronization events. Ctx.Emit copies the Event value
// into the System queue, so sharing these across calls is safe (the
// Args maps are never mutated) and keeps emitting transitions
// allocation-free.
var (
	deltaOpenCallee = core.Event{Name: EvDeltaOpen, Args: map[string]any{"party": "callee"}}
	deltaOpenCaller = core.Event{Name: EvDeltaOpen, Args: map[string]any{"party": "caller"}}
	deltaBye        = core.Event{Name: EvDeltaBye}
	deltaReopen     = core.Event{Name: EvDeltaReopen}
)

// Transition labels used for alert mapping.
const (
	labelSpoofedBye    = "spoofed-bye"
	labelSpoofedCancel = "spoofed-cancel"
	labelHijack        = "call-hijack"
	labelByeSeen       = "bye-seen"
)

// sipSpec builds the per-call SIP protocol machine from the RFC 3261
// call-setup specification. crossProtocol controls whether the
// machine emits δ synchronization messages to the RTP machines
// (disabled only by the ablation experiment).
func sipSpec(crossProtocol bool) *core.Spec {
	s := core.NewSpec(MachineSIP, SIPInit)

	// --- Call setup -----------------------------------------------------
	// INIT --INVITE--> INVITE_RCVD. Store the dialog identity and the
	// caller's offered media; open the callee->caller RTP direction.
	s.On(SIPInit, EvInvite, nil, func(c *core.Ctx) {
		e := c.Event
		c.Vars.SetString("l.callID", e.StringArg("callID"))
		c.Vars.SetString("l.fromTag", e.StringArg("fromTag"))
		c.Vars.SetString("l.inviteSrc", e.StringArg("src"))
		c.Vars.SetString("l.callerContact", e.StringArg("contact"))
		c.Vars.SetString("l.from", e.StringArg("from"))
		c.Vars.SetString("l.to", e.StringArg("to"))
		if addr := e.StringArg("sdpAddr"); addr != "" {
			c.Globals.SetString("g.callerMediaAddr", addr)
			c.Globals.SetInt("g.callerMediaPort", e.IntArg("sdpPort"))
			c.Globals.SetInt("g.payload", e.IntArg("sdpPayload"))
			// Opening the RTP machine is session bookkeeping the
			// classifier needs regardless of the cross-protocol
			// ablation; only the δ teardown notifications below are
			// the paper's cross-protocol *detection* channel.
			c.Emit(MachineRTPCallee, deltaOpenCallee)
		}
	}, SIPInviteRcvd)

	// INVITE retransmissions from the same source loop harmlessly.
	retransInvite := func(c *core.Ctx) bool {
		return c.Event.StringArg("src") == c.Vars.GetString("l.inviteSrc") &&
			c.Event.StringArg("toTag") == ""
	}
	s.On(SIPInviteRcvd, EvInvite, retransInvite, nil, SIPInviteRcvd)
	s.On(SIPRinging, EvInvite, retransInvite, nil, SIPRinging)

	// Provisional responses.
	provNotRinging := func(c *core.Ctx) bool {
		st := c.Event.IntArg("status")
		return st >= 100 && st < 200 && st != 180
	}
	ringing := func(c *core.Ctx) bool { return c.Event.IntArg("status") == 180 }
	s.On(SIPInviteRcvd, EvResponse, provNotRinging, nil, SIPInviteRcvd)
	s.On(SIPInviteRcvd, EvResponse, ringing, nil, SIPRinging)
	s.On(SIPRinging, EvResponse, func(c *core.Ctx) bool {
		return c.Event.IntArg("status") < 200
	}, nil, SIPRinging)

	// 200 OK for the INVITE: call established. Store the callee's
	// identity and answered media; open the caller->callee RTP
	// direction.
	okForInvite := func(c *core.Ctx) bool {
		return c.Event.IntArg("status") >= 200 && c.Event.IntArg("status") < 300 &&
			c.Event.StringArg("cseqMethod") == "INVITE"
	}
	establish := func(c *core.Ctx) {
		e := c.Event
		c.Vars.SetString("l.toTag", e.StringArg("toTag"))
		c.Vars.SetString("l.calleeContact", e.StringArg("contact"))
		if addr := e.StringArg("sdpAddr"); addr != "" {
			c.Globals.SetString("g.calleeMediaAddr", addr)
			c.Globals.SetInt("g.calleeMediaPort", e.IntArg("sdpPort"))
			c.Emit(MachineRTPCaller, deltaOpenCaller)
		}
	}
	s.On(SIPInviteRcvd, EvResponse, okForInvite, establish, SIPEstablished)
	s.On(SIPRinging, EvResponse, okForInvite, establish, SIPEstablished)

	// closeMedia tells both RTP machines the call is over so their
	// machines can reach final states and the whole system becomes
	// evictable.
	closeMedia := func(c *core.Ctx) {
		if crossProtocol {
			c.Emit(MachineRTPCaller, deltaBye)
			c.Emit(MachineRTPCallee, deltaBye)
		}
	}

	// Final non-2xx while pending: call failed or was declined.
	failedFinal := func(c *core.Ctx) bool {
		return c.Event.IntArg("status") >= 300 && c.Event.StringArg("cseqMethod") == "INVITE"
	}
	s.On(SIPInviteRcvd, EvResponse, failedFinal, closeMedia, SIPClosed)
	s.On(SIPRinging, EvResponse, failedFinal, closeMedia, SIPClosed)

	// --- CANCEL ----------------------------------------------------------
	// A legitimate CANCEL comes from the same transport source that
	// delivered the INVITE, inside the same dialog attempt
	// (paper Section 3.1: "A CANCEL is for an outstanding INVITE").
	cancelLegit := func(c *core.Ctx) bool {
		return c.Event.StringArg("src") == c.Vars.GetString("l.inviteSrc") &&
			c.Event.StringArg("fromTag") == c.Vars.GetString("l.fromTag")
	}
	cancelSpoofed := func(c *core.Ctx) bool { return !cancelLegit(c) }
	for _, from := range []core.State{SIPInviteRcvd, SIPRinging} {
		s.On(from, EvCancel, cancelLegit, nil, SIPCancelWait)
		s.OnLabeled(labelSpoofedCancel, from, EvCancel, cancelSpoofed, nil, SIPAttackSpoofedCancel)
	}
	s.On(SIPCancelWait, EvResponse, func(c *core.Ctx) bool {
		return c.Event.IntArg("status") < 300 // 200 for CANCEL
	}, nil, SIPCancelWait)
	s.On(SIPCancelWait, EvResponse, func(c *core.Ctx) bool {
		return c.Event.IntArg("status") >= 300 // 487 for the INVITE
	}, closeMedia, SIPClosed)
	s.On(SIPCancelWait, EvAck, nil, nil, SIPCancelWait)
	s.On(SIPCancelWait, EvCancel, cancelLegit, nil, SIPCancelWait)

	// --- Established dialog ----------------------------------------------
	s.On(SIPEstablished, EvAck, nil, nil, SIPEstablished)
	// Retransmitted 200 OKs.
	s.On(SIPEstablished, EvResponse, okForInvite, nil, SIPEstablished)
	// Responses to in-dialog requests (e.g. re-INVITE 200s) also loop.
	s.On(SIPEstablished, EvResponse, func(c *core.Ctx) bool {
		return !okForInvite(c)
	}, nil, SIPEstablished)

	// Re-INVITE: legitimate when it originates from a known party of
	// the dialog; anything else is a call-hijack attempt
	// (Section 3.1: "a new INVITE request could be sent within a
	// pre-existing dialog").
	knownParty := func(c *core.Ctx) bool {
		src := c.Event.StringArg("src")
		fromTag := c.Event.StringArg("fromTag")
		v := c.Vars
		fromCaller := src == v.GetString("l.callerContact") && fromTag == v.GetString("l.fromTag")
		fromCallee := src == v.GetString("l.calleeContact") && fromTag == v.GetString("l.toTag")
		// In-dialog requests may also arrive through the proxy path
		// that carried the INVITE.
		viaProxy := src == v.GetString("l.inviteSrc") && fromTag == v.GetString("l.fromTag")
		return fromCaller || fromCallee || viaProxy
	}
	s.On(SIPEstablished, EvInvite, knownParty, nil, SIPEstablished)
	s.OnLabeled(labelHijack, SIPEstablished, EvInvite, func(c *core.Ctx) bool {
		return !knownParty(c)
	}, nil, SIPAttackHijack)

	// --- Teardown ----------------------------------------------------------
	// A consistent BYE moves to teardown and synchronizes the RTP
	// machines (Figure 5): before the transition a δ(SIP->RTP) is
	// sent, and the global records which party hung up so the RTP
	// machines can separate BYE-DoS from toll fraud. If the BYE later
	// draws a 401 challenge (authenticated deployments), a δ reopen
	// rolls the RTP machines back.
	byeAction := func(c *core.Ctx) {
		sender := "caller"
		if c.Event.StringArg("fromTag") == c.Vars.GetString("l.toTag") {
			sender = "callee"
		}
		c.Globals.SetString("g.byeSender", sender)
		if crossProtocol {
			c.Emit(MachineRTPCaller, deltaBye)
			c.Emit(MachineRTPCallee, deltaBye)
		}
	}
	s.OnLabeled(labelByeSeen, SIPEstablished, EvBye, knownParty, byeAction, SIPTeardown)
	s.OnLabeled(labelSpoofedBye, SIPEstablished, EvBye, func(c *core.Ctx) bool {
		return !knownParty(c)
	},
		// Even a spoofed BYE tears the call down at the victim UA, so
		// the RTP machines must still arm their after-BYE timers.
		byeAction, SIPAttackSpoofedBye)

	s.On(SIPTeardown, EvResponse, nil, nil, SIPTeardown)
	s.On(SIPTeardown, EvBye, nil, nil, SIPTeardown) // retransmissions
	s.On(SIPTeardown, EvAck, nil, nil, SIPTeardown)
	// The 200 for the BYE confirms the teardown and closes the call.
	s.OnLabeled("closed", SIPTeardown, EvResponse, func(c *core.Ctx) bool {
		return c.Event.StringArg("cseqMethod") == "BYE" && c.Event.IntArg("status") < 300
	}, nil, SIPClosed)
	// A 401 challenge for the BYE means nothing was torn down: the
	// dialog is still alive (authenticated deployments), so the RTP
	// machines are reopened.
	s.On(SIPTeardown, EvResponse, func(c *core.Ctx) bool {
		return c.Event.StringArg("cseqMethod") == "BYE" &&
			c.Event.IntArg("status") == 401
	}, func(c *core.Ctx) {
		if crossProtocol {
			c.Emit(MachineRTPCaller, deltaReopen)
			c.Emit(MachineRTPCallee, deltaReopen)
		}
	}, SIPEstablished)

	// CLOSED absorbs stragglers (retransmitted finals, late ACKs).
	s.On(SIPClosed, EvResponse, nil, nil, SIPClosed)
	s.On(SIPClosed, EvAck, nil, nil, SIPClosed)
	s.On(SIPClosed, EvBye, nil, nil, SIPClosed)

	// Attack states absorb everything so one detection does not
	// cascade into deviation noise.
	for _, attack := range []core.State{SIPAttackSpoofedBye, SIPAttackSpoofedCancel, SIPAttackHijack} {
		for _, ev := range []string{EvInvite, EvAck, EvBye, EvCancel, EvResponse} {
			s.On(attack, ev, nil, nil, attack)
		}
	}

	s.Final(SIPClosed)
	s.Attack(SIPAttackSpoofedBye, SIPAttackSpoofedCancel, SIPAttackHijack)
	return s
}
