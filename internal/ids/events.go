package ids

import (
	"strconv"
	"time"

	"vids/internal/core"
	"vids/internal/sipmsg"
)

// sipArgs is the typed input vector x for SIP events — the same keys
// sipEvent historically packed into a map[string]any, held in a
// reusable struct so the per-packet path does not allocate a map and
// box every field. Absent fields read as zero values, exactly as a
// missing map key does through the Event accessors.
type sipArgs struct {
	src, dst   string
	callID     string
	from, to   string
	fromTag    string
	toTag      string
	contact    string
	cseqMethod string
	sdpAddr    string
	sdpPort    int
	sdpPayload int
	status     int
}

func (a *sipArgs) StringArg(key string) (string, bool) {
	switch key {
	case "src":
		return a.src, true
	case "dst":
		return a.dst, true
	case "callID":
		return a.callID, true
	case "from":
		return a.from, true
	case "to":
		return a.to, true
	case "fromTag":
		return a.fromTag, true
	case "toTag":
		return a.toTag, true
	case "contact":
		return a.contact, true
	case "cseqMethod":
		return a.cseqMethod, true
	case "sdpAddr":
		return a.sdpAddr, true
	}
	return "", false
}

func (a *sipArgs) IntArg(key string) (int, bool) {
	switch key {
	case "status":
		return a.status, true
	case "sdpPort":
		return a.sdpPort, true
	case "sdpPayload":
		return a.sdpPayload, true
	}
	return 0, false
}

func (a *sipArgs) Uint32Arg(string) (uint32, bool) { return 0, false }

func (a *sipArgs) DurationArg(string) (time.Duration, bool) { return 0, false }

// rtpArgs is the typed input vector for EvRTP events.
type rtpArgs struct {
	src, dst    string
	ssrc        uint32
	ts          uint32
	seq         int
	payloadType int
	now         time.Duration
}

func (a *rtpArgs) StringArg(key string) (string, bool) {
	switch key {
	case "src":
		return a.src, true
	case "dst":
		return a.dst, true
	}
	return "", false
}

func (a *rtpArgs) IntArg(key string) (int, bool) {
	switch key {
	case "seq":
		return a.seq, true
	case "payloadType":
		return a.payloadType, true
	}
	return 0, false
}

func (a *rtpArgs) Uint32Arg(key string) (uint32, bool) {
	switch key {
	case "ssrc":
		return a.ssrc, true
	case "ts":
		return a.ts, true
	}
	return 0, false
}

func (a *rtpArgs) DurationArg(key string) (time.Duration, bool) {
	if key == "now" {
		return a.now, true
	}
	return 0, false
}

// floodArgs is the typed input vector for the windowed cross-call
// detectors (Figure 4's INVITE flood and the DRDoS response counter).
type floodArgs struct {
	dest, src string
}

func (a *floodArgs) StringArg(key string) (string, bool) {
	switch key {
	case "dest":
		return a.dest, true
	case "src":
		return a.src, true
	}
	return "", false
}

func (a *floodArgs) IntArg(string) (int, bool) { return 0, false }

func (a *floodArgs) Uint32Arg(string) (uint32, bool) { return 0, false }

func (a *floodArgs) DurationArg(string) (time.Duration, bool) { return 0, false }

// Timer events are argument-free; sharing one static value keeps the
// expiry paths from materializing an Event per fire.
var (
	evTimerT  = core.Event{Name: EvTimerT}
	evTimerT1 = core.Event{Name: EvTimerT1}
)

// appendMediaKey renders mediaKey(host, port) into b without
// allocating, for map probes via the compiler's byte-slice-keyed
// lookup optimization.
func appendMediaKey(b []byte, host string, port int) []byte {
	b = append(b, host...)
	b = append(b, ':')
	return strconv.AppendInt(b, int64(port), 10)
}

// appendURI renders u the way sipmsg.URI.String does, into b, so the
// hot path can intern the result instead of allocating a fresh string
// per message.
func appendURI(b []byte, u sipmsg.URI) []byte {
	b = append(b, "sip:"...)
	if u.User != "" {
		b = append(b, u.User...)
		b = append(b, '@')
	}
	b = append(b, u.Host...)
	if u.Port != 0 {
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(u.Port), 10)
	}
	return b
}
