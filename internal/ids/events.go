package ids

import (
	"strconv"

	"vids/internal/core"
	"vids/internal/idsgen"
	"vids/internal/sipmsg"
)

// The typed event vectors are shared with the compiled backend: the
// guard functions internal/idsgen generates read them as struct fields
// while the interpreted specs read them through the core.TypedArgs
// accessors, so one scratch value feeds both. The aliases keep the
// historical local names used throughout this package.
type (
	// sipArgs is the typed input vector x for SIP events.
	sipArgs = idsgen.SIPArgs
	// rtpArgs is the typed input vector for EvRTP events.
	rtpArgs = idsgen.RTPArgs
	// floodArgs is the typed input vector for the windowed cross-call
	// detectors (Figure 4's INVITE flood and the DRDoS response counter).
	floodArgs = idsgen.FloodArgs
)

// Timer events are argument-free; sharing one static value keeps the
// expiry paths from materializing an Event per fire.
var (
	evTimerT  = core.Event{Name: EvTimerT}
	evTimerT1 = core.Event{Name: EvTimerT1}
)

// appendMediaKey renders mediaKey(host, port) into b without
// allocating, for map probes via the compiler's byte-slice-keyed
// lookup optimization.
func appendMediaKey(b []byte, host string, port int) []byte {
	b = append(b, host...)
	b = append(b, ':')
	return strconv.AppendInt(b, int64(port), 10)
}

// appendURI renders u the way sipmsg.URI.String does, into b, so the
// hot path can intern the result instead of allocating a fresh string
// per message.
func appendURI(b []byte, u sipmsg.URI) []byte {
	b = append(b, "sip:"...)
	if u.User != "" {
		b = append(b, u.User...)
		b = append(b, '@')
	}
	b = append(b, u.Host...)
	if u.Port != 0 {
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(u.Port), 10)
	}
	return b
}
