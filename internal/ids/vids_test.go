package ids

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"vids/internal/core"
	"vids/internal/rtp"
	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// The canonical call used across these tests: alice@a calls bob@b.
// vids sits at network B's edge, so it sees signaling between the two
// proxies and media end-to-end.
const (
	callerHost = "ua1.a.example.com"
	calleeHost = "ua2.b.example.com"
	proxyA     = "proxy.a.example.com"
	proxyB     = "proxy.b.example.com"
	attacker   = "evil.c.example.com"

	callID    = "call-1@ua1.a.example.com"
	callerTag = "tagA"
	calleeTag = "tagB"

	callerRTPPort = 20000
	calleeRTPPort = 30000
)

type harness struct {
	sim *sim.Simulator
	ids *IDS
}

func newHarness(t *testing.T, mutate func(*Config)) *harness {
	t.Helper()
	s := sim.New(11)
	cfg := DefaultConfig()
	cfg.ByeGraceT = 100 * time.Millisecond
	if mutate != nil {
		mutate(&cfg)
	}
	return &harness{sim: s, ids: New(s, cfg)}
}

func (h *harness) at(d time.Duration, f func()) { h.sim.At(d, f) }

func (h *harness) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := h.sim.Run(until); err != nil {
		t.Fatal(err)
	}
}

func sipPacket(m *sipmsg.Message, from, to sim.Addr) *sim.Packet {
	raw := m.Bytes()
	return &sim.Packet{From: from, To: to, Proto: sim.ProtoSIP, Size: len(raw), Payload: raw}
}

func rtpPacket(p *rtp.Packet, from, to sim.Addr) *sim.Packet {
	raw, err := p.Marshal()
	if err != nil {
		panic(err)
	}
	return &sim.Packet{From: from, To: to, Proto: sim.ProtoRTP, Size: len(raw), Payload: raw}
}

func mkInvite() *sipmsg.Message {
	req := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{User: "bob", Host: "b.example.com"})
	req.Via = []sipmsg.Via{
		{Transport: "UDP", Host: proxyA, Port: 5060, Params: map[string]string{"branch": "z9hG4bKpa1"}},
		{Transport: "UDP", Host: callerHost, Port: 5060, Params: map[string]string{"branch": "z9hG4bKua1"}},
	}
	req.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: "a.example.com"}}.WithTag(callerTag)
	req.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "b.example.com"}}
	req.CallID = callID
	req.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: callerHost}}
	req.Contact = &contact
	req.ContentType = "application/sdp"
	req.Body = sdp.New("alice", callerHost, callerRTPPort, sdp.PayloadG729).Marshal()
	return req
}

func mkResponse(req *sipmsg.Message, code int, withSDP bool) *sipmsg.Message {
	resp := sipmsg.NewResponse(req, code)
	if code != 100 {
		resp.To = resp.To.WithTag(calleeTag)
	}
	if withSDP {
		contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: calleeHost}}
		resp.Contact = &contact
		resp.ContentType = "application/sdp"
		resp.Body = sdp.New("bob", calleeHost, calleeRTPPort, sdp.PayloadG729).Marshal()
	}
	return resp
}

func mkInDialog(method sipmsg.Method, fromCaller bool, seq uint32) *sipmsg.Message {
	var req *sipmsg.Message
	if fromCaller {
		req = sipmsg.NewRequest(method, sipmsg.URI{User: "bob", Host: calleeHost})
		req.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: "a.example.com"}}.WithTag(callerTag)
		req.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "b.example.com"}}.WithTag(calleeTag)
		req.Via = []sipmsg.Via{{Transport: "UDP", Host: callerHost, Port: 5060,
			Params: map[string]string{"branch": "z9hG4bKind" + string(method)}}}
	} else {
		req = sipmsg.NewRequest(method, sipmsg.URI{User: "alice", Host: callerHost})
		req.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "b.example.com"}}.WithTag(calleeTag)
		req.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: "a.example.com"}}.WithTag(callerTag)
		req.Via = []sipmsg.Via{{Transport: "UDP", Host: calleeHost, Port: 5060,
			Params: map[string]string{"branch": "z9hG4bKind" + string(method)}}}
	}
	req.CallID = callID
	req.CSeq = sipmsg.CSeq{Seq: seq, Method: method}
	return req
}

// establishCall drives the canonical setup through the IDS, leaving
// the SIP machine in CALL_ESTABLISHED with both media directions
// indexed.
func establishCall(t *testing.T, h *harness) {
	t.Helper()
	inv := mkInvite()
	h.ids.Process(sipPacket(inv, sim.Addr{Host: proxyA, Port: 5060}, sim.Addr{Host: proxyB, Port: 5060}))
	h.ids.Process(sipPacket(mkResponse(inv, 180, false),
		sim.Addr{Host: proxyB, Port: 5060}, sim.Addr{Host: proxyA, Port: 5060}))
	h.ids.Process(sipPacket(mkResponse(inv, 200, true),
		sim.Addr{Host: proxyB, Port: 5060}, sim.Addr{Host: proxyA, Port: 5060}))
	ack := mkInDialog(sipmsg.ACK, true, 1)
	h.ids.Process(sipPacket(ack, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))

	mon, ok := h.ids.Monitor(callID)
	if !ok {
		t.Fatal("no monitor after INVITE")
	}
	if mon.SIP.State() != SIPEstablished {
		t.Fatalf("sip state = %v", mon.SIP.State())
	}
}

// callerMedia / calleeMedia return addressed RTP packets in each
// direction.
func callerMediaPkt(seq uint16, ts uint32, ssrc uint32) *sim.Packet {
	return rtpPacket(&rtp.Packet{PayloadType: 18, Sequence: seq, Timestamp: ts, SSRC: ssrc,
		Payload: make([]byte, 20)},
		sim.Addr{Host: callerHost, Port: callerRTPPort},
		sim.Addr{Host: calleeHost, Port: calleeRTPPort})
}

func calleeMediaPkt(seq uint16, ts uint32, ssrc uint32) *sim.Packet {
	return rtpPacket(&rtp.Packet{PayloadType: 18, Sequence: seq, Timestamp: ts, SSRC: ssrc,
		Payload: make([]byte, 20)},
		sim.Addr{Host: calleeHost, Port: calleeRTPPort},
		sim.Addr{Host: callerHost, Port: callerRTPPort})
}

func TestCleanCallRaisesNoAlerts(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)

	// Some media both ways.
	for i := 0; i < 10; i++ {
		h.ids.Process(callerMediaPkt(uint16(100+i), uint32(1000+160*i), 0xAAAA))
		h.ids.Process(calleeMediaPkt(uint16(500+i), uint32(9000+160*i), 0xBBBB))
	}

	// Caller hangs up.
	bye := mkInDialog(sipmsg.BYE, true, 2)
	h.ids.Process(sipPacket(bye, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	ok := sipmsg.NewResponse(bye, sipmsg.StatusOK)
	h.ids.Process(sipPacket(ok, sim.Addr{Host: calleeHost, Port: 5060}, sim.Addr{Host: callerHost, Port: 5060}))

	h.run(t, time.Minute)
	if alerts := h.ids.Alerts(); len(alerts) != 0 {
		t.Fatalf("clean call raised alerts: %v", alerts)
	}
	if h.ids.ActiveCalls() != 0 {
		t.Fatalf("monitor not evicted: %d resident", h.ids.ActiveCalls())
	}
	if h.ids.Evicted() != 1 {
		t.Fatalf("evicted = %d", h.ids.Evicted())
	}
}

func TestMonitorStateProgression(t *testing.T) {
	h := newHarness(t, nil)
	inv := mkInvite()
	h.ids.Process(sipPacket(inv, sim.Addr{Host: proxyA, Port: 5060}, sim.Addr{Host: proxyB, Port: 5060}))
	mon, _ := h.ids.Monitor(callID)
	if mon.SIP.State() != SIPInviteRcvd {
		t.Fatalf("after INVITE: %v", mon.SIP.State())
	}
	// The δ must have opened the callee->caller direction.
	if mon.RTPCallee.State() != RTPOpen {
		t.Fatalf("rtp-callee = %v, want RTP_OPEN (Figure 2a)", mon.RTPCallee.State())
	}
	if mon.RTPCaller.State() != RTPInit {
		t.Fatalf("rtp-caller = %v, want INIT until 200 OK", mon.RTPCaller.State())
	}

	h.ids.Process(sipPacket(mkResponse(inv, 180, false),
		sim.Addr{Host: proxyB, Port: 5060}, sim.Addr{Host: proxyA, Port: 5060}))
	if mon.SIP.State() != SIPRinging {
		t.Fatalf("after 180: %v", mon.SIP.State())
	}

	h.ids.Process(sipPacket(mkResponse(inv, 200, true),
		sim.Addr{Host: proxyB, Port: 5060}, sim.Addr{Host: proxyA, Port: 5060}))
	if mon.SIP.State() != SIPEstablished {
		t.Fatalf("after 200: %v", mon.SIP.State())
	}
	if mon.RTPCaller.State() != RTPOpen {
		t.Fatalf("rtp-caller = %v after answer SDP", mon.RTPCaller.State())
	}

	// Globals carry the negotiated media (paper Section 4.2).
	g := mon.System.Globals()
	if g.GetString("g.callerMediaAddr") != callerHost || g.GetInt("g.callerMediaPort") != callerRTPPort {
		t.Fatalf("caller media globals = %v", g)
	}
	if g.GetString("g.calleeMediaAddr") != calleeHost || g.GetInt("g.payload") != 18 {
		t.Fatalf("callee media globals = %v", g)
	}
}

func TestSpoofedByeFromForeignHostDetected(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)

	// Attacker with its own address and a forged From tag.
	bye := mkInDialog(sipmsg.BYE, true, 99)
	bye.From = bye.From.WithTag("not-the-dialog-tag")
	h.ids.Process(sipPacket(bye, sim.Addr{Host: attacker, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))

	alerts := h.ids.AlertsOfType(AlertSpoofedBye)
	if len(alerts) != 1 {
		t.Fatalf("spoofed-bye alerts = %v", h.ids.Alerts())
	}
	if alerts[0].CallID != callID || alerts[0].Source != attacker {
		t.Fatalf("alert = %+v", alerts[0])
	}
}

func TestByeDoSDetectedViaCrossProtocol(t *testing.T) {
	// The attacker forges BOTH the SIP identity and the transport
	// source, so the SIP machine accepts the BYE as genuine. The
	// victim stops; the unaware partner keeps streaming, and the RTP
	// machine catches it after timer T (Figure 5).
	h := newHarness(t, nil)
	establishCall(t, h)
	for i := 0; i < 5; i++ {
		h.ids.Process(callerMediaPkt(uint16(100+i), uint32(1000+160*i), 0xAAAA))
	}

	// Perfectly spoofed BYE "from the caller" to the callee.
	bye := mkInDialog(sipmsg.BYE, true, 2)
	h.ids.Process(sipPacket(bye, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	ok := sipmsg.NewResponse(bye, sipmsg.StatusOK)
	h.ids.Process(sipPacket(ok, sim.Addr{Host: calleeHost, Port: 5060}, sim.Addr{Host: callerHost, Port: 5060}))

	if len(h.ids.Alerts()) != 0 {
		t.Fatalf("premature alerts: %v", h.ids.Alerts())
	}

	// In-flight packet inside grace period T: tolerated.
	h.at(50*time.Millisecond, func() {
		h.ids.Process(callerMediaPkt(105, 1800, 0xAAAA))
	})
	// The real caller keeps streaming well past T.
	for i := 0; i < 5; i++ {
		i := i
		h.at(200*time.Millisecond+time.Duration(i)*20*time.Millisecond, func() {
			h.ids.Process(callerMediaPkt(uint16(110+i), uint32(2600+160*i), 0xAAAA))
		})
	}
	h.run(t, time.Second)

	fraud := h.ids.AlertsOfType(AlertTollFraud)
	dos := h.ids.AlertsOfType(AlertByeDoS)
	if len(fraud)+len(dos) != 1 {
		t.Fatalf("post-BYE RTP alerts = %v", h.ids.Alerts())
	}
	// The stream continuing belongs to the party named in the BYE, so
	// vids classifies it as the BYE-sender-continues signature.
	if len(fraud) != 1 {
		t.Fatalf("expected toll-fraud classification, got %v", h.ids.Alerts())
	}
}

func TestByeDoSNotDetectedWithoutCrossProtocol(t *testing.T) {
	// Ablation A1: with δ synchronization disabled, the perfectly
	// spoofed BYE is invisible — no alert ever fires.
	h := newHarness(t, func(c *Config) { c.CrossProtocol = false })
	establishCall(t, h)
	for i := 0; i < 5; i++ {
		h.ids.Process(callerMediaPkt(uint16(100+i), uint32(1000+160*i), 0xAAAA))
	}
	bye := mkInDialog(sipmsg.BYE, true, 2)
	h.ids.Process(sipPacket(bye, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	for i := 0; i < 10; i++ {
		i := i
		h.at(300*time.Millisecond+time.Duration(i)*20*time.Millisecond, func() {
			h.ids.Process(callerMediaPkt(uint16(110+i), uint32(2600+160*i), 0xAAAA))
		})
	}
	h.run(t, time.Second)
	if alerts := h.ids.Alerts(); len(alerts) != 0 {
		t.Fatalf("ablated IDS still alerted: %v", alerts)
	}
}

func TestInFlightRTPWithinGraceNotFlagged(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	h.ids.Process(callerMediaPkt(100, 1000, 0xAAAA))

	bye := mkInDialog(sipmsg.BYE, true, 2)
	h.ids.Process(sipPacket(bye, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	// Packets strictly inside T (100ms in this harness).
	for i := 0; i < 4; i++ {
		i := i
		h.at(time.Duration(i+1)*20*time.Millisecond, func() {
			h.ids.Process(callerMediaPkt(uint16(101+i), uint32(1160+160*i), 0xAAAA))
		})
	}
	h.run(t, time.Second)
	if alerts := h.ids.Alerts(); len(alerts) != 0 {
		t.Fatalf("in-flight RTP flagged: %v", alerts)
	}
}

func TestSpoofedCancelDetected(t *testing.T) {
	h := newHarness(t, nil)
	inv := mkInvite()
	h.ids.Process(sipPacket(inv, sim.Addr{Host: proxyA, Port: 5060}, sim.Addr{Host: proxyB, Port: 5060}))
	h.ids.Process(sipPacket(mkResponse(inv, 180, false),
		sim.Addr{Host: proxyB, Port: 5060}, sim.Addr{Host: proxyA, Port: 5060}))

	cancel := inv.Clone()
	cancel.Method = sipmsg.CANCEL
	cancel.CSeq.Method = sipmsg.CANCEL
	cancel.Body = nil
	cancel.ContentType = ""
	// Arrives from the attacker's host, not the proxy that carried
	// the INVITE.
	h.ids.Process(sipPacket(cancel, sim.Addr{Host: attacker, Port: 5060}, sim.Addr{Host: proxyB, Port: 5060}))

	if alerts := h.ids.AlertsOfType(AlertSpoofedCancel); len(alerts) != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
}

func TestGenuineCancelAccepted(t *testing.T) {
	h := newHarness(t, nil)
	inv := mkInvite()
	src := sim.Addr{Host: proxyA, Port: 5060}
	dst := sim.Addr{Host: proxyB, Port: 5060}
	h.ids.Process(sipPacket(inv, src, dst))
	h.ids.Process(sipPacket(mkResponse(inv, 180, false), dst, src))

	cancel := inv.Clone()
	cancel.Method = sipmsg.CANCEL
	cancel.CSeq.Method = sipmsg.CANCEL
	cancel.Body = nil
	cancel.ContentType = ""
	h.ids.Process(sipPacket(cancel, src, dst))

	ok200 := sipmsg.NewResponse(cancel, sipmsg.StatusOK)
	h.ids.Process(sipPacket(ok200, dst, src))
	inv487 := mkResponse(inv, sipmsg.StatusRequestTerminated, false)
	h.ids.Process(sipPacket(inv487, dst, src))

	h.run(t, time.Minute)
	if alerts := h.ids.Alerts(); len(alerts) != 0 {
		t.Fatalf("genuine cancel alerted: %v", alerts)
	}
	if h.ids.ActiveCalls() != 0 {
		t.Fatal("cancelled call not evicted")
	}
}

func TestCallHijackReInviteDetected(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)

	hijack := mkInDialog(sipmsg.INVITE, true, 3)
	hijack.From = hijack.From.WithTag("foreign-tag")
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "mallory", Host: attacker}}
	hijack.Contact = &contact
	hijack.ContentType = "application/sdp"
	hijack.Body = sdp.New("mallory", attacker, 40000, sdp.PayloadG729).Marshal()
	h.ids.Process(sipPacket(hijack, sim.Addr{Host: attacker, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))

	if alerts := h.ids.AlertsOfType(AlertCallHijack); len(alerts) != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
}

func TestLegitimateReInviteAccepted(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)

	re := mkInDialog(sipmsg.INVITE, true, 3)
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: callerHost}}
	re.Contact = &contact
	h.ids.Process(sipPacket(re, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))

	if alerts := h.ids.Alerts(); len(alerts) != 0 {
		t.Fatalf("legitimate re-INVITE alerted: %v", alerts)
	}
}

func TestMediaSpamSeqJumpDetected(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	for i := 0; i < 5; i++ {
		h.ids.Process(callerMediaPkt(uint16(100+i), uint32(1000+160*i), 0xAAAA))
	}
	// Injected packet with the same SSRC but a large forward jump
	// (the paper's media spamming signature, Figure 6).
	h.ids.Process(callerMediaPkt(100+5+200, 1000+160*5+160, 0xAAAA))

	if alerts := h.ids.AlertsOfType(AlertMediaSpam); len(alerts) != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
}

func TestMediaSpamTimestampJumpDetected(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	h.ids.Process(callerMediaPkt(100, 1000, 0xAAAA))
	h.ids.Process(callerMediaPkt(101, 1000+100000, 0xAAAA))
	if alerts := h.ids.AlertsOfType(AlertMediaSpam); len(alerts) != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
}

func TestMediaSpamForeignSSRCDetected(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	h.ids.Process(callerMediaPkt(100, 1000, 0xAAAA))
	h.ids.Process(callerMediaPkt(101, 1160, 0xDEAD)) // different SSRC
	if alerts := h.ids.AlertsOfType(AlertMediaSpam); len(alerts) != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
}

func TestPacketLossGapsNotFlagged(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	// Gaps of a few packets (loss) stay under the threshold.
	seqs := []uint16{100, 101, 104, 105, 109, 110}
	for i, q := range seqs {
		h.ids.Process(callerMediaPkt(q, uint32(1000+160*i), 0xAAAA))
	}
	if alerts := h.ids.Alerts(); len(alerts) != 0 {
		t.Fatalf("loss gaps alerted: %v", alerts)
	}
}

func TestReorderedPacketsNotFlagged(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	seqs := []uint16{100, 102, 101, 103}
	for i, q := range seqs {
		h.ids.Process(callerMediaPkt(q, uint32(1000+160*i), 0xAAAA))
	}
	if alerts := h.ids.Alerts(); len(alerts) != 0 {
		t.Fatalf("reordering alerted: %v", alerts)
	}
}

func TestCodecViolationDetected(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	h.ids.Process(callerMediaPkt(100, 1000, 0xAAAA))
	// Switch to PCMU mid-stream (Section 3.2: "Changing the encoding
	// scheme ... may cause phones dysfunctional").
	bad := rtpPacket(&rtp.Packet{PayloadType: 0, Sequence: 101, Timestamp: 1160, SSRC: 0xAAAA,
		Payload: make([]byte, 160)},
		sim.Addr{Host: callerHost, Port: callerRTPPort},
		sim.Addr{Host: calleeHost, Port: calleeRTPPort})
	h.ids.Process(bad)
	if alerts := h.ids.AlertsOfType(AlertCodecViolation); len(alerts) != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
}

func TestRTPFloodDetected(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	// 150 well-formed packets within one second: 3x the codec rate.
	for i := 0; i < 150; i++ {
		i := i
		h.at(time.Duration(i)*5*time.Millisecond, func() {
			h.ids.Process(callerMediaPkt(uint16(100+i), uint32(1000+160*i), 0xAAAA))
		})
	}
	h.run(t, 2*time.Second)
	if alerts := h.ids.AlertsOfType(AlertRTPFlood); len(alerts) != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
}

func TestNormalRateNotFlaggedAsFlood(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	// 100 packets at the normal 20 ms spacing: exactly codec rate.
	for i := 0; i < 100; i++ {
		i := i
		h.at(time.Duration(i)*20*time.Millisecond, func() {
			h.ids.Process(callerMediaPkt(uint16(100+i), uint32(1000+160*i), 0xAAAA))
		})
	}
	h.run(t, 3*time.Second)
	if alerts := h.ids.Alerts(); len(alerts) != 0 {
		t.Fatalf("codec-rate stream alerted: %v", alerts)
	}
}

func TestInviteFloodDetected(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.FloodN = 5; c.FloodT1 = time.Second })
	// 7 INVITEs for the same destination within the window.
	for i := 0; i < 7; i++ {
		inv := mkInvite()
		inv.CallID = "flood-" + string(rune('a'+i)) + "@x"
		h.ids.Process(sipPacket(inv, sim.Addr{Host: proxyA, Port: 5060}, sim.Addr{Host: proxyB, Port: 5060}))
	}
	alerts := h.ids.AlertsOfType(AlertInviteFlood)
	if len(alerts) != 1 {
		t.Fatalf("flood alerts = %d (%v)", len(alerts), h.ids.Alerts())
	}
	if alerts[0].Target != "bob@b.example.com" {
		t.Fatalf("flood target = %q", alerts[0].Target)
	}
}

func TestInviteRateBelowThresholdNotFlagged(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.FloodN = 5; c.FloodT1 = 500 * time.Millisecond })
	// 20 INVITEs spread over 10 seconds: never more than N per window.
	for i := 0; i < 20; i++ {
		i := i
		h.at(time.Duration(i)*500*time.Millisecond, func() {
			inv := mkInvite()
			inv.CallID = "slow-" + string(rune('a'+i)) + "@x"
			h.ids.Process(sipPacket(inv, sim.Addr{Host: proxyA, Port: 5060}, sim.Addr{Host: proxyB, Port: 5060}))
		})
	}
	h.run(t, 30*time.Second)
	if alerts := h.ids.AlertsOfType(AlertInviteFlood); len(alerts) != 0 {
		t.Fatalf("slow INVITEs flagged: %v", alerts)
	}
}

func TestUnsolicitedRTPFlagged(t *testing.T) {
	h := newHarness(t, nil)
	// RTP to a destination no SDP advertised.
	pkt := rtpPacket(&rtp.Packet{PayloadType: 18, Sequence: 1, Timestamp: 1, SSRC: 7,
		Payload: make([]byte, 20)},
		sim.Addr{Host: attacker, Port: 4000},
		sim.Addr{Host: calleeHost, Port: 12345})
	h.ids.Process(pkt)
	if alerts := h.ids.AlertsOfType(AlertUnsolicitedRTP); len(alerts) != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
}

func TestByeForUnknownCallIsDeviation(t *testing.T) {
	h := newHarness(t, nil)
	bye := mkInDialog(sipmsg.BYE, true, 2)
	h.ids.Process(sipPacket(bye, sim.Addr{Host: attacker, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	if alerts := h.ids.AlertsOfType(AlertDeviation); len(alerts) != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
}

func TestCancelAfterEstablishedIsDeviation(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	cancel := mkInDialog(sipmsg.CANCEL, true, 1)
	h.ids.Process(sipPacket(cancel, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	if alerts := h.ids.AlertsOfType(AlertDeviation); len(alerts) != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
}

func TestAlertDeduplicationPerCall(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	h.ids.Process(callerMediaPkt(100, 1000, 0xAAAA))
	for i := 0; i < 10; i++ {
		h.ids.Process(callerMediaPkt(uint16(500+100*i), 1000, 0xAAAA))
	}
	if alerts := h.ids.AlertsOfType(AlertMediaSpam); len(alerts) != 1 {
		t.Fatalf("media spam alerts = %d, want deduped to 1", len(alerts))
	}
}

func TestPerCallMemoryFootprint(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	h.ids.Process(callerMediaPkt(100, 1000, 0xAAAA))
	h.ids.Process(calleeMediaPkt(200, 5000, 0xBBBB))
	mon, _ := h.ids.Monitor(callID)
	mem := mon.PerCallMemory()
	// The paper budgets ~450 B of SIP state + ~40 B of RTP state per
	// call; our accounting must land in the same order of magnitude.
	if mem < 100 || mem > 2000 {
		t.Fatalf("per-call memory = %d bytes", mem)
	}
	if h.ids.MemoryFootprint() != mem {
		t.Fatalf("aggregate %d != single %d", h.ids.MemoryFootprint(), mem)
	}
}

func TestMemoryGrowsLinearlyWithCalls(t *testing.T) {
	h := newHarness(t, nil)
	perCall := 0
	for i := 0; i < 100; i++ {
		inv := mkInvite()
		inv.CallID = "mem-" + string(rune('a'+i%26)) + string(rune('a'+i/26)) + "@x"
		h.ids.Process(sipPacket(inv, sim.Addr{Host: proxyA, Port: 5060}, sim.Addr{Host: proxyB, Port: 5060}))
		if i == 0 {
			perCall = h.ids.MemoryFootprint()
		}
	}
	if h.ids.ActiveCalls() != 100 {
		t.Fatalf("active calls = %d", h.ids.ActiveCalls())
	}
	total := h.ids.MemoryFootprint()
	if total < 90*perCall || total > 110*perCall {
		t.Fatalf("memory not linear: 1 call = %d, 100 calls = %d", perCall, total)
	}
}

func TestIdleEvictionSweep(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.IdleEviction = time.Minute })
	inv := mkInvite()
	h.ids.Process(sipPacket(inv, sim.Addr{Host: proxyA, Port: 5060}, sim.Addr{Host: proxyB, Port: 5060}))
	if h.ids.ActiveCalls() != 1 {
		t.Fatal("monitor missing")
	}
	// The call never progresses; the sweep must reclaim it.
	h.run(t, 5*time.Minute)
	if h.ids.ActiveCalls() != 0 {
		t.Fatalf("idle monitor not evicted: %d", h.ids.ActiveCalls())
	}
}

func TestStragglersAfterEvictionIgnored(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.CloseLinger = 10 * time.Millisecond })
	establishCall(t, h)
	bye := mkInDialog(sipmsg.BYE, true, 2)
	h.ids.Process(sipPacket(bye, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	ok := sipmsg.NewResponse(bye, sipmsg.StatusOK)
	h.ids.Process(sipPacket(ok, sim.Addr{Host: calleeHost, Port: 5060}, sim.Addr{Host: callerHost, Port: 5060}))
	h.run(t, time.Second) // eviction happens
	if h.ids.ActiveCalls() != 0 {
		t.Fatal("not evicted")
	}
	// Retransmitted 200 for the BYE: tombstoned, no alert.
	h.ids.Process(sipPacket(ok, sim.Addr{Host: calleeHost, Port: 5060}, sim.Addr{Host: callerHost, Port: 5060}))
	if alerts := h.ids.Alerts(); len(alerts) != 0 {
		t.Fatalf("straggler alerted: %v", alerts)
	}
}

func TestTransitAddsConfiguredDelays(t *testing.T) {
	h := newHarness(t, nil)
	transit := h.ids.Transit()

	inv := mkInvite()
	d, fwd := transit(sipPacket(inv, sim.Addr{Host: proxyA, Port: 5060}, sim.Addr{Host: proxyB, Port: 5060}))
	if !fwd || d != h.ids.Config().SIPProcessing {
		t.Fatalf("SIP transit = (%v, %v)", d, fwd)
	}
	d, fwd = transit(callerMediaPkt(1, 1, 1))
	if !fwd || d != h.ids.Config().RTPProcessing {
		t.Fatalf("RTP transit = (%v, %v)", d, fwd)
	}
	other := &sim.Packet{Proto: sim.ProtoOther, Payload: []byte("x")}
	d, fwd = transit(other)
	if !fwd || d != 0 {
		t.Fatalf("other transit = (%v, %v)", d, fwd)
	}
}

func TestCountersAndParseErrors(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	h.ids.Process(callerMediaPkt(1, 1, 1))
	h.ids.Process(&sim.Packet{Proto: sim.ProtoSIP, Payload: []byte("garbage")})
	h.ids.Process(&sim.Packet{Proto: sim.ProtoRTP, Payload: "not-bytes"})
	sipN, rtpN, parseErrs, _ := h.ids.Counters()
	if sipN != 4 {
		t.Fatalf("sip packets = %d", sipN)
	}
	if rtpN != 1 {
		t.Fatalf("rtp packets = %d", rtpN)
	}
	if parseErrs != 2 {
		t.Fatalf("parse errors = %d", parseErrs)
	}
	if h.ids.ProcessingWallTime() <= 0 {
		t.Fatal("no processing time accounted")
	}
}

func TestSpecsAreValid(t *testing.T) {
	for _, spec := range []*core.Spec{
		sipSpec(true), sipSpec(false),
		rtpSpec(MachineRTPCaller, DefaultConfig().RTP),
		floodSpec(20), spamSpec(DefaultConfig().RTP),
	} {
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{At: time.Second, Type: AlertByeDoS, CallID: "c1", Source: "x", Target: "y", Detail: "d"}
	if a.String() == "" {
		t.Fatal("empty alert string")
	}
}

func TestRogueRegisterDetected(t *testing.T) {
	h := newHarness(t, nil)
	reg := sipmsg.NewRequest(sipmsg.REGISTER, sipmsg.URI{Host: "b.example.com"})
	reg.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "user1b", Host: "b.example.com"}}.WithTag("x")
	reg.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "user1b", Host: "b.example.com"}}
	reg.CallID = "reg-hijack@evil"
	reg.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.REGISTER}
	reg.Via = []sipmsg.Via{{Transport: "UDP", Host: attacker, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKreg"}}}
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "user1b", Host: attacker}}
	reg.Contact = &contact
	h.ids.Process(sipPacket(reg, sim.Addr{Host: attacker, Port: 5060}, sim.Addr{Host: proxyB, Port: 5060}))

	alerts := h.ids.AlertsOfType(AlertRogueRegister)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
	if alerts[0].Source != attacker {
		t.Fatalf("alert = %+v", alerts[0])
	}
	// A REGISTER must not create a call monitor.
	if h.ids.ActiveCalls() != 0 {
		t.Fatalf("REGISTER created %d monitors", h.ids.ActiveCalls())
	}
}

func TestDRDoSResponseFloodDetected(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.ResponseFloodN = 10 })
	// 15 reflected responses for calls the victim never placed, all
	// converging on one destination within the window.
	for i := 0; i < 15; i++ {
		resp := &sipmsg.Message{
			StatusCode: 200, Reason: "OK",
			Via: []sipmsg.Via{{Transport: "UDP", Host: calleeHost, Port: 5060,
				Params: map[string]string{"branch": "z9hG4bKdr" + string(rune('a'+i))}}},
			From:   sipmsg.NameAddr{URI: sipmsg.URI{User: "victim", Host: "b.example.com"}, Params: map[string]string{"tag": "v"}},
			To:     sipmsg.NameAddr{URI: sipmsg.URI{Host: "reflector.example.com"}, Params: map[string]string{"tag": "r"}},
			CallID: "drdos-" + string(rune('a'+i)) + "@x",
			CSeq:   sipmsg.CSeq{Seq: 1, Method: sipmsg.OPTIONS},
		}
		h.ids.Process(sipPacket(resp, sim.Addr{Host: "reflector.example.com", Port: 5060},
			sim.Addr{Host: calleeHost, Port: 5060}))
	}
	if got := h.ids.AlertsOfType(AlertDRDoS); len(got) != 1 {
		t.Fatalf("drdos alerts = %v", h.ids.Alerts())
	}
	// Only one deviation report per window, not 15.
	if got := h.ids.AlertsOfType(AlertDeviation); len(got) != 1 {
		t.Fatalf("deviation alerts = %d, want 1", len(h.ids.AlertsOfType(AlertDeviation)))
	}
}

func TestSingleStrayResponseReportsOnce(t *testing.T) {
	h := newHarness(t, nil)
	resp := &sipmsg.Message{
		StatusCode: 200, Reason: "OK",
		Via: []sipmsg.Via{{Transport: "UDP", Host: calleeHost, Port: 5060,
			Params: map[string]string{"branch": "z9hG4bKstray"}}},
		From:   sipmsg.NameAddr{URI: sipmsg.URI{User: "x", Host: "y"}, Params: map[string]string{"tag": "a"}},
		To:     sipmsg.NameAddr{URI: sipmsg.URI{Host: "z"}, Params: map[string]string{"tag": "b"}},
		CallID: "stray@x",
		CSeq:   sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE},
	}
	h.ids.Process(sipPacket(resp, sim.Addr{Host: attacker, Port: 5060},
		sim.Addr{Host: calleeHost, Port: 5060}))
	if len(h.ids.AlertsOfType(AlertDeviation)) != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
	if len(h.ids.AlertsOfType(AlertDRDoS)) != 0 {
		t.Fatal("single stray response flagged as DRDoS")
	}
}

func TestAllSpecsValidAndReachable(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), func() Config {
		c := DefaultConfig()
		c.CrossProtocol = false
		return c
	}()} {
		for _, spec := range Specs(cfg) {
			if err := spec.Validate(); err != nil {
				t.Errorf("%s: %v", spec.Name, err)
			}
			if err := spec.CheckReachable(); err != nil {
				t.Errorf("%s: %v", spec.Name, err)
			}
		}
	}
}

func TestAlertStats(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	h.ids.Process(callerMediaPkt(100, 1000, 0xAAAA))
	h.ids.Process(callerMediaPkt(5000, 1000, 0xAAAA)) // spam
	bye := mkInDialog(sipmsg.BYE, true, 99)
	bye.From = bye.From.WithTag("wrong")
	h.ids.Process(sipPacket(bye, sim.Addr{Host: attacker, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	stats := h.ids.AlertStats()
	if stats[AlertMediaSpam] != 1 || stats[AlertSpoofedBye] != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

func rtcpByePkt(ssrc uint32, from, to sim.Addr) *sim.Packet {
	raw, err := (&rtp.RTCP{Type: rtp.RTCPBye, SSRC: ssrc}).Marshal()
	if err != nil {
		panic(err)
	}
	return &sim.Packet{From: from, To: to, Proto: sim.ProtoRTCP, Size: len(raw), Payload: raw}
}

func TestRTCPByeMidCallAlertsAfterGrace(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	h.ids.Process(callerMediaPkt(100, 1000, 0xAAAA))
	h.ids.Process(rtcpByePkt(0xAAAA,
		sim.Addr{Host: callerHost, Port: callerRTPPort + 1},
		sim.Addr{Host: calleeHost, Port: calleeRTPPort + 1}))
	// No alert before the grace period elapses.
	if len(h.ids.Alerts()) != 0 {
		t.Fatalf("premature alert: %v", h.ids.Alerts())
	}
	h.run(t, 5*time.Second)
	if n := len(h.ids.AlertsOfType(AlertRTCPBye)); n != 1 {
		t.Fatalf("alerts = %v", h.ids.Alerts())
	}
}

func TestRTCPByeDuringTeardownNotFlagged(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	bye := mkInDialog(sipmsg.BYE, true, 2)
	h.ids.Process(sipPacket(bye, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
	h.ids.Process(rtcpByePkt(0xAAAA,
		sim.Addr{Host: callerHost, Port: callerRTPPort + 1},
		sim.Addr{Host: calleeHost, Port: calleeRTPPort + 1}))
	ok := sipmsg.NewResponse(bye, sipmsg.StatusOK)
	h.ids.Process(sipPacket(ok, sim.Addr{Host: calleeHost, Port: 5060}, sim.Addr{Host: callerHost, Port: 5060}))
	h.run(t, time.Minute)
	if n := len(h.ids.AlertsOfType(AlertRTCPBye)); n != 0 {
		t.Fatalf("teardown RTCP BYE flagged: %v", h.ids.Alerts())
	}
}

func TestRTCPByeRacingSIPByeNotFlagged(t *testing.T) {
	// The RTCP BYE arrives first (same path race); the SIP BYE lands
	// within the grace period.
	h := newHarness(t, nil)
	establishCall(t, h)
	h.ids.Process(rtcpByePkt(0xAAAA,
		sim.Addr{Host: callerHost, Port: callerRTPPort + 1},
		sim.Addr{Host: calleeHost, Port: calleeRTPPort + 1}))
	h.at(20*time.Millisecond, func() {
		bye := mkInDialog(sipmsg.BYE, true, 2)
		h.ids.Process(sipPacket(bye, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))
		okr := sipmsg.NewResponse(bye, sipmsg.StatusOK)
		h.ids.Process(sipPacket(okr, sim.Addr{Host: calleeHost, Port: 5060}, sim.Addr{Host: callerHost, Port: 5060}))
	})
	h.run(t, time.Minute)
	if n := len(h.ids.AlertsOfType(AlertRTCPBye)); n != 0 {
		t.Fatalf("racing RTCP BYE flagged: %v", h.ids.Alerts())
	}
}

func TestRTCPSenderReportsIgnored(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	raw, err := (&rtp.RTCP{Type: rtp.RTCPSenderReport, SSRC: 0xAAAA, PacketCount: 10}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	h.ids.Process(&sim.Packet{
		From:  sim.Addr{Host: callerHost, Port: callerRTPPort + 1},
		To:    sim.Addr{Host: calleeHost, Port: calleeRTPPort + 1},
		Proto: sim.ProtoRTCP, Size: len(raw), Payload: raw,
	})
	h.run(t, time.Second)
	if len(h.ids.Alerts()) != 0 {
		t.Fatalf("SR alerted: %v", h.ids.Alerts())
	}
	if h.ids.RTCPPackets() != 1 {
		t.Fatalf("rtcp counter = %d", h.ids.RTCPPackets())
	}
}

// TestMediaRenegotiationFollowed verifies a legitimate re-INVITE that
// moves the caller's media port re-indexes the stream instead of
// flagging the new destination as unsolicited.
func TestMediaRenegotiationFollowed(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	for i := 0; i < 5; i++ {
		h.ids.Process(calleeMediaPkt(uint16(500+i), uint32(9000+160*i), 0xBBBB))
	}

	// Caller re-INVITEs with a new media port (e.g. resuming from
	// hold on a different socket).
	re := mkInDialog(sipmsg.INVITE, true, 3)
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: callerHost}}
	re.Contact = &contact
	re.ContentType = "application/sdp"
	newPort := callerRTPPort + 10
	re.Body = sdp.New("alice", callerHost, newPort, sdp.PayloadG729).Marshal()
	h.ids.Process(sipPacket(re, sim.Addr{Host: callerHost, Port: 5060}, sim.Addr{Host: calleeHost, Port: 5060}))

	// The callee's stream now lands on the caller's new port.
	pkt := rtpPacket(&rtp.Packet{PayloadType: 18, Sequence: 505, Timestamp: 9800, SSRC: 0xBBBB,
		Payload: make([]byte, 20)},
		sim.Addr{Host: calleeHost, Port: calleeRTPPort},
		sim.Addr{Host: callerHost, Port: newPort})
	h.ids.Process(pkt)

	if alerts := h.ids.Alerts(); len(alerts) != 0 {
		t.Fatalf("renegotiated stream alerted: %v", alerts)
	}
	mon, _ := h.ids.Monitor(callID)
	if mon.RTPCallee.State() != RTPRcvd {
		t.Fatalf("rtp-callee = %v after renegotiation", mon.RTPCallee.State())
	}
}

func TestWriteAlertsJSON(t *testing.T) {
	h := newHarness(t, nil)
	establishCall(t, h)
	h.ids.Process(callerMediaPkt(100, 1000, 0xAAAA))
	h.ids.Process(callerMediaPkt(9000, 1000, 0xAAAA)) // spam

	var buf bytes.Buffer
	if err := h.ids.WriteAlerts(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded = %v", decoded)
	}
	if decoded[0]["type"] != "media-spam" || decoded[0]["callId"] != callID {
		t.Fatalf("alert json = %v", decoded[0])
	}

	// Empty alert list renders as an empty array, not null.
	h2 := newHarness(t, nil)
	buf.Reset()
	if err := h2.ids.WriteAlerts(&buf); err != nil {
		t.Fatal(err)
	}
	if got := bytes.TrimSpace(buf.Bytes()); string(got) != "[]" {
		t.Fatalf("empty report = %q", got)
	}
}

func TestPreventionQuarantinesFloodSource(t *testing.T) {
	h := newHarness(t, func(c *Config) {
		c.Prevention = true
		c.FloodN = 5
		c.Quarantine = 10 * time.Second
	})
	transit := h.ids.Transit()

	mkFloodInvite := func(i int) *sim.Packet {
		inv := mkInvite()
		inv.CallID = "flood-" + string(rune('a'+i)) + "@x"
		return sipPacket(inv, sim.Addr{Host: attacker, Port: 5060}, sim.Addr{Host: proxyB, Port: 5060})
	}
	blocked := 0
	for i := 0; i < 10; i++ {
		if _, fwd := transit(mkFloodInvite(i)); !fwd {
			blocked++
		}
	}
	// The first N+1 pass (detection threshold), the rest are blocked.
	if blocked == 0 {
		t.Fatal("prevention blocked nothing")
	}
	if h.ids.Prevented() != uint64(blocked) {
		t.Fatalf("Prevented = %d, blocked = %d", h.ids.Prevented(), blocked)
	}
	// A *different* source calling the same destination passes.
	benign := mkInvite()
	benign.CallID = "benign@x"
	if _, fwd := transit(sipPacket(benign, sim.Addr{Host: proxyA, Port: 5060},
		sim.Addr{Host: proxyB, Port: 5060})); !fwd {
		t.Fatal("benign source blocked")
	}
	// After the quarantine expires the attacker passes again (until
	// it re-triggers).
	h.run(t, 15*time.Second)
	if _, fwd := transit(mkFloodInvite(99)); !fwd {
		t.Fatal("quarantine did not expire")
	}
}

func TestPreventionDropsAttackStreamPackets(t *testing.T) {
	h := newHarness(t, func(c *Config) { c.Prevention = true })
	transit := h.ids.Transit()
	establishCall(t, h)
	// Normal media forwards.
	if _, fwd := transit(callerMediaPkt(100, 1000, 0xAAAA)); !fwd {
		t.Fatal("normal media blocked")
	}
	// Spam trips the machine into an attack state...
	if _, fwd := transit(callerMediaPkt(9000, 1000, 0xAAAA)); fwd {
		t.Fatal("attack-triggering packet forwarded")
	}
	// ...and subsequent stream packets stay blocked.
	if _, fwd := transit(callerMediaPkt(9001, 1160, 0xAAAA)); fwd {
		t.Fatal("post-attack media forwarded")
	}
}

func TestDetectionOnlyNeverBlocks(t *testing.T) {
	h := newHarness(t, nil) // Prevention off by default
	transit := h.ids.Transit()
	establishCall(t, h)
	if _, fwd := transit(callerMediaPkt(9000, 1000, 0xAAAA)); !fwd {
		t.Fatal("detection-only mode blocked a packet")
	}
	if h.ids.Prevented() != 0 {
		t.Fatalf("Prevented = %d in detection-only mode", h.ids.Prevented())
	}
}
