package ids

import (
	"time"

	"vids/internal/sim"
	"vids/internal/timerwheel"
)

// wheelClock couples a timer wheel to the simulator: the wheel holds
// the intrusive timer records (arming and cancelling are O(1) and
// allocation-free), and a single simulator "anchor" event — re-armed
// at the wheel's earliest pending deadline — advances the wheel when
// virtual time reaches it. Arming an earlier deadline arms a fresh
// anchor; superseded anchors fire as no-op Advances and re-sync, so
// no cancellation bookkeeping is needed on the simulator side. The
// stored anchorFn and the simulator's event free list make the whole
// arm→fire→re-arm cycle allocation-free in steady state.
type wheelClock struct {
	sim   *sim.Simulator
	wheel *timerwheel.Wheel

	anchorAt    time.Duration
	anchorArmed bool
	anchorFn    func()
}

func newWheelClock(s *sim.Simulator, fire func(*timerwheel.Timer)) *wheelClock {
	wc := &wheelClock{sim: s, wheel: timerwheel.New(fire)}
	wc.anchorFn = func() {
		// Only the tracked anchor advances the wheel. A superseded
		// anchor (an earlier deadline re-anchored past it, moving
		// anchorAt) must do nothing — every wheel deadline is at or
		// after the tracked anchorAt, so nothing can be due here, and
		// re-arming from a stale anchor would breed one duplicate
		// simulator event per firing, growing the event heap without
		// bound.
		if !wc.anchorArmed || wc.anchorAt != wc.sim.Now() {
			return
		}
		wc.anchorArmed = false
		wc.wheel.Advance(wc.sim.Now())
		wc.sync()
	}
	return wc
}

// arm schedules t to fire after the given delay of virtual time.
func (wc *wheelClock) arm(t *timerwheel.Timer, after time.Duration) {
	wc.wheel.Arm(t, wc.sim.Now()+after)
	wc.sync()
}

// cancel removes t (or suppresses its pending fire mid-batch).
func (wc *wheelClock) cancel(t *timerwheel.Timer) { wc.wheel.Cancel(t) }

// sync makes sure an anchor event is armed at or before the wheel's
// earliest pending deadline. Next may only underestimate, so a wake-up
// armed off it never sleeps past a real deadline — at worst the
// anchor fires early, advances past nothing, and re-arms closer.
func (wc *wheelClock) sync() {
	next, ok := wc.wheel.Next()
	if !ok {
		return
	}
	if wc.anchorArmed && wc.anchorAt <= next {
		return
	}
	wc.anchorArmed = true
	wc.anchorAt = next
	wc.sim.At(next, wc.anchorFn)
}
