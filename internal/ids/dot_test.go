package ids

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vids/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden DOT files under testdata/")

// TestDOTGolden pins the rendered state-transition diagrams of the
// communicating machines. A spec-graph change — a new transition, a
// renamed state, a dropped attack edge — shows up as a reviewable
// diff against testdata/*.dot instead of slipping through silently.
// Regenerate intentionally with: go test ./internal/ids -run DOTGolden -update
func TestDOTGolden(t *testing.T) {
	cfg := DefaultConfig()
	for _, tc := range []struct {
		name string
		spec *core.Spec
	}{
		{"sip", sipSpec(cfg.CrossProtocol)},
		{"rtp-caller", rtpSpec(MachineRTPCaller, cfg.RTP)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.spec.DOT()
			golden := filepath.Join("testdata", tc.name+".dot")
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("DOT output for %q drifted from %s:\n%s\n(run with -update after reviewing the spec change)",
					tc.name, golden, diffLines(string(want), got))
			}
		})
	}
}

// diffLines reports the first few differing lines, enough to locate
// the drift without a full diff implementation.
func diffLines(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl == gl {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  golden: %s\n  got:    %s\n", i+1, wl, gl)
		if shown++; shown >= 5 {
			b.WriteString("  ...\n")
			break
		}
	}
	return b.String()
}
