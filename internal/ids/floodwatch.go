package ids

import (
	"fmt"
	"time"

	"vids/internal/core"
	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// FloodWatch is the bank of windowed cross-call detectors: the
// per-destination INVITE-flood machine (Figure 4), the DRDoS
// response-reflection machine (the same windowed counter over stray
// responses, Section 3.1) and the prevention-mode source quarantine.
// Unlike the per-call EFSMs, these detectors aggregate over *many*
// calls, so a sharded deployment cannot give each shard its own copy:
// internal/engine runs exactly one FloodWatch in front of its shards
// (with Config.ExternalFloods silencing the shard-local copies), while
// a plain IDS embeds its own.
//
// FloodWatch is not safe for concurrent use; the embedding layer
// serializes access (the IDS runs single-threaded, the engine feeds it
// from its router under a lock).
type FloodWatch struct {
	sim *sim.Simulator
	cfg Config

	floodSp     *core.Spec
	respFloodSp *core.Spec

	floods     map[string]*core.Machine  // keyed by destination user@domain
	floodSrcs  map[string]map[string]int // per-destination INVITE counts by source
	respFloods map[string]*core.Machine  // keyed by destination host
	quarantine map[string]time.Duration  // "dest|src" -> blocked until

	raise func(Alert)
}

// NewFloodWatch creates a detector bank bound to the given clock.
// Alerts are delivered to raise.
func NewFloodWatch(s *sim.Simulator, cfg Config, raise func(Alert)) *FloodWatch {
	return &FloodWatch{
		sim:         s,
		cfg:         cfg,
		floodSp:     floodSpec(cfg.FloodN),
		respFloodSp: respFloodSpec(cfg.ResponseFloodN),
		floods:      make(map[string]*core.Machine),
		floodSrcs:   make(map[string]map[string]int),
		respFloods:  make(map[string]*core.Machine),
		quarantine:  make(map[string]time.Duration),
		raise:       raise,
	}
}

// FeedInvite counts one initial INVITE toward dest's Figure 4 window
// and raises AlertInviteFlood past threshold N. In prevention mode the
// window's major contributors are quarantined.
func (fw *FloodWatch) FeedInvite(dest, src string, now time.Duration) {
	m, ok := fw.floods[dest]
	if !ok {
		m = core.NewMachine(fw.floodSp, nil)
		fw.floods[dest] = m
	}
	srcs := fw.floodSrcs[dest]
	if srcs == nil {
		srcs = make(map[string]int)
		fw.floodSrcs[dest] = srcs
	}
	srcs[src]++
	res, err := m.Step(core.Event{Name: EvInvite, Args: map[string]any{
		"dest": dest, "src": src,
	}})
	if err != nil {
		return
	}
	if res.From == FloodInit && res.To == FloodCounting {
		// First INVITE of the window: start timer T1 (Figure 4).
		fw.sim.Schedule(fw.cfg.FloodT1, func() {
			r, err := m.Step(core.Event{Name: EvTimerT1})
			if err == nil && r.To == FloodInit {
				delete(fw.floodSrcs, dest)
			}
		})
	}
	if res.EnteredAttack {
		fw.raise(Alert{
			At: now, Type: AlertInviteFlood, Target: dest, Source: src,
			Detail: fmt.Sprintf("more than %d INVITEs within %v", fw.cfg.FloodN, fw.cfg.FloodT1),
		})
		if fw.cfg.Prevention {
			// Quarantine the window's major contributors: the window
			// detector alone would re-admit N INVITEs per T1.
			for contributor, count := range srcs {
				if count > fw.cfg.FloodN/2 {
					fw.quarantine[dest+"|"+contributor] = now + fw.cfg.Quarantine
				}
			}
		}
	}
}

// FeedStrayResponse counts one SIP response for a call the destination
// never initiated and raises AlertDRDoS when the windowed threshold
// trips. The first stray response of a window is reported once as a
// deviation.
func (fw *FloodWatch) FeedStrayResponse(m *sipmsg.Message, dest, src string, now time.Duration) {
	mach, ok := fw.respFloods[dest]
	if !ok {
		mach = core.NewMachine(fw.respFloodSp, nil)
		fw.respFloods[dest] = mach
	}
	res, err := mach.Step(core.Event{Name: EvResponse, Args: map[string]any{
		"dest": dest, "src": src,
	}})
	if err != nil {
		return
	}
	if res.From == FloodInit && res.To == FloodCounting {
		// First stray response of the window: report once, arm T1.
		fw.raise(Alert{
			At: now, Type: AlertDeviation, CallID: m.CallID,
			Source: src, Target: dest,
			Detail: fmt.Sprintf("%s for unknown call", m.Summary()),
		})
		fw.sim.Schedule(fw.cfg.FloodT1, func() {
			_, _ = mach.Step(core.Event{Name: EvTimerT1})
		})
	}
	if res.EnteredAttack {
		fw.raise(Alert{
			At: now, Type: AlertDRDoS, Target: dest, Source: src,
			Detail: fmt.Sprintf("more than %d reflected responses within %v",
				fw.cfg.ResponseFloodN, fw.cfg.FloodT1),
		})
	}
}

// Quarantined reports whether src is currently blocked toward dest in
// prevention mode, clearing expired entries as a side effect.
func (fw *FloodWatch) Quarantined(dest, src string, now time.Duration) bool {
	key := dest + "|" + src
	until, ok := fw.quarantine[key]
	if !ok {
		return false
	}
	if now < until {
		return true
	}
	delete(fw.quarantine, key)
	return false
}
