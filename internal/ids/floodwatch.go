package ids

import (
	"fmt"
	"time"

	"vids/internal/core"
	"vids/internal/idsgen"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/timerwheel"
)

// FloodWatch is the bank of windowed cross-call detectors: the
// per-destination INVITE-flood machine (Figure 4), the DRDoS
// response-reflection machine (the same windowed counter over stray
// responses, Section 3.1) and the prevention-mode source quarantine.
// Unlike the per-call EFSMs, these detectors aggregate over *many*
// calls, so a sharded deployment cannot give each shard its own copy:
// internal/engine runs exactly one FloodWatch in front of its shards
// (with Config.ExternalFloods silencing the shard-local copies), while
// a plain IDS embeds its own.
//
// Window timers T1 live on the bank's own timer wheel (anchored to the
// shared clock), so opening and expiring a window is allocation-free
// once its per-destination machine exists.
//
// FloodWatch is not safe for concurrent use; the embedding layer
// serializes access (the IDS runs single-threaded, the engine feeds it
// from its router under a lock).
type FloodWatch struct {
	sim *sim.Simulator
	wc  *wheelClock
	cfg Config

	floodSp     *core.Spec
	respFloodSp *core.Spec

	floods     map[string]*floodEntry    // keyed by destination user@domain
	floodSrcs  map[string]map[string]int // per-destination INVITE counts by source
	respFloods map[string]*floodEntry    // keyed by destination host
	quarantine map[string]time.Duration  // "dest|src" -> blocked until

	args floodArgs // reusable typed event vector

	cover core.CoverageObserver // left nil in production
	raise func(Alert)
}

// SetCoverage installs obs on every existing and future counter
// machine of the bank. Like (*IDS).SetCoverage, it is a verification
// hook: production leaves the observer nil.
func (fw *FloodWatch) SetCoverage(obs core.CoverageObserver) {
	fw.cover = obs
	for _, e := range fw.floods {
		e.m.SetCoverage(obs)
	}
	for _, e := range fw.respFloods {
		e.m.SetCoverage(obs)
	}
}

// floodEntry pairs one windowed counter machine with its embedded T1
// timer so opening a window never allocates.
type floodEntry struct {
	m     core.MachineLike
	dest  string
	timer timerwheel.Timer
}

// newCounter builds one windowed counter on the configured backend.
func (fw *FloodWatch) newCounter(kind idsgen.FloodKind) core.MachineLike {
	if fw.cfg.Backend == BackendInterpreted {
		sp := fw.floodSp
		if kind == idsgen.FloodResponse {
			sp = fw.respFloodSp
		}
		return core.NewMachine(sp, nil)
	}
	n := fw.cfg.FloodN
	if kind == idsgen.FloodResponse {
		n = fw.cfg.ResponseFloodN
	}
	return idsgen.NewFloodMachine(kind, n)
}

// NewFloodWatch creates a detector bank bound to the given clock.
// Alerts are delivered to raise.
func NewFloodWatch(s *sim.Simulator, cfg Config, raise func(Alert)) *FloodWatch {
	fw := &FloodWatch{
		sim:         s,
		cfg:         cfg,
		floodSp:     floodSpec(cfg.FloodN),
		respFloodSp: respFloodSpec(cfg.ResponseFloodN),
		floods:      make(map[string]*floodEntry),
		floodSrcs:   make(map[string]map[string]int),
		respFloods:  make(map[string]*floodEntry),
		quarantine:  make(map[string]time.Duration),
		raise:       raise,
	}
	fw.wc = newWheelClock(s, fw.fire)
	return fw
}

// fire handles a T1 window expiry for either detector family.
func (fw *FloodWatch) fire(t *timerwheel.Timer) {
	e := t.Owner.(*floodEntry)
	switch t.Kind {
	case timerKindFloodWindow:
		r, err := e.m.Step(evTimerT1)
		if err == nil && r.To == FloodInit {
			// Clear rather than delete: the next window for this
			// destination reuses the map's buckets instead of
			// reallocating them.
			if srcs := fw.floodSrcs[e.dest]; srcs != nil {
				clear(srcs)
			}
		}
	case timerKindRespFloodWindow:
		_, _ = e.m.Step(evTimerT1)
	}
}

// FeedInvite counts one initial INVITE toward dest's Figure 4 window
// and raises AlertInviteFlood past threshold N. In prevention mode the
// window's major contributors are quarantined.
//
//vids:alloc-ok per-destination window state is first-sight-bounded; alert construction fires only on a detected flood
func (fw *FloodWatch) FeedInvite(dest, src string, now time.Duration) {
	e, ok := fw.floods[dest]
	if !ok {
		e = &floodEntry{m: fw.newCounter(idsgen.FloodInvite), dest: dest}
		e.m.SetCoverage(fw.cover)
		e.timer.Kind = timerKindFloodWindow
		e.timer.Owner = e
		fw.floods[dest] = e
	}
	srcs := fw.floodSrcs[dest]
	if srcs == nil {
		srcs = make(map[string]int)
		fw.floodSrcs[dest] = srcs
	}
	srcs[src]++
	fw.args = floodArgs{Dest: dest, Src: src}
	res, err := e.m.Step(core.Event{Name: EvInvite, Typed: &fw.args})
	if err != nil {
		return
	}
	if res.From == FloodInit && res.To == FloodCounting {
		// First INVITE of the window: start timer T1 (Figure 4).
		fw.wc.arm(&e.timer, fw.cfg.FloodT1)
	}
	if res.EnteredAttack {
		fw.raise(Alert{
			At: now, Type: AlertInviteFlood, Target: dest, Source: src,
			Detail: fmt.Sprintf("more than %d INVITEs within %v", fw.cfg.FloodN, fw.cfg.FloodT1),
		})
		if fw.cfg.Prevention {
			// Quarantine the window's major contributors: the window
			// detector alone would re-admit N INVITEs per T1.
			for contributor, count := range srcs {
				if count > fw.cfg.FloodN/2 {
					fw.quarantine[dest+"|"+contributor] = now + fw.cfg.Quarantine
				}
			}
		}
	}
}

// FeedStrayResponse counts one SIP response for a call the destination
// never initiated and raises AlertDRDoS when the windowed threshold
// trips. The first stray response of a window is reported once as a
// deviation.
//
//vids:alloc-ok per-destination window state is first-sight-bounded; alert construction fires only on a detected reflection attack
func (fw *FloodWatch) FeedStrayResponse(m *sipmsg.Message, dest, src string, now time.Duration) {
	e, ok := fw.respFloods[dest]
	if !ok {
		e = &floodEntry{m: fw.newCounter(idsgen.FloodResponse), dest: dest}
		e.m.SetCoverage(fw.cover)
		e.timer.Kind = timerKindRespFloodWindow
		e.timer.Owner = e
		fw.respFloods[dest] = e
	}
	fw.args = floodArgs{Dest: dest, Src: src}
	res, err := e.m.Step(core.Event{Name: EvResponse, Typed: &fw.args})
	if err != nil {
		return
	}
	if res.From == FloodInit && res.To == FloodCounting {
		// First stray response of the window: report once, arm T1.
		fw.raise(Alert{
			At: now, Type: AlertDeviation, CallID: m.CallID,
			Source: src, Target: dest,
			Detail: fmt.Sprintf("%s for unknown call", m.Summary()),
		})
		fw.wc.arm(&e.timer, fw.cfg.FloodT1)
	}
	if res.EnteredAttack {
		fw.raise(Alert{
			At: now, Type: AlertDRDoS, Target: dest, Source: src,
			Detail: fmt.Sprintf("more than %d reflected responses within %v",
				fw.cfg.ResponseFloodN, fw.cfg.FloodT1),
		})
	}
}

// Quarantined reports whether src is currently blocked toward dest in
// prevention mode, clearing expired entries as a side effect.
func (fw *FloodWatch) Quarantined(dest, src string, now time.Duration) bool {
	key := dest + "|" + src
	until, ok := fw.quarantine[key]
	if !ok {
		return false
	}
	if now < until {
		return true
	}
	delete(fw.quarantine, key)
	return false
}
