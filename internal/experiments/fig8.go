package experiments

import (
	"fmt"
	"strings"
	"time"

	"vids/internal/metrics"
)

// Fig8Result reproduces Figure 8: call request arrivals and call
// durations observed at network B's proxy over the run.
type Fig8Result struct {
	Horizon        time.Duration
	Placed         int
	Established    int
	Failed         int
	ArrivalsPerMin []metrics.Point // calls placed per minute bucket
	Durations      *metrics.Summary
	DurationSeries []metrics.Point // realized durations over time
}

// Fig8 runs the workload (signaling only; Figure 8 needs no media)
// and extracts the arrival/duration series.
func Fig8(opts Options) (*Fig8Result, error) {
	o := opts.withDefaults()
	cfg := o.testbedConfig(true)
	cfg.WithMedia = false
	tb, err := runWorkload(cfg, o.Duration)
	if err != nil {
		return nil, err
	}
	placed, established, failed := tb.CallStats()
	res := &Fig8Result{
		Horizon:        o.Duration,
		Placed:         placed,
		Established:    established,
		Failed:         failed,
		ArrivalsPerMin: tb.Arrivals.CountPerBucket(time.Minute),
		Durations:      tb.Durations.Summary(),
	}
	for _, p := range tb.Durations.Points {
		res.DurationSeries = append(res.DurationSeries, p)
	}
	return res, nil
}

// Render prints the paper-style summary plus the per-minute arrival
// series.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — call arrivals and durations (%v run)\n\n", r.Horizon)
	fmt.Fprintf(&b, "calls placed:      %d\n", r.Placed)
	fmt.Fprintf(&b, "calls established: %d\n", r.Established)
	fmt.Fprintf(&b, "calls failed:      %d\n", r.Failed)
	fmt.Fprintf(&b, "call duration:     mean %.1fs  min %.1fs  max %.1fs (exponential, like the paper's spread)\n\n",
		r.Durations.Mean(), r.Durations.Min(), r.Durations.Max())

	b.WriteString("call arrivals per minute:\n")
	b.WriteString(metrics.BarChart(r.ArrivalsPerMin, 40, func(p metrics.Point) string {
		return fmt.Sprintf("min %3d", int(p.At/time.Minute))
	}))
	return b.String()
}
