package experiments

import (
	"strings"
	"time"

	"vids/internal/attack"
	"vids/internal/ids"
	"vids/internal/metrics"
	"vids/internal/workload"
)

// AuthResult is experiment E8: the paper's Section 3.1 observation
// that "a great deal of the discussion of possible attacks centers
// around an assumption of lack of proper authentication. However,
// many attacks are still possible ... by an authenticated but
// misbehaving UA." We deploy shared-secret BYE authentication and
// measure, per scenario, whether the attack still succeeds and
// whether vids still matters.
type AuthResult struct {
	// Spoofed BYE against an unauthenticated deployment: succeeds,
	// caught by vids cross-protocol detection.
	NoAuthDoSSucceeded bool
	NoAuthDetected     bool

	// Same attack with authentication: the 401 challenge defeats it.
	AuthDoSSucceeded bool
	AuthDetected     bool

	// Toll fraud by an *authenticated* endpoint: authentication is
	// powerless, vids still catches it.
	AuthTollFraudSucceeded bool
	AuthTollFraudDetected  bool
}

// Auth runs the three scenarios of experiment E8.
func Auth(opts Options) (*AuthResult, error) {
	o := opts.withDefaults()
	res := &AuthResult{}

	// Scenario 1+2: spoofed BYE without and with authentication.
	for _, secret := range []string{"", "s3cret"} {
		sc, err := newAttackScenario(Options{
			Seed: o.Seed, UAs: o.UAs, Duration: o.Duration,
			MeanCallInterval: o.MeanCallInterval, MeanCallDuration: o.MeanCallDuration,
			IDS: o.IDS,
		}.withDefaults(), func(cfg *workload.Config) {
			cfg.AuthSecret = secret
		})
		if err != nil {
			return nil, err
		}
		if err := sc.atk.ByeDoS(sc.info, true); err != nil {
			return nil, err
		}
		if err := sc.settle(10 * time.Second); err != nil {
			return nil, err
		}
		// Did the victim tear down? The callee leg disappears from
		// its UA table when ended (the testbed removes finished
		// calls), so probe the victim's call table.
		victim := sc.tb.UAsB[sc.rec.Callee]
		_, stillUp := victim.Calls()[sc.rec.CallID]
		detected := false
		for _, a := range sc.tb.IDS.Alerts() {
			if a.Type == ids.AlertByeDoS || a.Type == ids.AlertTollFraud {
				detected = true
			}
		}
		if secret == "" {
			res.NoAuthDoSSucceeded = !stillUp
			res.NoAuthDetected = detected
		} else {
			res.AuthDoSSucceeded = !stillUp
			res.AuthDetected = detected
		}
	}

	// Scenario 3: authenticated toll fraud — the caller legitimately
	// authenticates its BYE, then keeps transmitting.
	sc, err := newAttackScenario(Options{
		Seed: o.Seed + 1, UAs: o.UAs, Duration: o.Duration,
		MeanCallInterval: o.MeanCallInterval, MeanCallDuration: o.MeanCallDuration,
		IDS: o.IDS,
	}.withDefaults(), func(cfg *workload.Config) {
		cfg.AuthSecret = "s3cret"
	})
	if err != nil {
		return nil, err
	}
	if err := sc.tb.UAsA[0].Bye(sc.rec.Call()); err != nil {
		return nil, err
	}
	fraudster := attack.NewTollFraudster(
		attack.New(sc.tb.Sim, sc.tb.Net, sc.info.CallerHost))
	fraudster.ContinueMedia(sc.info, 150, 20*time.Millisecond)
	if err := sc.settle(10 * time.Second); err != nil {
		return nil, err
	}
	victim := sc.tb.UAsB[sc.rec.Callee]
	_, stillUp := victim.Calls()[sc.rec.CallID]
	res.AuthTollFraudSucceeded = !stillUp // billing stopped at the victim
	for _, a := range sc.tb.IDS.Alerts() {
		if a.Type == ids.AlertTollFraud {
			res.AuthTollFraudDetected = true
		}
	}
	return res, nil
}

// Render prints the E8 table.
func (r *AuthResult) Render() string {
	var b strings.Builder
	b.WriteString("Experiment E8 — is authentication enough? (paper §3.1)\n\n")
	tbl := metrics.NewTable("scenario", "attack succeeded", "vids detected")
	tbl.AddRow("spoofed BYE, no auth", yesNo(r.NoAuthDoSSucceeded), yesNo(r.NoAuthDetected))
	tbl.AddRow("spoofed BYE, digest auth", yesNo(r.AuthDoSSucceeded), yesNo(r.AuthDetected))
	tbl.AddRow("toll fraud by authenticated UA", yesNo(r.AuthTollFraudSucceeded), yesNo(r.AuthTollFraudDetected))
	b.WriteString(tbl.String())
	b.WriteString("\nauthentication stops outsider spoofing but not the authenticated,\n")
	b.WriteString("misbehaving endpoint — the specification-based IDS is still required,\n")
	b.WriteString("exactly the paper's argument for vids.\n")
	return b.String()
}

func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
