package experiments

import (
	"fmt"
	"strings"
	"time"

	"vids/internal/attack"
	"vids/internal/ids"
	"vids/internal/metrics"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/workload"
)

// ByeTimerPoint is one row of the timer-T sweep.
type ByeTimerPoint struct {
	T time.Duration
	// FalseAlarm: a *genuine* hangup with in-flight RTP was wrongly
	// flagged (T too small).
	FalseAlarm bool
	// Detected / DetectionDelay for the spoofed-BYE attack.
	Detected       bool
	DetectionDelay time.Duration
}

// FloodPoint is one row of the threshold-N sweep.
type FloodPoint struct {
	N              int
	Detected       bool
	DetectionDelay time.Duration
}

// SensitivityResult reproduces Section 7.5's sensitivity discussion:
// "The intrusion detection delay is mainly determined by the various
// timers in attack patterns ... timer T1 in INVITE flooding detection
// and timer T in BYE DoS attack detection."
type SensitivityResult struct {
	ByeSweep   []ByeTimerPoint
	FloodSweep []FloodPoint
	// RTT is the observed round-trip time; the paper recommends
	// T ≈ 1 RTT.
	RTT time.Duration
}

// Sensitivity sweeps timer T (BYE DoS) and threshold N (INVITE flood)
// and measures detection delay and false-alarm behavior.
func Sensitivity(opts Options) (*SensitivityResult, error) {
	o := opts.withDefaults()
	res := &SensitivityResult{RTT: 100 * time.Millisecond} // 2 x 50 ms cloud

	for _, t := range []time.Duration{
		10 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		250 * time.Millisecond, 500 * time.Millisecond, time.Second,
	} {
		point := ByeTimerPoint{T: t}

		// (a) Genuine hangup: BYE crosses vids, the caller's sender
		// stops, but packets already in the pipe keep arriving for up
		// to ~RTT. Small T must not flag them... actually it must:
		// that is the false-alarm regime the paper warns about.
		fa, err := genuineHangupFalseAlarm(o, t)
		if err != nil {
			return nil, err
		}
		point.FalseAlarm = fa

		// (b) Spoofed BYE: measure detection delay.
		detected, delay, err := spoofedByeDetection(o, t)
		if err != nil {
			return nil, err
		}
		point.Detected = detected
		point.DetectionDelay = delay
		res.ByeSweep = append(res.ByeSweep, point)
	}

	for _, n := range []int{5, 10, 20, 40} {
		detected, delay, err := floodDetection(o, n)
		if err != nil {
			return nil, err
		}
		res.FloodSweep = append(res.FloodSweep, FloodPoint{
			N: n, Detected: detected, DetectionDelay: delay,
		})
	}
	return res, nil
}

// genuineHangupFalseAlarm reports whether a clean hangup trips the
// after-BYE detector when timer T is set to t. The *callee* hangs up:
// its BYE passes vids almost immediately (vids sits at B's edge), but
// the remote caller keeps transmitting until the BYE crosses the WAN
// — so legitimate media trails the δ by about one RTT. That is
// precisely why the paper recommends T ≈ 1 RTT (Section 7.5).
func genuineHangupFalseAlarm(o Options, t time.Duration) (bool, error) {
	idsCfg := ids.DefaultConfig()
	idsCfg.ByeGraceT = t
	sc, err := newAttackScenario(Options{
		Seed: o.Seed, UAs: o.UAs, Duration: o.Duration,
		MeanCallInterval: o.MeanCallInterval, MeanCallDuration: o.MeanCallDuration,
		IDS: &idsCfg,
	}.withDefaults(), nil)
	if err != nil {
		return false, err
	}
	victim := sc.tb.UAsB[sc.rec.Callee]
	calleeLeg := victim.Calls()[sc.rec.CallID]
	if calleeLeg == nil {
		return false, fmt.Errorf("experiments: callee leg missing")
	}
	if err := victim.Bye(calleeLeg); err != nil {
		return false, err
	}
	if err := sc.settle(10 * time.Second); err != nil {
		return false, err
	}
	for _, a := range sc.tb.IDS.Alerts() {
		if a.Type == ids.AlertByeDoS || a.Type == ids.AlertTollFraud {
			return true, nil
		}
	}
	return false, nil
}

// spoofedByeDetection measures whether and how fast the spoofed BYE
// is caught with timer T set to t.
func spoofedByeDetection(o Options, t time.Duration) (bool, time.Duration, error) {
	idsCfg := ids.DefaultConfig()
	idsCfg.ByeGraceT = t
	sc, err := newAttackScenario(Options{
		Seed: o.Seed + 1, UAs: o.UAs, Duration: o.Duration,
		MeanCallInterval: o.MeanCallInterval, MeanCallDuration: o.MeanCallDuration,
		IDS: &idsCfg,
	}.withDefaults(), nil)
	if err != nil {
		return false, 0, err
	}
	launched := sc.tb.Sim.Now()
	if err := sc.atk.ByeDoS(sc.info, true); err != nil {
		return false, 0, err
	}
	if err := sc.settle(10 * time.Second); err != nil {
		return false, 0, err
	}
	for _, a := range sc.tb.IDS.Alerts() {
		if a.Type == ids.AlertByeDoS || a.Type == ids.AlertTollFraud {
			return true, a.At - launched, nil
		}
	}
	return false, 0, nil
}

// floodDetection measures flood detection delay for threshold n at a
// fixed 100 INVITE/s attack rate.
func floodDetection(o Options, n int) (bool, time.Duration, error) {
	idsCfg := ids.DefaultConfig()
	idsCfg.FloodN = n
	cfg := o.testbedConfig(true)
	cfg.WithMedia = false
	cfg.IDS = idsCfg
	tb, err := workload.New(cfg)
	if err != nil {
		return false, 0, err
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		return false, 0, err
	}
	atk := attack.New(tb.Sim, tb.Net, workload.AttackerHost)
	launched := tb.Sim.Now()
	target := sipmsg.URI{User: workload.UAUser("b", 1), Host: workload.DomainB}
	atk.InviteFlood(target, sim.Addr{Host: workload.ProxyBHost, Port: 5060},
		2*n+10, 10*time.Millisecond)
	if err := tb.Sim.Run(tb.Sim.Now() + 10*time.Second); err != nil {
		return false, 0, err
	}
	for _, a := range tb.IDS.Alerts() {
		if a.Type == ids.AlertInviteFlood {
			return true, a.At - launched, nil
		}
	}
	return false, 0, nil
}

// Render prints the sensitivity tables.
func (r *SensitivityResult) Render() string {
	var b strings.Builder
	b.WriteString("Section 7.5 — detection sensitivity\n\n")
	fmt.Fprintf(&b, "observed RTT ≈ %v; the paper recommends timer T ≈ 1 RTT\n\n", r.RTT)

	tbl := metrics.NewTable("timer T (ms)", "false alarm on clean hangup", "spoofed BYE detected", "detection delay (ms)")
	for _, p := range r.ByeSweep {
		tbl.AddRow(metrics.Ms(p.T),
			fmt.Sprintf("%v", p.FalseAlarm),
			fmt.Sprintf("%v", p.Detected),
			metrics.Ms(p.DetectionDelay))
	}
	b.WriteString(tbl.String())
	b.WriteString("\n")

	tbl2 := metrics.NewTable("threshold N", "flood detected", "detection delay (ms)")
	for _, p := range r.FloodSweep {
		tbl2.AddRow(fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%v", p.Detected), metrics.Ms(p.DetectionDelay))
	}
	b.WriteString(tbl2.String())
	b.WriteString("\nlarger T and N trade detection latency against false alarms, as Section 7.5 argues\n")
	return b.String()
}
