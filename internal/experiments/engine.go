package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"vids/internal/engine"
	"vids/internal/ids"
	"vids/internal/sim"
)

// EngineResult holds experiment E10: scaling of the online sharded
// detection pipeline. The same synthetic workload is pushed through
// the engine with one shard and with NumCPU shards; the speedup bounds
// what the paper's per-call independence argument (Section 7.3) buys
// on this machine, and alert parity confirms sharding changes nothing
// about what is detected.
type EngineResult struct {
	Packets      int
	Calls        int
	BaseTime     time.Duration // wall time, 1 shard
	ScaledShards int           // NumCPU
	ScaledTime   time.Duration // wall time, NumCPU shards
	Speedup      float64
	Alerts       int
	AlertsMatch  bool // scaled alert stream identical to 1-shard stream
}

// pps converts a wall time into packets per second.
func (r *EngineResult) pps(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(r.Packets) / d.Seconds()
}

// Render formats the result for the experiment report.
func (r *EngineResult) Render() string {
	parity := "IDENTICAL alert streams"
	if !r.AlertsMatch {
		parity = "ALERT STREAMS DIVERGE (bug!)"
	}
	return fmt.Sprintf(`E10: online engine scaling (internal/engine)
  workload:    %d packets over %d calls (benign + attack mix)
  1 shard:     %v (%.0f pkts/s)
  %d shard(s):  %v (%.0f pkts/s)
  speedup:     %.2fx on %d CPU(s)
  parity:      %s (%d alerts)
  paper claim: per-call EFSM independence makes detection parallel (§7.3)`,
		r.Packets, r.Calls,
		r.BaseTime.Round(time.Millisecond), r.pps(r.BaseTime),
		r.ScaledShards, r.ScaledTime.Round(time.Millisecond), r.pps(r.ScaledTime),
		r.Speedup, runtime.NumCPU(),
		parity, r.Alerts)
}

// EngineScaling runs experiment E10. The workload is synthesized (not
// captured from the testbed) so its size tracks the options: one call
// per MeanCallInterval per UA over the horizon, media packets capped
// to keep paper-scale runs tractable.
func EngineScaling(o Options) (*EngineResult, error) {
	o = o.withDefaults()
	calls := int(o.Duration/o.MeanCallInterval) * o.UAs
	if calls < 8 {
		calls = 8
	}
	if calls > 2000 {
		calls = 2000
	}
	rtpPerCall := int(o.MeanCallDuration / (20 * time.Millisecond))
	if rtpPerCall > 120 {
		rtpPerCall = 120
	}
	if rtpPerCall < 4 {
		rtpPerCall = 4
	}
	entries := engine.Synthesize(engine.SynthConfig{
		Calls: calls, RTPPerCall: rtpPerCall, Attacks: true,
	})
	// Reconstruct packets once so both runs measure the engine, not
	// trace decoding.
	pkts := make([]*sim.Packet, len(entries))
	ats := make([]time.Duration, len(entries))
	for i, en := range entries {
		pkts[i] = en.Packet()
		ats[i] = en.At()
	}

	run := func(shards int) (time.Duration, []ids.Alert, error) {
		e := engine.New(engine.Config{Shards: shards})
		start := time.Now()
		for i := range pkts {
			if err := e.Ingest(pkts[i], ats[i]); err != nil {
				return 0, nil, err
			}
		}
		if err := e.Close(); err != nil {
			return 0, nil, err
		}
		return time.Since(start), e.Alerts(), nil
	}

	baseTime, baseAlerts, err := run(1)
	if err != nil {
		return nil, err
	}
	n := runtime.NumCPU()
	scaledTime, scaledAlerts, err := run(n)
	if err != nil {
		return nil, err
	}

	res := &EngineResult{
		Packets:      len(entries),
		Calls:        calls,
		BaseTime:     baseTime,
		ScaledShards: n,
		ScaledTime:   scaledTime,
		Alerts:       len(scaledAlerts),
		AlertsMatch:  reflect.DeepEqual(baseAlerts, scaledAlerts),
	}
	if scaledTime > 0 {
		res.Speedup = float64(baseTime) / float64(scaledTime)
	}
	if !res.AlertsMatch {
		return res, fmt.Errorf("experiments: engine alert streams diverge (1 shard: %d, %d shards: %d)",
			len(baseAlerts), n, len(scaledAlerts))
	}
	return res, nil
}
