package experiments

import (
	"fmt"
	"strings"
	"time"

	"vids/internal/attack"
	"vids/internal/ids"
	"vids/internal/metrics"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/workload"
)

// PreventionResult is experiment E9: the paper's outlook (it cites
// "Intrusion Prevention: The Future of VoIP Security" [16]) turned
// into a measurement. An INVITE flood saturates a victim phone with
// limited call capacity; we measure whether benign callers can still
// reach the victim with vids in detection-only mode vs. inline
// prevention mode.
type PreventionResult struct {
	// Benign call attempts to the flooded phone during the attack.
	AttemptsDetectOnly  int
	SucceededDetectOnly int
	AttemptsPrevention  int
	SucceededPrevention int

	// FloodDetected in both configurations.
	DetectedDetectOnly bool
	DetectedPrevention bool
	// PacketsBlocked in prevention mode.
	PacketsBlocked uint64
}

// AvailabilityDetectOnly is the benign success ratio without blocking.
func (r *PreventionResult) AvailabilityDetectOnly() float64 {
	if r.AttemptsDetectOnly == 0 {
		return 0
	}
	return float64(r.SucceededDetectOnly) / float64(r.AttemptsDetectOnly)
}

// AvailabilityPrevention is the benign success ratio with blocking.
func (r *PreventionResult) AvailabilityPrevention() float64 {
	if r.AttemptsPrevention == 0 {
		return 0
	}
	return float64(r.SucceededPrevention) / float64(r.AttemptsPrevention)
}

// Prevention runs experiment E9.
func Prevention(opts Options) (*PreventionResult, error) {
	o := opts.withDefaults()
	res := &PreventionResult{}

	for _, prevent := range []bool{false, true} {
		idsCfg := ids.DefaultConfig()
		if o.IDS != nil {
			idsCfg = *o.IDS
		}
		idsCfg.Prevention = prevent

		cfg := o.testbedConfig(true)
		cfg.WithMedia = false
		cfg.MaxCallsPerPhone = 3 // "phones can only support a few" (§3.1)
		cfg.AnswerDelay = 2 * time.Second
		cfg.IDS = idsCfg
		tb, err := workload.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := tb.Sim.Run(time.Second); err != nil {
			return nil, err
		}

		// Sustained INVITE flood at the victim: enough concurrent
		// ringing calls to saturate its 3 slots for the whole window.
		atk := attack.New(tb.Sim, tb.Net, workload.AttackerHost)
		victim := sipmsg.URI{User: workload.UAUser("b", 1), Host: workload.DomainB}
		atk.InviteFlood(victim, sim.Addr{Host: workload.ProxyBHost, Port: 5060},
			600, 50*time.Millisecond) // 20/s for 30 s

		// Benign callers try the victim once the phone's zombie flood
		// calls (answered but never ACKed) have had time to drain in
		// the prevention case; without prevention the flood keeps
		// re-saturating the phone throughout.
		attempts := 0
		succeeded := 0
		for i := 0; i < 10; i++ {
			i := i
			tb.Sim.Schedule(30*time.Second+time.Duration(i)*3*time.Second, func() {
				caller := (i % (cfg.UAs - 1)) + 1 // spread across A-side phones
				if _, err := tb.PlaceCall(caller, 0, 5*time.Second); err == nil {
					attempts++
				}
			})
		}
		if err := tb.Sim.Run(tb.Sim.Now() + 90*time.Second); err != nil {
			return nil, err
		}
		for _, rec := range tb.Records {
			if rec.Established {
				succeeded++
			}
		}
		detected := false
		for _, a := range tb.IDS.Alerts() {
			if a.Type == ids.AlertInviteFlood {
				detected = true
			}
		}
		if prevent {
			res.AttemptsPrevention = attempts
			res.SucceededPrevention = succeeded
			res.DetectedPrevention = detected
			res.PacketsBlocked = tb.IDS.Prevented()
		} else {
			res.AttemptsDetectOnly = attempts
			res.SucceededDetectOnly = succeeded
			res.DetectedDetectOnly = detected
		}
	}
	return res, nil
}

// Render prints the availability comparison.
func (r *PreventionResult) Render() string {
	var b strings.Builder
	b.WriteString("Experiment E9 — detection vs. inline prevention under INVITE flood\n\n")
	tbl := metrics.NewTable("mode", "flood detected", "benign calls reaching victim", "packets blocked")
	tbl.AddRow("detection only",
		yesNo(r.DetectedDetectOnly),
		fmt.Sprintf("%d/%d (%.0f%%)", r.SucceededDetectOnly, r.AttemptsDetectOnly,
			r.AvailabilityDetectOnly()*100),
		"0")
	tbl.AddRow("inline prevention",
		yesNo(r.DetectedPrevention),
		fmt.Sprintf("%d/%d (%.0f%%)", r.SucceededPrevention, r.AttemptsPrevention,
			r.AvailabilityPrevention()*100),
		fmt.Sprintf("%d", r.PacketsBlocked))
	b.WriteString(tbl.String())
	b.WriteString("\nwith detection only the saturated phone answers 486 Busy Here to real\n")
	b.WriteString("callers; dropping the flood at the vids vantage point restores service —\n")
	b.WriteString("the \"intrusion prevention\" future the paper points to ([16], §8)\n")
	return b.String()
}
