package experiments

import (
	"fmt"
	"strings"
	"time"

	"vids/internal/metrics"
)

// Fig9Result reproduces Figure 9: call setup delay (INVITE -> 180)
// with and without vids, including the two representative callers the
// paper plots.
type Fig9Result struct {
	// Aggregate setup delays across all callers.
	With    *metrics.Summary
	Without *metrics.Summary
	// Per-representative-caller series (paper shows callers 3 and 4).
	Callers       []int
	CallerWith    map[int]*metrics.Series
	CallerWithout map[int]*metrics.Series
	// AvgOverhead is the measured extra setup delay vids imposes.
	AvgOverhead time.Duration
	// PaperOverhead is the value the paper reports.
	PaperOverhead time.Duration
}

// Fig9 runs the identical workload twice — vids inline vs. plain
// forwarding — and compares call setup delays.
func Fig9(opts Options) (*Fig9Result, error) {
	o := opts.withDefaults()
	res := &Fig9Result{
		Callers:       []int{3, 4},
		CallerWith:    make(map[int]*metrics.Series),
		CallerWithout: make(map[int]*metrics.Series),
		PaperOverhead: 100 * time.Millisecond,
	}

	for _, inline := range []bool{true, false} {
		cfg := o.testbedConfig(inline)
		cfg.WithMedia = false // setup delay needs no media
		tb, err := runWorkload(cfg, o.Duration)
		if err != nil {
			return nil, err
		}
		agg := tb.SetupDelays(-1)
		if inline {
			res.With = agg
			for _, c := range res.Callers {
				res.CallerWith[c] = tb.SetupDelaySeries(c)
			}
		} else {
			res.Without = agg
			for _, c := range res.Callers {
				res.CallerWithout[c] = tb.SetupDelaySeries(c)
			}
		}
	}
	res.AvgOverhead = res.With.MeanDuration() - res.Without.MeanDuration()
	return res, nil
}

// Render prints the Figure 9 comparison.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9 — call setup delay with vs. without vids\n\n")
	tbl := metrics.NewTable("metric", "without vids", "with vids")
	tbl.AddRow("calls measured",
		fmt.Sprintf("%d", r.Without.Count()), fmt.Sprintf("%d", r.With.Count()))
	tbl.AddRow("mean setup delay (ms)",
		metrics.Ms(r.Without.MeanDuration()), metrics.Ms(r.With.MeanDuration()))
	tbl.AddRow("p95 setup delay (ms)",
		fmt.Sprintf("%.2f", r.Without.Percentile(95)*1000),
		fmt.Sprintf("%.2f", r.With.Percentile(95)*1000))
	b.WriteString(tbl.String())
	fmt.Fprintf(&b, "\nvids-induced setup delay: measured %s ms vs. paper ~%s ms\n",
		metrics.Ms(r.AvgOverhead), metrics.Ms(r.PaperOverhead))

	for _, c := range r.Callers {
		with, without := r.CallerWith[c], r.CallerWithout[c]
		fmt.Fprintf(&b, "\ncaller %d: %d calls with vids (mean %s ms), %d without (mean %s ms)\n",
			c, with.Len(), metrics.Ms(with.Summary().MeanDuration()),
			without.Len(), metrics.Ms(without.Summary().MeanDuration()))
	}
	return b.String()
}
