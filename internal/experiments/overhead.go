package experiments

import (
	"fmt"
	"strings"
	"time"

	"vids/internal/core"
	"vids/internal/ids"
	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// CPUResult reproduces Section 7.3's CPU accounting: the paper
// reports a 3.6% CPU increase from running vids on the forwarding
// host.
type CPUResult struct {
	// WallWith/WallWithout are real host CPU times for the identical
	// simulated workload with and without vids processing.
	WallWith    time.Duration
	WallWithout time.Duration
	// VidsProcessing is the time spent strictly inside vids' packet
	// path (classification, parsing, machine stepping).
	VidsProcessing time.Duration
	// Overhead is (with - without) / without: the cost of vids
	// relative to the *simulation*. The simulated forwarding baseline
	// is far cheaper than a real forwarding host, so this figure
	// overstates vids' relative cost; UtilizationAdded is the
	// deployment-comparable number.
	Overhead float64
	// UtilizationAdded is the added CPU utilization if this host ran
	// vids against the live traffic: processing time divided by the
	// traffic's real-time duration. This is the measurement
	// comparable to the paper's 3.6%.
	UtilizationAdded float64
	// SimulatedTraffic is the virtual time span of the analyzed
	// traffic.
	SimulatedTraffic time.Duration
	// PaperOverhead is the paper's 3.6%.
	PaperOverhead float64

	PacketsSeen uint64
	PerPacket   time.Duration
}

// CPUOverhead measures the real processing cost of vids on this host
// by replaying the same workload with and without the IDS.
func CPUOverhead(opts Options) (*CPUResult, error) {
	o := opts.withDefaults()
	res := &CPUResult{PaperOverhead: 0.036}

	for _, inline := range []bool{false, true} {
		cfg := o.testbedConfig(inline)
		cfg.WithMedia = true
		// Make the inline processing-delay model free so the two runs
		// execute the identical packet timeline; only the real
		// analysis cost differs.
		cfg.IDS.SIPProcessing = 0
		cfg.IDS.RTPProcessing = 0
		start := time.Now()
		tb, err := runWorkload(cfg, o.Duration)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if inline {
			res.WallWith = elapsed
			res.VidsProcessing = tb.IDS.ProcessingWallTime()
			sipN, rtpN, _, _ := tb.IDS.Counters()
			res.PacketsSeen = sipN + rtpN
		} else {
			res.WallWithout = elapsed
		}
	}
	if res.WallWithout > 0 {
		res.Overhead = float64(res.WallWith-res.WallWithout) / float64(res.WallWithout)
	}
	if res.PacketsSeen > 0 {
		res.PerPacket = res.VidsProcessing / time.Duration(res.PacketsSeen)
	}
	res.SimulatedTraffic = o.Duration
	if o.Duration > 0 {
		res.UtilizationAdded = float64(res.VidsProcessing) / float64(o.Duration)
	}
	return res, nil
}

// Render prints the CPU comparison.
func (r *CPUResult) Render() string {
	var b strings.Builder
	b.WriteString("Section 7.3 — CPU overhead of vids\n\n")
	fmt.Fprintf(&b, "host CPU, forwarding only:   %v\n", r.WallWithout)
	fmt.Fprintf(&b, "host CPU, with vids:         %v\n", r.WallWith)
	fmt.Fprintf(&b, "vids packet-path time:       %v over %d packets (%v/packet)\n",
		r.VidsProcessing, r.PacketsSeen, r.PerPacket)
	fmt.Fprintf(&b, "overhead vs. simulation:     %.1f%% (simulated forwarding is nearly free,\n",
		r.Overhead*100)
	b.WriteString("                             so this overstates vids' cost)\n")
	fmt.Fprintf(&b, "added CPU utilization:       measured %.2f%% of one core for %v of live\n",
		r.UtilizationAdded*100, r.SimulatedTraffic)
	fmt.Fprintf(&b, "                             traffic vs. paper 3.6%% — the deployment-\n")
	b.WriteString("                             comparable number\n")
	return b.String()
}

// MemoryResult reproduces Section 7.3's per-call memory accounting:
// ~450 bytes of SIP state plus ~40 bytes of RTP state per call, and
// linear growth that lets vids monitor thousands of calls.
type MemoryResult struct {
	// Points maps concurrent-call counts to total fact-base bytes.
	Calls []int
	Bytes []int

	PerCallBytes     int
	SIPStateBytes    int
	RTPStateBytes    int
	PaperSIPBytes    int
	PaperRTPBytes    int
	LinearityR2      float64
	ThousandCallsMiB float64
}

// Memory instantiates growing numbers of concurrent monitored calls
// and accounts the fact-base footprint.
func Memory(opts Options) (*MemoryResult, error) {
	o := opts.withDefaults()
	res := &MemoryResult{
		Calls:         []int{1, 10, 100, 1000, 5000},
		PaperSIPBytes: 450,
		PaperRTPBytes: 40,
	}

	for _, n := range res.Calls {
		s := sim.New(o.Seed)
		cfg := ids.DefaultConfig()
		cfg.IdleEviction = 0 // keep monitors resident for measurement
		d := ids.New(s, cfg)
		for i := 0; i < n; i++ {
			driveEstablishedCall(d, i)
		}
		if d.ActiveCalls() != n {
			return nil, fmt.Errorf("experiments: wanted %d resident calls, have %d", n, d.ActiveCalls())
		}
		res.Bytes = append(res.Bytes, d.MemoryFootprint())
	}
	last := len(res.Calls) - 1
	res.PerCallBytes = res.Bytes[last] / res.Calls[last]
	res.ThousandCallsMiB = float64(res.PerCallBytes) * 1000 / (1 << 20)
	res.LinearityR2 = linearityR2(res.Calls, res.Bytes)

	// Split one call's state between the SIP machine and the RTP
	// machines, mirroring the paper's 450 B / 40 B breakdown.
	s := sim.New(o.Seed)
	cfg := ids.DefaultConfig()
	cfg.IdleEviction = 0
	d := ids.New(s, cfg)
	driveEstablishedCall(d, 0)
	if mon, ok := d.Monitor(expCallID(0)); ok {
		total := mon.System.MemoryFootprint()
		sipBytes := varBytes(mon.SIP.Vars()) + len(string(mon.SIP.State()))
		res.SIPStateBytes = sipBytes
		res.RTPStateBytes = total - sipBytes
	}
	return res, nil
}

func expCallID(i int) string {
	return fmt.Sprintf("expcall-%d@ua1.a.example.com", i)
}

// driveEstablishedCall pushes one synthetic call through INVITE, 180,
// 200 and ACK plus the first RTP packets of each direction, leaving
// its monitor in steady state.
func driveEstablishedCall(d *ids.IDS, i int) {
	callerPort := 20000 + 2*i
	calleePort := 30000 + 2*i

	inv := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{User: "bob", Host: "b.example.com"})
	inv.Via = []sipmsg.Via{{Transport: "UDP", Host: "proxy.a.example.com", Port: 5060,
		Params: map[string]string{"branch": fmt.Sprintf("z9hG4bKexp%d", i)}}}
	inv.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: "a.example.com"}}.WithTag("tagA")
	inv.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "b.example.com"}}
	inv.CallID = expCallID(i)
	inv.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: "ua1.a.example.com"}}
	inv.Contact = &contact
	inv.ContentType = "application/sdp"
	inv.Body = sdp.New("alice", "ua1.a.example.com", callerPort, sdp.PayloadG729).Marshal()

	pa := sim.Addr{Host: "proxy.a.example.com", Port: 5060}
	pb := sim.Addr{Host: "proxy.b.example.com", Port: 5060}
	d.Process(&sim.Packet{From: pa, To: pb, Proto: sim.ProtoSIP, Size: 500, Payload: inv.Bytes()})

	ringing := sipmsg.NewResponse(inv, sipmsg.StatusRinging)
	ringing.To = ringing.To.WithTag("tagB")
	d.Process(&sim.Packet{From: pb, To: pa, Proto: sim.ProtoSIP, Size: 400, Payload: ringing.Bytes()})

	ok := sipmsg.NewResponse(inv, sipmsg.StatusOK)
	ok.To = ok.To.WithTag("tagB")
	okContact := sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "ua2.b.example.com"}}
	ok.Contact = &okContact
	ok.ContentType = "application/sdp"
	ok.Body = sdp.New("bob", "ua2.b.example.com", calleePort, sdp.PayloadG729).Marshal()
	d.Process(&sim.Packet{From: pb, To: pa, Proto: sim.ProtoSIP, Size: 500, Payload: ok.Bytes()})
}

// varBytes approximates the byte footprint of one variable vector the
// same way core.System.MemoryFootprint does.
func varBytes(vars core.Vars) int {
	total := 0
	for k := range vars {
		total += len(k)
		switch v := vars.Any(k).(type) {
		case string:
			total += len(v)
		case bool:
			total++
		default:
			total += 8
		}
	}
	return total
}

// linearityR2 computes the coefficient of determination of a linear
// fit through the origin for bytes = k * calls.
func linearityR2(xs []int, ys []int) float64 {
	var sxy, sxx, sy, syy float64
	n := float64(len(xs))
	for i := range xs {
		x, y := float64(xs[i]), float64(ys[i])
		sxy += x * y
		sxx += x * x
		sy += y
		syy += y * y
	}
	if sxx == 0 {
		return 0
	}
	k := sxy / sxx
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		x, y := float64(xs[i]), float64(ys[i])
		d := y - k*x
		ssRes += d * d
		t := y - meanY
		ssTot += t * t
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// Render prints the memory table.
func (r *MemoryResult) Render() string {
	var b strings.Builder
	b.WriteString("Section 7.3 — per-call memory cost\n\n")
	for i, n := range r.Calls {
		fmt.Fprintf(&b, "%6d calls: %9d bytes (%d B/call)\n", n, r.Bytes[i], r.Bytes[i]/n)
	}
	fmt.Fprintf(&b, "\nper-call state:    %d B (paper: ~%d B SIP + ~%d B RTP)\n",
		r.PerCallBytes, r.PaperSIPBytes, r.PaperRTPBytes)
	fmt.Fprintf(&b, "  SIP machine:     %d B\n", r.SIPStateBytes)
	fmt.Fprintf(&b, "  RTP machines:    %d B\n", r.RTPStateBytes)
	fmt.Fprintf(&b, "linearity R²:      %.4f\n", r.LinearityR2)
	fmt.Fprintf(&b, "1000 calls need:   %.2f MiB — thousands of calls fit easily (paper's claim)\n",
		r.ThousandCallsMiB)
	return b.String()
}
