// Package experiments regenerates every figure and table of the
// paper's evaluation (Section 7). Each runner builds the Figure 7
// testbed, drives a workload, and reports the paper's metric next to
// the measured one. Absolute numbers differ from the 2001-era
// hardware; the shape claims are what each runner checks:
//
//	Fig8        call arrivals and durations over the run
//	Fig9        ~100 ms call-setup delay added by inline vids
//	Fig10       ~1.5 ms RTP delay and ~2e-4 s jitter added by vids
//	CPU (§7.3)  small relative CPU cost of vids processing
//	Mem (§7.3)  ~hundreds of bytes per call, linear in calls
//	Acc (§7.5)  100% detection / zero false positives on known attacks
//	Sens (§7.5) detection delay governed by timers T1 and T
//	Ablation    cross-protocol sync is necessary for BYE DoS
package experiments

import (
	"time"

	"vids/internal/ids"
	"vids/internal/workload"
)

// Options parameterizes a run. Zero values select paper-scale
// defaults; tests shrink them.
type Options struct {
	Seed     int64
	UAs      int
	Duration time.Duration // workload horizon
	// MeanCallInterval/MeanCallDuration override the calling pattern.
	MeanCallInterval time.Duration
	MeanCallDuration time.Duration
	WithMedia        bool
	IDS              *ids.Config // nil selects ids.DefaultConfig
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 2006 // DSN 2006
	}
	if o.UAs == 0 {
		o.UAs = 20
	}
	if o.Duration == 0 {
		o.Duration = 120 * time.Minute // the paper's two-hour run
	}
	if o.MeanCallInterval == 0 {
		o.MeanCallInterval = 4 * time.Minute
	}
	if o.MeanCallDuration == 0 {
		o.MeanCallDuration = 2 * time.Minute
	}
	return o
}

// testbedConfig converts options into a workload config.
func (o Options) testbedConfig(inline bool) workload.Config {
	cfg := workload.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.UAs = o.UAs
	cfg.VidsInline = inline
	cfg.MeanCallInterval = o.MeanCallInterval
	cfg.MeanCallDuration = o.MeanCallDuration
	cfg.WithMedia = o.WithMedia
	if o.IDS != nil {
		cfg.IDS = *o.IDS
	}
	return cfg
}

// runWorkload builds a testbed, generates calls over the horizon, and
// runs it to completion (horizon plus drain time).
func runWorkload(cfg workload.Config, horizon time.Duration) (*workload.Testbed, error) {
	tb, err := workload.New(cfg)
	if err != nil {
		return nil, err
	}
	tb.GenerateCalls(horizon)
	if err := tb.Sim.Run(horizon + 2*time.Minute); err != nil {
		return nil, err
	}
	return tb, nil
}
