package experiments

import (
	"strings"
	"testing"
	"time"
)

// fastOpts shrinks every experiment to test scale.
func fastOpts() Options {
	return Options{
		Seed:             3,
		UAs:              4,
		Duration:         4 * time.Minute,
		MeanCallInterval: 45 * time.Second,
		MeanCallDuration: 20 * time.Second,
	}
}

func TestFig8(t *testing.T) {
	res, err := Fig8(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed < 5 {
		t.Fatalf("placed = %d", res.Placed)
	}
	if res.Established == 0 {
		t.Fatal("no calls established")
	}
	if len(res.ArrivalsPerMin) == 0 {
		t.Fatal("no arrival buckets")
	}
	if res.Durations.Count() == 0 {
		t.Fatal("no durations")
	}
	// Durations must be spread (exponential), not constant.
	if res.Durations.Max() <= res.Durations.Min() {
		t.Fatalf("degenerate durations: min=%v max=%v", res.Durations.Min(), res.Durations.Max())
	}
	out := res.Render()
	for _, want := range []string{"Figure 8", "calls placed", "arrivals"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig9ShowsVidsOverhead(t *testing.T) {
	res, err := Fig9(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.With.Count() == 0 || res.Without.Count() == 0 {
		t.Fatal("missing measurements")
	}
	// The shape claim: a constant additive overhead around the
	// paper's 100 ms (2 crossings x 50 ms processing).
	if res.AvgOverhead < 70*time.Millisecond || res.AvgOverhead > 130*time.Millisecond {
		t.Fatalf("setup-delay overhead = %v, want ~100ms", res.AvgOverhead)
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "caller 3") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig10ShowsSmallMediaImpact(t *testing.T) {
	opts := fastOpts()
	opts.Duration = 2 * time.Minute
	opts.MeanCallInterval = 40 * time.Second
	res, err := Fig10(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DelayWith.Count() == 0 || res.DelayWithout.Count() == 0 {
		t.Fatal("missing stream measurements")
	}
	// Delay overhead small and positive: roughly the configured RTP
	// processing cost (0.75 ms), far below the 150 ms budget.
	if res.DelayOverhead < 200*time.Microsecond || res.DelayOverhead > 3*time.Millisecond {
		t.Fatalf("RTP delay overhead = %v, want ~0.75ms", res.DelayOverhead)
	}
	if !res.WithinLatencyBudget() {
		t.Fatalf("one-way delay exceeded 150ms: max %v s", res.DelayWith.Max())
	}
	// Jitter overhead must be tiny (the paper's 2e-4 s order or less).
	if res.JitterOverhead > 2e-3 {
		t.Fatalf("jitter overhead = %v s", res.JitterOverhead)
	}
	// Perceived quality barely moves: MOS stays in the "good" band
	// and vids costs at most a few hundredths of a point.
	if res.MOSWith.Mean() < 3.8 {
		t.Fatalf("MOS with vids = %.2f", res.MOSWith.Mean())
	}
	if drop := res.MOSWithout.Mean() - res.MOSWith.Mean(); drop > 0.05 {
		t.Fatalf("vids dropped MOS by %.3f", drop)
	}
	if !strings.Contains(res.Render(), "Figure 10") {
		t.Fatal("render missing header")
	}
}

func TestCPUOverheadMeasured(t *testing.T) {
	opts := fastOpts()
	opts.Duration = 90 * time.Second
	res, err := CPUOverhead(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsSeen == 0 {
		t.Fatal("vids saw no packets")
	}
	if res.VidsProcessing <= 0 {
		t.Fatal("no processing time recorded")
	}
	if res.PerPacket <= 0 || res.PerPacket > time.Millisecond {
		t.Fatalf("per-packet cost = %v", res.PerPacket)
	}
	// The deployment-comparable number: a few percent of one core at
	// most, like the paper's 3.6%.
	if res.UtilizationAdded <= 0 || res.UtilizationAdded > 0.10 {
		t.Fatalf("added utilization = %.2f%%", res.UtilizationAdded*100)
	}
	if !strings.Contains(res.Render(), "CPU overhead") {
		t.Fatal("render missing header")
	}
}

func TestMemoryScalesLinearly(t *testing.T) {
	res, err := Memory(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.PerCallBytes < 100 || res.PerCallBytes > 2000 {
		t.Fatalf("per-call bytes = %d, want paper's order (~500)", res.PerCallBytes)
	}
	if res.LinearityR2 < 0.999 {
		t.Fatalf("memory growth not linear: R² = %v", res.LinearityR2)
	}
	// The paper's claim: thousands of calls are affordable.
	if res.ThousandCallsMiB > 10 {
		t.Fatalf("1000 calls need %.1f MiB", res.ThousandCallsMiB)
	}
	// SIP state dominates RTP state, like the paper's 450 vs 40.
	if res.SIPStateBytes <= res.RTPStateBytes {
		t.Fatalf("SIP %d B <= RTP %d B; paper has SIP >> RTP",
			res.SIPStateBytes, res.RTPStateBytes)
	}
	if !strings.Contains(res.Render(), "per-call") {
		t.Fatal("render missing per-call line")
	}
}

func TestAccuracyAllDetectedNoFalsePositives(t *testing.T) {
	opts := fastOpts()
	opts.Duration = time.Minute
	opts.MeanCallInterval = 30 * time.Second
	res, err := Accuracy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) < 8 {
		t.Fatalf("only %d scenarios", len(res.Scenarios))
	}
	for _, s := range res.Scenarios {
		if !s.Detected {
			t.Errorf("scenario %q undetected", s.Name)
		}
		if s.FalseAlarms != 0 {
			t.Errorf("scenario %q: %d false alarms", s.Name, s.FalseAlarms)
		}
	}
	if rate := res.DetectionRate(); rate != 1.0 {
		t.Fatalf("detection rate = %v, want 1.0 (paper: 100%%)", rate)
	}
	if res.BenignAlerts != 0 {
		t.Fatalf("benign control raised %d alerts (paper: 0)", res.BenignAlerts)
	}
	if res.BenignCalls == 0 {
		t.Fatal("benign control placed no calls")
	}
	if !strings.Contains(res.Render(), "detection rate") {
		t.Fatal("render missing rate")
	}
}

func TestAblationShowsCrossProtocolValue(t *testing.T) {
	opts := fastOpts()
	opts.Duration = time.Minute
	res, err := Ablation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DetectedWithSync {
		t.Fatal("spoofed BYE undetected even with sync")
	}
	if res.DetectedWithoutSync {
		t.Fatal("spoofed BYE detected without sync — ablation broken")
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Fatal("render missing header")
	}
}

func TestSensitivitySweeps(t *testing.T) {
	opts := fastOpts()
	opts.Duration = time.Minute
	res, err := Sensitivity(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByeSweep) == 0 || len(res.FloodSweep) == 0 {
		t.Fatal("empty sweeps")
	}
	// Tiny T flags in-flight packets of a genuine hangup; T >= RTT
	// does not (Section 7.5's recommendation).
	if !res.ByeSweep[0].FalseAlarm {
		t.Errorf("T=%v did not false-alarm on in-flight RTP", res.ByeSweep[0].T)
	}
	last := res.ByeSweep[len(res.ByeSweep)-1]
	if last.FalseAlarm {
		t.Errorf("T=%v still false-alarms", last.T)
	}
	// The spoofed BYE must be detected at every T, with delay growing
	// in T.
	var prevDelay time.Duration
	for _, p := range res.ByeSweep {
		if !p.Detected {
			t.Errorf("T=%v: spoofed BYE undetected", p.T)
		}
		if p.DetectionDelay < prevDelay {
			t.Errorf("detection delay not monotone in T: %v then %v", prevDelay, p.DetectionDelay)
		}
		prevDelay = p.DetectionDelay
	}
	// Flood detection delay grows with N.
	var prevFlood time.Duration
	for _, p := range res.FloodSweep {
		if !p.Detected {
			t.Errorf("N=%d: flood undetected", p.N)
		}
		if p.DetectionDelay < prevFlood {
			t.Errorf("flood delay not monotone in N")
		}
		prevFlood = p.DetectionDelay
	}
	if !strings.Contains(res.Render(), "sensitivity") {
		t.Fatal("render missing header")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.UAs != 20 || o.Duration != 120*time.Minute {
		t.Fatalf("defaults = %+v", o)
	}
	if o.Seed != 2006 {
		t.Fatalf("seed = %d", o.Seed)
	}
}

func TestAuthExperiment(t *testing.T) {
	opts := fastOpts()
	opts.Duration = time.Minute
	res, err := Auth(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NoAuthDoSSucceeded || !res.NoAuthDetected {
		t.Fatalf("baseline wrong: %+v", res)
	}
	if res.AuthDoSSucceeded {
		t.Fatal("digest auth failed to stop the spoofed BYE")
	}
	if res.AuthDetected {
		t.Fatal("no teardown happened, nothing should be detected")
	}
	if !res.AuthTollFraudSucceeded || !res.AuthTollFraudDetected {
		t.Fatalf("toll fraud under auth: %+v", res)
	}
	if !strings.Contains(res.Render(), "authentication") {
		t.Fatal("render missing conclusion")
	}
}

func TestPreventionRestoresAvailability(t *testing.T) {
	opts := fastOpts()
	opts.Duration = time.Minute
	res, err := Prevention(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DetectedDetectOnly || !res.DetectedPrevention {
		t.Fatalf("flood undetected: %+v", res)
	}
	if res.AttemptsDetectOnly == 0 || res.AttemptsPrevention == 0 {
		t.Fatalf("no benign attempts recorded: %+v", res)
	}
	// The saturated phone must reject most benign calls without
	// prevention...
	if res.AvailabilityDetectOnly() > 0.5 {
		t.Fatalf("victim not saturated: %.0f%% availability without prevention",
			res.AvailabilityDetectOnly()*100)
	}
	// ...and blocking the flood must restore most of the service.
	if res.AvailabilityPrevention() < 0.7 {
		t.Fatalf("prevention did not restore service: %.0f%%",
			res.AvailabilityPrevention()*100)
	}
	if res.PacketsBlocked == 0 {
		t.Fatal("prevention blocked nothing")
	}
	if !strings.Contains(res.Render(), "prevention") {
		t.Fatal("render missing header")
	}
}

func TestEngineScaling(t *testing.T) {
	res, err := EngineScaling(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 || res.Calls == 0 {
		t.Fatalf("empty workload: %+v", res)
	}
	if !res.AlertsMatch {
		t.Fatal("sharded alert stream diverges from 1-shard stream")
	}
	if res.Alerts == 0 {
		t.Fatal("attack workload raised no alerts")
	}
	out := res.Render()
	for _, want := range []string{"E10", "speedup", "IDENTICAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBackends(t *testing.T) {
	res, err := Backends(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 || res.Calls == 0 {
		t.Fatalf("empty workload: %+v", res)
	}
	if !res.AlertsMatch {
		t.Fatal("compiled alert stream diverges from interpreted stream")
	}
	if res.Alerts == 0 {
		t.Fatal("attack workload raised no alerts")
	}
	if len(res.Rows) != len(backendShards) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(backendShards))
	}
	out := res.Render()
	for _, want := range []string{"E12", "compiled", "IDENTICAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
