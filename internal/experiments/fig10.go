package experiments

import (
	"fmt"
	"strings"
	"time"

	"vids/internal/metrics"
)

// Fig10Result reproduces Figure 10: RTP end-to-end delay and average
// delay variation (jitter), with vs. without vids.
type Fig10Result struct {
	DelayWith     *metrics.Summary // per-stream mean delays, seconds
	DelayWithout  *metrics.Summary
	JitterWith    *metrics.Summary // per-stream jitter estimates, seconds
	JitterWithout *metrics.Summary
	// MOSWith/MOSWithout estimate perceived voice quality (ITU-T
	// G.107 E-model) to quantify "low runtime impact on the perceived
	// quality of voice streams".
	MOSWith    *metrics.Summary
	MOSWithout *metrics.Summary

	// Measured overheads and the paper's reported values.
	DelayOverhead       time.Duration
	JitterOverhead      float64
	PaperDelayOverhead  time.Duration
	PaperJitterOverhead float64
}

// Fig10 runs the media workload twice and compares B-side RTP QoS
// (the side whose traffic crosses vids).
func Fig10(opts Options) (*Fig10Result, error) {
	o := opts.withDefaults()
	res := &Fig10Result{
		PaperDelayOverhead:  1500 * time.Microsecond,
		PaperJitterOverhead: 2e-4,
	}
	for _, inline := range []bool{true, false} {
		cfg := o.testbedConfig(inline)
		cfg.WithMedia = true
		tb, err := runWorkload(cfg, o.Duration)
		if err != nil {
			return nil, err
		}
		delay, jitter := tb.MediaQoS("b")
		mos := tb.MediaMOS("b")
		if inline {
			res.DelayWith, res.JitterWith, res.MOSWith = delay, jitter, mos
		} else {
			res.DelayWithout, res.JitterWithout, res.MOSWithout = delay, jitter, mos
		}
	}
	res.DelayOverhead = time.Duration((res.DelayWith.Mean() - res.DelayWithout.Mean()) * float64(time.Second))
	res.JitterOverhead = res.JitterWith.Mean() - res.JitterWithout.Mean()
	return res, nil
}

// Render prints the Figure 10 comparison.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10 — RTP QoS with vs. without vids (B-side streams)\n\n")
	tbl := metrics.NewTable("metric", "without vids", "with vids")
	tbl.AddRow("streams measured",
		fmt.Sprintf("%d", r.DelayWithout.Count()), fmt.Sprintf("%d", r.DelayWith.Count()))
	tbl.AddRow("mean RTP delay (ms)",
		fmt.Sprintf("%.3f", r.DelayWithout.Mean()*1000),
		fmt.Sprintf("%.3f", r.DelayWith.Mean()*1000))
	tbl.AddRow("mean jitter (s)",
		metrics.F(r.JitterWithout.Mean()), metrics.F(r.JitterWith.Mean()))
	tbl.AddRow("mean MOS (E-model)",
		fmt.Sprintf("%.2f", r.MOSWithout.Mean()), fmt.Sprintf("%.2f", r.MOSWith.Mean()))
	b.WriteString(tbl.String())
	fmt.Fprintf(&b, "\nvids RTP delay overhead:  measured %.3f ms vs. paper ~%.1f ms\n",
		float64(r.DelayOverhead)/float64(time.Millisecond),
		float64(r.PaperDelayOverhead)/float64(time.Millisecond))
	fmt.Fprintf(&b, "vids jitter overhead:     measured %s s vs. paper ~%s s\n",
		metrics.F(r.JitterOverhead), metrics.F(r.PaperJitterOverhead))
	b.WriteString("\nlatency bound check: one-way delay stays under the 150 ms budget the paper cites\n")
	return b.String()
}

// WithinLatencyBudget reports whether the with-vids one-way delay
// stays under the 150 ms bound (Section 7.4).
func (r *Fig10Result) WithinLatencyBudget() bool {
	return r.DelayWith.Max() < 0.150
}
