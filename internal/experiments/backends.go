package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"vids/internal/engine"
	"vids/internal/ids"
	"vids/internal/sim"
)

// backendShards are the engine fan-outs the backend comparison sweeps.
// Fixed (rather than NumCPU-derived) so the report rows are comparable
// across machines; shards are goroutines, so the sweep is meaningful
// even on a single core.
var backendShards = []int{1, 2, 4}

// BackendRow is one (shard count) measurement pair of experiment E12.
type BackendRow struct {
	Shards          int
	InterpretedTime time.Duration
	CompiledTime    time.Duration
	Speedup         float64 // interpreted / compiled wall time
}

// BackendsResult holds experiment E12: the specgen-compiled dispatch
// against the interpreted reference walker on one synthesized workload
// (benign + attack mix), swept across engine shard counts. Alert
// parity across every cell is the correctness half of the experiment;
// the wall-time ratio is the performance half.
type BackendsResult struct {
	Packets     int
	Calls       int
	Rows        []BackendRow
	Alerts      int
	AlertsMatch bool // every cell produced the identical alert stream
}

// pps converts a wall time into packets per second.
func (r *BackendsResult) pps(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(r.Packets) / d.Seconds()
}

// Render formats the result for the experiment report.
func (r *BackendsResult) Render() string {
	parity := "IDENTICAL alert streams across all cells"
	if !r.AlertsMatch {
		parity = "ALERT STREAMS DIVERGE (bug!)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, `E12: compiled vs interpreted EFSM dispatch (cmd/specgen)
  workload:    %d packets over %d calls (benign + attack mix)
`, r.Packets, r.Calls)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %d shard(s):  interpreted %v (%.0f pkts/s) | compiled %v (%.0f pkts/s) | %.2fx\n",
			row.Shards,
			row.InterpretedTime.Round(time.Millisecond), r.pps(row.InterpretedTime),
			row.CompiledTime.Round(time.Millisecond), r.pps(row.CompiledTime),
			row.Speedup)
	}
	fmt.Fprintf(&b, `  parity:      %s (%d alerts)
  paper claim: table-driven EFSM stepping is cheap enough for inline
               detection (§7.3); compiling the tables keeps the same
               alert semantics while shrinking the per-packet cost`,
		parity, r.Alerts)
	return b.String()
}

// Backends runs experiment E12. The workload is synthesized exactly
// like EngineScaling's (E10) so the two reports describe the same
// traffic; every (backend, shards) cell replays the identical packet
// sequence and the alert streams are required to match cell for cell.
func Backends(o Options) (*BackendsResult, error) {
	o = o.withDefaults()
	calls := int(o.Duration/o.MeanCallInterval) * o.UAs
	if calls < 8 {
		calls = 8
	}
	if calls > 2000 {
		calls = 2000
	}
	rtpPerCall := int(o.MeanCallDuration / (20 * time.Millisecond))
	if rtpPerCall > 120 {
		rtpPerCall = 120
	}
	if rtpPerCall < 4 {
		rtpPerCall = 4
	}
	entries := engine.Synthesize(engine.SynthConfig{
		Calls: calls, RTPPerCall: rtpPerCall, Attacks: true,
	})
	pkts := make([]*sim.Packet, len(entries))
	ats := make([]time.Duration, len(entries))
	for i, en := range entries {
		pkts[i] = en.Packet()
		ats[i] = en.At()
	}

	run := func(backend ids.Backend, shards int) (time.Duration, []ids.Alert, error) {
		idsCfg := ids.DefaultConfig()
		idsCfg.Backend = backend
		e := engine.New(engine.Config{Shards: shards, IDS: idsCfg})
		start := time.Now()
		for i := range pkts {
			if err := e.Ingest(pkts[i], ats[i]); err != nil {
				return 0, nil, err
			}
		}
		if err := e.Close(); err != nil {
			return 0, nil, err
		}
		return time.Since(start), e.Alerts(), nil
	}

	res := &BackendsResult{Packets: len(entries), Calls: calls, AlertsMatch: true}
	var ref []ids.Alert
	for _, shards := range backendShards {
		iTime, iAlerts, err := run(ids.BackendInterpreted, shards)
		if err != nil {
			return nil, err
		}
		cTime, cAlerts, err := run(ids.BackendCompiled, shards)
		if err != nil {
			return nil, err
		}
		row := BackendRow{Shards: shards, InterpretedTime: iTime, CompiledTime: cTime}
		if cTime > 0 {
			row.Speedup = float64(iTime) / float64(cTime)
		}
		res.Rows = append(res.Rows, row)
		if ref == nil {
			ref = iAlerts
			res.Alerts = len(ref)
		}
		if !reflect.DeepEqual(ref, iAlerts) || !reflect.DeepEqual(ref, cAlerts) {
			res.AlertsMatch = false
			return res, fmt.Errorf("experiments: backend alert streams diverge at %d shard(s) (ref %d, interpreted %d, compiled %d)",
				shards, len(ref), len(iAlerts), len(cAlerts))
		}
	}
	return res, nil
}
