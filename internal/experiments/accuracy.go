package experiments

import (
	"fmt"
	"strings"
	"time"

	"vids/internal/attack"
	"vids/internal/ids"
	"vids/internal/metrics"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/workload"
)

// ScenarioResult is one row of the detection-accuracy table.
type ScenarioResult struct {
	Name      string
	Injected  bool
	Detected  bool
	AlertedAs []ids.AlertType
	// FalseAlarms counts alerts not attributable to the injected
	// attack. Expected sets include the attack's known secondary
	// fallout (e.g. the victim's orphaned stream after a BYE DoS), so
	// anything counted here is a genuine false positive.
	FalseAlarms int
	// DetectionDelay is the time from attack launch to first relevant
	// alert (sensitivity input).
	DetectionDelay time.Duration
}

// AccuracyResult reproduces Section 7.5: per-attack detection with
// benign background traffic, plus a benign-only control run.
type AccuracyResult struct {
	Scenarios []ScenarioResult
	// BenignAlerts counts alerts in the attack-free control run: the
	// false-positive measurement (paper: zero).
	BenignAlerts int
	BenignCalls  int
}

// DetectionRate reports the fraction of injected attacks detected.
func (r *AccuracyResult) DetectionRate() float64 {
	injected, detected := 0, 0
	for _, s := range r.Scenarios {
		if s.Injected {
			injected++
			if s.Detected {
				detected++
			}
		}
	}
	if injected == 0 {
		return 0
	}
	return float64(detected) / float64(injected)
}

// TotalFalseAlarms sums false alarms across scenarios and the control.
func (r *AccuracyResult) TotalFalseAlarms() int {
	total := r.BenignAlerts
	for _, s := range r.Scenarios {
		total += s.FalseAlarms
	}
	return total
}

// attackScenario is a live testbed with one established victim call
// and an attacker ready to strike.
type attackScenario struct {
	tb    *workload.Testbed
	atk   *attack.Attacker
	sniff *attack.Sniffer
	rec   *workload.CallRecord
	info  attack.DialogInfo
}

// newAttackScenario builds a small testbed with background calls and
// establishes the victim call.
func newAttackScenario(o Options, mutate func(*workload.Config)) (*attackScenario, error) {
	cfg := o.testbedConfig(true)
	cfg.WithMedia = true
	cfg.AnswerDelay = time.Second
	if mutate != nil {
		mutate(&cfg)
	}
	tb, err := workload.New(cfg)
	if err != nil {
		return nil, err
	}
	sniff := attack.NewSniffer()
	tb.Net.Tap(sniff.Tap)
	sc := &attackScenario{
		tb:    tb,
		atk:   attack.New(tb.Sim, tb.Net, workload.AttackerHost),
		sniff: sniff,
	}
	// Benign background: other UAs keep calling during the attack.
	tb.GenerateCalls(o.Duration)
	if err := tb.Sim.Run(time.Second); err != nil {
		return nil, err
	}
	// The victim call.
	rec, err := tb.PlaceCall(0, 0, o.Duration)
	if err != nil {
		return nil, err
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 10*time.Second); err != nil {
		return nil, err
	}
	if !rec.Established {
		return nil, fmt.Errorf("experiments: victim call failed to establish")
	}
	sc.rec = rec
	sc.info = sc.dialogInfo()
	return sc, nil
}

func (sc *attackScenario) dialogInfo() attack.DialogInfo {
	call := sc.rec.Call()
	info := attack.DialogInfo{
		CallID:          call.ID,
		CallerTag:       call.LocalTag,
		CalleeTag:       call.RemoteTag,
		CallerAOR:       sipmsg.URI{User: workload.UAUser("a", 1), Host: workload.DomainA},
		CalleeAOR:       sipmsg.URI{User: workload.UAUser("b", sc.rec.Callee+1), Host: workload.DomainB},
		CallerHost:      workload.UAHost("a", 1),
		CalleeHost:      call.RemoteContact.Host,
		CallerMediaPort: call.LocalRTPPort,
	}
	if call.RemoteSDP != nil {
		if audio, ok := call.RemoteSDP.FirstAudio(); ok {
			info.CalleeMediaPort = audio.Port
		}
	}
	if st, ok := sc.sniff.Stream(sim.Addr{Host: info.CalleeHost, Port: info.CalleeMediaPort}); ok {
		info.SSRC = st.SSRC
		info.LastSeq = st.LastSeq
		info.LastTS = st.LastTS
	}
	return info
}

// settle runs the scenario forward so the attack's effects land.
func (sc *attackScenario) settle(d time.Duration) error {
	return sc.tb.Sim.Run(sc.tb.Sim.Now() + d)
}

// judge classifies the scenario's alerts against the expected types.
func (sc *attackScenario) judge(name string, launchedAt time.Duration, expected ...ids.AlertType) ScenarioResult {
	res := ScenarioResult{Name: name, Injected: true}
	want := make(map[ids.AlertType]bool, len(expected))
	for _, t := range expected {
		want[t] = true
	}
	first := time.Duration(-1)
	for _, a := range sc.tb.IDS.Alerts() {
		if want[a.Type] {
			res.Detected = true
			res.AlertedAs = append(res.AlertedAs, a.Type)
			if first < 0 || a.At < first {
				first = a.At
			}
		} else {
			res.FalseAlarms++
		}
	}
	if res.Detected && first >= launchedAt {
		res.DetectionDelay = first - launchedAt
	}
	return res
}

// Accuracy runs every attack scenario of Section 6 plus a benign
// control, reporting detection and false-alarm behavior.
func Accuracy(opts Options) (*AccuracyResult, error) {
	o := opts.withDefaults()
	out := &AccuracyResult{}

	type scenarioFn func(*attackScenario) (string, []ids.AlertType, error)
	scenarios := []scenarioFn{
		func(sc *attackScenario) (string, []ids.AlertType, error) {
			// Secondary fallout: the victim still tears down, so the
			// partner's continuing stream fires the cross-protocol
			// path too, and outlives the monitor's linger window.
			return "bye-dos (attacker's own source)",
				[]ids.AlertType{ids.AlertSpoofedBye, ids.AlertTollFraud,
					ids.AlertByeDoS, ids.AlertUnsolicitedRTP},
				sc.atk.ByeDoS(sc.info, false)
		},
		func(sc *attackScenario) (string, []ids.AlertType, error) {
			return "bye-dos (fully spoofed, cross-protocol)",
				[]ids.AlertType{ids.AlertByeDoS, ids.AlertTollFraud,
					ids.AlertUnsolicitedRTP},
				sc.atk.ByeDoS(sc.info, true)
		},
		func(sc *attackScenario) (string, []ids.AlertType, error) {
			return "call hijack (in-dialog re-INVITE)",
				[]ids.AlertType{ids.AlertCallHijack},
				sc.atk.Hijack(sc.info)
		},
		func(sc *attackScenario) (string, []ids.AlertType, error) {
			sc.atk.MediaSpam(sc.info, 20, 20*time.Millisecond)
			return "media spamming", []ids.AlertType{ids.AlertMediaSpam}, nil
		},
		func(sc *attackScenario) (string, []ids.AlertType, error) {
			sc.atk.RTPFlood(sc.info, 400, 2*time.Millisecond, false)
			return "rtp flooding",
				[]ids.AlertType{ids.AlertRTPFlood, ids.AlertMediaSpam}, nil
		},
		func(sc *attackScenario) (string, []ids.AlertType, error) {
			sc.atk.RTPFlood(sc.info, 10, 20*time.Millisecond, true)
			return "codec change", []ids.AlertType{ids.AlertCodecViolation}, nil
		},
		func(sc *attackScenario) (string, []ids.AlertType, error) {
			target := sipmsg.URI{User: workload.UAUser("b", 2), Host: workload.DomainB}
			sc.atk.InviteFlood(target, sim.Addr{Host: workload.ProxyBHost, Port: 5060},
				40, 10*time.Millisecond)
			// The flood's bot calls all advertise the attacker's single
			// media sink, so auto-answered bots produce colliding
			// streams that also trip the media detectors.
			return "invite flooding", []ids.AlertType{ids.AlertInviteFlood,
				ids.AlertMediaSpam, ids.AlertUnsolicitedRTP}, nil
		},
		func(sc *attackScenario) (string, []ids.AlertType, error) {
			var reflectors []sim.Addr
			for i := 1; i <= sc.tb.Cfg.UAs; i++ {
				reflectors = append(reflectors, sim.Addr{Host: workload.UAHost("a", i), Port: 5060})
			}
			victim := sim.Addr{Host: workload.UAHost("b", 2), Port: 5060}
			sc.atk.DRDoS(victim, reflectors, 8, 5*time.Millisecond)
			// The first stray response of the window is also reported
			// as a deviation — expected fallout.
			return "drdos (reflected responses)",
				[]ids.AlertType{ids.AlertDRDoS, ids.AlertDeviation}, nil
		},
		func(sc *attackScenario) (string, []ids.AlertType, error) {
			victim := sipmsg.URI{User: workload.UAUser("b", 2), Host: workload.DomainB}
			// Fallout: once the binding points outside, the proxy
			// forwards local users' INVITEs back out through vids — a
			// second sighting the SIP machine rejects as a deviation.
			return "registration hijacking",
				[]ids.AlertType{ids.AlertRogueRegister, ids.AlertDeviation},
				sc.atk.HijackRegistration(victim, sim.Addr{Host: workload.ProxyBHost, Port: 5060})
		},
		func(sc *attackScenario) (string, []ids.AlertType, error) {
			return "rtcp bye injection",
				[]ids.AlertType{ids.AlertRTCPBye},
				sc.atk.RTCPBye(sc.info)
		},
		func(sc *attackScenario) (string, []ids.AlertType, error) {
			if err := sc.tb.UAsA[0].Bye(sc.rec.Call()); err != nil {
				return "toll fraud", nil, err
			}
			fraudster := attack.NewTollFraudster(
				attack.New(sc.tb.Sim, sc.tb.Net, sc.info.CallerHost))
			fraudster.ContinueMedia(sc.info, 100, 20*time.Millisecond)
			return "toll fraud (BYE then keep talking)",
				[]ids.AlertType{ids.AlertTollFraud, ids.AlertUnsolicitedRTP}, nil
		},
	}

	for i, fn := range scenarios {
		sc, err := newAttackScenario(Options{
			Seed: o.Seed + int64(i), UAs: o.UAs, Duration: o.Duration,
			MeanCallInterval: o.MeanCallInterval, MeanCallDuration: o.MeanCallDuration,
			IDS: o.IDS,
		}.withDefaults(), nil)
		if err != nil {
			return nil, err
		}
		launched := sc.tb.Sim.Now()
		name, expected, err := fn(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", name, err)
		}
		if err := sc.settle(15 * time.Second); err != nil {
			return nil, err
		}
		out.Scenarios = append(out.Scenarios, sc.judge(name, launched, expected...))
	}

	// Benign control: same workload, no attacker.
	cfg := o.testbedConfig(true)
	cfg.WithMedia = true
	tb, err := runWorkload(cfg, o.Duration)
	if err != nil {
		return nil, err
	}
	placed, _, _ := tb.CallStats()
	out.BenignCalls = placed
	out.BenignAlerts = len(tb.IDS.Alerts())
	return out, nil
}

// Render prints the Section 7.5 accuracy table.
func (r *AccuracyResult) Render() string {
	var b strings.Builder
	b.WriteString("Section 7.5 — detection accuracy\n\n")
	tbl := metrics.NewTable("attack scenario", "detected", "alerted as", "false alarms", "delay")
	for _, s := range r.Scenarios {
		det := "NO"
		if s.Detected {
			det = "yes"
		}
		kinds := make(map[ids.AlertType]bool)
		var names []string
		for _, t := range s.AlertedAs {
			if !kinds[t] {
				kinds[t] = true
				names = append(names, string(t))
			}
		}
		tbl.AddRow(s.Name, det, strings.Join(names, ","),
			fmt.Sprintf("%d", s.FalseAlarms), metrics.Ms(s.DetectionDelay)+"ms")
	}
	b.WriteString(tbl.String())
	fmt.Fprintf(&b, "\ndetection rate:      %.0f%% (paper: 100%%)\n", r.DetectionRate()*100)
	fmt.Fprintf(&b, "false positives:     %d across scenarios + %d in the %d-call benign control (paper: 0)\n",
		r.TotalFalseAlarms()-r.BenignAlerts, r.BenignAlerts, r.BenignCalls)
	return b.String()
}

// AblationResult is experiment A1: the same fully spoofed BYE DoS
// with and without the cross-protocol synchronization channel.
type AblationResult struct {
	DetectedWithSync    bool
	DetectedWithoutSync bool
}

// Ablation quantifies the paper's core claim: the spoofed BYE is
// detectable only through the interaction of the SIP and RTP
// machines.
func Ablation(opts Options) (*AblationResult, error) {
	o := opts.withDefaults()
	res := &AblationResult{}
	for _, sync := range []bool{true, false} {
		idsCfg := ids.DefaultConfig()
		if o.IDS != nil {
			idsCfg = *o.IDS
		}
		idsCfg.CrossProtocol = sync
		sc, err := newAttackScenario(Options{
			Seed: o.Seed, UAs: o.UAs, Duration: o.Duration,
			MeanCallInterval: o.MeanCallInterval, MeanCallDuration: o.MeanCallDuration,
			IDS: &idsCfg,
		}.withDefaults(), nil)
		if err != nil {
			return nil, err
		}
		if err := sc.atk.ByeDoS(sc.info, true); err != nil {
			return nil, err
		}
		if err := sc.settle(15 * time.Second); err != nil {
			return nil, err
		}
		detected := false
		for _, a := range sc.tb.IDS.Alerts() {
			if a.Type == ids.AlertByeDoS || a.Type == ids.AlertTollFraud {
				detected = true
			}
		}
		if sync {
			res.DetectedWithSync = detected
		} else {
			res.DetectedWithoutSync = detected
		}
	}
	return res, nil
}

// Render prints the ablation outcome.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation A1 — value of cross-protocol synchronization (spoofed BYE DoS)\n\n")
	fmt.Fprintf(&b, "with δ SIP->RTP sync:    detected = %v\n", r.DetectedWithSync)
	fmt.Fprintf(&b, "without sync (ablated):  detected = %v\n", r.DetectedWithoutSync)
	if r.DetectedWithSync && !r.DetectedWithoutSync {
		b.WriteString("\nthe interaction between protocol state machines is what catches the attack —\nthe paper's central design claim holds\n")
	}
	return b.String()
}
