package idsgen

import "vids/internal/core"

// SIPMachine is the compiled per-call SIP protocol machine: the l.*
// variable vector of the interpreted spec as struct fields (plus a
// presence bitmask for the map view and the memory accounting), the
// shared globals, and the reusable δ emit buffer. Field zero values
// mirror the interpreted GetString-on-absent-key semantics, so guards
// read fields directly without consulting the presence bits.
type SIPMachine struct {
	tbl   *machTable
	state uint8
	set   uint8

	callID        string
	fromTag       string
	inviteSrc     string
	callerContact string
	from          string
	to            string
	toTag         string
	calleeContact string

	g *SysGlobals
	p *Params

	emits []core.SyncMsg
	cover core.CoverageObserver
	steps uint64
}

// Presence bits of SIPMachine.set.
const (
	sSetCallID = 1 << iota
	sSetFromTag
	sSetInviteSrc
	sSetCallerContact
	sSetFrom
	sSetTo
	sSetToTag
	sSetCalleeContact
)

// Name returns the machine's name.
func (m *SIPMachine) Name() string { return m.tbl.name }

// State returns the current control state.
func (m *SIPMachine) State() core.State { return m.tbl.states[m.state] }

// Steps reports transitions taken since the last Reset.
func (m *SIPMachine) Steps() uint64 { return m.steps }

// InAttack reports whether the machine sits in an attack state.
func (m *SIPMachine) InAttack() bool { return m.tbl.attack[m.state] }

// InFinal reports whether the machine reached a final state.
func (m *SIPMachine) InFinal() bool { return m.tbl.final[m.state] }

// SetCoverage installs (or, with nil, removes) a coverage observer.
func (m *SIPMachine) SetCoverage(obs core.CoverageObserver) { m.cover = obs }

// Reset returns the machine to its pristine configuration, keeping the
// emit buffer capacity (and, like the interpreted machine, the
// coverage observer).
func (m *SIPMachine) Reset() {
	m.state = m.tbl.initial
	m.set = 0
	m.callID, m.fromTag, m.inviteSrc, m.callerContact = "", "", "", ""
	m.from, m.to, m.toTag, m.calleeContact = "", "", "", ""
	m.emits = m.emits[:0]
	m.steps = 0
}

// Vars materializes the l.* vector as a map (cold path).
func (m *SIPMachine) Vars() core.Vars {
	v := make(core.Vars)
	if m.set&sSetCallID != 0 {
		v.SetString("l.callID", m.callID)
	}
	if m.set&sSetFromTag != 0 {
		v.SetString("l.fromTag", m.fromTag)
	}
	if m.set&sSetInviteSrc != 0 {
		v.SetString("l.inviteSrc", m.inviteSrc)
	}
	if m.set&sSetCallerContact != 0 {
		v.SetString("l.callerContact", m.callerContact)
	}
	if m.set&sSetFrom != 0 {
		v.SetString("l.from", m.from)
	}
	if m.set&sSetTo != 0 {
		v.SetString("l.to", m.to)
	}
	if m.set&sSetToTag != 0 {
		v.SetString("l.toTag", m.toTag)
	}
	if m.set&sSetCalleeContact != 0 {
		v.SetString("l.calleeContact", m.calleeContact)
	}
	return v
}

// varsFootprint mirrors core.varsFootprint over the present keys.
func (m *SIPMachine) varsFootprint() int {
	total := 0
	if m.set&sSetCallID != 0 {
		total += len("l.callID") + len(m.callID)
	}
	if m.set&sSetFromTag != 0 {
		total += len("l.fromTag") + len(m.fromTag)
	}
	if m.set&sSetInviteSrc != 0 {
		total += len("l.inviteSrc") + len(m.inviteSrc)
	}
	if m.set&sSetCallerContact != 0 {
		total += len("l.callerContact") + len(m.callerContact)
	}
	if m.set&sSetFrom != 0 {
		total += len("l.from") + len(m.from)
	}
	if m.set&sSetTo != 0 {
		total += len("l.to") + len(m.to)
	}
	if m.set&sSetToTag != 0 {
		total += len("l.toTag") + len(m.toTag)
	}
	if m.set&sSetCalleeContact != 0 {
		total += len("l.calleeContact") + len(m.calleeContact)
	}
	return total
}

// Step replicates core.Machine.Step over the compiled tables: walk the
// (state, event) cell in spec order, record the unguarded fallback,
// evaluate every guard (last enabled wins; two enabled is the
// nondeterminism error), run the action, fire the coverage callbacks
// in interpreter order, and return the reused emit buffer.
//
//vids:noalloc compiled SIP step — the generated-dispatch hot path
//vids:nopanic steps on attacker-sequenced signaling events
func (m *SIPMachine) Step(e core.Event) (core.StepResult, error) {
	t := m.tbl
	var cands []trans
	if eid := t.eventID(e.Name); eid >= 0 {
		cands = t.cell(m.state, eid)
	}
	if len(cands) == 0 {
		return core.StepResult{Machine: t.name, From: t.stateName(m.state), Event: e.Name}, core.ErrNoTransition
	}
	a, _ := e.Typed.(*SIPArgs)
	m.emits = m.emits[:0]
	chosen, fallback := -1, -1
	enabled := 0
	for i := range cands {
		if !cands[i].guarded {
			fallback = i
			continue
		}
		if sipGuardFn(cands[i].fn, m, &e, a) {
			enabled++
			chosen = i
		}
	}
	if enabled > 1 {
		return core.StepResult{Machine: t.name, From: t.stateName(m.state), Event: e.Name}, core.ErrNondeterministic
	}
	if chosen < 0 {
		chosen = fallback
	}
	if chosen < 0 || chosen >= len(cands) {
		return core.StepResult{Machine: t.name, From: t.stateName(m.state), Event: e.Name}, core.ErrNoTransition
	}
	tr := &cands[chosen]
	if tr.action {
		sipActionFn(tr.fn, m, &e, a)
	}
	from := m.state
	m.state = tr.to
	m.steps++
	if m.cover != nil {
		//vids:panic-ok coverage observers are in-repo recorders (nil on the packet path); the interface call cannot be resolved statically
		m.cover.TransitionFired(t.name, t.stateName(from), e.Name, t.stateName(tr.to), tr.label) //vids:alloc-ok coverage observers take word-sized args; nil in production
		for i := range m.emits {
			//vids:panic-ok coverage observers are in-repo recorders (nil on the packet path); the interface call cannot be resolved statically
			m.cover.DeltaEmitted(t.name, m.emits[i].Target, m.emits[i].Event.Name) //vids:alloc-ok coverage observers take word-sized args; nil in production
		}
		if stateFlag(t.attack, tr.to) && from != tr.to {
			//vids:panic-ok coverage observers are in-repo recorders (nil on the packet path); the interface call cannot be resolved statically
			m.cover.AttackEntered(t.name, t.stateName(tr.to)) //vids:alloc-ok coverage observers take word-sized args; nil in production
		}
	}
	return core.StepResult{
		Machine:       t.name,
		From:          t.stateName(from),
		To:            t.stateName(tr.to),
		Event:         e.Name,
		Label:         tr.label,
		EnteredAttack: stateFlag(t.attack, tr.to) && from != tr.to,
		EnteredFinal:  stateFlag(t.final, tr.to) && from != tr.to,
		Emitted:       m.emits,
	}, nil
}

// ---------------------------------------------------------------------------
// Typed-payload accessors: struct-field reads when the event carries
// the SIPArgs scratch, core.Event map fallback otherwise (tests and
// tooling hand-build Args-map events).
// ---------------------------------------------------------------------------

func sipSrc(e *core.Event, a *SIPArgs) string {
	if a != nil {
		return a.Src
	}
	return e.StringArg("src")
}

func sipFromTag(e *core.Event, a *SIPArgs) string {
	if a != nil {
		return a.FromTag
	}
	return e.StringArg("fromTag")
}

func sipToTag(e *core.Event, a *SIPArgs) string {
	if a != nil {
		return a.ToTag
	}
	return e.StringArg("toTag")
}

func sipCallIDArg(e *core.Event, a *SIPArgs) string {
	if a != nil {
		return a.CallID
	}
	return e.StringArg("callID")
}

func sipContact(e *core.Event, a *SIPArgs) string {
	if a != nil {
		return a.Contact
	}
	return e.StringArg("contact")
}

func sipFrom(e *core.Event, a *SIPArgs) string {
	if a != nil {
		return a.From
	}
	return e.StringArg("from")
}

func sipTo(e *core.Event, a *SIPArgs) string {
	if a != nil {
		return a.To
	}
	return e.StringArg("to")
}

func sipCseqMethod(e *core.Event, a *SIPArgs) string {
	if a != nil {
		return a.CseqMethod
	}
	return e.StringArg("cseqMethod")
}

func sipSdpAddr(e *core.Event, a *SIPArgs) string {
	if a != nil {
		return a.SdpAddr
	}
	return e.StringArg("sdpAddr")
}

func sipSdpPort(e *core.Event, a *SIPArgs) int {
	if a != nil {
		return a.SdpPort
	}
	return e.IntArg("sdpPort")
}

func sipSdpPayload(e *core.Event, a *SIPArgs) int {
	if a != nil {
		return a.SdpPayload
	}
	return e.IntArg("sdpPayload")
}

func sipStatus(e *core.Event, a *SIPArgs) int {
	if a != nil {
		return a.Status
	}
	return e.IntArg("status")
}

// ---------------------------------------------------------------------------
// Shared predicates/actions (the semantic bodies the structural
// dispatch wrappers below delegate to; one per closure of the
// interpreted sipSpec).
// ---------------------------------------------------------------------------

func sipRetransInvite(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipSrc(e, a) == m.inviteSrc && sipToTag(e, a) == ""
}

func sipOKForInvite(e *core.Event, a *SIPArgs) bool {
	st := sipStatus(e, a)
	return st >= 200 && st < 300 && sipCseqMethod(e, a) == "INVITE"
}

func sipFailedFinal(e *core.Event, a *SIPArgs) bool {
	return sipStatus(e, a) >= 300 && sipCseqMethod(e, a) == "INVITE"
}

func sipCancelLegit(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipSrc(e, a) == m.inviteSrc && sipFromTag(e, a) == m.fromTag
}

func sipKnownParty(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	src := sipSrc(e, a)
	fromTag := sipFromTag(e, a)
	fromCaller := src == m.callerContact && fromTag == m.fromTag
	fromCallee := src == m.calleeContact && fromTag == m.toTag
	viaProxy := src == m.inviteSrc && fromTag == m.fromTag
	return fromCaller || fromCallee || viaProxy
}

func sipInitInvite(m *SIPMachine, e *core.Event, a *SIPArgs) {
	m.callID = sipCallIDArg(e, a)
	m.fromTag = sipFromTag(e, a)
	m.inviteSrc = sipSrc(e, a)
	m.callerContact = sipContact(e, a)
	m.from = sipFrom(e, a)
	m.to = sipTo(e, a)
	m.set |= sSetCallID | sSetFromTag | sSetInviteSrc | sSetCallerContact | sSetFrom | sSetTo
	if addr := sipSdpAddr(e, a); addr != "" {
		m.g.callerMediaAddr = addr
		m.g.callerMediaPort = sipSdpPort(e, a)
		m.g.payload = sipSdpPayload(e, a)
		m.g.set |= gSetCallerMediaAddr | gSetCallerMediaPort | gSetPayload
		// Opening the RTP machine is session bookkeeping, emitted
		// regardless of the cross-protocol ablation (as interpreted).
		m.emits = append(m.emits, core.SyncMsg{Target: MachineRTPCallee, Event: deltaOpenCallee})
	}
}

func sipEstablish(m *SIPMachine, e *core.Event, a *SIPArgs) {
	m.toTag = sipToTag(e, a)
	m.calleeContact = sipContact(e, a)
	m.set |= sSetToTag | sSetCalleeContact
	if addr := sipSdpAddr(e, a); addr != "" {
		m.g.calleeMediaAddr = addr
		m.g.calleeMediaPort = sipSdpPort(e, a)
		m.g.set |= gSetCalleeMediaAddr | gSetCalleeMediaPort
		m.emits = append(m.emits, core.SyncMsg{Target: MachineRTPCaller, Event: deltaOpenCaller})
	}
}

func sipCloseMedia(m *SIPMachine) {
	if m.p.CrossProtocol {
		m.emits = append(m.emits,
			core.SyncMsg{Target: MachineRTPCaller, Event: deltaBye},
			core.SyncMsg{Target: MachineRTPCallee, Event: deltaBye})
	}
}

func sipBye(m *SIPMachine, e *core.Event, a *SIPArgs) {
	sender := "caller"
	if sipFromTag(e, a) == m.toTag {
		sender = "callee"
	}
	m.g.byeSender = sender
	m.g.set |= gSetByeSender
	if m.p.CrossProtocol {
		m.emits = append(m.emits,
			core.SyncMsg{Target: MachineRTPCaller, Event: deltaBye},
			core.SyncMsg{Target: MachineRTPCallee, Event: deltaBye})
	}
}

func sipReopenMedia(m *SIPMachine) {
	if m.p.CrossProtocol {
		m.emits = append(m.emits,
			core.SyncMsg{Target: MachineRTPCaller, Event: deltaReopen},
			core.SyncMsg{Target: MachineRTPCallee, Event: deltaReopen})
	}
}

// ---------------------------------------------------------------------------
// Structural dispatch targets. One function per guarded/acting
// transition, named after its (from-state, event, cell-index) slot;
// cmd/specgen emits the switch that references them, so any structural
// spec change regenerates into names that fail to compile until the
// semantics here are updated to match.
// ---------------------------------------------------------------------------

func sipGuard_INVITE_RCVD_sip_invite_0(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipRetransInvite(m, e, a)
}

func sipGuard_RINGING_sip_invite_0(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipRetransInvite(m, e, a)
}

func sipGuard_INVITE_RCVD_sip_response_0(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	st := sipStatus(e, a)
	return st >= 100 && st < 200 && st != 180
}

func sipGuard_INVITE_RCVD_sip_response_1(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipStatus(e, a) == 180
}

func sipGuard_INVITE_RCVD_sip_response_2(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipOKForInvite(e, a)
}

func sipGuard_INVITE_RCVD_sip_response_3(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipFailedFinal(e, a)
}

func sipGuard_RINGING_sip_response_0(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipStatus(e, a) < 200
}

func sipGuard_RINGING_sip_response_1(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipOKForInvite(e, a)
}

func sipGuard_RINGING_sip_response_2(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipFailedFinal(e, a)
}

func sipGuard_INVITE_RCVD_sip_cancel_0(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipCancelLegit(m, e, a)
}

func sipGuard_INVITE_RCVD_sip_cancel_1(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return !sipCancelLegit(m, e, a)
}

func sipGuard_RINGING_sip_cancel_0(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipCancelLegit(m, e, a)
}

func sipGuard_RINGING_sip_cancel_1(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return !sipCancelLegit(m, e, a)
}

func sipGuard_CANCEL_WAIT_sip_response_0(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipStatus(e, a) < 300 // 200 for CANCEL
}

func sipGuard_CANCEL_WAIT_sip_response_1(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipStatus(e, a) >= 300 // 487 for the INVITE
}

func sipGuard_CANCEL_WAIT_sip_cancel_0(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipCancelLegit(m, e, a)
}

func sipGuard_CALL_ESTABLISHED_sip_response_0(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipOKForInvite(e, a)
}

func sipGuard_CALL_ESTABLISHED_sip_response_1(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return !sipOKForInvite(e, a)
}

func sipGuard_CALL_ESTABLISHED_sip_invite_0(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipKnownParty(m, e, a)
}

func sipGuard_CALL_ESTABLISHED_sip_invite_1(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return !sipKnownParty(m, e, a)
}

func sipGuard_CALL_ESTABLISHED_sip_bye_0(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipKnownParty(m, e, a)
}

func sipGuard_CALL_ESTABLISHED_sip_bye_1(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return !sipKnownParty(m, e, a)
}

func sipGuard_CALL_TEARDOWN_sip_response_1(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipCseqMethod(e, a) == "BYE" && sipStatus(e, a) < 300
}

func sipGuard_CALL_TEARDOWN_sip_response_2(m *SIPMachine, e *core.Event, a *SIPArgs) bool {
	return sipCseqMethod(e, a) == "BYE" && sipStatus(e, a) == 401
}

func sipAction_INIT_sip_invite_0(m *SIPMachine, e *core.Event, a *SIPArgs) {
	sipInitInvite(m, e, a)
}

func sipAction_INVITE_RCVD_sip_response_2(m *SIPMachine, e *core.Event, a *SIPArgs) {
	sipEstablish(m, e, a)
}

func sipAction_INVITE_RCVD_sip_response_3(m *SIPMachine, e *core.Event, a *SIPArgs) {
	sipCloseMedia(m)
}

func sipAction_RINGING_sip_response_1(m *SIPMachine, e *core.Event, a *SIPArgs) {
	sipEstablish(m, e, a)
}

func sipAction_RINGING_sip_response_2(m *SIPMachine, e *core.Event, a *SIPArgs) {
	sipCloseMedia(m)
}

func sipAction_CANCEL_WAIT_sip_response_1(m *SIPMachine, e *core.Event, a *SIPArgs) {
	sipCloseMedia(m)
}

func sipAction_CALL_ESTABLISHED_sip_bye_0(m *SIPMachine, e *core.Event, a *SIPArgs) {
	sipBye(m, e, a)
}

func sipAction_CALL_ESTABLISHED_sip_bye_1(m *SIPMachine, e *core.Event, a *SIPArgs) {
	sipBye(m, e, a)
}

func sipAction_CALL_TEARDOWN_sip_response_2(m *SIPMachine, e *core.Event, a *SIPArgs) {
	sipReopenMedia(m)
}
