package idsgen

import (
	"time"

	"vids/internal/core"
	"vids/internal/rtp"
)

// RTPMachine is the compiled per-direction media machine (paper
// Figures 2(a), 5, 6): one struct per watched stream holding the l.*
// vector as fields. Both directions (rtp-caller / rtp-callee) share
// one transition-table shape; only the table's name differs.
type RTPMachine struct {
	tbl   *machTable
	state uint8
	set   uint16

	party    string
	payload  int
	started  bool
	ssrc     uint32
	seq      uint32
	ts       uint32
	src      string
	winStart time.Duration
	winCount int

	g *SysGlobals
	p *Params

	cover core.CoverageObserver
	steps uint64
}

// Presence bits of RTPMachine.set.
const (
	rSetParty = 1 << iota
	rSetPayload
	rSetStarted
	rSetSSRC
	rSetSeq
	rSetTS
	rSetSrc
	rSetWinStart
	rSetWinCount
)

// Name returns the machine's name.
func (m *RTPMachine) Name() string { return m.tbl.name }

// State returns the current control state.
func (m *RTPMachine) State() core.State { return m.tbl.states[m.state] }

// Steps reports transitions taken since the last Reset.
func (m *RTPMachine) Steps() uint64 { return m.steps }

// InAttack reports whether the machine sits in an attack state.
func (m *RTPMachine) InAttack() bool { return m.tbl.attack[m.state] }

// InFinal reports whether the machine reached a final state.
func (m *RTPMachine) InFinal() bool { return m.tbl.final[m.state] }

// SetCoverage installs (or, with nil, removes) a coverage observer.
func (m *RTPMachine) SetCoverage(obs core.CoverageObserver) { m.cover = obs }

// Reset returns the machine to its pristine configuration.
func (m *RTPMachine) Reset() {
	m.state = m.tbl.initial
	m.set = 0
	m.party, m.src = "", ""
	m.payload, m.winCount = 0, 0
	m.started = false
	m.ssrc, m.seq, m.ts = 0, 0, 0
	m.winStart = 0
	m.steps = 0
}

// Vars materializes the l.* vector as a map (cold path).
func (m *RTPMachine) Vars() core.Vars {
	v := make(core.Vars)
	if m.set&rSetParty != 0 {
		v.SetString("l.party", m.party)
	}
	if m.set&rSetPayload != 0 {
		v.SetInt("l.payload", m.payload)
	}
	if m.set&rSetStarted != 0 {
		v.SetBool("l.started", m.started)
	}
	if m.set&rSetSSRC != 0 {
		v.SetUint32("l.ssrc", m.ssrc)
	}
	if m.set&rSetSeq != 0 {
		v.SetUint32("l.seq", m.seq)
	}
	if m.set&rSetTS != 0 {
		v.SetUint32("l.ts", m.ts)
	}
	if m.set&rSetSrc != 0 {
		v.SetString("l.src", m.src)
	}
	if m.set&rSetWinStart != 0 {
		v.SetDuration("l.winStart", m.winStart)
	}
	if m.set&rSetWinCount != 0 {
		v.SetInt("l.winCount", m.winCount)
	}
	return v
}

// varsFootprint mirrors core.varsFootprint over the present keys.
func (m *RTPMachine) varsFootprint() int {
	total := 0
	if m.set&rSetParty != 0 {
		total += len("l.party") + len(m.party)
	}
	if m.set&rSetPayload != 0 {
		total += len("l.payload") + 8
	}
	if m.set&rSetStarted != 0 {
		total += len("l.started") + 1
	}
	if m.set&rSetSSRC != 0 {
		total += len("l.ssrc") + 8
	}
	if m.set&rSetSeq != 0 {
		total += len("l.seq") + 8
	}
	if m.set&rSetTS != 0 {
		total += len("l.ts") + 8
	}
	if m.set&rSetSrc != 0 {
		total += len("l.src") + len(m.src)
	}
	if m.set&rSetWinStart != 0 {
		total += len("l.winStart") + 8
	}
	if m.set&rSetWinCount != 0 {
		total += len("l.winCount") + 8
	}
	return total
}

// Step replicates core.Machine.Step over the compiled tables. RTP
// machines never emit δ messages, so Emitted is always nil.
//
//vids:noalloc compiled RTP step — the generated-dispatch hot path
//vids:nopanic steps on attacker-sequenced media events
func (m *RTPMachine) Step(e core.Event) (core.StepResult, error) {
	t := m.tbl
	var cands []trans
	if eid := t.eventID(e.Name); eid >= 0 {
		cands = t.cell(m.state, eid)
	}
	if len(cands) == 0 {
		return core.StepResult{Machine: t.name, From: t.stateName(m.state), Event: e.Name}, core.ErrNoTransition
	}
	a, _ := e.Typed.(*RTPArgs)
	chosen, fallback := -1, -1
	enabled := 0
	for i := range cands {
		if !cands[i].guarded {
			fallback = i
			continue
		}
		if rtpGuardFn(cands[i].fn, m, &e, a) {
			enabled++
			chosen = i
		}
	}
	if enabled > 1 {
		return core.StepResult{Machine: t.name, From: t.stateName(m.state), Event: e.Name}, core.ErrNondeterministic
	}
	if chosen < 0 {
		chosen = fallback
	}
	if chosen < 0 || chosen >= len(cands) {
		return core.StepResult{Machine: t.name, From: t.stateName(m.state), Event: e.Name}, core.ErrNoTransition
	}
	tr := &cands[chosen]
	if tr.action {
		rtpActionFn(tr.fn, m, &e, a)
	}
	from := m.state
	m.state = tr.to
	m.steps++
	if m.cover != nil {
		//vids:panic-ok coverage observers are in-repo recorders (nil on the packet path); the interface call cannot be resolved statically
		m.cover.TransitionFired(t.name, t.stateName(from), e.Name, t.stateName(tr.to), tr.label) //vids:alloc-ok coverage observers take word-sized args; nil in production
		if stateFlag(t.attack, tr.to) && from != tr.to {
			//vids:panic-ok coverage observers are in-repo recorders (nil on the packet path); the interface call cannot be resolved statically
			m.cover.AttackEntered(t.name, t.stateName(tr.to)) //vids:alloc-ok coverage observers take word-sized args; nil in production
		}
	}
	return core.StepResult{
		Machine:       t.name,
		From:          t.stateName(from),
		To:            t.stateName(tr.to),
		Event:         e.Name,
		Label:         tr.label,
		EnteredAttack: stateFlag(t.attack, tr.to) && from != tr.to,
		EnteredFinal:  stateFlag(t.final, tr.to) && from != tr.to,
	}, nil
}

// Typed-payload accessors (map fallback for hand-built events).

func rtpSeq(e *core.Event, a *RTPArgs) int {
	if a != nil {
		return a.Seq
	}
	return e.IntArg("seq")
}

func rtpTS(e *core.Event, a *RTPArgs) uint32 {
	if a != nil {
		return a.TS
	}
	return e.Uint32Arg("ts")
}

func rtpSSRC(e *core.Event, a *RTPArgs) uint32 {
	if a != nil {
		return a.SSRC
	}
	return e.Uint32Arg("ssrc")
}

func rtpPayloadType(e *core.Event, a *RTPArgs) int {
	if a != nil {
		return a.PayloadType
	}
	return e.IntArg("payloadType")
}

func rtpSrc(e *core.Event, a *RTPArgs) string {
	if a != nil {
		return a.Src
	}
	return e.StringArg("src")
}

func rtpNow(e *core.Event, a *RTPArgs) time.Duration {
	if a != nil {
		return a.Now
	}
	return e.DurationArg("now")
}

// Shared predicates (Figure 6's media-stream legitimacy checks).

func rtpPayloadOK(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return rtpPayloadType(e, a) == m.payload
}

func rtpSameSSRC(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return rtpSSRC(e, a) == m.ssrc
}

func rtpGapOK(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	// Backward packets (reordering) are tolerated; only forward jumps
	// beyond the thresholds indicate injection.
	return rtp.WindowOK(uint16(m.seq), uint16(rtpSeq(e, a)),
		m.ts, rtpTS(e, a), m.p.SeqGap, m.p.TSGap)
}

func rtpRateOK(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	if rtpNow(e, a)-m.winStart > m.p.RateWindow {
		return true // window rolls over; reset happens in action
	}
	return m.winCount < m.p.RatePackets
}

// Structural dispatch targets (see the naming contract in sip.go).

func rtpGuard_RTP_OPEN_rtp_packet_0(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return rtpPayloadOK(m, e, a)
}

func rtpGuard_RTP_OPEN_rtp_packet_1(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return !rtpPayloadOK(m, e, a)
}

func rtpGuard_RTP_RCVD_rtp_packet_0(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return rtpPayloadOK(m, e, a) && rtpSameSSRC(m, e, a) && rtpGapOK(m, e, a) && rtpRateOK(m, e, a)
}

func rtpGuard_RTP_RCVD_rtp_packet_1(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return !rtpPayloadOK(m, e, a)
}

func rtpGuard_RTP_RCVD_rtp_packet_2(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return rtpPayloadOK(m, e, a) && (!rtpSameSSRC(m, e, a) || !rtpGapOK(m, e, a))
}

func rtpGuard_RTP_RCVD_rtp_packet_3(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return rtpPayloadOK(m, e, a) && rtpSameSSRC(m, e, a) && rtpGapOK(m, e, a) && !rtpRateOK(m, e, a)
}

func rtpGuard_RTP_RCVD_AFTER_BYE_delta_reopen_0(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return m.started
}

func rtpGuard_RTP_RCVD_AFTER_BYE_delta_reopen_1(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return !m.started
}

func rtpGuard_RTP_CLOSE_delta_reopen_0(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return m.started
}

func rtpGuard_RTP_CLOSE_delta_reopen_1(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return !m.started
}

func rtpGuard_RTP_CLOSE_rtp_packet_0(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return m.party == m.g.byeSender
}

func rtpGuard_RTP_CLOSE_rtp_packet_1(m *RTPMachine, e *core.Event, a *RTPArgs) bool {
	return m.party != m.g.byeSender
}

func rtpAction_INIT_delta_open_0(m *RTPMachine, e *core.Event, a *RTPArgs) {
	// δ-open events carry the party in the shared Args map (cold path:
	// one per call direction), not a typed payload.
	m.party = e.StringArg("party")
	m.payload = m.g.payload
	m.set |= rSetParty | rSetPayload
}

func rtpAction_RTP_OPEN_rtp_packet_0(m *RTPMachine, e *core.Event, a *RTPArgs) {
	m.started = true
	m.ssrc = rtpSSRC(e, a)
	m.seq = uint32(rtpSeq(e, a))
	m.ts = rtpTS(e, a)
	m.src = rtpSrc(e, a)
	m.winStart = rtpNow(e, a)
	m.winCount = 1
	m.set |= rSetStarted | rSetSSRC | rSetSeq | rSetTS | rSetSrc | rSetWinStart | rSetWinCount
}

func rtpAction_RTP_RCVD_rtp_packet_0(m *RTPMachine, e *core.Event, a *RTPArgs) {
	// Advance-only window bookkeeping, mirroring the interpreted spec:
	// tolerated reordered packets must not rewind the high-water mark.
	seq, ts := rtp.WindowAdvance(uint16(m.seq), uint16(rtpSeq(e, a)), m.ts, rtpTS(e, a))
	m.seq = uint32(seq)
	m.ts = ts
	now := rtpNow(e, a)
	if now-m.winStart > m.p.RateWindow {
		m.winStart = now
		m.winCount = 1
		return
	}
	m.winCount++
}
