package idsgen_test

import (
	"testing"

	"vids/internal/ids"
	"vids/internal/idsgen"
)

// The reconstructed specs must be structurally indistinguishable from
// the interpreted spec builders' output: same machines in the same
// order, and byte-identical DOT (states, initial/final/attack
// markings, transitions with labels and guard placement). This pins
// the generated dense tables to the specification structure — a
// regenerated tables_gen.go that drops or reorders a transition fails
// here even if every behavioral test still passes.
func TestReconstructedSpecsMatchInterpretedDOT(t *testing.T) {
	interp := ids.Specs(ids.DefaultConfig())
	comp := idsgen.ReconstructSpecs()
	if len(comp) != len(interp) {
		t.Fatalf("ReconstructSpecs returned %d specs, ids.Specs %d", len(comp), len(interp))
	}
	for i, want := range interp {
		got := comp[i]
		if got.Name != want.Name {
			t.Fatalf("spec %d: reconstructed %q, interpreted %q", i, got.Name, want.Name)
		}
		if gd, wd := got.DOT(), want.DOT(); gd != wd {
			t.Errorf("%s: compiled-table DOT diverges from interpreted spec\n--- interpreted ---\n%s\n--- compiled ---\n%s",
				want.Name, wd, gd)
		}
	}
}
