package idsgen

import (
	"vids/internal/core"
	"vids/internal/rtp"
)

// SpamMachine is the compiled standalone media-spamming monitor of
// Figure 6: one per unsolicited (source, destination) stream, tracking
// SSRC/seq/timestamp evolution from the first observed packet.
type SpamMachine struct {
	tbl   *machTable
	state uint8
	set   uint8

	ssrc uint32
	seq  uint32
	ts   uint32

	p Params

	cover core.CoverageObserver
	steps uint64
}

// Presence bits of SpamMachine.set.
const (
	spSetSSRC = 1 << iota
	spSetSeq
	spSetTS
)

// Name returns the machine's name.
func (m *SpamMachine) Name() string { return m.tbl.name }

// State returns the current control state.
func (m *SpamMachine) State() core.State { return m.tbl.states[m.state] }

// Steps reports transitions taken since the last Reset.
func (m *SpamMachine) Steps() uint64 { return m.steps }

// InAttack reports whether the machine sits in an attack state.
func (m *SpamMachine) InAttack() bool { return m.tbl.attack[m.state] }

// InFinal reports whether the machine reached a final state.
func (m *SpamMachine) InFinal() bool { return m.tbl.final[m.state] }

// SetCoverage installs (or, with nil, removes) a coverage observer.
func (m *SpamMachine) SetCoverage(obs core.CoverageObserver) { m.cover = obs }

// Reset returns the machine to its pristine configuration.
func (m *SpamMachine) Reset() {
	m.state = m.tbl.initial
	m.set = 0
	m.ssrc, m.seq, m.ts = 0, 0, 0
	m.steps = 0
}

// Vars materializes the l.* vector as a map (cold path).
func (m *SpamMachine) Vars() core.Vars {
	v := make(core.Vars)
	if m.set&spSetSSRC != 0 {
		v.SetUint32("l.ssrc", m.ssrc)
	}
	if m.set&spSetSeq != 0 {
		v.SetUint32("l.seq", m.seq)
	}
	if m.set&spSetTS != 0 {
		v.SetUint32("l.ts", m.ts)
	}
	return v
}

// Step replicates core.Machine.Step over the compiled tables.
//
//vids:noalloc compiled spam-monitor step — the generated-dispatch hot path
//vids:nopanic steps on attacker-sequenced events
func (m *SpamMachine) Step(e core.Event) (core.StepResult, error) {
	t := m.tbl
	var cands []trans
	if eid := t.eventID(e.Name); eid >= 0 {
		cands = t.cell(m.state, eid)
	}
	if len(cands) == 0 {
		return core.StepResult{Machine: t.name, From: t.stateName(m.state), Event: e.Name}, core.ErrNoTransition
	}
	a, _ := e.Typed.(*RTPArgs)
	chosen, fallback := -1, -1
	enabled := 0
	for i := range cands {
		if !cands[i].guarded {
			fallback = i
			continue
		}
		if spamGuardFn(cands[i].fn, m, &e, a) {
			enabled++
			chosen = i
		}
	}
	if enabled > 1 {
		return core.StepResult{Machine: t.name, From: t.stateName(m.state), Event: e.Name}, core.ErrNondeterministic
	}
	if chosen < 0 {
		chosen = fallback
	}
	if chosen < 0 || chosen >= len(cands) {
		return core.StepResult{Machine: t.name, From: t.stateName(m.state), Event: e.Name}, core.ErrNoTransition
	}
	tr := &cands[chosen]
	if tr.action {
		spamActionFn(tr.fn, m, &e, a)
	}
	from := m.state
	m.state = tr.to
	m.steps++
	if m.cover != nil {
		//vids:panic-ok coverage observers are in-repo recorders (nil on the packet path); the interface call cannot be resolved statically
		m.cover.TransitionFired(t.name, t.stateName(from), e.Name, t.stateName(tr.to), tr.label) //vids:alloc-ok coverage observers take word-sized args; nil in production
		if stateFlag(t.attack, tr.to) && from != tr.to {
			//vids:panic-ok coverage observers are in-repo recorders (nil on the packet path); the interface call cannot be resolved statically
			m.cover.AttackEntered(t.name, t.stateName(tr.to)) //vids:alloc-ok coverage observers take word-sized args; nil in production
		}
	}
	return core.StepResult{
		Machine:       t.name,
		From:          t.stateName(from),
		To:            t.stateName(tr.to),
		Event:         e.Name,
		Label:         tr.label,
		EnteredAttack: stateFlag(t.attack, tr.to) && from != tr.to,
		EnteredFinal:  stateFlag(t.final, tr.to) && from != tr.to,
	}, nil
}

// spamGapOK is the Figure 6 predicate of the standalone monitor: like
// the in-call version but with the SSRC equality folded in (there is
// no separate same-SSRC branch on this machine).
func spamGapOK(m *SpamMachine, e *core.Event, a *RTPArgs) bool {
	prevSeq := uint16(m.seq)
	seq := uint16(rtpSeq(e, a))
	if !rtp.SeqLess(prevSeq, seq) && seq != prevSeq {
		return true // reordered behind the window: tolerated, SSRC unchecked
	}
	return rtp.WindowOK(prevSeq, seq, m.ts, rtpTS(e, a), m.p.SeqGap, m.p.TSGap) &&
		rtpSSRC(e, a) == m.ssrc
}

// Structural dispatch targets (see the naming contract in sip.go).

func spamGuard_RTP_RCVD_rtp_packet_0(m *SpamMachine, e *core.Event, a *RTPArgs) bool {
	return spamGapOK(m, e, a)
}

func spamGuard_RTP_RCVD_rtp_packet_1(m *SpamMachine, e *core.Event, a *RTPArgs) bool {
	return !spamGapOK(m, e, a)
}

func spamAction_INIT_rtp_packet_0(m *SpamMachine, e *core.Event, a *RTPArgs) {
	m.ssrc = rtpSSRC(e, a)
	m.seq = uint32(rtpSeq(e, a))
	m.ts = rtpTS(e, a)
	m.set |= spSetSSRC | spSetSeq | spSetTS
}

func spamAction_RTP_RCVD_rtp_packet_0(m *SpamMachine, e *core.Event, a *RTPArgs) {
	// Advance-only window bookkeeping, mirroring the interpreted spec.
	seq, ts := rtp.WindowAdvance(uint16(m.seq), uint16(rtpSeq(e, a)), m.ts, rtpTS(e, a))
	m.seq = uint32(seq)
	m.ts = ts
	m.set |= spSetSeq | spSetTS
}
