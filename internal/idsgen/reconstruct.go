package idsgen

import "vids/internal/core"

// ReconstructSpecs rebuilds interpreter-shaped core.Specs from the
// compiled tables — same states, transitions, labels, guard/action
// placement (as inert placeholders), final and attack markings — in
// the same order ids.Specs returns them. cmd/fsmdump's -backend
// compiled mode renders these, and the golden equivalence test asserts
// their DOT output is byte-identical to the interpreted specs', which
// pins the generated tables to the spec structure.
func ReconstructSpecs() []*core.Spec {
	tables := []*machTable{
		&tblSIP, &tblRTPCaller, &tblRTPCallee,
		&tblInviteFlood, &tblRespFlood, &tblSpam,
	}
	specs := make([]*core.Spec, 0, len(tables))
	for _, t := range tables {
		specs = append(specs, reconstructSpec(t))
	}
	return specs
}

func reconstructSpec(t *machTable) *core.Spec {
	dummyGuard := func(*core.Ctx) bool { return true }
	dummyAction := func(*core.Ctx) {}
	s := core.NewSpec(t.name, t.states[t.initial])
	for si, from := range t.states {
		for ei, event := range t.events {
			for _, tr := range t.cell(uint8(si), ei) {
				g := (func(*core.Ctx) bool)(nil)
				if tr.guarded {
					g = dummyGuard
				}
				do := (func(*core.Ctx))(nil)
				if tr.action {
					do = dummyAction
				}
				s.OnLabeled(tr.label, from, event, g, do, t.states[tr.to])
			}
		}
	}
	var finals, attacks []core.State
	for i, st := range t.states {
		if t.final[i] {
			finals = append(finals, st)
		}
		if t.attack[i] {
			attacks = append(attacks, st)
		}
	}
	if len(finals) > 0 {
		s.Final(finals...)
	}
	if len(attacks) > 0 {
		s.Attack(attacks...)
	}
	return s
}
