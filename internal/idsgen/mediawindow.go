package idsgen

import "time"

// MediaWindow reports the compiled machine's negotiated payload type
// and window variables — the state mirrored into the ingress fast-path
// cache at arm time.
func (m *RTPMachine) MediaWindow() (payload int, ssrc uint32, seq uint16, ts uint32, winStart time.Duration, winCount int) {
	return m.payload, m.ssrc, uint16(m.seq), m.ts, m.winStart, m.winCount
}

// SetMediaWindow applies an absorbed-window resync snapshot from the
// fast-path cache: the variable evolution the RTP_RCVD self-loop would
// have computed had the machine processed every absorbed packet.
func (m *RTPMachine) SetMediaWindow(ssrc uint32, seq uint16, ts uint32, winStart time.Duration, winCount int) {
	m.ssrc = ssrc
	m.seq = uint32(seq)
	m.ts = ts
	m.winStart = winStart
	m.winCount = winCount
	m.set |= rSetSSRC | rSetSeq | rSetTS | rSetWinStart | rSetWinCount
}
