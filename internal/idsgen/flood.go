package idsgen

import "vids/internal/core"

// FloodKind selects which windowed-counter twin a FloodMachine runs:
// Figure 4's per-destination INVITE flood detector or the DRDoS stray
// response counter. The twins share one transition shape; only the
// counted event name and the attack label differ.
type FloodKind uint8

// Flood detector kinds.
const (
	FloodInvite FloodKind = iota
	FloodResponse
)

// FloodMachine is the compiled generic window counter of Figure 4:
// count occurrences of the data event per destination, enter the
// attack state past n within one timer window.
type FloodMachine struct {
	tbl   *machTable
	state uint8
	set   uint8

	dest  string
	count int
	n     int

	cover core.CoverageObserver
	steps uint64
}

// Presence bits of FloodMachine.set.
const (
	fSetDest = 1 << iota
	fSetCount
)

// Name returns the machine's name.
func (m *FloodMachine) Name() string { return m.tbl.name }

// State returns the current control state.
func (m *FloodMachine) State() core.State { return m.tbl.states[m.state] }

// Steps reports transitions taken since the last Reset.
func (m *FloodMachine) Steps() uint64 { return m.steps }

// InAttack reports whether the machine sits in an attack state.
func (m *FloodMachine) InAttack() bool { return m.tbl.attack[m.state] }

// InFinal reports whether the machine reached a final state.
func (m *FloodMachine) InFinal() bool { return m.tbl.final[m.state] }

// SetCoverage installs (or, with nil, removes) a coverage observer.
func (m *FloodMachine) SetCoverage(obs core.CoverageObserver) { m.cover = obs }

// Reset returns the machine to its pristine configuration (the
// configured threshold n survives, like the interpreted spec closure).
func (m *FloodMachine) Reset() {
	m.state = m.tbl.initial
	m.set = 0
	m.dest = ""
	m.count = 0
	m.steps = 0
}

// Vars materializes the l.* vector as a map (cold path).
func (m *FloodMachine) Vars() core.Vars {
	v := make(core.Vars)
	if m.set&fSetDest != 0 {
		v.SetString("l.dest", m.dest)
	}
	if m.set&fSetCount != 0 {
		v.SetInt("l.count", m.count)
	}
	return v
}

// Step replicates core.Machine.Step over the compiled tables. The
// ~14-word StepResult is filled through the named result via plain
// field stores of pre-computed locals: measured against composite
// literals on every path, this keeps the compiler writing straight
// into the result slot without materializing a temporary it would
// then duffcopy out — on this short a path the copy would dominate
// the transition.
//
//vids:noalloc compiled flood-counter step — the generated-dispatch hot path
//vids:nopanic steps on attacker-sequenced events
func (m *FloodMachine) Step(e core.Event) (res core.StepResult, err error) {
	t := m.tbl
	fromState := t.stateName(m.state)
	var cands []trans
	if eid := t.eventID(e.Name); eid >= 0 {
		cands = t.cell(m.state, eid)
	}
	if len(cands) == 0 {
		res = core.StepResult{Machine: t.name, From: fromState, Event: e.Name}
		err = core.ErrNoTransition
		return
	}
	a, _ := e.Typed.(*FloodArgs)
	chosen, fallback := -1, -1
	enabled := 0
	for i := range cands {
		if !cands[i].guarded {
			fallback = i
			continue
		}
		if floodGuardFn(cands[i].fn, m, &e, a) {
			enabled++
			chosen = i
		}
	}
	if enabled > 1 {
		res = core.StepResult{Machine: t.name, From: fromState, Event: e.Name}
		err = core.ErrNondeterministic
		return
	}
	if chosen < 0 {
		chosen = fallback
	}
	if chosen < 0 || chosen >= len(cands) {
		res = core.StepResult{Machine: t.name, From: fromState, Event: e.Name}
		err = core.ErrNoTransition
		return
	}
	tr := &cands[chosen]
	if tr.action {
		floodActionFn(tr.fn, m, &e, a)
	}
	from := m.state
	m.state = tr.to
	m.steps++
	toState := t.stateName(tr.to)
	label := tr.label
	moved := from != tr.to
	enteredAttack := stateFlag(t.attack, tr.to) && moved
	enteredFinal := stateFlag(t.final, tr.to) && moved
	if m.cover != nil {
		//vids:panic-ok coverage observers are in-repo recorders (nil on the packet path); the interface call cannot be resolved statically
		m.cover.TransitionFired(t.name, fromState, e.Name, toState, label) //vids:alloc-ok coverage observers take word-sized args; nil in production
		if enteredAttack {
			//vids:panic-ok coverage observers are in-repo recorders (nil on the packet path); the interface call cannot be resolved statically
			m.cover.AttackEntered(t.name, toState) //vids:alloc-ok coverage observers take word-sized args; nil in production
		}
	}
	res.Machine = t.name
	res.From = fromState
	res.To = toState
	res.Event = e.Name
	res.Label = label
	res.EnteredAttack = enteredAttack
	res.EnteredFinal = enteredFinal
	res.Emitted = nil
	return
}

func floodDest(e *core.Event, a *FloodArgs) string {
	if a != nil {
		return a.Dest
	}
	return e.StringArg("dest")
}

// Structural dispatch targets. The data-event column differs between
// the twins ("sip.invite" vs "sip.response"), so the generator
// canonicalizes it to "data" in these names; timer.T1 keeps its own.

func floodGuard_PACKET_RCVD_data_0(m *FloodMachine, e *core.Event, a *FloodArgs) bool {
	return m.count < m.n
}

func floodGuard_PACKET_RCVD_data_1(m *FloodMachine, e *core.Event, a *FloodArgs) bool {
	return m.count >= m.n
}

func floodAction_INIT_data_0(m *FloodMachine, e *core.Event, a *FloodArgs) {
	m.dest = floodDest(e, a)
	m.count = 1
	m.set |= fSetDest | fSetCount
}

func floodAction_PACKET_RCVD_data_0(m *FloodMachine, e *core.Event, a *FloodArgs) {
	m.count++
}

// floodReset mirrors the interpreted window-expiry action, which
// deletes only l.count and leaves l.dest bound.
func floodReset(m *FloodMachine) {
	m.count = 0
	m.set &^= fSetCount
}

func floodAction_PACKET_RCVD_timer_T1_0(m *FloodMachine, e *core.Event, a *FloodArgs) {
	floodReset(m)
}

func floodAction_ATTACK_INVITE_FLOOD_timer_T1_0(m *FloodMachine, e *core.Event, a *FloodArgs) {
	floodReset(m)
}
