package idsgen

import (
	"time"

	"vids/internal/core"
)

// Machine names inside one call's communicating system, matching the
// spec names internal/ids registers. cmd/specgen classifies the specs
// by these names when assigning transitions to dispatch families, so a
// renamed spec fails generation rather than silently drifting.
const (
	MachineSIP       = "sip"
	MachineRTPCaller = "rtp-caller"
	MachineRTPCallee = "rtp-callee"
	MachineSpam      = "rtp-spam"
)

// Event names shared with the interpreted specs.
const (
	evDeltaOpen   = "delta.open"
	evDeltaBye    = "delta.bye"
	evDeltaReopen = "delta.reopen"
)

// Pre-built δ synchronization events, value-identical to the ones the
// interpreted sipSpec emits (same Args maps, shared across calls and
// never mutated) so both backends enqueue indistinguishable SyncMsgs.
var (
	deltaOpenCallee = core.Event{Name: evDeltaOpen, Args: map[string]any{"party": "callee"}}
	deltaOpenCaller = core.Event{Name: evDeltaOpen, Args: map[string]any{"party": "caller"}}
	deltaBye        = core.Event{Name: evDeltaBye}
	deltaReopen     = core.Event{Name: evDeltaReopen}
)

// Params carries the configuration the compiled guards and actions
// close over: the Figure 6 media thresholds and the cross-protocol
// ablation switch. It is a value copy of the relevant ids.Config
// fields (idsgen cannot import internal/ids — ids imports idsgen).
type Params struct {
	// SeqGap / TSGap are the paper's Δn and Δt spam thresholds.
	SeqGap uint16
	TSGap  uint32
	// RateWindow / RatePackets bound the legitimate packet rate.
	RateWindow  time.Duration
	RatePackets int
	// CrossProtocol enables the δ teardown/reopen notifications from
	// the SIP machine to the RTP machines (ablation A1 disables it).
	CrossProtocol bool
}

// trans is one compiled transition: a dense-table cell entry. fn is
// the family-wide transition index the generated guard/action switch
// dispatches on; guarded/action mirror the spec's nil checks.
type trans struct {
	to      uint8
	fn      uint16
	guarded bool
	action  bool
	label   string
}

// machTable is one machine's compiled shape: states and events in
// their canonical (sorted) order, the final/attack masks, and the
// dense state×event candidate cells in spec insertion order — the
// exact order the interpreted Machine.Step walks. cells is flattened
// row-major (cells[state*len(events)+event]) so the per-step lookup is
// one bounds check and no intermediate slice-header chase. The tables
// live in tables_gen.go (written by cmd/specgen); everything that
// interprets them is handwritten here.
type machTable struct {
	name    string
	initial uint8
	states  []core.State
	events  []string
	final   []bool
	attack  []bool
	cells   [][]trans
}

// cell returns the candidate list for (state, event column). The
// guard is dead for specgen-emitted tables — every state id and event
// column is in range by construction — but it makes the lookup total,
// so the nopanic gate needs no waiver here.
func (t *machTable) cell(state uint8, eid int) []trans {
	i := int(state)*len(t.events) + eid
	if i < 0 || i >= len(t.cells) {
		return nil
	}
	return t.cells[i]
}

// stateName resolves a state id to its canonical name. Out-of-range
// ids cannot occur (specgen emits only in-range ids and every Step
// writes tr.to straight from the table), so the empty fallback is
// dead; it exists to make the read total.
func (t *machTable) stateName(id uint8) core.State {
	i := int(id)
	if i < len(t.states) {
		return t.states[i]
	}
	return ""
}

// stateFlag reads a per-state bitmask (final/attack) with the same
// dead defensive bound as stateName.
func stateFlag(bits []bool, id uint8) bool {
	i := int(id)
	return i < len(bits) && bits[i]
}

// eventID resolves an event name to its column, or -1. The alphabets
// are tiny (≤5 events), so a linear scan beats a map probe.
func (t *machTable) eventID(name string) int {
	for i := range t.events {
		if t.events[i] == name {
			return i
		}
	}
	return -1
}

// SysGlobals is the compiled form of one call system's shared variable
// store: the g.* keys the SIP machine writes and the RTP machines
// read, as struct fields plus a presence bitmask so the Vars view and
// the memory accounting match the interpreted map exactly.
type SysGlobals struct {
	set             uint8
	callerMediaAddr string
	callerMediaPort int
	payload         int
	calleeMediaAddr string
	calleeMediaPort int
	byeSender       string
}

// Presence bits of SysGlobals.set.
const (
	gSetCallerMediaAddr = 1 << iota
	gSetCallerMediaPort
	gSetPayload
	gSetCalleeMediaAddr
	gSetCalleeMediaPort
	gSetByeSender
)

func (g *SysGlobals) reset() { *g = SysGlobals{} }

// vars materializes the map view (cold path: tooling and tests).
func (g *SysGlobals) vars() core.Vars {
	v := make(core.Vars)
	if g.set&gSetCallerMediaAddr != 0 {
		v.SetString("g.callerMediaAddr", g.callerMediaAddr)
	}
	if g.set&gSetCallerMediaPort != 0 {
		v.SetInt("g.callerMediaPort", g.callerMediaPort)
	}
	if g.set&gSetPayload != 0 {
		v.SetInt("g.payload", g.payload)
	}
	if g.set&gSetCalleeMediaAddr != 0 {
		v.SetString("g.calleeMediaAddr", g.calleeMediaAddr)
	}
	if g.set&gSetCalleeMediaPort != 0 {
		v.SetInt("g.calleeMediaPort", g.calleeMediaPort)
	}
	if g.set&gSetByeSender != 0 {
		v.SetString("g.byeSender", g.byeSender)
	}
	return v
}

// footprint mirrors core.varsFootprint over the present keys: len(key)
// plus len(string value) or 8 bytes per numeric.
func (g *SysGlobals) footprint() int {
	total := 0
	if g.set&gSetCallerMediaAddr != 0 {
		total += len("g.callerMediaAddr") + len(g.callerMediaAddr)
	}
	if g.set&gSetCallerMediaPort != 0 {
		total += len("g.callerMediaPort") + 8
	}
	if g.set&gSetPayload != 0 {
		total += len("g.payload") + 8
	}
	if g.set&gSetCalleeMediaAddr != 0 {
		total += len("g.calleeMediaAddr") + len(g.calleeMediaAddr)
	}
	if g.set&gSetCalleeMediaPort != 0 {
		total += len("g.calleeMediaPort") + 8
	}
	if g.set&gSetByeSender != 0 {
		total += len("g.byeSender") + len(g.byeSender)
	}
	return total
}
