package idsgen

import (
	"fmt"

	"vids/internal/core"
)

// CallSystem is the compiled per-call communicating system: the SIP
// machine and the two RTP direction machines of Figure 2(b) wired to
// one shared SysGlobals and one δ FIFO, replicating core.System's
// delivery discipline (drain pending sync first, tolerate
// ErrNoTransition on sync events, reuse the result slice) without map
// lookups or per-call spec interpretation.
type CallSystem struct {
	g SysGlobals
	p Params

	sip    SIPMachine
	caller RTPMachine
	callee RTPMachine

	queue      []core.SyncMsg
	qhead      int
	maxPending int

	results []core.StepResult
}

// Compile-time checks that the compiled implementations satisfy the
// backend seam.
var (
	_ core.Stepper     = (*CallSystem)(nil)
	_ core.MachineLike = (*SIPMachine)(nil)
	_ core.MachineLike = (*RTPMachine)(nil)
	_ core.MachineLike = (*FloodMachine)(nil)
	_ core.MachineLike = (*SpamMachine)(nil)
)

// NewCallSystem builds one compiled call monitor system.
//
//vids:coldpath system construction happens on monitor-pool miss only; steady-state churn recycles monitors
func NewCallSystem(p Params) *CallSystem {
	cs := &CallSystem{p: p}
	cs.sip = SIPMachine{tbl: &tblSIP, state: tblSIP.initial, g: &cs.g, p: &cs.p}
	cs.caller = RTPMachine{tbl: &tblRTPCaller, state: tblRTPCaller.initial, g: &cs.g, p: &cs.p}
	cs.callee = RTPMachine{tbl: &tblRTPCallee, state: tblRTPCallee.initial, g: &cs.g, p: &cs.p}
	return cs
}

// NewFloodMachine builds one compiled windowed flood counter with
// threshold n (Figure 4).
//
//vids:coldpath flood machines are created once per watched destination
func NewFloodMachine(kind FloodKind, n int) *FloodMachine {
	tbl := &tblInviteFlood
	if kind == FloodResponse {
		tbl = &tblRespFlood
	}
	return &FloodMachine{tbl: tbl, state: tbl.initial, n: n}
}

// NewSpamMachine builds one compiled standalone media-spam monitor
// (Figure 6). The Params value is copied; only the media thresholds
// are consulted.
//
//vids:coldpath spam monitors are created once per unsolicited stream
func NewSpamMachine(p Params) *SpamMachine {
	return &SpamMachine{tbl: &tblSpam, state: tblSpam.initial, p: p}
}

// SIP exposes the member SIP machine behind the backend seam.
func (cs *CallSystem) SIP() core.MachineLike { return &cs.sip }

// Caller exposes the caller→callee media machine.
func (cs *CallSystem) Caller() core.MachineLike { return &cs.caller }

// Callee exposes the callee→caller media machine.
func (cs *CallSystem) Callee() core.MachineLike { return &cs.callee }

// Globals materializes the shared variable store (cold path).
func (cs *CallSystem) Globals() core.Vars { return cs.g.vars() }

// Find returns a member machine by name.
func (cs *CallSystem) Find(machine string) (core.MachineLike, bool) {
	switch machine {
	case MachineSIP:
		return &cs.sip, true
	case MachineRTPCaller:
		return &cs.caller, true
	case MachineRTPCallee:
		return &cs.callee, true
	}
	return nil, false
}

// stepNamed dispatches one event to the named member machine.
func (cs *CallSystem) stepNamed(machine string, e core.Event) (core.StepResult, error, bool) {
	switch machine {
	case MachineSIP:
		res, err := cs.sip.Step(e)
		return res, err, true
	case MachineRTPCaller:
		res, err := cs.caller.Step(e)
		return res, err, true
	case MachineRTPCallee:
		res, err := cs.callee.Step(e)
		return res, err, true
	}
	return core.StepResult{}, nil, false
}

// SetCoverage installs (or, with nil, removes) a coverage observer on
// every member machine.
func (cs *CallSystem) SetCoverage(obs core.CoverageObserver) {
	cs.sip.cover = obs
	cs.caller.cover = obs
	cs.callee.cover = obs
}

// Reset returns every member machine to its initial configuration and
// clears the globals, FIFO queue and result buffer, keeping capacity.
func (cs *CallSystem) Reset() {
	cs.sip.Reset()
	cs.caller.Reset()
	cs.callee.Reset()
	cs.g.reset()
	cs.queue = cs.queue[:0]
	cs.qhead = 0
	cs.maxPending = 0
	cs.results = cs.results[:0]
}

// PendingSync reports queued δ messages not yet consumed.
func (cs *CallSystem) PendingSync() int { return len(cs.queue) - cs.qhead }

// MaxPendingSync reports the δ FIFO's high-water mark since Reset.
func (cs *CallSystem) MaxPendingSync() int { return cs.maxPending }

// noteBacklog updates the high-water mark after an enqueue.
func (cs *CallSystem) noteBacklog() {
	if n := len(cs.queue) - cs.qhead; n > cs.maxPending {
		cs.maxPending = n
	}
}

// Deliver feeds a data-packet event to the named machine under the
// paper's sync-first priority rule; see core.System.Deliver for the
// full contract (the returned slice is reused across calls).
//
//vids:noalloc compiled per-packet delivery path
//vids:nopanic dispatches attacker-driven events through the call system
func (cs *CallSystem) Deliver(machine string, e core.Event) ([]core.StepResult, error) {
	if _, ok := cs.Find(machine); !ok {
		return nil, fmt.Errorf("idsgen: unknown machine %q", machine) //vids:alloc-ok unknown-machine delivery is a wiring bug; error path only
	}
	cs.results = cs.results[:0]

	if err := cs.drain(); err != nil {
		return cs.results, err
	}

	res, err, _ := cs.stepNamed(machine, e)
	if err != nil {
		return cs.results, err
	}
	cs.results = append(cs.results, res)
	cs.queue = append(cs.queue, res.Emitted...)
	cs.noteBacklog()

	if err := cs.drain(); err != nil {
		return cs.results, err
	}
	return cs.results, nil
}

// DeliverSync injects a sync event directly (timer expiries the IDS
// schedules on behalf of a machine).
//
//vids:noalloc compiled timer/sync delivery path
//vids:nopanic dispatches attacker-driven events through the call system
func (cs *CallSystem) DeliverSync(machine string, e core.Event) ([]core.StepResult, error) {
	if _, ok := cs.Find(machine); !ok {
		return nil, fmt.Errorf("idsgen: unknown machine %q", machine) //vids:alloc-ok unknown-machine delivery is a wiring bug; error path only
	}
	cs.results = cs.results[:0]
	cs.queue = append(cs.queue, core.SyncMsg{Target: machine, Event: e})
	cs.noteBacklog()
	err := cs.drain()
	return cs.results, err
}

// drain processes the sync queue to exhaustion in FIFO order. The
// cursor starts at 0 and only ever advances, so the >= 0 arm of the
// loop condition is dead; it states the invariant the queue read
// depends on.
func (cs *CallSystem) drain() error {
	for cs.qhead >= 0 && cs.qhead < len(cs.queue) {
		msg := cs.queue[cs.qhead]
		cs.qhead++
		res, err, ok := cs.stepNamed(msg.Target, msg.Event)
		if !ok {
			continue // emitted to a machine this system doesn't run
		}
		if err != nil {
			if err == core.ErrNoTransition {
				continue // peer no longer cares; not a deviation
			}
			return err
		}
		cs.results = append(cs.results, res)
		cs.queue = append(cs.queue, res.Emitted...)
		cs.noteBacklog()
	}
	cs.queue = cs.queue[:0]
	cs.qhead = 0
	return nil
}

// InAttack reports whether any member machine sits in an attack state.
func (cs *CallSystem) InAttack() bool {
	return cs.sip.InAttack() || cs.caller.InAttack() || cs.callee.InAttack()
}

// AllFinal reports whether every member machine reached a final state.
func (cs *CallSystem) AllFinal() bool {
	return cs.sip.InFinal() && cs.caller.InFinal() && cs.callee.InFinal()
}

// MemoryFootprint mirrors core.System.MemoryFootprint: control-state
// plus variable bytes per machine, plus the shared globals.
func (cs *CallSystem) MemoryFootprint() int {
	total := len(cs.sip.State()) + cs.sip.varsFootprint()
	total += len(cs.caller.State()) + cs.caller.varsFootprint()
	total += len(cs.callee.State()) + cs.callee.varsFootprint()
	total += cs.g.footprint()
	return total
}
