// Package workload builds the paper's evaluation testbed (Section
// 7.1, Figure 7): two enterprise networks A and B, each with SIP user
// agents and a proxy on a 100BaseT LAN, joined across an internet
// cloud by DS1 uplinks (50 ms one-way delay, 0.42% loss), with the
// vids device placed between network B's edge router and its hub so
// it sees all traffic to and from B. It also generates the calling
// pattern of Figure 8: UAs of network A call UAs of network B with
// random arrivals and exponentially distributed call durations.
package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"vids/internal/ids"
	"vids/internal/media"
	"vids/internal/metrics"
	"vids/internal/sim"
	"vids/internal/sip"
	"vids/internal/sipmsg"
)

// Node names of the Figure 7 topology.
const (
	DomainA = "a.example.com"
	DomainB = "b.example.com"

	ProxyAHost = "proxy.a.example.com"
	ProxyBHost = "proxy.b.example.com"
	HubA       = "hub.a.example.com"
	HubB       = "hub.b.example.com"
	EdgeA      = "edge.a.example.com"
	EdgeB      = "edge.b.example.com"
	Cloud      = "internet-cloud"
	// VidsHost is the monitoring point between EdgeB and HubB.
	VidsHost = "vids.b.example.com"
	// AttackerHost hangs off the internet cloud.
	AttackerHost = "attacker.evil.example.com"
)

// UAHost names the i-th (1-based) user agent host of a domain side
// ("a" or "b").
func UAHost(side string, i int) string {
	return fmt.Sprintf("ua%d.%s.example.com", i, side)
}

// UAUser names the i-th user of a side.
func UAUser(side string, i int) string {
	return fmt.Sprintf("user%d%s", i, side)
}

// Config parameterizes the testbed.
type Config struct {
	Seed int64
	// UAs is the number of user agents per enterprise network
	// (Section 7.2 reports on the 20 UAs of network A).
	UAs int

	// VidsInline places vids on the forwarding path; VidsTap attaches
	// it passively. With both false the vids host is a plain router
	// ("in the absence of vids, the host simply forwards").
	VidsInline bool
	VidsTap    bool
	IDS        ids.Config

	// Calling pattern: each A-side UA waits Exp(MeanCallInterval)
	// between call attempts; established calls last
	// Exp(MeanCallDuration).
	MeanCallInterval time.Duration
	MeanCallDuration time.Duration

	// Callee behavior. BusyProb is the probability an incoming call
	// is declined 486 Busy Here instead of answered.
	RingDelay   time.Duration
	AnswerDelay time.Duration
	BusyProb    float64

	// WithMedia streams G.729 RTP for every established call.
	WithMedia bool

	// WANDupProb injects duplicate frames on the WAN links (failure
	// injection; the SIP transaction layer and the RTP detectors must
	// absorb duplicates without false alarms).
	WANDupProb float64

	// AuthSecret, when non-empty, deploys shared-secret BYE
	// authentication on every phone (experiment E8: authentication
	// stops outsider spoofing but not misbehaving insiders).
	AuthSecret string

	// ReinviteProb makes callers refresh established calls with a
	// mid-call re-INVITE at this probability (exercises the IDS's
	// known-party path with legitimate in-dialog INVITEs).
	ReinviteProb float64

	// MaxCallsPerPhone bounds simultaneous calls per phone (0 means
	// unlimited); beyond it, incoming INVITEs get 486 Busy Here.
	MaxCallsPerPhone int

	// WANJitter overrides the internet cloud's delay jitter (zero
	// keeps the default 1 ms). Large values reorder media behind
	// signaling — the regime that stresses timer T (Section 7.5).
	WANJitter time.Duration
}

// DefaultConfig mirrors the paper's testbed parameters.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		UAs:              20,
		VidsInline:       true,
		IDS:              ids.DefaultConfig(),
		MeanCallInterval: 4 * time.Minute,
		MeanCallDuration: 2 * time.Minute,
		RingDelay:        200 * time.Millisecond,
		AnswerDelay:      2 * time.Second,
		WithMedia:        true,
	}
}

// CallRecord captures one generated call's lifecycle for the
// experiment harness.
type CallRecord struct {
	Caller   int // index into UAsA
	Callee   int // index into UAsB
	CallID   string
	PlacedAt time.Duration
	Duration time.Duration // intended duration

	SetupDelay    time.Duration // INVITE -> 180, 0 if never rang
	Established   bool
	EstablishedAt time.Duration
	EndedAt       time.Duration
	Failed        bool

	call *sip.Call
}

// Call exposes the underlying caller-side SIP call leg.
func (r *CallRecord) Call() *sip.Call { return r.call }

// Testbed is a fully wired Figure 7 deployment.
type Testbed struct {
	Cfg Config
	Sim *sim.Simulator
	Net *sim.Network
	IDS *ids.IDS // nil unless VidsInline or VidsTap

	ProxyA *sip.Proxy
	ProxyB *sip.Proxy
	UAsA   []*sip.UA
	UAsB   []*sip.UA

	Records []*CallRecord

	// Arrivals records call placement times for Figure 8.
	Arrivals metrics.Series
	// Durations records realized call durations (established ->
	// ended) for Figure 8.
	Durations metrics.Series
	// receivers aggregate RTP QoS; recvA/recvB split them by side
	// (Figure 10 reports on streams crossing vids).
	receivers []*media.Receiver
	recvA     []*media.Receiver
	recvB     []*media.Receiver

	senders map[string][]*media.Sender // by Call-ID
	byID    map[string]*CallRecord
}

// New builds the topology, registers every UA, and wires media and
// bookkeeping hooks. Run workload generation with GenerateCalls, then
// drive t.Sim.
func New(cfg Config) (*Testbed, error) {
	if cfg.UAs <= 0 {
		return nil, fmt.Errorf("workload: UAs must be positive")
	}
	s := sim.New(cfg.Seed)
	n := sim.NewNetwork(s)
	t := &Testbed{
		Cfg:     cfg,
		Sim:     s,
		Net:     n,
		senders: make(map[string][]*media.Sender),
		byID:    make(map[string]*CallRecord),
	}

	// Interior nodes.
	for _, r := range []string{HubA, HubB, EdgeA, EdgeB, Cloud, VidsHost} {
		if err := n.AddRouter(r); err != nil {
			return nil, err
		}
	}
	// Hosts.
	hosts := []string{ProxyAHost, ProxyBHost, AttackerHost}
	for i := 1; i <= cfg.UAs; i++ {
		hosts = append(hosts, UAHost("a", i), UAHost("b", i))
	}
	for _, h := range hosts {
		if err := n.AddHost(h); err != nil {
			return nil, err
		}
	}

	// Links (Figure 7): LANs, DS1 uplinks, internet cloud. The
	// paper's 50 ms / 0.42% internet figures are split across the two
	// cloud attachments.
	lan := sim.LAN100BaseT
	wanJitter := cfg.WANJitter
	if wanJitter == 0 {
		wanJitter = time.Millisecond
	}
	wan := sim.LinkConfig{
		Bandwidth: sim.DS1.Bandwidth,
		PropDelay: 25 * time.Millisecond,
		LossProb:  0.0021,
		Jitter:    wanJitter,
		DupProb:   cfg.WANDupProb,
	}
	type pair struct {
		a, b string
		cfg  sim.LinkConfig
	}
	links := []pair{
		{ProxyAHost, HubA, lan},
		{HubA, EdgeA, lan},
		{EdgeA, Cloud, wan},
		{Cloud, EdgeB, wan},
		{EdgeB, VidsHost, lan},
		{VidsHost, HubB, lan},
		{ProxyBHost, HubB, lan},
		{AttackerHost, Cloud, lan},
	}
	for i := 1; i <= cfg.UAs; i++ {
		links = append(links,
			pair{UAHost("a", i), HubA, lan},
			pair{UAHost("b", i), HubB, lan})
	}
	for _, l := range links {
		if err := n.Connect(l.a, l.b, l.cfg); err != nil {
			return nil, err
		}
	}

	// vids placement.
	if cfg.VidsInline || cfg.VidsTap {
		t.IDS = ids.New(s, cfg.IDS)
		if cfg.VidsInline {
			if err := n.SetTransit(VidsHost, t.IDS.Transit()); err != nil {
				return nil, err
			}
		} else {
			n.Tap(t.IDS.Observe)
		}
	}

	// Proxies and peer ("DNS") tables.
	var err error
	if t.ProxyA, err = sip.NewProxy(n, ProxyAHost, DomainA); err != nil {
		return nil, err
	}
	if t.ProxyB, err = sip.NewProxy(n, ProxyBHost, DomainB); err != nil {
		return nil, err
	}
	t.ProxyA.AddPeer(DomainB, t.ProxyB.Addr())
	t.ProxyB.AddPeer(DomainA, t.ProxyA.Addr())
	// The proxies are stateless, so they must not send 100 Trying
	// (RFC 3261 §16.11): the 100 would cancel the caller's INVITE
	// retransmissions, and on the lossy WAN a downstream-lost INVITE
	// would then hang the call until timer B. End-to-end reliability
	// stays with the UAC's transaction timers.

	// User agents.
	for i := 1; i <= cfg.UAs; i++ {
		uaA, err := sip.NewUA(s, n, sip.Config{
			User: UAUser("a", i), Host: UAHost("a", i), Domain: DomainA,
			Proxy: t.ProxyA.Addr(), RTPPort: 20000,
			RingDelay: cfg.RingDelay, AnswerDelay: cfg.AnswerDelay, AutoAnswer: true,
			SharedSecret: cfg.AuthSecret, MaxCalls: cfg.MaxCallsPerPhone,
		})
		if err != nil {
			return nil, err
		}
		uaB, err := sip.NewUA(s, n, sip.Config{
			User: UAUser("b", i), Host: UAHost("b", i), Domain: DomainB,
			Proxy: t.ProxyB.Addr(), RTPPort: 20000,
			RingDelay: cfg.RingDelay, AnswerDelay: cfg.AnswerDelay, AutoAnswer: true,
			SharedSecret: cfg.AuthSecret, MaxCalls: cfg.MaxCallsPerPhone,
		})
		if err != nil {
			return nil, err
		}
		t.wireUA(uaA)
		t.wireUA(uaB)
		t.UAsA = append(t.UAsA, uaA)
		t.UAsB = append(t.UAsB, uaB)
		if err := uaA.Register(); err != nil {
			return nil, err
		}
		if err := uaB.Register(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// wireUA installs the media and bookkeeping hooks on one UA.
func (t *Testbed) wireUA(ua *sip.UA) {
	if t.Cfg.BusyProb > 0 {
		ua.OnIncoming = func(c *sip.Call) {
			if t.Sim.RNG().Bernoulli(t.Cfg.BusyProb) {
				_ = ua.Decline(c, sipmsg.StatusBusyHere)
			}
		}
	}
	ua.OnRinging = func(c *sip.Call) {
		if rec := t.byID[c.ID]; rec != nil && c.Outgoing {
			if d, ok := c.SetupDelay(); ok {
				rec.SetupDelay = d
			}
		}
	}
	ua.OnEstablished = func(c *sip.Call) {
		if rec := t.byID[c.ID]; rec != nil && c.Outgoing {
			rec.Established = true
			rec.EstablishedAt = t.Sim.Now()
			if t.Cfg.ReinviteProb > 0 && t.Sim.RNG().Bernoulli(t.Cfg.ReinviteProb) {
				// Refresh the session mid-call.
				t.Sim.Schedule(rec.Duration/2, func() {
					if c.State == sip.CallEstablished {
						_ = ua.Reinvite(c)
					}
				})
			}
		}
		if t.Cfg.WithMedia {
			t.startMedia(ua, c)
		}
	}
	// The local user hanging up stops this side's media immediately,
	// even though the BYE handshake (possibly with retransmissions or
	// an auth challenge) is still in flight.
	ua.OnHangingUp = func(c *sip.Call) {
		for _, snd := range t.senders[senderKey(ua, c)] {
			snd.Stop()
		}
	}
	ua.OnEnded = func(c *sip.Call) {
		// Stop only this side's senders: a spoofed BYE tears down one
		// endpoint while the other keeps transmitting, and that
		// asymmetry is exactly what vids must observe.
		for _, snd := range t.senders[senderKey(ua, c)] {
			snd.Stop()
		}
		if rec := t.byID[c.ID]; rec != nil && c.Outgoing {
			rec.EndedAt = t.Sim.Now()
			if !rec.Established {
				rec.Failed = true
			} else {
				t.Durations.Append(t.Sim.Now(), (rec.EndedAt - rec.EstablishedAt).Seconds())
			}
		}
		ua.RemoveCall(c.ID)
	}
}

// startMedia starts this side's outgoing G.729 stream and binds a
// receiver on the local media port.
func (t *Testbed) startMedia(ua *sip.UA, c *sip.Call) {
	if c.RemoteSDP == nil {
		return
	}
	audio, ok := c.RemoteSDP.FirstAudio()
	if !ok {
		return
	}
	local := sim.Addr{Host: ua.Config().Host, Port: c.LocalRTPPort}
	remote := sim.Addr{Host: c.RemoteSDP.Address, Port: audio.Port}

	if recv, err := media.NewReceiver(t.Sim, t.Net, local); err == nil {
		t.receivers = append(t.receivers, recv)
		if ua.Config().Domain == DomainA {
			t.recvA = append(t.recvA, recv)
		} else {
			t.recvB = append(t.recvB, recv)
		}
	}
	snd := media.NewSender(t.Sim, t.Net, media.StreamConfig{
		From: local, To: remote,
		SSRC: uint32(t.Sim.RNG().Uint64()),
		RTCP: true,
	})
	key := senderKey(ua, c)
	t.senders[key] = append(t.senders[key], snd)
	snd.Start()
}

// senderKey scopes media senders to one endpoint of one call.
func senderKey(ua *sip.UA, c *sip.Call) string {
	return ua.Config().Host + "|" + c.ID
}

// PlaceCall makes caller (index into UAsA) call callee (index into
// UAsB) for the given duration, recording the call.
func (t *Testbed) PlaceCall(caller, callee int, duration time.Duration) (*CallRecord, error) {
	ua := t.UAsA[caller]
	target := sipmsg.URI{User: UAUser("b", callee+1), Host: DomainB}
	call, err := ua.Invite(target)
	if err != nil {
		return nil, err
	}
	rec := &CallRecord{
		Caller: caller, Callee: callee,
		CallID:   call.ID,
		PlacedAt: t.Sim.Now(),
		Duration: duration,
		call:     call,
	}
	t.Records = append(t.Records, rec)
	t.byID[call.ID] = rec
	t.Arrivals.Append(t.Sim.Now(), 1)

	// Hang up after the intended duration once established.
	t.Sim.Schedule(duration+t.Cfg.AnswerDelay+t.Cfg.RingDelay+2*time.Second, func() {
		if call.State == sip.CallEstablished {
			_ = ua.Bye(call)
		}
	})
	return rec, nil
}

// GenerateCalls schedules the random calling pattern over the horizon:
// every A-side UA independently places calls to random B-side UAs.
func (t *Testbed) GenerateCalls(horizon time.Duration) {
	for i := range t.UAsA {
		t.scheduleNextCall(i, horizon)
	}
}

func (t *Testbed) scheduleNextCall(caller int, horizon time.Duration) {
	gap := time.Duration(t.Sim.RNG().Exp(float64(t.Cfg.MeanCallInterval)))
	next := t.Sim.Now() + gap
	if next > horizon {
		return
	}
	t.Sim.At(next, func() {
		callee := t.Sim.RNG().Intn(len(t.UAsB))
		duration := time.Duration(t.Sim.RNG().Exp(float64(t.Cfg.MeanCallDuration)))
		_, _ = t.PlaceCall(caller, callee, duration)
		t.scheduleNextCall(caller, horizon)
	})
}

// SetupDelays aggregates per-caller setup delays (Figure 9's metric);
// caller < 0 aggregates all callers.
func (t *Testbed) SetupDelays(caller int) *metrics.Summary {
	var s metrics.Summary
	for _, rec := range t.Records {
		if caller >= 0 && rec.Caller != caller {
			continue
		}
		if rec.SetupDelay > 0 {
			s.AddDuration(rec.SetupDelay)
		}
	}
	return &s
}

// SetupDelaySeries returns (time, delay-seconds) samples for a caller.
func (t *Testbed) SetupDelaySeries(caller int) *metrics.Series {
	ts := &metrics.Series{Name: fmt.Sprintf("caller-%d", caller)}
	for _, rec := range t.Records {
		if rec.Caller == caller && rec.SetupDelay > 0 {
			ts.Append(rec.PlacedAt, rec.SetupDelay.Seconds())
		}
	}
	return ts
}

// MediaQoS aggregates delay and jitter across the receivers of one
// side ("a" or "b"); side "" aggregates all.
func (t *Testbed) MediaQoS(side string) (delay *metrics.Summary, jitter *metrics.Summary) {
	delay, jitter = &metrics.Summary{}, &metrics.Summary{}
	var rs []*media.Receiver
	switch side {
	case "a":
		rs = t.recvA
	case "b":
		rs = t.recvB
	default:
		rs = t.receivers
	}
	for _, r := range rs {
		if r.Received() == 0 {
			continue
		}
		delay.Add(r.Delay.Mean())
		jitter.Add(r.Jitter)
	}
	return delay, jitter
}

// MediaMOS aggregates the E-model mean opinion score across one
// side's receivers (the paper's "perceived quality" claim, §7.4).
func (t *Testbed) MediaMOS(side string) *metrics.Summary {
	out := &metrics.Summary{}
	var rs []*media.Receiver
	switch side {
	case "a":
		rs = t.recvA
	case "b":
		rs = t.recvB
	default:
		rs = t.receivers
	}
	for _, r := range rs {
		if r.Received() > 1 {
			out.Add(r.MOS())
		}
	}
	return out
}

// WriteCDRs exports call detail records as CSV: one row per placed
// call with its timing and outcome.
func (t *Testbed) WriteCDRs(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"callID", "caller", "callee", "placedAtS",
		"setupDelayMs", "established", "durationS", "failed"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, rec := range t.Records {
		duration := 0.0
		if rec.Established && rec.EndedAt > rec.EstablishedAt {
			duration = (rec.EndedAt - rec.EstablishedAt).Seconds()
		}
		row := []string{
			rec.CallID,
			strconv.Itoa(rec.Caller),
			strconv.Itoa(rec.Callee),
			strconv.FormatFloat(rec.PlacedAt.Seconds(), 'f', 3, 64),
			strconv.FormatFloat(float64(rec.SetupDelay)/1e6, 'f', 2, 64),
			strconv.FormatBool(rec.Established),
			strconv.FormatFloat(duration, 'f', 3, 64),
			strconv.FormatBool(rec.Failed),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CallStats summarizes the run: placed, established, failed counts.
func (t *Testbed) CallStats() (placed, established, failed int) {
	for _, rec := range t.Records {
		placed++
		if rec.Established {
			established++
		}
		if rec.Failed {
			failed++
		}
	}
	return placed, established, failed
}
