package workload

import (
	"bytes"
	"encoding/csv"
	"testing"
	"time"

	"vids/internal/ids"
)

func shortConfig(inline bool) Config {
	cfg := DefaultConfig()
	cfg.UAs = 4
	cfg.VidsInline = inline
	cfg.MeanCallInterval = 30 * time.Second
	cfg.MeanCallDuration = 20 * time.Second
	cfg.WithMedia = false
	return cfg
}

func TestTestbedBuilds(t *testing.T) {
	tb, err := New(shortConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// All 8 UAs registered with their proxies.
	if _, _, regsA, _ := tb.ProxyA.Stats(); regsA != 4 {
		t.Fatalf("proxy A registrations = %d", regsA)
	}
	if _, _, regsB, _ := tb.ProxyB.Stats(); regsB != 4 {
		t.Fatalf("proxy B registrations = %d", regsB)
	}
	if tb.IDS == nil {
		t.Fatal("vids not instantiated")
	}
}

func TestSingleCallEndToEnd(t *testing.T) {
	tb, err := New(shortConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	rec, err := tb.PlaceCall(0, 1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + time.Minute); err != nil {
		t.Fatal(err)
	}
	if !rec.Established {
		t.Fatal("call not established")
	}
	if rec.SetupDelay <= 0 {
		t.Fatal("no setup delay recorded")
	}
	if rec.EndedAt <= rec.EstablishedAt {
		t.Fatalf("call did not end: est=%v end=%v", rec.EstablishedAt, rec.EndedAt)
	}
	// The realized duration tracks the intended one (plus signaling).
	realized := rec.EndedAt - rec.EstablishedAt
	if realized < 8*time.Second || realized > 20*time.Second {
		t.Fatalf("realized duration = %v, intended 10s", realized)
	}
	// A clean call must raise no alerts.
	if alerts := tb.IDS.Alerts(); len(alerts) != 0 {
		t.Fatalf("alerts on clean call: %v", alerts)
	}
}

func TestVidsInlineAddsSetupDelay(t *testing.T) {
	run := func(inline bool) time.Duration {
		tb, err := New(shortConfig(inline))
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Sim.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		rec, err := tb.PlaceCall(0, 0, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Sim.Run(tb.Sim.Now() + 30*time.Second); err != nil {
			t.Fatal(err)
		}
		if rec.SetupDelay <= 0 {
			t.Fatal("no setup delay")
		}
		return rec.SetupDelay
	}
	with := run(true)
	without := run(false)
	delta := with - without
	// The INVITE and the 180 each cross vids once: 2 x 50 ms.
	if delta < 80*time.Millisecond || delta > 120*time.Millisecond {
		t.Fatalf("vids setup-delay overhead = %v, want ~100ms (paper §7.2)", delta)
	}
}

func TestMediaQoSMeasured(t *testing.T) {
	cfg := shortConfig(true)
	cfg.WithMedia = true
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.PlaceCall(0, 0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 30*time.Second); err != nil {
		t.Fatal(err)
	}
	delayB, jitterB := tb.MediaQoS("b")
	if delayB.Count() == 0 {
		t.Fatal("no B-side media stats")
	}
	// One-way delay must be at least the 50ms cloud plus vids RTP
	// processing, and well under the 150ms latency bound the paper
	// cites.
	if d := delayB.Mean(); d < 0.050 || d > 0.150 {
		t.Fatalf("B-side mean delay = %v s", d)
	}
	if jitterB.Mean() <= 0 {
		t.Fatal("no jitter measured on jittery WAN")
	}
	// No false alerts from real media.
	if alerts := tb.IDS.Alerts(); len(alerts) != 0 {
		t.Fatalf("media raised alerts: %v", alerts)
	}
}

func TestGeneratedWorkloadRuns(t *testing.T) {
	cfg := shortConfig(true)
	cfg.Seed = 42
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 10 * time.Minute
	tb.GenerateCalls(horizon)
	if err := tb.Sim.Run(horizon + time.Minute); err != nil {
		t.Fatal(err)
	}
	placed, established, failed := tb.CallStats()
	if placed < 10 {
		t.Fatalf("only %d calls placed in 10 minutes", placed)
	}
	if established < placed*8/10 {
		t.Fatalf("established %d of %d", established, placed)
	}
	_ = failed
	if tb.Arrivals.Len() != placed {
		t.Fatalf("arrival series %d != placed %d", tb.Arrivals.Len(), placed)
	}
	// Clean workload: no alerts.
	if alerts := tb.IDS.Alerts(); len(alerts) != 0 {
		t.Fatalf("clean workload alerted: %v", alerts)
	}
	// Monitors must drain as calls finish.
	if tb.IDS.ActiveCalls() > placed/2 {
		t.Fatalf("fact base not draining: %d resident of %d placed",
			tb.IDS.ActiveCalls(), placed)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int, time.Duration) {
		cfg := shortConfig(true)
		cfg.Seed = 7
		tb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		horizon := 5 * time.Minute
		tb.GenerateCalls(horizon)
		if err := tb.Sim.Run(horizon); err != nil {
			t.Fatal(err)
		}
		placed, _, _ := tb.CallStats()
		return placed, tb.SetupDelays(-1).MeanDuration()
	}
	p1, d1 := run()
	p2, d2 := run()
	if p1 != p2 || d1 != d2 {
		t.Fatalf("runs differ: (%d, %v) vs (%d, %v)", p1, d1, p2, d2)
	}
}

func TestTapModeObservesWithoutDelay(t *testing.T) {
	cfg := shortConfig(false)
	cfg.VidsTap = true
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	rec, err := tb.PlaceCall(0, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if !rec.Established {
		t.Fatal("call failed in tap mode")
	}
	sipSeen, _, _, _ := tb.IDS.Counters()
	if sipSeen == 0 {
		t.Fatal("tap saw no SIP packets")
	}
}

func TestUAHostNaming(t *testing.T) {
	if UAHost("a", 3) != "ua3.a.example.com" {
		t.Fatalf("UAHost = %q", UAHost("a", 3))
	}
	if UAUser("b", 7) != "user7b" {
		t.Fatalf("UAUser = %q", UAUser("b", 7))
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UAs = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero UAs accepted")
	}
}

func TestSetupDelaySeriesPerCaller(t *testing.T) {
	tb, err := New(shortConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.PlaceCall(2, 0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.SetupDelaySeries(2).Len() != 1 {
		t.Fatal("caller-2 series empty")
	}
	if tb.SetupDelaySeries(0).Len() != 0 {
		t.Fatal("caller-0 series not empty")
	}
}

func TestIDSConfigPlumbed(t *testing.T) {
	cfg := shortConfig(true)
	cfg.IDS = ids.DefaultConfig()
	cfg.IDS.FloodN = 3
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.IDS.Config().FloodN != 3 {
		t.Fatalf("FloodN = %d", tb.IDS.Config().FloodN)
	}
}

func TestBusyCalleesDeclineCleanly(t *testing.T) {
	cfg := shortConfig(true)
	cfg.BusyProb = 1.0 // every call declined
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	rec, err := tb.PlaceCall(0, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + time.Minute); err != nil {
		t.Fatal(err)
	}
	if rec.Established || !rec.Failed {
		t.Fatalf("busy call record = %+v", rec)
	}
	// A declined call is legitimate protocol behavior: no alerts.
	if alerts := tb.IDS.Alerts(); len(alerts) != 0 {
		t.Fatalf("busy decline alerted: %v", alerts)
	}
	// The monitor must still be evicted (486 closes all machines).
	if tb.IDS.ActiveCalls() != 0 {
		t.Fatalf("declined call monitor leaked: %d", tb.IDS.ActiveCalls())
	}
}

func TestMixedBusyWorkloadStaysClean(t *testing.T) {
	cfg := shortConfig(true)
	cfg.BusyProb = 0.3
	cfg.Seed = 11
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 10 * time.Minute
	tb.GenerateCalls(horizon)
	if err := tb.Sim.Run(horizon + time.Minute); err != nil {
		t.Fatal(err)
	}
	placed, established, failed := tb.CallStats()
	if failed == 0 || established == 0 {
		t.Fatalf("want a mix: placed=%d established=%d failed=%d", placed, established, failed)
	}
	if alerts := tb.IDS.Alerts(); len(alerts) != 0 {
		t.Fatalf("mixed workload alerted: %v", alerts)
	}
}

func TestDuplicatedWANFramesCauseNoFalseAlarms(t *testing.T) {
	cfg := shortConfig(true)
	cfg.WithMedia = true
	cfg.WANDupProb = 0.05
	cfg.Seed = 5
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	rec, err := tb.PlaceCall(0, 0, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + time.Minute); err != nil {
		t.Fatal(err)
	}
	if !rec.Established {
		t.Fatal("call failed under duplication")
	}
	// Duplicates must be absorbed by the transaction layer and the
	// RTP trackers without tripping any detector.
	if alerts := tb.IDS.Alerts(); len(alerts) != 0 {
		t.Fatalf("duplication caused alerts: %v", alerts)
	}
}

func TestMidCallReinvitesStayClean(t *testing.T) {
	cfg := shortConfig(true)
	cfg.WithMedia = true
	cfg.ReinviteProb = 1.0
	cfg.Seed = 13
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	rec, err := tb.PlaceCall(0, 0, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + time.Minute); err != nil {
		t.Fatal(err)
	}
	if !rec.Established {
		t.Fatal("call failed")
	}
	// The legitimate mid-call re-INVITE must not trip the hijack
	// detector (known-party predicate, paper Section 3.1).
	if alerts := tb.IDS.Alerts(); len(alerts) != 0 {
		t.Fatalf("legit re-INVITE alerted: %v", alerts)
	}
}

// TestBenignSoakNoFalsePositives is the regression guard for the
// paper's zero-false-positive claim: a long media-heavy benign run
// with WAN loss, busy callees and mid-call re-INVITEs must never
// alert.
func TestBenignSoakNoFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := DefaultConfig()
	cfg.Seed = 2006
	cfg.UAs = 10
	cfg.WithMedia = true
	cfg.BusyProb = 0.1
	cfg.ReinviteProb = 0.3
	cfg.MeanCallInterval = 90 * time.Second
	cfg.MeanCallDuration = 30 * time.Second
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 10 * time.Minute
	tb.GenerateCalls(horizon)
	if err := tb.Sim.Run(horizon + 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	placed, established, _ := tb.CallStats()
	if placed < 30 || established == 0 {
		t.Fatalf("soak workload too small: placed=%d established=%d", placed, established)
	}
	if alerts := tb.IDS.Alerts(); len(alerts) != 0 {
		t.Fatalf("benign soak alerted: %v", alerts)
	}
}

func TestWriteCDRs(t *testing.T) {
	tb, err := New(shortConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.PlaceCall(0, 0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 30*time.Second); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.WriteCDRs(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // header + one call
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "callID" || rows[1][5] != "true" {
		t.Fatalf("cdr = %v", rows)
	}
}

func TestMediaQoSSidesAndMOS(t *testing.T) {
	cfg := shortConfig(true)
	cfg.WithMedia = true
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.PlaceCall(0, 0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 30*time.Second); err != nil {
		t.Fatal(err)
	}
	delayA, _ := tb.MediaQoS("a")
	delayAll, _ := tb.MediaQoS("")
	if delayA.Count() == 0 {
		t.Fatal("A-side stats empty")
	}
	if delayAll.Count() != delayA.Count()+func() int {
		d, _ := tb.MediaQoS("b")
		return d.Count()
	}() {
		t.Fatal("aggregate != A + B")
	}
	for _, side := range []string{"a", "b", ""} {
		mos := tb.MediaMOS(side)
		if mos.Count() == 0 {
			t.Fatalf("MOS empty for side %q", side)
		}
		if m := mos.Mean(); m < 3.5 || m > 4.5 {
			t.Fatalf("MOS(%q) = %.2f", side, m)
		}
	}
	if tb.Durations.Len() == 0 {
		t.Fatal("no realized durations recorded")
	}
}

func TestPlaceCallInvalidCalleeIndex(t *testing.T) {
	tb, err := New(shortConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// Callee index maps to user number; an out-of-range user simply
	// fails at the proxy (404) rather than panicking.
	rec, err := tb.PlaceCall(0, 99, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if rec.Established || !rec.Failed {
		t.Fatalf("call to unknown user: %+v", rec)
	}
}

func TestWANJitterOverride(t *testing.T) {
	cfg := shortConfig(true)
	cfg.WithMedia = true
	cfg.WANJitter = 20 * time.Millisecond
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.PlaceCall(0, 0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 30*time.Second); err != nil {
		t.Fatal(err)
	}
	_, jitter := tb.MediaQoS("b")
	// 20 ms of WAN jitter must show up clearly in the estimator.
	if jitter.Mean() < 1e-3 {
		t.Fatalf("jitter = %v with 20ms WAN jitter", jitter.Mean())
	}
}
