// Package intern provides a small bounded string-interning table keyed
// by bytes. The IDS and the engine router look up Call-IDs, media keys
// and flood destinations that arrive as byte slices; interning returns
// a stable string for repeat visitors without materializing a new
// string per packet, and without growing unboundedly under a churn of
// unique keys.
//
// The table keeps two generations of at most cap entries each. A hit
// in the current generation costs one map probe (the compiler elides
// the []byte→string conversion used as a map key); a hit in the
// previous generation is promoted. When the current generation fills,
// it becomes the previous one and the old previous generation is
// dropped — an LRU-ish bound: any key referenced within the last cap
// inserts survives rotation.
package intern

// Table is a bounded two-generation intern table. Not safe for
// concurrent use; each IDS instance and the engine router own one.
type Table struct {
	cap  int
	cur  map[string]string
	prev map[string]string
}

// New returns a table bounded at roughly 2×cap entries.
func New(cap int) *Table {
	if cap < 1 {
		cap = 1
	}
	return &Table{
		cap:  cap,
		cur:  make(map[string]string, cap),
		prev: make(map[string]string),
	}
}

// Bytes returns the interned string equal to b, inserting it on first
// sight. Lookups for known keys do not allocate.
//
//vids:noalloc per-packet Call-ID/media-key lookup
func (t *Table) Bytes(b []byte) string {
	if s, ok := t.cur[string(b)]; ok {
		return s
	}
	if s, ok := t.prev[string(b)]; ok {
		t.put(s)
		return s
	}
	s := string(b) //vids:alloc-ok first sight of a key only; later lookups hit the generation maps
	t.put(s)
	return s
}

// String returns the interned string equal to s, inserting it on
// first sight. Callers holding a transient string (a parsed Call-ID)
// use this so the retained copy is shared across the call's lifetime.
//
//vids:noalloc per-packet interning of already-materialized keys
func (t *Table) String(s string) string {
	if is, ok := t.cur[s]; ok {
		return is
	}
	if is, ok := t.prev[s]; ok {
		t.put(is)
		return is
	}
	t.put(s)
	return s
}

// Len reports the live entry count across both generations.
func (t *Table) Len() int { return len(t.cur) + len(t.prev) }

func (t *Table) put(s string) {
	if len(t.cur) >= t.cap {
		t.prev, t.cur = t.cur, t.prev
		clear(t.cur)
	}
	t.cur[s] = s //vids:alloc-ok insert on first sight; generation rotation bounds both maps
}
