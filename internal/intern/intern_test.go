package intern

import (
	"fmt"
	"testing"
)

func TestBytesReturnsStableString(t *testing.T) {
	tb := New(8)
	a := tb.Bytes([]byte("call-1"))
	b := tb.Bytes([]byte("call-1"))
	if a != "call-1" || b != "call-1" {
		t.Fatalf("got %q, %q", a, b)
	}
}

func TestStringPromotesAcrossGenerations(t *testing.T) {
	tb := New(2)
	s := tb.String("keep")
	// Fill cur to force a rotation; "keep" lands in prev.
	tb.String("a")
	tb.String("b")
	if got := tb.String("keep"); got != s {
		t.Fatalf("promotion returned %q", got)
	}
}

func TestBounded(t *testing.T) {
	tb := New(16)
	for i := 0; i < 10000; i++ {
		tb.Bytes([]byte(fmt.Sprintf("unique-%d", i)))
	}
	if tb.Len() > 2*16+1 {
		t.Fatalf("table grew unbounded: %d entries", tb.Len())
	}
}

func TestHitPathDoesNotAllocate(t *testing.T) {
	tb := New(8)
	key := []byte("media:10.0.0.1:4000")
	tb.Bytes(key)
	allocs := testing.AllocsPerRun(200, func() {
		if tb.Bytes(key) == "" {
			t.Fail()
		}
	})
	if allocs != 0 {
		t.Fatalf("hit path allocated %.1f", allocs)
	}
}
