package timerwheel

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

type rec struct {
	fired []*Timer
	ats   []time.Duration
	w     *Wheel
}

func newRec() *rec {
	r := &rec{}
	r.w = New(func(t *Timer) {
		r.fired = append(r.fired, t)
		r.ats = append(r.ats, r.w.Now())
	})
	return r
}

func TestFireAtExactDeadline(t *testing.T) {
	r := newRec()
	var tm Timer
	r.w.Arm(&tm, 250*time.Millisecond)
	r.w.Advance(249 * time.Millisecond)
	if len(r.fired) != 0 {
		t.Fatalf("fired early: %v", r.ats)
	}
	if !tm.Armed() {
		t.Fatal("timer should still be armed")
	}
	r.w.Advance(250 * time.Millisecond)
	if len(r.fired) != 1 || r.ats[0] != 250*time.Millisecond {
		t.Fatalf("fired = %v at %v", r.fired, r.ats)
	}
	if tm.Armed() || r.w.Len() != 0 {
		t.Fatal("timer should be disarmed after firing")
	}
}

func TestSameDeadlineFIFO(t *testing.T) {
	r := newRec()
	tms := make([]Timer, 5)
	for i := range tms {
		tms[i].Kind = uint8(i)
		r.w.Arm(&tms[i], time.Second)
	}
	r.w.Advance(time.Second)
	if len(r.fired) != 5 {
		t.Fatalf("fired %d of 5", len(r.fired))
	}
	for i, f := range r.fired {
		if f.Kind != uint8(i) {
			t.Fatalf("fire order %d got kind %d (want arm order)", i, f.Kind)
		}
	}
}

func TestCancelAndRearm(t *testing.T) {
	r := newRec()
	var a, b Timer
	r.w.Arm(&a, 10*time.Millisecond)
	r.w.Arm(&b, 20*time.Millisecond)
	r.w.Cancel(&a)
	if a.Armed() || r.w.Len() != 1 {
		t.Fatal("cancel did not unlink")
	}
	r.w.Arm(&b, 50*time.Millisecond) // re-arm moves the deadline
	r.w.Advance(30 * time.Millisecond)
	if len(r.fired) != 0 {
		t.Fatal("cancelled/re-armed timers fired")
	}
	r.w.Advance(50 * time.Millisecond)
	if len(r.fired) != 1 || r.fired[0] != &b || r.ats[0] != 50*time.Millisecond {
		t.Fatalf("re-armed fire = %v at %v", r.fired, r.ats)
	}
}

func TestPastDeadlineClampsToNow(t *testing.T) {
	r := newRec()
	r.w.Advance(time.Second)
	var tm Timer
	r.w.Arm(&tm, 100*time.Millisecond) // in the past
	r.w.Advance(time.Second)           // no clock movement needed
	if len(r.fired) != 1 || r.ats[0] != time.Second {
		t.Fatalf("past-deadline timer: fired=%v at %v", r.fired, r.ats)
	}
}

func TestCascadeAcrossLevels(t *testing.T) {
	// Deadlines far enough out to park on coarse levels must still
	// fire at their exact instant.
	for _, d := range []time.Duration{
		500 * time.Millisecond, // level 1
		30 * time.Second,       // level 2
		5 * time.Minute,        // level 3
		48 * time.Hour,         // level 4 span
		400 * time.Hour,        // beyond the top level: parked
	} {
		r := newRec()
		var tm Timer
		r.w.Arm(&tm, d)
		// Anchor discipline: walk Next() until the timer fires.
		for i := 0; i < 1000 && r.w.Len() > 0; i++ {
			at, ok := r.w.Next()
			if !ok {
				t.Fatalf("d=%v: Next lost the timer", d)
			}
			if at > d {
				t.Fatalf("d=%v: Next overestimated: %v", d, at)
			}
			r.w.Advance(at)
		}
		if len(r.fired) != 1 || r.ats[0] != d {
			t.Fatalf("d=%v: fired=%d at=%v", d, len(r.fired), r.ats)
		}
	}
}

func TestCallbackArmsSameInstant(t *testing.T) {
	w := New(nil)
	var second Timer
	second.Kind = 1
	count := 0
	w.fire = func(tm *Timer) {
		count++
		if tm.Kind == 0 {
			w.Arm(&second, w.Now()) // due immediately
		}
	}
	var first Timer
	w.Arm(&first, time.Millisecond)
	w.Advance(time.Millisecond)
	if count != 2 {
		t.Fatalf("chained same-instant timer: fired %d of 2", count)
	}
}

func TestCallbackCancelsSibling(t *testing.T) {
	w := New(nil)
	var a, b Timer
	fired := []*Timer{}
	w.fire = func(tm *Timer) {
		fired = append(fired, tm)
		if tm == &a {
			w.Cancel(&b) // b expired in the same batch
		}
	}
	w.Arm(&a, time.Millisecond)
	w.Arm(&b, time.Millisecond)
	w.Advance(time.Millisecond)
	if len(fired) != 1 || fired[0] != &a {
		t.Fatalf("cancelled sibling still fired: %v", fired)
	}
	if w.Len() != 0 {
		t.Fatalf("wheel not empty: %d", w.Len())
	}
}

func TestCallbackRearmsSibling(t *testing.T) {
	w := New(nil)
	var a, b Timer
	var ats []time.Duration
	var order []*Timer
	w.fire = func(tm *Timer) {
		order = append(order, tm)
		ats = append(ats, w.Now())
		if tm == &a && len(order) == 1 {
			w.Arm(&b, w.Now()+time.Second) // postpone the due sibling
		}
	}
	w.Arm(&a, time.Millisecond)
	w.Arm(&b, time.Millisecond)
	w.Advance(time.Millisecond)
	if len(order) != 1 {
		t.Fatalf("postponed sibling fired in same batch: %d fires", len(order))
	}
	w.Advance(time.Millisecond + time.Second)
	if len(order) != 2 || order[1] != &b || ats[1] != time.Millisecond+time.Second {
		t.Fatalf("postponed sibling: order=%v ats=%v", order, ats)
	}
}

// Property: for random deadlines consumed via the Next/Advance anchor
// loop, every timer fires exactly at its deadline in nondecreasing
// deadline order, and the wheel drains completely.
func TestRandomDeadlinesAnchorLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		r := newRec()
		const n = 200
		tms := make([]Timer, n)
		want := make([]time.Duration, n)
		for i := range tms {
			d := time.Duration(rng.Int63n(int64(10 * time.Minute)))
			want[i] = d
			r.w.Arm(&tms[i], d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for steps := 0; r.w.Len() > 0; steps++ {
			if steps > 100*n {
				t.Fatalf("trial %d: anchor loop did not drain (%d left)", trial, r.w.Len())
			}
			at, ok := r.w.Next()
			if !ok {
				t.Fatalf("trial %d: Next lost %d timers", trial, r.w.Len())
			}
			r.w.Advance(at)
		}
		if len(r.ats) != n {
			t.Fatalf("trial %d: fired %d of %d", trial, len(r.ats), n)
		}
		for i, at := range r.ats {
			if at != want[i] {
				t.Fatalf("trial %d: fire %d at %v, want %v", trial, i, at, want[i])
			}
			if at != r.fired[i].Deadline() {
				t.Fatalf("trial %d: fire %d at %v but deadline %v", trial, i, at, r.fired[i].Deadline())
			}
		}
	}
}

// Property: a single large Advance fires exactly the due subset.
func TestBulkAdvanceFiresDueSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		r := newRec()
		const n = 300
		tms := make([]Timer, n)
		for i := range tms {
			r.w.Arm(&tms[i], time.Duration(rng.Int63n(int64(2*time.Minute))))
		}
		cut := time.Duration(rng.Int63n(int64(2 * time.Minute)))
		r.w.Advance(cut)
		due := 0
		for i := range tms {
			if tms[i].Deadline() <= cut {
				due++
				if tms[i].Armed() {
					t.Fatalf("trial %d: due timer (d=%v cut=%v) still armed", trial, tms[i].Deadline(), cut)
				}
			} else if !tms[i].Armed() {
				t.Fatalf("trial %d: future timer (d=%v cut=%v) disarmed", trial, tms[i].Deadline(), cut)
			}
		}
		if len(r.fired) != due {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(r.fired), due)
		}
		if r.w.Len() != n-due {
			t.Fatalf("trial %d: wheel len %d, want %d", trial, r.w.Len(), n-due)
		}
	}
}

func TestAllocationFreeSteadyState(t *testing.T) {
	w := New(func(*Timer) {})
	tms := make([]Timer, 8)
	// Warm the expired buffer.
	for i := range tms {
		w.Arm(&tms[i], w.Now()+time.Duration(i)*time.Millisecond)
	}
	w.Advance(w.Now() + time.Second)
	now := w.Now()
	allocs := testing.AllocsPerRun(500, func() {
		now += 10 * time.Millisecond
		for i := range tms {
			w.Arm(&tms[i], now+time.Duration(i+1)*33*time.Millisecond)
		}
		w.Cancel(&tms[0])
		w.Advance(now)
	})
	if allocs != 0 {
		t.Fatalf("arm/cancel/advance allocated %.1f per cycle, want 0", allocs)
	}
}
