// Package timerwheel implements a hierarchical timer wheel over a
// virtual clock. It backs the IDS call-lifecycle timers — Figure 5's
// timer T, the RTCP BYE grace period, post-close eviction linger and
// the idle sweep — replacing one heap-allocated closure per
// sim.Schedule call with intrusive, pre-allocated timer records:
// arming, re-arming and cancelling are O(1) and allocation-free.
//
// Entries keep their exact deadline; slots only bucket them for cheap
// scanning. Advance(now) therefore fires timers at precisely the
// deadline they were armed for (no tick quantization), which is what
// lets the online engine keep byte-identical alert parity with the
// sequential replay. Expiry order is per-slot FIFO, levels low to
// high — under the engine's anchor discipline every batch of expiries
// shares one deadline, so this matches the simulator's
// schedule-order tie-break.
package timerwheel

import (
	"math/bits"
	"time"
)

const (
	// tickBits sizes the finest bucket at 2^20 ns ≈ 1.05 ms. Deadlines
	// stay exact; the tick only bounds how many entries share a slot.
	tickBits  = 20
	slotBits  = 6
	numSlots  = 1 << slotBits
	slotMask  = numSlots - 1
	numLevels = 5 // span 2^(20+5·6) ns ≈ 13 days of virtual time
)

func shift(level int) uint { return uint(tickBits + level*slotBits) }

// Timer is one schedulable entry. Embed it in the owning object (a
// call monitor, a flood window) so arming never allocates; the public
// fields let one wheel-wide callback dispatch without closures. The
// zero value is an unarmed timer.
type Timer struct {
	deadline time.Duration
	next     *Timer
	prev     *Timer
	wheel    *Wheel // non-nil while armed
	level    uint8
	slot     uint8
	// expiring marks a timer unlinked by collect but not yet fired, so
	// an expiry callback cancelling (or re-arming) a sibling timer in
	// the same batch reliably suppresses its pending fire.
	expiring bool

	// Kind discriminates what the expiry means; Owner points back at
	// the owning object; Gen snapshots the owner's generation counter
	// at arm time so an expiry for a recycled owner can be ignored.
	Kind  uint8
	Gen   uint32
	Owner any
}

// Deadline reports the armed deadline (meaningless when unarmed).
func (t *Timer) Deadline() time.Duration { return t.deadline }

// Armed reports whether the timer is currently queued on a wheel.
func (t *Timer) Armed() bool { return t.wheel != nil }

type slotList struct {
	head *Timer
	tail *Timer
}

// Wheel is a hierarchical timer wheel. Not safe for concurrent use;
// each engine shard drives its own wheel from its virtual clock.
type Wheel struct {
	fire     func(*Timer)
	now      time.Duration
	slots    [numLevels][numSlots]slotList
	occupied [numLevels]uint64
	count    int
	expired  []*Timer // reusable collect buffer
}

// New returns an empty wheel whose clock starts at zero. fire is
// invoked for every expired timer during Advance.
func New(fire func(*Timer)) *Wheel {
	return &Wheel{fire: fire}
}

// Now reports the wheel's clock (the instant of the last Advance).
func (w *Wheel) Now() time.Duration { return w.now }

// Len reports how many timers are armed.
func (w *Wheel) Len() int { return w.count }

// Arm schedules t to fire at the absolute virtual deadline. Re-arming
// a pending timer moves it. Deadlines in the past are clamped to the
// present and fire on the next Advance.
//
//vids:noalloc armed on every dialog transition; intrusive links only
func (w *Wheel) Arm(t *Timer, deadline time.Duration) {
	if t.wheel != nil {
		t.wheel.unlink(t)
	}
	if deadline < w.now {
		deadline = w.now
	}
	t.deadline = deadline
	w.place(t)
	w.count++
}

// Cancel removes t from the wheel (or suppresses its pending fire
// when it already expired in the current Advance batch).
//
//vids:noalloc cancelled on every dialog transition; intrusive links only
func (w *Wheel) Cancel(t *Timer) {
	t.expiring = false
	if t.wheel == nil {
		return
	}
	t.wheel.unlink(t)
}

// place links t into the slot covering its deadline, choosing the
// lowest level whose 64-slot window (relative to w.now) contains it.
func (w *Wheel) place(t *Timer) {
	delta := uint64(t.deadline - w.now)
	level := numLevels - 1
	for l := 0; l < numLevels; l++ {
		if delta>>shift(l) < numSlots {
			level = l
			break
		}
	}
	// Deadlines beyond the top level's span park in its furthest
	// bucket; they cascade toward exactness as the clock approaches.
	pos := uint64(t.deadline)
	if level == numLevels-1 {
		if max := uint64(w.now) + (uint64(numSlots)<<shift(level) - 1); pos > max {
			pos = max
		}
	}
	slot := (pos >> shift(level)) & slotMask
	t.level = uint8(level)
	t.slot = uint8(slot)
	t.wheel = w
	ls := &w.slots[level][slot]
	t.prev = ls.tail
	t.next = nil
	if ls.tail != nil {
		ls.tail.next = t
	} else {
		ls.head = t
	}
	ls.tail = t
	w.occupied[level] |= 1 << slot
}

// unlink removes t from its slot list and clears its armed marker.
func (w *Wheel) unlink(t *Timer) {
	ls := &w.slots[t.level][t.slot]
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		ls.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		ls.tail = t.prev
	}
	if ls.head == nil {
		w.occupied[t.level] &^= 1 << uint64(t.slot)
	}
	t.next, t.prev, t.wheel = nil, nil, nil
	w.count--
}

// Next reports the earliest pending deadline. The estimate errs only
// toward earliness (a parked far-future entry may report its bucket's
// horizon); callers re-arming a wake-up off Next never sleep past a
// real deadline.
func (w *Wheel) Next() (time.Duration, bool) {
	best := time.Duration(0)
	found := false
	for l := 0; l < numLevels; l++ {
		occ := w.occupied[l]
		if occ == 0 {
			continue
		}
		cur := int((uint64(w.now) >> shift(l)) & slotMask)
		rot := bits.RotateLeft64(occ, -cur)
		slot := (cur + bits.TrailingZeros64(rot)) & slotMask
		for t := w.slots[l][slot].head; t != nil; t = t.next {
			if !found || t.deadline < best {
				best, found = t.deadline, true
			}
		}
	}
	return best, found
}

// Advance moves the clock to now and fires every timer whose deadline
// is at or before it, including timers armed by expiry callbacks for
// instants at or before now. The clock never moves backwards.
//
//vids:noalloc runs on the timer drain of every simulated instant
func (w *Wheel) Advance(now time.Duration) {
	if now < w.now {
		return
	}
	for {
		w.collect(now)
		if len(w.expired) == 0 {
			break
		}
		for i, t := range w.expired {
			w.expired[i] = nil
			if !t.expiring || t.wheel != nil {
				// Cancelled or re-armed by an earlier callback in
				// this batch.
				t.expiring = false
				continue
			}
			t.expiring = false
			w.fire(t) //vids:alloc-ok expiry dispatch; the IDS fire path is its own noalloc root
		}
		w.expired = w.expired[:0]
	}
}

// collect unlinks every due timer into w.expired (slot FIFO order,
// levels low to high), cascades surviving coarse entries toward finer
// levels and advances the clock.
func (w *Wheel) collect(now time.Duration) {
	w.expired = w.expired[:0]
	for l := 0; l < numLevels; l++ {
		if w.occupied[l] == 0 {
			continue
		}
		sh := shift(l)
		cur := int64(uint64(w.now) >> sh)
		end := int64(uint64(now) >> sh)
		if end-cur >= numSlots {
			cur = end - numSlots + 1
		}
		for tk := cur; tk <= end; tk++ {
			slot := tk & slotMask
			if w.occupied[l]&(1<<slot) == 0 {
				continue
			}
			t := w.slots[l][slot].head
			for t != nil {
				next := t.next
				if t.deadline <= now {
					w.unlink(t)
					t.expiring = true
					w.expired = append(w.expired, t)
				} else if l > 0 {
					// Survivor in a passed (or current) coarse
					// bucket: re-place relative to the new now so it
					// lands on a finer level.
					w.unlink(t)
					saved := w.now
					w.now = now
					w.place(t)
					w.now = saved
					w.count++
				}
				t = next
			}
		}
	}
	w.now = now
}
