// Package rtp models Real-time Transport Protocol packets (RFC 1889,
// the version cited by the paper). vids needs the header fields that
// drive the RTP protocol state machine and the media-spam detector:
// payload type, sequence number, timestamp and the SSRC identifier
// (paper Sections 3.2 and 6).
package rtp

import (
	"encoding/binary"
	"fmt"
)

// Version is the RTP version carried in every packet.
const Version = 2

// HeaderSize is the fixed RTP header size without CSRC entries.
const HeaderSize = 12

// Packet is a parsed RTP packet.
type Packet struct {
	PayloadType uint8
	Marker      bool
	Sequence    uint16
	Timestamp   uint32
	SSRC        uint32
	CSRC        []uint32
	Payload     []byte
}

// Marshal encodes the packet into wire form.
func (p *Packet) Marshal() ([]byte, error) {
	if p.PayloadType > 127 {
		return nil, fmt.Errorf("rtp: payload type %d out of range", p.PayloadType)
	}
	if len(p.CSRC) > 15 {
		return nil, fmt.Errorf("rtp: %d CSRC entries exceeds 15", len(p.CSRC))
	}
	buf := make([]byte, HeaderSize+4*len(p.CSRC)+len(p.Payload))
	buf[0] = Version<<6 | uint8(len(p.CSRC))
	buf[1] = p.PayloadType
	if p.Marker {
		buf[1] |= 0x80
	}
	binary.BigEndian.PutUint16(buf[2:], p.Sequence)
	binary.BigEndian.PutUint32(buf[4:], p.Timestamp)
	binary.BigEndian.PutUint32(buf[8:], p.SSRC)
	off := HeaderSize
	for _, c := range p.CSRC {
		binary.BigEndian.PutUint32(buf[off:], c)
		off += 4
	}
	copy(buf[off:], p.Payload)
	return buf, nil
}

// Parse decodes an RTP packet from wire form. The returned packet's
// Payload aliases data; see ParseInto.
func Parse(data []byte) (*Packet, error) {
	p := &Packet{}
	if err := ParseInto(p, data); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseInto decodes an RTP packet from wire form into p, overwriting
// every field and reusing p's CSRC backing array, so a caller-owned
// scratch Packet makes repeated parsing allocation-free. Payload (and
// CSRC capacity aside) alias data: the caller must not reuse or
// mutate the buffer while the packet is live. On error p is left in
// an unspecified state.
//
//vids:noalloc per-packet RTP decode into caller-owned scratch
//vids:nopanic decodes raw network bytes
func ParseInto(p *Packet, data []byte) error {
	if len(data) < HeaderSize {
		return fmt.Errorf("rtp: packet too short (%d bytes)", len(data)) //vids:alloc-ok error path: malformed packet aborts processing
	}
	if v := data[0] >> 6; v != Version {
		return fmt.Errorf("rtp: unsupported version %d", v) //vids:alloc-ok error path: malformed packet aborts processing
	}
	cc := int(data[0] & 0x0F)
	if len(data) < HeaderSize+4*cc {
		return fmt.Errorf("rtp: truncated CSRC list") //vids:alloc-ok error path: malformed packet aborts processing
	}
	p.Marker = data[1]&0x80 != 0
	p.PayloadType = data[1] & 0x7F
	p.Sequence = binary.BigEndian.Uint16(data[2:])
	p.Timestamp = binary.BigEndian.Uint32(data[4:])
	p.SSRC = binary.BigEndian.Uint32(data[8:])
	p.CSRC = p.CSRC[:0]
	// Walk the CSRC list by re-slicing a window whose bounds the
	// length guard above established, instead of open-coding offsets —
	// every step here is machine-checkably in bounds.
	csrc := data[HeaderSize : HeaderSize+4*cc]
	for len(csrc) >= 4 {
		p.CSRC = append(p.CSRC, binary.BigEndian.Uint32(csrc))
		csrc = csrc[4:]
	}
	p.Payload = nil
	if HeaderSize+4*cc < len(data) {
		p.Payload = data[HeaderSize+4*cc:]
	}
	return nil
}

// ParseHeaderInto decodes only the cleartext RTP header into p,
// leaving Payload nil. This is the SRTP-degraded path (RFC 3711): SRTP
// encrypts the payload and appends an authentication tag but leaves
// the header — version, payload type, sequence, timestamp, SSRC, CSRC
// — in the clear, so the RTP protocol state machine keeps running on
// encrypted media. The trailing ciphertext and auth tag are ignored,
// not validated.
//
//vids:noalloc per-packet SRTP header decode into caller-owned scratch
//vids:nopanic decodes raw network bytes
func ParseHeaderInto(p *Packet, data []byte) error {
	if len(data) < HeaderSize {
		return fmt.Errorf("rtp: packet too short (%d bytes)", len(data)) //vids:alloc-ok error path: malformed packet aborts processing
	}
	if v := data[0] >> 6; v != Version {
		return fmt.Errorf("rtp: unsupported version %d", v) //vids:alloc-ok error path: malformed packet aborts processing
	}
	cc := int(data[0] & 0x0F)
	if len(data) < HeaderSize+4*cc {
		return fmt.Errorf("rtp: truncated CSRC list") //vids:alloc-ok error path: malformed packet aborts processing
	}
	p.Marker = data[1]&0x80 != 0
	p.PayloadType = data[1] & 0x7F
	p.Sequence = binary.BigEndian.Uint16(data[2:])
	p.Timestamp = binary.BigEndian.Uint32(data[4:])
	p.SSRC = binary.BigEndian.Uint32(data[8:])
	p.CSRC = p.CSRC[:0]
	csrc := data[HeaderSize : HeaderSize+4*cc]
	for len(csrc) >= 4 {
		p.CSRC = append(p.CSRC, binary.BigEndian.Uint32(csrc))
		csrc = csrc[4:]
	}
	p.Payload = nil
	return nil
}

// WireSize reports the encoded size in bytes.
func (p *Packet) WireSize() int {
	return HeaderSize + 4*len(p.CSRC) + len(p.Payload)
}

// SeqLess reports whether sequence number a precedes b, accounting for
// 16-bit wraparound (RFC 1889 Appendix A.1 style comparison).
func SeqLess(a, b uint16) bool {
	return a != b && b-a < 0x8000
}

// SeqGap returns the forward distance from a to b in sequence-number
// space (how many increments take a to b, modulo 2^16).
func SeqGap(a, b uint16) uint16 { return b - a }

// TimestampGap returns the forward distance from a to b in timestamp
// space, modulo 2^32.
func TimestampGap(a, b uint32) uint32 { return b - a }

// WindowOK is the media-spam window comparator shared by the EFSM gap
// guards (both backends, both spam machines) and the fast-path cache:
// given the stream's high-water pair (prevSeq, prevTS), a packet
// bearing (seq, ts) is in-profile when it sits at or behind the
// high-water mark (a duplicate or tolerated reordering — including
// reordering across the 65535→0 wrap) or advances it by at most
// maxSeqGap sequence numbers and maxTSGap timestamp units.
//
//vids:noalloc per-packet gap guard shared by EFSM guards and fastpath
func WindowOK(prevSeq, seq uint16, prevTS, ts uint32, maxSeqGap uint16, maxTSGap uint32) bool {
	if !SeqLess(prevSeq, seq) && seq != prevSeq {
		// Strictly behind the high-water mark: reordered delivery of a
		// packet the window already admitted.
		return true
	}
	return SeqGap(prevSeq, seq) <= maxSeqGap && TimestampGap(prevTS, ts) <= maxTSGap
}

// WindowAdvance returns the high-water pair after accepting (seq, ts):
// it advances only when seq is ahead of prevSeq in wraparound order.
// A tolerated reordered packet must not rewind the window — otherwise
// the next in-order packet is measured against the stale mark and a
// legitimate stream is flagged as a gap, worst across the 65535→0
// wrap where the rewound distance looks like a ~64k jump.
//
//vids:noalloc per-packet window bookkeeping shared by EFSM actions and fastpath
func WindowAdvance(prevSeq, seq uint16, prevTS, ts uint32) (uint16, uint32) {
	if SeqLess(prevSeq, seq) {
		return seq, ts
	}
	return prevSeq, prevTS
}

// ExtractLite pulls the four fast-path fields out of an RTP datagram
// without materializing a Packet: the per-flow validation cache needs
// only SSRC, payload type, sequence and timestamp to decide whether a
// packet is in-profile. Malformed datagrams (short, wrong version,
// truncated CSRC list) return ok=false and must take the slow path,
// which reports the parse error exactly as before.
//
//vids:noalloc fast-path field extraction, no header materialization
//vids:nopanic decodes raw network bytes
func ExtractLite(data []byte) (ssrc uint32, pt uint8, seq uint16, ts uint32, ok bool) {
	if len(data) < HeaderSize || data[0]>>6 != Version {
		return 0, 0, 0, 0, false
	}
	if len(data) < HeaderSize+4*int(data[0]&0x0F) {
		return 0, 0, 0, 0, false
	}
	return binary.BigEndian.Uint32(data[8:]),
		data[1] & 0x7F,
		binary.BigEndian.Uint16(data[2:]),
		binary.BigEndian.Uint32(data[4:]),
		true
}
