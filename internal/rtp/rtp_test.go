package rtp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMarshalParseRoundTrip(t *testing.T) {
	p := &Packet{
		PayloadType: 18,
		Marker:      true,
		Sequence:    0xBEEF,
		Timestamp:   0xDEADBEEF,
		SSRC:        0x12345678,
		CSRC:        []uint32{1, 2, 3},
		Payload:     []byte("0123456789"),
	}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != p.WireSize() {
		t.Fatalf("len = %d, WireSize = %d", len(raw), p.WireSize())
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.PayloadType != p.PayloadType || got.Marker != p.Marker ||
		got.Sequence != p.Sequence || got.Timestamp != p.Timestamp ||
		got.SSRC != p.SSRC {
		t.Fatalf("round-trip = %+v, want %+v", got, p)
	}
	if len(got.CSRC) != 3 || got.CSRC[0] != 1 || got.CSRC[2] != 3 {
		t.Fatalf("csrc = %v", got.CSRC)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestMarshalErrors(t *testing.T) {
	if _, err := (&Packet{PayloadType: 200}).Marshal(); err == nil {
		t.Fatal("payload type > 127 accepted")
	}
	if _, err := (&Packet{CSRC: make([]uint32, 16)}).Marshal(); err == nil {
		t.Fatal("16 CSRC entries accepted")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(make([]byte, 5)); err == nil {
		t.Fatal("short packet accepted")
	}
	bad := make([]byte, HeaderSize)
	bad[0] = 1 << 6 // version 1
	if _, err := Parse(bad); err == nil {
		t.Fatal("version 1 accepted")
	}
	trunc := make([]byte, HeaderSize)
	trunc[0] = Version<<6 | 2 // claims 2 CSRC entries, none present
	if _, err := Parse(trunc); err == nil {
		t.Fatal("truncated CSRC list accepted")
	}
}

func TestParseEmptyPayload(t *testing.T) {
	p := &Packet{PayloadType: 0, Sequence: 1, Timestamp: 160, SSRC: 9}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload = %v, want empty", got.Payload)
	}
}

func TestSeqLess(t *testing.T) {
	tests := []struct {
		a, b uint16
		want bool
	}{
		{1, 2, true},
		{2, 1, false},
		{5, 5, false},
		{0xFFFF, 0, true},  // wraparound
		{0, 0xFFFF, false}, // reverse wraparound
		{0, 0x7FFF, true},
		{0, 0x8000, false}, // exactly half the space: not "less"
	}
	for _, tt := range tests {
		if got := SeqLess(tt.a, tt.b); got != tt.want {
			t.Fatalf("SeqLess(%d, %d) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSeqGap(t *testing.T) {
	if g := SeqGap(10, 15); g != 5 {
		t.Fatalf("gap = %d, want 5", g)
	}
	if g := SeqGap(0xFFFE, 2); g != 4 {
		t.Fatalf("wraparound gap = %d, want 4", g)
	}
}

func TestTimestampGap(t *testing.T) {
	if g := TimestampGap(100, 260); g != 160 {
		t.Fatalf("gap = %d, want 160", g)
	}
	if g := TimestampGap(0xFFFFFF00, 0x60); g != 0x160 {
		t.Fatalf("wraparound gap = %#x, want 0x160", g)
	}
}

// Property: marshal/parse identity over arbitrary header fields.
func TestRoundTripProperty(t *testing.T) {
	prop := func(pt uint8, marker bool, seq uint16, ts, ssrc uint32, payload []byte) bool {
		p := &Packet{
			PayloadType: pt % 128,
			Marker:      marker,
			Sequence:    seq,
			Timestamp:   ts,
			SSRC:        ssrc,
			Payload:     payload,
		}
		raw, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := Parse(raw)
		if err != nil {
			return false
		}
		return got.PayloadType == p.PayloadType &&
			got.Marker == p.Marker &&
			got.Sequence == p.Sequence &&
			got.Timestamp == p.Timestamp &&
			got.SSRC == p.SSRC &&
			bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: SeqLess is a strict ordering within a half-space window —
// for gaps below 2^15, a < a+gap and !(a+gap < a).
func TestSeqLessWindowProperty(t *testing.T) {
	prop := func(a uint16, gapRaw uint16) bool {
		gap := gapRaw%0x7FFE + 1 // 1..0x7FFE
		b := a + gap
		return SeqLess(a, b) && !SeqLess(b, a) && !SeqLess(a, a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
