package rtp

import (
	"testing"
	"testing/quick"
)

func TestRTCPSenderReportRoundTrip(t *testing.T) {
	p := &RTCP{
		Type:        RTCPSenderReport,
		SSRC:        0xAABBCCDD,
		NTPTime:     0x0102030405060708,
		RTPTime:     4000,
		PacketCount: 250,
		OctetCount:  5000,
		Reports: []ReceptionReport{{
			SSRC: 0x11223344, FractionLost: 12, TotalLost: 34,
			HighestSeq: 5678, Jitter: 90,
		}},
	}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw)%4 != 0 {
		t.Fatalf("RTCP not word-aligned: %d bytes", len(raw))
	}
	got, err := ParseRTCP(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != RTCPSenderReport || got.SSRC != p.SSRC {
		t.Fatalf("header = %+v", got)
	}
	if got.NTPTime != p.NTPTime || got.RTPTime != p.RTPTime ||
		got.PacketCount != p.PacketCount || got.OctetCount != p.OctetCount {
		t.Fatalf("sender info = %+v", got)
	}
	if len(got.Reports) != 1 || got.Reports[0] != p.Reports[0] {
		t.Fatalf("reports = %+v", got.Reports)
	}
}

func TestRTCPReceiverReportRoundTrip(t *testing.T) {
	p := &RTCP{
		Type: RTCPReceiverReport,
		SSRC: 7,
		Reports: []ReceptionReport{
			{SSRC: 1, FractionLost: 3, TotalLost: 100, HighestSeq: 200, Jitter: 5},
			{SSRC: 2, FractionLost: 0, TotalLost: 0, HighestSeq: 900, Jitter: 1},
		},
	}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRTCP(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Reports) != 2 || got.Reports[1].HighestSeq != 900 {
		t.Fatalf("reports = %+v", got.Reports)
	}
}

func TestRTCPByeRoundTrip(t *testing.T) {
	p := &RTCP{Type: RTCPBye, SSRC: 0xCAFEBABE}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRTCP(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != RTCPBye || got.SSRC != 0xCAFEBABE {
		t.Fatalf("bye = %+v", got)
	}
}

func TestRTCPErrors(t *testing.T) {
	if _, err := (&RTCP{Type: 99}).Marshal(); err == nil {
		t.Fatal("unknown type marshaled")
	}
	if _, err := (&RTCP{Type: RTCPReceiverReport,
		Reports: make([]ReceptionReport, 32)}).Marshal(); err == nil {
		t.Fatal("32 reports accepted")
	}
	if _, err := ParseRTCP([]byte{0x80, 200}); err == nil {
		t.Fatal("short packet accepted")
	}
	bad := make([]byte, 8)
	bad[0] = 1 << 6
	if _, err := ParseRTCP(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Length field pointing past the buffer.
	lying := []byte{0x80, 200, 0xFF, 0xFF, 0, 0, 0, 1}
	if _, err := ParseRTCP(lying); err == nil {
		t.Fatal("lying length accepted")
	}
	// SR that is too short for its claimed reports.
	short := []byte{0x81, 200, 0x00, 0x06, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	if _, err := ParseRTCP(short); err == nil {
		t.Fatal("truncated SR accepted")
	}
}

// Property: round-trip identity for sender reports over arbitrary
// field values.
func TestRTCPRoundTripProperty(t *testing.T) {
	prop := func(ssrc, rtpTime, pktCount, octets uint32, ntp uint64,
		repSSRC, seq, jitter uint32, frac uint8) bool {
		p := &RTCP{
			Type: RTCPSenderReport, SSRC: ssrc, NTPTime: ntp,
			RTPTime: rtpTime, PacketCount: pktCount, OctetCount: octets,
			Reports: []ReceptionReport{{
				SSRC: repSSRC, FractionLost: frac,
				TotalLost: jitter % (1 << 24), HighestSeq: seq, Jitter: jitter,
			}},
		}
		raw, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := ParseRTCP(raw)
		if err != nil {
			return false
		}
		return got.SSRC == p.SSRC && got.NTPTime == p.NTPTime &&
			got.RTPTime == p.RTPTime && len(got.Reports) == 1 &&
			got.Reports[0] == p.Reports[0]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ParseRTCP never panics on arbitrary bytes.
func TestParseRTCPTotal(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseRTCP(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseRTCPLyingShortLength(t *testing.T) {
	// Regression from fuzzing: a length field of 0 (4 bytes total)
	// must not panic the SSRC read.
	in := []byte{0xaf, 0x8e, 0x00, 0x00, 0x19, 0x22, 0x0f, 0x3e}
	if _, err := ParseRTCP(in); err == nil {
		t.Fatal("undersized length field accepted")
	}
}
