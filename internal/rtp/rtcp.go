package rtp

import (
	"encoding/binary"
	"fmt"
)

// RTCP packet types (RFC 3550 §12.1). The media engine emits sender
// and receiver reports; BYE ends participation in a session — and an
// *injected* RTCP BYE is a media-plane teardown attack vids flags
// when the signaling plane shows the call still up.
const (
	RTCPSenderReport   = 200
	RTCPReceiverReport = 201
	RTCPBye            = 203
)

// rtcpHeaderSize is the fixed part of every RTCP packet.
const rtcpHeaderSize = 4

// ReceptionReport is one reception report block (RFC 3550 §6.4.1).
type ReceptionReport struct {
	SSRC         uint32 // source this report is about
	FractionLost uint8
	TotalLost    uint32 // 24 bits on the wire
	HighestSeq   uint32
	Jitter       uint32
}

const receptionReportSize = 20

// RTCP is a parsed RTCP packet. Exactly one of the payload sections
// is meaningful depending on Type.
type RTCP struct {
	Type uint8
	SSRC uint32 // sender of this RTCP packet

	// Sender report fields (Type == RTCPSenderReport).
	NTPTime     uint64
	RTPTime     uint32
	PacketCount uint32
	OctetCount  uint32

	// Reception reports (sender and receiver reports).
	Reports []ReceptionReport
}

// Marshal encodes the packet.
func (p *RTCP) Marshal() ([]byte, error) {
	var body []byte
	switch p.Type {
	case RTCPSenderReport:
		body = make([]byte, 4+20+len(p.Reports)*receptionReportSize)
		binary.BigEndian.PutUint32(body[0:], p.SSRC)
		binary.BigEndian.PutUint64(body[4:], p.NTPTime)
		binary.BigEndian.PutUint32(body[12:], p.RTPTime)
		binary.BigEndian.PutUint32(body[16:], p.PacketCount)
		binary.BigEndian.PutUint32(body[20:], p.OctetCount)
		marshalReports(body[24:], p.Reports)
	case RTCPReceiverReport:
		body = make([]byte, 4+len(p.Reports)*receptionReportSize)
		binary.BigEndian.PutUint32(body[0:], p.SSRC)
		marshalReports(body[4:], p.Reports)
	case RTCPBye:
		body = make([]byte, 4)
		binary.BigEndian.PutUint32(body[0:], p.SSRC)
	default:
		return nil, fmt.Errorf("rtp: unsupported RTCP type %d", p.Type)
	}
	if len(body)%4 != 0 {
		return nil, fmt.Errorf("rtp: RTCP body not 32-bit aligned")
	}
	if len(p.Reports) > 31 {
		return nil, fmt.Errorf("rtp: %d reception reports exceeds 31", len(p.Reports))
	}

	buf := make([]byte, rtcpHeaderSize+len(body))
	buf[0] = Version<<6 | uint8(len(p.Reports))
	if p.Type == RTCPBye {
		buf[0] = Version<<6 | 1 // source count
	}
	buf[1] = p.Type
	binary.BigEndian.PutUint16(buf[2:], uint16(len(buf)/4-1)) // length in words - 1
	copy(buf[rtcpHeaderSize:], body)
	return buf, nil
}

func marshalReports(dst []byte, reports []ReceptionReport) {
	for i, r := range reports {
		off := i * receptionReportSize
		binary.BigEndian.PutUint32(dst[off:], r.SSRC)
		dst[off+4] = r.FractionLost
		dst[off+5] = byte(r.TotalLost >> 16)
		dst[off+6] = byte(r.TotalLost >> 8)
		dst[off+7] = byte(r.TotalLost)
		binary.BigEndian.PutUint32(dst[off+8:], r.HighestSeq)
		binary.BigEndian.PutUint32(dst[off+12:], r.Jitter)
		// Last 4 bytes (LSR/DLSR) left zero: the simulator has no
		// NTP round-trip estimation.
	}
}

// ParseRTCP decodes an RTCP packet.
func ParseRTCP(data []byte) (*RTCP, error) {
	p := &RTCP{}
	if err := ParseRTCPInto(p, data); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseRTCPInto decodes an RTCP packet into p, overwriting every
// field and reusing p's Reports backing array, so a caller-owned
// scratch RTCP makes repeated parsing allocation-free. On error p is
// left in an unspecified state.
//
//vids:noalloc per-packet RTCP decode into caller-owned scratch
//vids:nopanic decodes raw network bytes
func ParseRTCPInto(p *RTCP, data []byte) error {
	if len(data) < rtcpHeaderSize+4 {
		return fmt.Errorf("rtp: RTCP packet too short (%d bytes)", len(data)) //vids:alloc-ok error path: malformed packet aborts processing
	}
	if v := data[0] >> 6; v != Version {
		return fmt.Errorf("rtp: unsupported RTCP version %d", v) //vids:alloc-ok error path: malformed packet aborts processing
	}
	count := int(data[0] & 0x1F)
	*p = RTCP{Type: data[1], Reports: p.Reports[:0]}
	wantLen := (int(binary.BigEndian.Uint16(data[2:])) + 1) * 4
	if wantLen > len(data) {
		return fmt.Errorf("rtp: RTCP length field %d exceeds packet %d", wantLen, len(data)) //vids:alloc-ok error path: malformed packet aborts processing
	}
	if wantLen < rtcpHeaderSize+4 {
		return fmt.Errorf("rtp: RTCP length field %d too small", wantLen) //vids:alloc-ok error path: malformed packet aborts processing
	}
	body := data[rtcpHeaderSize:wantLen]
	p.SSRC = binary.BigEndian.Uint32(body[0:])

	switch p.Type {
	case RTCPSenderReport:
		if len(body) < 24+count*receptionReportSize {
			return fmt.Errorf("rtp: truncated sender report") //vids:alloc-ok error path: malformed packet aborts processing
		}
		p.NTPTime = binary.BigEndian.Uint64(body[4:])
		p.RTPTime = binary.BigEndian.Uint32(body[12:])
		p.PacketCount = binary.BigEndian.Uint32(body[16:])
		p.OctetCount = binary.BigEndian.Uint32(body[20:])
		var ok bool
		p.Reports, ok = parseReportsInto(p.Reports, body[24:], count)
		if !ok {
			return fmt.Errorf("rtp: truncated reception reports") //vids:alloc-ok error path: malformed packet aborts processing
		}
	case RTCPReceiverReport:
		if len(body) < 4+count*receptionReportSize {
			return fmt.Errorf("rtp: truncated receiver report") //vids:alloc-ok error path: malformed packet aborts processing
		}
		var ok bool
		p.Reports, ok = parseReportsInto(p.Reports, body[4:], count)
		if !ok {
			return fmt.Errorf("rtp: truncated reception reports") //vids:alloc-ok error path: malformed packet aborts processing
		}
	case RTCPBye:
		// SSRC already read; additional sources ignored.
	default:
		return fmt.Errorf("rtp: unsupported RTCP type %d", p.Type) //vids:alloc-ok error path: malformed packet aborts processing
	}
	return nil
}

func parseReportsInto(out []ReceptionReport, data []byte, count int) ([]ReceptionReport, bool) {
	if len(data) < count*receptionReportSize {
		return nil, false
	}
	// The per-iteration length check re-establishes the bound the
	// nopanic gate needs after each re-slice; the aggregate check above
	// already guaranteed it, so it never fails.
	for ; count > 0; count-- {
		if len(data) < receptionReportSize {
			return nil, false
		}
		out = append(out, ReceptionReport{
			SSRC:         binary.BigEndian.Uint32(data),
			FractionLost: data[4],
			TotalLost: uint32(data[5])<<16 |
				uint32(data[6])<<8 | uint32(data[7]),
			HighestSeq: binary.BigEndian.Uint32(data[8:]),
			Jitter:     binary.BigEndian.Uint32(data[12:]),
		})
		data = data[receptionReportSize:]
	}
	return out, true
}
