package rtp

import "testing"

// The window comparator is shared by the media-spam gap guards (both
// EFSM backends, both spam machines) and the fast-path cache, so its
// wraparound behavior is pinned here once, table-driven, with the
// 65535→0 wrap and reordering across the wrap called out explicitly.
func TestWindowOK(t *testing.T) {
	const maxSeq = 50
	const maxTS = 8000
	cases := []struct {
		name         string
		prevSeq, seq uint16
		prevTS, ts   uint32
		ok           bool
	}{
		{"in-order next", 100, 101, 160, 320, true},
		{"duplicate", 100, 100, 160, 160, true},
		{"reordered behind", 100, 97, 800, 320, true},
		{"far behind is reorder not jump", 100, 60, 8000, 1600, true},
		{"at gap threshold", 100, 150, 0, 8000, true},
		{"past gap threshold", 100, 151, 0, 8000, false},
		{"ts jump alone", 100, 101, 0, 8001, false},
		{"seq jump alone", 100, 151, 0, 160, false},

		// 65535→0 wraparound: the increment crosses zero and must be
		// measured modulo 2^16, not as a 64k rewind.
		{"wrap in-order", 65535, 0, 160, 320, true},
		{"wrap small jump", 65530, 19, 0, 8000, true},
		{"wrap at threshold", 65535, 49, 0, 8000, true},
		{"wrap past threshold", 65535, 50, 0, 8000, false},

		// Reordering across the wrap: high-water already wrapped to a
		// low value, a pre-wrap straggler arrives late. It is behind
		// the mark in wraparound order and must be tolerated, not read
		// as a ~64k forward jump.
		{"straggler across wrap", 2, 65534, 1120, 320, true},
		{"straggler at wrap edge", 0, 65535, 160, 0, true},

		// Duplicates still honor the timestamp bound (same seq, wild
		// timestamp — spoofed stream reusing a sequence number).
		{"duplicate with ts jump", 100, 100, 0, 8001, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := WindowOK(tc.prevSeq, tc.seq, tc.prevTS, tc.ts, maxSeq, maxTS)
			if got != tc.ok {
				t.Fatalf("WindowOK(prev=%d, seq=%d, prevTS=%d, ts=%d) = %v, want %v",
					tc.prevSeq, tc.seq, tc.prevTS, tc.ts, got, tc.ok)
			}
		})
	}
}

// WindowAdvance must be monotone: tolerated reordered packets leave the
// high-water mark alone, so the next in-order packet is measured against
// the true front of the stream.
func TestWindowAdvance(t *testing.T) {
	cases := []struct {
		name         string
		prevSeq, seq uint16
		prevTS, ts   uint32
		wantSeq      uint16
		wantTS       uint32
	}{
		{"advance in order", 100, 101, 160, 320, 101, 320},
		{"hold on duplicate", 100, 100, 160, 999, 100, 160},
		{"hold on reorder", 100, 97, 800, 320, 100, 800},
		{"advance across wrap", 65535, 0, 160, 320, 0, 320},
		{"hold on straggler across wrap", 2, 65534, 1120, 320, 2, 1120},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gotSeq, gotTS := WindowAdvance(tc.prevSeq, tc.seq, tc.prevTS, tc.ts)
			if gotSeq != tc.wantSeq || gotTS != tc.wantTS {
				t.Fatalf("WindowAdvance(prev=%d, seq=%d) = (%d, %d), want (%d, %d)",
					tc.prevSeq, tc.seq, gotSeq, gotTS, tc.wantSeq, tc.wantTS)
			}
		})
	}
}

// The regression the advance-only rule fixes: a tolerated reordered
// packet used to rewind the window, so the following in-order packet
// was measured against the stale mark. Across the wrap the rewound
// distance looks like a ~64k jump and a clean stream raised media-spam.
func TestWindowReorderAcrossWrapSequence(t *testing.T) {
	const maxSeq = 50
	const maxTS = 8000
	// In-order stream ...65534, 65535, 0, 1... with 65535 delivered late.
	seqs := []uint16{65533, 65534, 0, 65535, 1, 2}
	hwSeq, hwTS := seqs[0], uint32(0)
	for i, s := range seqs[1:] {
		ts := uint32(i+1) * 160
		if !WindowOK(hwSeq, s, hwTS, ts, maxSeq, maxTS) {
			t.Fatalf("packet seq=%d flagged as gap (high-water %d)", s, hwSeq)
		}
		hwSeq, hwTS = WindowAdvance(hwSeq, s, hwTS, ts)
	}
	if hwSeq != 2 {
		t.Fatalf("high-water = %d, want 2", hwSeq)
	}
}

func TestExtractLite(t *testing.T) {
	p := &Packet{PayloadType: 8, Sequence: 4242, Timestamp: 987654, SSRC: 0xDEADBEEF, Payload: []byte("voice")}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ssrc, pt, seq, ts, ok := ExtractLite(raw)
	if !ok || ssrc != p.SSRC || pt != p.PayloadType || seq != p.Sequence || ts != p.Timestamp {
		t.Fatalf("ExtractLite = (%#x, %d, %d, %d, %v), want packet fields", ssrc, pt, seq, ts, ok)
	}
	if _, _, _, _, ok := ExtractLite(raw[:HeaderSize-1]); ok {
		t.Fatal("ExtractLite accepted a short datagram")
	}
	bad := append([]byte(nil), raw...)
	bad[0] = 1 << 6 // wrong version
	if _, _, _, _, ok := ExtractLite(bad); ok {
		t.Fatal("ExtractLite accepted a wrong-version datagram")
	}
	trunc := append([]byte(nil), raw...)
	trunc[0] = Version<<6 | 0x0F // claims 15 CSRC entries the datagram lacks
	if _, _, _, _, ok := ExtractLite(trunc[:HeaderSize]); ok {
		t.Fatal("ExtractLite accepted a truncated CSRC list")
	}
}
