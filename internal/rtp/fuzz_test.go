package rtp

import (
	"bytes"
	"testing"
)

// FuzzRTPParseInto is the dynamic cross-check of the nopanic gate over
// the media decoders: ParseInto, ParseHeaderInto and ParseRTCPInto
// must be total on arbitrary datagrams, the header-only decode must
// agree with the full decode, and accepted packets must round-trip
// through Marshal.
func FuzzRTPParseInto(f *testing.F) {
	seed := &Packet{
		PayloadType: 0, Marker: true, Sequence: 7, Timestamp: 160,
		SSRC: 0xdecafbad, CSRC: []uint32{1, 2}, Payload: []byte("voice"),
	}
	wire, err := seed.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	for i := 0; i < len(wire); i += 5 {
		f.Add(wire[:i])
	}
	sr := &RTCP{
		Type: RTCPSenderReport, SSRC: 0xfeedface, NTPTime: 1 << 40,
		RTPTime: 160, PacketCount: 3, OctetCount: 480,
		Reports: []ReceptionReport{{SSRC: 9, FractionLost: 1, TotalLost: 2, HighestSeq: 7, Jitter: 4}},
	}
	srWire, err := sr.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(srWire)
	bye := &RTCP{Type: RTCPBye, SSRC: 0xfeedface}
	byeWire, err := bye.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(byeWire)
	f.Add([]byte{0x80, 203, 0xFF, 0xFF})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})

	f.Fuzz(func(t *testing.T, data []byte) {
		var p, hdr Packet
		if err := ParseInto(&p, data); err == nil {
			if err := ParseHeaderInto(&hdr, data); err != nil {
				t.Fatalf("full decode accepted but header-only decode rejected: %v", err)
			}
			if hdr.PayloadType != p.PayloadType || hdr.Marker != p.Marker ||
				hdr.Sequence != p.Sequence || hdr.Timestamp != p.Timestamp ||
				hdr.SSRC != p.SSRC {
				t.Fatalf("header decode drifted from full decode:\nfull:   %+v\nheader: %+v", p, hdr)
			}
			out, err := p.Marshal()
			if err != nil {
				t.Fatalf("accepted packet failed to marshal: %v", err)
			}
			var p2 Packet
			if err := ParseInto(&p2, out); err != nil {
				t.Fatalf("marshaled packet failed to re-parse: %v", err)
			}
			if p2.Sequence != p.Sequence || p2.Timestamp != p.Timestamp ||
				p2.SSRC != p.SSRC || !bytes.Equal(p2.Payload, p.Payload) {
				t.Fatalf("packet drifted across round-trip:\nfirst:  %+v\nsecond: %+v", p, p2)
			}
		}

		var rp RTCP
		if err := ParseRTCPInto(&rp, data); err == nil {
			out, err := rp.Marshal()
			if err != nil {
				t.Fatalf("accepted RTCP packet failed to marshal: %v", err)
			}
			var rp2 RTCP
			if err := ParseRTCPInto(&rp2, out); err != nil {
				t.Fatalf("marshaled RTCP packet failed to re-parse: %v", err)
			}
			if rp2.Type != rp.Type || rp2.SSRC != rp.SSRC || len(rp2.Reports) != len(rp.Reports) {
				t.Fatalf("RTCP drifted across round-trip:\nfirst:  %+v\nsecond: %+v", rp, rp2)
			}
		}
	})
}
