package attack

import (
	"strconv"
	"time"

	"vids/internal/rtp"
	"vids/internal/sim"
)

// Sniffer passively captures RTP stream state — SSRC, latest sequence
// number and timestamp per destination — the way an on-path attacker
// eavesdrops before fabricating packets (Section 3.2: "A third party
// knowing the SDP information ... and the RTP synchronization source
// (SSRC) identifier could fabricate RTP packets").
type Sniffer struct {
	streams map[string]StreamState
}

// StreamState is the captured per-stream header state.
type StreamState struct {
	SSRC     uint32
	LastSeq  uint16
	LastTS   uint32
	Packets  uint64
	LastSeen time.Duration
}

// NewSniffer creates a sniffer; attach it with network.Tap(s.Tap).
func NewSniffer() *Sniffer {
	return &Sniffer{streams: make(map[string]StreamState)}
}

// Tap is the network tap callback.
func (s *Sniffer) Tap(pkt *sim.Packet, at time.Duration) {
	if pkt.Proto != sim.ProtoRTP {
		return
	}
	raw, ok := pkt.Payload.([]byte)
	if !ok {
		return
	}
	p, err := rtp.Parse(raw)
	if err != nil {
		return
	}
	key := streamKey(pkt.To)
	st := s.streams[key]
	st.SSRC = p.SSRC
	st.LastSeq = p.Sequence
	st.LastTS = p.Timestamp
	st.Packets++
	st.LastSeen = at
	s.streams[key] = st
}

// Stream returns the captured state for a media destination.
func (s *Sniffer) Stream(dst sim.Addr) (StreamState, bool) {
	st, ok := s.streams[streamKey(dst)]
	return st, ok
}

func streamKey(a sim.Addr) string { return a.Host + ":" + strconv.Itoa(a.Port) }
