package attack

import (
	"testing"
	"time"

	"vids/internal/ids"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/workload"
)

// scenario builds the Figure 7 testbed with media, establishes one
// call from ua1.a to ua1.b, and returns everything an attacker needs.
type scenario struct {
	tb    *workload.Testbed
	atk   *Attacker
	sniff *Sniffer
	rec   *workload.CallRecord
	info  DialogInfo
}

func newScenario(t *testing.T, mutate func(*workload.Config)) *scenario {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.UAs = 2
	cfg.WithMedia = true
	cfg.AnswerDelay = time.Second
	if mutate != nil {
		mutate(&cfg)
	}
	tb, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sniff := NewSniffer()
	tb.Net.Tap(sniff.Tap)
	atk := New(tb.Sim, tb.Net, workload.AttackerHost)

	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	rec, err := tb.PlaceCall(0, 0, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Let the call establish and stream for a while.
	if err := tb.Sim.Run(tb.Sim.Now() + 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if !rec.Established {
		t.Fatal("scenario call failed to establish")
	}

	s := &scenario{tb: tb, atk: atk, sniff: sniff, rec: rec}
	s.info = s.dialogInfo(t)
	return s
}

func (s *scenario) dialogInfo(t *testing.T) DialogInfo {
	t.Helper()
	call := s.rec.Call()
	callerHost := workload.UAHost("a", 1)
	calleeHost := call.RemoteContact.Host
	info := DialogInfo{
		CallID:          call.ID,
		CallerTag:       call.LocalTag,
		CalleeTag:       call.RemoteTag,
		CallerAOR:       sipmsg.URI{User: workload.UAUser("a", 1), Host: workload.DomainA},
		CalleeAOR:       sipmsg.URI{User: workload.UAUser("b", 1), Host: workload.DomainB},
		CallerHost:      callerHost,
		CalleeHost:      calleeHost,
		CallerMediaPort: call.LocalRTPPort,
	}
	if call.RemoteSDP != nil {
		if audio, ok := call.RemoteSDP.FirstAudio(); ok {
			info.CalleeMediaPort = audio.Port
		}
	}
	// Eavesdrop the caller's stream header state.
	if st, ok := s.sniff.Stream(sim.Addr{Host: calleeHost, Port: info.CalleeMediaPort}); ok {
		info.SSRC = st.SSRC
		info.LastSeq = st.LastSeq
		info.LastTS = st.LastTS
	} else {
		t.Fatal("sniffer captured nothing")
	}
	return info
}

func (s *scenario) run(t *testing.T, d time.Duration) {
	t.Helper()
	if err := s.tb.Sim.Run(s.tb.Sim.Now() + d); err != nil {
		t.Fatal(err)
	}
}

func alertTypes(tb *workload.Testbed) map[ids.AlertType]int {
	out := make(map[ids.AlertType]int)
	for _, a := range tb.IDS.Alerts() {
		out[a.Type]++
	}
	return out
}

func TestByeDoSWithObviousSourceDetectedAsSpoofedBye(t *testing.T) {
	s := newScenario(t, nil)
	if err := s.atk.ByeDoS(s.info, false); err != nil {
		t.Fatal(err)
	}
	s.run(t, 5*time.Second)
	if n := alertTypes(s.tb)[ids.AlertSpoofedBye]; n != 1 {
		t.Fatalf("alerts = %v", s.tb.IDS.Alerts())
	}
}

func TestByeDoSWithSpoofedSourceDetectedCrossProtocol(t *testing.T) {
	s := newScenario(t, nil)
	// Fully spoofed: headers and transport source match the caller.
	if err := s.atk.ByeDoS(s.info, true); err != nil {
		t.Fatal(err)
	}
	s.run(t, 10*time.Second)

	// The victim callee must actually have torn down (the DoS
	// worked)...
	if s.rec.Call().State == 0 {
		t.Fatal("bogus state")
	}
	types := alertTypes(s.tb)
	// ...and vids must catch the continuing caller stream after T.
	got := types[ids.AlertTollFraud] + types[ids.AlertByeDoS]
	if got == 0 {
		t.Fatalf("cross-protocol BYE DoS undetected: %v", s.tb.IDS.Alerts())
	}
	if types[ids.AlertSpoofedBye] != 0 {
		t.Fatalf("perfectly spoofed BYE flagged at SIP layer: %v", s.tb.IDS.Alerts())
	}
}

func TestByeDoSUndetectedWithoutCrossProtocol(t *testing.T) {
	// Ablation: same attack, δ channel off -> silent.
	s := newScenario(t, func(c *workload.Config) {
		c.IDS.CrossProtocol = false
	})
	if err := s.atk.ByeDoS(s.info, true); err != nil {
		t.Fatal(err)
	}
	s.run(t, 10*time.Second)
	types := alertTypes(s.tb)
	if types[ids.AlertTollFraud]+types[ids.AlertByeDoS]+types[ids.AlertSpoofedBye] != 0 {
		t.Fatalf("ablated vids detected the spoofed BYE: %v", s.tb.IDS.Alerts())
	}
}

func TestTollFraudDetected(t *testing.T) {
	s := newScenario(t, nil)
	// The caller itself hangs up (stopping billing) but its media
	// machine keeps talking. We model the misbehaving endpoint with
	// an attacker colocated at the caller host.
	if err := s.tb.UAsA[0].Bye(s.rec.Call()); err != nil {
		t.Fatal(err)
	}
	fraudster := NewTollFraudster(New(s.tb.Sim, s.tb.Net, s.info.CallerHost))
	fraudster.ContinueMedia(s.info, 100, 20*time.Millisecond)
	s.run(t, 10*time.Second)
	if n := alertTypes(s.tb)[ids.AlertTollFraud]; n != 1 {
		t.Fatalf("alerts = %v", s.tb.IDS.Alerts())
	}
}

func TestCancelDoSDetected(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.UAs = 2
	cfg.WithMedia = false
	cfg.AnswerDelay = 30 * time.Second // long ring so CANCEL lands mid-setup
	tb, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	atk := New(tb.Sim, tb.Net, workload.AttackerHost)
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	rec, err := tb.PlaceCall(0, 0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until ringing, then inject the forged CANCEL at proxy B.
	if err := tb.Sim.Run(tb.Sim.Now() + 2*time.Second); err != nil {
		t.Fatal(err)
	}
	info := DialogInfo{
		CallID:    rec.CallID,
		CallerTag: rec.Call().LocalTag,
		CallerAOR: sipmsg.URI{User: workload.UAUser("a", 1), Host: workload.DomainA},
		CalleeAOR: sipmsg.URI{User: workload.UAUser("b", 1), Host: workload.DomainB},
	}
	if err := atk.CancelDoS(info, "z9hG4bKforged1", sim.Addr{Host: workload.ProxyBHost, Port: 5060}, ""); err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if n := alertTypes(tb)[ids.AlertSpoofedCancel]; n != 1 {
		t.Fatalf("alerts = %v", tb.IDS.Alerts())
	}
	// The DoS itself succeeded: the victim's call was cancelled.
	if rec.Established {
		t.Fatal("CANCEL DoS failed to kill the pending call")
	}
}

func TestInviteFloodDetectedEndToEnd(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.UAs = 2
	cfg.WithMedia = false
	tb, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	atk := New(tb.Sim, tb.Net, workload.AttackerHost)
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	target := sipmsg.URI{User: workload.UAUser("b", 1), Host: workload.DomainB}
	atk.InviteFlood(target, sim.Addr{Host: workload.ProxyBHost, Port: 5060},
		40, 10*time.Millisecond)
	if err := tb.Sim.Run(tb.Sim.Now() + 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if n := alertTypes(tb)[ids.AlertInviteFlood]; n == 0 {
		t.Fatalf("flood undetected: %v", tb.IDS.Alerts())
	}
}

func TestHijackDetectedEndToEnd(t *testing.T) {
	s := newScenario(t, nil)
	if err := s.atk.Hijack(s.info); err != nil {
		t.Fatal(err)
	}
	s.run(t, 5*time.Second)
	if n := alertTypes(s.tb)[ids.AlertCallHijack]; n != 1 {
		t.Fatalf("alerts = %v", s.tb.IDS.Alerts())
	}
}

func TestMediaSpamDetectedEndToEnd(t *testing.T) {
	s := newScenario(t, nil)
	s.atk.MediaSpam(s.info, 20, 20*time.Millisecond)
	s.run(t, 5*time.Second)
	if n := alertTypes(s.tb)[ids.AlertMediaSpam]; n != 1 {
		t.Fatalf("alerts = %v", s.tb.IDS.Alerts())
	}
}

func TestRTPFloodDetectedEndToEnd(t *testing.T) {
	s := newScenario(t, nil)
	s.atk.RTPFlood(s.info, 400, 2*time.Millisecond, false)
	s.run(t, 5*time.Second)
	types := alertTypes(s.tb)
	if types[ids.AlertRTPFlood]+types[ids.AlertMediaSpam] == 0 {
		t.Fatalf("flood undetected: %v", s.tb.IDS.Alerts())
	}
}

func TestCodecChangeDetectedEndToEnd(t *testing.T) {
	s := newScenario(t, nil)
	s.atk.RTPFlood(s.info, 10, 20*time.Millisecond, true)
	s.run(t, 5*time.Second)
	if n := alertTypes(s.tb)[ids.AlertCodecViolation]; n != 1 {
		t.Fatalf("alerts = %v", s.tb.IDS.Alerts())
	}
}

func TestCleanRunStaysQuietAroundAttackerPresence(t *testing.T) {
	// An attacker that never fires must cause no alerts.
	s := newScenario(t, nil)
	s.run(t, 10*time.Second)
	if alerts := s.tb.IDS.Alerts(); len(alerts) != 0 {
		t.Fatalf("alerts = %v", alerts)
	}
	if s.atk.Sent() != 0 {
		t.Fatal("idle attacker sent packets")
	}
}

func TestSnifferCapturesStreamState(t *testing.T) {
	s := newScenario(t, nil)
	st, ok := s.sniff.Stream(sim.Addr{Host: s.info.CalleeHost, Port: s.info.CalleeMediaPort})
	if !ok {
		t.Fatal("stream not captured")
	}
	if st.Packets == 0 || st.SSRC == 0 {
		t.Fatalf("state = %+v", st)
	}
	if _, ok := s.sniff.Stream(sim.Addr{Host: "nowhere", Port: 1}); ok {
		t.Fatal("ghost stream captured")
	}
}

func TestDRDoSDetectedEndToEnd(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.UAs = 6
	cfg.WithMedia = false
	tb, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	atk := New(tb.Sim, tb.Net, workload.AttackerHost)
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// Reflectors: every phone in network A (they answer OPTIONS with
	// 200). Victim: a phone inside network B, so the reflected
	// responses converge through vids.
	var reflectors []sim.Addr
	for i := 1; i <= 6; i++ {
		reflectors = append(reflectors, sim.Addr{Host: workload.UAHost("a", i), Port: 5060})
	}
	victim := sim.Addr{Host: workload.UAHost("b", 1), Port: 5060}
	atk.DRDoS(victim, reflectors, 6, 5*time.Millisecond) // 36 requests -> 36 responses
	if err := tb.Sim.Run(tb.Sim.Now() + 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if n := alertTypes(tb)[ids.AlertDRDoS]; n == 0 {
		t.Fatalf("DRDoS undetected: %v", tb.IDS.Alerts())
	}
}

func TestRegistrationHijackDetectedAndEffective(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.UAs = 2
	cfg.WithMedia = false
	tb, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	atk := New(tb.Sim, tb.Net, workload.AttackerHost)
	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	victim := sipmsg.URI{User: workload.UAUser("b", 1), Host: workload.DomainB}
	if err := atk.HijackRegistration(victim, sim.Addr{Host: workload.ProxyBHost, Port: 5060}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// vids flagged the external REGISTER...
	if n := alertTypes(tb)[ids.AlertRogueRegister]; n != 1 {
		t.Fatalf("rogue register alerts = %v", tb.IDS.Alerts())
	}
	// ...and the attack itself worked: the registrar now points the
	// victim's AOR at the attacker.
	contact, ok := tb.ProxyB.Lookup(victim.User)
	if !ok || contact.Host != workload.AttackerHost {
		t.Fatalf("binding = %v (ok=%v), want attacker host", contact, ok)
	}
}

func TestRTCPByeInjectionDetected(t *testing.T) {
	s := newScenario(t, nil)
	if err := s.atk.RTCPBye(s.info); err != nil {
		t.Fatal(err)
	}
	s.run(t, 5*time.Second)
	if n := alertTypes(s.tb)[ids.AlertRTCPBye]; n != 1 {
		t.Fatalf("alerts = %v", s.tb.IDS.Alerts())
	}
}

func TestGenuineHangupRTCPByeNotFlagged(t *testing.T) {
	s := newScenario(t, nil)
	if err := s.tb.UAsA[0].Bye(s.rec.Call()); err != nil {
		t.Fatal(err)
	}
	s.run(t, 5*time.Second)
	if n := alertTypes(s.tb)[ids.AlertRTCPBye]; n != 0 {
		t.Fatalf("genuine hangup's RTCP BYE flagged: %v", s.tb.IDS.Alerts())
	}
}
