// Package attack implements scripted injectors for the paper's threat
// model (Section 3): CANCEL and BYE denial of service, INVITE request
// flooding, call hijacking via in-dialog re-INVITE, media spamming,
// RTP flooding with codec changes, and toll fraud. Each injector
// crafts the packets a real attacker would send — including forged
// SIP identities and spoofed transport sources — and injects them at
// the attacker's network attachment point.
package attack

import (
	"fmt"
	"time"

	"vids/internal/rtp"
	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// Attacker crafts and injects malicious traffic from a network node.
type Attacker struct {
	sim  *sim.Simulator
	net  *sim.Network
	host string
	rng  *sim.RNG
	sent uint64
}

// New creates an attacker homed at host (which must exist in the
// topology).
func New(s *sim.Simulator, n *sim.Network, host string) *Attacker {
	return &Attacker{sim: s, net: n, host: host, rng: s.RNG()}
}

// Sent reports packets injected so far.
func (a *Attacker) Sent() uint64 { return a.sent }

// sendSIP injects a SIP message. If spoofSrc is non-empty the
// datagram claims to originate from that host while physically
// leaving the attacker's node.
func (a *Attacker) sendSIP(m *sipmsg.Message, to sim.Addr, spoofSrc string) error {
	from := sim.Addr{Host: a.host, Port: 5060}
	if spoofSrc != "" {
		from.Host = spoofSrc
	}
	raw := m.Bytes()
	a.sent++
	return a.net.SendFrom(a.host, &sim.Packet{
		From: from, To: to, Proto: sim.ProtoSIP,
		Size: len(raw) + 28, Payload: raw,
	})
}

// sendRTP injects an RTP packet, optionally spoofing the media source
// address.
func (a *Attacker) sendRTP(p *rtp.Packet, to sim.Addr, spoofSrc string, spoofPort int) error {
	from := sim.Addr{Host: a.host, Port: 40000}
	if spoofSrc != "" {
		from = sim.Addr{Host: spoofSrc, Port: spoofPort}
	}
	raw, err := p.Marshal()
	if err != nil {
		return err
	}
	a.sent++
	return a.net.SendFrom(a.host, &sim.Packet{
		From: from, To: to, Proto: sim.ProtoRTP,
		Size: len(raw) + 28, Payload: raw,
	})
}

// DialogInfo is what an eavesdropping attacker learned about a call
// (the paper assumes attackers can observe SDP and dialog
// identifiers, Section 3.2).
type DialogInfo struct {
	CallID    string
	CallerTag string
	CalleeTag string
	CallerAOR sipmsg.URI
	CalleeAOR sipmsg.URI

	CallerHost string
	CalleeHost string

	// Media endpoints from the SDP exchange.
	CallerMediaPort int
	CalleeMediaPort int
	SSRC            uint32 // sniffed from the caller's stream
	LastSeq         uint16
	LastTS          uint32
}

// ByeDoS sends a forged BYE that impersonates the caller, addressed
// to the callee (Section 3.1). With spoofSource the transport source
// is forged too, defeating source-consistency checks.
func (a *Attacker) ByeDoS(d DialogInfo, spoofSource bool) error {
	bye := sipmsg.NewRequest(sipmsg.BYE, sipmsg.URI{User: d.CalleeAOR.User, Host: d.CalleeHost})
	bye.From = sipmsg.NameAddr{URI: d.CallerAOR}.WithTag(d.CallerTag)
	bye.To = sipmsg.NameAddr{URI: d.CalleeAOR}.WithTag(d.CalleeTag)
	bye.CallID = d.CallID
	bye.CSeq = sipmsg.CSeq{Seq: 2, Method: sipmsg.BYE}
	src := ""
	if spoofSource {
		src = d.CallerHost
	}
	bye.Via = []sipmsg.Via{{
		Transport: "UDP", Host: viaHost(a.host, src), Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKatk" + a.hex(8)},
	}}
	return a.sendSIP(bye, sim.Addr{Host: d.CalleeHost, Port: 5060}, src)
}

// CancelDoS sends a forged CANCEL for a pending INVITE toward the
// callee's proxy (Section 3.1). branch must match the INVITE's top
// Via branch on that hop for the UAS to associate it.
func (a *Attacker) CancelDoS(d DialogInfo, branch string, to sim.Addr, spoofSrc string) error {
	cancel := sipmsg.NewRequest(sipmsg.CANCEL, sipmsg.URI{User: d.CalleeAOR.User, Host: d.CalleeAOR.Host})
	cancel.From = sipmsg.NameAddr{URI: d.CallerAOR}.WithTag(d.CallerTag)
	cancel.To = sipmsg.NameAddr{URI: d.CalleeAOR}
	cancel.CallID = d.CallID
	cancel.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.CANCEL}
	cancel.Via = []sipmsg.Via{{
		Transport: "UDP", Host: viaHost(a.host, spoofSrc), Port: 5060,
		Params: map[string]string{"branch": branch},
	}}
	return a.sendSIP(cancel, to, spoofSrc)
}

// InviteFlood fires count INVITEs at the target AOR through its
// proxy, spaced by gap (Section 3.1: "A number of IP phones together
// may launch an INVITE flooding attack to overwhelm a single
// telephone terminal").
func (a *Attacker) InviteFlood(target sipmsg.URI, proxy sim.Addr, count int, gap time.Duration) {
	for i := 0; i < count; i++ {
		i := i
		a.sim.Schedule(time.Duration(i)*gap, func() {
			inv := sipmsg.NewRequest(sipmsg.INVITE, target)
			inv.From = sipmsg.NameAddr{
				URI: sipmsg.URI{User: fmt.Sprintf("bot%d", i), Host: "evil.example.com"},
			}.WithTag(a.hex(8))
			inv.To = sipmsg.NameAddr{URI: target}
			inv.CallID = "flood-" + a.hex(10)
			inv.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
			inv.Via = []sipmsg.Via{{
				Transport: "UDP", Host: a.host, Port: 5060,
				Params: map[string]string{"branch": "z9hG4bKfld" + a.hex(8)},
			}}
			contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "bot", Host: a.host}}
			inv.Contact = &contact
			inv.ContentType = "application/sdp"
			inv.Body = sdp.New("bot", a.host, 40000, sdp.PayloadG729).Marshal()
			_ = a.sendSIP(inv, proxy, "")
		})
	}
}

// Hijack sends an in-dialog re-INVITE that redirects the callee's
// media to the attacker (Section 3.1's call-hijacking scenario).
func (a *Attacker) Hijack(d DialogInfo) error {
	re := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{User: d.CalleeAOR.User, Host: d.CalleeHost})
	re.From = sipmsg.NameAddr{URI: d.CallerAOR}.WithTag(d.CallerTag)
	re.To = sipmsg.NameAddr{URI: d.CalleeAOR}.WithTag(d.CalleeTag)
	re.CallID = d.CallID
	re.CSeq = sipmsg.CSeq{Seq: 3, Method: sipmsg.INVITE}
	re.Via = []sipmsg.Via{{
		Transport: "UDP", Host: a.host, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKhjk" + a.hex(8)},
	}}
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "mallory", Host: a.host}}
	re.Contact = &contact
	re.ContentType = "application/sdp"
	re.Body = sdp.New("mallory", a.host, 41000, sdp.PayloadG729).Marshal()
	return a.sendSIP(re, sim.Addr{Host: d.CalleeHost, Port: 5060}, "")
}

// MediaSpam injects count fabricated RTP packets into the callee's
// media port reusing the sniffed SSRC with jumped sequence numbers
// and timestamps (Section 3.2, Figure 6).
func (a *Attacker) MediaSpam(d DialogInfo, count int, gap time.Duration) {
	for i := 0; i < count; i++ {
		i := i
		a.sim.Schedule(time.Duration(i)*gap, func() {
			p := &rtp.Packet{
				PayloadType: sdp.PayloadG729,
				Sequence:    d.LastSeq + 1000 + uint16(i),
				Timestamp:   d.LastTS + 160000 + uint32(i)*160,
				SSRC:        d.SSRC,
				Payload:     make([]byte, 20),
			}
			_ = a.sendRTP(p, sim.Addr{Host: d.CalleeHost, Port: d.CalleeMediaPort},
				d.CallerHost, d.CallerMediaPort)
		})
	}
}

// RTPFlood floods the callee's media port with well-formed packets at
// interval gap, optionally switching the codec (Section 3.2:
// "Changing the encoding scheme or flooding with RTP packets").
func (a *Attacker) RTPFlood(d DialogInfo, count int, gap time.Duration, wrongCodec bool) {
	payloadType := uint8(sdp.PayloadG729)
	size := 20
	if wrongCodec {
		payloadType = sdp.PayloadPCMU
		size = 160
	}
	for i := 0; i < count; i++ {
		i := i
		a.sim.Schedule(time.Duration(i)*gap, func() {
			p := &rtp.Packet{
				PayloadType: payloadType,
				Sequence:    d.LastSeq + 1 + uint16(i),
				Timestamp:   d.LastTS + 160 + uint32(i)*160,
				SSRC:        d.SSRC,
				Payload:     make([]byte, size),
			}
			_ = a.sendRTP(p, sim.Addr{Host: d.CalleeHost, Port: d.CalleeMediaPort},
				d.CallerHost, d.CallerMediaPort)
		})
	}
}

// RTCPBye injects a forged RTCP BYE into the callee's control port,
// claiming the caller's stream ended — a media-plane teardown that
// never touches SIP (RFC 3550 BYE abuse).
func (a *Attacker) RTCPBye(d DialogInfo) error {
	p := &rtp.RTCP{Type: rtp.RTCPBye, SSRC: d.SSRC}
	raw, err := p.Marshal()
	if err != nil {
		return err
	}
	a.sent++
	return a.net.SendFrom(a.host, &sim.Packet{
		From:    sim.Addr{Host: d.CallerHost, Port: d.CallerMediaPort + 1},
		To:      sim.Addr{Host: d.CalleeHost, Port: d.CalleeMediaPort + 1},
		Proto:   sim.ProtoRTCP,
		Size:    len(raw) + 28,
		Payload: raw,
	})
}

// hex draws n deterministic hex digits from the simulator RNG.
func (a *Attacker) hex(n int) string {
	const digits = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = digits[a.rng.Intn(16)]
	}
	return string(b)
}

// viaHost picks the Via sent-by host consistent with the spoofing
// decision.
func viaHost(real, spoof string) string {
	if spoof != "" {
		return spoof
	}
	return real
}

// TollFraudster models a *misbehaving endpoint* rather than a third
// party: it terminates billing with a genuine BYE but keeps its media
// sender running (Section 3.1: "Billing and toll fraud can be
// realized if one end sends a BYE message to stop billing but
// continues sending RTP packets").
type TollFraudster struct {
	attacker *Attacker
}

// NewTollFraudster wraps an attacker positioned at the misbehaving
// endpoint's own host.
func NewTollFraudster(a *Attacker) *TollFraudster { return &TollFraudster{attacker: a} }

// ContinueMedia keeps emitting the caller's stream after the BYE: the
// sequence numbers continue naturally from the sniffed state.
func (f *TollFraudster) ContinueMedia(d DialogInfo, count int, gap time.Duration) {
	a := f.attacker
	for i := 0; i < count; i++ {
		i := i
		a.sim.Schedule(time.Duration(i)*gap, func() {
			p := &rtp.Packet{
				PayloadType: sdp.PayloadG729,
				Sequence:    d.LastSeq + 1 + uint16(i),
				Timestamp:   d.LastTS + 160 + uint32(i)*160,
				SSRC:        d.SSRC,
				Payload:     make([]byte, 20),
			}
			_ = a.sendRTP(p, sim.Addr{Host: d.CalleeHost, Port: d.CalleeMediaPort},
				d.CallerHost, d.CallerMediaPort)
		})
	}
}

// DRDoS fans spoofed OPTIONS requests out to the given reflectors,
// forging the victim's address as the source. Every reflector's
// response converges on the victim (Section 3.1: "the victim will be
// swamped with the subsequent response messages").
func (a *Attacker) DRDoS(victim sim.Addr, reflectors []sim.Addr, perReflector int, gap time.Duration) {
	sent := 0
	for r := 0; r < perReflector; r++ {
		for _, refl := range reflectors {
			refl := refl
			a.sim.Schedule(time.Duration(sent)*gap, func() {
				opts := sipmsg.NewRequest(sipmsg.OPTIONS, sipmsg.URI{Host: refl.Host})
				opts.From = sipmsg.NameAddr{
					URI: sipmsg.URI{User: "victim", Host: victim.Host},
				}.WithTag(a.hex(8))
				opts.To = sipmsg.NameAddr{URI: sipmsg.URI{Host: refl.Host}}
				opts.CallID = "drdos-" + a.hex(10)
				opts.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.OPTIONS}
				// The spoofed Via routes the response at the victim.
				opts.Via = []sipmsg.Via{{
					Transport: "UDP", Host: victim.Host, Port: victim.Port,
					Params: map[string]string{"branch": "z9hG4bKdr" + a.hex(8)},
				}}
				_ = a.sendSIP(opts, refl, victim.Host)
			})
			sent++
		}
	}
}

// HijackRegistration sends a forged REGISTER to the victim's
// registrar, rebinding the victim's address-of-record to the
// attacker's own host so future calls are delivered to the attacker.
func (a *Attacker) HijackRegistration(victimAOR sipmsg.URI, registrar sim.Addr) error {
	reg := sipmsg.NewRequest(sipmsg.REGISTER, sipmsg.URI{Host: victimAOR.Host})
	reg.From = sipmsg.NameAddr{URI: victimAOR}.WithTag(a.hex(8))
	reg.To = sipmsg.NameAddr{URI: victimAOR}
	reg.CallID = "hijack-reg-" + a.hex(10)
	reg.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.REGISTER}
	reg.Via = []sipmsg.Via{{
		Transport: "UDP", Host: a.host, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKrg" + a.hex(8)},
	}}
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: victimAOR.User, Host: a.host}}
	reg.Contact = &contact
	reg.Expires = 3600
	return a.sendSIP(reg, registrar, "")
}
