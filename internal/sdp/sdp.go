// Package sdp implements the Session Description Protocol subset
// (RFC 2327) that SIP call setup needs: the caller advertises its
// media address, port and codec in the INVITE body, and the callee
// answers in the 200 OK (paper Section 2.1). vids reads these values
// into the RTP state machine's global variables (paper Section 4.2).
package sdp

import (
	"fmt"
	"strconv"
	"strings"
)

// Codec payload types from the RTP/AVP profile (RFC 3551).
const (
	PayloadPCMU = 0  // G.711 µ-law
	PayloadG729 = 18 // G.729, the codec used in the paper's testbed
)

// PayloadName returns the conventional encoding name for a static
// payload type.
func PayloadName(pt int) string {
	switch pt {
	case PayloadPCMU:
		return "PCMU/8000"
	case PayloadG729:
		return "G729/8000"
	default:
		return fmt.Sprintf("PT%d", pt)
	}
}

// Media is one m= section (we only model audio).
type Media struct {
	Port     int
	Payloads []int // offered RTP payload types, in preference order
}

// Description is a parsed session description.
type Description struct {
	Origin      string // o= username
	SessionName string // s=
	Address     string // c= connection address (host name in the simulator)
	SessionID   uint64
	Version     uint64
	Media       []Media
	Attributes  []string // a= lines, verbatim
}

// FirstAudio returns the first media section, or ok=false when the
// description carries no media.
func (d *Description) FirstAudio() (Media, bool) {
	if len(d.Media) == 0 {
		return Media{}, false
	}
	return d.Media[0], true
}

// New builds the minimal offer/answer the testbed exchanges.
func New(user, address string, port, payload int) *Description {
	return &Description{
		Origin:      user,
		SessionName: "call",
		Address:     address,
		SessionID:   2890844526,
		Version:     2890844526,
		Media:       []Media{{Port: port, Payloads: []int{payload}}},
	}
}

// Marshal renders the description in wire form.
func (d *Description) Marshal() []byte {
	var b strings.Builder
	b.WriteString("v=0\r\n")
	fmt.Fprintf(&b, "o=%s %d %d IN IP4 %s\r\n", d.Origin, d.SessionID, d.Version, d.Address)
	name := d.SessionName
	if name == "" {
		name = "-"
	}
	fmt.Fprintf(&b, "s=%s\r\n", name)
	fmt.Fprintf(&b, "c=IN IP4 %s\r\n", d.Address)
	b.WriteString("t=0 0\r\n")
	for _, m := range d.Media {
		fmt.Fprintf(&b, "m=audio %d RTP/AVP", m.Port)
		for _, pt := range m.Payloads {
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(pt))
		}
		b.WriteString("\r\n")
	}
	for _, a := range d.Attributes {
		fmt.Fprintf(&b, "a=%s\r\n", a)
	}
	return []byte(b.String())
}

// Parse parses a session description. Unknown line types are ignored,
// per RFC 2327's "parsers must ignore unknown lines" guidance.
func Parse(data []byte) (*Description, error) {
	d := &Description{}
	sawVersion := false
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if len(line) < 2 || line[1] != '=' {
			return nil, fmt.Errorf("sdp: malformed line %q", line)
		}
		value := line[2:]
		switch line[0] {
		case 'v':
			if value != "0" {
				return nil, fmt.Errorf("sdp: unsupported version %q", value)
			}
			sawVersion = true
		case 'o':
			fields := strings.Fields(value)
			if len(fields) < 6 {
				return nil, fmt.Errorf("sdp: malformed o= line %q", line)
			}
			d.Origin = fields[0]
			id, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sdp: bad session id in %q", line)
			}
			ver, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sdp: bad version in %q", line)
			}
			d.SessionID, d.Version = id, ver
		case 's':
			d.SessionName = value
		case 'c':
			fields := strings.Fields(value)
			if len(fields) != 3 || fields[0] != "IN" || fields[1] != "IP4" {
				return nil, fmt.Errorf("sdp: malformed c= line %q", line)
			}
			d.Address = fields[2]
		case 'm':
			fields := strings.Fields(value)
			if len(fields) < 4 || fields[0] != "audio" || fields[2] != "RTP/AVP" {
				return nil, fmt.Errorf("sdp: unsupported m= line %q", line)
			}
			port, err := strconv.Atoi(fields[1])
			if err != nil || port <= 0 || port > 65535 {
				return nil, fmt.Errorf("sdp: bad media port in %q", line)
			}
			m := Media{Port: port}
			for _, f := range fields[3:] {
				pt, err := strconv.Atoi(f)
				if err != nil || pt < 0 || pt > 127 {
					return nil, fmt.Errorf("sdp: bad payload type in %q", line)
				}
				m.Payloads = append(m.Payloads, pt)
			}
			d.Media = append(d.Media, m)
		case 'a':
			d.Attributes = append(d.Attributes, value)
		case 't', 'b', 'k', 'z', 'r', 'i', 'u', 'e', 'p':
			// Recognized but not modeled.
		default:
			// Ignore unknown types.
		}
	}
	if !sawVersion {
		return nil, fmt.Errorf("sdp: missing v= line")
	}
	if d.Address == "" {
		return nil, fmt.Errorf("sdp: missing c= connection line")
	}
	return d, nil
}
