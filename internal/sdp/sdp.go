// Package sdp implements the Session Description Protocol subset
// (RFC 2327) that SIP call setup needs: the caller advertises its
// media address, port and codec in the INVITE body, and the callee
// answers in the 200 OK (paper Section 2.1). vids reads these values
// into the RTP state machine's global variables (paper Section 4.2).
package sdp

import (
	"fmt"
	"strconv"
	"strings"
)

// Codec payload types from the RTP/AVP profile (RFC 3551).
const (
	PayloadPCMU = 0  // G.711 µ-law
	PayloadG729 = 18 // G.729, the codec used in the paper's testbed
)

// PayloadName returns the conventional encoding name for a static
// payload type.
func PayloadName(pt int) string {
	switch pt {
	case PayloadPCMU:
		return "PCMU/8000"
	case PayloadG729:
		return "G729/8000"
	default:
		return fmt.Sprintf("PT%d", pt)
	}
}

// Media is one m= section (we only model audio).
type Media struct {
	Port     int
	Payloads []int // offered RTP payload types, in preference order
}

// Description is a parsed session description.
type Description struct {
	Origin      string // o= username
	SessionName string // s=
	Address     string // c= connection address (host name in the simulator)
	SessionID   uint64
	Version     uint64
	Media       []Media
	Attributes  []string // a= lines, verbatim
}

// FirstAudio returns the first media section, or ok=false when the
// description carries no media.
func (d *Description) FirstAudio() (Media, bool) {
	if len(d.Media) == 0 {
		return Media{}, false
	}
	return d.Media[0], true
}

// New builds the minimal offer/answer the testbed exchanges.
func New(user, address string, port, payload int) *Description {
	return &Description{
		Origin:      user,
		SessionName: "call",
		Address:     address,
		SessionID:   2890844526,
		Version:     2890844526,
		Media:       []Media{{Port: port, Payloads: []int{payload}}},
	}
}

// Marshal renders the description in wire form.
func (d *Description) Marshal() []byte {
	var b strings.Builder
	b.WriteString("v=0\r\n")
	fmt.Fprintf(&b, "o=%s %d %d IN IP4 %s\r\n", d.Origin, d.SessionID, d.Version, d.Address)
	name := d.SessionName
	if name == "" {
		name = "-"
	}
	fmt.Fprintf(&b, "s=%s\r\n", name)
	fmt.Fprintf(&b, "c=IN IP4 %s\r\n", d.Address)
	b.WriteString("t=0 0\r\n")
	for _, m := range d.Media {
		fmt.Fprintf(&b, "m=audio %d RTP/AVP", m.Port)
		for _, pt := range m.Payloads {
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(pt))
		}
		b.WriteString("\r\n")
	}
	for _, a := range d.Attributes {
		fmt.Fprintf(&b, "a=%s\r\n", a)
	}
	return []byte(b.String())
}

// Parse parses a session description. Unknown line types are ignored,
// per RFC 2327's "parsers must ignore unknown lines" guidance.
func Parse(data []byte) (*Description, error) {
	d := &Description{}
	sawVersion := false
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if len(line) < 2 || line[1] != '=' {
			return nil, fmt.Errorf("sdp: malformed line %q", line)
		}
		value := line[2:]
		switch line[0] {
		case 'v':
			if value != "0" {
				return nil, fmt.Errorf("sdp: unsupported version %q", value)
			}
			sawVersion = true
		case 'o':
			fields := strings.Fields(value)
			if len(fields) < 6 {
				return nil, fmt.Errorf("sdp: malformed o= line %q", line)
			}
			d.Origin = fields[0]
			id, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sdp: bad session id in %q", line)
			}
			ver, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sdp: bad version in %q", line)
			}
			d.SessionID, d.Version = id, ver
		case 's':
			d.SessionName = value
		case 'c':
			fields := strings.Fields(value)
			if len(fields) != 3 || fields[0] != "IN" || fields[1] != "IP4" {
				return nil, fmt.Errorf("sdp: malformed c= line %q", line)
			}
			d.Address = fields[2]
		case 'm':
			fields := strings.Fields(value)
			if len(fields) < 4 || fields[0] != "audio" || fields[2] != "RTP/AVP" {
				return nil, fmt.Errorf("sdp: unsupported m= line %q", line)
			}
			port, err := strconv.Atoi(fields[1])
			if err != nil || port <= 0 || port > 65535 {
				return nil, fmt.Errorf("sdp: bad media port in %q", line)
			}
			m := Media{Port: port}
			for _, f := range fields[3:] {
				pt, err := strconv.Atoi(f)
				if err != nil || pt < 0 || pt > 127 {
					return nil, fmt.Errorf("sdp: bad payload type in %q", line)
				}
				m.Payloads = append(m.Payloads, pt)
			}
			d.Media = append(d.Media, m)
		case 'a':
			d.Attributes = append(d.Attributes, value)
		case 't', 'b', 'k', 'z', 'r', 'i', 'u', 'e', 'p':
			// Recognized but not modeled.
		default:
			// Ignore unknown types.
		}
	}
	if !sawVersion {
		return nil, fmt.Errorf("sdp: missing v= line")
	}
	if d.Address == "" {
		return nil, fmt.Errorf("sdp: missing c= connection line")
	}
	return d, nil
}

// MediaDest extracts the advertised media destination — connection
// address, first audio port and first payload type — without
// materializing a Description. It applies exactly the same per-line
// validation as Parse, so ok is true precisely when Parse would
// succeed on data and the description carries at least one media
// section (whose payload list is never empty when Parse accepts it).
// addr aliases data; callers that retain it must copy (or intern) it.
//
// The packet hot path (internal/ids, the engine router) reads each
// SDP body through this instead of Parse: one INVITE previously paid
// two full Parse calls — roughly 20 allocations — per message.
func MediaDest(data []byte) (addr []byte, port, payload int, ok bool) {
	if len(data) == 0 {
		return nil, 0, 0, false
	}
	sawVersion := false
	sawMedia := false
	rest := data
	for len(rest) > 0 {
		var line []byte
		if i := indexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			line, rest = rest, nil
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) == 0 {
			continue
		}
		if len(line) < 2 || line[1] != '=' {
			return nil, 0, 0, false
		}
		value := line[2:]
		switch line[0] {
		case 'v':
			if len(value) != 1 || value[0] != '0' {
				return nil, 0, 0, false
			}
			sawVersion = true
		case 'o':
			var f fieldScanner
			f.init(value)
			if f.count() < 6 {
				return nil, 0, 0, false
			}
			f.init(value)
			f.next() // username
			if _, numOK := parseUintField(f.next()); !numOK {
				return nil, 0, 0, false
			}
			if _, numOK := parseUintField(f.next()); !numOK {
				return nil, 0, 0, false
			}
		case 'c':
			var f fieldScanner
			f.init(value)
			if f.count() != 3 {
				return nil, 0, 0, false
			}
			f.init(value)
			if string(f.next()) != "IN" || string(f.next()) != "IP4" {
				return nil, 0, 0, false
			}
			addr = f.next()
		case 'm':
			var f fieldScanner
			f.init(value)
			if f.count() < 4 {
				return nil, 0, 0, false
			}
			f.init(value)
			if string(f.next()) != "audio" {
				return nil, 0, 0, false
			}
			p, numOK := parseIntField(f.next())
			if !numOK || p <= 0 || p > 65535 {
				return nil, 0, 0, false
			}
			if string(f.next()) != "RTP/AVP" {
				return nil, 0, 0, false
			}
			firstPT := -1
			for {
				fld := f.next()
				if fld == nil {
					break
				}
				pt, ptOK := parseIntField(fld)
				if !ptOK || pt < 0 || pt > 127 {
					return nil, 0, 0, false
				}
				if firstPT < 0 {
					firstPT = pt
				}
			}
			if !sawMedia {
				port, payload = p, firstPT
				sawMedia = true
			}
		}
	}
	if !sawVersion || len(addr) == 0 || !sawMedia {
		return nil, 0, 0, false
	}
	return addr, port, payload, true
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// fieldScanner iterates whitespace-separated fields of a line the way
// strings.Fields does, without allocating the field slice.
type fieldScanner struct {
	rest []byte
}

func (f *fieldScanner) init(b []byte) { f.rest = b }

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// next returns the next field, or nil when exhausted.
func (f *fieldScanner) next() []byte {
	i := 0
	for i < len(f.rest) && isSpace(f.rest[i]) {
		i++
	}
	if i == len(f.rest) {
		f.rest = nil
		return nil
	}
	j := i
	for j < len(f.rest) && !isSpace(f.rest[j]) {
		j++
	}
	field := f.rest[i:j]
	f.rest = f.rest[j:]
	return field
}

func (f *fieldScanner) count() int {
	n := 0
	saved := f.rest
	for f.next() != nil {
		n++
	}
	f.rest = saved
	return n
}

// parseIntField parses a decimal field with an optional sign, the
// values strconv.Atoi accepts (overflow divergence is immaterial:
// both paths reject such lines through the range checks).
func parseIntField(b []byte) (int, bool) {
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		b = b[1:]
	}
	n, ok := parseUintField(b)
	if !ok || n > 1<<62 {
		return 0, false
	}
	if neg {
		return -int(n), true
	}
	return int(n), true
}

// parseUintField parses a decimal field, rejecting anything
// strconv.ParseUint(s, 10, 64) would reject.
func parseUintField(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (^uint64(0)-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}
