package sdp

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewMarshalParseRoundTrip(t *testing.T) {
	d := New("alice", "ua1.a.example.com", 49172, PayloadG729)
	got, err := Parse(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != "alice" || got.Address != "ua1.a.example.com" {
		t.Fatalf("round-trip = %+v", got)
	}
	m, ok := got.FirstAudio()
	if !ok {
		t.Fatal("no media section")
	}
	if m.Port != 49172 {
		t.Fatalf("port = %d", m.Port)
	}
	if len(m.Payloads) != 1 || m.Payloads[0] != PayloadG729 {
		t.Fatalf("payloads = %v", m.Payloads)
	}
	// Canonical: marshal of the parse equals the original.
	if !bytes.Equal(got.Marshal(), d.Marshal()) {
		t.Fatalf("not canonical:\n%s\nvs\n%s", got.Marshal(), d.Marshal())
	}
}

func TestParseRealistic(t *testing.T) {
	raw := "v=0\r\n" +
		"o=bob 2808844564 2808844564 IN IP4 ua2.b.example.com\r\n" +
		"s=-\r\n" +
		"c=IN IP4 ua2.b.example.com\r\n" +
		"t=0 0\r\n" +
		"m=audio 3456 RTP/AVP 18 0\r\n" +
		"a=rtpmap:18 G729/8000\r\n" +
		"a=sendrecv\r\n"
	d, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if d.SessionID != 2808844564 {
		t.Fatalf("session id = %d", d.SessionID)
	}
	m, _ := d.FirstAudio()
	if len(m.Payloads) != 2 || m.Payloads[0] != 18 || m.Payloads[1] != 0 {
		t.Fatalf("payloads = %v", m.Payloads)
	}
	if len(d.Attributes) != 2 || d.Attributes[1] != "sendrecv" {
		t.Fatalf("attributes = %v", d.Attributes)
	}
}

func TestParseToleratesBareLF(t *testing.T) {
	raw := "v=0\no=a 1 1 IN IP4 h\ns=x\nc=IN IP4 h\nt=0 0\nm=audio 4000 RTP/AVP 18\n"
	d, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if d.Address != "h" {
		t.Fatalf("address = %q", d.Address)
	}
}

func TestParseIgnoresUnknownLineTypes(t *testing.T) {
	raw := "v=0\r\nc=IN IP4 h\r\nx=experimental\r\nq=also-unknown\r\n"
	if _, err := Parse([]byte(raw)); err != nil {
		t.Fatalf("unknown line types must be ignored: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		raw  string
	}{
		{"empty", ""},
		{"missing version", "c=IN IP4 h\r\n"},
		{"bad version", "v=1\r\nc=IN IP4 h\r\n"},
		{"missing connection", "v=0\r\ns=x\r\n"},
		{"malformed line", "v=0\r\nc=IN IP4 h\r\nzz\r\n"},
		{"bad o line", "v=0\r\no=a 1\r\nc=IN IP4 h\r\n"},
		{"bad o id", "v=0\r\no=a x 1 IN IP4 h\r\nc=IN IP4 h\r\n"},
		{"bad o version", "v=0\r\no=a 1 x IN IP4 h\r\nc=IN IP4 h\r\n"},
		{"bad c line", "v=0\r\nc=IN IP6 ::1\r\n"},
		{"bad media transport", "v=0\r\nc=IN IP4 h\r\nm=audio 4000 UDP 18\r\n"},
		{"video media", "v=0\r\nc=IN IP4 h\r\nm=video 4000 RTP/AVP 96\r\n"},
		{"bad media port", "v=0\r\nc=IN IP4 h\r\nm=audio 99999 RTP/AVP 18\r\n"},
		{"bad payload", "v=0\r\nc=IN IP4 h\r\nm=audio 4000 RTP/AVP 300\r\n"},
		{"short media", "v=0\r\nc=IN IP4 h\r\nm=audio 4000\r\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse([]byte(tt.raw)); err == nil {
				t.Fatalf("accepted %q", tt.raw)
			}
		})
	}
}

func TestFirstAudioEmpty(t *testing.T) {
	d := &Description{}
	if _, ok := d.FirstAudio(); ok {
		t.Fatal("FirstAudio on empty description returned ok")
	}
}

func TestMarshalDefaultsSessionName(t *testing.T) {
	d := &Description{Origin: "a", Address: "h"}
	out := string(d.Marshal())
	if !strings.Contains(out, "s=-\r\n") {
		t.Fatalf("missing default session name:\n%s", out)
	}
}

func TestPayloadName(t *testing.T) {
	if PayloadName(PayloadG729) != "G729/8000" {
		t.Fatal("G729 name wrong")
	}
	if PayloadName(PayloadPCMU) != "PCMU/8000" {
		t.Fatal("PCMU name wrong")
	}
	if PayloadName(96) != "PT96" {
		t.Fatal("dynamic payload name wrong")
	}
}

// Property: New -> Marshal -> Parse preserves address, port, payload.
func TestRoundTripProperty(t *testing.T) {
	prop := func(portRaw uint16, ptRaw uint8, hostRaw string) bool {
		port := int(portRaw)
		if port == 0 {
			port = 1
		}
		pt := int(ptRaw) % 128
		host := "h"
		for _, r := range hostRaw {
			if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '.' {
				host += string(r)
			}
		}
		d := New("user", host, port, pt)
		got, err := Parse(d.Marshal())
		if err != nil {
			return false
		}
		m, ok := got.FirstAudio()
		return ok && got.Address == host && m.Port == port &&
			len(m.Payloads) == 1 && m.Payloads[0] == pt
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// mediaDestWant derives MediaDest's expected result from Parse: ok
// exactly when Parse succeeds and the description carries media.
func mediaDestWant(data []byte) (string, int, int, bool) {
	desc, err := Parse(data)
	if err != nil {
		return "", 0, 0, false
	}
	audio, ok := desc.FirstAudio()
	if !ok || len(audio.Payloads) == 0 {
		return "", 0, 0, false
	}
	return desc.Address, audio.Port, audio.Payloads[0], true
}

// MediaDest must agree with Parse+FirstAudio on valid and invalid
// bodies alike: the hot path and the reference parser are the same
// oracle.
func TestMediaDestMatchesParse(t *testing.T) {
	cases := [][]byte{
		New("alice", "10.0.0.1", 4000, 18).Marshal(),
		New("bob", "media.example.com", 65535, 0).Marshal(),
		[]byte("v=0\r\no=u 1 2 IN IP4 h\r\ns=-\r\nc=IN IP4 h\r\nt=0 0\r\nm=audio 100 RTP/AVP 0 8 18\r\n"),
		[]byte("v=0\nc=IN IP4 h\nm=audio 100 RTP/AVP 0\n"),                         // bare LF
		[]byte("v=0\r\nc=IN IP4 h\r\n"),                                            // no media
		[]byte("c=IN IP4 h\r\nm=audio 100 RTP/AVP 0\r\n"),                          // missing v=
		[]byte("v=1\r\nc=IN IP4 h\r\nm=audio 100 RTP/AVP 0\r\n"),                   // bad version
		[]byte("v=0\r\nm=audio 100 RTP/AVP 0\r\n"),                                 // missing c=
		[]byte("v=0\r\nc=IN IP6 h\r\nm=audio 100 RTP/AVP 0\r\n"),                   // not IP4
		[]byte("v=0\r\nc=IN IP4\r\nm=audio 100 RTP/AVP 0\r\n"),                     // short c=
		[]byte("v=0\r\nc=IN IP4 h x\r\nm=audio 100 RTP/AVP 0\r\n"),                 // long c=
		[]byte("v=0\r\nc=IN IP4 h\r\nm=video 100 RTP/AVP 0\r\n"),                   // not audio
		[]byte("v=0\r\nc=IN IP4 h\r\nm=audio 0 RTP/AVP 0\r\n"),                     // port 0
		[]byte("v=0\r\nc=IN IP4 h\r\nm=audio 70000 RTP/AVP 0\r\n"),                 // port too big
		[]byte("v=0\r\nc=IN IP4 h\r\nm=audio +99 RTP/AVP 0\r\n"),                   // Atoi sign
		[]byte("v=0\r\nc=IN IP4 h\r\nm=audio -1 RTP/AVP 0\r\n"),                    // negative port
		[]byte("v=0\r\nc=IN IP4 h\r\nm=audio x RTP/AVP 0\r\n"),                     // non-numeric port
		[]byte("v=0\r\nc=IN IP4 h\r\nm=audio 100 udp 0\r\n"),                       // wrong profile
		[]byte("v=0\r\nc=IN IP4 h\r\nm=audio 100 RTP/AVP\r\n"),                     // no payloads
		[]byte("v=0\r\nc=IN IP4 h\r\nm=audio 100 RTP/AVP 128\r\n"),                 // payload too big
		[]byte("v=0\r\nc=IN IP4 h\r\nm=audio 100 RTP/AVP -2\r\n"),                  // negative payload
		[]byte("v=0\r\nc=IN IP4 h\r\nm=audio 100 RTP/AVP 0 bad\r\n"),               // junk payload
		[]byte("v=0\r\no=u x 2 IN IP4 h\r\nc=IN IP4 h\r\nm=audio 1 RTP/AVP 0\r\n"), // bad o= id
		[]byte("v=0\r\no=u 1 x IN IP4 h\r\nc=IN IP4 h\r\nm=audio 1 RTP/AVP 0\r\n"), // bad o= ver
		[]byte("v=0\r\no=u 1 2\r\nc=IN IP4 h\r\nm=audio 1 RTP/AVP 0\r\n"),          // short o=
		[]byte("v=0\r\nbogus\r\nc=IN IP4 h\r\nm=audio 1 RTP/AVP 0\r\n"),            // malformed line
		[]byte("v=0\r\nx\r\n"), // line shorter than 2
		[]byte("v=0\r\nz=ignored\r\nc=IN IP4 h\r\nq=unknown\r\nm=audio 1 RTP/AVP 0\r\n"),
		[]byte("v=0\r\nc=IN IP4 a\r\nc=IN IP4 b\r\nm=audio 1 RTP/AVP 5\r\n"), // last c= wins
		[]byte("v=0\r\nc=IN IP4 h\r\nm=audio 1 RTP/AVP 3\r\nm=audio 2 RTP/AVP 4\r\n"),
		[]byte(""),
		[]byte("\r\n\r\n"),
	}
	for _, data := range cases {
		wantAddr, wantPort, wantPT, wantOK := mediaDestWant(data)
		addr, port, pt, ok := MediaDest(data)
		if ok != wantOK {
			t.Errorf("MediaDest(%q) ok=%v, Parse says %v", data, ok, wantOK)
			continue
		}
		if ok && (string(addr) != wantAddr || port != wantPort || pt != wantPT) {
			t.Errorf("MediaDest(%q) = (%q,%d,%d), want (%q,%d,%d)",
				data, addr, port, pt, wantAddr, wantPort, wantPT)
		}
	}
}

// Truncation sweep: every prefix of a valid body must agree too.
func TestMediaDestTruncationSweep(t *testing.T) {
	full := New("alice", "10.0.0.1", 4000, 18).Marshal()
	for i := 0; i <= len(full); i++ {
		data := full[:i]
		wantAddr, wantPort, wantPT, wantOK := mediaDestWant(data)
		addr, port, pt, ok := MediaDest(data)
		if ok != wantOK || (ok && (string(addr) != wantAddr || port != wantPort || pt != wantPT)) {
			t.Fatalf("prefix %d: MediaDest=(%q,%d,%d,%v) want (%q,%d,%d,%v)",
				i, addr, port, pt, ok, wantAddr, wantPort, wantPT, wantOK)
		}
	}
}

func TestMediaDestDoesNotAllocate(t *testing.T) {
	body := New("alice", "10.0.0.1", 4000, 18).Marshal()
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, _, ok := MediaDest(body); !ok {
			t.Fail()
		}
	})
	if allocs != 0 {
		t.Fatalf("MediaDest allocated %.1f per call, want 0", allocs)
	}
}
