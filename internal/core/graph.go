package core

import (
	"fmt"
	"sort"
	"strings"
)

// Reachable computes the set of states reachable from the initial
// state along the transition graph, ignoring guards (an
// over-approximation: a guard can only restrict, never extend,
// reachability).
func (s *Spec) Reachable() map[State]bool {
	seen := map[State]bool{s.Initial: true}
	frontier := []State{s.Initial}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, ts := range s.transitions[cur] {
			for _, t := range ts {
				if !seen[t.To] {
					seen[t.To] = true
					frontier = append(frontier, t.To)
				}
			}
		}
	}
	return seen
}

// CheckReachable verifies every declared state — in particular every
// attack and final state — is reachable from the initial state. An
// unreachable attack state is a detection pattern that can never
// fire: a specification bug.
func (s *Spec) CheckReachable() error {
	reachable := s.Reachable()
	var unreachable []string
	for st := range s.states {
		if !reachable[st] {
			unreachable = append(unreachable, string(st))
		}
	}
	if len(unreachable) > 0 {
		sort.Strings(unreachable)
		return fmt.Errorf("core: %s: unreachable states: %s",
			s.Name, strings.Join(unreachable, ", "))
	}
	return nil
}

// Transitions returns a copy of the transition list, ordered by
// (from, event) for stable output.
func (s *Spec) Transitions() []Transition {
	var out []Transition
	froms := make([]State, 0, len(s.transitions))
	for from := range s.transitions {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	for _, from := range froms {
		events := make([]string, 0, len(s.transitions[from]))
		for ev := range s.transitions[from] {
			events = append(events, ev)
		}
		sort.Strings(events)
		for _, ev := range events {
			out = append(out, s.transitions[from][ev]...)
		}
	}
	return out
}

// DOT renders the machine as a Graphviz digraph: double circles for
// final states, red octagons for attack states, guarded edges dashed.
// This regenerates the paper's state-transition diagrams (Figures 2,
// 4, 5 and 6) from the executable specification.
func (s *Spec) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", s.Name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=ellipse, fontname=\"Helvetica\"];\n")

	for _, st := range s.States() {
		attrs := []string{fmt.Sprintf("label=%q", string(st))}
		switch {
		case s.IsAttack(st):
			attrs = append(attrs, "shape=octagon", "color=red", "fontcolor=red")
		case s.IsFinal(st):
			attrs = append(attrs, "shape=doublecircle")
		}
		if st == s.Initial {
			attrs = append(attrs, "style=bold")
		}
		fmt.Fprintf(&b, "  %q [%s];\n", string(st), strings.Join(attrs, ", "))
	}

	for _, t := range s.Transitions() {
		label := t.Event
		if t.Label != "" {
			label += "\\n[" + t.Label + "]"
		}
		style := "solid"
		if t.Guard != nil {
			style = "dashed" // guarded transition (predicate P_t)
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q, style=%s];\n",
			string(t.From), string(t.To), label, style)
	}
	b.WriteString("}\n")
	return b.String()
}
