package core

import (
	"errors"
	"testing"
	"testing/quick"
)

// pingSpec emits a δ to "pong" when it sees "data"; pongSpec moves on
// that δ. Mirrors the INVITE → δ(SIP→RTP) → RTP Open flow of
// Figure 2(a).
func pingSpec() *Spec {
	s := NewSpec("ping", "INIT")
	s.On("INIT", "data", nil, func(c *Ctx) {
		c.Globals.SetString("g.media", c.Event.StringArg("media"))
		c.Emit("pong", Event{Name: "delta"})
	}, "SENT")
	s.Final("SENT")
	return s
}

func pongSpec() *Spec {
	s := NewSpec("pong", "INIT")
	s.On("INIT", "delta", nil, func(c *Ctx) {
		c.Vars.SetString("l.media", c.Globals.GetString("g.media"))
	}, "OPEN")
	s.On("OPEN", "rtp", nil, nil, "OPEN")
	s.Final("OPEN")
	return s
}

func newPingPong(t *testing.T) *System {
	t.Helper()
	sys := NewSystem()
	if _, err := sys.Add(pingSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Add(pongSpec()); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSyncMessageCrossesMachines(t *testing.T) {
	sys := newPingPong(t)
	results, err := sys.Deliver("ping", Event{
		Name: "data", Args: map[string]any{"media": "host:4000"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two transitions: ping INIT->SENT, then pong INIT->OPEN via δ.
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Machine != "ping" || results[1].Machine != "pong" {
		t.Fatalf("order = %v, %v", results[0].Machine, results[1].Machine)
	}
	pong, _ := sys.Machine("pong")
	if pong.State() != "OPEN" {
		t.Fatalf("pong state = %q", pong.State())
	}
	// The global written by ping's action must be visible to pong.
	if pong.Vars().GetString("l.media") != "host:4000" {
		t.Fatalf("pong media = %q", pong.Vars()["l.media"])
	}
	if sys.PendingSync() != 0 {
		t.Fatalf("pending sync = %d", sys.PendingSync())
	}
}

func TestSyncHasPriorityOverData(t *testing.T) {
	// Construct: machine A that emits sync on "d1"; machine B that
	// only accepts "rtp" AFTER the sync arrived. Delivering d1 to A
	// and then rtp to B must succeed because the δ is drained before
	// the rtp data event (paper Section 4.2 priority rule).
	sys := newPingPong(t)
	if _, err := sys.Deliver("ping", Event{Name: "data"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Deliver("pong", Event{Name: "rtp"}); err != nil {
		t.Fatalf("rtp after sync: %v", err)
	}
}

func TestDataDeviationReported(t *testing.T) {
	sys := newPingPong(t)
	// rtp before the δ opened pong: deviation.
	_, err := sys.Deliver("pong", Event{Name: "rtp"})
	if !errors.Is(err, ErrNoTransition) {
		t.Fatalf("err = %v, want ErrNoTransition", err)
	}
}

func TestSyncNoTransitionTolerated(t *testing.T) {
	// A second "data" would be a deviation for ping (already final),
	// but a stray δ to pong in OPEN is tolerated by drain.
	sys := newPingPong(t)
	if _, err := sys.Deliver("ping", Event{Name: "data"}); err != nil {
		t.Fatal(err)
	}
	// Inject a sync event pong does not accept in OPEN.
	results, err := sys.DeliverSync("pong", Event{Name: "delta-unknown"})
	if err != nil {
		t.Fatalf("stray sync must be tolerated: %v", err)
	}
	if len(results) != 0 {
		t.Fatalf("results = %+v", results)
	}
}

func TestDeliverSyncTimerEvent(t *testing.T) {
	s := NewSpec("timer", "WAIT")
	s.On("WAIT", "timer.T", nil, nil, "CLOSED")
	s.Final("CLOSED")
	sys := NewSystem()
	m, err := sys.Add(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DeliverSync("timer", Event{Name: "timer.T"}); err != nil {
		t.Fatal(err)
	}
	if m.State() != "CLOSED" {
		t.Fatalf("state = %q", m.State())
	}
}

func TestDeliverUnknownMachine(t *testing.T) {
	sys := NewSystem()
	if _, err := sys.Deliver("ghost", Event{Name: "x"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := sys.DeliverSync("ghost", Event{Name: "x"}); err == nil {
		t.Fatal("unknown machine accepted for sync")
	}
}

func TestDuplicateMachineRejected(t *testing.T) {
	sys := NewSystem()
	if _, err := sys.Add(pingSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Add(pingSpec()); err == nil {
		t.Fatal("duplicate machine accepted")
	}
}

func TestEmitToUnknownMachineIgnored(t *testing.T) {
	s := NewSpec("lonely", "A")
	s.On("A", "go", nil, func(c *Ctx) {
		c.Emit("nobody", Event{Name: "x"})
	}, "B")
	sys := NewSystem()
	if _, err := sys.Add(s); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Deliver("lonely", Event{Name: "go"}); err != nil {
		t.Fatalf("emit to absent machine must not fail: %v", err)
	}
}

func TestSystemFlags(t *testing.T) {
	sys := newPingPong(t)
	if sys.InAttack() {
		t.Fatal("fresh system in attack")
	}
	if sys.AllFinal() {
		t.Fatal("fresh system all-final")
	}
	if _, err := sys.Deliver("ping", Event{Name: "data"}); err != nil {
		t.Fatal(err)
	}
	if !sys.AllFinal() {
		t.Fatal("both machines final, AllFinal false")
	}
	if (&System{machines: map[string]*Machine{}}).AllFinal() {
		t.Fatal("empty system must not be all-final")
	}
}

func TestMachinesOrder(t *testing.T) {
	sys := newPingPong(t)
	ms := sys.Machines()
	if len(ms) != 2 || ms[0].Name() != "ping" || ms[1].Name() != "pong" {
		t.Fatalf("machines = %v", ms)
	}
}

func TestMemoryFootprintGrowsWithVars(t *testing.T) {
	sys := newPingPong(t)
	base := sys.MemoryFootprint()
	if base <= 0 {
		t.Fatalf("footprint = %d", base)
	}
	if _, err := sys.Deliver("ping", Event{
		Name: "data", Args: map[string]any{"media": "some.host.example.com:49172"},
	}); err != nil {
		t.Fatal(err)
	}
	after := sys.MemoryFootprint()
	if after <= base {
		t.Fatalf("footprint did not grow: %d -> %d", base, after)
	}
	// Per-call state should be tiny — the paper budgets ~500 bytes
	// per monitored call.
	if after > 2048 {
		t.Fatalf("footprint = %d bytes, implausibly large", after)
	}
}

func TestVarsFootprintTypes(t *testing.T) {
	v := Vars{
		"str": StringVal("abcd"), "int": IntVal(1), "u32": Uint32Val(1),
		"f": Float64Val(1.5), "b": BoolVal(true),
		"other": AnyVal(struct{ X int }{1}),
	}
	got := varsFootprint(v)
	// 3+4 + 3+8 + 3+8 + 1+8 + 1+1 + 5+16 = 61
	if got != 61 {
		t.Fatalf("footprint = %d, want 61", got)
	}
}

// Property: delivering N data events to ping-pong systems never
// leaves sync messages queued (the drain always runs to exhaustion).
func TestDrainExhaustionProperty(t *testing.T) {
	prop := func(n uint8) bool {
		sys := NewSystem()
		if _, err := sys.Add(pingSpec()); err != nil {
			return false
		}
		if _, err := sys.Add(pongSpec()); err != nil {
			return false
		}
		if _, err := sys.Deliver("ping", Event{Name: "data"}); err != nil {
			return false
		}
		for i := 0; i < int(n%32); i++ {
			if _, err := sys.Deliver("pong", Event{Name: "rtp"}); err != nil {
				return false
			}
		}
		return sys.PendingSync() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
