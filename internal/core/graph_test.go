package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestReachableBasic(t *testing.T) {
	s := counterSpec(3)
	r := s.Reachable()
	for _, st := range []State{"INIT", "COUNTING", "ATTACK"} {
		if !r[st] {
			t.Fatalf("state %q not reachable", st)
		}
	}
	if err := s.CheckReachable(); err != nil {
		t.Fatalf("CheckReachable: %v", err)
	}
}

func TestCheckReachableCatchesOrphans(t *testing.T) {
	s := NewSpec("orphan", "A")
	s.On("A", "e", nil, nil, "B")
	// An attack state with no inbound transition: a detection pattern
	// that can never fire.
	s.Attack("NEVER")
	err := s.CheckReachable()
	if err == nil {
		t.Fatal("orphan attack state accepted")
	}
	if !strings.Contains(err.Error(), "NEVER") {
		t.Fatalf("error does not name the orphan: %v", err)
	}
}

func TestTransitionsOrderedAndComplete(t *testing.T) {
	s := counterSpec(3)
	ts := s.Transitions()
	if len(ts) != 4 {
		t.Fatalf("transitions = %d, want 4", len(ts))
	}
	// Deterministic ordering: repeated calls agree.
	ts2 := s.Transitions()
	for i := range ts {
		if ts[i].From != ts2[i].From || ts[i].Event != ts2[i].Event || ts[i].To != ts2[i].To {
			t.Fatal("Transitions() not stable")
		}
	}
}

func TestDOTRendersAllStatesAndEdges(t *testing.T) {
	s := counterSpec(3)
	dot := s.DOT()
	for _, want := range []string{
		"digraph \"counter\"",
		`"INIT"`, `"COUNTING"`, `"ATTACK"`,
		"shape=octagon",      // attack styling
		"shape=doublecircle", // final styling
		"style=dashed",       // guarded edges
		`[flood]`,            // transition label annotation
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// Property: random machines built from random edges never report an
// initial state as unreachable, and every state Reachable() returns
// is in the spec's state set.
func TestReachableSoundnessProperty(t *testing.T) {
	prop := func(edges []uint8) bool {
		s := NewSpec("rand", "S0")
		names := []State{"S0", "S1", "S2", "S3", "S4", "S5"}
		for i, e := range edges {
			from := names[int(e)%len(names)]
			to := names[int(e/6)%len(names)]
			s.On(from, "e"+string(rune('a'+i%4)), nil, nil, to)
		}
		r := s.Reachable()
		if !r["S0"] {
			return false
		}
		states := make(map[State]bool)
		for _, st := range s.States() {
			states[st] = true
		}
		for st := range r {
			if !states[st] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: feeding random event sequences to a machine never panics
// and the state always remains within the declared state set.
func TestRandomEventSequencesStayInGraph(t *testing.T) {
	events := []string{"tick", "reset", "bogus", "e"}
	prop := func(seq []uint8) bool {
		m := NewMachine(counterSpec(4), nil)
		valid := make(map[State]bool)
		for _, st := range m.Spec().States() {
			valid[st] = true
		}
		for _, b := range seq {
			_, err := m.Step(Event{Name: events[int(b)%len(events)]})
			if err != nil && err != ErrNoTransition {
				return false
			}
			if !valid[m.State()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
