package core

// MachineLike is the behavioral surface of one running EFSM instance,
// implemented both by the interpreted Machine and by the compiled
// machines of internal/idsgen. The detection layer (internal/ids)
// holds machines behind this interface so a per-call monitor can run
// either backend; everything here is either cold-path introspection or
// the Step hot path, which both backends keep allocation-free.
type MachineLike interface {
	Name() string
	State() State
	// Vars exposes the local variable vector. The interpreted machine
	// returns its live store; a compiled machine materializes an
	// equivalent map on demand (cold path — tooling and tests only).
	Vars() Vars
	Steps() uint64
	InAttack() bool
	InFinal() bool
	Step(e Event) (StepResult, error)
	Reset()
	SetCoverage(obs CoverageObserver)
}

// Stepper is the per-call communicating-system seam: the surface of a
// System that the detection layer depends on, implemented both by the
// interpreted System and by internal/idsgen's compiled CallSystem.
// Deliver/DeliverSync carry the paper's δ-priority contract (drain
// pending sync messages first, tolerate ErrNoTransition on sync
// events, return the reused result slice); the rest is lifecycle and
// introspection.
type Stepper interface {
	// Globals exposes the shared variable store. Like MachineLike.Vars,
	// a compiled system materializes the map view on demand.
	Globals() Vars
	Deliver(machine string, e Event) ([]StepResult, error)
	DeliverSync(machine string, e Event) ([]StepResult, error)
	// Find returns a member machine by name (ok=false if absent).
	Find(machine string) (MachineLike, bool)
	SetCoverage(obs CoverageObserver)
	Reset()
	InAttack() bool
	AllFinal() bool
	PendingSync() int
	MaxPendingSync() int
	MemoryFootprint() int
}

// Compile-time checks that the interpreted implementations satisfy the
// seam (internal/idsgen asserts the same for the compiled ones).
var (
	_ MachineLike = (*Machine)(nil)
	_ Stepper     = (*System)(nil)
)

// Find returns a member machine behind the MachineLike seam. The
// explicit not-found branch avoids wrapping a typed nil pointer in a
// non-nil interface value.
func (sys *System) Find(name string) (MachineLike, bool) {
	m, ok := sys.machines[name]
	if !ok {
		return nil, false
	}
	return m, true
}
