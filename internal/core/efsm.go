// Package core implements the paper's formal model (Section 4): the
// extended finite state machine (EFSM) quintuple M = (Σ, S, v, D, T)
// and systems of communicating EFSMs joined by reliable FIFO
// synchronization queues.
//
// An EFSM transition t ∈ T is the tuple <s_t, event, P_t, A_t, q_t>:
// from state s_t, on an event carrying input vector x, if the
// predicate P_t(x ∪ v) holds, run the context-update action A_t(v)
// and move to q_t. Deterministic EFSMs require the predicates of
// competing transitions to be mutually disjoint; Step enforces this
// at run time by evaluating every candidate guard.
//
// vids (package ids) builds its SIP and RTP protocol machines on this
// package; the interaction between them — the δ synchronization
// messages of Figure 2 — flows through System's FIFO queues, where
// sync events have priority over data-packet events (Section 4.2).
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// State names one control state of a machine.
type State string

// TypedArgs is a typed backing store for an Event's input vector x.
// The per-packet hot path (internal/ids) hands events a pointer to a
// reusable struct implementing this interface instead of building a
// fresh map[string]any per packet, so classify→step runs without
// boxing every argument through an interface allocation. Lookups
// return ok=false for keys the payload does not carry; the Event
// accessors then fall back to the Args map, which remains the
// spec-authoring and tooling representation (δ emissions, speclint
// probes).
type TypedArgs interface {
	StringArg(key string) (string, bool)
	IntArg(key string) (int, bool)
	Uint32Arg(key string) (uint32, bool)
	DurationArg(key string) (time.Duration, bool)
}

// Event is an element of the event alphabet Σ: a name plus the input
// vector x of named arguments. The vector lives either in Args (the
// general map form) or in Typed (the allocation-free form); the typed
// accessors below consult Typed first and fall back to Args, so
// predicates and actions are agnostic to the representation.
type Event struct {
	Name  string
	Args  map[string]any
	Typed TypedArgs
}

// Arg returns an event argument (nil if absent).
func (e Event) Arg(key string) any {
	if e.Typed != nil {
		if v, ok := e.Typed.StringArg(key); ok {
			return v
		}
		if v, ok := e.Typed.IntArg(key); ok {
			return v
		}
		if v, ok := e.Typed.Uint32Arg(key); ok {
			return v
		}
		if v, ok := e.Typed.DurationArg(key); ok {
			return v
		}
	}
	return e.Args[key]
}

// StringArg returns a string argument ("" if absent or not a string).
func (e Event) StringArg(key string) string {
	if e.Typed != nil {
		//vids:panic-ok TypedArgs implementations are in-repo field-read accessors on scratch structs
		if v, ok := e.Typed.StringArg(key); ok { //vids:alloc-ok TypedArgs implementations are field reads on pre-allocated scratch structs
			return v
		}
	}
	s, _ := e.Args[key].(string)
	return s
}

// IntArg returns an int argument (0 if absent or not an int).
func (e Event) IntArg(key string) int {
	if e.Typed != nil {
		//vids:panic-ok TypedArgs implementations are in-repo field-read accessors on scratch structs
		if v, ok := e.Typed.IntArg(key); ok { //vids:alloc-ok TypedArgs implementations are field reads on pre-allocated scratch structs
			return v
		}
	}
	v, _ := e.Args[key].(int)
	return v
}

// Uint32Arg returns a uint32 argument (0 if absent).
func (e Event) Uint32Arg(key string) uint32 {
	if e.Typed != nil {
		//vids:panic-ok TypedArgs implementations are in-repo field-read accessors on scratch structs
		if v, ok := e.Typed.Uint32Arg(key); ok { //vids:alloc-ok TypedArgs implementations are field reads on pre-allocated scratch structs
			return v
		}
	}
	v, _ := e.Args[key].(uint32)
	return v
}

// DurationArg returns a time.Duration argument (0 if absent).
func (e Event) DurationArg(key string) time.Duration {
	if e.Typed != nil {
		//vids:panic-ok TypedArgs implementations are in-repo field-read accessors on scratch structs
		if v, ok := e.Typed.DurationArg(key); ok { //vids:alloc-ok TypedArgs implementations are field reads on pre-allocated scratch structs
			return v
		}
	}
	v, _ := e.Args[key].(time.Duration)
	return v
}

// Kind discriminates the representation held by a Val.
type Kind uint8

// Val kinds.
const (
	KindNone Kind = iota
	KindString
	KindInt
	KindUint32
	KindBool
	KindDuration
	KindFloat64
	KindAny
)

// Val is one state variable: a small tagged union so that storing a
// string or integer into the variable vector never boxes through an
// interface allocation. The rare value of another type (tooling
// probes, tests) rides in the KindAny escape hatch.
type Val struct {
	kind Kind
	str  string
	num  uint64
	anyv any
}

// StringVal wraps a string.
func StringVal(s string) Val { return Val{kind: KindString, str: s} }

// IntVal wraps an int.
func IntVal(n int) Val { return Val{kind: KindInt, num: uint64(n)} }

// Uint32Val wraps a uint32.
func Uint32Val(n uint32) Val { return Val{kind: KindUint32, num: uint64(n)} }

// BoolVal wraps a bool.
func BoolVal(b bool) Val {
	v := Val{kind: KindBool}
	if b {
		v.num = 1
	}
	return v
}

// DurationVal wraps a time.Duration.
func DurationVal(d time.Duration) Val { return Val{kind: KindDuration, num: uint64(d)} }

// Float64Val wraps a float64.
func Float64Val(f float64) Val { return Val{kind: KindFloat64, num: math.Float64bits(f)} }

// AnyVal wraps an arbitrary value, unboxing the kinds Val represents
// natively. Values of any other type are carried boxed — tooling and
// tests only; hot-path actions use the typed constructors.
func AnyVal(v any) Val {
	switch tv := v.(type) {
	case string:
		return StringVal(tv)
	case int:
		return IntVal(tv)
	case uint32:
		return Uint32Val(tv)
	case bool:
		return BoolVal(tv)
	case time.Duration:
		return DurationVal(tv)
	case float64:
		return Float64Val(tv)
	default:
		return Val{kind: KindAny, anyv: v}
	}
}

// Kind reports the representation tag.
func (v Val) Kind() Kind { return v.kind }

// Any re-materializes the value as an interface (boxing numerics) —
// for tooling and tests, not the packet path.
func (v Val) Any() any {
	switch v.kind {
	case KindString:
		return v.str
	case KindInt:
		return int(v.num)
	case KindUint32:
		return uint32(v.num)
	case KindBool:
		return v.num != 0
	case KindDuration:
		return time.Duration(v.num)
	case KindFloat64:
		return math.Float64frombits(v.num)
	case KindAny:
		return v.anyv
	}
	return nil
}

// Vars is the state-variable vector v. By the paper's convention,
// keys prefixed "l." are local to one machine and keys prefixed "g."
// live in the globals shared across a System.
type Vars map[string]Val

// SetString stores a string variable without boxing.
func (v Vars) SetString(key, s string) { v[key] = StringVal(s) }

// SetInt stores an int variable without boxing.
func (v Vars) SetInt(key string, n int) { v[key] = IntVal(n) }

// SetUint32 stores a uint32 variable without boxing.
func (v Vars) SetUint32(key string, n uint32) { v[key] = Uint32Val(n) }

// SetBool stores a bool variable without boxing.
func (v Vars) SetBool(key string, b bool) { v[key] = BoolVal(b) }

// SetDuration stores a time.Duration variable without boxing.
func (v Vars) SetDuration(key string, d time.Duration) { v[key] = DurationVal(d) }

// Set stores an arbitrary value (see AnyVal).
func (v Vars) Set(key string, val any) { v[key] = AnyVal(val) }

// Any reads a variable back as an interface value (nil if absent).
func (v Vars) Any(key string) any { return v[key].Any() }

// GetString reads a string variable.
func (v Vars) GetString(key string) string {
	val := v[key]
	if val.kind != KindString {
		return ""
	}
	return val.str
}

// GetInt reads an int variable.
func (v Vars) GetInt(key string) int {
	val := v[key]
	if val.kind != KindInt {
		return 0
	}
	return int(val.num)
}

// GetUint32 reads a uint32 variable.
func (v Vars) GetUint32(key string) uint32 {
	val := v[key]
	if val.kind != KindUint32 {
		return 0
	}
	return uint32(val.num)
}

// GetBool reads a bool variable.
func (v Vars) GetBool(key string) bool {
	val := v[key]
	return val.kind == KindBool && val.num != 0
}

// GetDuration reads a time.Duration variable.
func (v Vars) GetDuration(key string) time.Duration {
	val := v[key]
	if val.kind != KindDuration {
		return 0
	}
	return time.Duration(val.num)
}

// Ctx is handed to predicates and actions: the triggering event, the
// machine-local variables, the System-wide globals, and the emit
// buffer for synchronization messages.
type Ctx struct {
	Event   Event
	Vars    Vars // local state variables of this machine
	Globals Vars // variables shared across the communicating system

	emits []SyncMsg
}

// Emit queues a synchronization message to a peer machine. It is
// delivered through the System's FIFO queue after the current
// transition's action completes (c!δ in the paper's CSP notation).
func (c *Ctx) Emit(target string, e Event) {
	c.emits = append(c.emits, SyncMsg{Target: target, Event: e})
}

// Emitted returns the synchronization messages queued by Emit so
// far. Static analysis (internal/speclint) builds a recording Ctx —
// a synthetic event plus fresh variable stores — executes a
// transition's Action against it, and reads the δ emissions back
// through this accessor.
func (c *Ctx) Emitted() []SyncMsg { return c.emits }

// SyncMsg is one δ message in flight between machines.
type SyncMsg struct {
	Target string
	Event  Event
}

// CoverageObserver receives spec-coverage callbacks from Machine.Step:
// which transition fired (keyed by the spec's Transition fields,
// including Label), which δ messages its action emitted, and whether
// it entered an attack state. Observers must not call back into the
// machine and, if shared across machines, must tolerate the hot
// path's call frequency; every parameter is a string or State so a
// conforming observer can record coverage without allocating. A nil
// observer (the default) costs one predictable branch per step —
// alloc_test.go pins that the hook adds zero allocations either way.
type CoverageObserver interface {
	TransitionFired(machine string, from State, event string, to State, label string)
	DeltaEmitted(machine, target, event string)
	AttackEntered(machine string, state State)
}

// Predicate is P_t(x ∪ v): it must be side-effect free.
type Predicate func(c *Ctx) bool

// Action is A_t(v): it updates the state variables and may Emit.
type Action func(c *Ctx)

// Transition is one element of the transition relation T.
type Transition struct {
	From  State
	Event string
	Guard Predicate // nil means "always true"
	Do    Action    // nil means "no update"
	To    State

	// Label annotates the transition for alerts and traces.
	Label string
}

// Spec is the immutable definition of one EFSM: shared by all of its
// per-call instances, so the marginal memory cost of monitoring one
// more call is just the variable vector (paper Section 7.3).
type Spec struct {
	Name    string
	Initial State

	finals  map[State]bool
	attacks map[State]bool
	// transitions indexed by from-state and event name.
	transitions map[State]map[string][]Transition
	states      map[State]bool
	// declared tracks states the author named on purpose: the initial
	// state, transition sources, Final/Attack states, and anything
	// passed to Declare. A state that only ever appears as a
	// transition *target* is not in this set — Validate flags it as a
	// likely typo.
	declared map[State]bool
}

// NewSpec creates a machine definition with its start state.
func NewSpec(name string, initial State) *Spec {
	return &Spec{
		Name:        name,
		Initial:     initial,
		finals:      make(map[State]bool),
		attacks:     make(map[State]bool),
		transitions: make(map[State]map[string][]Transition),
		states:      map[State]bool{initial: true},
		declared:    map[State]bool{initial: true},
	}
}

// On adds a transition. Multiple transitions may share (from, event)
// as long as their guards are mutually disjoint; at most one of them
// may have a nil (catch-all) guard.
func (s *Spec) On(from State, event string, guard Predicate, action Action, to State) *Spec {
	s.OnLabeled("", from, event, guard, action, to)
	return s
}

// OnLabeled adds a transition carrying a label (used to annotate
// attack signatures, paper Section 4.2).
func (s *Spec) OnLabeled(label string, from State, event string, guard Predicate, action Action, to State) *Spec {
	byEvent := s.transitions[from]
	if byEvent == nil {
		byEvent = make(map[string][]Transition)
		s.transitions[from] = byEvent
	}
	byEvent[event] = append(byEvent[event], Transition{
		From: from, Event: event, Guard: guard, Do: action, To: to, Label: label,
	})
	s.states[from] = true
	s.states[to] = true
	s.declared[from] = true
	return s
}

// Declare names states explicitly without attaching semantics. A pure
// sink that is intentionally neither final nor attack (rare — such a
// state traps the machine forever) must be declared this way or
// Validate rejects the transitions targeting it.
func (s *Spec) Declare(states ...State) *Spec {
	for _, st := range states {
		s.states[st] = true
		s.declared[st] = true
	}
	return s
}

// Final marks states as accepting/terminal: reaching one lets the
// fact base evict the call's machines (paper Section 7.3).
func (s *Spec) Final(states ...State) *Spec {
	for _, st := range states {
		s.finals[st] = true
		s.states[st] = true
		s.declared[st] = true
	}
	return s
}

// Attack annotates states whose entry constitutes an attack signature
// match (s_attack in the paper).
func (s *Spec) Attack(states ...State) *Spec {
	for _, st := range states {
		s.attacks[st] = true
		s.states[st] = true
		s.declared[st] = true
	}
	return s
}

// IsFinal reports whether st is a final state.
func (s *Spec) IsFinal(st State) bool { return s.finals[st] }

// IsAttack reports whether st is an attack state.
func (s *Spec) IsAttack(st State) bool { return s.attacks[st] }

// States returns every state mentioned by the spec, sorted.
func (s *Spec) States() []State {
	out := make([]State, 0, len(s.states))
	for st := range s.states {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural well-formedness: the initial state is
// set and part of the declared graph, every (state, event) pair has
// at most one catch-all transition, every transition targets a
// declared state (a typo'd To would otherwise silently create a trap
// state), and attack/final states belong to the graph. Deeper
// semantic checks — reachability, livelock, the δ-channel contract —
// live in internal/speclint.
func (s *Spec) Validate() error {
	if s.Initial == "" {
		return fmt.Errorf("core: %s: no initial state", s.Name)
	}
	if !s.states[s.Initial] {
		return fmt.Errorf("core: %s: initial state %q not in graph", s.Name, s.Initial)
	}
	for _, t := range s.Transitions() {
		if !s.declared[t.To] {
			return fmt.Errorf("core: %s: transition %q -%s-> %q targets an undeclared state (typo? declare it via Final/Attack/Declare or give it an outgoing transition)",
				s.Name, t.From, t.Event, t.To)
		}
	}
	for from, byEvent := range s.transitions {
		for event, ts := range byEvent {
			defaults := 0
			for _, t := range ts {
				if t.Guard == nil {
					defaults++
				}
			}
			if defaults > 1 {
				return fmt.Errorf("core: %s: %d catch-all transitions from %q on %q",
					s.Name, defaults, from, event)
			}
		}
	}
	for st := range s.attacks {
		if !s.states[st] {
			return fmt.Errorf("core: %s: attack state %q not in graph", s.Name, st)
		}
	}
	for st := range s.finals {
		if !s.states[st] {
			return fmt.Errorf("core: %s: final state %q not in graph", s.Name, st)
		}
	}
	return nil
}

// Errors reported by Machine.Step.
var (
	// ErrNoTransition means the event is not accepted in the current
	// configuration: the specification-deviation signal.
	ErrNoTransition = errors.New("core: no transition for event in current state")
	// ErrNondeterministic means two guards were simultaneously true,
	// violating the mutual-disjointness requirement of Section 4.1.
	ErrNondeterministic = errors.New("core: multiple enabled transitions")
)

// Machine is one running instance of a Spec: a configuration
// (state, v) in the paper's terms.
type Machine struct {
	spec    *Spec
	name    string
	state   State
	vars    Vars
	globals Vars

	// ctx is the reusable evaluation context handed to guards and
	// actions: keeping it on the machine (instead of allocating one
	// per Step) keeps the per-packet hot path allocation-free. Step is
	// not reentrant: an Action must not call Step on its own machine
	// (δ messages go through Ctx.Emit and the System queue instead).
	ctx Ctx

	// cover, when non-nil, observes every transition this instance
	// takes (see CoverageObserver). Left nil in production.
	cover CoverageObserver

	steps uint64
}

// NewMachine instantiates a spec. globals is the variable store
// shared with peer machines (may be nil for a standalone machine).
//
//vids:coldpath machine construction happens on monitor-pool miss or first sight of an unsolicited stream, not per packet
func NewMachine(spec *Spec, globals Vars) *Machine {
	if globals == nil {
		globals = make(Vars)
	}
	return &Machine{
		spec:    spec,
		name:    spec.Name,
		state:   spec.Initial,
		vars:    make(Vars),
		globals: globals,
	}
}

// Name returns the machine's name (the spec name).
func (m *Machine) Name() string { return m.name }

// State returns the current control state.
func (m *Machine) State() State { return m.state }

// Vars exposes the local variable vector (callers must treat it as
// owned by the machine).
func (m *Machine) Vars() Vars { return m.vars }

// Spec returns the machine's definition.
func (m *Machine) Spec() *Spec { return m.spec }

// Steps reports how many transitions this instance has taken.
func (m *Machine) Steps() uint64 { return m.steps }

// InFinal reports whether the machine reached a final state.
func (m *Machine) InFinal() bool { return m.spec.IsFinal(m.state) }

// Reset returns the machine to its pristine configuration — initial
// control state, empty variable vector, zero step count — while
// keeping the allocated map and emit-buffer capacity. Monitor pooling
// (internal/ids) recycles machines through this instead of
// re-instantiating the spec per call.
func (m *Machine) Reset() {
	m.state = m.spec.Initial
	clear(m.vars)
	m.ctx.emits = m.ctx.emits[:0]
	m.ctx.Event = Event{}
	m.steps = 0
}

// InAttack reports whether the machine sits in an attack state.
func (m *Machine) InAttack() bool { return m.spec.IsAttack(m.state) }

// SetCoverage installs (or, with nil, removes) a coverage observer.
// Reset does not clear it: a pooled machine keeps observing across
// recycles, which is exactly what the spec-coverage tooling wants.
func (m *Machine) SetCoverage(obs CoverageObserver) { m.cover = obs }

// StepResult describes one transition. Emitted aliases the machine's
// reusable emit buffer: it is valid only until that machine's next
// Step, so retainers must copy it (System.Deliver copies into its
// FIFO queue immediately).
type StepResult struct {
	Machine       string
	From, To      State
	Event         string
	Label         string
	EnteredAttack bool
	EnteredFinal  bool
	Emitted       []SyncMsg
}

// Step feeds one event to the machine. On success it returns the
// transition taken plus any emitted sync messages; ErrNoTransition
// signals a specification deviation, ErrNondeterministic a broken
// spec.
//
//vids:noalloc interpreted EFSM step — reference-backend hot path behind the core.Stepper seam
func (m *Machine) Step(e Event) (StepResult, error) {
	byEvent := m.spec.transitions[m.state]
	candidates := byEvent[e.Name]
	if len(candidates) == 0 {
		return StepResult{Machine: m.name, From: m.state, Event: e.Name}, ErrNoTransition
	}

	ctx := &m.ctx
	ctx.Event = e
	ctx.Vars = m.vars
	ctx.Globals = m.globals
	// Reuse the machine's emit buffer: the returned StepResult aliases
	// it, so Emitted is valid only until this machine's next Step. The
	// System copies emissions into its FIFO queue immediately, which is
	// the only consumer that outlives a step.
	ctx.emits = ctx.emits[:0]
	var chosen *Transition
	var fallback *Transition
	enabled := 0
	for i := range candidates {
		t := &candidates[i]
		if t.Guard == nil {
			fallback = t
			continue
		}
		if t.Guard(ctx) { //vids:alloc-ok guards are pure by the vidslint purity gate; pure predicates do not allocate
			enabled++
			chosen = t
		}
	}
	if enabled > 1 {
		return StepResult{Machine: m.name, From: m.state, Event: e.Name}, ErrNondeterministic
	}
	if chosen == nil {
		chosen = fallback
	}
	if chosen == nil {
		return StepResult{Machine: m.name, From: m.state, Event: e.Name}, ErrNoTransition
	}

	if chosen.Do != nil {
		chosen.Do(ctx) //vids:alloc-ok transition actions mutate pre-allocated Vars; specs keep them scratch-based
	}
	from := m.state
	m.state = chosen.To
	m.steps++
	if m.cover != nil {
		m.cover.TransitionFired(m.name, from, e.Name, chosen.To, chosen.Label) //vids:alloc-ok coverage observers take word-sized args; TestAllocBudgetCoverageHook holds the budget
		for i := range ctx.emits {
			m.cover.DeltaEmitted(m.name, ctx.emits[i].Target, ctx.emits[i].Event.Name) //vids:alloc-ok coverage observers take word-sized args; TestAllocBudgetCoverageHook holds the budget
		}
		if m.spec.IsAttack(chosen.To) && from != chosen.To {
			m.cover.AttackEntered(m.name, chosen.To) //vids:alloc-ok coverage observers take word-sized args; TestAllocBudgetCoverageHook holds the budget
		}
	}
	return StepResult{
		Machine: m.name,
		From:    from,
		To:      chosen.To,
		Event:   e.Name,
		Label:   chosen.Label,
		// "Entered" means a genuine state change into the flagged
		// state: absorbing self-loops inside an attack state do not
		// re-trigger.
		EnteredAttack: m.spec.IsAttack(chosen.To) && from != chosen.To,
		EnteredFinal:  m.spec.IsFinal(chosen.To) && from != chosen.To,
		Emitted:       ctx.emits,
	}, nil
}
