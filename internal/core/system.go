package core

import (
	"fmt"
)

// System is a set of communicating EFSMs sharing a global variable
// store, joined by reliable FIFO synchronization queues
// (paper Figure 2(b)). One System monitors one call.
type System struct {
	machines map[string]*Machine
	order    []string
	globals  Vars

	// queue holds pending δ messages in arrival order. The paper
	// models one FIFO queue per machine pair; a single global FIFO
	// with per-message targets preserves the same per-pair ordering
	// because appends happen in emission order. qhead indexes the next
	// message to pop so the backing array's capacity is reused instead
	// of creeping away one element per pop.
	queue []SyncMsg
	qhead int

	// maxPending is the high-water mark of the δ FIFO: the largest
	// number of queued-but-undelivered sync messages observed since the
	// last Reset. speclint's queue-bound witnesses replay against it.
	maxPending int

	// cover is applied to every member machine (present and future);
	// see CoverageObserver.
	cover CoverageObserver

	results []StepResult
}

// NewSystem creates an empty communicating system.
//
//vids:coldpath system construction happens on monitor-pool miss only; steady-state churn recycles monitors
func NewSystem() *System {
	return &System{
		machines: make(map[string]*Machine),
		globals:  make(Vars),
	}
}

// Globals exposes the shared variable store (v.g_* in the paper).
func (sys *System) Globals() Vars { return sys.globals }

// Add instantiates spec inside the system. Machine names must be
// unique.
func (sys *System) Add(spec *Spec) (*Machine, error) {
	if _, dup := sys.machines[spec.Name]; dup {
		return nil, fmt.Errorf("core: duplicate machine %q", spec.Name) //vids:alloc-ok unknown-machine registration is a wiring bug; error path only
	}
	m := NewMachine(spec, sys.globals)
	m.cover = sys.cover
	sys.machines[spec.Name] = m //vids:alloc-ok one entry per machine, bound at monitor construction
	sys.order = append(sys.order, spec.Name)
	return m, nil
}

// SetCoverage installs (or, with nil, removes) a coverage observer on
// every member machine, including machines added later.
func (sys *System) SetCoverage(obs CoverageObserver) {
	sys.cover = obs
	for _, m := range sys.machines {
		m.cover = obs
	}
}

// Machine returns a member machine by name.
func (sys *System) Machine(name string) (*Machine, bool) {
	m, ok := sys.machines[name]
	return m, ok
}

// Machines lists member machines in insertion order.
func (sys *System) Machines() []*Machine {
	out := make([]*Machine, 0, len(sys.order))
	for _, name := range sys.order {
		out = append(out, sys.machines[name])
	}
	return out
}

// PendingSync reports queued δ messages not yet consumed.
func (sys *System) PendingSync() int { return len(sys.queue) - sys.qhead }

// MaxPendingSync reports the δ FIFO's high-water mark since the last
// Reset: the largest backlog of sync messages that ever waited for
// delivery. A correctly specified system keeps this small (each
// transition emits at most a couple of δs, drained immediately);
// speclint's delta-queue-bound check flags specs that can push it
// past Options.MaxQueue, and its replayed witnesses assert the
// violation through this accessor.
func (sys *System) MaxPendingSync() int { return sys.maxPending }

// noteBacklog updates the high-water mark after an enqueue.
func (sys *System) noteBacklog() {
	if n := len(sys.queue) - sys.qhead; n > sys.maxPending {
		sys.maxPending = n
	}
}

// Reset returns every member machine to its initial configuration and
// clears the shared globals, FIFO queue and result buffer, keeping
// all allocated capacity. Monitor pooling (internal/ids) recycles a
// whole per-call system through this between calls.
func (sys *System) Reset() {
	for _, m := range sys.machines {
		m.Reset()
	}
	clear(sys.globals)
	sys.queue = sys.queue[:0]
	sys.qhead = 0
	sys.maxPending = 0
	sys.results = sys.results[:0]
}

// Deliver feeds a data-packet event to the named machine. Per the
// paper's priority rule, all pending synchronization events are
// drained first, and any sync messages emitted by the triggered
// transitions are drained afterwards as well.
//
// The returned results list every transition taken (sync-triggered
// and data-triggered, in execution order). An ErrNoTransition from
// the *data* event is returned as a deviation; sync events that find
// no transition are tolerated (the peer machine may legitimately have
// moved past the state that cared).
//
// The returned slice is owned by the System and reused: it is valid
// only until the next Deliver/DeliverSync call. The per-packet hot
// path consumes it synchronously; callers that need to retain results
// must copy them.
//
//vids:noalloc interpreted per-packet delivery path behind the core.Stepper seam
func (sys *System) Deliver(machine string, e Event) ([]StepResult, error) {
	m, ok := sys.machines[machine]
	if !ok {
		return nil, fmt.Errorf("core: unknown machine %q", machine) //vids:alloc-ok unknown-machine delivery is a wiring bug; error path only
	}
	sys.results = sys.results[:0]

	if err := sys.drain(); err != nil {
		return sys.results, err
	}

	res, err := m.Step(e)
	if err != nil {
		return sys.results, err
	}
	sys.results = append(sys.results, res)
	sys.queue = append(sys.queue, res.Emitted...)
	sys.noteBacklog()

	if err := sys.drain(); err != nil {
		return sys.results, err
	}
	return sys.results, nil
}

// DeliverSync injects a sync event directly (used for timer expiries
// that the IDS schedules on behalf of a machine). Like Deliver, the
// returned slice is reused by the System and valid only until the
// next Deliver/DeliverSync call.
//
//vids:noalloc interpreted timer/sync delivery path behind the core.Stepper seam
func (sys *System) DeliverSync(machine string, e Event) ([]StepResult, error) {
	if _, ok := sys.machines[machine]; !ok {
		return nil, fmt.Errorf("core: unknown machine %q", machine) //vids:alloc-ok unknown-machine delivery is a wiring bug; error path only
	}
	sys.results = sys.results[:0]
	sys.queue = append(sys.queue, SyncMsg{Target: machine, Event: e})
	sys.noteBacklog()
	err := sys.drain()
	return sys.results, err
}

// drain processes the sync queue to exhaustion in FIFO order.
func (sys *System) drain() error {
	for sys.qhead < len(sys.queue) {
		msg := sys.queue[sys.qhead]
		sys.qhead++
		m, ok := sys.machines[msg.Target]
		if !ok {
			continue // emitted to a machine this system doesn't run
		}
		res, err := m.Step(msg.Event)
		if err != nil {
			if err == ErrNoTransition {
				continue // peer no longer cares; not a deviation
			}
			return err
		}
		sys.results = append(sys.results, res)
		sys.queue = append(sys.queue, res.Emitted...)
		sys.noteBacklog()
	}
	// Empty: rewind onto the same backing array so the next Deliver
	// appends from the front instead of creeping toward a realloc.
	sys.queue = sys.queue[:0]
	sys.qhead = 0
	return nil
}

// InAttack reports whether any member machine sits in an attack state.
func (sys *System) InAttack() bool {
	for _, m := range sys.machines {
		if m.InAttack() {
			return true
		}
	}
	return false
}

// AllFinal reports whether every member machine reached a final state.
func (sys *System) AllFinal() bool {
	for _, m := range sys.machines {
		if !m.InFinal() {
			return false
		}
	}
	return len(sys.machines) > 0
}

// MemoryFootprint estimates the bytes held by the per-call
// configuration — the state variables and control states — mirroring
// the paper's per-call memory accounting (Section 7.3). Spec graphs
// are shared and excluded.
func (sys *System) MemoryFootprint() int {
	total := 0
	for _, m := range sys.machines {
		total += len(m.state)
		total += varsFootprint(m.vars)
	}
	total += varsFootprint(sys.globals)
	return total
}

func varsFootprint(v Vars) int {
	total := 0
	for k, val := range v {
		total += len(k)
		switch val.kind {
		case KindString:
			total += len(val.str)
		case KindInt, KindUint32, KindDuration, KindFloat64:
			total += 8
		case KindBool:
			total++
		default:
			total += 16 // interface header approximation
		}
	}
	return total
}
