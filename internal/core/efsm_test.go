package core

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// counterSpec builds a machine that counts "tick" events and enters
// an attack state when the count exceeds limit.
func counterSpec(limit int) *Spec {
	s := NewSpec("counter", "INIT")
	s.On("INIT", "tick", nil, func(c *Ctx) { c.Vars.SetInt("l.count", 1) }, "COUNTING")
	s.On("COUNTING", "tick",
		func(c *Ctx) bool { return c.Vars.GetInt("l.count") < limit },
		func(c *Ctx) { c.Vars.SetInt("l.count", c.Vars.GetInt("l.count")+1) },
		"COUNTING")
	s.OnLabeled("flood", "COUNTING", "tick",
		func(c *Ctx) bool { return c.Vars.GetInt("l.count") >= limit },
		nil, "ATTACK")
	s.On("COUNTING", "reset", nil, func(c *Ctx) { delete(c.Vars, "l.count") }, "INIT")
	s.Attack("ATTACK")
	s.Final("INIT")
	return s
}

func TestMachineBasicTransitions(t *testing.T) {
	m := NewMachine(counterSpec(3), nil)
	if m.State() != "INIT" {
		t.Fatalf("initial state = %q", m.State())
	}
	res, err := m.Step(Event{Name: "tick"})
	if err != nil {
		t.Fatal(err)
	}
	if res.From != "INIT" || res.To != "COUNTING" {
		t.Fatalf("transition = %+v", res)
	}
	if m.Vars().GetInt("l.count") != 1 {
		t.Fatalf("count = %v", m.Vars()["l.count"])
	}
	if m.Steps() != 1 {
		t.Fatalf("steps = %d", m.Steps())
	}
}

func TestGuardedSelfLoopAndAttackEntry(t *testing.T) {
	m := NewMachine(counterSpec(3), nil)
	var last StepResult
	for i := 0; i < 4; i++ {
		var err error
		last, err = m.Step(Event{Name: "tick"})
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	if !last.EnteredAttack {
		t.Fatalf("4th tick with limit 3 must enter attack, got %+v", last)
	}
	if last.Label != "flood" {
		t.Fatalf("label = %q", last.Label)
	}
	if !m.InAttack() {
		t.Fatal("machine not in attack state")
	}
}

func TestNoTransitionIsDeviation(t *testing.T) {
	m := NewMachine(counterSpec(3), nil)
	if _, err := m.Step(Event{Name: "bogus"}); !errors.Is(err, ErrNoTransition) {
		t.Fatalf("err = %v, want ErrNoTransition", err)
	}
	// Known event name but guard-rejected in this state: also a
	// deviation. "reset" is only defined from COUNTING.
	if _, err := m.Step(Event{Name: "reset"}); !errors.Is(err, ErrNoTransition) {
		t.Fatalf("err = %v, want ErrNoTransition", err)
	}
}

func TestNondeterminismDetected(t *testing.T) {
	s := NewSpec("bad", "A")
	s.On("A", "e", func(c *Ctx) bool { return true }, nil, "B")
	s.On("A", "e", func(c *Ctx) bool { return true }, nil, "C")
	m := NewMachine(s, nil)
	if _, err := m.Step(Event{Name: "e"}); !errors.Is(err, ErrNondeterministic) {
		t.Fatalf("err = %v, want ErrNondeterministic", err)
	}
}

func TestDisjointGuardsAreDeterministic(t *testing.T) {
	s := NewSpec("ok", "A")
	s.On("A", "e", func(c *Ctx) bool { return c.Event.IntArg("x") > 0 }, nil, "POS")
	s.On("A", "e", func(c *Ctx) bool { return c.Event.IntArg("x") <= 0 }, nil, "NONPOS")
	m := NewMachine(s, nil)
	res, err := m.Step(Event{Name: "e", Args: map[string]any{"x": 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.To != "POS" {
		t.Fatalf("to = %q", res.To)
	}
}

func TestFallbackGuardFiresOnlyWhenOthersFail(t *testing.T) {
	s := NewSpec("fb", "A")
	s.On("A", "e", func(c *Ctx) bool { return c.Event.IntArg("x") > 10 }, nil, "BIG")
	s.On("A", "e", nil, nil, "DEFAULT")
	m := NewMachine(s, nil)
	res, err := m.Step(Event{Name: "e", Args: map[string]any{"x": 50}})
	if err != nil {
		t.Fatal(err)
	}
	if res.To != "BIG" {
		t.Fatalf("guarded transition not preferred: %q", res.To)
	}
	m2 := NewMachine(s, nil)
	res, err = m2.Step(Event{Name: "e", Args: map[string]any{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.To != "DEFAULT" {
		t.Fatalf("fallback not taken: %q", res.To)
	}
}

func TestSpecValidate(t *testing.T) {
	good := counterSpec(3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	dup := NewSpec("dup", "A")
	dup.On("A", "e", nil, nil, "B")
	dup.On("A", "e", nil, nil, "C")
	dup.Final("B", "C")
	if err := dup.Validate(); err == nil {
		t.Fatal("two catch-alls accepted")
	}
}

func TestValidateRejectsUnsetInitial(t *testing.T) {
	if err := (&Spec{Name: "zero"}).Validate(); err == nil {
		t.Fatal("spec without initial state accepted")
	}
	s := NewSpec("detached", "A")
	s.On("A", "e", nil, nil, "A")
	s.Initial = "GHOST" // hand-edited after construction
	if err := s.Validate(); err == nil {
		t.Fatal("initial state outside the graph accepted")
	}
}

func TestValidateRejectsUndeclaredTarget(t *testing.T) {
	// "CLOSDE" is a typo'd target: it only ever appears as a To state,
	// so nothing can leave it and it is neither final nor attack.
	s := NewSpec("typo", "A")
	s.On("A", "e", nil, nil, "CLOSDE")
	err := s.Validate()
	if err == nil {
		t.Fatal("transition to undeclared state accepted")
	}
	if !strings.Contains(err.Error(), "CLOSDE") {
		t.Fatalf("error does not name the typo'd state: %v", err)
	}

	// Declaring the sink (any of the three ways) repairs it.
	s.Declare("CLOSDE")
	if err := s.Validate(); err != nil {
		t.Fatalf("declared sink still rejected: %v", err)
	}

	f := NewSpec("final-sink", "A")
	f.On("A", "e", nil, nil, "DONE").Final("DONE")
	if err := f.Validate(); err != nil {
		t.Fatalf("final sink rejected: %v", err)
	}
}

func TestCtxEmittedRecordsSyncMessages(t *testing.T) {
	ctx := &Ctx{Event: Event{Name: "e"}, Vars: make(Vars), Globals: make(Vars)}
	if got := ctx.Emitted(); len(got) != 0 {
		t.Fatalf("fresh ctx has emissions: %v", got)
	}
	ctx.Emit("peer", Event{Name: "delta.x"})
	ctx.Emit("other", Event{Name: "delta.y"})
	got := ctx.Emitted()
	if len(got) != 2 || got[0].Target != "peer" || got[1].Event.Name != "delta.y" {
		t.Fatalf("recorded emissions = %v", got)
	}
}

func TestSpecStatesAndFlags(t *testing.T) {
	s := counterSpec(3)
	states := s.States()
	want := map[State]bool{"INIT": true, "COUNTING": true, "ATTACK": true}
	for _, st := range states {
		delete(want, st)
	}
	if len(want) != 0 {
		t.Fatalf("missing states %v in %v", want, states)
	}
	if !s.IsAttack("ATTACK") || s.IsAttack("INIT") {
		t.Fatal("attack flags wrong")
	}
	if !s.IsFinal("INIT") || s.IsFinal("ATTACK") {
		t.Fatal("final flags wrong")
	}
}

func TestEventArgHelpers(t *testing.T) {
	e := Event{Name: "x", Args: map[string]any{
		"s": "str", "i": 42, "u": uint32(7),
	}}
	if e.StringArg("s") != "str" || e.StringArg("i") != "" {
		t.Fatal("StringArg wrong")
	}
	if e.IntArg("i") != 42 || e.IntArg("s") != 0 {
		t.Fatal("IntArg wrong")
	}
	if e.Uint32Arg("u") != 7 || e.Uint32Arg("missing") != 0 {
		t.Fatal("Uint32Arg wrong")
	}
	if e.Arg("missing") != nil {
		t.Fatal("Arg on missing key")
	}
}

func TestVarsHelpers(t *testing.T) {
	v := Vars{"s": StringVal("x"), "i": IntVal(3), "u": Uint32Val(9), "b": BoolVal(true)}
	if v.GetString("s") != "x" || v.GetInt("i") != 3 ||
		v.GetUint32("u") != 9 || !v.GetBool("b") {
		t.Fatal("vars getters wrong")
	}
	if v.GetString("i") != "" || v.GetInt("s") != 0 {
		t.Fatal("type-mismatch getters must zero")
	}
}

// Property: the counter machine deterministically enters the attack
// state on exactly tick number limit+1, for any limit in 1..50.
func TestCounterAttackTimingProperty(t *testing.T) {
	prop := func(rawLimit uint8) bool {
		limit := int(rawLimit)%50 + 1
		m := NewMachine(counterSpec(limit), nil)
		for i := 1; ; i++ {
			res, err := m.Step(Event{Name: "tick"})
			if err != nil {
				return false
			}
			if res.EnteredAttack {
				return i == limit+1
			}
			if i > limit+1 {
				return false
			}
		}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
