package engine

import (
	"fmt"
	"sort"
	"time"

	"vids/internal/rtp"
	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/trace"
)

// SynthConfig sizes a synthetic trace. The generator exists because
// the simulated testbed places calls at the paper's arrival rate — far
// too few concurrent calls to load-balance a multi-shard engine — and
// benchmarks need a workload whose call population actually spreads
// over the shards.
type SynthConfig struct {
	// Calls is the number of benign dialogs.
	Calls int
	// RTPPerCall is how many RTP packets each direction carries.
	RTPPerCall int
	// FirstCall offsets the dialog numbering, so several Synthesize
	// invocations with disjoint [FirstCall, FirstCall+Calls) ranges
	// produce traces that can be fed concurrently without Call-ID or
	// media-port collisions.
	FirstCall int
	// Attacks injects one instance of each attack scenario the IDS
	// detects, so a replay exercises every alert path.
	Attacks bool
}

// Synthesize builds a time-ordered synthetic trace: Calls complete
// SIP dialogs with two-way G.729 media and periodic RTCP sender
// reports, starting 5 ms apart so many calls are concurrently active,
// plus (optionally) the attack scenarios. The layout is deterministic:
// the same config always yields byte-identical entries.
func Synthesize(cfg SynthConfig) []trace.Entry {
	g := &synthGen{}
	for i := 0; i < cfg.Calls; i++ {
		start := time.Duration(i) * 5 * time.Millisecond
		g.benignCall(cfg.FirstCall+i, start, cfg.RTPPerCall, true)
	}
	if cfg.Attacks {
		base := time.Duration(cfg.Calls)*5*time.Millisecond + 2*time.Second
		g.inviteFlood(base, 25)
		g.reflectedResponses(base+time.Second, 25)
		g.spoofedBye(base + 2*time.Second)
		g.rtcpByeInjection(base + 3*time.Second)
		g.unsolicitedSpam(base + 4*time.Second)
		g.rogueRegister(base + 4500*time.Millisecond)
		g.unknownCallRequest(base + 4600*time.Millisecond)
	}
	sort.SliceStable(g.entries, func(i, j int) bool {
		return g.entries[i].AtNanos < g.entries[j].AtNanos
	})
	return g.entries
}

type synthGen struct {
	entries []trace.Entry
}

func (g *synthGen) add(at time.Duration, proto sim.Proto, from, to sim.Addr, payload []byte) {
	g.entries = append(g.entries, trace.Entry{
		AtNanos:  int64(at),
		Proto:    proto.String(),
		FromHost: from.Host,
		FromPort: from.Port,
		ToHost:   to.Host,
		ToPort:   to.Port,
		Size:     len(payload),
		Data:     payload,
	})
}

// dialog holds the endpoints of one synthetic call.
type dialog struct {
	callID     string
	callerHost string
	calleeHost string
	callerAddr sim.Addr // caller's signaling endpoint
	calleeAddr sim.Addr
	callerMed  sim.Addr // where the callee's stream lands (caller's SDP)
	calleeMed  sim.Addr // where the caller's stream lands (callee's SDP)
	inv        *sipmsg.Message
	ok         *sipmsg.Message
}

func newDialog(i int, tag string) *dialog {
	d := &dialog{
		callID:     fmt.Sprintf("%s-%d@a.example.com", tag, i),
		callerHost: fmt.Sprintf("ua%d.a.example.com", i%97),
		calleeHost: fmt.Sprintf("ua%d.b.example.com", i%89),
	}
	d.callerAddr = sim.Addr{Host: d.callerHost, Port: 5060}
	d.calleeAddr = sim.Addr{Host: d.calleeHost, Port: 5060}
	d.callerMed = sim.Addr{Host: d.callerHost, Port: 20000 + 4*(i%5000)}
	d.calleeMed = sim.Addr{Host: d.calleeHost, Port: 40000 + 4*(i%5000)}

	callerUser := fmt.Sprintf("alice%d", i)
	calleeUser := fmt.Sprintf("bob%d", i)
	inv := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{User: calleeUser, Host: "b.example.com"})
	inv.Via = []sipmsg.Via{{Transport: "UDP", Host: d.callerHost, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bK" + d.callID}}}
	inv.From = sipmsg.NameAddr{URI: sipmsg.URI{User: callerUser, Host: "a.example.com"}}.
		WithTag(fmt.Sprintf("ct%d", i))
	inv.To = sipmsg.NameAddr{URI: sipmsg.URI{User: calleeUser, Host: "b.example.com"}}
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: callerUser, Host: d.callerHost}}
	inv.Contact = &contact
	inv.CallID = d.callID
	inv.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
	inv.ContentType = "application/sdp"
	inv.Body = sdp.New(callerUser, d.callerMed.Host, d.callerMed.Port, sdp.PayloadG729).Marshal()
	d.inv = inv

	ok := sipmsg.NewResponse(inv, sipmsg.StatusOK)
	ok.To = ok.To.WithTag(fmt.Sprintf("et%d", i))
	okContact := sipmsg.NameAddr{URI: sipmsg.URI{User: calleeUser, Host: d.calleeHost}}
	ok.Contact = &okContact
	ok.ContentType = "application/sdp"
	ok.Body = sdp.New(calleeUser, d.calleeMed.Host, d.calleeMed.Port, sdp.PayloadG729).Marshal()
	d.ok = ok
	return d
}

func (d *dialog) ack() *sipmsg.Message {
	ack := sipmsg.NewRequest(sipmsg.ACK, sipmsg.URI{User: d.ok.To.URI.User, Host: d.calleeHost})
	ack.Via = d.inv.Via
	ack.From = d.inv.From
	ack.To = d.ok.To
	ack.CallID = d.callID
	ack.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.ACK}
	return ack
}

func (d *dialog) bye() *sipmsg.Message {
	bye := sipmsg.NewRequest(sipmsg.BYE, sipmsg.URI{User: d.ok.To.URI.User, Host: d.calleeHost})
	bye.Via = d.inv.Via
	bye.From = d.inv.From
	bye.To = d.ok.To
	bye.CallID = d.callID
	bye.CSeq = sipmsg.CSeq{Seq: 2, Method: sipmsg.BYE}
	return bye
}

func rtpBytes(ssrc uint32, seq uint16, ts uint32) []byte {
	p := &rtp.Packet{PayloadType: sdp.PayloadG729, Sequence: seq, Timestamp: ts,
		SSRC: ssrc, Payload: make([]byte, 20)}
	raw, err := p.Marshal()
	if err != nil {
		panic(err) // static header fields; cannot fail
	}
	return raw
}

func rtcpBytes(typ uint8, ssrc uint32) []byte {
	p := &rtp.RTCP{Type: typ, SSRC: ssrc}
	raw, err := p.Marshal()
	if err != nil {
		panic(err)
	}
	return raw
}

// benignCall emits one complete dialog: INVITE/200/ACK, n RTP packets
// each way at the 20 ms G.729 cadence with one RTCP sender report per
// direction, then BYE/200 if hangUp.
func (g *synthGen) benignCall(i int, start time.Duration, n int, hangUp bool) *dialog {
	d := newDialog(i, "synth")
	g.add(start, sim.ProtoSIP, d.callerAddr, d.calleeAddr, d.inv.Bytes())
	g.add(start+20*time.Millisecond, sim.ProtoSIP, d.calleeAddr, d.callerAddr, d.ok.Bytes())
	g.add(start+40*time.Millisecond, sim.ProtoSIP, d.callerAddr, d.calleeAddr, d.ack().Bytes())

	callerSSRC := 0xC0000000 + uint32(i)
	calleeSSRC := 0xD0000000 + uint32(i)
	mediaStart := start + 60*time.Millisecond
	for k := 0; k < n; k++ {
		at := mediaStart + time.Duration(k)*20*time.Millisecond
		// Caller's stream lands on the callee's advertised address…
		g.add(at, sim.ProtoRTP,
			sim.Addr{Host: d.callerHost, Port: d.callerMed.Port},
			d.calleeMed, rtpBytes(callerSSRC, uint16(k+1), uint32(k+1)*160))
		// …and vice versa.
		g.add(at+time.Millisecond, sim.ProtoRTP,
			sim.Addr{Host: d.calleeHost, Port: d.calleeMed.Port},
			d.callerMed, rtpBytes(calleeSSRC, uint16(k+1), uint32(k+1)*160))
		if k == n/2 {
			g.add(at+2*time.Millisecond, sim.ProtoRTCP,
				sim.Addr{Host: d.callerHost, Port: d.callerMed.Port + 1},
				sim.Addr{Host: d.calleeMed.Host, Port: d.calleeMed.Port + 1},
				rtcpBytes(rtp.RTCPSenderReport, callerSSRC))
		}
	}
	if hangUp {
		end := mediaStart + time.Duration(n)*20*time.Millisecond
		g.add(end, sim.ProtoSIP, d.callerAddr, d.calleeAddr, d.bye().Bytes())
		byeOK := sipmsg.NewResponse(d.bye(), sipmsg.StatusOK)
		g.add(end+20*time.Millisecond, sim.ProtoSIP, d.calleeAddr, d.callerAddr, byeOK.Bytes())
	}
	return d
}

// inviteFlood sends n initial INVITEs with distinct Call-IDs at one
// victim AOR within the Figure 4 window.
func (g *synthGen) inviteFlood(start time.Duration, n int) {
	atk := sim.Addr{Host: "attacker.example.net", Port: 5060}
	victim := sim.Addr{Host: "proxy.b.example.com", Port: 5060}
	for i := 0; i < n; i++ {
		inv := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{User: "victim", Host: "b.example.com"})
		inv.Via = []sipmsg.Via{{Transport: "UDP", Host: atk.Host, Port: 5060,
			Params: map[string]string{"branch": fmt.Sprintf("z9hG4bKflood%d", i)}}}
		inv.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "prankster", Host: "example.net"}}.
			WithTag(fmt.Sprintf("ft%d", i))
		inv.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "victim", Host: "b.example.com"}}
		contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "prankster", Host: atk.Host}}
		inv.Contact = &contact
		inv.CallID = fmt.Sprintf("flood-%d@example.net", i)
		inv.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
		inv.ContentType = "application/sdp"
		inv.Body = sdp.New("prankster", atk.Host, 50000+4*i, sdp.PayloadG729).Marshal()
		g.add(start+time.Duration(i)*10*time.Millisecond, sim.ProtoSIP, atk, victim, inv.Bytes())
	}
}

// reflectedResponses sends n SIP responses for calls the victim never
// initiated — the DRDoS reflection signature.
func (g *synthGen) reflectedResponses(start time.Duration, n int) {
	victim := sim.Addr{Host: "reflect.b.example.com", Port: 5060}
	for i := 0; i < n; i++ {
		// Build the response via the request the reflector pretends to
		// have answered.
		fake := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{User: "x", Host: "b.example.com"})
		fake.Via = []sipmsg.Via{{Transport: "UDP", Host: victim.Host, Port: 5060,
			Params: map[string]string{"branch": fmt.Sprintf("z9hG4bKrefl%d", i)}}}
		fake.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "x", Host: "b.example.com"}}.
			WithTag(fmt.Sprintf("rt%d", i))
		fake.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "y", Host: "example.org"}}
		fake.CallID = fmt.Sprintf("refl-%d@example.org", i)
		fake.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
		resp := sipmsg.NewResponse(fake, sipmsg.StatusOK)
		resp.To = resp.To.WithTag(fmt.Sprintf("rr%d", i))
		src := sim.Addr{Host: fmt.Sprintf("reflector%d.example.org", i%7), Port: 5060}
		g.add(start+time.Duration(i)*10*time.Millisecond, sim.ProtoSIP, src, victim, resp.Bytes())
	}
}

// spoofedBye runs the paper's flagship scenario (Figure 5): a call is
// torn down by a BYE the caller never sent, then both parties keep
// talking past the grace window — BYE DoS on the callee's stream,
// toll fraud on the "hung up" caller's.
func (g *synthGen) spoofedBye(start time.Duration) {
	d := g.benignCall(1000, start, 3, false)
	byeAt := start + 60*time.Millisecond + 3*20*time.Millisecond
	// The attacker spoofs the caller's identity; at the IP layer the
	// packet claims the caller's host, which is exactly what vids sees.
	g.add(byeAt, sim.ProtoSIP, d.callerAddr, d.calleeAddr, d.bye().Bytes())
	byeOK := sipmsg.NewResponse(d.bye(), sipmsg.StatusOK)
	g.add(byeAt+20*time.Millisecond, sim.ProtoSIP, d.calleeAddr, d.callerAddr, byeOK.Bytes())
	// Both media directions continue well past ByeGraceT (250 ms).
	after := byeAt + 500*time.Millisecond
	g.add(after, sim.ProtoRTP,
		sim.Addr{Host: d.callerHost, Port: d.callerMed.Port},
		d.calleeMed, rtpBytes(0xC0000000+1000, 4, 4*160))
	g.add(after+time.Millisecond, sim.ProtoRTP,
		sim.Addr{Host: d.calleeHost, Port: d.calleeMed.Port},
		d.callerMed, rtpBytes(0xD0000000+1000, 4, 4*160))
}

// rtcpByeInjection tears down the media plane of a live call with a
// forged RTCP BYE while the SIP dialog stays established.
func (g *synthGen) rtcpByeInjection(start time.Duration) {
	d := g.benignCall(1001, start, 3, false)
	g.add(start+400*time.Millisecond, sim.ProtoRTCP,
		sim.Addr{Host: "attacker.example.net", Port: 60001},
		sim.Addr{Host: d.callerMed.Host, Port: d.callerMed.Port + 1},
		rtcpBytes(rtp.RTCPBye, 0xD0000000+1001))
}

// unsolicitedSpam streams RTP at a destination no SDP ever advertised,
// with a sequence jump past Δn.
func (g *synthGen) unsolicitedSpam(start time.Duration) {
	src := sim.Addr{Host: "spammer.example.net", Port: 61000}
	dst := sim.Addr{Host: "open.b.example.com", Port: 40008}
	g.add(start, sim.ProtoRTP, src, dst, rtpBytes(0xBEEF, 1, 160))
	g.add(start+20*time.Millisecond, sim.ProtoRTP, src, dst, rtpBytes(0xBEEF, 500, 500*160))
}

// rogueRegister crosses the edge with a REGISTER (and the registrar's
// answer, which must stay silent).
func (g *synthGen) rogueRegister(start time.Duration) {
	atk := sim.Addr{Host: "attacker.example.net", Port: 5060}
	reg := sim.Addr{Host: "registrar.a.example.com", Port: 5060}
	r := sipmsg.NewRequest(sipmsg.REGISTER, sipmsg.URI{Host: "a.example.com"})
	r.Via = []sipmsg.Via{{Transport: "UDP", Host: atk.Host, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKrogue"}}}
	r.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "alice0", Host: "a.example.com"}}.WithTag("rg1")
	r.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "alice0", Host: "a.example.com"}}
	r.CallID = "rogue-reg@example.net"
	r.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.REGISTER}
	g.add(start, sim.ProtoSIP, atk, reg, r.Bytes())
	resp := sipmsg.NewResponse(r, sipmsg.StatusOK)
	g.add(start+20*time.Millisecond, sim.ProtoSIP, reg, atk, resp.Bytes())
}

// unknownCallRequest sends a mid-dialog request for a call vids never
// saw begin — a plain protocol deviation.
func (g *synthGen) unknownCallRequest(start time.Duration) {
	src := sim.Addr{Host: "stranger.example.net", Port: 5060}
	dst := sim.Addr{Host: "proxy.b.example.com", Port: 5060}
	ack := sipmsg.NewRequest(sipmsg.ACK, sipmsg.URI{User: "bob0", Host: "b.example.com"})
	ack.Via = []sipmsg.Via{{Transport: "UDP", Host: src.Host, Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKstray"}}}
	ack.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "nobody", Host: "example.net"}}.WithTag("na")
	ack.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "bob0", Host: "b.example.com"}}.WithTag("nb")
	ack.CallID = "never-started@example.net"
	ack.CSeq = sipmsg.CSeq{Seq: 9, Method: sipmsg.ACK}
	g.add(start, sim.ProtoSIP, src, dst, ack.Bytes())
}
