package engine

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vids/internal/ids"
	"vids/internal/rtp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/trace"
)

// replaySequential runs a trace through the plain single-threaded IDS
// — the ground truth the engine must reproduce.
func replaySequential(t *testing.T, entries []trace.Entry, cfg ids.Config) []ids.Alert {
	t.Helper()
	s := sim.New(0)
	d := ids.New(s, cfg)
	if err := trace.Replay(s, entries, d); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	alerts := d.Alerts()
	SortAlerts(alerts)
	return alerts
}

func replayEngine(t *testing.T, entries []trace.Entry, cfg Config) ([]ids.Alert, Stats) {
	t.Helper()
	e := New(cfg)
	for i, en := range entries {
		if err := e.Ingest(en.Packet(), en.At()); err != nil {
			t.Fatalf("ingest entry %d: %v", i, err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return e.Alerts(), e.Stats()
}

// TestEngineParityWithSequential is the core acceptance check: a trace
// replayed through four shards yields the exact alert multiset of the
// sequential ids path — same types, same virtual timestamps, same
// details.
func TestEngineParityWithSequential(t *testing.T) {
	entries := Synthesize(SynthConfig{Calls: 40, RTPPerCall: 10, Attacks: true})
	if len(entries) < 1000 {
		t.Fatalf("suspiciously small trace: %d entries", len(entries))
	}
	want := replaySequential(t, entries, ids.DefaultConfig())
	if len(want) == 0 {
		t.Fatal("sequential replay raised no alerts; trace is not exercising the detectors")
	}

	got, st := replayEngine(t, entries, Config{Shards: 4})
	if !reflect.DeepEqual(want, got) {
		t.Errorf("alert streams diverge: sequential %d alerts, engine %d", len(want), len(got))
		max := len(want)
		if len(got) > max {
			max = len(got)
		}
		for i := 0; i < max && i < 40; i++ {
			var w, g ids.Alert
			if i < len(want) {
				w = want[i]
			}
			if i < len(got) {
				g = got[i]
			}
			if !reflect.DeepEqual(w, g) {
				t.Errorf("  [%d]\n    seq: %+v\n    eng: %+v", i, w, g)
			}
		}
	}
	if st.Dropped != 0 {
		t.Errorf("Block policy dropped %d packets", st.Dropped)
	}
	if st.Processed+st.Absorbed+st.Ignored+st.ParseErrors != uint64(len(entries)) {
		t.Errorf("accounting mismatch: processed %d + absorbed %d + ignored %d + parse errors %d != %d entries",
			st.Processed, st.Absorbed, st.Ignored, st.ParseErrors, len(entries))
	}

	// The trace must exercise every detector family for parity to mean
	// anything.
	byType := make(map[ids.AlertType]int)
	for _, a := range got {
		byType[a.Type]++
	}
	for _, typ := range []ids.AlertType{
		ids.AlertInviteFlood, ids.AlertDRDoS, ids.AlertByeDoS, ids.AlertTollFraud,
		ids.AlertRTCPBye, ids.AlertUnsolicitedRTP, ids.AlertMediaSpam,
		ids.AlertRogueRegister, ids.AlertDeviation,
	} {
		if byType[typ] == 0 {
			t.Errorf("trace raised no %s alert", typ)
		}
	}
}

// TestEngineParityAcrossShardCounts: the alert stream must not depend
// on the shard count at all.
func TestEngineParityAcrossShardCounts(t *testing.T) {
	entries := Synthesize(SynthConfig{Calls: 25, RTPPerCall: 6, Attacks: true})
	base, _ := replayEngine(t, entries, Config{Shards: 1})
	for _, shards := range []int{2, 3, 8} {
		got, _ := replayEngine(t, entries, Config{Shards: shards})
		if !reflect.DeepEqual(base, got) {
			t.Errorf("shards=%d: %d alerts vs %d at shards=1", shards, len(got), len(base))
		}
	}
}

// TestShardRoutingInvariant is the routing property test: every
// packet of one call — SIP, RTP in both directions, RTCP, and media
// moved by a mid-call re-INVITE — lands on the same shard. Observed
// black-box: ingest one call into an 8-shard engine and require that
// exactly one shard processed anything.
func TestShardRoutingInvariant(t *testing.T) {
	for i := 0; i < 20; i++ {
		i := i
		t.Run(fmt.Sprintf("call-%d", i), func(t *testing.T) {
			g := &synthGen{}
			d := g.benignCall(i*31, 0, 5, false)

			// Mid-call re-INVITE moves the caller's media port.
			reinv := d.inv.Clone()
			reinv.To = d.ok.To // in-dialog: To carries the callee's tag
			reinv.CSeq = sipmsg.CSeq{Seq: 3, Method: sipmsg.INVITE}
			newMed := sim.Addr{Host: d.callerMed.Host, Port: d.callerMed.Port + 1000}
			reinv.Body = d.inv.Body // same SDP shape…
			reinv.Body = []byte(string(reinv.Body))
			reinv.Body = replacePort(t, reinv.Body, d.callerMed.Port, newMed.Port)
			g.add(300*time.Millisecond, sim.ProtoSIP, d.callerAddr, d.calleeAddr, reinv.Bytes())
			rok := sipmsg.NewResponse(reinv, sipmsg.StatusOK)
			rok.Body = d.ok.Body
			rok.ContentType = "application/sdp"
			g.add(320*time.Millisecond, sim.ProtoSIP, d.calleeAddr, d.callerAddr, rok.Bytes())

			// Media to the re-negotiated port, plus RTCP beside it.
			g.add(340*time.Millisecond, sim.ProtoRTP,
				sim.Addr{Host: d.calleeHost, Port: d.calleeMed.Port},
				newMed, rtpBytes(0xD0000000+uint32(i*31), 6, 6*160))
			g.add(341*time.Millisecond, sim.ProtoRTCP,
				sim.Addr{Host: d.calleeHost, Port: d.calleeMed.Port + 1},
				sim.Addr{Host: newMed.Host, Port: newMed.Port + 1},
				rtcpBytes(rtp.RTCPSenderReport, 0xD0000000+uint32(i*31)))

			e := New(Config{Shards: 8})
			for _, en := range g.entries {
				if err := e.Ingest(en.Packet(), en.At()); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			st := e.Stats()
			busy := 0
			for _, sh := range st.Shards {
				if sh.Processed > 0 {
					busy++
				}
			}
			if busy != 1 {
				t.Fatalf("call scattered over %d shards: %+v", busy, st.Shards)
			}
			if st.Processed != uint64(len(g.entries)) {
				t.Fatalf("processed %d of %d packets", st.Processed, len(g.entries))
			}
		})
	}
}

// replacePort rewrites the SDP media port in a body.
func replacePort(t *testing.T, body []byte, oldPort, newPort int) []byte {
	t.Helper()
	oldStr := fmt.Sprintf("m=audio %d", oldPort)
	newStr := fmt.Sprintf("m=audio %d", newPort)
	out := []byte(replaceOne(string(body), oldStr, newStr))
	if string(out) == string(body) {
		t.Fatalf("SDP body does not contain %q", oldStr)
	}
	return out
}

func replaceOne(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}

// TestConcurrentIngestionStress hammers the engine from many
// goroutines while a reader polls Stats — the -race exercise for the
// whole hot path.
func TestConcurrentIngestionStress(t *testing.T) {
	const producers = 8
	perProducer := Synthesize(SynthConfig{Calls: 12, RTPPerCall: 8})
	e := New(Config{Shards: 4, QueueDepth: 64, OnAlert: func(ids.Alert) {}})

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Stats()
			}
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, en := range perProducer {
				if err := e.Ingest(en.Packet(), en.At()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	want := uint64(producers * len(perProducer))
	if st.Ingested != want {
		t.Errorf("ingested %d, want %d", st.Ingested, want)
	}
	if st.Processed+st.Absorbed+st.Ignored+st.ParseErrors != want {
		t.Errorf("accounting mismatch: %+v", st)
	}
	if st.Dropped != 0 {
		t.Errorf("Block policy dropped %d", st.Dropped)
	}

	if err := e.Ingest(perProducer[0].Packet(), 0); err != ErrClosed {
		t.Errorf("Ingest after Close: got %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestDropOldestPolicy blocks the single shard worker on its first
// alert, floods the depth-2 queue, and checks the eviction accounting.
func TestDropOldestPolicy(t *testing.T) {
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e := New(Config{
		Shards:     1,
		QueueDepth: 2,
		Policy:     DropOldest,
		OnAlert: func(ids.Alert) {
			once.Do(func() {
				close(blocked)
				<-release
			})
		},
	})

	// A REGISTER always raises the rogue-register alert — the worker
	// parks inside OnAlert holding the shard busy.
	reg := sipmsg.NewRequest(sipmsg.REGISTER, sipmsg.URI{Host: "a.example.com"})
	reg.Via = []sipmsg.Via{{Transport: "UDP", Host: "x.example.net", Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKdrop"}}}
	reg.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "a", Host: "a.example.com"}}.WithTag("d1")
	reg.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "a", Host: "a.example.com"}}
	reg.CallID = "drop@example.net"
	reg.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.REGISTER}
	regPkt := &sim.Packet{
		From:  sim.Addr{Host: "x.example.net", Port: 5060},
		To:    sim.Addr{Host: "reg.a.example.com", Port: 5060},
		Proto: sim.ProtoSIP, Payload: reg.Bytes(),
	}
	if err := e.Ingest(regPkt, 0); err != nil {
		t.Fatal(err)
	}
	<-blocked

	// RTCP sender reports raise nothing; 10 of them against a depth-2
	// queue must evict 8.
	for i := 0; i < 10; i++ {
		pkt := &sim.Packet{
			From:    sim.Addr{Host: "m.example.net", Port: 40001},
			To:      sim.Addr{Host: "n.example.net", Port: 40001},
			Proto:   sim.ProtoRTCP,
			Payload: rtcpBytes(rtp.RTCPSenderReport, 7),
		}
		if err := e.Ingest(pkt, time.Duration(i+1)*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Dropped != 8 {
		t.Errorf("dropped %d, want 8", st.Dropped)
	}
	if st.Processed != 3 { // the REGISTER + the 2 surviving reports
		t.Errorf("processed %d, want 3", st.Processed)
	}
}

// TestTapAdapter feeds the engine straight from a trace entry list via
// the in-sim tap signature.
func TestTapAdapter(t *testing.T) {
	entries := Synthesize(SynthConfig{Calls: 3, RTPPerCall: 4})
	e := New(Config{Shards: 2})
	tap := e.Tap()
	for _, en := range entries {
		tap(en.Packet(), en.At())
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Ingested != uint64(len(entries)) {
		t.Errorf("tap ingested %d of %d", st.Ingested, len(entries))
	}
}

// TestStatsThroughput sanity-checks the derived rate.
func TestStatsThroughput(t *testing.T) {
	entries := Synthesize(SynthConfig{Calls: 2, RTPPerCall: 2})
	e := New(Config{Shards: 1})
	for _, en := range entries {
		if err := e.Ingest(en.Packet(), en.At()); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Processed == 0 || st.PacketsPerSec <= 0 {
		t.Errorf("throughput not derived: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Errorf("elapsed %v", st.Elapsed)
	}
}

// TestLateHangupParity regresses a divergence found on a real testbed
// capture: a dialog that goes idle past the eviction horizon and only
// then hangs up. Both the shard and the sequential IDS have already
// evicted the monitor (leaving tombstones that swallow the BYE and its
// 200), but the router's routing index had simply forgotten the
// Call-ID, so it fed the straggler 200 to the shared reflection
// detector — raising a deviation the sequential path never raises.
// The router now tombstones swept calls the same way.
func TestLateHangupParity(t *testing.T) {
	d := newDialog(0, "late")
	g := &synthGen{}
	g.add(0, sim.ProtoSIP, d.callerAddr, d.calleeAddr, d.inv.Bytes())
	g.add(20*time.Millisecond, sim.ProtoSIP, d.calleeAddr, d.callerAddr, d.ok.Bytes())
	g.add(40*time.Millisecond, sim.ProtoSIP, d.callerAddr, d.calleeAddr, d.ack().Bytes())
	// Silence until the sweeps (which run every half retention period)
	// have provably fired on both the shards and the router, then the
	// caller hangs up and the callee answers.
	cfg := ids.DefaultConfig()
	late := 2*(cfg.IdleEviction+cfg.CloseLinger) + time.Minute
	g.add(late, sim.ProtoSIP, d.callerAddr, d.calleeAddr, d.bye().Bytes())
	okBye := sipmsg.NewResponse(d.bye(), sipmsg.StatusOK)
	g.add(late+20*time.Millisecond, sim.ProtoSIP, d.calleeAddr, d.callerAddr, okBye.Bytes())

	want := replaySequential(t, g.entries, ids.DefaultConfig())
	got, st := replayEngine(t, g.entries, Config{Shards: 4})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("alerts diverge:\nengine:     %v\nsequential: %v", got, want)
	}
	if st.Absorbed != 1 {
		t.Errorf("absorbed = %d, want 1 (the straggler 200-for-BYE)", st.Absorbed)
	}
}

// TestShedPolicyMediaFirst blocks the single shard worker, fills the
// depth-4 queue with media, and verifies the shedding tiers with exact
// counters: arriving media is dropped on the floor once the ring is
// full, arriving signaling evicts the oldest queued media, and only a
// ring full of signaling sacrifices its own oldest entry. The retire
// hook must see every ingested packet exactly once, evicted or not.
func TestShedPolicyMediaFirst(t *testing.T) {
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var retired atomic.Uint64
	e := New(Config{
		Shards:     1,
		QueueDepth: 4,
		Policy:     Shed,
		OnAlert: func(ids.Alert) {
			once.Do(func() {
				close(blocked)
				<-release
			})
		},
		OnRetire: func(*sim.Packet) { retired.Add(1) },
	})

	// A REGISTER always raises the rogue-register alert — the worker
	// parks inside OnAlert holding the shard busy.
	reg := sipmsg.NewRequest(sipmsg.REGISTER, sipmsg.URI{Host: "a.example.com"})
	reg.Via = []sipmsg.Via{{Transport: "UDP", Host: "x.example.net", Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKshed"}}}
	reg.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "a", Host: "a.example.com"}}.WithTag("s1")
	reg.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "a", Host: "a.example.com"}}
	reg.CallID = "shed@example.net"
	reg.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.REGISTER}
	regPkt := &sim.Packet{
		From:  sim.Addr{Host: "x.example.net", Port: 5060},
		To:    sim.Addr{Host: "reg.a.example.com", Port: 5060},
		Proto: sim.ProtoSIP, Payload: reg.Bytes(),
	}
	if err := e.Ingest(regPkt, 0); err != nil {
		t.Fatal(err)
	}
	<-blocked

	media := func(i int) *sim.Packet {
		return &sim.Packet{
			From:    sim.Addr{Host: "m.example.net", Port: 40001},
			To:      sim.Addr{Host: "n.example.net", Port: 40001},
			Proto:   sim.ProtoRTCP,
			Payload: rtcpBytes(rtp.RTCPSenderReport, uint32(i)),
		}
	}
	// Fill the ring with 4 media packets, then 2 more: the ring is full
	// and the arrivals are media, so tier 1 drops them on the floor.
	for i := 0; i < 6; i++ {
		if err := e.Ingest(media(i), time.Duration(i+1)*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	// 5 INVITEs against the full ring: the first 4 evict the 4 queued
	// media packets (tier 1), the 5th finds all-signaling and evicts
	// the oldest INVITE (tier 2).
	for i := 0; i < 5; i++ {
		d := newDialog(i, "shedsip")
		pkt := &sim.Packet{
			From: d.callerAddr, To: d.calleeAddr,
			Proto: sim.ProtoSIP, Payload: d.inv.Bytes(),
		}
		if err := e.Ingest(pkt, time.Duration(10+i)*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.DroppedMedia != 6 {
		t.Errorf("DroppedMedia = %d, want 6 (2 floor drops + 4 evictions)", st.DroppedMedia)
	}
	if st.DroppedSignaling != 1 {
		t.Errorf("DroppedSignaling = %d, want 1 (all-signaling fallback)", st.DroppedSignaling)
	}
	if st.Dropped != 7 {
		t.Errorf("Dropped = %d, want 7", st.Dropped)
	}
	if st.Processed != 5 { // the REGISTER + the 4 surviving INVITEs
		t.Errorf("processed %d, want 5", st.Processed)
	}
	if st.Processed+st.Absorbed+st.Ignored+st.ParseErrors+st.Dropped != st.Ingested {
		t.Errorf("accounting mismatch: %+v", st)
	}
	if got := retired.Load(); got != st.Ingested {
		t.Errorf("retired %d of %d ingested packets", got, st.Ingested)
	}
}
