package engine

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"vids/internal/rtp"
	"vids/internal/trace"
)

// TestTraceSourceFromFile round-trips a synthetic trace through disk
// and the paced replay path (pace high enough to finish instantly).
func TestTraceSourceFromFile(t *testing.T) {
	entries := Synthesize(SynthConfig{Calls: 3, RTPPerCall: 3})
	path := filepath.Join(t.TempDir(), "synth.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	for _, en := range entries {
		if err := w.Record(en.Packet(), en.At()); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	e := New(Config{Shards: 2})
	src := &TraceSource{Path: path, Pace: 10000}
	if err := src.Run(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Ingested != uint64(len(entries)) {
		t.Errorf("ingested %d of %d", st.Ingested, len(entries))
	}
}

// TestUDPSourceLoopback drives the live listener over real loopback
// sockets: one SIP INVITE, one RTP packet, one RTCP report.
func TestUDPSourceLoopback(t *testing.T) {
	e := New(Config{Shards: 2})
	src := &UDPSource{SIPAddr: "127.0.0.1:0", RTPAddr: "127.0.0.1:0"}

	// Reserve two ephemeral ports so the sender knows where to aim.
	sipLn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sipPort := sipLn.LocalAddr().(*net.UDPAddr).Port
	sipLn.Close()
	rtpLn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rtpPort := rtpLn.LocalAddr().(*net.UDPAddr).Port
	rtpLn.Close()
	src.SIPAddr = net.JoinHostPort("127.0.0.1", strconv.Itoa(sipPort))
	src.RTPAddr = net.JoinHostPort("127.0.0.1", strconv.Itoa(rtpPort))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, e) }()

	conn, err := net.Dial("udp", src.SIPAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	mconn, err := net.Dial("udp", src.RTPAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer mconn.Close()

	d := newDialog(0, "udp")
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Until Run has bound the sockets, loopback writes bounce with
		// "connection refused" — keep retrying within the deadline.
		_, _ = conn.Write(d.inv.Bytes())
		_, _ = mconn.Write(rtpBytes(7, 1, 160))
		_, _ = mconn.Write(rtcpBytes(rtp.RTCPSenderReport, 7))
		time.Sleep(20 * time.Millisecond)
		if st := e.Stats(); st.Ingested >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("listener never ingested: %+v", e.Stats())
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Ingested < 3 || st.Processed+st.Absorbed == 0 {
		t.Errorf("unexpected stats: %+v", st)
	}
}
